// pts_cluster: one node of the fault-tolerant solver cluster (DESIGN.md
// §11). The same binary runs either role:
//
//   worker — a SolverService + net::Server that answers the cluster peer
//   range (membership, heartbeats, journal replication into a local
//   replica) alongside normal job traffic:
//
//     ./pts_cluster --role=worker --port=0 --workers=4 --replica=w.journal
//
//   coordinator — the client-facing front door: accepts pts_client
//   submissions, shards them across the worker endpoints, heartbeats every
//   node, replicates its job journal to all of them and fails work over
//   when a node dies (kill -9 included):
//
//     ./pts_cluster --role=coordinator --port=7075 --journal=coord.journal
//                   --peers=127.0.0.1:9101,127.0.0.1:9102
//
//   shared flags: --bind=127.0.0.1  --cluster=pts  --drain-timeout=10
//   worker flags: --name=<node>  --workers=N  --queue-cap=N  --shed
//                 --replica=<path>   replica of the coordinator's journal
//                 --journal=<path>   the node's OWN service journal
//                 --worker=<path>    pts_worker binary for proc jobs
//                 --idle-timeout=S   reap byte-silent idle connections
//   coordinator flags: --peers=h:p[,h:p...]  --journal=<path>  --epoch=N
//                 --heartbeat-interval=0.1  --heartbeat-misses=5
//                 --max-resubmits=3
//
// A coordinator pointed (via --journal) at a worker's replica file is the
// promotion path: it replays the replica and re-owns every open job.
//
// Both roles drain on SIGTERM/SIGINT. A killed worker's jobs fail over to
// the survivors; a killed coordinator's jobs replay from its journal (or
// any replica) on the next start.
#include <chrono>
#include <csignal>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "cluster/coordinator.hpp"
#include "cluster/worker_node.hpp"
#include "net/server.hpp"
#include "obs/telemetry.hpp"
#include "service/options.hpp"
#include "util/cli.hpp"

namespace {

volatile std::sig_atomic_t g_shutdown = 0;

void on_signal(int) { g_shutdown = 1; }

/// Parses "host:port,host:port,..." (host defaults to loopback for a bare
/// ":port" or "port" entry).
std::vector<pts::cluster::PeerAddress> parse_peers(const std::string& text) {
  std::vector<pts::cluster::PeerAddress> peers;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::string entry = text.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    if (!entry.empty()) {
      pts::cluster::PeerAddress addr;
      const std::size_t colon = entry.rfind(':');
      if (colon == std::string::npos) {
        addr.port = static_cast<std::uint16_t>(std::stoul(entry));
      } else {
        if (colon > 0) addr.host = entry.substr(0, colon);
        addr.port = static_cast<std::uint16_t>(std::stoul(entry.substr(colon + 1)));
      }
      peers.push_back(std::move(addr));
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return peers;
}

void wait_for_shutdown() {
  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);
  while (!g_shutdown) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
}

int run_worker(const pts::CliArgs& args) {
  using namespace pts;
  const auto common = service::CommonOptions::from_cli(args);
  if (!common) {
    std::fprintf(stderr, "%s\n", common.status().to_string().c_str());
    return 1;
  }

  cluster::WorkerNodeConfig config;
  config.node_name = args.get_string("name", "worker");
  config.cluster_name = args.get_string("cluster", "pts");
  config.replica_journal_path = args.get_string("replica", "");
  config.service.num_workers =
      static_cast<std::size_t>(args.get_int("workers", 4));
  config.service.queue_capacity =
      static_cast<std::size_t>(args.get_int("queue-cap", 64));
  config.service.overflow = args.get_bool("shed", false)
                                ? service::OverflowPolicy::kShedLowest
                                : service::OverflowPolicy::kRejectNew;
  common->apply_service(config.service);  // --journal, --warm-start-dir
  config.server.bind_address = args.get_string("bind", "127.0.0.1");
  config.server.port = static_cast<std::uint16_t>(args.get_int("port", 0));
  config.server.worker_path = common->worker_path;
  config.server.idle_timeout_seconds = args.get_double("idle-timeout", 300.0);

  auto node = cluster::WorkerNode::start(std::move(config));
  if (!node) {
    std::fprintf(stderr, "%s\n", node.status().to_string().c_str());
    return 1;
  }
  // Tests and scripts parse this line for the ephemeral port.
  std::printf("pts_cluster worker '%s' listening on %s:%u (%zu workers)\n",
              args.get_string("name", "worker").c_str(),
              args.get_string("bind", "127.0.0.1").c_str(), (*node)->port(),
              static_cast<std::size_t>(args.get_int("workers", 4)));
  std::fflush(stdout);

  wait_for_shutdown();

  const double drain_timeout = args.get_double("drain-timeout", 10.0);
  const bool drained = (*node)->drain(drain_timeout);
  (*node)->stop();
  std::printf("pts_cluster worker %s (applied_seq=%llu)\n",
              drained ? "drained" : "drain timed out",
              static_cast<unsigned long long>((*node)->last_applied_seq()));
  return 0;
}

int run_coordinator(const pts::CliArgs& args) {
  using namespace pts;
  cluster::CoordinatorConfig config;
  config.cluster_name = args.get_string("cluster", "pts");
  config.peers = parse_peers(args.get_string("peers", ""));
  config.epoch = static_cast<std::uint64_t>(args.get_int("epoch", 1));
  config.heartbeat_interval_seconds =
      args.get_double("heartbeat-interval", 0.1);
  config.heartbeat_misses =
      static_cast<int>(args.get_int("heartbeat-misses", 5));
  config.max_resubmits = static_cast<int>(args.get_int("max-resubmits", 3));
  config.journal_path = args.get_string("journal", "");

  auto coordinator = cluster::Coordinator::start(std::move(config));
  if (!coordinator) {
    std::fprintf(stderr, "%s\n", coordinator.status().to_string().c_str());
    return 1;
  }
  auto recovered = (*coordinator)->take_recovered();
  if (!recovered.empty()) {
    std::printf("recovered %zu unresolved job(s) from %s\n", recovered.size(),
                args.get_string("journal", "").c_str());
  }

  net::ServerConfig net_config;
  net_config.bind_address = args.get_string("bind", "127.0.0.1");
  net_config.port = static_cast<std::uint16_t>(args.get_int("port", 0));
  net_config.max_connections =
      static_cast<std::size_t>(args.get_int("max-connections", 64));
  net_config.idle_timeout_seconds = args.get_double("idle-timeout", 300.0);
  auto server = net::Server::start(**coordinator, net_config);
  if (!server) {
    std::fprintf(stderr, "%s\n", server.status().to_string().c_str());
    return 1;
  }
  std::printf("pts_cluster coordinator listening on %s:%u (%zu peers)\n",
              net_config.bind_address.c_str(), (*server)->port(),
              parse_peers(args.get_string("peers", "")).size());
  std::fflush(stdout);

  wait_for_shutdown();

  const double drain_timeout = args.get_double("drain-timeout", 10.0);
  const bool drained = (*server)->drain(drain_timeout);
  (*server)->stop();
  (*coordinator)->stop();  // journal records stay open -> recovered next start

  const auto stats = (*coordinator)->stats();
  std::printf(
      "pts_cluster coordinator %s: %llu submitted (%llu dedup), %llu "
      "dispatched, %llu failovers, %llu exhausted, %llu nodes lost, %llu "
      "records replicated\n",
      drained ? "drained" : "drain timed out",
      static_cast<unsigned long long>(stats.submitted),
      static_cast<unsigned long long>(stats.dedup_hits),
      static_cast<unsigned long long>(stats.dispatched),
      static_cast<unsigned long long>(stats.failovers),
      static_cast<unsigned long long>(stats.exhausted),
      static_cast<unsigned long long>(stats.nodes_lost),
      static_cast<unsigned long long>(stats.records_replicated));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pts;
  const auto args = CliArgs::parse(argc, argv);
  obs::TelemetrySession telemetry(obs::TelemetryOptions::from_cli(args));
  const std::string role = args.get_string("role", "");
  if (role == "worker") return run_worker(args);
  if (role == "coordinator") return run_coordinator(args);
  std::fprintf(stderr, "pts_cluster: --role=worker|coordinator is required\n");
  return 1;
}
