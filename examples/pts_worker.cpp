// pts_worker: one slave of the `--backend=proc` farm (DESIGN.md §8).
//
// Not run by hand — the master-side ProcSupervisor spawns one of these per
// slave with its socket on a known fd, sends a Hello frame (identity, seed,
// problem data), then assignments; the process exits on Stop or when the
// supervisor closes the socket. Everything interesting lives in
// pts::parallel::run_worker; this file only parses --fd.

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "parallel/proc_backend.hpp"

int main(int argc, char** argv) {
  int fd = -1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--fd=", 5) == 0) {
      fd = std::atoi(argv[i] + 5);
    } else {
      std::fprintf(stderr, "pts_worker: unknown argument '%s'\n", argv[i]);
      return 64;
    }
  }
  if (fd < 0) {
    std::fprintf(stderr,
                 "usage: pts_worker --fd=N\n"
                 "Spawned by the pts proc backend; N is the fd of a connected\n"
                 "stream socket speaking the frame protocol of wire.hpp.\n");
    return 64;
  }
  return pts::parallel::run_worker(fd);
}
