// pts_serve: the solver service as a network daemon (DESIGN.md §10). Binds
// a TCP listener, speaks the framed client protocol (net/protocol.hpp) and
// runs every accepted submission on an in-process SolverService — the same
// scheduler, dedup, warm-start store and journal the embedded API uses, now
// shared by any number of pts_client processes.
//
//   ./pts_serve --port=7075 --workers=8 --journal=jobs.journal
//   options: --bind=127.0.0.1     interface (loopback by default — the
//                                 protocol has no authentication layer)
//            --port=0             TCP port; 0 picks an ephemeral one (the
//                                 bound port is printed either way)
//            --workers=4 --queue-cap=64 --shed      pool shape (batch_server
//                                 flags, same semantics)
//            --max-connections=64 concurrent client cap; the connection over
//                                 the cap is told Goodbye and closed
//            --drain-timeout=10   seconds SIGTERM/SIGINT waits for in-flight
//                                 work to ship before hard-stopping
//            --worker=<path>      pts_worker binary for proc-backend jobs
//                                 (client-sent paths are never trusted;
//                                 default: sibling-of-binary discovery)
//            --journal=<path>     crash-safe job journal: jobs stranded by a
//                                 kill -9 are re-enqueued on the next start
//                                 and a "recovered N" line is printed
//            --warm-start-dir=<dir>  persistent warm-start store, shareable
//                                 with other services on the same filesystem
//            --log-level=info --metrics --metrics-out=PATH   (telemetry)
//
// Graceful shutdown: SIGTERM (or SIGINT) stops accepting, sends every
// client a Goodbye frame, waits up to --drain-timeout for outstanding
// results to ship, then cancels the rest. Journaled jobs cancelled by the
// shutdown stay open in the journal and come back on the next start.
#include <chrono>
#include <csignal>
#include <cstdio>
#include <thread>

#include "net/server.hpp"
#include "obs/telemetry.hpp"
#include "service/options.hpp"
#include "service/solver_service.hpp"
#include "util/cli.hpp"

namespace {

volatile std::sig_atomic_t g_shutdown = 0;

void on_signal(int) { g_shutdown = 1; }

}  // namespace

int main(int argc, char** argv) {
  using namespace pts;
  const auto args = CliArgs::parse(argc, argv);
  obs::TelemetrySession telemetry(obs::TelemetryOptions::from_cli(args));
  const auto common = service::CommonOptions::from_cli(args);
  if (!common) {
    std::fprintf(stderr, "%s\n", common.status().to_string().c_str());
    return 1;
  }

  service::ServiceConfig pool;
  pool.num_workers = static_cast<std::size_t>(args.get_int("workers", 4));
  pool.queue_capacity = static_cast<std::size_t>(args.get_int("queue-cap", 64));
  pool.overflow = args.get_bool("shed", false)
                      ? service::OverflowPolicy::kShedLowest
                      : service::OverflowPolicy::kRejectNew;
  common->apply_service(pool);  // --journal, --warm-start-dir
  service::SolverService service(pool);

  // Jobs a previous incarnation never resolved (crash, kill -9, shutdown
  // mid-flight) were re-enqueued by the constructor; say so on stdout —
  // operators (and tests/net) key off this line.
  auto recovered = service.take_recovered();
  if (!recovered.empty()) {
    std::printf("recovered %zu unresolved job(s) from %s\n", recovered.size(),
                pool.journal_path.c_str());
  }

  net::ServerConfig net_config;
  net_config.bind_address = args.get_string("bind", "127.0.0.1");
  net_config.port = static_cast<std::uint16_t>(args.get_int("port", 0));
  net_config.max_connections =
      static_cast<std::size_t>(args.get_int("max-connections", 64));
  net_config.worker_path = common->worker_path;
  net_config.idle_timeout_seconds = args.get_double("idle-timeout", 300.0);
  auto server = net::Server::start(service, net_config);
  if (!server) {
    std::fprintf(stderr, "%s\n", server.status().to_string().c_str());
    return 1;
  }
  // Tests and scripts parse this line for the ephemeral port; flush so a
  // piped reader sees it immediately.
  std::printf("pts_serve listening on %s:%u (%zu workers)\n",
              net_config.bind_address.c_str(), (*server)->port(),
              pool.num_workers);
  std::fflush(stdout);

  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);
  while (!g_shutdown) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  const double drain_timeout = args.get_double("drain-timeout", 10.0);
  std::printf("pts_serve draining (up to %.1fs)\n", drain_timeout);
  std::fflush(stdout);
  const bool drained = (*server)->drain(drain_timeout);
  (*server)->stop();
  service.shutdown();  // journaled leftovers stay open -> recovered next start

  const auto net_stats = (*server)->stats();
  const auto stats = service.stats();
  std::printf(
      "pts_serve %s: %llu connections (%llu turned away), %llu submissions, "
      "%llu protocol errors, %llu disconnect cancels; service: %llu "
      "submitted, %llu completed, %llu cancelled\n",
      drained ? "drained" : "drain timed out",
      static_cast<unsigned long long>(net_stats.connections_accepted),
      static_cast<unsigned long long>(net_stats.connections_turned_away),
      static_cast<unsigned long long>(net_stats.submissions),
      static_cast<unsigned long long>(net_stats.protocol_errors),
      static_cast<unsigned long long>(net_stats.disconnect_cancels),
      static_cast<unsigned long long>(stats.submitted),
      static_cast<unsigned long long>(stats.completed),
      static_cast<unsigned long long>(stats.cancelled));
  return 0;
}
