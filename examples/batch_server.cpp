// Batch solve server: drive a mixed multi-tenant workload of MKP jobs
// through the SolverService and show the redesigned submission surface —
// submit(SubmitRequest) returns Expected<JobHandle>: admission failures
// (bad options, backpressure, shutdown) come back as a Status, accepted
// work returns a handle whose future always resolves. The demo workload
// exercises weighted-fair scheduling across two tenants, content-addressed
// dedup (identical submissions share one solve), per-waiter deadlines and
// a mid-flight cancel; nothing aborts.
//
//   ./batch_server                      default 12-job mix on 4 workers
//   options: --jobs=12 --workers=4 --queue-cap=64 --seed=1
//            --mode=SEQ|ITS|CTS1|CTS2   force one cooperation mode
//            --shed                     queue overflow sheds the weakest
//                                       queued job (lowest tenant weight,
//                                       then lowest priority) when the
//                                       newcomer outranks it
//            --tenant=<name>            submit everything as this tenant
//                                       (default: a prod/batch demo mix with
//                                       weights 3:1 and a batch slot quota)
//            --journal=<path>           crash-safe job journal: jobs left
//                                       unresolved by a crash or shutdown are
//                                       re-enqueued as "resumed" on the next
//                                       start (DESIGN.md §9)
//            --warm-start=off|exact|similar --warm-start-dir=<dir>
//                                       persistent cross-job warm starts:
//                                       completed runs seed later jobs for
//                                       the same (or a similar) instance
//            --log-level=info --metrics --trace-out=trace.json  (telemetry)
//            --metrics-out=PATH         metrics snapshot at exit (Prometheus
//                                       text, or JSONL with a .jsonl suffix):
//                                       per-tenant queue/dispatch gauges and
//                                       histograms, dedup and warm-start
//                                       counters, journal write histograms;
//                                       --metrics-every=S rewrites it
//                                       periodically while serving
#include <chrono>
#include <cstdio>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "mkp/generator.hpp"
#include "obs/telemetry.hpp"
#include "service/options.hpp"
#include "service/solver_service.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

struct Pending {
  pts::service::TenantId tenant;
  bool deduplicated = false;
  std::future<pts::service::JobResult> result;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace pts;
  const auto args = CliArgs::parse(argc, argv);
  obs::TelemetrySession telemetry(obs::TelemetryOptions::from_cli(args));
  const auto common = service::CommonOptions::from_cli(args);
  if (!common) {
    std::fprintf(stderr, "%s\n", common.status().to_string().c_str());
    return 1;
  }

  const auto num_jobs = static_cast<std::size_t>(args.get_int("jobs", 12));
  const auto seed = common->seed;

  service::ServiceConfig pool;
  pool.num_workers = static_cast<std::size_t>(args.get_int("workers", 4));
  pool.queue_capacity = static_cast<std::size_t>(args.get_int("queue-cap", 64));
  pool.overflow = args.get_bool("shed", false)
                      ? service::OverflowPolicy::kShedLowest
                      : service::OverflowPolicy::kRejectNew;
  common->apply_service(pool);  // --journal, --warm-start-dir
  // The demo tenant roster: interactive "prod" work gets 3x the share of
  // bulk "batch" work, and batch may hold at most 2 pool slots at once. A
  // --tenant override routes every job to that one tenant instead.
  pool.tenants = {{"prod", 3.0, 0}, {"batch", 1.0, 2}};
  service::SolverService server(pool);
  std::printf("pool: %zu workers, queue capacity %zu, tenants prod(w=3) / "
              "batch(w=1, <=2 slots)\n\n",
              pool.num_workers, pool.queue_capacity);

  // Jobs the previous incarnation never resolved (crash or shutdown
  // mid-flight) come back automatically; fold their futures into the batch.
  auto recovered = server.take_recovered();
  if (!recovered.empty()) {
    std::printf("recovered %zu unresolved job(s) from %s\n\n", recovered.size(),
                pool.journal_path.c_str());
  }
  std::vector<Pending> pending;
  pending.reserve(num_jobs + recovered.size() + 3);
  for (auto& submission : recovered) {
    pending.push_back(Pending{"", false, std::move(submission.result)});
  }

  // A mixed workload: alternating sizes and presets across the two tenants,
  // a couple of urgent high-priority jobs with tight deadlines, and one
  // deliberately bogus preset — under the new API that is an ADMISSION
  // error: submit() returns the Status, no future ever exists.
  for (std::size_t k = 0; k < num_jobs; ++k) {
    service::SubmitRequest request;
    request.instance = std::make_shared<const mkp::Instance>(mkp::generate_gk(
        {.num_items = 40 + 20 * (k % 3), .num_constraints = 5}, seed + k));
    request.tenant =
        !common->tenant.empty() ? common->tenant : (k % 3 ? "batch" : "prod");
    request.warm_start = common->warm_start;
    request.options.seed = seed + k;
    request.options.mode = common->mode;
    request.options.preset = (k % 4 == 0) ? "quick" : "balanced";
    request.options.time_budget_seconds = 0.5;
    if (k % 5 == 1) {  // urgent: jumps its tenant's queue, must land in 1 s
      request.priority = 10;
      request.deadline_seconds = 1.0;
    }
    if (k == 2) request.options.preset = "warp-speed";  // structured error
    auto handle = server.submit(std::move(request));
    if (!handle) {
      std::printf("job %zu refused at admission: %s\n", k,
                  handle.status().to_string().c_str());
      continue;
    }
    pending.push_back(Pending{handle->tenant, handle->deduplicated,
                              std::move(handle->result)});
  }

  // Content-addressed dedup: two tenants ask for the SAME instance with the
  // same solve shape — the service runs it once and fans the result out to
  // both futures.
  {
    const auto shared_inst = std::make_shared<const mkp::Instance>(
        mkp::generate_gk({.num_items = 80, .num_constraints = 5}, seed + 500));
    for (const char* tenant : {"prod", "batch"}) {
      service::SubmitRequest request;
      request.instance = shared_inst;
      request.tenant = common->tenant.empty() ? tenant : common->tenant;
      request.warm_start = common->warm_start;
      request.options.preset = "balanced";
      request.options.time_budget_seconds = 0.5;
      request.options.seed = seed + 500;
      request.options.mode = common->mode;
      auto handle = server.submit(std::move(request));
      if (!handle) continue;
      if (handle->deduplicated) {
        std::printf("job %llu attached to an identical in-flight solve "
                    "(content hash %016llx)\n",
                    static_cast<unsigned long long>(handle->id),
                    static_cast<unsigned long long>(handle->content_hash));
      }
      pending.push_back(Pending{handle->tenant, handle->deduplicated,
                                std::move(handle->result)});
    }
    std::printf("\n");
  }

  // One long-budget job we cancel while it runs: its future still resolves,
  // carrying the best solution found up to the cancel.
  {
    service::SubmitRequest request;
    request.instance = std::make_shared<const mkp::Instance>(
        mkp::generate_gk({.num_items = 100, .num_constraints = 10}, seed + 99));
    request.tenant = common->tenant.empty() ? "prod" : common->tenant;
    request.options.preset = "thorough";
    request.options.time_budget_seconds = 30.0;
    request.options.seed = seed;
    request.options.mode = common->mode;
    auto doomed = server.submit(std::move(request));
    if (doomed) {
      const service::JobId doomed_id = doomed->id;
      pending.push_back(
          Pending{doomed->tenant, doomed->deduplicated, std::move(doomed->result)});
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
      server.cancel(doomed_id);
      std::printf("cancelled job %llu mid-flight\n\n",
                  static_cast<unsigned long long>(doomed_id));
    }
  }

  TextTable table({"job", "tenant", "origin", "status", "best", "dedup", "warm",
                   "queued (s)", "ran (s)", "start#"});
  for (auto& entry : pending) {
    auto r = entry.result.get();  // every future resolves — no timeouts
    table.add_row({TextTable::fmt(r.id),
                   r.tenant.empty() ? "default" : r.tenant,
                   r.origin == service::JobOrigin::kResumed ? "resumed" : "fresh",
                   r.status.ok() ? "OK" : r.status.to_string(),
                   r.best ? TextTable::fmt(r.best_value, 1) : "-",
                   r.deduplicated ? "yes" : "-", r.warm_started ? "yes" : "-",
                   TextTable::fmt(r.queue_seconds, 3),
                   TextTable::fmt(r.run_seconds, 3),
                   TextTable::fmt(r.start_sequence)});
  }
  std::fputs(table.render().c_str(), stdout);

  server.shutdown();
  const auto stats = server.stats();
  std::printf(
      "\nservice stats: %llu submitted (%llu resumed), %llu completed, "
      "%llu cancelled, %llu deadline-expired, %llu invalid, %llu rejected, "
      "%llu dedup hits, %llu warm-started, %llu slave faults\n",
      static_cast<unsigned long long>(stats.submitted),
      static_cast<unsigned long long>(stats.resumed),
      static_cast<unsigned long long>(stats.completed),
      static_cast<unsigned long long>(stats.cancelled),
      static_cast<unsigned long long>(stats.deadline_expired),
      static_cast<unsigned long long>(stats.invalid),
      static_cast<unsigned long long>(stats.rejected),
      static_cast<unsigned long long>(stats.dedup_hits),
      static_cast<unsigned long long>(stats.warm_started),
      static_cast<unsigned long long>(stats.slave_faults));
  return 0;
}
