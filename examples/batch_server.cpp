// Batch solve server: drive a mixed workload of MKP jobs through the
// SolverService and show the full result-or-error surface — every submitted
// job resolves its future exactly once, as solved, deadline-expired,
// cancelled, rejected, or invalid; nothing aborts.
//
//   ./batch_server                      default 12-job mix on 4 workers
//   options: --jobs=12 --workers=4 --queue-cap=64 --seed=1
//            --mode=SEQ|ITS|CTS1|CTS2   force one cooperation mode
//            --shed                     queue overflow sheds lowest priority
//                                       (default rejects the newcomer)
//            --journal=<path>           crash-safe job journal: jobs left
//                                       unresolved by a crash or shutdown are
//                                       re-enqueued as "resumed" on the next
//                                       start (DESIGN.md §9)
//            --log-level=info --metrics --trace-out=trace.json  (telemetry)
//            --metrics-out=PATH         metrics snapshot at exit (Prometheus
//                                       text, or JSONL with a .jsonl suffix):
//                                       service queue/job gauges, journal
//                                       write histograms, job latency
//                                       p50/p99; --metrics-every=S rewrites
//                                       it periodically while serving
#include <chrono>
#include <cstdio>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "mkp/generator.hpp"
#include "obs/telemetry.hpp"
#include "service/solver_service.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace pts;
  const auto args = CliArgs::parse(argc, argv);
  obs::TelemetrySession telemetry(obs::TelemetryOptions::from_cli(args));

  const auto num_jobs = static_cast<std::size_t>(args.get_int("jobs", 12));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

  std::optional<parallel::CooperationMode> forced_mode;
  if (args.has("mode")) {
    auto parsed = parallel::cooperation_mode_from_string(args.get_string("mode", ""));
    if (!parsed) {
      std::fprintf(stderr, "--mode: %s\n", parsed.status().to_string().c_str());
      return 1;
    }
    forced_mode = *parsed;
  }

  service::ServiceConfig pool;
  pool.num_workers = static_cast<std::size_t>(args.get_int("workers", 4));
  pool.queue_capacity = static_cast<std::size_t>(args.get_int("queue-cap", 64));
  pool.overflow = args.get_bool("shed", false)
                      ? service::OverflowPolicy::kShedLowest
                      : service::OverflowPolicy::kRejectNew;
  pool.journal_path = args.get_string("journal", "");
  service::SolverService server(pool);
  std::printf("pool: %zu workers, queue capacity %zu\n\n", pool.num_workers,
              pool.queue_capacity);

  // Jobs the previous incarnation never resolved (crash or shutdown
  // mid-flight) come back automatically; fold their futures into the batch.
  auto recovered = server.take_recovered();
  if (!recovered.empty()) {
    std::printf("recovered %zu unresolved job(s) from %s\n\n", recovered.size(),
                pool.journal_path.c_str());
  }

  // A mixed workload: alternating sizes and presets, a couple of urgent
  // high-priority jobs with tight deadlines, one deliberately bogus preset
  // (the error comes back on the future, not as an abort), and one job we
  // cancel mid-flight below.
  std::vector<service::SolverService::Submission> submissions;
  submissions.reserve(num_jobs + recovered.size() + 1);
  for (auto& submission : recovered) submissions.push_back(std::move(submission));
  for (std::size_t k = 0; k < num_jobs; ++k) {
    auto inst = mkp::generate_gk(
        {.num_items = 40 + 20 * (k % 3), .num_constraints = 5}, seed + k);

    service::JobOptions options;
    options.seed = seed + k;
    options.mode = forced_mode;
    options.preset = (k % 4 == 0) ? "quick" : "balanced";
    options.time_budget_seconds = 0.5;
    if (k % 5 == 1) {  // urgent: jumps the queue but must land inside 1 s
      options.priority = 10;
      options.deadline_seconds = 1.0;
    }
    if (k == 2) options.preset = "warp-speed";  // structured error, not a crash
    submissions.push_back(server.submit(std::move(inst), options));
  }

  // One long-budget job we cancel while it runs: its future still resolves,
  // carrying the best solution found up to the cancel.
  {
    service::JobOptions options;
    options.preset = "thorough";
    options.time_budget_seconds = 30.0;
    options.seed = seed;
    options.mode = forced_mode;
    auto doomed = server.submit(
        mkp::generate_gk({.num_items = 100, .num_constraints = 10}, seed + 99),
        options);
    const service::JobId doomed_id = doomed.id;
    submissions.push_back(std::move(doomed));
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    server.cancel(doomed_id);
    std::printf("cancelled job %llu mid-flight\n\n",
                static_cast<unsigned long long>(doomed_id));
  }

  TextTable table({"job", "origin", "status", "best", "faults", "queued (s)",
                   "ran (s)", "start#"});
  for (auto& submission : submissions) {
    auto r = submission.result.get();  // every future resolves — no timeouts
    table.add_row({TextTable::fmt(r.id),
                   r.origin == service::JobOrigin::kResumed ? "resumed" : "fresh",
                   r.status.ok() ? "OK" : r.status.to_string(),
                   r.best ? TextTable::fmt(r.best_value, 1) : "-",
                   TextTable::fmt(r.slave_faults), TextTable::fmt(r.queue_seconds, 3),
                   TextTable::fmt(r.run_seconds, 3), TextTable::fmt(r.start_sequence)});
  }
  std::fputs(table.render().c_str(), stdout);

  server.shutdown();
  const auto stats = server.stats();
  std::printf(
      "\nservice stats: %llu submitted (%llu resumed), %llu completed, "
      "%llu cancelled, %llu deadline-expired, %llu invalid, %llu rejected, "
      "%llu slave faults\n",
      static_cast<unsigned long long>(stats.submitted),
      static_cast<unsigned long long>(stats.resumed),
      static_cast<unsigned long long>(stats.completed),
      static_cast<unsigned long long>(stats.cancelled),
      static_cast<unsigned long long>(stats.deadline_expired),
      static_cast<unsigned long long>(stats.invalid),
      static_cast<unsigned long long>(stats.rejected),
      static_cast<unsigned long long>(stats.slave_faults));
  return 0;
}
