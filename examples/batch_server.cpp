// Batch solve server: drive a mixed multi-tenant workload of MKP jobs
// through the solver service — now over the NETWORK client path. By default
// the demo embeds a SolverService, stands a net::Server up on an ephemeral
// loopback port and talks to itself through net::Client, exactly the frames
// a remote pts_client would send; --connect=host:port points the same
// workload at an external pts_serve instead. The workload exercises
// weighted-fair scheduling across two tenants, content-addressed dedup
// (identical submissions share one solve — visible in the ack), per-waiter
// deadlines, an admission error and a mid-flight remote cancel; nothing
// aborts.
//
//   ./batch_server                      default 12-job mix on 4 workers
//   options: --connect=host:port        drive an external pts_serve (pool
//                                       flags below then have no effect)
//            --jobs=12 --workers=4 --queue-cap=64 --seed=1
//            --mode=SEQ|ITS|CTS1|CTS2   force one cooperation mode
//            --shed                     queue overflow sheds the weakest
//                                       queued job (lowest tenant weight,
//                                       then lowest priority) when the
//                                       newcomer outranks it
//            --tenant=<name>            submit everything as this tenant
//                                       (default: a prod/batch demo mix with
//                                       weights 3:1 and a batch slot quota)
//            --journal=<path>           crash-safe job journal: jobs left
//                                       unresolved by a crash or shutdown are
//                                       re-enqueued as "resumed" on the next
//                                       start (DESIGN.md §9)
//            --warm-start=off|exact|similar --warm-start-dir=<dir>
//                                       persistent cross-job warm starts:
//                                       completed runs seed later jobs for
//                                       the same (or a similar) instance
//            --log-level=info --metrics --trace-out=trace.json  (telemetry)
//            --metrics-out=PATH         metrics snapshot at exit (Prometheus
//                                       text, or JSONL with a .jsonl suffix)
#include <chrono>
#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "mkp/generator.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "obs/telemetry.hpp"
#include "service/options.hpp"
#include "service/solver_service.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

struct Pending {
  pts::service::TenantId tenant;
  bool deduplicated = false;
  pts::net::RemoteJob job;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace pts;
  const auto args = CliArgs::parse(argc, argv);
  obs::TelemetrySession telemetry(obs::TelemetryOptions::from_cli(args));
  const auto common = service::CommonOptions::from_cli(args);
  if (!common) {
    std::fprintf(stderr, "%s\n", common.status().to_string().c_str());
    return 1;
  }

  const auto num_jobs = static_cast<std::size_t>(args.get_int("jobs", 12));
  const auto seed = common->seed;

  // Embedded mode: a real service + network front-end on a loopback
  // ephemeral port, so the demo exercises the exact frames a remote client
  // sends. --connect skips all of this and targets an external pts_serve.
  std::unique_ptr<service::SolverService> service;
  std::unique_ptr<net::Server> server;
  std::vector<std::future<service::JobResult>> recovered;
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  if (const auto target = args.get_string("connect", ""); !target.empty()) {
    const auto colon = target.rfind(':');
    if (colon == std::string::npos) {
      std::fprintf(stderr, "--connect wants host:port, got '%s'\n",
                   target.c_str());
      return 1;
    }
    host = target.substr(0, colon);
    port = static_cast<std::uint16_t>(
        std::strtoul(target.c_str() + colon + 1, nullptr, 10));
  } else {
    service::ServiceConfig pool;
    pool.num_workers = static_cast<std::size_t>(args.get_int("workers", 4));
    pool.queue_capacity =
        static_cast<std::size_t>(args.get_int("queue-cap", 64));
    pool.overflow = args.get_bool("shed", false)
                        ? service::OverflowPolicy::kShedLowest
                        : service::OverflowPolicy::kRejectNew;
    common->apply_service(pool);  // --journal, --warm-start-dir
    // The demo tenant roster: interactive "prod" work gets 3x the share of
    // bulk "batch" work, and batch may hold at most 2 pool slots at once. A
    // --tenant override routes every job to that one tenant instead.
    pool.tenants = {{"prod", 3.0, 0}, {"batch", 1.0, 2}};
    service = std::make_unique<service::SolverService>(pool);
    std::printf("pool: %zu workers, queue capacity %zu, tenants prod(w=3) / "
                "batch(w=1, <=2 slots)\n",
                pool.num_workers, pool.queue_capacity);

    // Jobs the previous incarnation never resolved (crash or shutdown
    // mid-flight) come back automatically; fold their futures into the
    // batch. These are service-side futures — they never crossed the wire.
    auto resumed = service->take_recovered();
    if (!resumed.empty()) {
      std::printf("recovered %zu unresolved job(s) from %s\n", resumed.size(),
                  pool.journal_path.c_str());
    }
    for (auto& submission : resumed) {
      recovered.push_back(std::move(submission.result));
    }

    net::ServerConfig net_config;
    net_config.worker_path = common->worker_path;
    auto started = net::Server::start(*service, net_config);
    if (!started) {
      std::fprintf(stderr, "%s\n", started.status().to_string().c_str());
      return 1;
    }
    server = std::move(*started);
    port = server->port();
    std::printf("embedded pts_serve on 127.0.0.1:%u\n", port);
  }
  std::printf("\n");

  auto connected = net::Client::connect(host, port);
  if (!connected) {
    std::fprintf(stderr, "%s\n", connected.status().to_string().c_str());
    return 1;
  }
  net::Client client = std::move(*connected);

  std::vector<Pending> pending;
  pending.reserve(num_jobs + 3);

  // A mixed workload: alternating sizes and presets across the two tenants,
  // a couple of urgent high-priority jobs with tight deadlines, and one
  // deliberately bogus preset — an ADMISSION error: the ack carries the
  // Status, no result frame ever follows.
  for (std::size_t k = 0; k < num_jobs; ++k) {
    service::SubmitRequest request;
    request.instance = std::make_shared<const mkp::Instance>(mkp::generate_gk(
        {.num_items = 40 + 20 * (k % 3), .num_constraints = 5}, seed + k));
    request.tenant =
        !common->tenant.empty() ? common->tenant : (k % 3 ? "batch" : "prod");
    request.warm_start = common->warm_start;
    request.options.seed = seed + k;
    request.options.mode = common->mode;
    request.options.preset = (k % 4 == 0) ? "quick" : "balanced";
    request.options.time_budget_seconds = 0.5;
    if (k % 5 == 1) {  // urgent: jumps its tenant's queue, must land in 1 s
      request.priority = 10;
      request.deadline_seconds = 1.0;
    }
    if (k == 2) request.options.preset = "warp-speed";  // structured error
    auto job = client.submit(request);
    if (!job) {
      std::printf("job %zu refused at admission: %s\n", k,
                  job.status().to_string().c_str());
      continue;
    }
    pending.push_back(Pending{request.tenant, job->deduplicated, *job});
  }

  // Content-addressed dedup: two tenants ask for the SAME instance with the
  // same solve shape — the service runs it once and fans the result out to
  // both waiters, and the ack says so.
  {
    const auto shared_inst = std::make_shared<const mkp::Instance>(
        mkp::generate_gk({.num_items = 80, .num_constraints = 5}, seed + 500));
    for (const char* tenant : {"prod", "batch"}) {
      service::SubmitRequest request;
      request.instance = shared_inst;
      request.tenant = common->tenant.empty() ? tenant : common->tenant;
      request.warm_start = common->warm_start;
      request.options.preset = "balanced";
      request.options.time_budget_seconds = 0.5;
      request.options.seed = seed + 500;
      request.options.mode = common->mode;
      auto job = client.submit(request);
      if (!job) continue;
      if (job->deduplicated) {
        std::printf("job %llu attached to an identical in-flight solve "
                    "(content hash %016llx)\n",
                    static_cast<unsigned long long>(job->job_id),
                    static_cast<unsigned long long>(job->content_hash));
      }
      pending.push_back(Pending{request.tenant, job->deduplicated, *job});
    }
    std::printf("\n");
  }

  // One long-budget job we cancel while it runs — over the wire, with a
  // kCancelJob frame: its result frame still arrives, carrying the best
  // solution found up to the cancel.
  {
    service::SubmitRequest request;
    request.instance = std::make_shared<const mkp::Instance>(
        mkp::generate_gk({.num_items = 100, .num_constraints = 10}, seed + 99));
    request.tenant = common->tenant.empty() ? "prod" : common->tenant;
    request.options.preset = "thorough";
    request.options.time_budget_seconds = 30.0;
    request.options.seed = seed;
    request.options.mode = common->mode;
    auto doomed = client.submit(request);
    if (doomed) {
      pending.push_back(Pending{request.tenant, doomed->deduplicated, *doomed});
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
      (void)client.cancel(*doomed);
      std::printf("cancelled job %llu mid-flight\n\n",
                  static_cast<unsigned long long>(doomed->job_id));
    }
  }

  TextTable table({"job", "tenant", "origin", "status", "best", "dedup", "warm",
                   "queued (s)", "ran (s)", "start#"});
  const auto add_row = [&table](const service::JobResult& r) {
    table.add_row({TextTable::fmt(r.id),
                   r.tenant.empty() ? "default" : r.tenant,
                   r.origin == service::JobOrigin::kResumed ? "resumed" : "fresh",
                   r.status.ok() ? "OK" : r.status.to_string(),
                   r.best ? TextTable::fmt(r.best_value, 1) : "-",
                   r.deduplicated ? "yes" : "-", r.warm_started ? "yes" : "-",
                   TextTable::fmt(r.queue_seconds, 3),
                   TextTable::fmt(r.run_seconds, 3),
                   TextTable::fmt(r.start_sequence)});
  };
  for (auto& entry : pending) {
    auto result = client.wait(entry.job);  // every accepted job answers
    if (!result) {
      std::fprintf(stderr, "wait for job %llu failed: %s\n",
                   static_cast<unsigned long long>(entry.job.job_id),
                   result.status().to_string().c_str());
      continue;
    }
    add_row(*result);
  }
  for (auto& future : recovered) add_row(future.get());
  std::fputs(table.render().c_str(), stdout);

  client.close();
  if (server) {
    server->drain(/*timeout_seconds=*/5.0);
    server->stop();
  }
  if (service) {
    service->shutdown();
    const auto stats = service->stats();
    std::printf(
        "\nservice stats: %llu submitted (%llu resumed), %llu completed, "
        "%llu cancelled, %llu deadline-expired, %llu invalid, %llu rejected, "
        "%llu dedup hits, %llu warm-started, %llu slave faults\n",
        static_cast<unsigned long long>(stats.submitted),
        static_cast<unsigned long long>(stats.resumed),
        static_cast<unsigned long long>(stats.completed),
        static_cast<unsigned long long>(stats.cancelled),
        static_cast<unsigned long long>(stats.deadline_expired),
        static_cast<unsigned long long>(stats.invalid),
        static_cast<unsigned long long>(stats.rejected),
        static_cast<unsigned long long>(stats.dedup_hits),
        static_cast<unsigned long long>(stats.warm_started),
        static_cast<unsigned long long>(stats.slave_faults));
  }
  return 0;
}
