// Capital budgeting — the application the paper's introduction motivates:
// choose a portfolio of projects maximizing total expected return, subject
// to budget ceilings in several categories (capex per year, engineering
// hours, risk budget). Each category is one knapsack constraint.
//
//   ./capital_budgeting [--projects=40] [--seed=7]
#include <cstdio>
#include <string>
#include <vector>

#include "exact/branch_and_bound.hpp"
#include "mkp/instance.hpp"
#include "parallel/runner.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

struct Project {
  std::string name;
  double expected_return;    // objective coefficient (k$)
  double capex_year1;        // k$
  double capex_year2;        // k$
  double engineering_hours;  // person-hours
  double risk_units;         // internal risk score
};

std::vector<Project> synthesize_projects(std::size_t count, std::uint64_t seed) {
  pts::Rng rng(seed);
  std::vector<Project> projects;
  projects.reserve(count);
  for (std::size_t k = 0; k < count; ++k) {
    Project p;
    p.name = "P" + std::to_string(k + 1);
    p.capex_year1 = static_cast<double>(rng.uniform_int(50, 400));
    p.capex_year2 = static_cast<double>(rng.uniform_int(20, 300));
    p.engineering_hours = static_cast<double>(rng.uniform_int(200, 2000));
    p.risk_units = static_cast<double>(rng.uniform_int(1, 30));
    // Returns correlate with total spend plus an idiosyncratic edge — the
    // same correlation structure that makes GK instances hard for greedy.
    p.expected_return = 0.6 * (p.capex_year1 + p.capex_year2) +
                        0.2 * p.engineering_hours / 8.0 +
                        static_cast<double>(rng.uniform_int(10, 150));
    projects.push_back(std::move(p));
  }
  return projects;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pts;
  const auto args = CliArgs::parse(argc, argv);
  const auto count = static_cast<std::size_t>(args.get_int("projects", 40));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 7));

  const auto projects = synthesize_projects(count, seed);

  // Model as a 0-1 MKP: four budget categories, capacities at ~40% of the
  // total requested spend in each.
  std::vector<double> profits, weights;
  profits.reserve(count);
  weights.resize(4 * count);
  double totals[4] = {0, 0, 0, 0};
  for (std::size_t j = 0; j < count; ++j) {
    const auto& p = projects[j];
    profits.push_back(p.expected_return);
    const double row[4] = {p.capex_year1, p.capex_year2, p.engineering_hours,
                           p.risk_units};
    for (std::size_t i = 0; i < 4; ++i) {
      weights[i * count + j] = row[i];
      totals[i] += row[i];
    }
  }
  std::vector<double> capacities(4);
  for (std::size_t i = 0; i < 4; ++i) capacities[i] = 0.4 * totals[i];
  mkp::Instance inst("capital-budget", std::move(profits), std::move(weights),
                     std::move(capacities));

  // Solve with the parallel tabu search.
  parallel::ParallelConfig config;
  config.num_slaves = 4;
  config.search_iterations = 4;
  config.work_per_slave_round = 5'000;
  config.seed = seed;
  const auto result = parallel::run_parallel_tabu_search(inst, config);

  // For a portfolio this small the exact solver certifies the answer.
  exact::BnbOptions bnb_options;
  bnb_options.time_limit_seconds = 10.0;
  const auto certificate = exact::branch_and_bound(inst, bnb_options);

  TextTable table({"project", "return k$", "capex1", "capex2", "eng-h", "risk"});
  double spend[4] = {0, 0, 0, 0};
  for (std::size_t j : result.best.selected_items()) {
    const auto& p = projects[j];
    table.add_row({p.name, TextTable::fmt(p.expected_return, 0),
                   TextTable::fmt(p.capex_year1, 0), TextTable::fmt(p.capex_year2, 0),
                   TextTable::fmt(p.engineering_hours, 0),
                   TextTable::fmt(p.risk_units, 0)});
    spend[0] += p.capex_year1;
    spend[1] += p.capex_year2;
    spend[2] += p.engineering_hours;
    spend[3] += p.risk_units;
  }
  std::printf("Selected portfolio (%zu of %zu projects), total return %.0f k$:\n",
              result.best.cardinality(), count, result.best_value);
  std::fputs(table.render().c_str(), stdout);
  const char* labels[4] = {"capex year 1", "capex year 2", "engineering hours",
                           "risk budget"};
  for (std::size_t i = 0; i < 4; ++i) {
    std::printf("  %-18s %8.0f / %8.0f used\n", labels[i], spend[i],
                inst.capacity(i));
  }
  if (certificate.proven_optimal) {
    std::printf("exact optimum: %.0f k$ -> tabu search %s\n", certificate.objective,
                result.best_value >= certificate.objective - 1e-9
                    ? "matched it"
                    : "left value on the table");
  }
  return 0;
}
