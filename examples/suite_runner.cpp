// Suite runner: sweep one of the named benchmark suites with a preset and
// print a per-class summary — the "evaluate this solver on the standard
// workloads" workflow in one command.
//
//   ./suite_runner [--suite=cb|fp57|table1] [--preset=quick|balanced|...]
//                  [--mode=SEQ|ITS|CTS1|CTS2] [--scale=0.25] [--seed=1]
//                  [--backend=thread|proc] [--worker=<pts_worker path>]
//                  [--autotune]
//                  [--checkpoint=<base>] [--checkpoint-every=N] [--resume]
//                    (crash safety: instance k of the sweep checkpoints to
//                     <base>.k; --resume skips/continues from those files)
//                  [--log-level=info] [--metrics] [--trace-out=trace.json]
//                  [--metrics-out=PATH] [--metrics-every=S]
//                    (metrics-registry snapshots: Prometheus text, or JSONL
//                     with a .jsonl suffix; rewritten every S seconds while
//                     the sweep runs, final snapshot at exit)
#include <cstdio>
#include <optional>

#include "bounds/simplex.hpp"
#include "parallel/snapshot.hpp"
#include "mkp/generator.hpp"
#include "mkp/suites.hpp"
#include "obs/telemetry.hpp"
#include "parallel/autotune.hpp"
#include "parallel/presets.hpp"
#include "parallel/runner.hpp"
#include "service/options.hpp"
#include "tabu/engine.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

std::vector<pts::mkp::SuiteClass> load_suite(const std::string& name,
                                             std::uint64_t seed, double scale) {
  using namespace pts::mkp;
  if (name == "fp57") {
    std::vector<SuiteClass> classes;
    auto problems = generate_fp57(seed);
    const std::size_t take =
        std::max<std::size_t>(1, static_cast<std::size_t>(57 * scale));
    SuiteClass cls;
    cls.label = "fp57[0.." + std::to_string(take - 1) + "]";
    for (std::size_t k = 0; k < take; ++k) cls.instances.push_back(std::move(problems[k]));
    classes.push_back(std::move(cls));
    return classes;
  }
  if (name == "table1") {
    std::vector<SuiteClass> classes;
    for (auto& gk_class : generate_gk_table1_classes(seed, 1, scale)) {
      SuiteClass cls;
      cls.label = gk_class.label;
      cls.instances = std::move(gk_class.instances);
      classes.push_back(std::move(cls));
    }
    return classes;
  }
  ChuBeasleyConfig config;
  config.size_scale = scale;
  config.constraint_counts = {5, 10};
  config.item_counts = {100, 250};
  return generate_chu_beasley(seed, config);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pts;
  const auto args = CliArgs::parse(argc, argv);
  obs::TelemetrySession telemetry(obs::TelemetryOptions::from_cli(args));
  const auto common = service::CommonOptions::from_cli(args);
  if (!common) {
    std::fprintf(stderr, "%s\n", common.status().to_string().c_str());
    return 1;
  }
  const auto suite_name = args.get_string("suite", "cb");
  const auto seed = common->seed;
  const auto scale = args.get_double("scale", 0.5);
  const bool autotune = args.get_bool("autotune", false);

  auto preset = common->resolve_config(/*fallback_preset=*/"quick");
  if (!preset) {
    std::fprintf(stderr, "%s\n", preset.status().to_string().c_str());
    return 1;
  }

  const auto checkpoint_base = common->checkpoint_path;
  const auto checkpoint_every = common->checkpoint_every_rounds;
  const bool resume = common->resume;

  const auto classes = load_suite(suite_name, seed, scale);
  std::printf("suite '%s' (%zu class(es)), preset '%s'%s\n\n", suite_name.c_str(),
              classes.size(), common->preset_name.value_or("quick").c_str(),
              autotune ? ", with autotuned sequential rerun" : "");

  TextTable table(autotune ? std::vector<std::string>{"class", "mean LP gap (%)",
                                                      "autotuned gap (%)", "time (s)"}
                           : std::vector<std::string>{"class", "mean LP gap (%)",
                                                      "time (s)"});
  obs::CounterStats counter_stats;
  std::size_t instance_index = 0;
  for (const auto& cls : classes) {
    RunningStats gaps, tuned_gaps;
    Stopwatch watch;
    for (const auto& inst : cls.instances) {
      auto config = *preset;
      parallel::scale_budget_to_instance(config, inst);

      // Crash safety for long sweeps: every instance checkpoints to its own
      // numbered file; a resumed sweep fast-forwards through the instances
      // whose checkpoints are already complete and continues the one that
      // was mid-run when the driver died.
      std::optional<parallel::snapshot::MasterCheckpoint> checkpoint;
      if (!checkpoint_base.empty()) {
        config.checkpoint_path =
            checkpoint_base + "." + std::to_string(instance_index);
        config.checkpoint_every_rounds = checkpoint_every;
        if (resume) {
          auto loaded =
              parallel::snapshot::load_checkpoint(config.checkpoint_path, inst);
          if (loaded) {
            const auto compat = parallel::snapshot::check_compatible(
                *loaded, inst, config.seed, config.num_slaves,
                config.mode != parallel::CooperationMode::kIndependent,
                config.mode == parallel::CooperationMode::kCooperativeAdaptive);
            if (!compat.ok()) {
              std::fprintf(stderr, "%s: cannot resume: %s\n",
                           inst.name().c_str(), compat.to_string().c_str());
              return 1;
            }
            checkpoint = *std::move(loaded);
            config.resume = &*checkpoint;
          } else if (loaded.status().code() != StatusCode::kUnavailable) {
            std::fprintf(stderr, "%s: %s\n", inst.name().c_str(),
                         loaded.status().to_string().c_str());
            return 1;
          }
        }
      }
      ++instance_index;

      const auto result = parallel::run_parallel_tabu_search(inst, config);
      if (!result.status.ok()) {
        std::fprintf(stderr, "backend failed: %s\n",
                     result.status.to_string().c_str());
        return 1;
      }
      counter_stats.merge(result.master.counter_stats);
      const auto lp = bounds::solve_lp_relaxation(inst);
      if (lp.optimal()) {
        gaps.add(deviation_percent(result.best_value, lp.objective));
      }
      if (autotune && lp.optimal()) {
        const auto tuned = parallel::recommend_strategy(inst);
        Rng rng(seed);
        tabu::TsParams params;
        params.strategy = tuned.recommended;
        params.max_moves = 10'000 / params.strategy.nb_drop;
        const auto rerun = tabu::tabu_search_from_scratch(inst, params, rng);
        tuned_gaps.add(deviation_percent(rerun.best_value, lp.objective));
      }
    }
    if (autotune) {
      table.add_row({cls.label, TextTable::fmt(gaps.mean(), 2),
                     TextTable::fmt(tuned_gaps.mean(), 2),
                     TextTable::fmt(watch.elapsed_seconds(), 2)});
    } else {
      table.add_row({cls.label, TextTable::fmt(gaps.mean(), 2),
                     TextTable::fmt(watch.elapsed_seconds(), 2)});
    }
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("\n(LP gap over-states the true deviation by the integrality gap;\n"
              " see EXPERIMENTS.md.)\n");
  if (telemetry.metrics()) {
    std::printf("\nsearch counters over %zu (slave, round) runs:\n",
                counter_stats.snapshots());
    obs::print_counter_report(stdout, counter_stats);
  }
  return 0;
}
