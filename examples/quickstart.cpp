// Quickstart: generate a 0-1 MKP instance, run the parallel cooperative
// tabu search (CTS2), and inspect the result.
//
//   ./quickstart [--items=250] [--constraints=10] [--slaves=4] [--seed=42]
#include <cstdio>

#include "bounds/simplex.hpp"
#include "mkp/generator.hpp"
#include "parallel/runner.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace pts;
  const auto args = CliArgs::parse(argc, argv);

  // 1. Build (or load — see orlib_solver) an instance.
  mkp::GkConfig gen;
  gen.num_items = static_cast<std::size_t>(args.get_int("items", 250));
  gen.num_constraints = static_cast<std::size_t>(args.get_int("constraints", 10));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  const auto inst = mkp::generate_gk(gen, seed);
  std::printf("instance %s: n=%zu items, m=%zu constraints\n", inst.name().c_str(),
              inst.num_items(), inst.num_constraints());

  // 2. Configure the parallel search. CTS2 = cooperative threads with
  //    dynamic strategy setting — the paper's full algorithm.
  parallel::ParallelConfig config;
  config.mode = parallel::CooperationMode::kCooperativeAdaptive;
  config.num_slaves = static_cast<std::size_t>(args.get_int("slaves", 4));
  config.search_iterations = 5;          // master rounds
  config.work_per_slave_round = 10'000;  // move*nb_drop units per slave round
  config.seed = seed;

  // 3. Run.
  const auto result = parallel::run_parallel_tabu_search(inst, config);

  // 4. Inspect: objective, quality vs the LP upper bound, selected items.
  const auto lp = bounds::solve_lp_relaxation(inst);
  std::printf("best value: %.1f (feasible: %s)\n", result.best_value,
              result.best.is_feasible() ? "yes" : "no");
  std::printf("LP upper bound: %.1f  ->  gap <= %.2f%%\n", lp.objective,
              deviation_percent(result.best_value, lp.objective));
  std::printf("total moves: %llu across %zu rounds, %.2fs wall\n",
              static_cast<unsigned long long>(result.total_moves),
              result.master.rounds_completed, result.seconds);

  const auto items = result.best.selected_items();
  std::printf("%zu items selected; first few:", items.size());
  for (std::size_t k = 0; k < items.size() && k < 12; ++k) {
    std::printf(" %zu", items[k]);
  }
  std::printf("%s\n", items.size() > 12 ? " ..." : "");
  return 0;
}
