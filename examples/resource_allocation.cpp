// Resource allocation — the paper's second motivating application: admit a
// subset of jobs onto a machine with several finite resources (CPU, memory,
// network, storage), maximizing total utility. Compares the parallel tabu
// search against three greedy policies a practitioner might try first.
//
//   ./resource_allocation [--jobs=120] [--seed=11]
#include <cstdio>
#include <vector>

#include "bounds/greedy.hpp"
#include "bounds/simplex.hpp"
#include "mkp/instance.hpp"
#include "parallel/runner.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace pts;
  const auto args = CliArgs::parse(argc, argv);
  const auto jobs = static_cast<std::size_t>(args.get_int("jobs", 120));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 11));

  // Synthesize a heterogeneous job mix: CPU-bound, memory-bound, balanced.
  Rng rng(seed);
  const std::size_t resources = 4;  // CPU cores, GiB RAM, Gbit/s, TiB disk
  std::vector<double> profits(jobs), weights(resources * jobs);
  for (std::size_t j = 0; j < jobs; ++j) {
    const int archetype = static_cast<int>(rng.uniform_int(0, 2));
    const double cpu = archetype == 0 ? rng.uniform_real(8, 32) : rng.uniform_real(1, 8);
    const double ram = archetype == 1 ? rng.uniform_real(32, 128) : rng.uniform_real(2, 32);
    const double net = rng.uniform_real(0.1, 4.0);
    const double disk = rng.uniform_real(0.05, 2.0);
    weights[0 * jobs + j] = cpu;
    weights[1 * jobs + j] = ram;
    weights[2 * jobs + j] = net;
    weights[3 * jobs + j] = disk;
    // Utility grows with resources consumed plus job-specific value.
    profits[j] = 2.0 * cpu + 0.5 * ram + 10.0 * net + rng.uniform_real(5, 60);
  }
  // Cluster capacity: roughly a third of aggregate demand per resource.
  std::vector<double> capacities(resources);
  for (std::size_t i = 0; i < resources; ++i) {
    double total = 0.0;
    for (std::size_t j = 0; j < jobs; ++j) total += weights[i * jobs + j];
    capacities[i] = total / 3.0;
  }
  mkp::Instance inst("cluster-admission", std::move(profits), std::move(weights),
                     std::move(capacities));

  // Baselines a scheduler might ship first.
  const auto by_profit = bounds::greedy_construct(inst, bounds::GreedyOrder::kProfit);
  const auto by_density = bounds::greedy_construct(inst, bounds::GreedyOrder::kDensity);
  const auto by_scaled =
      bounds::greedy_construct(inst, bounds::GreedyOrder::kScaledDensity);

  // The parallel tabu search.
  parallel::ParallelConfig config;
  config.num_slaves = 4;
  config.search_iterations = 5;
  config.work_per_slave_round = 8'000;
  config.seed = seed;
  const auto ts = parallel::run_parallel_tabu_search(inst, config);

  const auto lp = bounds::solve_lp_relaxation(inst);

  TextTable table({"policy", "total utility", "jobs admitted", "gap to LP bound (%)"});
  auto row = [&](const char* label, const mkp::Solution& s) {
    table.add_row({label, TextTable::fmt(s.value(), 1),
                   TextTable::fmt(s.cardinality()),
                   TextTable::fmt(deviation_percent(s.value(), lp.objective), 2)});
  };
  row("greedy: highest utility first", by_profit);
  row("greedy: utility density", by_density);
  row("greedy: capacity-scaled density", by_scaled);
  row("parallel tabu search (CTS2)", ts.best);

  std::printf("admitting jobs onto a %zu-resource cluster (%zu candidates)\n",
              resources, jobs);
  std::fputs(table.render().c_str(), stdout);
  std::printf("LP upper bound: %.1f\n", lp.objective);
  for (std::size_t i = 0; i < resources; ++i) {
    std::printf("  resource %zu: %.1f / %.1f used by TS solution\n", i,
                ts.best.load(i), inst.capacity(i));
  }
  return 0;
}
