// Search diagnostics: profile an instance's structure, run a tabu search
// with the trajectory recorder attached, and print an ASCII anytime curve
// plus the phase summary — the workflow for understanding *why* a search is
// slow or stuck on a particular instance before touching parameters.
//
//   ./search_diagnostics [--items=200] [--constraints=10] [--seed=5]
//                        [--moves=20000] [--family=gk|fp|uncorrelated]
//                        [--trace-out=trace.json] [--log-level=info]
#include <cstdio>
#include <string>

#include "mkp/analysis.hpp"
#include "mkp/generator.hpp"
#include "obs/telemetry.hpp"
#include "tabu/trajectory.hpp"
#include "util/cli.hpp"

namespace {

pts::mkp::Instance make_instance(const std::string& family, std::size_t n,
                                 std::size_t m, std::uint64_t seed) {
  if (family == "fp") {
    return pts::mkp::generate_fp({.num_items = n, .num_constraints = m}, seed);
  }
  if (family == "uncorrelated") {
    return pts::mkp::generate_uncorrelated(n, m, seed);
  }
  return pts::mkp::generate_gk({.num_items = n, .num_constraints = m}, seed);
}

void print_anytime_curve(const pts::tabu::TrajectoryRecorder& recorder,
                         std::uint64_t total_moves) {
  constexpr int kRows = 12;
  constexpr int kCols = 60;
  if (recorder.samples().empty() || total_moves == 0) return;
  // Scale the y axis between the first recorded best and the final best —
  // against a greedy start the interesting band is the last few percent.
  const double floor_value = recorder.samples().front().best_value;
  const double final_best = recorder.summarize().final_best;
  const double span = final_best - floor_value;
  if (span <= 0.0) {
    std::printf("\n(no improvement over the starting solution — flat profile)\n");
    return;
  }

  std::printf("\nanytime profile (x: moves 0..%llu, y: best %.1f..%.1f):\n",
              static_cast<unsigned long long>(total_moves), floor_value, final_best);
  for (int row = kRows; row >= 1; --row) {
    const double threshold = floor_value + span * row / kRows;
    std::fputs(row == kRows ? "best |" : "     |", stdout);
    for (int col = 1; col <= kCols; ++col) {
      const auto at = total_moves * col / kCols;
      std::fputc(recorder.best_at(at) >= threshold ? '#' : ' ', stdout);
    }
    std::fputc('\n', stdout);
  }
  std::printf("     +%s\n", std::string(kCols, '-').c_str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pts;
  const auto args = CliArgs::parse(argc, argv);
  obs::TelemetrySession telemetry(obs::TelemetryOptions::from_cli(args));
  const auto n = static_cast<std::size_t>(args.get_int("items", 200));
  const auto m = static_cast<std::size_t>(args.get_int("constraints", 10));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 5));
  const auto moves = static_cast<std::uint64_t>(args.get_int("moves", 20000));
  const auto family = args.get_string("family", "gk");

  const auto inst = make_instance(family, n, m, seed);

  // 1. What kind of instance is this?
  const auto profile = mkp::profile_instance(inst);
  std::printf("instance %s\n  %s\n", inst.name().c_str(), profile.to_string().c_str());
  if (profile.profit_weight_correlation > 0.6) {
    std::printf("  -> strongly correlated: greedy orderings are weak here; "
                "expect the search to do the work\n");
  }
  if (profile.tightness_mean < 0.3) {
    std::printf("  -> tight capacities: solutions hold ~%.0f%% of the items\n",
                100.0 * profile.expected_fill);
  }

  // 2. Run one instrumented tabu search.
  Rng rng(seed);
  tabu::TsParams params;
  params.max_moves = moves;
  params.strategy.nb_local = 25;
  tabu::TrajectoryRecorder recorder(/*stride=*/std::max<std::uint64_t>(1, moves / 512));
  const auto result = tabu::tabu_search_from_scratch(inst, params, rng, &recorder);

  // 3. Report. The counter block (obs/counters.hpp) carries everything the
  // old ad-hoc move-stats printout did, plus the kernel-level facts — how
  // many candidates the O(1) prune rejected before a column was ever read.
  const auto summary = recorder.summarize();
  std::printf("\nsearch summary: %s\n", summary.to_string().c_str());
  std::printf("\nsearch counters:\n");
  obs::print_counter_report(stdout, result.counters);
  const auto tried = result.counters[obs::Counter::kFitScoreCalls] +
                     result.counters[obs::Counter::kPruneEarlyOuts];
  if (tried > 0) {
    std::printf("  -> the min-slack prune short-circuited %.1f%% of add "
                "candidates\n",
                100.0 * static_cast<double>(
                            result.counters[obs::Counter::kPruneEarlyOuts]) /
                    static_cast<double>(tried));
  }
  if (summary.moves_to_99pct > 0 && summary.moves_to_99pct < moves / 4) {
    std::printf("  -> 99%% of the final quality arrived in the first quarter of "
                "the budget; shorter runs (or more restarts) would pay off\n");
  }
  print_anytime_curve(recorder, result.moves);
  if (!result.anytime.empty()) {
    const auto& last = result.anytime.back();
    std::printf("\nanytime recorder: %zu improvement(s); last at %.3fs / move "
                "%llu (value %.1f)\n",
                result.anytime.size(), last.seconds,
                static_cast<unsigned long long>(last.work_units), last.value);
  }
  return 0;
}
