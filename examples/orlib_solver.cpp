// OR-Library file solver: read problems in the standard mknap format
// (the format the paper's two benchmark sets are distributed in), solve each
// with the parallel tabu search, and report against the recorded optimum
// when the file carries one.
//
//   ./orlib_solver <file>            solve every problem in the file
//   ./orlib_solver --demo            write a demo file, then solve it
//   options: --slaves=4 --rounds=5 --work=8000 --seed=1
//           --preset=quick|balanced|thorough|paper  (overrides the above)
//           --mode=SEQ|ITS|CTS1|CTS2  force one cooperation mode
//           --backend=thread|proc  slave execution (proc spawns pts_worker
//               processes; --worker=<path> overrides the binary location)
//           --save=<dir>   write each best solution as <dir>/<name>.mkpsol
//           --checkpoint=<path> --checkpoint-every=N --resume  crash safety:
//               checkpoint the master every N rounds (problem k of a multi-
//               problem file uses <path>.k); --resume continues from the
//               checkpoint after a kill -9 (DESIGN.md §9)
//           --core-reduction  fix variables by LP reduced cost before the
//               search and run the cooperative search on the residual core
//               (results are lifted back to full space; composes with
//               --checkpoint/--resume — the runner validates the stored
//               fixing itself)
//           --core-gap=EPS  approximate core: also fix variables whose
//               flip could only improve the bound by < EPS (larger cores
//               fix more but may cut near-ties; 0 = strict, never cuts a
//               strictly better solution)
//           --log-level=info --metrics --trace-out=trace.json  (telemetry)
//           --metrics-out=PATH  write a metrics snapshot at exit (Prometheus
//               text; a .jsonl suffix selects JSONL); --metrics-every=S
//               additionally rewrites it every S seconds while running.
//               With --backend=proc the snapshot folds in every worker's
//               counters and --trace-out merges worker spans into one
//               timeline (DESIGN.md §6)
#include <cstdio>
#include <optional>
#include <string>

#include "bounds/simplex.hpp"
#include "mkp/generator.hpp"
#include "mkp/parser.hpp"
#include "mkp/solution_io.hpp"
#include "obs/telemetry.hpp"
#include "parallel/presets.hpp"
#include "parallel/runner.hpp"
#include "parallel/snapshot.hpp"
#include "service/options.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace pts;
  const auto args = CliArgs::parse(argc, argv);
  obs::TelemetrySession telemetry(obs::TelemetryOptions::from_cli(args));

  std::string path;
  if (args.get_bool("demo", false) || args.positional().empty()) {
    // No file given: write a small demo batch and solve that.
    path = "/tmp/pts_orlib_demo.txt";
    std::vector<mkp::Instance> demo;
    for (std::uint64_t k = 1; k <= 3; ++k) {
      demo.push_back(mkp::generate_gk({.num_items = 60, .num_constraints = 5}, k));
    }
    mkp::write_orlib_file(path, demo);
    std::printf("no input file given — wrote a 3-problem demo to %s\n\n",
                path.c_str());
  } else {
    path = args.positional().front();
  }

  std::vector<mkp::Instance> problems;
  try {
    problems = mkp::read_orlib_file(path);
  } catch (const mkp::ParseError& error) {
    std::fprintf(stderr, "failed to read %s: %s\n", path.c_str(), error.what());
    return 1;
  }
  std::printf("%zu problem(s) in %s\n", problems.size(), path.c_str());

  const auto common = service::CommonOptions::from_cli(args);
  if (!common) {
    std::fprintf(stderr, "%s\n", common.status().to_string().c_str());
    return 1;
  }
  parallel::ParallelConfig config;
  if (common->preset_name) {
    auto resolved = common->resolve_config(*common->preset_name);
    if (!resolved) {
      std::fprintf(stderr, "%s\n", resolved.status().to_string().c_str());
      return 1;
    }
    config = *std::move(resolved);
  } else {
    config.num_slaves = static_cast<std::size_t>(args.get_int("slaves", 4));
    config.search_iterations = static_cast<std::size_t>(args.get_int("rounds", 5));
    config.work_per_slave_round =
        static_cast<std::uint64_t>(args.get_int("work", 8000));
    common->apply_overrides(config);
  }
  config.core.enabled = args.get_bool("core-reduction", false);
  config.core.gap_eps = args.get_double("core-gap", 0.0);
  const auto save_dir = args.get_string("save", "");
  const auto checkpoint_base = common->checkpoint_path;
  const auto checkpoint_every = common->checkpoint_every_rounds;
  const bool resume = common->resume;

  TextTable table({"problem", "n", "m", "best found", "reference", "gap (%)",
                   "time (s)"});
  int not_reached = 0;
  obs::CounterStats counter_stats;
  std::size_t problem_index = 0;
  for (const auto& inst : problems) {
    auto problem_config = config;
    parallel::scale_budget_to_instance(problem_config, inst);
    if (inst.known_optimum()) problem_config.target_value = *inst.known_optimum();

    // Crash safety: checkpoint this problem's master state as it runs, and
    // with --resume continue from wherever the previous (killed) invocation
    // got to. A missing checkpoint just means "start from round 0".
    std::optional<parallel::snapshot::MasterCheckpoint> checkpoint;
    if (!checkpoint_base.empty()) {
      problem_config.checkpoint_path =
          problems.size() == 1
              ? checkpoint_base
              : checkpoint_base + "." + std::to_string(problem_index);
      problem_config.checkpoint_every_rounds = checkpoint_every;
      if (resume && problem_config.core.enabled) {
        // Under core reduction the checkpoint's solutions live in core
        // coordinates; only the runner (which rederives the reduction) can
        // decode and validate them. Hand it the path instead of a loaded
        // checkpoint.
        problem_config.resume_from_path = problem_config.checkpoint_path;
      } else if (resume) {
        auto loaded = parallel::snapshot::load_checkpoint(
            problem_config.checkpoint_path, inst);
        if (loaded) {
          const auto compat = parallel::snapshot::check_compatible(
              *loaded, inst, problem_config.seed, problem_config.num_slaves,
              problem_config.mode != parallel::CooperationMode::kIndependent,
              problem_config.mode ==
                  parallel::CooperationMode::kCooperativeAdaptive);
          if (!compat.ok()) {
            std::fprintf(stderr, "%s: cannot resume: %s\n", inst.name().c_str(),
                         compat.to_string().c_str());
            return 1;
          }
          checkpoint = *std::move(loaded);
          problem_config.resume = &*checkpoint;
          std::printf("%s: resuming from round %llu (best so far %.1f)\n",
                      inst.name().c_str(),
                      static_cast<unsigned long long>(checkpoint->next_round),
                      checkpoint->best.value());
        } else if (loaded.status().code() != StatusCode::kUnavailable) {
          std::fprintf(stderr, "%s: %s\n", inst.name().c_str(),
                       loaded.status().to_string().c_str());
          return 1;
        }
      }
    }
    ++problem_index;

    const auto result = parallel::run_parallel_tabu_search(inst, problem_config);
    if (!result.status.ok()) {
      std::fprintf(stderr, "%s: backend failed: %s\n", inst.name().c_str(),
                   result.status.to_string().c_str());
      return 1;
    }
    counter_stats.merge(result.master.counter_stats);
    if (result.core_engaged) {
      std::printf(
          "%s: core reduction fixed %zu to 0, %zu to 1 (%zu of %zu free)\n",
          inst.name().c_str(), result.core_fixed_zero, result.core_fixed_one,
          inst.num_items() - result.core_fixed_zero - result.core_fixed_one,
          inst.num_items());
    }

    if (!save_dir.empty()) {
      auto safe_name = inst.name();
      for (auto& c : safe_name) {
        if (c == '/' || c == ' ') c = '_';
      }
      const auto out_path = save_dir + "/" + safe_name + ".mkpsol";
      try {
        mkp::write_solution_file(out_path, result.best);
      } catch (const mkp::SolutionIoError& error) {
        std::fprintf(stderr, "could not save %s: %s\n", out_path.c_str(),
                     error.what());
      }
    }

    std::string reference = "-";
    std::string gap = "-";
    if (inst.known_optimum()) {
      reference = TextTable::fmt(*inst.known_optimum(), 1) + " (file opt)";
      gap = TextTable::fmt(
          deviation_percent(result.best_value, *inst.known_optimum()), 3);
      if (result.best_value < *inst.known_optimum() - 1e-6) ++not_reached;
    } else {
      const auto lp = bounds::solve_lp_relaxation(inst);
      if (lp.optimal()) {
        reference = TextTable::fmt(lp.objective, 1) + " (LP bound)";
        gap = TextTable::fmt(deviation_percent(result.best_value, lp.objective), 3);
      }
    }
    table.add_row({inst.name(), TextTable::fmt(inst.num_items()),
                   TextTable::fmt(inst.num_constraints()),
                   TextTable::fmt(result.best_value, 1), reference, gap,
                   TextTable::fmt(result.seconds, 2)});
  }
  std::fputs(table.render().c_str(), stdout);
  if (not_reached > 0) {
    std::printf("%d problem(s) below the recorded optimum — raise --work or "
                "--rounds for a deeper search\n", not_reached);
  }
  if (telemetry.metrics()) {
    std::printf("\nsearch counters over %zu (slave, round) runs:\n",
                counter_stats.snapshots());
    obs::print_counter_report(stdout, counter_stats);
  }
  return 0;
}
