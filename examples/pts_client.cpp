// pts_client: submit MKP jobs to a running pts_serve daemon and wait for
// the results — the thin-CLI face of the net::Client library. The same
// SubmitRequest issued here and through the in-process service produces a
// bit-identical trajectory on a fixed seed: the wire carries IEEE-754 bit
// patterns, never formatted approximations.
//
//   ./pts_client --port=7075 problems.txt          every instance in the file
//   ./pts_client --port=7075 --generate=100x5      one generated instance
//   options: --host=127.0.0.1 --port=N   where pts_serve listens (required)
//            --generate=NxM              generate an NxM instance (--seed
//                                        shapes it) instead of reading files
//            --preset=... --seed=N --mode=... --backend=thread|proc
//                                        solve shape (shared vocabulary,
//                                        service/options.hpp)
//            --budget=2.0                per-job time budget (seconds)
//            --tenant=<name>             tenant identity; sticky on the
//                                        connection once set
//            --priority=N --deadline=S   per-submission urgency
//            --warm-start=off|exact|similar   seed from the server's store
//            --no-dedup                  opt out of in-flight dedup
//            --cancel-after=S            cancel every job S seconds after
//                                        submission (demo of remote cancel)
//
// Positional arguments are ORLIB-format files (mkp/parser.hpp); each file
// may hold several instances and every instance becomes one submission.
// All jobs are submitted first, then awaited — the connection multiplexes.
#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "mkp/generator.hpp"
#include "mkp/parser.hpp"
#include "net/client.hpp"
#include "service/options.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace pts;
  const auto args = CliArgs::parse(argc, argv);
  const auto common = service::CommonOptions::from_cli(args);
  if (!common) {
    std::fprintf(stderr, "%s\n", common.status().to_string().c_str());
    return 1;
  }
  const auto port = args.get_int("port", 0);
  if (port <= 0 || port > 65535) {
    std::fprintf(stderr, "pts_client: --port=N (1..65535) is required\n");
    return 1;
  }

  // Assemble the instance list: ORLIB files, or one generated instance.
  std::vector<std::shared_ptr<const mkp::Instance>> instances;
  if (const auto spec = args.get_string("generate", ""); !spec.empty()) {
    const auto cross = spec.find('x');
    const std::size_t n = std::strtoul(spec.c_str(), nullptr, 10);
    const std::size_t m = cross == std::string::npos
                              ? 5
                              : std::strtoul(spec.c_str() + cross + 1, nullptr, 10);
    if (n == 0 || m == 0) {
      std::fprintf(stderr, "pts_client: bad --generate spec '%s' (want NxM)\n",
                   spec.c_str());
      return 1;
    }
    instances.push_back(std::make_shared<const mkp::Instance>(mkp::generate_gk(
        {.num_items = n, .num_constraints = m}, common->seed)));
  }
  for (const auto& path : args.positional()) {
    for (auto& inst : mkp::read_orlib_file(path)) {
      instances.push_back(std::make_shared<const mkp::Instance>(std::move(inst)));
    }
  }
  if (instances.empty()) {
    std::fprintf(stderr,
                 "pts_client: nothing to solve (pass ORLIB files or "
                 "--generate=NxM)\n");
    return 1;
  }

  auto client = net::Client::connect(args.get_string("host", "127.0.0.1"),
                                     static_cast<std::uint16_t>(port));
  if (!client) {
    std::fprintf(stderr, "%s\n", client.status().to_string().c_str());
    return 1;
  }

  // Submit everything up front; the connection multiplexes the waits.
  std::vector<net::RemoteJob> jobs;
  for (std::size_t k = 0; k < instances.size(); ++k) {
    service::SubmitRequest request;
    request.instance = instances[k];
    request.tenant = common->tenant;
    request.priority = static_cast<int>(args.get_int("priority", 0));
    if (args.has("deadline")) {
      request.deadline_seconds = args.get_double("deadline", 0.0);
    }
    request.warm_start = common->warm_start;
    request.allow_dedup = !args.get_bool("no-dedup", false);
    if (common->preset_name) request.options.preset = *common->preset_name;
    request.options.time_budget_seconds = args.get_double("budget", 2.0);
    request.options.seed = common->seed + k;
    request.options.mode = common->mode;
    request.options.backend = common->backend;
    auto job = client->submit(request);
    if (!job) {
      std::printf("instance %zu refused: %s\n", k,
                  job.status().to_string().c_str());
      continue;
    }
    std::printf("submitted %s as job %llu%s\n",
                instances[k]->name().c_str(),
                static_cast<unsigned long long>(job->job_id),
                job->deduplicated ? " (deduplicated)" : "");
    jobs.push_back(std::move(*job));
  }

  if (const double after = args.get_double("cancel-after", 0.0); after > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(after));
    for (const auto& job : jobs) (void)client->cancel(job);
    std::printf("cancelled %zu job(s) after %.2fs\n", jobs.size(), after);
  }

  TextTable table({"job", "status", "best", "moves", "dedup", "warm",
                   "queued (s)", "ran (s)"});
  int failures = 0;
  for (const auto& job : jobs) {
    auto result = client->wait(job);
    if (!result) {
      std::fprintf(stderr, "wait for job %llu failed: %s\n",
                   static_cast<unsigned long long>(job.job_id),
                   result.status().to_string().c_str());
      ++failures;
      continue;
    }
    table.add_row({TextTable::fmt(result->id),
                   result->status.ok() ? "OK" : result->status.to_string(),
                   result->best ? TextTable::fmt(result->best_value, 1) : "-",
                   TextTable::fmt(result->total_moves),
                   result->deduplicated ? "yes" : "-",
                   result->warm_started ? "yes" : "-",
                   TextTable::fmt(result->queue_seconds, 3),
                   TextTable::fmt(result->run_seconds, 3)});
  }
  std::fputs(table.render().c_str(), stdout);
  if (client->goodbye_reason()) {
    std::printf("server said goodbye: %s\n", client->goodbye_reason()->c_str());
  }
  return failures == 0 ? 0 : 1;
}
