// Dynamic parameter tuning — the paper's headline claim beyond speedup:
// "parallel cooperative search may be used to unload the user from the task
// of finding the efficient TS parameters for each problem instance."
//
// This example runs (a) a sequential TS with a deliberately poor hand-picked
// strategy, (b) a sequential TS with a good hand-picked strategy, and
// (c) CTS2, which starts from random strategies and retunes them from slave
// feedback — then prints the master's tuning timeline so the adaptation is
// visible.
//
//   ./parameter_tuning [--items=200] [--seed=3] [--csv-out=/tmp/run]
#include <cstdio>

#include "mkp/generator.hpp"
#include "parallel/report_io.hpp"
#include "parallel/runner.hpp"
#include "tabu/engine.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace pts;
  const auto args = CliArgs::parse(argc, argv);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 3));
  mkp::GkConfig gen;
  gen.num_items = static_cast<std::size_t>(args.get_int("items", 200));
  gen.num_constraints = 10;
  const auto inst = mkp::generate_gk(gen, seed);

  const std::uint64_t kTotalWork = 60'000;

  auto run_fixed = [&](tabu::Strategy strategy) {
    Rng rng(seed);
    tabu::TsParams params;
    params.strategy = strategy;
    params.max_moves = kTotalWork / strategy.nb_drop;
    return tabu::tabu_search_from_scratch(inst, params, rng);
  };

  // (a) a plausible-looking but poor strategy: huge tenure, huge steps.
  const auto poor = run_fixed(tabu::Strategy{55, 8, 15});
  // (b) a strategy a practitioner would reach after manual tuning.
  const auto good = run_fixed(tabu::Strategy{7, 2, 60});

  // (c) CTS2 finds its own strategies.
  parallel::ParallelConfig config;
  config.mode = parallel::CooperationMode::kCooperativeAdaptive;
  config.num_slaves = 4;
  config.search_iterations = 5;
  config.work_per_slave_round = kTotalWork / (4 * 5);
  config.seed = seed;
  const auto adaptive = parallel::run_parallel_tabu_search(inst, config);

  std::printf("instance %s — identical total work budget for all runs\n\n",
              inst.name().c_str());
  TextTable summary({"run", "strategy source", "best value"});
  summary.add_row({"sequential TS", "hand-picked (poor: tenure 55, drop 8)",
                   TextTable::fmt(poor.best_value, 1)});
  summary.add_row({"sequential TS", "hand-picked (tuned: tenure 7, drop 2)",
                   TextTable::fmt(good.best_value, 1)});
  summary.add_row({"CTS2", "self-tuned from random draws",
                   TextTable::fmt(adaptive.best_value, 1)});
  std::fputs(summary.render().c_str(), stdout);

  std::printf("\nmaster tuning timeline (%zu retunes, %zu injections, %zu restarts):\n",
              adaptive.master.strategy_retunes,
              adaptive.master.global_best_injections,
              adaptive.master.random_restarts);
  TextTable timeline({"round", "slave", "strategy run", "start", "end", "score",
                      "retune", "next start from"});
  for (const auto& log : adaptive.master.timeline) {
    timeline.add_row({TextTable::fmt(log.round), TextTable::fmt(log.slave),
                      log.strategy.to_string(), TextTable::fmt(log.initial_value, 0),
                      TextTable::fmt(log.final_value, 0),
                      TextTable::fmt(static_cast<long long>(log.score_after)),
                      to_string(log.retune), to_string(log.init_kind)});
  }
  std::fputs(timeline.render().c_str(), stdout);
  if (args.has("csv-out")) {
    const auto prefix = args.get_string("csv-out", "/tmp/pts_run");
    parallel::write_report_files(prefix, adaptive);
    std::printf("\nwrote %s-timeline.csv and %s-summary.csv\n", prefix.c_str(),
                prefix.c_str());
  }
  std::printf(
      "\nreading the timeline: 'diversified' rows lengthen the tenure after a\n"
      "clustered elite pool; 'intensified' rows shorten it after a scattered\n"
      "one; scores drop toward 0 on unproductive rounds and trigger the retune.\n");
  return 0;
}
