// Master-process behaviors beyond the structural tests: the cooperative
// mechanisms observed end-to-end through the timeline.
#include <gtest/gtest.h>

#include <memory>
#include <thread>

#include "mkp/generator.hpp"
#include "parallel/runner.hpp"

namespace pts::parallel {
namespace {

ParallelConfig base_config(std::uint64_t seed, std::size_t rounds = 6) {
  ParallelConfig config;
  config.num_slaves = 3;
  config.search_iterations = rounds;
  config.work_per_slave_round = 400;
  config.base_params.strategy.nb_local = 10;
  config.seed = seed;
  return config;
}

TEST(MasterBehavior, StagnationTriggersRandomRestarts) {
  const auto inst = mkp::generate_gk({.num_items = 40, .num_constraints = 4}, 1);
  auto config = base_config(1, 10);
  config.isp.stagnation_rounds = 1;  // restart on the first repeat
  const auto result = run_parallel_tabu_search(inst, config);
  EXPECT_GT(result.master.random_restarts, 0U);
  bool saw_random = false;
  for (const auto& log : result.master.timeline) {
    saw_random |= log.init_kind == InitKind::kRandom;
  }
  EXPECT_TRUE(saw_random);
}

TEST(MasterBehavior, NearOneAlphaHerdsSlaves) {
  const auto inst = mkp::generate_gk({.num_items = 60, .num_constraints = 6}, 2);
  auto config = base_config(2, 8);
  config.isp.alpha = 0.9999;
  const auto result = run_parallel_tabu_search(inst, config);
  EXPECT_GT(result.master.global_best_injections, 0U);
}

TEST(MasterBehavior, TimeLimitCutsRounds) {
  const auto inst = mkp::generate_gk({.num_items = 150, .num_constraints = 10}, 3);
  auto config = base_config(3, 10000);
  config.work_per_slave_round = 2000;
  config.time_limit_seconds = 0.15;
  const auto result = run_parallel_tabu_search(inst, config);
  EXPECT_LT(result.master.rounds_completed, 10000U);
  EXPECT_GT(result.master.rounds_completed, 0U);
}

TEST(MasterBehavior, RendezvousIdleAccumulates) {
  const auto inst = mkp::generate_gk({.num_items = 60, .num_constraints = 6}, 4);
  const auto result = run_parallel_tabu_search(inst, base_config(4));
  // On one core the slaves serialize, so the gap between first and last
  // report of a round is strictly positive in every round.
  EXPECT_GT(result.master.rendezvous_idle_seconds, 0.0);
}

TEST(MasterBehavior, MixedIntensificationStillDeterministic) {
  const auto inst = mkp::generate_gk({.num_items = 50, .num_constraints = 5}, 5);
  auto config = base_config(5);
  config.mix_intensification = true;
  const auto a = run_parallel_tabu_search(inst, config);
  const auto b = run_parallel_tabu_search(inst, config);
  EXPECT_EQ(a.best, b.best);
  EXPECT_DOUBLE_EQ(a.best_value, b.best_value);
}

TEST(MasterBehavior, RelinkCounterOnlyWithOption) {
  const auto inst = mkp::generate_gk({.num_items = 60, .num_constraints = 6}, 6);
  auto off = base_config(6);
  const auto without = run_parallel_tabu_search(inst, off);
  EXPECT_EQ(without.master.relink_improvements, 0U);
  auto on = off;
  on.relink_elites = true;
  const auto with = run_parallel_tabu_search(inst, on);
  EXPECT_TRUE(with.best.is_feasible());
  EXPECT_GE(with.best_value, 0.0);  // improvements possible, never harmful
}

TEST(MasterBehavior, ScoresMoveWithResults) {
  const auto inst = mkp::generate_gk({.num_items = 60, .num_constraints = 6}, 7);
  const auto result = run_parallel_tabu_search(inst, base_config(7, 8));
  // Scores live in [1, initial+rounds]; after a retune they snap back to 4.
  for (const auto& log : result.master.timeline) {
    EXPECT_GE(log.score_after, 1);
    EXPECT_LE(log.score_after, 4 + 8);
  }
}

TEST(MasterBehavior, TimelineFinalValuesBoundedByGlobalBest) {
  const auto inst = mkp::generate_gk({.num_items = 60, .num_constraints = 6}, 8);
  const auto result = run_parallel_tabu_search(inst, base_config(8));
  for (const auto& log : result.master.timeline) {
    EXPECT_LE(log.final_value, result.best_value + 1e-9);
    EXPECT_LE(log.initial_value, log.final_value + 1e-9);
  }
}

TEST(MasterBehavior, WorkBudgetSplitsExactlyAcrossRounds) {
  const auto inst = mkp::generate_gk({.num_items = 40, .num_constraints = 4}, 9);
  auto config = base_config(9, 4);
  config.work_per_slave_round = 600;
  const auto result = run_parallel_tabu_search(inst, config);
  for (const auto& log : result.master.timeline) {
    EXPECT_EQ(log.moves, 600U / log.strategy.nb_drop);
  }
}

}  // namespace
}  // namespace pts::parallel
