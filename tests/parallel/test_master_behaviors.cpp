// Master-process behaviors beyond the structural tests: the cooperative
// mechanisms observed end-to-end through the timeline.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <memory>
#include <thread>
#include <variant>

#include "mkp/generator.hpp"
#include "parallel/runner.hpp"
#include "parallel/slave.hpp"

namespace pts::parallel {
namespace {

ParallelConfig base_config(std::uint64_t seed, std::size_t rounds = 6) {
  ParallelConfig config;
  config.num_slaves = 3;
  config.search_iterations = rounds;
  config.work_per_slave_round = 400;
  config.base_params.strategy.nb_local = 10;
  config.seed = seed;
  return config;
}

TEST(MasterBehavior, StagnationTriggersRandomRestarts) {
  const auto inst = mkp::generate_gk({.num_items = 40, .num_constraints = 4}, 1);
  auto config = base_config(1, 10);
  config.isp.stagnation_rounds = 1;  // restart on the first repeat
  const auto result = run_parallel_tabu_search(inst, config);
  EXPECT_GT(result.master.random_restarts, 0U);
  bool saw_random = false;
  for (const auto& log : result.master.timeline) {
    saw_random |= log.init_kind == InitKind::kRandom;
  }
  EXPECT_TRUE(saw_random);
}

TEST(MasterBehavior, NearOneAlphaHerdsSlaves) {
  const auto inst = mkp::generate_gk({.num_items = 60, .num_constraints = 6}, 2);
  auto config = base_config(2, 8);
  config.isp.alpha = 0.9999;
  const auto result = run_parallel_tabu_search(inst, config);
  EXPECT_GT(result.master.global_best_injections, 0U);
}

TEST(MasterBehavior, TimeLimitCutsRounds) {
  const auto inst = mkp::generate_gk({.num_items = 150, .num_constraints = 10}, 3);
  auto config = base_config(3, 10000);
  config.work_per_slave_round = 2000;
  config.time_limit_seconds = 0.15;
  const auto result = run_parallel_tabu_search(inst, config);
  EXPECT_LT(result.master.rounds_completed, 10000U);
  EXPECT_GT(result.master.rounds_completed, 0U);
}

TEST(MasterBehavior, RendezvousIdleAccumulates) {
  const auto inst = mkp::generate_gk({.num_items = 60, .num_constraints = 6}, 4);
  const auto result = run_parallel_tabu_search(inst, base_config(4));
  // On one core the slaves serialize, so the gap between first and last
  // report of a round is strictly positive in every round.
  EXPECT_GT(result.master.rendezvous_idle_seconds, 0.0);
}

TEST(MasterBehavior, MixedIntensificationStillDeterministic) {
  const auto inst = mkp::generate_gk({.num_items = 50, .num_constraints = 5}, 5);
  auto config = base_config(5);
  config.mix_intensification = true;
  const auto a = run_parallel_tabu_search(inst, config);
  const auto b = run_parallel_tabu_search(inst, config);
  EXPECT_EQ(a.best, b.best);
  EXPECT_DOUBLE_EQ(a.best_value, b.best_value);
}

TEST(MasterBehavior, RelinkCounterOnlyWithOption) {
  const auto inst = mkp::generate_gk({.num_items = 60, .num_constraints = 6}, 6);
  auto off = base_config(6);
  const auto without = run_parallel_tabu_search(inst, off);
  EXPECT_EQ(without.master.relink_improvements, 0U);
  auto on = off;
  on.relink_elites = true;
  const auto with = run_parallel_tabu_search(inst, on);
  EXPECT_TRUE(with.best.is_feasible());
  EXPECT_GE(with.best_value, 0.0);  // improvements possible, never harmful
}

TEST(MasterBehavior, ScoresMoveWithResults) {
  const auto inst = mkp::generate_gk({.num_items = 60, .num_constraints = 6}, 7);
  const auto result = run_parallel_tabu_search(inst, base_config(7, 8));
  // Scores live in [1, initial+rounds]; after a retune they snap back to 4.
  for (const auto& log : result.master.timeline) {
    EXPECT_GE(log.score_after, 1);
    EXPECT_LE(log.score_after, 4 + 8);
  }
}

TEST(MasterBehavior, TimelineFinalValuesBoundedByGlobalBest) {
  const auto inst = mkp::generate_gk({.num_items = 60, .num_constraints = 6}, 8);
  const auto result = run_parallel_tabu_search(inst, base_config(8));
  for (const auto& log : result.master.timeline) {
    EXPECT_LE(log.final_value, result.best_value + 1e-9);
    EXPECT_LE(log.initial_value, log.final_value + 1e-9);
  }
}

TEST(MasterBehavior, WorkBudgetSplitsExactlyAcrossRounds) {
  const auto inst = mkp::generate_gk({.num_items = 40, .num_constraints = 4}, 9);
  auto config = base_config(9, 4);
  config.work_per_slave_round = 600;
  const auto result = run_parallel_tabu_search(inst, config);
  for (const auto& log : result.master.timeline) {
    EXPECT_EQ(log.moves, 600U / log.strategy.nb_drop);
  }
}

TEST(MasterBehavior, RelinkImprovementsAppearInTheGlobalAnytimeCurve) {
  // Regression: path-relink could improve the global best AFTER the round's
  // envelope sample was emitted, leaving an anytime curve whose maximum lay
  // below the returned best_value. The invariant now holds unconditionally:
  // whenever global samples exist, their max IS the best value. Hunt seeds
  // until at least one run actually exercises the relink-improvement path.
  bool exercised = false;
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    const auto inst =
        mkp::generate_gk({.num_items = 60, .num_constraints = 6}, seed);
    auto config = base_config(seed, 6);
    config.relink_elites = true;
    const auto result = run_parallel_tabu_search(inst, config);

    double max_global = -std::numeric_limits<double>::infinity();
    bool any_global = false;
    for (const auto& sample : result.master.anytime) {
      if (sample.source == obs::kGlobalSource) {
        any_global = true;
        max_global = std::max(max_global, sample.value);
      }
    }
    if (any_global) {
      EXPECT_DOUBLE_EQ(max_global, result.best_value) << "seed " << seed;
    }
    if (result.master.relink_improvements > 0) {
      exercised = true;
      break;
    }
  }
  EXPECT_TRUE(exercised)
      << "no seed in the hunt produced a relink improvement; widen the range";
}

TEST(MasterBehavior, StopBroadcastDropIsCountedNeverSilent) {
  // Regression: the master's final Stop broadcast ignored send() failures.
  // Play a slave that answers round 0 and then closes its inbox BEFORE
  // reporting, so the master's Stop lands on a closed box deterministically.
  const auto inst = mkp::generate_gk({.num_items = 30, .num_constraints = 4}, 12);
  Mailbox<ToSlave> inbox;
  Mailbox<FromSlave> reports;
  std::vector<SlaveChannels> channels{SlaveChannels{&inbox, &reports}};

  std::jthread helper([&] {
    auto message = inbox.receive();
    ASSERT_TRUE(message.has_value());
    const auto* assignment = std::get_if<Assignment>(&*message);
    ASSERT_NE(assignment, nullptr);
    inbox.close();  // happens-before the report, hence before the broadcast
    ASSERT_TRUE(reports.send(run_assignment(inst, 0, 12, *assignment)));
  });

  MasterConfig config;
  config.num_slaves = 1;
  config.search_iterations = 1;
  config.work_per_slave_round = 300;
  config.seed = 12;
  const auto result = run_master(inst, channels, config);

  EXPECT_EQ(result.dropped_messages, 1U);
  if (obs::telemetry_enabled()) {
    EXPECT_EQ(result.counters[obs::Counter::kDroppedMessages], 1U);
  }
}

TEST(MasterBehaviorDeath, PerSlaveReportBoxesAreRejectedUpFront) {
  // The gather drains channels[0].outbox only; wiring per-slave report boxes
  // would hang it forever on messages nobody reads. run_master must die with
  // a diagnostic instead (see SlaveChannels' wiring invariant).
  const auto inst = mkp::generate_gk({.num_items = 20, .num_constraints = 3}, 1);
  Mailbox<ToSlave> inbox0, inbox1;
  Mailbox<FromSlave> reports0, reports1;
  std::vector<SlaveChannels> channels{SlaveChannels{&inbox0, &reports0},
                                      SlaveChannels{&inbox1, &reports1}};
  MasterConfig config;
  config.num_slaves = 2;
  config.search_iterations = 1;
  EXPECT_DEATH((void)run_master(inst, channels, config), "alias");
}

}  // namespace
}  // namespace pts::parallel
