#include "parallel/master.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <thread>

#include "mkp/generator.hpp"
#include "parallel/slave.hpp"

namespace pts::parallel {
namespace {

struct Harness {
  explicit Harness(const mkp::Instance& instance, std::size_t num_slaves)
      : inst(instance), reports(std::make_unique<Mailbox<FromSlave>>()) {
    for (std::size_t i = 0; i < num_slaves; ++i) {
      inboxes.push_back(std::make_unique<Mailbox<ToSlave>>());
      channels.push_back(SlaveChannels{inboxes.back().get(), reports.get()});
    }
    for (std::size_t i = 0; i < num_slaves; ++i) {
      slaves.emplace_back([this, i] { slave_loop(inst, i, 13, channels[i]); });
    }
  }

  ~Harness() {
    // Wake any slave still blocked on its inbox so the jthread joins cannot
    // hang (e.g. when a death test aborts before run_master sends Stop).
    for (auto& box : inboxes) box->close();
  }

  const mkp::Instance& inst;
  std::vector<std::unique_ptr<Mailbox<ToSlave>>> inboxes;
  std::unique_ptr<Mailbox<FromSlave>> reports;
  std::vector<SlaveChannels> channels;
  std::vector<std::jthread> slaves;
};

MasterConfig quick_config(std::size_t slaves, std::size_t rounds) {
  MasterConfig config;
  config.num_slaves = slaves;
  config.search_iterations = rounds;
  config.work_per_slave_round = 300;
  config.base_params.strategy.nb_local = 10;
  return config;
}

TEST(Master, CompletesAllRoundsWithFullTimeline) {
  const auto inst = mkp::generate_gk({.num_items = 40, .num_constraints = 5}, 1);
  Harness harness(inst, 3);
  const auto result = run_master(inst, harness.channels, quick_config(3, 4));
  EXPECT_EQ(result.rounds_completed, 4U);
  EXPECT_EQ(result.timeline.size(), 12U);
  EXPECT_TRUE(result.best.is_feasible());
  EXPECT_GT(result.best_value, 0.0);
  EXPECT_GT(result.total_moves, 0U);
}

TEST(Master, BestDominatesEveryReportedValue) {
  const auto inst = mkp::generate_gk({.num_items = 40, .num_constraints = 5}, 2);
  Harness harness(inst, 2);
  const auto result = run_master(inst, harness.channels, quick_config(2, 3));
  for (const auto& log : result.timeline) {
    EXPECT_GE(result.best_value, log.final_value);
  }
}

TEST(Master, WorkBalancingInvertsNbDrop) {
  // Every slave's assigned moves * nb_drop must equal the configured work
  // budget (up to integer division).
  const auto inst = mkp::generate_gk({.num_items = 40, .num_constraints = 5}, 3);
  Harness harness(inst, 4);
  auto config = quick_config(4, 2);
  config.work_per_slave_round = 1200;
  const auto result = run_master(inst, harness.channels, config);
  for (const auto& log : result.timeline) {
    const auto expected = 1200U / log.strategy.nb_drop;
    EXPECT_EQ(log.moves, expected)
        << "slave " << log.slave << " round " << log.round;
  }
}

TEST(Master, IndependentModeNeverRetunesNorInjects) {
  const auto inst = mkp::generate_gk({.num_items = 40, .num_constraints = 5}, 4);
  Harness harness(inst, 3);
  auto config = quick_config(3, 4);
  config.share_solutions = false;
  config.adapt_strategies = false;
  const auto result = run_master(inst, harness.channels, config);
  EXPECT_EQ(result.strategy_retunes, 0U);
  EXPECT_EQ(result.global_best_injections, 0U);
  EXPECT_EQ(result.random_restarts, 0U);
  for (const auto& log : result.timeline) {
    EXPECT_EQ(log.retune, RetuneKind::kKept);
  }
}

TEST(Master, PoolModeSharesButKeepsStrategies) {
  const auto inst = mkp::generate_gk({.num_items = 40, .num_constraints = 5}, 5);
  Harness harness(inst, 3);
  auto config = quick_config(3, 5);
  config.adapt_strategies = false;
  const auto result = run_master(inst, harness.channels, config);
  EXPECT_EQ(result.strategy_retunes, 0U);
  // Strategies must stay at their initial draw across the run.
  for (std::size_t i = 0; i < 3; ++i) {
    tabu::Strategy first;
    bool seen = false;
    for (const auto& log : result.timeline) {
      if (log.slave != i) continue;
      if (!seen) {
        first = log.strategy;
        seen = true;
      } else {
        EXPECT_EQ(log.strategy, first);
      }
    }
  }
}

TEST(Master, TargetValueShortCircuitsRounds) {
  const auto inst = mkp::generate_gk({.num_items = 40, .num_constraints = 5}, 6);
  Harness harness(inst, 2);
  auto config = quick_config(2, 50);
  config.target_value = 1.0;
  const auto result = run_master(inst, harness.channels, config);
  EXPECT_TRUE(result.reached_target);
  EXPECT_LT(result.rounds_completed, 50U);
}

TEST(Master, DeterministicDecisionsGivenSeed) {
  const auto inst = mkp::generate_gk({.num_items = 40, .num_constraints = 5}, 7);
  auto run_once = [&] {
    Harness harness(inst, 3);
    return run_master(inst, harness.channels, quick_config(3, 3));
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_DOUBLE_EQ(a.best_value, b.best_value);
  ASSERT_EQ(a.timeline.size(), b.timeline.size());
  for (std::size_t k = 0; k < a.timeline.size(); ++k) {
    EXPECT_EQ(a.timeline[k].strategy, b.timeline[k].strategy);
    EXPECT_DOUBLE_EQ(a.timeline[k].final_value, b.timeline[k].final_value);
    EXPECT_EQ(a.timeline[k].init_kind, b.timeline[k].init_kind);
  }
}

// Figure-2 structural test: read data -> per round (SGP/ISP -> scatter ->
// gather), in that order, every round.
class Fig2Trace : public MasterTrace {
 public:
  void on_round_start(std::size_t round) override {
    events.push_back("round:" + std::to_string(round));
  }
  void on_assignments_sent(std::size_t round, std::size_t count) override {
    events.push_back("scatter:" + std::to_string(round) + ":" +
                     std::to_string(count));
  }
  void on_reports_gathered(std::size_t round, std::size_t count) override {
    events.push_back("gather:" + std::to_string(round) + ":" +
                     std::to_string(count));
  }
  std::vector<std::string> events;
};

TEST(MasterFigure2, ScatterGatherOrderingPerRound) {
  const auto inst = mkp::generate_gk({.num_items = 30, .num_constraints = 4}, 8);
  Harness harness(inst, 2);
  Fig2Trace trace;
  (void)run_master(inst, harness.channels, quick_config(2, 3), &trace);
  const std::vector<std::string> expected{
      "round:0", "scatter:0:2", "gather:0:2",
      "round:1", "scatter:1:2", "gather:1:2",
      "round:2", "scatter:2:2", "gather:2:2",
  };
  EXPECT_EQ(trace.events, expected);
}

TEST(MasterDeath, ChannelCountMustMatch) {
  const auto inst = mkp::generate_gk({.num_items = 20, .num_constraints = 3}, 9);
  Harness harness(inst, 2);
  auto config = quick_config(3, 1);  // claims 3 slaves, only 2 channels
  EXPECT_DEATH((void)run_master(inst, harness.channels, config), "");
}

}  // namespace
}  // namespace pts::parallel
