// Communication-topology semantics of the async swarm (the design axis of
// the paper's reference [11]).
#include <gtest/gtest.h>

#include "mkp/generator.hpp"
#include "parallel/async_swarm.hpp"

namespace pts::parallel {
namespace {

AsyncConfig topo_config(AsyncTopology topology, std::uint64_t seed = 1) {
  AsyncConfig config;
  config.num_peers = 4;
  config.bursts_per_peer = 5;
  config.work_per_burst = 300;
  config.base_params.strategy.nb_local = 10;
  config.topology = topology;
  config.seed = seed;
  return config;
}

TEST(AsyncTopology_, NamesCovered) {
  EXPECT_EQ(to_string(AsyncTopology::kFullBroadcast), "broadcast");
  EXPECT_EQ(to_string(AsyncTopology::kRing), "ring");
  EXPECT_EQ(to_string(AsyncTopology::kRandomPeer), "random-peer");
}

TEST(AsyncTopology_, NamesRoundTripThroughFromString) {
  for (auto topology : {AsyncTopology::kFullBroadcast, AsyncTopology::kRing,
                        AsyncTopology::kRandomPeer}) {
    const auto parsed = topology_from_string(to_string(topology));
    ASSERT_TRUE(parsed.has_value()) << to_string(topology);
    EXPECT_EQ(*parsed, topology);
  }
  EXPECT_EQ(*topology_from_string("RING"), AsyncTopology::kRing);
  const auto bad = topology_from_string("mesh");
  ASSERT_FALSE(bad.has_value());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(bad.status().message().find("ring"), std::string::npos);
}

TEST(AsyncTopology_, AllTopologiesProduceFeasibleResults) {
  const auto inst = mkp::generate_gk({.num_items = 50, .num_constraints = 5}, 1);
  for (auto topology : {AsyncTopology::kFullBroadcast, AsyncTopology::kRing,
                        AsyncTopology::kRandomPeer}) {
    const auto result = run_async_swarm(inst, topo_config(topology));
    EXPECT_TRUE(result.best.is_feasible()) << to_string(topology);
    EXPECT_GT(result.best_value, 0.0) << to_string(topology);
  }
}

TEST(AsyncTopology_, MessageVolumeOrdering) {
  // broadcast sends P-1 messages per burst, ring and random-peer send 1:
  // the traffic ratio must reflect that (modulo early-terminated bursts).
  const auto inst = mkp::generate_gk({.num_items = 50, .num_constraints = 5}, 2);
  const auto broadcast =
      run_async_swarm(inst, topo_config(AsyncTopology::kFullBroadcast, 3));
  const auto ring = run_async_swarm(inst, topo_config(AsyncTopology::kRing, 3));
  EXPECT_GT(broadcast.broadcasts, ring.broadcasts);
  // Exact counts when no run stops early: 4 peers x 5 bursts x {3, 1}.
  EXPECT_LE(broadcast.broadcasts, 4U * 5U * 3U);
  EXPECT_LE(ring.broadcasts, 4U * 5U * 1U);
}

TEST(AsyncTopology_, SparseTopologiesStillSpreadGoodSolutions) {
  // Even over a ring, a strong solution eventually reaches everyone: the
  // swarm's final best must stay within a whisker of broadcast's.
  const auto inst = mkp::generate_gk({.num_items = 80, .num_constraints = 8}, 4);
  auto broadcast_config = topo_config(AsyncTopology::kFullBroadcast, 5);
  broadcast_config.bursts_per_peer = 8;
  auto ring_config = topo_config(AsyncTopology::kRing, 5);
  ring_config.bursts_per_peer = 8;
  const auto broadcast = run_async_swarm(inst, broadcast_config);
  const auto ring = run_async_swarm(inst, ring_config);
  EXPECT_GE(ring.best_value, broadcast.best_value * 0.97);
}

TEST(AsyncTopology_, SinglePeerSendsNothingUnderAnyTopology) {
  const auto inst = mkp::generate_gk({.num_items = 30, .num_constraints = 4}, 6);
  for (auto topology : {AsyncTopology::kFullBroadcast, AsyncTopology::kRing,
                        AsyncTopology::kRandomPeer}) {
    auto config = topo_config(topology, 7);
    config.num_peers = 1;
    const auto result = run_async_swarm(inst, config);
    EXPECT_EQ(result.broadcasts, 0U) << to_string(topology);
  }
}

}  // namespace
}  // namespace pts::parallel
