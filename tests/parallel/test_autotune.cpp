#include "parallel/autotune.hpp"

#include <gtest/gtest.h>

#include "mkp/generator.hpp"
#include "tabu/engine.hpp"

namespace pts::parallel {
namespace {

AutotuneOptions quick_options(std::uint64_t seed = 1) {
  AutotuneOptions options;
  options.num_slaves = 3;
  options.probe_rounds = 8;
  options.work_per_slave_round = 600;
  options.seed = seed;
  return options;
}

TEST(Autotune, RecommendationIsWithinDefaultBounds) {
  const auto inst = mkp::generate_gk({.num_items = 60, .num_constraints = 6}, 1);
  const auto result = recommend_strategy(inst, quick_options());
  const tabu::StrategyBounds bounds;  // SGP defaults
  EXPECT_GE(result.recommended.tabu_tenure, bounds.min_tenure);
  EXPECT_LE(result.recommended.tabu_tenure, bounds.max_tenure);
  EXPECT_GE(result.recommended.nb_drop, bounds.min_drop);
  EXPECT_LE(result.recommended.nb_drop, bounds.max_drop);
  EXPECT_GE(result.recommended.nb_local, bounds.min_local);
  EXPECT_LE(result.recommended.nb_local, bounds.max_local);
}

TEST(Autotune, ProbeByProductsAreSane) {
  const auto inst = mkp::generate_gk({.num_items = 60, .num_constraints = 6}, 2);
  const auto result = recommend_strategy(inst, quick_options(2));
  EXPECT_TRUE(result.probe_best.is_feasible());
  EXPECT_DOUBLE_EQ(result.probe_best.value(), result.probe_best_value);
  EXPECT_GT(result.strategies_seen, 0U);
  EXPECT_GT(result.evidence_rounds, 0U);
  EXPECT_GT(result.mean_normalized_value, 0.0);
  EXPECT_LE(result.mean_normalized_value, 1.0 + 1e-9);
}

TEST(Autotune, DeterministicPerSeed) {
  const auto inst = mkp::generate_gk({.num_items = 50, .num_constraints = 5}, 3);
  const auto a = recommend_strategy(inst, quick_options(5));
  const auto b = recommend_strategy(inst, quick_options(5));
  EXPECT_EQ(a.recommended, b.recommended);
  EXPECT_DOUBLE_EQ(a.probe_best_value, b.probe_best_value);
}

TEST(Autotune, RecommendedStrategyRunsWell) {
  // The recommendation must at least be *usable*: a sequential run with it
  // stays feasible and lands within a sane band of the probe's own best.
  const auto inst = mkp::generate_gk({.num_items = 80, .num_constraints = 8}, 4);
  const auto tuned = recommend_strategy(inst, quick_options(7));
  Rng rng(7);
  tabu::TsParams params;
  params.strategy = tuned.recommended;
  params.max_moves = 4000 / params.strategy.nb_drop;
  const auto run = tabu::tabu_search_from_scratch(inst, params, rng);
  EXPECT_TRUE(run.best.is_feasible());
  EXPECT_GE(run.best_value, tuned.probe_best_value * 0.95);
}

TEST(Autotune, SingleRoundProbeFallsBackGracefully) {
  const auto inst = mkp::generate_gk({.num_items = 40, .num_constraints = 4}, 5);
  auto options = quick_options(9);
  options.probe_rounds = 1;  // nobody reaches min_rounds_evidence = 2
  const auto result = recommend_strategy(inst, options);
  EXPECT_GT(result.evidence_rounds, 0U);  // fallback picked something
}

}  // namespace
}  // namespace pts::parallel
