// Concurrency stress: many slaves, many rounds, rapid small assignments —
// shaking out protocol races, lost messages and shutdown hangs that the
// functional tests' gentle schedules would never expose.
#include <gtest/gtest.h>

#include <thread>
#include <variant>

#include "mkp/generator.hpp"
#include "parallel/async_swarm.hpp"
#include "parallel/runner.hpp"
#include "parallel/slave.hpp"

namespace pts::parallel {
namespace {

TEST(Stress, ManySlavesManyShortRounds) {
  const auto inst = mkp::generate_gk({.num_items = 30, .num_constraints = 4}, 1);
  ParallelConfig config;
  config.num_slaves = 12;
  config.search_iterations = 20;
  config.work_per_slave_round = 50;  // trivially small: message-bound run
  config.base_params.strategy.nb_local = 5;
  config.seed = 2;
  const auto result = run_parallel_tabu_search(inst, config);
  EXPECT_EQ(result.master.rounds_completed, 20U);
  EXPECT_EQ(result.master.timeline.size(), 240U);
  EXPECT_TRUE(result.best.is_feasible());
}

TEST(Stress, RepeatedBackToBackRuns) {
  // Thread creation/teardown across runs must not leak or deadlock.
  const auto inst = mkp::generate_gk({.num_items = 25, .num_constraints = 3}, 2);
  for (int round = 0; round < 10; ++round) {
    ParallelConfig config;
    config.num_slaves = 4;
    config.search_iterations = 2;
    config.work_per_slave_round = 100;
    config.base_params.strategy.nb_local = 5;
    config.seed = static_cast<std::uint64_t>(round);
    const auto result = run_parallel_tabu_search(inst, config);
    EXPECT_TRUE(result.best.is_feasible());
  }
}

TEST(Stress, DeterminismSurvivesContention) {
  // 12 threads on 1 core maximizes interleaving variety; results must still
  // be bit-identical across runs.
  const auto inst = mkp::generate_gk({.num_items = 40, .num_constraints = 5}, 3);
  ParallelConfig config;
  config.num_slaves = 12;
  config.search_iterations = 5;
  config.work_per_slave_round = 200;
  config.base_params.strategy.nb_local = 5;
  config.seed = 7;
  const auto a = run_parallel_tabu_search(inst, config);
  const auto b = run_parallel_tabu_search(inst, config);
  EXPECT_EQ(a.best, b.best);
  ASSERT_EQ(a.master.timeline.size(), b.master.timeline.size());
  for (std::size_t k = 0; k < a.master.timeline.size(); ++k) {
    EXPECT_DOUBLE_EQ(a.master.timeline[k].final_value,
                     b.master.timeline[k].final_value);
  }
}

TEST(Stress, AsyncSwarmHighChurn) {
  const auto inst = mkp::generate_gk({.num_items = 30, .num_constraints = 4}, 4);
  AsyncConfig config;
  config.num_peers = 10;
  config.bursts_per_peer = 15;
  config.work_per_burst = 60;
  config.base_params.strategy.nb_local = 5;
  config.seed = 5;
  const auto result = run_async_swarm(inst, config);
  EXPECT_TRUE(result.best.is_feasible());
  EXPECT_GT(result.broadcasts, 0U);
}

TEST(Stress, SlaveSurvivesBurstOfQueuedAssignments) {
  // Queue everything up front, then drain: exercises mailbox buffering.
  const auto inst = mkp::generate_gk({.num_items = 20, .num_constraints = 3}, 5);
  Mailbox<ToSlave> inbox;
  Mailbox<FromSlave> outbox;
  Rng rng(6);
  constexpr std::size_t kAssignments = 30;
  for (std::size_t k = 0; k < kAssignments; ++k) {
    Assignment a{k, mkp::Solution(inst), tabu::TsParams{}};
    a.params.max_moves = 40;
    a.params.strategy.nb_local = 5;
    inbox.send(std::move(a));
  }
  inbox.send(Stop{});
  std::jthread slave([&] { slave_loop(inst, 0, 9, SlaveChannels{&inbox, &outbox}); });
  slave.join();
  EXPECT_EQ(outbox.size(), kAssignments);
  std::size_t next_round = 0;
  while (auto message = outbox.try_receive()) {
    const auto* report = std::get_if<Report>(&*message);
    ASSERT_TRUE(report != nullptr);
    EXPECT_EQ(report->round, next_round++);  // in-order processing
  }
}

TEST(Stress, ZeroWorkRoundsStillTerminate) {
  const auto inst = mkp::generate_gk({.num_items = 20, .num_constraints = 3}, 6);
  ParallelConfig config;
  config.num_slaves = 3;
  config.search_iterations = 3;
  config.work_per_slave_round = 1;  // max_moves clamps to >= 1
  config.base_params.strategy.nb_local = 2;
  const auto result = run_parallel_tabu_search(inst, config);
  EXPECT_EQ(result.master.rounds_completed, 3U);
}

}  // namespace
}  // namespace pts::parallel
