#include "parallel/strategy_gen.hpp"

#include <gtest/gtest.h>

#include "mkp/instance.hpp"

namespace pts::parallel {
namespace {

// 40 loose items so arbitrary pools are feasible to build and a one-bit
// difference counts as "clustered" (1.33/40 < the 0.05 default threshold).
constexpr std::size_t kItems = 40;

mkp::Instance make_inst() {
  std::vector<double> profits(kItems, 1.0);
  std::vector<double> weights(kItems, 1.0);
  return mkp::Instance("sg", std::move(profits), std::move(weights), {100});
}

std::vector<mkp::Solution> clustered_pool(const mkp::Instance& inst) {
  // Solutions differing in a single bit: spread = tiny.
  std::vector<mkp::Solution> pool;
  for (std::size_t k = 0; k < 3; ++k) {
    mkp::Solution s(inst);
    for (std::size_t j = 0; j < 10; ++j) s.add(j);
    if (k > 0) s.flip(10 + k);
    pool.push_back(std::move(s));
  }
  return pool;
}

std::vector<mkp::Solution> spread_pool(const mkp::Instance& inst) {
  // Disjoint 8-item supports: pairwise distance 16 of 40 = 0.4, above the
  // 0.30 spread threshold.
  std::vector<mkp::Solution> pool;
  for (std::size_t k = 0; k < 3; ++k) {
    mkp::Solution s(inst);
    for (std::size_t j = 0; j < 8; ++j) s.add((k * 13 + j) % kItems);
    pool.push_back(std::move(s));
  }
  return pool;
}

TEST(RandomStrategy, WithinBounds) {
  tabu::StrategyBounds bounds;
  bounds.min_tenure = 5;
  bounds.max_tenure = 9;
  bounds.min_drop = 2;
  bounds.max_drop = 3;
  bounds.min_local = 11;
  bounds.max_local = 13;
  Rng rng(1);
  for (int k = 0; k < 200; ++k) {
    const auto s = random_strategy(rng, bounds);
    EXPECT_GE(s.tabu_tenure, 5U);
    EXPECT_LE(s.tabu_tenure, 9U);
    EXPECT_GE(s.nb_drop, 2U);
    EXPECT_LE(s.nb_drop, 3U);
    EXPECT_GE(s.nb_local, 11U);
    EXPECT_LE(s.nb_local, 13U);
  }
}

TEST(Sgp, ImprovementIncrementsScore) {
  const auto inst = make_inst();
  StrategyGenerator sgp;
  Rng rng(2);
  tabu::Strategy current{10, 2, 50};
  const auto decision =
      sgp.update(current, 4, /*improved=*/true, clustered_pool(inst), kItems, rng);
  EXPECT_EQ(decision.kind, RetuneKind::kKept);
  EXPECT_EQ(decision.score, 5);
  EXPECT_EQ(decision.strategy, current);
}

TEST(Sgp, FailureDecrementsScore) {
  const auto inst = make_inst();
  StrategyGenerator sgp;
  Rng rng(3);
  tabu::Strategy current{10, 2, 50};
  const auto decision =
      sgp.update(current, 4, /*improved=*/false, clustered_pool(inst), kItems, rng);
  EXPECT_EQ(decision.kind, RetuneKind::kKept);
  EXPECT_EQ(decision.score, 3);
}

TEST(Sgp, ScoreZeroTriggersRetirement) {
  const auto inst = make_inst();
  StrategyGenerator sgp;
  Rng rng(4);
  tabu::Strategy current{10, 2, 50};
  const auto decision =
      sgp.update(current, 1, /*improved=*/false, clustered_pool(inst), kItems, rng);
  EXPECT_NE(decision.kind, RetuneKind::kKept);
  EXPECT_EQ(decision.score, sgp.config().initial_score);
}

TEST(Sgp, ClusteredPoolDiversifies) {
  const auto inst = make_inst();
  StrategyGenerator sgp;
  Rng rng(5);
  tabu::Strategy current{10, 2, 50};
  const auto decision = sgp.retune(current, clustered_pool(inst), kItems, rng);
  EXPECT_EQ(decision.kind, RetuneKind::kDiversified);
  EXPECT_GT(decision.strategy.tabu_tenure, current.tabu_tenure);
  EXPECT_GT(decision.strategy.nb_drop, current.nb_drop);
  EXPECT_LT(decision.strategy.nb_local, current.nb_local);
}

TEST(Sgp, SpreadPoolIntensifies) {
  const auto inst = make_inst();
  StrategyGenerator sgp;
  Rng rng(6);
  tabu::Strategy current{10, 2, 50};
  const auto decision = sgp.retune(current, spread_pool(inst), kItems, rng);
  EXPECT_EQ(decision.kind, RetuneKind::kIntensified);
  EXPECT_LT(decision.strategy.tabu_tenure, current.tabu_tenure);
  EXPECT_LT(decision.strategy.nb_drop, current.nb_drop);
  EXPECT_GT(decision.strategy.nb_local, current.nb_local);
}

TEST(Sgp, TinyPoolRandomizes) {
  const auto inst = make_inst();
  StrategyGenerator sgp;
  Rng rng(7);
  tabu::Strategy current{10, 2, 50};
  std::vector<mkp::Solution> pool;
  pool.emplace_back(inst);  // single solution: spread undefined
  const auto decision = sgp.retune(current, pool, kItems, rng);
  EXPECT_EQ(decision.kind, RetuneKind::kRandomized);
}

TEST(Sgp, RetuneClampsToBounds) {
  const auto inst = make_inst();
  SgpConfig config;
  config.bounds.max_tenure = 12;
  config.bounds.max_drop = 3;
  config.bounds.min_local = 40;
  StrategyGenerator sgp(config);
  Rng rng(8);
  tabu::Strategy current{12, 3, 40};  // already at the relevant bounds
  const auto decision = sgp.retune(current, clustered_pool(inst), kItems, rng);
  EXPECT_EQ(decision.kind, RetuneKind::kDiversified);
  EXPECT_LE(decision.strategy.tabu_tenure, 12U);
  EXPECT_LE(decision.strategy.nb_drop, 3U);
  EXPECT_GE(decision.strategy.nb_local, 40U);
}

TEST(Sgp, MidSpreadRandomizes) {
  const auto inst = make_inst();
  SgpConfig config;
  config.clustered_below = 0.01;  // nothing counts as clustered
  config.spread_above = 0.99;     // nothing counts as spread
  StrategyGenerator sgp(config);
  Rng rng(9);
  tabu::Strategy current{10, 2, 50};
  const auto decision = sgp.retune(current, spread_pool(inst), kItems, rng);
  EXPECT_EQ(decision.kind, RetuneKind::kRandomized);
}

TEST(Sgp, ToStringCoversAllKinds) {
  EXPECT_EQ(to_string(RetuneKind::kKept), "kept");
  EXPECT_EQ(to_string(RetuneKind::kDiversified), "diversified");
  EXPECT_EQ(to_string(RetuneKind::kIntensified), "intensified");
  EXPECT_EQ(to_string(RetuneKind::kRandomized), "randomized");
}

class SgpScoreWalk : public ::testing::TestWithParam<int> {};

TEST_P(SgpScoreWalk, ScoreNeverRetiredWhilePositive) {
  const auto inst = make_inst();
  StrategyGenerator sgp;
  Rng rng(GetParam());
  tabu::Strategy current{10, 2, 50};
  int score = sgp.config().initial_score;
  // Alternate improvements and failures; retirement only at score 0.
  for (int step = 0; step < 40; ++step) {
    const bool improved = (step * GetParam()) % 3 != 0;
    const auto decision =
        sgp.update(current, score, improved, clustered_pool(inst), kItems, rng);
    if (decision.kind == RetuneKind::kKept) {
      EXPECT_GT(decision.score, 0);
    } else {
      EXPECT_EQ(score, 1);  // only a 1 -> 0 transition retires
      EXPECT_EQ(decision.score, sgp.config().initial_score);
    }
    score = decision.score;
    current = decision.strategy;
  }
}

INSTANTIATE_TEST_SUITE_P(Walks, SgpScoreWalk, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace pts::parallel
