#include "parallel/presets.hpp"

#include <gtest/gtest.h>

#include "mkp/generator.hpp"

namespace pts::parallel {
namespace {

TEST(Presets, AllNamesResolve) {
  for (const auto& name : known_preset_names()) {
    EXPECT_TRUE(preset_by_name(name).has_value()) << name;
  }
  EXPECT_FALSE(preset_by_name("no-such-preset").has_value());
}

TEST(Presets, EffortOrdering) {
  const auto quick = preset_quick();
  const auto balanced = preset_balanced();
  const auto thorough = preset_thorough();
  const auto total = [](const ParallelConfig& c) {
    return c.num_slaves * c.search_iterations * c.work_per_slave_round;
  };
  EXPECT_LT(total(quick), total(balanced));
  EXPECT_LT(total(balanced), total(thorough));
}

TEST(Presets, PaperPresetMatchesTheSetup) {
  const auto paper = preset_paper();
  EXPECT_EQ(paper.num_slaves, 16U);  // the farm of 16 Alphas
  EXPECT_EQ(paper.mode, CooperationMode::kCooperativeAdaptive);
  EXPECT_EQ(paper.sgp.initial_score, 4);  // the paper's score value
  EXPECT_TRUE(paper.mix_intensification);
}

TEST(Presets, SeedIsForwarded) {
  EXPECT_EQ(preset_quick(99).seed, 99U);
  EXPECT_EQ(preset_by_name("thorough", 7)->seed, 7U);
}

TEST(Presets, BudgetScalingGrowsWithInstance) {
  auto small_config = preset_balanced();
  auto large_config = preset_balanced();
  const auto small = mkp::generate_gk({.num_items = 50, .num_constraints = 5}, 1);
  const auto large = mkp::generate_gk({.num_items = 500, .num_constraints = 25}, 1);
  scale_budget_to_instance(small_config, small);
  scale_budget_to_instance(large_config, large);
  EXPECT_LT(small_config.work_per_slave_round, large_config.work_per_slave_round);
  EXPECT_GE(small_config.work_per_slave_round, 500U);  // floor respected
}

TEST(Presets, QuickPresetActuallyRuns) {
  const auto inst = mkp::generate_gk({.num_items = 40, .num_constraints = 4}, 2);
  auto config = preset_quick(3);
  const auto result = run_parallel_tabu_search(inst, config);
  EXPECT_TRUE(result.best.is_feasible());
  EXPECT_GT(result.best_value, 0.0);
}

}  // namespace
}  // namespace pts::parallel
