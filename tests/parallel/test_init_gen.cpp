#include "parallel/init_gen.hpp"

#include <gtest/gtest.h>

#include "mkp/generator.hpp"

namespace pts::parallel {
namespace {

struct Fixture : ::testing::Test {
  Fixture() : inst(mkp::generate_gk({.num_items = 30, .num_constraints = 4}, 77)) {}

  mkp::Solution solution_with_value(double target_fraction) const {
    // Build a feasible solution whose value is roughly target_fraction of a
    // full greedy solution by adding items until the fraction is reached.
    mkp::Solution s(inst);
    for (std::size_t j = 0; j < inst.num_items(); ++j) {
      if (s.fits(j)) s.add(j);
    }
    const double full = s.value();
    while (s.value() > target_fraction * full && s.cardinality() > 0) {
      s.drop(s.selected_items().back());
    }
    return s;
  }

  mkp::Instance inst;
};

TEST_F(Fixture, KeepsOwnBestWhenStrong) {
  InitialSolutionGenerator isp;
  Rng rng(1);
  const auto global = solution_with_value(1.0);
  const auto own = global;  // exactly as good
  const auto decision = isp.next_initial(own, global, 0, rng);
  EXPECT_EQ(decision.kind, InitKind::kOwnBest);
  EXPECT_EQ(decision.initial, own);
}

TEST_F(Fixture, InjectsGlobalBestWhenWeak) {
  IspConfig config;
  config.alpha = 0.95;
  InitialSolutionGenerator isp(config);
  Rng rng(2);
  const auto global = solution_with_value(1.0);
  const auto weak = solution_with_value(0.5);
  ASSERT_LT(weak.value(), 0.95 * global.value());
  const auto decision = isp.next_initial(weak, global, 0, rng);
  EXPECT_EQ(decision.kind, InitKind::kGlobalBest);
  EXPECT_EQ(decision.initial, global);
}

TEST_F(Fixture, MissingOwnBestFallsBackToGlobal) {
  InitialSolutionGenerator isp;
  Rng rng(3);
  const auto global = solution_with_value(1.0);
  const auto decision = isp.next_initial(std::nullopt, global, 0, rng);
  EXPECT_EQ(decision.kind, InitKind::kGlobalBest);
}

TEST_F(Fixture, StagnationForcesRandomRestart) {
  IspConfig config;
  config.stagnation_rounds = 3;
  InitialSolutionGenerator isp(config);
  Rng rng(4);
  const auto global = solution_with_value(1.0);
  const auto own = global;
  const auto decision = isp.next_initial(own, global, 3, rng);
  EXPECT_EQ(decision.kind, InitKind::kRandom);
  EXPECT_TRUE(decision.initial.is_feasible());
}

TEST_F(Fixture, StagnationBeatsWeakness) {
  // Both rules fire: stagnation must win (randomization, not injection).
  InitialSolutionGenerator isp;
  Rng rng(5);
  const auto global = solution_with_value(1.0);
  const auto weak = solution_with_value(0.4);
  const auto decision =
      isp.next_initial(weak, global, isp.config().stagnation_rounds, rng);
  EXPECT_EQ(decision.kind, InitKind::kRandom);
}

TEST_F(Fixture, AlphaBoundaryIsStrict) {
  IspConfig config;
  config.alpha = 1.0;  // anything strictly below the global best is "weak"
  InitialSolutionGenerator isp(config);
  Rng rng(6);
  const auto global = solution_with_value(1.0);
  const auto own = global;
  // Equal value: not strictly below -> kept.
  EXPECT_EQ(isp.next_initial(own, global, 0, rng).kind, InitKind::kOwnBest);
}

TEST_F(Fixture, AlphaZeroNeverInjects) {
  IspConfig config;
  config.alpha = 0.0;
  InitialSolutionGenerator isp(config);
  Rng rng(7);
  const auto global = solution_with_value(1.0);
  const auto tiny = solution_with_value(0.1);
  EXPECT_EQ(isp.next_initial(tiny, global, 0, rng).kind, InitKind::kOwnBest);
}

TEST_F(Fixture, RandomRestartsDiffer) {
  InitialSolutionGenerator isp;
  Rng rng(8);
  const auto global = solution_with_value(1.0);
  const auto a = isp.next_initial(global, global, 99, rng);
  const auto b = isp.next_initial(global, global, 99, rng);
  EXPECT_EQ(a.kind, InitKind::kRandom);
  EXPECT_EQ(b.kind, InitKind::kRandom);
  EXPECT_NE(a.initial, b.initial);
}

TEST(InitKindNames, AllCovered) {
  EXPECT_EQ(to_string(InitKind::kOwnBest), "own-best");
  EXPECT_EQ(to_string(InitKind::kGlobalBest), "global-best");
  EXPECT_EQ(to_string(InitKind::kRandom), "random");
}

}  // namespace
}  // namespace pts::parallel
