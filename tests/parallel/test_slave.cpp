#include "parallel/slave.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <variant>

#include "bounds/greedy.hpp"
#include "mkp/generator.hpp"

namespace pts::parallel {
namespace {

Assignment make_assignment(const mkp::Instance& inst, std::size_t round = 0) {
  Rng rng(99);
  Assignment a{round, bounds::greedy_randomized(inst, rng), tabu::TsParams{}};
  a.params.max_moves = 300;
  a.params.strategy.nb_local = 10;
  // nb_drop > 1 puts the per-move drop-count draw on the slave's rng stream,
  // so distinct streams produce distinct trajectories.
  a.params.strategy.nb_drop = 3;
  return a;
}

TEST(RunAssignment, ReportCarriesTheEssentials) {
  const auto inst = mkp::generate_gk({.num_items = 40, .num_constraints = 5}, 1);
  const auto assignment = make_assignment(inst, 3);
  const auto report = run_assignment(inst, /*slave_id=*/2, /*seed=*/7, assignment);
  EXPECT_EQ(report.slave_id, 2U);
  EXPECT_EQ(report.round, 3U);
  EXPECT_DOUBLE_EQ(report.initial_value, assignment.initial.value());
  EXPECT_GE(report.final_value, report.initial_value);
  ASSERT_FALSE(report.elite.empty());
  EXPECT_DOUBLE_EQ(report.elite.front().value(), report.final_value);
  EXPECT_EQ(report.moves, 300U);
  EXPECT_FALSE(report.reached_target);
}

TEST(RunAssignment, DeterministicPerSlaveRoundSeed) {
  const auto inst = mkp::generate_gk({.num_items = 40, .num_constraints = 5}, 2);
  const auto assignment = make_assignment(inst);
  const auto a = run_assignment(inst, 1, 7, assignment);
  const auto b = run_assignment(inst, 1, 7, assignment);
  EXPECT_DOUBLE_EQ(a.final_value, b.final_value);
  EXPECT_EQ(a.elite.front(), b.elite.front());
}

TEST(RunAssignment, DifferentSlavesDifferentTrajectories) {
  // A large instance and a short budget leave no time to converge to a
  // common optimum, so distinct rng streams must surface as distinct
  // outcomes for at least one pair of slaves.
  const auto inst = mkp::generate_gk({.num_items = 250, .num_constraints = 10}, 3);
  auto assignment = make_assignment(inst);
  assignment.params.max_moves = 120;
  std::vector<Report> reports;
  for (std::size_t slave = 0; slave < 4; ++slave) {
    reports.push_back(run_assignment(inst, slave, 7, assignment));
  }
  bool any_difference = false;
  for (std::size_t a = 0; a < reports.size() && !any_difference; ++a) {
    for (std::size_t b = a + 1; b < reports.size(); ++b) {
      if (reports[a].elite.front() != reports[b].elite.front()) {
        any_difference = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(RunAssignment, TargetPropagates) {
  const auto inst = mkp::generate_gk({.num_items = 40, .num_constraints = 5}, 4);
  auto assignment = make_assignment(inst);
  assignment.params.target_value = 1.0;
  const auto report = run_assignment(inst, 0, 7, assignment);
  EXPECT_TRUE(report.reached_target);
}

TEST(SlaveLoop, ProcessesAssignmentsUntilStop) {
  const auto inst = mkp::generate_gk({.num_items = 30, .num_constraints = 4}, 5);
  Mailbox<ToSlave> inbox;
  Mailbox<FromSlave> outbox;
  std::jthread slave(
      [&] { slave_loop(inst, 0, 11, SlaveChannels{&inbox, &outbox}); });

  inbox.send(make_assignment(inst, 0));
  inbox.send(make_assignment(inst, 1));
  const auto m0 = outbox.receive();
  const auto m1 = outbox.receive();
  ASSERT_TRUE(m0 && m1);
  const auto* r0 = std::get_if<Report>(&*m0);
  const auto* r1 = std::get_if<Report>(&*m1);
  ASSERT_TRUE(r0 && r1);
  EXPECT_EQ(r0->round, 0U);
  EXPECT_EQ(r1->round, 1U);
  inbox.send(Stop{});
  slave.join();
  EXPECT_EQ(outbox.size(), 0U);
}

TEST(SlaveLoop, ClosedOutboxDropIsCountedNeverSilent) {
  // Regression: a report send onto a closed outbox was discarded with no
  // trace. The loop still discards it (orderly teardown races the last
  // report) but must count it in the returned stats.
  const auto inst = mkp::generate_gk({.num_items = 20, .num_constraints = 3}, 7);
  Mailbox<ToSlave> inbox;
  Mailbox<FromSlave> outbox;
  outbox.close();  // the link is already gone before the first report
  inbox.send(make_assignment(inst, 0));
  inbox.send(Stop{});
  const auto stats = slave_loop(inst, 0, 11, SlaveChannels{&inbox, &outbox});
  EXPECT_EQ(stats.dropped_messages, 1U);
}

TEST(SlaveLoop, ClosedInboxTerminates) {
  const auto inst = mkp::generate_gk({.num_items = 20, .num_constraints = 3}, 6);
  Mailbox<ToSlave> inbox;
  Mailbox<FromSlave> outbox;
  std::jthread slave(
      [&] { slave_loop(inst, 0, 11, SlaveChannels{&inbox, &outbox}); });
  inbox.close();
  slave.join();
  SUCCEED();
}

}  // namespace
}  // namespace pts::parallel
