// Async-swarm semantics beyond the smoke tests: adoption-margin behavior
// and budget accounting.
#include <gtest/gtest.h>

#include "mkp/generator.hpp"
#include "parallel/async_swarm.hpp"

namespace pts::parallel {
namespace {

AsyncConfig base_config(std::uint64_t seed) {
  AsyncConfig config;
  config.num_peers = 4;
  config.bursts_per_peer = 4;
  config.work_per_burst = 300;
  config.base_params.strategy.nb_local = 10;
  config.seed = seed;
  return config;
}

TEST(AsyncSemantics, HugeAdoptionMarginDisablesAdoption) {
  const auto inst = mkp::generate_gk({.num_items = 50, .num_constraints = 5}, 1);
  auto config = base_config(1);
  config.adoption_margin = 100.0;  // nothing is 100x better
  const auto result = run_async_swarm(inst, config);
  EXPECT_EQ(result.adoptions, 0U);
  EXPECT_GT(result.broadcasts, 0U);  // peers still talk
}

TEST(AsyncSemantics, WorkBudgetBounded) {
  const auto inst = mkp::generate_gk({.num_items = 50, .num_constraints = 5}, 2);
  const auto config = base_config(2);
  const auto result = run_async_swarm(inst, config);
  // Each burst's moves = work / nb_drop <= work; total bounded by
  // peers * bursts * work.
  EXPECT_LE(result.total_moves,
            config.num_peers * config.bursts_per_peer * config.work_per_burst);
  EXPECT_GT(result.total_moves, 0U);
}

TEST(AsyncSemantics, SelfRetunesFireOnStagnantPeers) {
  // A tiny instance converges within one burst; later bursts cannot improve,
  // so the local adaptation must retune.
  const auto inst = mkp::generate_gk({.num_items = 15, .num_constraints = 3}, 3);
  auto config = base_config(3);
  config.bursts_per_peer = 6;
  const auto result = run_async_swarm(inst, config);
  EXPECT_GT(result.self_retunes, 0U);
}

TEST(AsyncSemantics, ResultsReproducibleInValueDistribution) {
  // Bitwise determinism is deliberately traded away; the *support* of
  // outcomes must still be sane: every repetition feasible, within LP-ish
  // range of each other.
  const auto inst = mkp::generate_gk({.num_items = 60, .num_constraints = 6}, 4);
  double lo = 1e300, hi = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    const auto result = run_async_swarm(inst, base_config(5));
    EXPECT_TRUE(result.best.is_feasible());
    lo = std::min(lo, result.best_value);
    hi = std::max(hi, result.best_value);
  }
  EXPECT_LE(hi - lo, 0.05 * hi);  // runs agree within 5%
}

TEST(AsyncSemantics, TargetShortCircuitsPeers) {
  const auto inst = mkp::generate_gk({.num_items = 50, .num_constraints = 5}, 6);
  auto config = base_config(6);
  config.bursts_per_peer = 1000;
  config.target_value = 1.0;
  const auto result = run_async_swarm(inst, config);
  EXPECT_TRUE(result.reached_target);
  // Nowhere near the full budget was needed.
  EXPECT_LT(result.total_moves,
            config.num_peers * config.bursts_per_peer * config.work_per_burst / 10);
}

}  // namespace
}  // namespace pts::parallel
