#include "parallel/runner.hpp"


#include <algorithm>
#include <gtest/gtest.h>

#include "mkp/generator.hpp"
#include "obs/anytime.hpp"

namespace pts::parallel {
namespace {

ParallelConfig quick_config(CooperationMode mode) {
  ParallelConfig config;
  config.mode = mode;
  config.num_slaves = 3;
  config.search_iterations = 3;
  config.work_per_slave_round = 400;
  config.base_params.strategy.nb_local = 10;
  config.seed = 5;
  return config;
}

class AllModes : public ::testing::TestWithParam<CooperationMode> {};

TEST_P(AllModes, ProducesFeasibleBest) {
  const auto inst = mkp::generate_gk({.num_items = 50, .num_constraints = 5}, 1);
  const auto result = run_parallel_tabu_search(inst, quick_config(GetParam()));
  EXPECT_EQ(result.mode, GetParam());
  EXPECT_TRUE(result.best.is_feasible());
  EXPECT_TRUE(result.best.check_consistency());
  EXPECT_DOUBLE_EQ(result.best.value(), result.best_value);
  EXPECT_GT(result.total_moves, 0U);
}

TEST_P(AllModes, TargetValueStops) {
  const auto inst = mkp::generate_gk({.num_items = 50, .num_constraints = 5}, 2);
  auto config = quick_config(GetParam());
  config.target_value = 1.0;
  config.search_iterations = 50;
  const auto result = run_parallel_tabu_search(inst, config);
  EXPECT_TRUE(result.reached_target);
}

INSTANTIATE_TEST_SUITE_P(Modes, AllModes,
                         ::testing::Values(CooperationMode::kSequential,
                                           CooperationMode::kIndependent,
                                           CooperationMode::kCooperativePool,
                                           CooperationMode::kCooperativeAdaptive),
                         [](const auto& info) { return to_string(info.param); });

TEST(Runner, SequentialConsumesWholeEnsembleBudget) {
  const auto inst = mkp::generate_gk({.num_items = 50, .num_constraints = 5}, 3);
  const auto config = quick_config(CooperationMode::kSequential);
  const auto result = run_parallel_tabu_search(inst, config);
  // total work = 3 slaves * 3 rounds * 400 units; the SEQ run gets it all,
  // converted to moves by its (random) strategy's nb_drop.
  const auto total_work = 3U * 3U * 400U;
  EXPECT_GE(result.total_moves, total_work / 8);  // nb_drop <= 8 by default bounds
  EXPECT_LE(result.total_moves, total_work);
  EXPECT_EQ(result.master.rounds_completed, 0U);  // no master ran
}

TEST(Runner, MasterModesFillTheTimeline) {
  const auto inst = mkp::generate_gk({.num_items = 50, .num_constraints = 5}, 4);
  const auto result = run_parallel_tabu_search(
      inst, quick_config(CooperationMode::kCooperativeAdaptive));
  EXPECT_EQ(result.master.rounds_completed, 3U);
  EXPECT_EQ(result.master.timeline.size(), 9U);
  EXPECT_DOUBLE_EQ(result.master.best_value, result.best_value);
}

TEST(Runner, DeterministicPerSeedAllModes) {
  const auto inst = mkp::generate_gk({.num_items = 40, .num_constraints = 5}, 5);
  for (auto mode : {CooperationMode::kSequential, CooperationMode::kIndependent,
                    CooperationMode::kCooperativePool,
                    CooperationMode::kCooperativeAdaptive}) {
    const auto a = run_parallel_tabu_search(inst, quick_config(mode));
    const auto b = run_parallel_tabu_search(inst, quick_config(mode));
    EXPECT_DOUBLE_EQ(a.best_value, b.best_value) << to_string(mode);
    EXPECT_EQ(a.best, b.best) << to_string(mode);
  }
}

TEST(Runner, ModeNamesMatchThePaper) {
  EXPECT_EQ(to_string(CooperationMode::kSequential), "SEQ");
  EXPECT_EQ(to_string(CooperationMode::kIndependent), "ITS");
  EXPECT_EQ(to_string(CooperationMode::kCooperativePool), "CTS1");
  EXPECT_EQ(to_string(CooperationMode::kCooperativeAdaptive), "CTS2");
}

TEST(Runner, ModeNamesRoundTripThroughFromString) {
  for (auto mode :
       {CooperationMode::kSequential, CooperationMode::kIndependent,
        CooperationMode::kCooperativePool, CooperationMode::kCooperativeAdaptive}) {
    const auto parsed = cooperation_mode_from_string(to_string(mode));
    ASSERT_TRUE(parsed.has_value()) << to_string(mode);
    EXPECT_EQ(*parsed, mode);
  }
  // Case-insensitive, so CLI flags accept what users actually type.
  EXPECT_EQ(*cooperation_mode_from_string("cts2"),
            CooperationMode::kCooperativeAdaptive);
  const auto bad = cooperation_mode_from_string("PVM");
  ASSERT_FALSE(bad.has_value());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  // The error names the accepted spellings — flag parsers print it as-is.
  EXPECT_NE(bad.status().message().find("CTS2"), std::string::npos);
}

class CountingTrace : public MasterTrace {
 public:
  void on_round_start(std::size_t) override { ++rounds; }
  std::size_t rounds = 0;
};

TEST(Runner, ObserverFieldSeesEveryRound) {
  const auto inst = mkp::generate_gk({.num_items = 30, .num_constraints = 4}, 8);
  CountingTrace trace;
  auto config = quick_config(CooperationMode::kCooperativeAdaptive);
  config.observer = &trace;
  const auto result = run_parallel_tabu_search(inst, config);
  EXPECT_EQ(trace.rounds, result.master.rounds_completed);
  EXPECT_GT(trace.rounds, 0U);
}

TEST(Runner, SingleSlaveDegenerateCase) {
  const auto inst = mkp::generate_gk({.num_items = 30, .num_constraints = 4}, 6);
  auto config = quick_config(CooperationMode::kCooperativeAdaptive);
  config.num_slaves = 1;
  const auto result = run_parallel_tabu_search(inst, config);
  EXPECT_TRUE(result.best.is_feasible());
  EXPECT_EQ(result.master.timeline.size(), 3U);
}

TEST(Runner, CoreReductionLiftsToFullSpace) {
  // With core reduction on, the search runs over the residual instance but
  // everything the caller sees — best, best_value, feasibility — must be in
  // full space, with every LP-fixed variable at its fixed value.
  const auto inst = mkp::generate_uncorrelated(80, 3, 3, 1000.0, 0.5);
  auto config = quick_config(CooperationMode::kCooperativeAdaptive);
  config.core.enabled = true;
  config.core.min_fixed_fraction = 0.0;
  const auto result = run_parallel_tabu_search(inst, config);
  ASSERT_TRUE(result.status.ok()) << result.status.to_string();
  ASSERT_TRUE(result.core_engaged)
      << "fixing did not engage; pick a different instance";
  EXPECT_GT(result.core_fixed_zero + result.core_fixed_one, 0U);

  EXPECT_TRUE(result.best.is_feasible());
  EXPECT_DOUBLE_EQ(result.best_value, result.best.value());
  EXPECT_DOUBLE_EQ(result.master.best_value, result.best_value);

  // The reduction is deterministic, so rederiving it recovers the fixing
  // this run used; the lifted best must honour every fixed variable.
  bounds::CoreOptions options;
  options.enabled = true;
  options.min_fixed_fraction = 0.0;
  const auto core = bounds::build_core_problem(inst, options);
  ASSERT_TRUE(core.use_core);
  EXPECT_EQ(core.fixing.fixed_to_zero, result.core_fixed_zero);
  EXPECT_EQ(core.fixing.fixed_to_one, result.core_fixed_one);
  EXPECT_DOUBLE_EQ(core.banked_profit(), result.core_banked_profit);
  for (std::size_t j = 0; j < inst.num_items(); ++j) {
    if (core.fixing.status[j] == bounds::FixedValue::kOne) {
      EXPECT_TRUE(result.best.contains(j)) << "item " << j;
    } else if (core.fixing.status[j] == bounds::FixedValue::kZero) {
      EXPECT_FALSE(result.best.contains(j)) << "item " << j;
    }
  }
}

TEST(Runner, CoreReductionMatchesTelemetryOffsets) {
  if (!obs::kTelemetryCompiled) GTEST_SKIP() << "telemetry compiled out";
  // Timeline values and anytime samples are reported in FULL-space profit:
  // the banked constant is folded back in, so a plot of a core-reduced run
  // is directly comparable with an unreduced one.
  const auto inst = mkp::generate_uncorrelated(80, 3, 3, 1000.0, 0.5);
  auto config = quick_config(CooperationMode::kCooperativeAdaptive);
  config.core.enabled = true;
  config.core.min_fixed_fraction = 0.0;
  const auto result = run_parallel_tabu_search(inst, config);
  ASSERT_TRUE(result.status.ok());
  ASSERT_TRUE(result.core_engaged);
  ASSERT_FALSE(result.master.timeline.empty());
  // The best slave round must land exactly on the global best; without the
  // banked offset it would be short by core_banked_profit (> 0 here).
  ASSERT_GT(result.core_banked_profit, 0.0);
  double timeline_best = 0.0;
  for (const auto& log : result.master.timeline) {
    timeline_best = std::max(timeline_best, log.final_value);
  }
  EXPECT_DOUBLE_EQ(timeline_best, result.best_value);
  for (const auto& sample : result.master.anytime) {
    EXPECT_GE(sample.value, result.core_banked_profit);
  }
}

TEST(Runner, CoreReductionDisengagedIsAPlainRun) {
  // An impossible engagement threshold must leave the run byte-identical to
  // one with the core layer off entirely.
  const auto inst = mkp::generate_gk({.num_items = 40, .num_constraints = 4}, 9);
  auto plain = quick_config(CooperationMode::kCooperativePool);
  const auto reference = run_parallel_tabu_search(inst, plain);

  auto gated = plain;
  gated.core.enabled = true;
  gated.core.min_fixed_fraction = 1.1;  // can never be met
  const auto result = run_parallel_tabu_search(inst, gated);
  ASSERT_TRUE(result.status.ok());
  EXPECT_FALSE(result.core_engaged);
  EXPECT_DOUBLE_EQ(result.best_value, reference.best_value);
  EXPECT_EQ(result.best, reference.best);
  EXPECT_EQ(result.total_moves, reference.total_moves);
}

TEST(Runner, AdaptiveModeRecordsCooperationEvents) {
  // With a target-free longer run, CTS2 should exercise at least one of the
  // cooperation mechanisms (injection / restart / retune) — all three
  // counters zero would mean the mode degenerated to ITS.
  const auto inst = mkp::generate_gk({.num_items = 60, .num_constraints = 6}, 7);
  auto config = quick_config(CooperationMode::kCooperativeAdaptive);
  config.search_iterations = 8;
  const auto result = run_parallel_tabu_search(inst, config);
  const auto events = result.master.strategy_retunes +
                      result.master.global_best_injections +
                      result.master.random_restarts;
  EXPECT_GT(events, 0U);
}

}  // namespace
}  // namespace pts::parallel
