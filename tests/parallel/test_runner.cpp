#include "parallel/runner.hpp"

#include <gtest/gtest.h>

#include "mkp/generator.hpp"

namespace pts::parallel {
namespace {

ParallelConfig quick_config(CooperationMode mode) {
  ParallelConfig config;
  config.mode = mode;
  config.num_slaves = 3;
  config.search_iterations = 3;
  config.work_per_slave_round = 400;
  config.base_params.strategy.nb_local = 10;
  config.seed = 5;
  return config;
}

class AllModes : public ::testing::TestWithParam<CooperationMode> {};

TEST_P(AllModes, ProducesFeasibleBest) {
  const auto inst = mkp::generate_gk({.num_items = 50, .num_constraints = 5}, 1);
  const auto result = run_parallel_tabu_search(inst, quick_config(GetParam()));
  EXPECT_EQ(result.mode, GetParam());
  EXPECT_TRUE(result.best.is_feasible());
  EXPECT_TRUE(result.best.check_consistency());
  EXPECT_DOUBLE_EQ(result.best.value(), result.best_value);
  EXPECT_GT(result.total_moves, 0U);
}

TEST_P(AllModes, TargetValueStops) {
  const auto inst = mkp::generate_gk({.num_items = 50, .num_constraints = 5}, 2);
  auto config = quick_config(GetParam());
  config.target_value = 1.0;
  config.search_iterations = 50;
  const auto result = run_parallel_tabu_search(inst, config);
  EXPECT_TRUE(result.reached_target);
}

INSTANTIATE_TEST_SUITE_P(Modes, AllModes,
                         ::testing::Values(CooperationMode::kSequential,
                                           CooperationMode::kIndependent,
                                           CooperationMode::kCooperativePool,
                                           CooperationMode::kCooperativeAdaptive),
                         [](const auto& info) { return to_string(info.param); });

TEST(Runner, SequentialConsumesWholeEnsembleBudget) {
  const auto inst = mkp::generate_gk({.num_items = 50, .num_constraints = 5}, 3);
  const auto config = quick_config(CooperationMode::kSequential);
  const auto result = run_parallel_tabu_search(inst, config);
  // total work = 3 slaves * 3 rounds * 400 units; the SEQ run gets it all,
  // converted to moves by its (random) strategy's nb_drop.
  const auto total_work = 3U * 3U * 400U;
  EXPECT_GE(result.total_moves, total_work / 8);  // nb_drop <= 8 by default bounds
  EXPECT_LE(result.total_moves, total_work);
  EXPECT_EQ(result.master.rounds_completed, 0U);  // no master ran
}

TEST(Runner, MasterModesFillTheTimeline) {
  const auto inst = mkp::generate_gk({.num_items = 50, .num_constraints = 5}, 4);
  const auto result = run_parallel_tabu_search(
      inst, quick_config(CooperationMode::kCooperativeAdaptive));
  EXPECT_EQ(result.master.rounds_completed, 3U);
  EXPECT_EQ(result.master.timeline.size(), 9U);
  EXPECT_DOUBLE_EQ(result.master.best_value, result.best_value);
}

TEST(Runner, DeterministicPerSeedAllModes) {
  const auto inst = mkp::generate_gk({.num_items = 40, .num_constraints = 5}, 5);
  for (auto mode : {CooperationMode::kSequential, CooperationMode::kIndependent,
                    CooperationMode::kCooperativePool,
                    CooperationMode::kCooperativeAdaptive}) {
    const auto a = run_parallel_tabu_search(inst, quick_config(mode));
    const auto b = run_parallel_tabu_search(inst, quick_config(mode));
    EXPECT_DOUBLE_EQ(a.best_value, b.best_value) << to_string(mode);
    EXPECT_EQ(a.best, b.best) << to_string(mode);
  }
}

TEST(Runner, ModeNamesMatchThePaper) {
  EXPECT_EQ(to_string(CooperationMode::kSequential), "SEQ");
  EXPECT_EQ(to_string(CooperationMode::kIndependent), "ITS");
  EXPECT_EQ(to_string(CooperationMode::kCooperativePool), "CTS1");
  EXPECT_EQ(to_string(CooperationMode::kCooperativeAdaptive), "CTS2");
}

TEST(Runner, ModeNamesRoundTripThroughFromString) {
  for (auto mode :
       {CooperationMode::kSequential, CooperationMode::kIndependent,
        CooperationMode::kCooperativePool, CooperationMode::kCooperativeAdaptive}) {
    const auto parsed = cooperation_mode_from_string(to_string(mode));
    ASSERT_TRUE(parsed.has_value()) << to_string(mode);
    EXPECT_EQ(*parsed, mode);
  }
  // Case-insensitive, so CLI flags accept what users actually type.
  EXPECT_EQ(*cooperation_mode_from_string("cts2"),
            CooperationMode::kCooperativeAdaptive);
  const auto bad = cooperation_mode_from_string("PVM");
  ASSERT_FALSE(bad.has_value());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  // The error names the accepted spellings — flag parsers print it as-is.
  EXPECT_NE(bad.status().message().find("CTS2"), std::string::npos);
}

class CountingTrace : public MasterTrace {
 public:
  void on_round_start(std::size_t) override { ++rounds; }
  std::size_t rounds = 0;
};

TEST(Runner, ObserverFieldSeesEveryRound) {
  const auto inst = mkp::generate_gk({.num_items = 30, .num_constraints = 4}, 8);
  CountingTrace trace;
  auto config = quick_config(CooperationMode::kCooperativeAdaptive);
  config.observer = &trace;
  const auto result = run_parallel_tabu_search(inst, config);
  EXPECT_EQ(trace.rounds, result.master.rounds_completed);
  EXPECT_GT(trace.rounds, 0U);
}

TEST(Runner, DeprecatedTraceShimForwardsToObserver) {
  const auto inst = mkp::generate_gk({.num_items = 30, .num_constraints = 4}, 8);
  CountingTrace trace;
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  const auto result = run_parallel_tabu_search(
      inst, quick_config(CooperationMode::kCooperativeAdaptive), &trace);
#pragma GCC diagnostic pop
  EXPECT_EQ(trace.rounds, result.master.rounds_completed);
  EXPECT_GT(trace.rounds, 0U);
}

TEST(Runner, SingleSlaveDegenerateCase) {
  const auto inst = mkp::generate_gk({.num_items = 30, .num_constraints = 4}, 6);
  auto config = quick_config(CooperationMode::kCooperativeAdaptive);
  config.num_slaves = 1;
  const auto result = run_parallel_tabu_search(inst, config);
  EXPECT_TRUE(result.best.is_feasible());
  EXPECT_EQ(result.master.timeline.size(), 3U);
}

TEST(Runner, AdaptiveModeRecordsCooperationEvents) {
  // With a target-free longer run, CTS2 should exercise at least one of the
  // cooperation mechanisms (injection / restart / retune) — all three
  // counters zero would mean the mode degenerated to ITS.
  const auto inst = mkp::generate_gk({.num_items = 60, .num_constraints = 6}, 7);
  auto config = quick_config(CooperationMode::kCooperativeAdaptive);
  config.search_iterations = 8;
  const auto result = run_parallel_tabu_search(inst, config);
  const auto events = result.master.strategy_retunes +
                      result.master.global_best_injections +
                      result.master.random_restarts;
  EXPECT_GT(events, 0U);
}

}  // namespace
}  // namespace pts::parallel
