// The one-call solve() facade and the CSV report writers.
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <sstream>

#include "mkp/generator.hpp"
#include "parallel/report_io.hpp"
#include "parallel/solve.hpp"

namespace pts::parallel {
namespace {

TEST(Solve, OneCallProducesAGoodFeasibleSolution) {
  const auto inst = mkp::generate_gk({.num_items = 80, .num_constraints = 8}, 1);
  SolveOptions options;
  options.time_budget_seconds = 0.3;
  options.seed = 2;
  const auto summary = solve(inst, options);
  ASSERT_TRUE(summary.has_value());
  EXPECT_TRUE(summary->best.is_feasible());
  EXPECT_DOUBLE_EQ(summary->best.value(), summary->best_value);
  EXPECT_GT(summary->total_moves, 0U);
  ASSERT_FALSE(std::isnan(summary->lp_gap_percent));
  EXPECT_GE(summary->lp_gap_percent, 0.0);
  EXPECT_LT(summary->lp_gap_percent, 10.0);
}

TEST(Solve, RespectsTheTimeBudget) {
  const auto inst = mkp::generate_gk({.num_items = 200, .num_constraints = 10}, 2);
  SolveOptions options;
  options.time_budget_seconds = 0.15;
  const auto summary = solve(inst, options);
  ASSERT_TRUE(summary.has_value());
  EXPECT_LT(summary->seconds, 5.0);  // generous slack for slow machines
}

TEST(Solve, TargetShortCircuits) {
  const auto inst = mkp::generate_gk({.num_items = 60, .num_constraints = 6}, 3);
  SolveOptions options;
  options.time_budget_seconds = 30.0;
  options.target_value = 1.0;
  const auto summary = solve(inst, options);
  ASSERT_TRUE(summary.has_value());
  EXPECT_TRUE(summary->reached_target);
  EXPECT_LT(summary->seconds, 10.0);
}

TEST(Solve, PresetNamesWork) {
  const auto inst = mkp::generate_gk({.num_items = 40, .num_constraints = 4}, 4);
  for (const char* preset : {"quick", "balanced"}) {
    SolveOptions options;
    options.preset = preset;
    options.time_budget_seconds = 0.1;
    EXPECT_TRUE(solve(inst, options)->best.is_feasible()) << preset;
  }
}

TEST(Solve, UnknownPresetIsAStructuredErrorNotAnAbort) {
  const auto inst = mkp::generate_gk({.num_items = 20, .num_constraints = 3}, 5);
  SolveOptions options;
  options.preset = "warp-speed";
  const auto summary = solve(inst, options);
  ASSERT_FALSE(summary.has_value());
  EXPECT_EQ(summary.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(summary.status().message().find("warp-speed"), std::string::npos);
  EXPECT_NE(summary.status().message().find("quick"), std::string::npos);
}

TEST(Solve, NonPositiveBudgetIsRejected) {
  const auto inst = mkp::generate_gk({.num_items = 20, .num_constraints = 3}, 5);
  SolveOptions options;
  options.time_budget_seconds = 0.0;
  const auto summary = solve(inst, options);
  ASSERT_FALSE(summary.has_value());
  EXPECT_EQ(summary.status().code(), StatusCode::kInvalidArgument);
}

ParallelResult small_run(std::uint64_t seed) {
  static const auto inst =
      mkp::generate_gk({.num_items = 40, .num_constraints = 4}, 77);
  ParallelConfig config;
  config.num_slaves = 2;
  config.search_iterations = 3;
  config.work_per_slave_round = 300;
  config.base_params.strategy.nb_local = 10;
  config.seed = seed;
  return run_parallel_tabu_search(inst, config);
}

TEST(ReportIo, TimelineCsvShape) {
  const auto result = small_run(1);
  std::ostringstream out;
  timeline_to_csv(out, result.master);
  const auto text = out.str();
  std::size_t lines = 0;
  for (char c : text) lines += c == '\n' ? 1 : 0;
  EXPECT_EQ(lines, 1 + result.master.timeline.size());  // header + rows
  EXPECT_NE(text.find("round,slave,tenure"), std::string::npos);
  EXPECT_NE(text.find("own-best"), std::string::npos);
}

TEST(ReportIo, SummaryCsvCarriesTheKeys) {
  const auto result = small_run(2);
  std::ostringstream out;
  summary_to_csv(out, result);
  const auto text = out.str();
  for (const char* key :
       {"mode,", "best_value,", "total_moves,", "rounds_completed,",
        "strategy_retunes,", "rendezvous_idle_seconds,"}) {
    EXPECT_NE(text.find(key), std::string::npos) << key;
  }
}

TEST(ReportIo, FilesWritten) {
  const auto result = small_run(3);
  const std::string prefix = ::testing::TempDir() + "/pts_report";
  write_report_files(prefix, result);
  std::ifstream timeline(prefix + "-timeline.csv");
  std::ifstream summary(prefix + "-summary.csv");
  EXPECT_TRUE(timeline.good());
  EXPECT_TRUE(summary.good());
  std::string header;
  std::getline(timeline, header);
  EXPECT_NE(header.find("nb_candidates"), std::string::npos);
}

TEST(ReportIo, CsvRowCountMatchesRoundsTimesSlaves) {
  const auto result = small_run(4);
  EXPECT_EQ(result.master.timeline.size(),
            result.master.rounds_completed * 2);  // 2 slaves
}

}  // namespace
}  // namespace pts::parallel
