#include "parallel/async_swarm.hpp"

#include <gtest/gtest.h>

#include "mkp/generator.hpp"

namespace pts::parallel {
namespace {

AsyncConfig quick_config() {
  AsyncConfig config;
  config.num_peers = 3;
  config.bursts_per_peer = 3;
  config.work_per_burst = 300;
  config.base_params.strategy.nb_local = 10;
  config.seed = 9;
  return config;
}

TEST(AsyncSwarm, ProducesFeasibleBest) {
  const auto inst = mkp::generate_gk({.num_items = 50, .num_constraints = 5}, 1);
  const auto result = run_async_swarm(inst, quick_config());
  EXPECT_TRUE(result.best.is_feasible());
  EXPECT_TRUE(result.best.check_consistency());
  EXPECT_DOUBLE_EQ(result.best.value(), result.best_value);
  EXPECT_GT(result.total_moves, 0U);
}

TEST(AsyncSwarm, PeersBroadcastEachBurst) {
  const auto inst = mkp::generate_gk({.num_items = 50, .num_constraints = 5}, 2);
  const auto config = quick_config();
  const auto result = run_async_swarm(inst, config);
  // Upper bound: peers * bursts * (peers-1); lower bound: at least one round
  // of broadcasts happened.
  EXPECT_GT(result.broadcasts, 0U);
  EXPECT_LE(result.broadcasts,
            config.num_peers * config.bursts_per_peer * (config.num_peers - 1));
}

TEST(AsyncSwarm, TargetValueStopsEveryone) {
  const auto inst = mkp::generate_gk({.num_items = 50, .num_constraints = 5}, 3);
  auto config = quick_config();
  config.target_value = 1.0;
  config.bursts_per_peer = 100;
  const auto result = run_async_swarm(inst, config);
  EXPECT_TRUE(result.reached_target);
}

TEST(AsyncSwarm, SinglePeerStillWorks) {
  const auto inst = mkp::generate_gk({.num_items = 30, .num_constraints = 4}, 4);
  auto config = quick_config();
  config.num_peers = 1;
  const auto result = run_async_swarm(inst, config);
  EXPECT_TRUE(result.best.is_feasible());
  EXPECT_EQ(result.broadcasts, 0U);  // nobody to talk to
  EXPECT_EQ(result.adoptions, 0U);
}

TEST(AsyncSwarm, TimeLimitRespected) {
  const auto inst = mkp::generate_gk({.num_items = 100, .num_constraints = 10}, 5);
  auto config = quick_config();
  config.bursts_per_peer = 100000;
  config.time_limit_seconds = 0.2;
  const auto result = run_async_swarm(inst, config);
  // One in-flight burst can overshoot; it must still terminate promptly.
  EXPECT_LT(result.seconds, 10.0);
}

TEST(AsyncSwarm, CountersAreInternallyConsistent) {
  const auto inst = mkp::generate_gk({.num_items = 50, .num_constraints = 5}, 6);
  const auto config = quick_config();
  const auto result = run_async_swarm(inst, config);
  EXPECT_LE(result.adoptions, result.broadcasts);
  EXPECT_LE(result.self_retunes, config.num_peers * config.bursts_per_peer);
}

}  // namespace
}  // namespace pts::parallel
