#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace pts {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0U);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(4.5);
  EXPECT_EQ(s.count(), 1U);
  EXPECT_DOUBLE_EQ(s.mean(), 4.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.5);
  EXPECT_DOUBLE_EQ(s.max(), 4.5);
}

TEST(RunningStats, KnownSample) {
  // Sample {2, 4, 4, 4, 5, 5, 7, 9}: mean 5, sample variance 32/7.
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, MatchesNaiveComputation) {
  Rng rng(5);
  std::vector<double> values;
  RunningStats s;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform_real(-50, 50);
    values.push_back(v);
    s.add(v);
  }
  double mean = 0.0;
  for (double v : values) mean += v;
  mean /= static_cast<double>(values.size());
  double var = 0.0;
  for (double v : values) var += (v - mean) * (v - mean);
  var /= static_cast<double>(values.size() - 1);
  EXPECT_NEAR(s.mean(), mean, 1e-9);
  EXPECT_NEAR(s.variance(), var, 1e-7);
}

TEST(RunningStats, MergeMatchesCombinedStream) {
  Rng rng(6);
  RunningStats all, left, right;
  for (int i = 0; i < 500; ++i) {
    const double v = rng.uniform_real(0, 10);
    all.add(v);
    (i < 200 ? left : right).add(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-7);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2U);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  b.merge(a);
  EXPECT_EQ(b.count(), 2U);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Percentile, MedianOfOddSample) {
  const std::vector<double> v{3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 2.0);
}

TEST(Percentile, Extremes) {
  const std::vector<double> v{5.0, 1.0, 9.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 9.0);
}

TEST(Percentile, InterpolatesBetweenPoints) {
  const std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.25), 2.5);
}

TEST(Percentile, SingleElement) {
  const std::vector<double> v{7.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.9), 7.0);
}

TEST(MeanStddevOf, Basics) {
  const std::vector<double> v{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(mean_of(v), 2.0);
  EXPECT_NEAR(stddev_of(v), 1.0, 1e-12);
}

TEST(DeviationPercent, PaperConvention) {
  // achieved 95 against reference 100 -> 5% below.
  EXPECT_DOUBLE_EQ(deviation_percent(95.0, 100.0), 5.0);
  EXPECT_DOUBLE_EQ(deviation_percent(100.0, 100.0), 0.0);
  // above the reference -> negative deviation
  EXPECT_LT(deviation_percent(105.0, 100.0), 0.0);
}

TEST(DeviationPercent, ZeroReferenceIsDefinedAsZero) {
  EXPECT_DOUBLE_EQ(deviation_percent(5.0, 0.0), 0.0);
}

}  // namespace
}  // namespace pts
