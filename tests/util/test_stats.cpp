#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace pts {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0U);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(4.5);
  EXPECT_EQ(s.count(), 1U);
  EXPECT_DOUBLE_EQ(s.mean(), 4.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.5);
  EXPECT_DOUBLE_EQ(s.max(), 4.5);
}

TEST(RunningStats, KnownSample) {
  // Sample {2, 4, 4, 4, 5, 5, 7, 9}: mean 5, sample variance 32/7.
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, MatchesNaiveComputation) {
  Rng rng(5);
  std::vector<double> values;
  RunningStats s;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform_real(-50, 50);
    values.push_back(v);
    s.add(v);
  }
  double mean = 0.0;
  for (double v : values) mean += v;
  mean /= static_cast<double>(values.size());
  double var = 0.0;
  for (double v : values) var += (v - mean) * (v - mean);
  var /= static_cast<double>(values.size() - 1);
  EXPECT_NEAR(s.mean(), mean, 1e-9);
  EXPECT_NEAR(s.variance(), var, 1e-7);
}

TEST(RunningStats, MergeMatchesCombinedStream) {
  Rng rng(6);
  RunningStats all, left, right;
  for (int i = 0; i < 500; ++i) {
    const double v = rng.uniform_real(0, 10);
    all.add(v);
    (i < 200 ? left : right).add(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-7);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2U);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  b.merge(a);
  EXPECT_EQ(b.count(), 2U);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(RunningStats, MergeChainPropagatesMinMax) {
  // Extremes live in different shards; every merge order must surface them.
  RunningStats a, b, c;
  a.add(5.0);
  b.add(-100.0);
  b.add(6.0);
  c.add(200.0);
  a.merge(b);
  a.merge(c);
  EXPECT_DOUBLE_EQ(a.min(), -100.0);
  EXPECT_DOUBLE_EQ(a.max(), 200.0);
  EXPECT_EQ(a.count(), 4U);

  RunningStats reversed;
  reversed.merge(c);  // merge into empty adopts the shard wholesale
  reversed.merge(b);
  reversed.merge(a);  // re-merging a superset keeps extremes stable
  EXPECT_DOUBLE_EQ(reversed.min(), -100.0);
  EXPECT_DOUBLE_EQ(reversed.max(), 200.0);
}

TEST(RunningStats, MergedM2MatchesBatchOnOffsetData) {
  // Chan's pairwise update must agree with the two-pass computation even
  // when the shards sit on a large common offset (the classic catastrophic
  // cancellation setup for naive sum-of-squares).
  constexpr double kOffset = 1.0e9;
  std::vector<double> values;
  RunningStats left, right;
  for (int i = 0; i < 400; ++i) {
    const double v = kOffset + static_cast<double>(i % 17) * 0.25;
    values.push_back(v);
    (i % 3 == 0 ? left : right).add(v);
  }
  left.merge(right);

  double mean = 0.0;
  for (double v : values) mean += v;
  mean /= static_cast<double>(values.size());
  double var = 0.0;
  for (double v : values) var += (v - mean) * (v - mean);
  var /= static_cast<double>(values.size() - 1);

  EXPECT_EQ(left.count(), values.size());
  EXPECT_NEAR(left.mean(), mean, 1e-3);  // absolute tolerance vs 1e9 offset
  EXPECT_NEAR(left.variance(), var, var * 1e-6);
}

TEST(RunningStats, SelfMergeOfEmptyStaysEmpty) {
  RunningStats s;
  s.merge(RunningStats{});
  EXPECT_EQ(s.count(), 0U);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(Percentile, MedianOfOddSample) {
  const std::vector<double> v{3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 2.0);
}

TEST(Percentile, Extremes) {
  const std::vector<double> v{5.0, 1.0, 9.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 9.0);
}

TEST(Percentile, InterpolatesBetweenPoints) {
  const std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.25), 2.5);
}

TEST(Percentile, SingleElement) {
  const std::vector<double> v{7.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.9), 7.0);
}

TEST(Percentile, AllEqualValuesAreFlat) {
  const std::vector<double> v{4.0, 4.0, 4.0, 4.0};
  for (double q : {0.0, 0.1, 0.5, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(percentile(v, q), 4.0) << "q=" << q;
  }
}

TEST(Percentile, DuplicatedExtremesInterpolateWithinTies) {
  // Sorted: {1, 1, 9, 9}. q=0.5 lands between the tie groups.
  const std::vector<double> v{9.0, 1.0, 9.0, 1.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0 / 3.0), 1.0);  // still inside the low tie
}

TEST(Percentile, UnsortedInputIsSortedInternally) {
  const std::vector<double> v{50.0, 10.0, 40.0, 20.0, 30.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.25), 20.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.75), 40.0);
}

TEST(MeanStddevOf, Basics) {
  const std::vector<double> v{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(mean_of(v), 2.0);
  EXPECT_NEAR(stddev_of(v), 1.0, 1e-12);
}

TEST(DeviationPercent, PaperConvention) {
  // achieved 95 against reference 100 -> 5% below.
  EXPECT_DOUBLE_EQ(deviation_percent(95.0, 100.0), 5.0);
  EXPECT_DOUBLE_EQ(deviation_percent(100.0, 100.0), 0.0);
  // above the reference -> negative deviation
  EXPECT_LT(deviation_percent(105.0, 100.0), 0.0);
}

TEST(DeviationPercent, ZeroReferenceIsDefinedAsZero) {
  EXPECT_DOUBLE_EQ(deviation_percent(5.0, 0.0), 0.0);
}

}  // namespace
}  // namespace pts
