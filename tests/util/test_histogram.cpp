// LogHistogram: bucket geometry, exact count/sum/min/max bookkeeping, merge
// associativity (bitwise, on exactly-representable samples), percentile
// clamping, and a randomized comparison against the exact sorted-vector
// order statistic — the 12.5% relative-error contract the header promises.
#include "util/histogram.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "util/rng.hpp"

namespace pts {
namespace {

TEST(LogHistogram, EmptyReportsZeros) {
  const LogHistogram h;
  EXPECT_EQ(h.count(), 0U);
  EXPECT_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.percentile(0.5), 0.0);
  EXPECT_EQ(h.percentile(0.99), 0.0);
}

TEST(LogHistogram, TracksExactCountSumMinMax) {
  LogHistogram h;
  h.record(0.25);
  h.record(4.0);
  h.record(1.0);
  EXPECT_EQ(h.count(), 3U);
  EXPECT_DOUBLE_EQ(h.sum(), 5.25);
  EXPECT_DOUBLE_EQ(h.min(), 0.25);
  EXPECT_DOUBLE_EQ(h.max(), 4.0);
  EXPECT_DOUBLE_EQ(h.mean(), 1.75);
}

TEST(LogHistogram, BucketBoundsContainTheirValue) {
  // Every positive value in the resolved range must land in a bucket whose
  // [lower, upper) interval contains it.
  Rng rng(7);
  for (int i = 0; i < 2'000; ++i) {
    // Log-uniform across the resolved magnitudes.
    const double exponent = rng.uniform_real(-38.0, 23.0);
    const double value = std::pow(2.0, exponent);
    const auto index = LogHistogram::bucket_index(value);
    ASSERT_GT(index, 0U);
    ASSERT_LT(index, LogHistogram::kBucketCount);
    EXPECT_LE(LogHistogram::bucket_lower_bound(index), value)
        << "value " << value << " below bucket " << index;
    EXPECT_LT(value, LogHistogram::bucket_upper_bound(index))
        << "value " << value << " above bucket " << index;
  }
}

TEST(LogHistogram, BucketRelativeWidthIsBounded) {
  // Each octave is cut into kSubBuckets EQUAL-width slices, so the widest
  // slice (the octave's first) spans a factor (kSubBuckets + 1)/kSubBuckets
  // — the resolution claim behind the percentile error bound.
  const double max_ratio =
      (LogHistogram::kSubBuckets + 1.0) / LogHistogram::kSubBuckets + 1e-12;
  for (std::size_t i = 1; i + 1 < LogHistogram::kBucketCount; ++i) {
    const double lo = LogHistogram::bucket_lower_bound(i);
    const double hi = LogHistogram::bucket_upper_bound(i);
    ASSERT_GT(lo, 0.0);
    EXPECT_GT(hi, lo);
    EXPECT_LE(hi / lo, max_ratio) << "bucket " << i;
  }
}

TEST(LogHistogram, NonPositiveAndNaNLandInUnderflowBucket) {
  LogHistogram h;
  h.record(0.0);
  h.record(-3.5);
  h.record(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(h.count(), 3U);
  EXPECT_EQ(h.bucket_count(0), 3U);
  // NaN is cleaned to 0 for the exact stats; the minimum is the real -3.5.
  EXPECT_DOUBLE_EQ(h.min(), -3.5);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  // The underflow bucket reports 0, clamped into the observed range.
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
}

TEST(LogHistogram, ExtremesClampToEdgeBuckets) {
  EXPECT_EQ(LogHistogram::bucket_index(1e-300), 1U);
  EXPECT_EQ(LogHistogram::bucket_index(1e300),
            LogHistogram::kBucketCount - 1);
  EXPECT_EQ(LogHistogram::bucket_index(
                std::numeric_limits<double>::infinity()),
            LogHistogram::kBucketCount - 1);
}

TEST(LogHistogram, PercentileClampsToObservedRange) {
  LogHistogram h;
  h.record(0.37);
  for (const double q : {0.0, 0.5, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(h.percentile(q), 0.37) << "q=" << q;
  }
  h.record(0.38);
  EXPECT_GE(h.percentile(0.0), 0.37);
  EXPECT_LE(h.percentile(1.0), 0.38);
}

TEST(LogHistogram, PercentileIsMonotoneInQ) {
  LogHistogram h;
  Rng rng(11);
  for (int i = 0; i < 500; ++i) h.record(rng.uniform_real(1e-4, 10.0));
  double previous = -1.0;
  for (double q = 0.0; q <= 1.0; q += 0.01) {
    const double p = h.percentile(q);
    EXPECT_GE(p, previous) << "q=" << q;
    previous = p;
  }
}

// Exactly-representable samples: integer multiples of 2^-10 with magnitude
// <= 1024 keep every partial sum exact in a double, so merged sums compare
// bitwise and operator== is meaningful.
std::vector<double> exact_samples(std::uint64_t seed, std::size_t n) {
  Rng rng(seed);
  std::vector<double> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(static_cast<double>(1 + rng.index(1024 * 1024)) / 1024.0);
  }
  return out;
}

LogHistogram from(const std::vector<double>& values) {
  LogHistogram h;
  for (const double v : values) h.record(v);
  return h;
}

TEST(LogHistogram, MergeMatchesBulkRecord) {
  const auto a = exact_samples(1, 300);
  const auto b = exact_samples(2, 500);
  auto concatenated = a;
  concatenated.insert(concatenated.end(), b.begin(), b.end());

  LogHistogram merged = from(a);
  merged.merge(from(b));
  EXPECT_EQ(merged, from(concatenated));
}

TEST(LogHistogram, MergeIsAssociative) {
  const auto ha = from(exact_samples(3, 200));
  const auto hb = from(exact_samples(4, 350));
  const auto hc = from(exact_samples(5, 150));

  LogHistogram left = ha;       // (a + b) + c
  left.merge(hb);
  left.merge(hc);

  LogHistogram bc = hb;         // a + (b + c)
  bc.merge(hc);
  LogHistogram right = ha;
  right.merge(bc);

  EXPECT_EQ(left, right);
}

TEST(LogHistogram, MergeWithEmptyIsIdentity) {
  const auto h = from(exact_samples(6, 100));
  LogHistogram left = h;
  left.merge(LogHistogram{});
  EXPECT_EQ(left, h);

  LogHistogram right;
  right.merge(h);
  EXPECT_EQ(right, h);
}

TEST(LogHistogram, PercentileTracksSortedVectorReference) {
  // Fuzz the 12.5% relative-error contract: the histogram's percentile must
  // stay within one bucket width of the exact order statistic.
  const double width =
      (LogHistogram::kSubBuckets + 1.0) / LogHistogram::kSubBuckets;
  Rng rng(20260808);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 50 + rng.index(2'000);
    std::vector<double> values;
    values.reserve(n);
    LogHistogram h;
    for (std::size_t i = 0; i < n; ++i) {
      // Log-uniform over six decades of "latency".
      const double v = std::pow(10.0, rng.uniform_real(-6.0, 0.5));
      values.push_back(v);
      h.record(v);
    }
    std::sort(values.begin(), values.end());
    for (const double q : {0.5, 0.9, 0.99}) {
      const auto rank = std::max<std::size_t>(
          1, static_cast<std::size_t>(
                 std::ceil(q * static_cast<double>(n))));
      const double exact = values[rank - 1];
      const double estimate = h.percentile(q);
      EXPECT_GE(estimate, exact / width)
          << "trial " << trial << " q=" << q << " n=" << n;
      EXPECT_LE(estimate, exact * width)
          << "trial " << trial << " q=" << q << " n=" << n;
    }
  }
}

}  // namespace
}  // namespace pts
