#include "util/status.hpp"

#include <gtest/gtest.h>

#include <string>

namespace pts {
namespace {

TEST(Status, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_TRUE(status.message().empty());
  EXPECT_EQ(status.to_string(), "OK");
}

TEST(Status, FactoriesCarryCodeAndMessage) {
  const auto status = Status::invalid_argument("unknown preset 'x'");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "unknown preset 'x'");
  EXPECT_EQ(status.to_string(), "INVALID_ARGUMENT: unknown preset 'x'");
}

TEST(Status, EveryCodeHasAName) {
  for (auto code : {StatusCode::kOk, StatusCode::kInvalidArgument,
                    StatusCode::kCancelled, StatusCode::kDeadlineExceeded,
                    StatusCode::kResourceExhausted, StatusCode::kUnavailable,
                    StatusCode::kInternal}) {
    EXPECT_STRNE(to_string(code), "?");
  }
}

TEST(Status, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::cancelled("a"), Status::cancelled("a"));
  EXPECT_NE(Status::cancelled("a"), Status::cancelled("b"));
  EXPECT_NE(Status::cancelled("a"), Status::unavailable("a"));
  EXPECT_EQ(Status(StatusCode::kOk, ""), Status{});
}

TEST(Expected, HoldsValue) {
  Expected<int> e(42);
  ASSERT_TRUE(e.has_value());
  EXPECT_TRUE(static_cast<bool>(e));
  EXPECT_EQ(*e, 42);
  EXPECT_EQ(e.value(), 42);
  EXPECT_TRUE(e.status().ok());
  EXPECT_EQ(e.value_or(7), 42);
}

TEST(Expected, HoldsError) {
  Expected<int> e(Status::deadline_exceeded("too slow"));
  ASSERT_FALSE(e.has_value());
  EXPECT_EQ(e.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(e.value_or(7), 7);
}

TEST(Expected, ImplicitConstructionReadsNaturallyAtReturnSites) {
  auto f = [](bool fail) -> Expected<std::string> {
    if (fail) return Status::unavailable("down");
    return std::string("up");
  };
  EXPECT_TRUE(f(false).has_value());
  EXPECT_EQ(f(true).status().code(), StatusCode::kUnavailable);
}

TEST(ExpectedDeath, ValueOnErrorAborts) {
  Expected<int> e(Status::internal("boom"));
  EXPECT_DEATH((void)e.value(), "");
}

TEST(ExpectedDeath, OkStatusIsNotAnError) {
  EXPECT_DEATH((void)Expected<int>(Status{}), "");
}

}  // namespace
}  // namespace pts
