#include "util/bitvec.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"
#include "util/simd.hpp"

namespace pts {
namespace {

TEST(BitVec, StartsAllZero) {
  BitVec v(100);
  EXPECT_EQ(v.size(), 100U);
  EXPECT_EQ(v.popcount(), 0U);
  for (std::size_t i = 0; i < 100; ++i) EXPECT_FALSE(v.test(i));
}

TEST(BitVec, SetResetFlip) {
  BitVec v(70);
  v.set(0);
  v.set(63);
  v.set(64);
  v.set(69);
  EXPECT_TRUE(v.test(0));
  EXPECT_TRUE(v.test(63));
  EXPECT_TRUE(v.test(64));
  EXPECT_TRUE(v.test(69));
  EXPECT_EQ(v.popcount(), 4U);
  v.reset(63);
  EXPECT_FALSE(v.test(63));
  v.flip(63);
  EXPECT_TRUE(v.test(63));
  v.flip(63);
  EXPECT_FALSE(v.test(63));
  EXPECT_EQ(v.popcount(), 3U);
}

TEST(BitVec, AssignChoosesDirection) {
  BitVec v(8);
  v.assign(3, true);
  EXPECT_TRUE(v.test(3));
  v.assign(3, false);
  EXPECT_FALSE(v.test(3));
}

TEST(BitVec, ClearAll) {
  BitVec v(130);
  for (std::size_t i = 0; i < 130; i += 3) v.set(i);
  v.clear_all();
  EXPECT_EQ(v.popcount(), 0U);
}

TEST(BitVec, HammingDistanceBasics) {
  BitVec a(65), b(65);
  EXPECT_EQ(a.hamming_distance(b), 0U);
  a.set(0);
  a.set(64);
  EXPECT_EQ(a.hamming_distance(b), 2U);
  b.set(0);
  EXPECT_EQ(a.hamming_distance(b), 1U);
  b.set(10);
  EXPECT_EQ(a.hamming_distance(b), 2U);
}

TEST(BitVec, HammingIsSymmetric) {
  Rng rng(3);
  BitVec a(200), b(200);
  for (std::size_t i = 0; i < 200; ++i) {
    if (rng.bernoulli(0.5)) a.set(i);
    if (rng.bernoulli(0.5)) b.set(i);
  }
  EXPECT_EQ(a.hamming_distance(b), b.hamming_distance(a));
}

TEST(BitVec, HammingEqualsPopcountAgainstZero) {
  Rng rng(4);
  BitVec a(150), zero(150);
  for (std::size_t i = 0; i < 150; ++i) {
    if (rng.bernoulli(0.3)) a.set(i);
  }
  EXPECT_EQ(a.hamming_distance(zero), a.popcount());
}

TEST(BitVec, EqualVectorsHashEqual) {
  BitVec a(90), b(90);
  a.set(5);
  a.set(77);
  b.set(5);
  b.set(77);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hash(), b.hash());
}

TEST(BitVec, DifferentContentUsuallyHashesDifferent) {
  BitVec a(64), b(64);
  a.set(1);
  b.set(2);
  EXPECT_NE(a.hash(), b.hash());
}

TEST(BitVec, HashDependsOnLength) {
  BitVec a(10), b(20);
  EXPECT_NE(a.hash(), b.hash());
}

TEST(BitVec, EqualityComparesContent) {
  BitVec a(33), b(33);
  EXPECT_EQ(a, b);
  a.set(32);
  EXPECT_NE(a, b);
}

TEST(BitVec, EmptyVector) {
  BitVec v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0U);
  EXPECT_EQ(v.popcount(), 0U);
}

TEST(BitVec, NextOneScansAcrossWords) {
  BitVec v(200);
  v.set(3);
  v.set(64);
  v.set(199);
  EXPECT_EQ(v.next_one(0), 3U);
  EXPECT_EQ(v.next_one(3), 3U);   // inclusive start
  EXPECT_EQ(v.next_one(4), 64U);  // skips the empty rest of word 0
  EXPECT_EQ(v.next_one(65), 199U);
  EXPECT_EQ(v.next_one(200), 200U);  // past the end
}

TEST(BitVec, NextZeroScansAcrossWords) {
  BitVec v(130);
  for (std::size_t i = 0; i < 130; ++i) v.set(i);
  v.reset(5);
  v.reset(64);
  v.reset(129);
  EXPECT_EQ(v.next_zero(0), 5U);
  EXPECT_EQ(v.next_zero(6), 64U);
  EXPECT_EQ(v.next_zero(65), 129U);
  EXPECT_EQ(v.next_zero(130), 130U);
}

TEST(BitVec, NextZeroIgnoresClearTailBitsBeyondSize) {
  // 70 bits: the second word has 58 storage bits past the logical end, all
  // zero. A zero-scan must report size(), not a phantom index in the tail.
  BitVec v(70);
  for (std::size_t i = 0; i < 70; ++i) v.set(i);
  EXPECT_EQ(v.next_zero(0), 70U);
  EXPECT_EQ(v.next_one(69), 69U);
  EXPECT_EQ(v.next_one(70), 70U);
}

TEST(BitVec, NextScansAgreeWithPerBitLoop) {
  Rng rng(11);
  BitVec v(301);
  for (std::size_t i = 0; i < 301; ++i) {
    if (rng.bernoulli(0.7)) v.set(i);
  }
  std::size_t ones = 0;
  for (std::size_t j = v.next_one(0); j < v.size(); j = v.next_one(j + 1)) {
    EXPECT_TRUE(v.test(j));
    ++ones;
  }
  EXPECT_EQ(ones, v.popcount());
  std::size_t zeros = 0;
  for (std::size_t j = v.next_zero(0); j < v.size(); j = v.next_zero(j + 1)) {
    EXPECT_FALSE(v.test(j));
    ++zeros;
  }
  EXPECT_EQ(zeros, v.size() - v.popcount());
}

// The vector word-skip paths (util/bitvec.cpp) only fast-forward over word
// groups proven entirely skippable, so next_one/next_zero must return the
// EXACT scalar answer under every dispatch kind — across word-boundary
// starts, dense/sparse/empty/full patterns, and sizes that leave 0..3
// trailing words after the 4-word groups.
TEST(BitVecSimd, ScansMatchScalarUnderVectorDispatch) {
  const simd::Kind kind = simd::best_supported();
  if (kind == simd::Kind::kScalar) {
    GTEST_SKIP() << "no vector scan on this CPU/build";
  }
  const simd::Kind saved = simd::active();
  Rng rng(0xB17);
  for (const std::size_t nbits : {1UL, 63UL, 64UL, 65UL, 128UL, 200UL, 257UL,
                                  500UL, 1000UL, 4096UL, 4100UL}) {
    for (int density = 0; density <= 4; ++density) {
      BitVec v(nbits);
      if (density == 4) {
        for (std::size_t i = 0; i < nbits; ++i) v.set(i);  // all-ones
      } else if (density > 0) {
        // density 1: ~1/64 set (long zero runs); 2: half; 3: ~63/64 set
        const std::size_t mod = density == 1 ? 64 : density == 2 ? 2 : 64;
        for (std::size_t i = 0; i < nbits; ++i) {
          const bool bit = density == 3 ? rng.index(mod) != 0 : rng.index(mod) == 0;
          if (bit) v.set(i);
        }
      }
      for (int probe = 0; probe < 64; ++probe) {
        const std::size_t from = rng.index(nbits + 8);
        ASSERT_TRUE(simd::set_active(simd::Kind::kScalar));
        const std::size_t one_scalar = v.next_one(from);
        const std::size_t zero_scalar = v.next_zero(from);
        ASSERT_TRUE(simd::set_active(kind));
        ASSERT_EQ(v.next_one(from), one_scalar)
            << "nbits=" << nbits << " density=" << density << " from=" << from;
        ASSERT_EQ(v.next_zero(from), zero_scalar)
            << "nbits=" << nbits << " density=" << density << " from=" << from;
      }
    }
  }
  simd::set_active(saved);
}

}  // namespace
}  // namespace pts
