#include "util/timer.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <thread>

namespace pts {
namespace {

TEST(Stopwatch, ElapsedGrowsMonotonically) {
  Stopwatch w;
  const double a = w.elapsed_seconds();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const double b = w.elapsed_seconds();
  EXPECT_GE(b, a);
  EXPECT_GT(b, 0.0);
}

TEST(Stopwatch, RestartResets) {
  Stopwatch w;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  w.restart();
  EXPECT_LT(w.elapsed_seconds(), 0.01);
}

TEST(Stopwatch, MillisecondsConsistentWithSeconds) {
  Stopwatch w;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(w.elapsed_ms(), 15);
}

TEST(Deadline, DefaultNeverExpires) {
  Deadline d;
  EXPECT_FALSE(d.is_bounded());
  EXPECT_FALSE(d.expired());
  EXPECT_TRUE(std::isinf(d.remaining_seconds()));
}

TEST(Deadline, UnboundedFactory) {
  const auto d = Deadline::unbounded();
  EXPECT_FALSE(d.is_bounded());
  EXPECT_FALSE(d.expired());
}

TEST(Deadline, ExpiresAfterDuration) {
  const auto d = Deadline::after_seconds(0.02);
  EXPECT_TRUE(d.is_bounded());
  EXPECT_FALSE(d.expired());
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  EXPECT_TRUE(d.expired());
  EXPECT_LE(d.remaining_seconds(), 0.0);
}

TEST(Deadline, RemainingShrinks) {
  const auto d = Deadline::after_seconds(10.0);
  const double r1 = d.remaining_seconds();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const double r2 = d.remaining_seconds();
  EXPECT_LT(r2, r1);
  EXPECT_GT(r2, 9.0);
}

}  // namespace
}  // namespace pts
