#include "util/mailbox.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

namespace pts {
namespace {

TEST(Mailbox, FifoOrderSingleThread) {
  Mailbox<int> box;
  box.send(1);
  box.send(2);
  box.send(3);
  EXPECT_EQ(box.receive().value(), 1);
  EXPECT_EQ(box.receive().value(), 2);
  EXPECT_EQ(box.receive().value(), 3);
}

TEST(Mailbox, TryReceiveEmptyIsNullopt) {
  Mailbox<int> box;
  EXPECT_FALSE(box.try_receive().has_value());
}

TEST(Mailbox, SizeTracksQueue) {
  Mailbox<int> box;
  EXPECT_EQ(box.size(), 0U);
  box.send(5);
  box.send(6);
  EXPECT_EQ(box.size(), 2U);
  (void)box.receive();
  EXPECT_EQ(box.size(), 1U);
}

TEST(Mailbox, DepthMirrorsSize) {
  Mailbox<int> box;
  EXPECT_EQ(box.depth(), 0U);
  box.send(1);
  box.send(2);
  box.send(3);
  EXPECT_EQ(box.depth(), 3U);
  EXPECT_EQ(box.depth(), box.size());
  (void)box.try_receive();
  EXPECT_EQ(box.depth(), 2U);
}

TEST(Mailbox, DepthReportsBacklogAfterClose) {
  // Telemetry keeps sampling during shutdown: a closed box still reports the
  // undrained backlog, and reaches zero only once drained.
  Mailbox<int> box;
  box.send(7);
  box.send(8);
  box.close();
  EXPECT_EQ(box.depth(), 2U);
  (void)box.receive();
  (void)box.receive();
  EXPECT_EQ(box.depth(), 0U);
  EXPECT_FALSE(box.receive().has_value());
  EXPECT_EQ(box.depth(), 0U);
}

TEST(Mailbox, CloseDrainsRemainingThenNullopt) {
  Mailbox<int> box;
  box.send(10);
  box.close();
  EXPECT_TRUE(box.closed());
  EXPECT_EQ(box.receive().value(), 10);
  EXPECT_FALSE(box.receive().has_value());
}

TEST(Mailbox, SendAfterCloseIsDropped) {
  Mailbox<int> box;
  box.close();
  EXPECT_FALSE(box.send(1));
  EXPECT_FALSE(box.receive().has_value());
}

TEST(Mailbox, MoveOnlyPayload) {
  Mailbox<std::unique_ptr<int>> box;
  box.send(std::make_unique<int>(42));
  auto received = box.receive();
  ASSERT_TRUE(received.has_value());
  EXPECT_EQ(**received, 42);
}

TEST(Mailbox, ReceiveBlocksUntilSend) {
  Mailbox<int> box;
  std::atomic<bool> received{false};
  std::jthread consumer([&] {
    const auto value = box.receive();
    EXPECT_EQ(value.value(), 99);
    received = true;
  });
  // Give the consumer a chance to block first.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(received.load());
  box.send(99);
  consumer.join();
  EXPECT_TRUE(received.load());
}

TEST(Mailbox, CloseWakesBlockedReceiver) {
  Mailbox<int> box;
  std::jthread consumer([&] { EXPECT_FALSE(box.receive().has_value()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  box.close();
}

TEST(Mailbox, ManyProducersOneConsumer) {
  Mailbox<int> box;
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 250;
  {
    std::vector<std::jthread> producers;
    producers.reserve(kProducers);
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&box, p] {
        for (int i = 0; i < kPerProducer; ++i) box.send(p * kPerProducer + i);
      });
    }
  }
  std::vector<bool> seen(kProducers * kPerProducer, false);
  for (int i = 0; i < kProducers * kPerProducer; ++i) {
    const auto value = box.receive();
    ASSERT_TRUE(value.has_value());
    ASSERT_GE(*value, 0);
    ASSERT_LT(*value, kProducers * kPerProducer);
    EXPECT_FALSE(seen[*value]) << "duplicate " << *value;
    seen[*value] = true;
  }
  EXPECT_EQ(box.size(), 0U);
}

TEST(MailboxCancel, RequestCancelWakesBlockedReceiver) {
  // Regression: receive(token) used to poll in 5ms timed slices even for
  // tokens without a deadline. Cancellation must arrive as a notification —
  // the receiver returns promptly and without spinning.
  Mailbox<int> box;
  CancelSource cancel;
  std::atomic<bool> woke{false};
  std::jthread receiver([&] {
    EXPECT_FALSE(box.receive(cancel.token()).has_value());
    woke = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(woke.load());
  const auto fired_at = std::chrono::steady_clock::now();
  cancel.request_cancel();
  receiver.join();
  EXPECT_TRUE(woke.load());
  EXPECT_LT(std::chrono::steady_clock::now() - fired_at,
            std::chrono::seconds(1));
}

TEST(MailboxCancel, QueuedMessagesDrainBeforeCancelledNullopt) {
  Mailbox<int> box;
  CancelSource cancel;
  cancel.request_cancel();
  box.send(42);
  EXPECT_EQ(box.receive(cancel.token()).value(), 42);
  EXPECT_FALSE(box.receive(cancel.token()).has_value());
}

TEST(MailboxCancel, DeadlineStillExpiresWithoutANotifier) {
  // The one case that must keep a timed wait: a deadline has no notifier.
  Mailbox<int> box;
  CancelSource cancel(Deadline::after_seconds(0.1));
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(box.receive(cancel.token()).has_value());
  const auto waited = std::chrono::steady_clock::now() - start;
  EXPECT_GE(waited, std::chrono::milliseconds(90));
  EXPECT_LT(waited, std::chrono::seconds(30));
}

TEST(MailboxCancel, SendStillWakesACancellableWait) {
  Mailbox<int> box;
  CancelSource cancel;  // never fired: the wait must still react to sends
  std::jthread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    box.send(7);
  });
  EXPECT_EQ(box.receive(cancel.token()).value(), 7);
}

TEST(MailboxCancel, WaiterRegistryHandlesManyBoxesAndRepeatedCancels) {
  // Waiters register on the token and unregister when their wait ends; a
  // second request_cancel() must not touch the destroyed cvs.
  CancelSource cancel;
  {
    std::vector<std::unique_ptr<Mailbox<int>>> boxes;
    std::vector<std::jthread> receivers;
    for (int i = 0; i < 8; ++i) {
      boxes.push_back(std::make_unique<Mailbox<int>>());
      receivers.emplace_back([&cancel, box = boxes.back().get()] {
        EXPECT_FALSE(box->receive(cancel.token()).has_value());
      });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    cancel.request_cancel();
  }  // receivers joined, mailboxes (and their cvs) destroyed
  cancel.request_cancel();  // registry must be empty, not dangling
  SUCCEED();
}

TEST(Mailbox, PerProducerOrderPreserved) {
  // FIFO holds per sender even with interleaving.
  Mailbox<std::pair<int, int>> box;
  {
    std::jthread a([&] {
      for (int i = 0; i < 100; ++i) box.send({0, i});
    });
    std::jthread b([&] {
      for (int i = 0; i < 100; ++i) box.send({1, i});
    });
  }
  int next_a = 0, next_b = 0;
  while (auto message = box.try_receive()) {
    auto [who, seq] = *message;
    if (who == 0) {
      EXPECT_EQ(seq, next_a++);
    } else {
      EXPECT_EQ(seq, next_b++);
    }
  }
  EXPECT_EQ(next_a, 100);
  EXPECT_EQ(next_b, 100);
}

}  // namespace
}  // namespace pts
