#include <gtest/gtest.h>

#include "util/cli.hpp"
#include "util/table.hpp"

namespace pts {
namespace {

TEST(TextTable, RendersHeaderAndRows) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const auto rendered = t.render();
  EXPECT_NE(rendered.find("name"), std::string::npos);
  EXPECT_NE(rendered.find("alpha"), std::string::npos);
  EXPECT_NE(rendered.find("22"), std::string::npos);
  EXPECT_NE(rendered.find("---"), std::string::npos);
}

TEST(TextTable, ColumnsAligned) {
  TextTable t({"a", "b"});
  t.add_row({"xxxxx", "1"});
  t.add_row({"y", "2"});
  const auto rendered = t.render();
  // Both data rows should place column b at the same offset.
  const auto lines_start = rendered.find('\n');
  ASSERT_NE(lines_start, std::string::npos);
  const auto row1 = rendered.find("xxxxx");
  const auto row2 = rendered.find("y", row1);
  const auto col1 = rendered.find('1', row1) - row1;
  const auto col2 = rendered.find('2', row2) - row2;
  EXPECT_EQ(col1, col2);
}

TEST(TextTable, CsvOutput) {
  TextTable t({"x", "y"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.render_csv(), "x,y\n1,2\n");
}

TEST(TextTable, RowCountAndFormat) {
  TextTable t({"v"});
  EXPECT_EQ(t.row_count(), 0U);
  t.add_row({TextTable::fmt(3.14159, 2)});
  EXPECT_EQ(t.row_count(), 1U);
  EXPECT_EQ(TextTable::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::fmt(static_cast<long long>(-7)), "-7");
  EXPECT_EQ(TextTable::fmt(static_cast<std::size_t>(42)), "42");
}

TEST(TextTable, MismatchedRowWidthAborts) {
  TextTable t({"a", "b"});
  EXPECT_DEATH(t.add_row({"only-one"}), "row width");
}

TEST(CliArgs, ParsesKeyEqualsValue) {
  const char* argv[] = {"prog", "--alpha=0.9", "--name=test"};
  const auto args = CliArgs::parse(3, argv);
  EXPECT_DOUBLE_EQ(args.get_double("alpha", 0.0), 0.9);
  EXPECT_EQ(args.get_string("name", ""), "test");
}

TEST(CliArgs, ParsesKeySpaceValue) {
  const char* argv[] = {"prog", "--threads", "8"};
  const auto args = CliArgs::parse(3, argv);
  EXPECT_EQ(args.get_int("threads", 0), 8);
}

TEST(CliArgs, BareFlagIsTrue) {
  const char* argv[] = {"prog", "--verbose"};
  const auto args = CliArgs::parse(2, argv);
  EXPECT_TRUE(args.get_bool("verbose", false));
  EXPECT_TRUE(args.has("verbose"));
  EXPECT_FALSE(args.has("quiet"));
}

TEST(CliArgs, PositionalCollected) {
  const char* argv[] = {"prog", "file1.txt", "--k=2", "file2.txt"};
  const auto args = CliArgs::parse(4, argv);
  ASSERT_EQ(args.positional().size(), 2U);
  EXPECT_EQ(args.positional()[0], "file1.txt");
  EXPECT_EQ(args.positional()[1], "file2.txt");
  EXPECT_EQ(args.program(), "prog");
}

TEST(CliArgs, FallbacksWhenMissing) {
  const char* argv[] = {"prog"};
  const auto args = CliArgs::parse(1, argv);
  EXPECT_EQ(args.get_int("missing", -5), -5);
  EXPECT_DOUBLE_EQ(args.get_double("missing", 2.5), 2.5);
  EXPECT_EQ(args.get_string("missing", "zz"), "zz");
  EXPECT_FALSE(args.get_bool("missing", false));
}

TEST(CliArgs, BoolSpellings) {
  const char* argv[] = {"prog", "--a=true", "--b=1", "--c=yes", "--d=no"};
  const auto args = CliArgs::parse(5, argv);
  EXPECT_TRUE(args.get_bool("a", false));
  EXPECT_TRUE(args.get_bool("b", false));
  EXPECT_TRUE(args.get_bool("c", false));
  EXPECT_FALSE(args.get_bool("d", true));
}

}  // namespace
}  // namespace pts
