#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace pts {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 32; ++i) differing += a() != b() ? 1 : 0;
  EXPECT_GT(differing, 28);
}

TEST(Rng, ReseedRestartsStream) {
  Rng a(7);
  const auto first = a();
  a.reseed(7);
  EXPECT_EQ(a(), first);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(17), 17U);
  }
}

TEST(Rng, NextBelowOneIsAlwaysZero) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.next_below(1), 0U);
}

TEST(Rng, NextBelowCoversAllResidues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.next_below(7));
  EXPECT_EQ(seen.size(), 7U);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, Uniform01HalfOpen) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, Uniform01MeanIsAboutHalf) {
  Rng rng(13);
  double sum = 0.0;
  const int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / kSamples, 0.5, 0.01);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(21);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto shuffled = v;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, ShuffleActuallyShuffles) {
  Rng rng(23);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);
}

TEST(Rng, DeriveIsDeterministic) {
  Rng parent(31);
  Rng a = parent.derive(4);
  Rng b = parent.derive(4);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DerivedStreamsAreIndependent) {
  Rng parent(31);
  Rng a = parent.derive(1);
  Rng b = parent.derive(2);
  int differing = 0;
  for (int i = 0; i < 32; ++i) differing += a() != b() ? 1 : 0;
  EXPECT_GT(differing, 28);
}

TEST(Rng, DeriveDoesNotAdvanceParent) {
  Rng parent(37);
  Rng copy = parent;
  (void)parent.derive(9);
  EXPECT_EQ(parent(), copy());
}

TEST(Rng, RandomPermutationIsValid) {
  Rng rng(41);
  const auto perm = random_permutation(50, rng);
  ASSERT_EQ(perm.size(), 50U);
  std::set<std::size_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 50U);
  EXPECT_EQ(*seen.begin(), 0U);
  EXPECT_EQ(*seen.rbegin(), 49U);
}

TEST(Rng, SplitmixAdvancesState) {
  std::uint64_t s = 0;
  const auto a = splitmix64(s);
  const auto b = splitmix64(s);
  EXPECT_NE(a, b);
}

class RngBoundSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngBoundSweep, NextBelowNeverReachesBound) {
  Rng rng(GetParam() * 977 + 1);
  const std::uint64_t bound = GetParam();
  for (int i = 0; i < 3000; ++i) EXPECT_LT(rng.next_below(bound), bound);
}

INSTANTIATE_TEST_SUITE_P(Bounds, RngBoundSweep,
                         ::testing::Values(1, 2, 3, 5, 16, 100, 1000, 1ULL << 32));

}  // namespace
}  // namespace pts
