// Pathological instances through the whole stack: degenerate shapes that a
// downstream user will eventually feed the library must be handled without
// crashes and with sane answers.
#include <gtest/gtest.h>

#include "bounds/greedy.hpp"
#include "bounds/simplex.hpp"
#include "bounds/surrogate.hpp"
#include "exact/branch_and_bound.hpp"
#include "parallel/runner.hpp"
#include "tabu/cets.hpp"
#include "tabu/engine.hpp"

namespace pts {
namespace {

tabu::TsParams tiny_budget() {
  tabu::TsParams params;
  params.max_moves = 300;
  params.strategy.nb_local = 10;
  return params;
}

TEST(Pathological, SingleItemThatFits) {
  mkp::Instance inst("one-fits", {7.0}, {3.0}, {5.0});
  Rng rng(1);
  const auto ts = tabu::tabu_search_from_scratch(inst, tiny_budget(), rng);
  EXPECT_DOUBLE_EQ(ts.best_value, 7.0);
  EXPECT_DOUBLE_EQ(exact::branch_and_bound(inst).objective, 7.0);
  EXPECT_DOUBLE_EQ(bounds::solve_lp_relaxation(inst).objective, 7.0);
}

TEST(Pathological, SingleItemThatDoesNot) {
  mkp::Instance inst("one-big", {7.0}, {9.0}, {5.0});
  Rng rng(2);
  const auto ts = tabu::tabu_search_from_scratch(inst, tiny_budget(), rng);
  EXPECT_DOUBLE_EQ(ts.best_value, 0.0);
  EXPECT_TRUE(ts.best.is_feasible());
  EXPECT_DOUBLE_EQ(exact::branch_and_bound(inst).objective, 0.0);
}

TEST(Pathological, NothingFitsAtAll) {
  mkp::Instance inst("none", {5, 6, 7}, {10, 11, 12}, {4});
  Rng rng(3);
  const auto ts = tabu::tabu_search_from_scratch(inst, tiny_budget(), rng);
  EXPECT_DOUBLE_EQ(ts.best_value, 0.0);
  const auto greedy = bounds::greedy_construct(inst);
  EXPECT_EQ(greedy.cardinality(), 0U);
}

TEST(Pathological, EverythingFitsTrivially) {
  mkp::Instance inst("all", {1, 2, 3, 4}, {1, 1, 1, 1}, {100});
  Rng rng(4);
  const auto ts = tabu::tabu_search_from_scratch(inst, tiny_budget(), rng);
  EXPECT_DOUBLE_EQ(ts.best_value, 10.0);
}

TEST(Pathological, AllItemsIdentical) {
  // 10 identical items, room for exactly 4.
  std::vector<double> profits(10, 5.0);
  std::vector<double> weights(10, 3.0);
  mkp::Instance inst("clones", std::move(profits), std::move(weights), {12.0});
  Rng rng(5);
  const auto ts = tabu::tabu_search_from_scratch(inst, tiny_budget(), rng);
  EXPECT_DOUBLE_EQ(ts.best_value, 20.0);
  const auto bnb = exact::branch_and_bound(inst);
  EXPECT_DOUBLE_EQ(bnb.objective, 20.0);
}

TEST(Pathological, ZeroWeightItemsAlwaysTaken) {
  // Items 1 and 3 weigh nothing: any sensible solver takes them for free.
  mkp::Instance inst("free", {4, 9, 2, 8}, {5, 0, 5, 0}, {5});
  Rng rng(6);
  const auto ts = tabu::tabu_search_from_scratch(inst, tiny_budget(), rng);
  EXPECT_TRUE(ts.best.contains(1));
  EXPECT_TRUE(ts.best.contains(3));
  // optimum: free items (17) + best of items 0/2 (4) = 21.
  EXPECT_DOUBLE_EQ(ts.best_value, 21.0);
}

TEST(Pathological, ZeroCapacityConstraintPinsEverythingWithWeight) {
  mkp::Instance inst("pin", {4, 9}, {1, 0, 1, 1}, {0, 10});
  // Constraint 0 has capacity 0: item 0 (weight 1) can never enter.
  Rng rng(7);
  const auto ts = tabu::tabu_search_from_scratch(inst, tiny_budget(), rng);
  EXPECT_FALSE(ts.best.contains(0));
  EXPECT_TRUE(ts.best.contains(1));
  EXPECT_DOUBLE_EQ(ts.best_value, 9.0);
}

TEST(Pathological, OneByOneInstance) {
  mkp::Instance inst("1x1", {42.0}, {1.0}, {1.0});
  Rng rng(8);
  EXPECT_DOUBLE_EQ(tabu::tabu_search_from_scratch(inst, tiny_budget(), rng).best_value,
                   42.0);
  Rng rng2(8);
  tabu::CetsParams cets;
  cets.max_steps = 200;
  EXPECT_DOUBLE_EQ(tabu::critical_event_tabu_search(inst, rng2, cets).best_value, 42.0);
}

TEST(Pathological, HugeProfitsStayFinite) {
  mkp::Instance inst("huge", {1e15, 2e15}, {1, 1}, {2});
  Rng rng(9);
  const auto ts = tabu::tabu_search_from_scratch(inst, tiny_budget(), rng);
  EXPECT_DOUBLE_EQ(ts.best_value, 3e15);
  const auto lp = bounds::solve_lp_relaxation(inst);
  ASSERT_TRUE(lp.optimal());
  EXPECT_DOUBLE_EQ(lp.objective, 3e15);
}

TEST(Pathological, ParallelRunnerHandlesTinyInstances) {
  mkp::Instance inst("tiny", {3, 1}, {2, 1}, {2});
  parallel::ParallelConfig config;
  config.num_slaves = 3;
  config.search_iterations = 2;
  config.work_per_slave_round = 100;
  const auto result = parallel::run_parallel_tabu_search(inst, config);
  EXPECT_DOUBLE_EQ(result.best_value, 3.0);
}

TEST(Pathological, SurrogateOnDegenerateConstraint) {
  // Second constraint is all zeros with positive capacity: harmless.
  mkp::Instance inst("degen", {3, 4}, {1, 2, 0, 0}, {2, 5});
  const auto result = bounds::solve_surrogate(inst);
  EXPECT_GE(result.bound, 4.0 - 1e-9);  // optimum is {1} = 4 (w=2 <= 2)
}

}  // namespace
}  // namespace pts
