// Oracle-agreement properties: every solver/bound in the repository must
// tell a mutually consistent story on instances small enough to enumerate:
//
//   greedy <= optimum(BF) == optimum(B&B) [== optimum(DP) when m == 1]
//          <= LP <= surrogate(u) for all evaluated u
//          <= min-constraint Dantzig bound
#include <gtest/gtest.h>

#include "bounds/dantzig.hpp"
#include "bounds/greedy.hpp"
#include "bounds/simplex.hpp"
#include "bounds/surrogate.hpp"
#include "exact/branch_and_bound.hpp"
#include "exact/brute_force.hpp"
#include "exact/dp_single.hpp"
#include "mkp/generator.hpp"
#include "tabu/engine.hpp"

namespace pts {
namespace {

class OracleChain : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OracleChain, FullChainOnMultiConstraintInstances) {
  const auto inst =
      mkp::generate_gk({.num_items = 15, .num_constraints = 4}, GetParam());

  const double greedy = bounds::greedy_construct(inst).value();
  const auto bf = exact::brute_force(inst);
  const auto bnb = exact::branch_and_bound(inst);
  ASSERT_TRUE(bnb.proven_optimal);
  const auto lp = bounds::solve_lp_relaxation(inst);
  ASSERT_TRUE(lp.optimal());
  bounds::SurrogateOptions surrogate_options;
  surrogate_options.refinement_rounds = 5;
  const auto surrogate = bounds::solve_surrogate(inst, surrogate_options);
  const double dantzig = bounds::min_constraint_bound(inst);

  EXPECT_LE(greedy, bf.optimum + 1e-9);
  EXPECT_DOUBLE_EQ(bnb.objective, bf.optimum);
  EXPECT_GE(lp.objective, bf.optimum - 1e-7);
  EXPECT_GE(surrogate.bound, lp.objective - 1e-6);
  EXPECT_GE(dantzig, lp.objective - 1e-6);
}

TEST_P(OracleChain, DpJoinsTheChainOnSingleConstraint) {
  const auto inst = mkp::generate_uncorrelated(16, 1, GetParam(), 50.0);
  const auto bf = exact::brute_force(inst);
  const auto dp = exact::dp_single_knapsack(inst);
  const auto bnb = exact::branch_and_bound(inst);
  ASSERT_TRUE(bnb.proven_optimal);
  EXPECT_DOUBLE_EQ(dp.optimum, bf.optimum);
  EXPECT_DOUBLE_EQ(bnb.objective, bf.optimum);
}

TEST_P(OracleChain, TabuSearchNeverExceedsTheOptimum) {
  const auto inst =
      mkp::generate_fp({.num_items = 14, .num_constraints = 5}, GetParam());
  const auto bf = exact::brute_force(inst);
  Rng rng(GetParam());
  tabu::TsParams params;
  params.max_moves = 800;
  params.strategy.nb_local = 15;
  const auto ts = tabu::tabu_search_from_scratch(inst, params, rng);
  EXPECT_LE(ts.best_value, bf.optimum + 1e-9);
  // With this budget on 14 items the optimum is all but guaranteed:
  EXPECT_GE(ts.best_value, bf.optimum * 0.95);
}

TEST_P(OracleChain, TightnessSweepKeepsChainValid) {
  for (double tightness : {0.25, 0.5, 0.75}) {
    const auto inst =
        mkp::generate_uncorrelated(14, 3, GetParam() * 31 + 1, 100.0, tightness);
    const auto bf = exact::brute_force(inst);
    const auto lp = bounds::solve_lp_relaxation(inst);
    ASSERT_TRUE(lp.optimal());
    EXPECT_GE(lp.objective, bf.optimum - 1e-7) << "tightness " << tightness;
    const double greedy = bounds::greedy_construct(inst).value();
    EXPECT_LE(greedy, bf.optimum + 1e-9) << "tightness " << tightness;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OracleChain,
                         ::testing::Values(1, 3, 7, 13, 29, 53, 97, 151));

}  // namespace
}  // namespace pts
