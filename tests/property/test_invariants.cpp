// Cross-module invariants swept over random instances: the properties that
// must hold for every instance/seed combination, not just hand-picked cases.
#include <gtest/gtest.h>

#include <sstream>

#include "bounds/greedy.hpp"
#include "bounds/simplex.hpp"
#include "bounds/surrogate.hpp"
#include "mkp/generator.hpp"
#include "mkp/parser.hpp"
#include "tabu/engine.hpp"
#include "util/rng.hpp"

namespace pts {
namespace {

struct Workload {
  std::size_t n;
  std::size_t m;
  std::uint64_t seed;
};

class InstanceSweep : public ::testing::TestWithParam<Workload> {
 protected:
  mkp::Instance make() const {
    const auto& p = GetParam();
    return mkp::generate_gk({.num_items = p.n, .num_constraints = p.m}, p.seed);
  }
};

TEST_P(InstanceSweep, GeneratedInstanceIsWellFormed) {
  const auto inst = make();
  EXPECT_TRUE(inst.validate().empty());
  EXPECT_TRUE(inst.every_item_fits());
}

TEST_P(InstanceSweep, ParserRoundTripPreservesEverything) {
  const auto inst = make();
  std::stringstream buffer;
  mkp::write_orlib_single(buffer, inst);
  const auto reread = mkp::read_orlib_single(buffer, inst.name());
  ASSERT_EQ(reread.num_items(), inst.num_items());
  ASSERT_EQ(reread.num_constraints(), inst.num_constraints());
  for (std::size_t j = 0; j < inst.num_items(); ++j) {
    EXPECT_DOUBLE_EQ(reread.profit(j), inst.profit(j));
  }
}

TEST_P(InstanceSweep, GreedySandwichedByLp) {
  const auto inst = make();
  const auto greedy = bounds::greedy_construct(inst);
  const auto lp = bounds::solve_lp_relaxation(inst);
  ASSERT_TRUE(lp.optimal());
  EXPECT_LE(greedy.value(), lp.objective + 1e-6);
  EXPECT_GT(greedy.value(), 0.0);
}

TEST_P(InstanceSweep, SurrogateDominatesLp) {
  const auto inst = make();
  const auto lp = bounds::solve_lp_relaxation(inst);
  ASSERT_TRUE(lp.optimal());
  bounds::SurrogateOptions options;
  options.refinement_rounds = 3;
  const auto surrogate = bounds::solve_surrogate(inst, options);
  EXPECT_GE(surrogate.bound, lp.objective - 1e-6);
}

TEST_P(InstanceSweep, EngineInvariants) {
  const auto inst = make();
  Rng rng(GetParam().seed ^ 0x5555ULL);
  tabu::TsParams params;
  params.max_moves = 600;
  params.strategy.nb_local = 15;
  const auto result = tabu::tabu_search_from_scratch(inst, params, rng);

  // The incumbent is feasible, internally consistent, LP-bounded.
  EXPECT_TRUE(result.best.is_feasible());
  EXPECT_TRUE(result.best.check_consistency());
  const auto lp = bounds::solve_lp_relaxation(inst);
  ASSERT_TRUE(lp.optimal());
  EXPECT_LE(result.best_value, lp.objective + 1e-6);

  // The elite pool is sorted, distinct, feasible, headed by the incumbent.
  for (std::size_t k = 0; k < result.elite.size(); ++k) {
    EXPECT_TRUE(result.elite[k].is_feasible());
    if (k > 0) EXPECT_GE(result.elite[k - 1].value(), result.elite[k].value());
  }
  ASSERT_FALSE(result.elite.empty());
  EXPECT_DOUBLE_EQ(result.elite.front().value(), result.best_value);

  // Budget respected exactly (run_to_budget).
  EXPECT_EQ(result.moves, 600U);
}

TEST_P(InstanceSweep, EngineMonotoneUnderExtraBudget) {
  // More moves can never yield a worse incumbent for the same stream: the
  // incumbent is a running maximum over a deterministic trajectory.
  const auto inst = make();
  tabu::TsParams small_params;
  small_params.max_moves = 200;
  small_params.strategy.nb_local = 15;
  tabu::TsParams large_params = small_params;
  large_params.max_moves = 800;
  Rng rng_small(3), rng_large(3);
  const auto small_run = tabu::tabu_search_from_scratch(inst, small_params, rng_small);
  const auto large_run = tabu::tabu_search_from_scratch(inst, large_params, rng_large);
  EXPECT_GE(large_run.best_value, small_run.best_value);
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, InstanceSweep,
    ::testing::Values(Workload{10, 2, 1}, Workload{20, 3, 2}, Workload{30, 5, 3},
                      Workload{50, 5, 4}, Workload{50, 10, 5}, Workload{80, 8, 6},
                      Workload{100, 10, 7}, Workload{120, 15, 8}),
    [](const auto& info) {
      return "n" + std::to_string(info.param.n) + "m" + std::to_string(info.param.m) +
             "s" + std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace pts
