// Parser robustness: arbitrary corruption of well-formed input must yield a
// clean ParseError (or a successfully parsed instance when the corruption
// happens to stay well-formed) — never a crash, hang, or silent garbage
// with negative sizes.
#include <gtest/gtest.h>

#include <sstream>

#include "mkp/generator.hpp"
#include "mkp/parser.hpp"
#include "mkp/solution_io.hpp"
#include "util/rng.hpp"

namespace pts::mkp {
namespace {

std::string well_formed_document(std::uint64_t seed) {
  std::ostringstream out;
  std::vector<Instance> batch;
  batch.push_back(generate_gk({.num_items = 12, .num_constraints = 3}, seed));
  batch.push_back(generate_fp({.num_items = 8, .num_constraints = 2}, seed));
  write_orlib(out, batch);
  return out.str();
}

class ParserFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParserFuzz, TruncationsAlwaysThrowOrParse) {
  const auto document = well_formed_document(GetParam());
  Rng rng(GetParam());
  for (int round = 0; round < 40; ++round) {
    const auto cut = rng.index(document.size());
    std::istringstream in(document.substr(0, cut));
    try {
      const auto instances = read_orlib(in, "fuzz");
      for (const auto& inst : instances) {
        EXPECT_GT(inst.num_items(), 0U);
        EXPECT_GT(inst.num_constraints(), 0U);
      }
    } catch (const ParseError&) {
      // expected for most cuts
    }
  }
}

TEST_P(ParserFuzz, ByteCorruptionNeverCrashes) {
  const auto document = well_formed_document(GetParam() + 100);
  Rng rng(GetParam() + 100);
  static constexpr char kNoise[] = {'x', '-', '.', '9', ' ', '\n', '#', '\0'};
  for (int round = 0; round < 60; ++round) {
    auto corrupted = document;
    const int edits = 1 + static_cast<int>(rng.index(5));
    for (int e = 0; e < edits; ++e) {
      corrupted[rng.index(corrupted.size())] = kNoise[rng.index(sizeof kNoise)];
    }
    std::istringstream in(corrupted);
    try {
      const auto instances = read_orlib(in, "fuzz");
      for (const auto& inst : instances) {
        EXPECT_GT(inst.num_items(), 0U);
        EXPECT_LE(inst.num_items(), 1000U);  // no absurd sizes from garbage
      }
    } catch (const ParseError&) {
    }
  }
}

TEST_P(ParserFuzz, TokenDeletionNeverCrashes) {
  const auto document = well_formed_document(GetParam() + 200);
  std::istringstream tokenizer(document);
  std::vector<std::string> tokens;
  for (std::string token; tokenizer >> token;) tokens.push_back(token);
  Rng rng(GetParam() + 200);
  for (int round = 0; round < 30; ++round) {
    auto mutated = tokens;
    mutated.erase(mutated.begin() + static_cast<long>(rng.index(mutated.size())));
    std::ostringstream out;
    for (const auto& token : mutated) out << token << ' ';
    std::istringstream in(out.str());
    try {
      (void)read_orlib(in, "fuzz");
    } catch (const ParseError&) {
    }
  }
}

TEST_P(ParserFuzz, SolutionFormatCorruptionNeverCrashes) {
  const auto inst = generate_gk({.num_items = 15, .num_constraints = 3}, GetParam());
  Solution solution(inst);
  for (std::size_t j = 0; j < 15; j += 3) {
    if (solution.fits(j)) solution.add(j);
  }
  std::ostringstream out;
  write_solution(out, solution);
  const auto document = out.str();
  Rng rng(GetParam() + 300);
  for (int round = 0; round < 50; ++round) {
    auto corrupted = document;
    corrupted[rng.index(corrupted.size())] =
        static_cast<char>('0' + rng.index(10));
    std::istringstream in(corrupted);
    try {
      const auto reread = read_solution(in, inst);
      EXPECT_TRUE(reread.is_feasible());  // validation catches everything else
    } catch (const SolutionIoError&) {
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace pts::mkp
