// Table-2-shaped sanity: the four modes run under identical total work
// budgets and their outputs are mutually comparable. Strict quality
// orderings are benchmarked, not unit-tested (they hold on average, not per
// seed); here we pin the structural facts that make the comparison fair.
#include <gtest/gtest.h>

#include "bounds/simplex.hpp"
#include "mkp/generator.hpp"
#include "parallel/runner.hpp"

namespace pts {
namespace {

using parallel::CooperationMode;
using parallel::ParallelConfig;
using parallel::run_parallel_tabu_search;

constexpr CooperationMode kModes[] = {
    CooperationMode::kSequential,
    CooperationMode::kIndependent,
    CooperationMode::kCooperativePool,
    CooperationMode::kCooperativeAdaptive,
};

ParallelConfig table2_config(CooperationMode mode, std::uint64_t seed) {
  ParallelConfig config;
  config.mode = mode;
  config.num_slaves = 4;
  config.search_iterations = 3;
  config.work_per_slave_round = 800;
  config.base_params.strategy.nb_local = 15;
  config.seed = seed;
  return config;
}

TEST(Modes, AllFourProduceComparableFeasibleSolutions) {
  const auto inst = mkp::generate_gk({.num_items = 80, .num_constraints = 8}, 1);
  const auto lp = bounds::solve_lp_relaxation(inst);
  ASSERT_TRUE(lp.optimal());
  for (auto mode : kModes) {
    const auto result = run_parallel_tabu_search(inst, table2_config(mode, 3));
    EXPECT_TRUE(result.best.is_feasible()) << to_string(mode);
    EXPECT_GT(result.best_value, 0.0) << to_string(mode);
    EXPECT_LE(result.best_value, lp.objective + 1e-6) << to_string(mode);
  }
}

TEST(Modes, WorkNormalizationHoldsAcrossModes) {
  // moves * nb_drop per slave-round is capped by the configured work unit,
  // so no mode can outspend another by more than integer-division slack.
  const auto inst = mkp::generate_gk({.num_items = 60, .num_constraints = 6}, 2);
  const std::uint64_t total_work = 4ULL * 3ULL * 800ULL;
  for (auto mode : kModes) {
    const auto result = run_parallel_tabu_search(inst, table2_config(mode, 4));
    EXPECT_LE(result.total_moves, total_work) << to_string(mode);
    EXPECT_GE(result.total_moves, total_work / 8 / 2) << to_string(mode);
  }
}

TEST(Modes, CooperationStrictlyAddsMachinery) {
  // ITS must not cooperate; CTS1 may inject but never retune; CTS2 may both.
  const auto inst = mkp::generate_gk({.num_items = 60, .num_constraints = 6}, 3);

  const auto its = run_parallel_tabu_search(
      inst, table2_config(CooperationMode::kIndependent, 5));
  EXPECT_EQ(its.master.strategy_retunes, 0U);
  EXPECT_EQ(its.master.global_best_injections, 0U);

  const auto cts1 = run_parallel_tabu_search(
      inst, table2_config(CooperationMode::kCooperativePool, 5));
  EXPECT_EQ(cts1.master.strategy_retunes, 0U);

  // CTS2 places no such restriction — nothing to assert beyond it running,
  // which AllFourProduceComparableFeasibleSolutions already covers.
}

TEST(Modes, AggregateOrderingOverSeeds) {
  // The paper's Table-2 claim, testably weakened: averaged over several
  // seeds, the best cooperative mode is no worse than plain SEQ. (Per-seed
  // ordering is noise; the mean ordering is the reproducible signal.)
  const auto inst = mkp::generate_gk({.num_items = 100, .num_constraints = 10}, 4);
  double seq_total = 0.0;
  double coop_total = 0.0;
  for (std::uint64_t seed : {1, 2, 3, 4, 5}) {
    seq_total += run_parallel_tabu_search(
                     inst, table2_config(CooperationMode::kSequential, seed))
                     .best_value;
    const auto cts1 = run_parallel_tabu_search(
        inst, table2_config(CooperationMode::kCooperativePool, seed));
    const auto cts2 = run_parallel_tabu_search(
        inst, table2_config(CooperationMode::kCooperativeAdaptive, seed));
    coop_total += std::max(cts1.best_value, cts2.best_value);
  }
  EXPECT_GE(coop_total, seq_total * 0.999);
}

}  // namespace
}  // namespace pts
