// Last-mile end-to-end edges: behaviors at the seams between modules.
#include <gtest/gtest.h>

#include <sstream>

#include "bounds/greedy.hpp"
#include "mkp/catalog.hpp"
#include "mkp/generator.hpp"
#include "mkp/parser.hpp"
#include "mkp/solution_io.hpp"
#include "parallel/solve.hpp"
#include "exact/brute_force.hpp"
#include "tabu/engine.hpp"

namespace pts {
namespace {

TEST(EndToEndEdges, TargetAlreadyMetByInitialSolution) {
  // The engine's starting greedy fill can itself satisfy the target; the
  // run must report reached_target without burning the budget.
  const auto inst = mkp::generate_gk({.num_items = 50, .num_constraints = 5}, 1);
  const double greedy = bounds::greedy_construct(inst).value();
  Rng rng(1);
  tabu::TsParams params;
  params.max_moves = 100000;
  params.target_value = greedy * 0.5;  // far below any start
  const auto result = tabu::tabu_search_from_scratch(inst, params, rng);
  EXPECT_TRUE(result.reached_target);
  EXPECT_LE(result.moves, 1U);
}

TEST(EndToEndEdges, ParsedInstanceSolvesAndPersists) {
  // Full loop: generate -> write orlib -> read -> solve -> write solution ->
  // read solution, validated against the reread instance.
  const auto original = mkp::generate_gk({.num_items = 30, .num_constraints = 4}, 2);
  std::stringstream file;
  mkp::write_orlib_single(file, original);
  const auto reread = mkp::read_orlib_single(file, "rt");

  parallel::SolveOptions options;
  options.time_budget_seconds = 0.1;
  options.preset = "quick";
  const auto summary = parallel::solve(reread, options);
  ASSERT_TRUE(summary.has_value()) << summary.status().to_string();

  std::stringstream solution_file;
  mkp::write_solution(solution_file, summary->best);
  const auto restored = mkp::read_solution(solution_file, reread);
  EXPECT_EQ(restored, summary->best);
  EXPECT_TRUE(restored.is_feasible());
}

TEST(EndToEndEdges, CatalogDominantTrapDefeatsDensityGreedy) {
  // The new catalog entry's raison d'etre: greedy strands capacity, the
  // tabu engine recovers the optimum by dropping the "best" item.
  const auto entry = mkp::catalog_entry("cat-dominant-trap");
  const auto greedy =
      bounds::greedy_construct(entry.instance, bounds::GreedyOrder::kDensity);
  EXPECT_LT(greedy.value(), entry.optimum);
  Rng rng(3);
  tabu::TsParams params;
  params.max_moves = 3000;
  params.strategy.tabu_tenure = 3;
  const auto ts = tabu::tabu_search_from_scratch(entry.instance, params, rng);
  EXPECT_DOUBLE_EQ(ts.best_value, entry.optimum);
}

TEST(EndToEndEdges, NestedCapacitiesOnlyTightOneBinds) {
  const auto entry = mkp::catalog_entry("cat-nested");
  Rng rng(4);
  tabu::TsParams params;
  params.max_moves = 2000;
  const auto ts = tabu::tabu_search_from_scratch(entry.instance, params, rng);
  EXPECT_DOUBLE_EQ(ts.best_value, entry.optimum);
  // The binding constraint is saturated, the duplicate is half-used.
  EXPECT_DOUBLE_EQ(ts.best.load(1), entry.instance.capacity(1));
  EXPECT_DOUBLE_EQ(ts.best.load(0), entry.instance.capacity(1));
}

TEST(EndToEndEdges, SolveOnCatalogReachesOptimaFast) {
  for (const auto& entry : mkp::catalog()) {
    parallel::SolveOptions options;
    options.time_budget_seconds = 2.0;
    options.preset = "quick";
    options.target_value = entry.optimum;
    const auto summary = parallel::solve(entry.instance, options);
    ASSERT_TRUE(summary.has_value()) << summary.status().to_string();
    EXPECT_DOUBLE_EQ(summary->best_value, entry.optimum) << entry.instance.name();
    EXPECT_TRUE(summary->reached_target) << entry.instance.name();
  }
}

TEST(EndToEndEdges, FractionalDataEndToEnd) {
  // Real-valued profits/weights (the paper allows positive reals): parse,
  // solve, verify against brute force.
  std::stringstream file("4 2 0\n1.5 2.25 3.125 0.875\n"
                         "0.5 1.5 2.5 0.25\n1.0 1.0 1.0 1.0\n3.0 2.5\n");
  const auto inst = mkp::read_orlib_single(file, "frac");
  const auto oracle = exact::brute_force(inst);
  Rng rng(5);
  tabu::TsParams params;
  params.max_moves = 2000;
  const auto ts = tabu::tabu_search_from_scratch(inst, params, rng);
  EXPECT_DOUBLE_EQ(ts.best_value, oracle.optimum);
}

}  // namespace
}  // namespace pts
