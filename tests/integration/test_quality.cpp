// End-to-end solution-quality checks: the full parallel system against the
// exact solvers and the LP bound.
#include <gtest/gtest.h>

#include "bounds/greedy.hpp"
#include "bounds/simplex.hpp"
#include "exact/branch_and_bound.hpp"
#include "mkp/catalog.hpp"
#include "mkp/generator.hpp"
#include "parallel/runner.hpp"
#include "util/stats.hpp"

namespace pts {
namespace {

using parallel::CooperationMode;
using parallel::ParallelConfig;
using parallel::run_parallel_tabu_search;

ParallelConfig cts2_config(std::uint64_t seed, std::size_t rounds = 4,
                           std::uint64_t work = 1500) {
  ParallelConfig config;
  config.mode = CooperationMode::kCooperativeAdaptive;
  config.num_slaves = 4;
  config.search_iterations = rounds;
  config.work_per_slave_round = work;
  config.base_params.strategy.nb_local = 20;
  config.mix_intensification = true;  // both §3.2 procedures, like the benches
  config.seed = seed;
  return config;
}

TEST(Quality, Cts2FindsCatalogOptima) {
  for (const auto& entry : mkp::catalog()) {
    auto config = cts2_config(31);
    config.target_value = entry.optimum;  // stop as soon as it's found
    const auto result = run_parallel_tabu_search(entry.instance, config);
    EXPECT_DOUBLE_EQ(result.best_value, entry.optimum) << entry.instance.name();
  }
}

TEST(Quality, Cts2MatchesBnbOnSmallGkInstances) {
  for (std::uint64_t seed : {101, 202, 303}) {
    const auto inst = mkp::generate_gk({.num_items = 30, .num_constraints = 5}, seed);
    const auto exact_result = exact::branch_and_bound(inst);
    ASSERT_TRUE(exact_result.proven_optimal);
    // Multi-start protocol: any single seed can miss a tight optimum by a
    // hair; three independent runs (target-stopped) must reach it.
    double best = 0.0;
    for (std::uint64_t attempt = 0; attempt < 3 && best < exact_result.objective;
         ++attempt) {
      auto config = cts2_config(seed + attempt * 977, /*rounds=*/10, /*work=*/8000);
      config.target_value = exact_result.objective;
      best = std::max(best, run_parallel_tabu_search(inst, config).best_value);
    }
    EXPECT_DOUBLE_EQ(best, exact_result.objective) << "seed " << seed;
  }
}

TEST(Quality, Cts2BeatsDeterministicGreedy) {
  // On correlated GK instances greedy leaves value on the table; tabu search
  // must recover at least greedy (it starts beyond it) and typically more.
  RunningStats improvements;
  for (std::uint64_t seed : {11, 22, 33, 44}) {
    const auto inst =
        mkp::generate_gk({.num_items = 100, .num_constraints = 10}, seed);
    const double greedy = bounds::greedy_construct(inst).value();
    const auto ts = run_parallel_tabu_search(inst, cts2_config(seed));
    EXPECT_GE(ts.best_value, greedy) << "seed " << seed;
    improvements.add(ts.best_value - greedy);
  }
  EXPECT_GT(improvements.max(), 0.0);  // strictly improved at least once
}

TEST(Quality, Cts2WithinLpGapOnMediumInstances) {
  // The LP bound caps the optimum; a healthy heuristic lands within a small
  // deviation of it on GK instances (the paper's Table-1 deviations are
  // fractions of a percent; we allow a loose 10% on a tiny budget).
  for (std::uint64_t seed : {7, 14}) {
    const auto inst =
        mkp::generate_gk({.num_items = 100, .num_constraints = 5}, seed);
    const auto lp = bounds::solve_lp_relaxation(inst);
    ASSERT_TRUE(lp.optimal());
    const auto ts = run_parallel_tabu_search(inst, cts2_config(seed));
    const double gap = deviation_percent(ts.best_value, lp.objective);
    EXPECT_GE(gap, 0.0);
    EXPECT_LT(gap, 10.0) << "seed " << seed;
  }
}

TEST(Quality, SolvesFp57StyleInstancesToOptimality) {
  // The paper reports all 57 FP problems solved to optimality. Verifying a
  // sample here keeps the test fast; the full sweep lives in bench_fp57.
  const auto suite = mkp::generate_fp57(57);
  for (std::size_t idx : {0U, 10U, 20U}) {
    const auto& inst = suite[idx];
    exact::BnbOptions bnb_options;
    bnb_options.time_limit_seconds = 20.0;
    const auto exact_result = exact::branch_and_bound(inst, bnb_options);
    if (!exact_result.proven_optimal) continue;  // do not flake on slow boxes
    auto config = cts2_config(idx + 1);
    config.target_value = exact_result.objective;
    const auto ts = run_parallel_tabu_search(inst, config);
    EXPECT_DOUBLE_EQ(ts.best_value, exact_result.objective) << inst.name();
  }
}

}  // namespace
}  // namespace pts
