// Wire-format tests (DESIGN.md §8): every message round-trips bit-exactly,
// and every decoder is total — truncated frames, corrupt headers, absurd
// length prefixes and random bit flips must come back as a Status, never a
// crash or an unbounded allocation.
#include "parallel/wire.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <variant>

#include "bounds/greedy.hpp"
#include "mkp/generator.hpp"
#include "util/rng.hpp"

namespace pts::parallel {
namespace {

mkp::Instance make_instance(std::uint64_t seed = 1) {
  return mkp::generate_gk({.num_items = 40, .num_constraints = 5}, seed);
}

/// Splits an encoded frame into its validated header and payload view.
struct Split {
  wire::FrameHeader header;
  std::span<const std::uint8_t> payload;
};

Split split_frame(const std::vector<std::uint8_t>& frame) {
  auto header = wire::decode_header(frame);
  EXPECT_TRUE(header) << header.status().to_string();
  EXPECT_EQ(frame.size(), wire::kHeaderBytes + header->payload_size);
  return {*header,
          std::span<const std::uint8_t>(frame).subspan(wire::kHeaderBytes)};
}

Assignment make_assignment(const mkp::Instance& inst) {
  Rng rng(42);
  Assignment a{7, bounds::greedy_randomized(inst, rng), tabu::TsParams{}};
  a.params.strategy = {11, 3, 77, 16};
  a.params.nb_div = 5;
  a.params.nb_int = 2;
  a.params.b_best = 4;
  a.params.intensification = tabu::IntensificationKind::kStrategicOscillation;
  a.params.oscillation_depth = 9;
  a.params.tenure_control = tabu::TenureControl::kReactive;
  a.params.high_frequency = 0.7321;
  a.params.low_frequency = 0.1234;
  a.params.diversify_hold = 31;
  a.params.max_moves = 12345;
  a.params.time_limit_seconds = 0.375;
  a.params.target_value = 9876.5;
  a.params.run_to_budget = true;
  return a;
}

TEST(Wire, SolutionRoundTripIsBitExact) {
  const auto inst = make_instance();
  Rng rng(3);
  const auto solution = bounds::greedy_randomized(inst, rng);
  const auto bytes = wire::encode_solution(solution);
  const auto decoded = wire::decode_solution(bytes, inst);
  ASSERT_TRUE(decoded) << decoded.status().to_string();
  EXPECT_EQ(*decoded, solution);
  // Bit-exact, not approximately equal: proc == thread determinism rests on
  // the value surviving serialization unchanged.
  const double decoded_value = decoded->value();
  const double original_value = solution.value();
  EXPECT_EQ(std::memcmp(&decoded_value, &original_value, sizeof(double)), 0);
}

TEST(Wire, SolutionRejectsWrongInstance) {
  const auto inst = make_instance(1);
  const auto other = mkp::generate_gk({.num_items = 60, .num_constraints = 5}, 2);
  Rng rng(3);
  const auto bytes = wire::encode_solution(bounds::greedy_randomized(inst, rng));
  EXPECT_FALSE(wire::decode_solution(bytes, other));
}

TEST(Wire, StrategyRoundTrip) {
  const tabu::Strategy strategy{13, 4, 150, 32};
  const auto decoded = wire::decode_strategy(wire::encode_strategy(strategy));
  ASSERT_TRUE(decoded);
  EXPECT_EQ(*decoded, strategy);
}

TEST(Wire, AssignmentRoundTripCarriesEveryParam) {
  const auto inst = make_instance();
  const auto assignment = make_assignment(inst);
  const auto frame = wire::encode_to_slave(assignment);
  const auto [header, payload] = split_frame(frame);
  EXPECT_EQ(header.type, wire::MessageType::kAssignment);

  const auto decoded = wire::decode_to_slave(header.type, payload, inst);
  ASSERT_TRUE(decoded) << decoded.status().to_string();
  const auto* got = std::get_if<Assignment>(&*decoded);
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->round, assignment.round);
  EXPECT_EQ(got->initial, assignment.initial);
  const auto& p = got->params;
  const auto& q = assignment.params;
  EXPECT_EQ(p.strategy, q.strategy);
  EXPECT_EQ(p.nb_div, q.nb_div);
  EXPECT_EQ(p.nb_int, q.nb_int);
  EXPECT_EQ(p.b_best, q.b_best);
  EXPECT_EQ(p.intensification, q.intensification);
  EXPECT_EQ(p.oscillation_depth, q.oscillation_depth);
  EXPECT_EQ(p.tenure_control, q.tenure_control);
  EXPECT_DOUBLE_EQ(p.high_frequency, q.high_frequency);
  EXPECT_DOUBLE_EQ(p.low_frequency, q.low_frequency);
  EXPECT_EQ(p.diversify_hold, q.diversify_hold);
  EXPECT_EQ(p.max_moves, q.max_moves);
  EXPECT_DOUBLE_EQ(p.time_limit_seconds, q.time_limit_seconds);
  ASSERT_TRUE(p.target_value.has_value());
  EXPECT_DOUBLE_EQ(*p.target_value, *q.target_value);
  EXPECT_EQ(p.run_to_budget, q.run_to_budget);
}

TEST(Wire, StopRoundTripHasEmptyPayload) {
  const auto frame = wire::encode_to_slave(Stop{});
  const auto [header, payload] = split_frame(frame);
  EXPECT_EQ(header.type, wire::MessageType::kStop);
  EXPECT_TRUE(payload.empty());
  const auto inst = make_instance();
  const auto decoded = wire::decode_to_slave(header.type, payload, inst);
  ASSERT_TRUE(decoded);
  EXPECT_TRUE(std::holds_alternative<Stop>(*decoded));
}

TEST(Wire, ReportRoundTrip) {
  const auto inst = make_instance();
  Rng rng(5);
  Report report;
  report.slave_id = 3;
  report.round = 12;
  report.initial_value = 101.25;
  report.final_value = 222.75;
  report.elite.push_back(bounds::greedy_randomized(inst, rng));
  report.elite.push_back(bounds::greedy_randomized(inst, rng));
  report.moves = 4242;
  report.seconds = 0.0625;
  report.reached_target = true;
  report.counters[obs::Counter::kMovesTried] = 4242;
  report.counters[obs::Counter::kDroppedMessages] = 1;
  report.anytime.push_back({3, 0.5, 100, 150.0});
  report.anytime.push_back({3, 0.75, 200, 222.75});

  const auto frame = wire::encode_from_slave(report);
  const auto [header, payload] = split_frame(frame);
  EXPECT_EQ(header.type, wire::MessageType::kReport);
  const auto decoded = wire::decode_from_slave(header.type, payload, inst);
  ASSERT_TRUE(decoded) << decoded.status().to_string();
  const auto* got = std::get_if<Report>(&*decoded);
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->slave_id, report.slave_id);
  EXPECT_EQ(got->round, report.round);
  EXPECT_DOUBLE_EQ(got->initial_value, report.initial_value);
  EXPECT_DOUBLE_EQ(got->final_value, report.final_value);
  ASSERT_EQ(got->elite.size(), 2U);
  EXPECT_EQ(got->elite[0], report.elite[0]);
  EXPECT_EQ(got->elite[1], report.elite[1]);
  EXPECT_EQ(got->moves, report.moves);
  EXPECT_DOUBLE_EQ(got->seconds, report.seconds);
  EXPECT_TRUE(got->reached_target);
  EXPECT_EQ(got->counters[obs::Counter::kMovesTried], 4242U);
  ASSERT_EQ(got->anytime.size(), 2U);
  EXPECT_EQ(got->anytime[1].work_units, 200U);
  EXPECT_DOUBLE_EQ(got->anytime[1].value, 222.75);
}

TEST(Wire, FaultRoundTrip) {
  const auto inst = make_instance();
  const SlaveFault fault{5, 9, "std::bad_alloc in the inner loop"};
  const auto frame = wire::encode_from_slave(fault);
  const auto [header, payload] = split_frame(frame);
  EXPECT_EQ(header.type, wire::MessageType::kFault);
  const auto decoded = wire::decode_from_slave(header.type, payload, inst);
  ASSERT_TRUE(decoded);
  const auto* got = std::get_if<SlaveFault>(&*decoded);
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->slave_id, 5U);
  EXPECT_EQ(got->round, 9U);
  EXPECT_EQ(got->what, fault.what);
}

TEST(Wire, HelloRoundTripRebuildsTheInstance) {
  auto inst = make_instance(4);
  inst.set_known_optimum(31337.0);
  const auto frame = wire::encode_hello({2, 99, inst});
  const auto [header, payload] = split_frame(frame);
  EXPECT_EQ(header.type, wire::MessageType::kHello);
  const auto hello = wire::decode_hello(payload);
  ASSERT_TRUE(hello) << hello.status().to_string();
  EXPECT_EQ(hello->slave_id, 2U);
  EXPECT_EQ(hello->seed, 99U);
  const auto& got = hello->instance;
  EXPECT_EQ(got.name(), inst.name());
  ASSERT_EQ(got.num_items(), inst.num_items());
  ASSERT_EQ(got.num_constraints(), inst.num_constraints());
  for (std::size_t j = 0; j < inst.num_items(); ++j) {
    EXPECT_EQ(got.profit(j), inst.profit(j));
  }
  for (std::size_t i = 0; i < inst.num_constraints(); ++i) {
    EXPECT_EQ(got.capacity(i), inst.capacity(i));
    for (std::size_t j = 0; j < inst.num_items(); ++j) {
      EXPECT_EQ(got.weight(i, j), inst.weight(i, j));
    }
  }
  ASSERT_TRUE(got.known_optimum().has_value());
  EXPECT_DOUBLE_EQ(*got.known_optimum(), 31337.0);
}

TEST(WireHeader, RejectsBadMagic) {
  auto frame = wire::encode_to_slave(Stop{});
  frame[0] ^= 0xFF;
  const auto header = wire::decode_header(frame);
  ASSERT_FALSE(header);
  EXPECT_EQ(header.status().code(), StatusCode::kInvalidArgument);
}

TEST(WireHeader, RejectsBadVersion) {
  auto frame = wire::encode_to_slave(Stop{});
  frame[2] = wire::kVersion + 1;
  const auto header = wire::decode_header(frame);
  ASSERT_FALSE(header);
  EXPECT_EQ(header.status().code(), StatusCode::kInvalidArgument);
}

TEST(WireHeader, RejectsUnknownType) {
  auto frame = wire::encode_to_slave(Stop{});
  frame[3] = 0xEE;
  EXPECT_FALSE(wire::decode_header(frame));
}

TEST(WireHeader, RejectsOversizedLengthPrefix) {
  // A corrupt length prefix must be refused BEFORE any allocation: claim a
  // ~4 GiB payload and expect a clean Status.
  auto frame = wire::encode_to_slave(Stop{});
  const std::uint32_t huge = 0xFFFFFFFFu;
  std::memcpy(frame.data() + 4, &huge, sizeof(huge));
  const auto header = wire::decode_header(frame);
  ASSERT_FALSE(header);
  EXPECT_EQ(header.status().code(), StatusCode::kInvalidArgument);
}

TEST(WireHeader, RejectsShortBuffer) {
  const std::vector<std::uint8_t> stub(wire::kHeaderBytes - 1, 0);
  EXPECT_FALSE(wire::decode_header(stub));
}

TEST(WireFuzz, TruncatedPayloadsAlwaysReturnStatus) {
  const auto inst = make_instance();
  const std::vector<std::vector<std::uint8_t>> frames = {
      wire::encode_to_slave(make_assignment(inst)),
      wire::encode_from_slave(SlaveFault{1, 2, "boom"}),
      wire::encode_hello({0, 7, inst}),
  };
  for (const auto& frame : frames) {
    const auto [header, payload] = split_frame(frame);
    for (std::size_t cut = 0; cut < payload.size();
         cut += (payload.size() > 512 ? 37 : 1)) {
      const auto stub = payload.subspan(0, cut);
      if (header.type == wire::MessageType::kHello) {
        EXPECT_FALSE(wire::decode_hello(stub)) << "cut=" << cut;
      } else if (header.type == wire::MessageType::kAssignment) {
        EXPECT_FALSE(wire::decode_to_slave(header.type, stub, inst))
            << "cut=" << cut;
      } else {
        EXPECT_FALSE(wire::decode_from_slave(header.type, stub, inst))
            << "cut=" << cut;
      }
    }
  }
}

TEST(WireFuzz, RandomByteFlipsNeverCrashTheDecoders) {
  // Corruption may happen to decode (a flipped low bit in a double payload
  // is still a valid frame) — the invariant under test is totality: every
  // outcome is a value or a Status, never a crash or a giant allocation.
  const auto inst = make_instance();
  const auto reference = wire::encode_to_slave(make_assignment(inst));
  Rng rng(2026);
  for (int trial = 0; trial < 300; ++trial) {
    auto frame = reference;
    const int flips = 1 + static_cast<int>(rng.next_below(4));
    for (int f = 0; f < flips; ++f) {
      const auto pos = rng.next_below(frame.size());
      frame[pos] ^= static_cast<std::uint8_t>(1u << rng.next_below(8));
    }
    const auto header = wire::decode_header(frame);
    if (!header) continue;
    const auto payload = std::span<const std::uint8_t>(frame).subspan(
        wire::kHeaderBytes,
        std::min<std::size_t>(frame.size() - wire::kHeaderBytes,
                              header->payload_size));
    if (payload.size() < header->payload_size) continue;  // truncated claim
    switch (header->type) {
      case wire::MessageType::kHello:
        (void)wire::decode_hello(payload);
        break;
      case wire::MessageType::kAssignment:
      case wire::MessageType::kStop:
        (void)wire::decode_to_slave(header->type, payload, inst);
        break;
      case wire::MessageType::kReport:
      case wire::MessageType::kFault:
        (void)wire::decode_from_slave(header->type, payload, inst);
        break;
    }
  }
  SUCCEED();
}

TEST(WireFuzz, AbsurdElementCountIsRejectedWithoutAllocating) {
  // Hand-craft a fault payload claiming a 2^32-ish string length; the
  // decoder must bound-check against the remaining bytes, not trust it.
  const auto inst = make_instance();
  const auto frame = wire::encode_from_slave(SlaveFault{1, 2, "x"});
  auto [header, payload_view] = split_frame(frame);
  std::vector<std::uint8_t> payload(payload_view.begin(), payload_view.end());
  // Layout: u32 slave, u64 round, u32 len, bytes. Blow up the length field.
  ASSERT_GE(payload.size(), 16U + 1U);
  const std::uint32_t huge = 0x7FFFFFFFu;
  std::memcpy(payload.data() + 12, &huge, sizeof(huge));
  const auto decoded = wire::decode_from_slave(header.type, payload, inst);
  ASSERT_FALSE(decoded);
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(WireFixedStatus, RoundTripsEveryValue) {
  const std::vector<bounds::FixedValue> status = {
      bounds::FixedValue::kFree, bounds::FixedValue::kZero,
      bounds::FixedValue::kOne,  bounds::FixedValue::kFree,
      bounds::FixedValue::kOne};
  codec::Writer w;
  wire::put_fixed_status(w, status);
  const auto bytes = w.take();
  codec::Reader r(bytes);
  const auto decoded = wire::get_fixed_status(r);
  ASSERT_TRUE(decoded) << decoded.status().to_string();
  EXPECT_TRUE(r.done());
  EXPECT_EQ(*decoded, status);
}

TEST(WireFixedStatus, RejectsOutOfRangeByte) {
  codec::Writer w;
  w.u32(2);
  w.u8(0);
  w.u8(3);  // no FixedValue has this encoding
  const auto bytes = w.take();
  codec::Reader r(bytes);
  const auto decoded = wire::get_fixed_status(r);
  ASSERT_FALSE(decoded);
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(WireFixedStatus, TruncationReturnsStatusNotGarbage) {
  std::vector<bounds::FixedValue> status(9, bounds::FixedValue::kZero);
  codec::Writer w;
  wire::put_fixed_status(w, status);
  auto bytes = w.take();
  for (std::size_t keep = 0; keep < bytes.size(); ++keep) {
    codec::Reader r(std::span<const std::uint8_t>(bytes.data(), keep));
    const auto decoded = wire::get_fixed_status(r);
    EXPECT_FALSE(decoded) << "decoded from " << keep << " of " << bytes.size()
                          << " bytes";
  }
}

}  // namespace
}  // namespace pts::parallel
