// Chaos harness (DESIGN.md §9): scheduled worker crashes, corrupt frames,
// stalls and trickled writes against the real proc backend; thread-backend
// stall schedules through FaultInjector; and the end-to-end acceptance
// scenario — kill -9 the driver binary mid-run, then --resume from its
// checkpoint. Every scenario must terminate with all rounds completed:
// chaos may cost quality and spawn counts, never liveness.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "mkp/generator.hpp"
#include "mkp/parser.hpp"
#include "parallel/master.hpp"
#include "parallel/proc_backend.hpp"
#include "parallel/runner.hpp"
#include "parallel/snapshot.hpp"

#ifndef PTS_WORKER_BIN_FOR_TESTS
#error "build must define PTS_WORKER_BIN_FOR_TESTS (see tests/CMakeLists.txt)"
#endif
#ifndef PTS_ORLIB_BIN_FOR_TESTS
#error "build must define PTS_ORLIB_BIN_FOR_TESTS (see tests/CMakeLists.txt)"
#endif

namespace pts::parallel {
namespace {

constexpr const char* kWorkerBin = PTS_WORKER_BIN_FOR_TESTS;
constexpr const char* kOrlibBin = PTS_ORLIB_BIN_FOR_TESTS;

std::string temp_path(const char* name) { return ::testing::TempDir() + name; }

/// Sets PTS_CHAOS_* knobs for one test and guarantees they are gone after,
/// so chaos never leaks into a neighbouring proc-backend test.
class EnvGuard {
 public:
  EnvGuard(std::initializer_list<std::pair<const char*, const char*>> vars) {
    for (const auto& [name, value] : vars) {
      ::setenv(name, value, 1);
      names_.push_back(name);
    }
  }
  ~EnvGuard() {
    for (const char* name : names_) ::unsetenv(name);
  }
  EnvGuard(const EnvGuard&) = delete;
  EnvGuard& operator=(const EnvGuard&) = delete;

 private:
  std::vector<const char*> names_;
};

/// fork/exec with stdout+stderr discarded (the driver prints tables we do
/// not parse; assertions read the checkpoint file instead).
pid_t spawn_quiet(const std::vector<std::string>& argv_strings) {
  std::vector<char*> argv;
  argv.reserve(argv_strings.size() + 1);
  for (const auto& arg : argv_strings) {
    argv.push_back(const_cast<char*>(arg.c_str()));
  }
  argv.push_back(nullptr);
  const pid_t pid = ::fork();
  if (pid == 0) {
    const int devnull = ::open("/dev/null", O_WRONLY);
    if (devnull >= 0) {
      ::dup2(devnull, STDOUT_FILENO);
      ::dup2(devnull, STDERR_FILENO);
    }
    ::execv(argv[0], argv.data());
    std::_Exit(127);
  }
  return pid;
}

TEST(Chaos, ScheduledWorkerCrashesDegradeButEveryRoundCompletes) {
  // PTS_CHAOS_CRASH_PPM makes each worker _exit(9) on a scheduled fraction
  // of assignments — from the supervisor's side indistinguishable from an
  // OOM kill. The farm must absorb the deaths through the fault -> backoff
  // -> respawn (or retire) policy and still complete every round.
  EnvGuard chaos({{"PTS_CHAOS_CRASH_PPM", "250000"}});
  const auto inst = mkp::generate_gk({.num_items = 50, .num_constraints = 5}, 3);

  ProcOptions options;
  options.worker_path = kWorkerBin;
  options.max_respawns_per_slave = 4;
  options.respawn_backoff_base_seconds = 0.05;
  options.respawn_backoff_cap_seconds = 0.2;
  ProcSupervisor supervisor(inst, /*num_slaves=*/3, /*seed=*/9, options, {});
  ASSERT_TRUE(supervisor.start().ok());

  MasterConfig master_config;
  master_config.num_slaves = 3;
  master_config.search_iterations = 8;
  master_config.work_per_slave_round = 800;
  master_config.seed = 9;

  const auto result =
      run_master(inst, supervisor.channels(), master_config, nullptr);
  supervisor.shutdown();

  EXPECT_EQ(result.rounds_completed, 8U);
  EXPECT_GE(result.slave_faults, 1U);
  EXPECT_GT(result.best_value, 0.0);
  const auto stats = supervisor.stats();
  EXPECT_GE(stats.worker_respawns, 1U);
}

TEST(Chaos, CorruptAndTrickledFramesNeverHangTheRendezvous) {
  // Three failure modes at once: flipped report-payload bytes (decode
  // failures on the supervisor's pump), a per-report stall, and frames
  // trickled seven bytes at a time (framed-read reassembly). None of them
  // may hang a rendezvous or lose a round.
  EnvGuard chaos({{"PTS_CHAOS_CORRUPT_PPM", "300000"},
                  {"PTS_CHAOS_STALL_MS", "2"},
                  {"PTS_CHAOS_SLOW_WRITE", "1"}});
  const auto inst = mkp::generate_gk({.num_items = 40, .num_constraints = 4}, 5);

  ProcOptions options;
  options.worker_path = kWorkerBin;
  ProcSupervisor supervisor(inst, /*num_slaves=*/3, /*seed=*/17, options, {});
  ASSERT_TRUE(supervisor.start().ok());

  MasterConfig master_config;
  master_config.num_slaves = 3;
  master_config.search_iterations = 5;
  master_config.work_per_slave_round = 600;
  master_config.seed = 17;

  const auto result =
      run_master(inst, supervisor.channels(), master_config, nullptr);
  supervisor.shutdown();

  EXPECT_EQ(result.rounds_completed, 5U);
  EXPECT_GT(result.best_value, 0.0);
}

TEST(Chaos, MasterSideScheduleCorruptsAssignmentsYetEveryRoundCompletes) {
  // The mirror of the worker-side knobs: PTS_CHAOS_MASTER_* applies to the
  // SUPERVISOR'S assignment sends. A corrupted assignment fails the worker's
  // total decoder — the worker exits, the heartbeat read sees EOF, and the
  // round completes degraded through the SlaveFault + respawn path. The
  // stall fires on every send, so injections are guaranteed nonzero.
  EnvGuard chaos({{"PTS_CHAOS_MASTER_CORRUPT_PPM", "200000"},
                  {"PTS_CHAOS_MASTER_STALL_MS", "1"}});
  const auto inst = mkp::generate_gk({.num_items = 40, .num_constraints = 4}, 13);

  ProcOptions options;
  options.worker_path = kWorkerBin;
  options.respawn_backoff_base_seconds = 0.05;
  options.respawn_backoff_cap_seconds = 0.2;
  // The schedule is parsed from the environment at construction time.
  ProcSupervisor supervisor(inst, /*num_slaves=*/3, /*seed=*/23, options, {});
  ASSERT_TRUE(supervisor.start().ok());

  MasterConfig master_config;
  master_config.num_slaves = 3;
  master_config.search_iterations = 8;
  master_config.work_per_slave_round = 600;
  master_config.seed = 23;

  const auto result =
      run_master(inst, supervisor.channels(), master_config, nullptr);
  supervisor.shutdown();

  EXPECT_EQ(result.rounds_completed, 8U);
  EXPECT_GT(result.best_value, 0.0);
  const auto stats = supervisor.stats();
  // Every assignment send stalled, so at least slaves * rounds injections.
  EXPECT_GE(stats.chaos_injections, 3U * 8U);
}

TEST(Chaos, MasterSideSlowWriteTricklesAssignmentsWithoutFaults) {
  // Trickling the master's frames in 7-byte chunks exercises the WORKER'S
  // framed-read reassembly. Slowness is not failure: no faults, no respawns,
  // and the run stays bit-identical to a chaos-free one.
  const auto inst = mkp::generate_gk({.num_items = 40, .num_constraints = 4}, 29);

  ParallelConfig config;
  config.mode = CooperationMode::kCooperativeAdaptive;
  config.num_slaves = 2;
  config.search_iterations = 3;
  config.work_per_slave_round = 500;
  config.seed = 41;
  config.backend = Backend::kProcess;
  config.proc.worker_path = kWorkerBin;

  const auto clean = run_parallel_tabu_search(inst, config);
  ASSERT_TRUE(clean.status.ok()) << clean.status.to_string();

  EnvGuard chaos({{"PTS_CHAOS_MASTER_SLOW_WRITE", "1"}});
  const auto trickled = run_parallel_tabu_search(inst, config);
  ASSERT_TRUE(trickled.status.ok()) << trickled.status.to_string();

  EXPECT_EQ(trickled.master.rounds_completed, 3U);
  EXPECT_EQ(trickled.master.slave_faults, 0U);
  EXPECT_EQ(trickled.proc.worker_respawns, 0U);
  EXPECT_GE(trickled.proc.chaos_injections, 2U * 3U);
  EXPECT_DOUBLE_EQ(trickled.best_value, clean.best_value);
  EXPECT_EQ(trickled.best, clean.best);
}

TEST(Chaos, StallScheduleDelaysARoundWithoutFaultingIt) {
  // Thread-backend counterpart: FaultInjector.stall_seconds makes slave 1
  // sleep through round 1. A stall is slowness, not failure — the round
  // must still gather P reports and count zero faults.
  const auto inst = mkp::generate_gk({.num_items = 40, .num_constraints = 4}, 11);
  FaultInjector injector;
  injector.stall_seconds = [](std::size_t slave, std::size_t round) {
    return (slave == 1 && round == 1) ? 0.3 : 0.0;
  };

  ParallelConfig config;
  config.mode = CooperationMode::kCooperativeAdaptive;
  config.num_slaves = 3;
  config.search_iterations = 3;
  config.work_per_slave_round = 500;
  config.seed = 19;
  config.fault_injector = &injector;

  const auto start = std::chrono::steady_clock::now();
  const auto result = run_parallel_tabu_search(inst, config);
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;

  ASSERT_TRUE(result.status.ok());
  EXPECT_EQ(result.master.rounds_completed, 3U);
  EXPECT_EQ(result.master.slave_faults, 0U);
  EXPECT_GE(elapsed.count(), 0.3);
}

TEST(Chaos, ProcBackendResumeIsBitIdenticalWithoutFaults) {
  // Acceptance criterion: a CTS2 --backend=proc run checkpointed at round 2
  // and resumed must produce the exact final best of the uninterrupted run
  // when no faults are injected — process boundaries and the snapshot file
  // both preserve every byte that feeds the draw sequence.
  const auto inst = mkp::generate_gk({.num_items = 60, .num_constraints = 5}, 27);

  ParallelConfig config;
  config.mode = CooperationMode::kCooperativeAdaptive;
  config.num_slaves = 3;
  config.search_iterations = 5;
  config.work_per_slave_round = 1'000;
  config.seed = 33;
  config.backend = Backend::kProcess;
  config.proc.worker_path = kWorkerBin;

  const auto uninterrupted = run_parallel_tabu_search(inst, config);
  ASSERT_TRUE(uninterrupted.status.ok()) << uninterrupted.status.to_string();

  const auto path = temp_path("chaos_proc_resume.ckpt");
  auto first_half = config;
  first_half.search_iterations = 2;
  first_half.checkpoint_path = path;
  ASSERT_TRUE(run_parallel_tabu_search(inst, first_half).status.ok());

  auto checkpoint = snapshot::load_checkpoint(path, inst);
  ASSERT_TRUE(checkpoint) << checkpoint.status().to_string();
  auto second_half = config;
  second_half.resume = &*checkpoint;
  const auto resumed = run_parallel_tabu_search(inst, second_half);
  ASSERT_TRUE(resumed.status.ok()) << resumed.status.to_string();

  EXPECT_EQ(resumed.master.resumed_from_round, 2U);
  EXPECT_DOUBLE_EQ(resumed.best_value, uninterrupted.best_value);
  EXPECT_EQ(resumed.best, uninterrupted.best);
  EXPECT_EQ(resumed.total_moves, uninterrupted.total_moves);
  std::remove(path.c_str());
}

TEST(Chaos, DriverKillNineThenResumeReachesAtLeastTheCheckpointedBest) {
  // The full acceptance loop against the real driver binary: start
  // orlib_solver with --checkpoint, SIGKILL it once the first checkpoint is
  // durable, load what survived, rerun with --resume to completion, and
  // require the final best to be no worse than the mid-kill best.
  const auto orlib_path = temp_path("chaos_driver_problem.txt");
  const auto ckpt = temp_path("chaos_driver.ckpt");
  std::remove(ckpt.c_str());
  const auto generated =
      mkp::generate_gk({.num_items = 80, .num_constraints = 5}, 31);
  mkp::write_orlib_file(orlib_path, {generated});
  // Reload through the parser: the on-disk problem (fresh name, no recorded
  // optimum) is what the driver fingerprints its checkpoints against.
  const auto problems = mkp::read_orlib_file(orlib_path);
  ASSERT_EQ(problems.size(), 1U);
  const auto& inst = problems.front();

  const std::vector<std::string> run_args = {
      kOrlibBin,    orlib_path,     "--slaves=3",
      "--rounds=4000", "--work=1000", "--seed=7",
      "--checkpoint=" + ckpt};
  pid_t pid = spawn_quiet(run_args);
  ASSERT_GT(pid, 0);

  // Wait for the first durable checkpoint (cadence 1: after round 1), but
  // bail out with a diagnostic if the child dies before producing one.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  bool child_exited = false;
  while (!std::filesystem::exists(ckpt) &&
         std::chrono::steady_clock::now() < deadline) {
    int status = 0;
    if (::waitpid(pid, &status, WNOHANG) == pid) {
      child_exited = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_TRUE(std::filesystem::exists(ckpt))
      << (child_exited ? "driver exited before checkpointing"
                       : "no checkpoint within 30s");
  if (!child_exited) {
    ASSERT_EQ(::kill(pid, SIGKILL), 0);
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  }

  // The atomic tmp+rename protocol guarantees whatever file exists now is a
  // complete, loadable snapshot — even though the kill could have landed
  // mid-write of the NEXT checkpoint.
  auto mid = snapshot::load_checkpoint(ckpt, inst);
  ASSERT_TRUE(mid) << mid.status().to_string();
  const double best_at_kill = mid->best.value();
  EXPECT_GT(best_at_kill, 0.0);

  auto resume_args = run_args;
  resume_args.push_back("--resume");
  pid = spawn_quiet(resume_args);
  ASSERT_GT(pid, 0);
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);

  auto final_state = snapshot::load_checkpoint(ckpt, inst);
  ASSERT_TRUE(final_state) << final_state.status().to_string();
  EXPECT_GE(final_state->rounds_completed, mid->rounds_completed);
  EXPECT_GE(final_state->best.value(), best_at_kill);
  std::remove(ckpt.c_str());
  std::remove(orlib_path.c_str());
}

}  // namespace
}  // namespace pts::parallel
