// TelemetryChunk wire codec (DESIGN.md §6): bit-exact round trips, total
// decoding of truncated/corrupted payloads, and the end-to-end schema of the
// merged trace a real proc-backend run produces — master and worker spans on
// one timeline, workers remapped to their own labelled pids, counter deltas
// folded into the master registry. The ASan smoke runs TelemetryChunk*.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "mkp/generator.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/runner.hpp"
#include "parallel/wire.hpp"

#ifndef PTS_WORKER_BIN_FOR_TESTS
#error "build must define PTS_WORKER_BIN_FOR_TESTS (see tests/CMakeLists.txt)"
#endif

namespace pts::parallel {
namespace {

constexpr const char* kWorkerBin = PTS_WORKER_BIN_FOR_TESTS;

wire::TelemetryChunk sample_chunk() {
  wire::TelemetryChunk chunk;
  chunk.slave_id = 2;
  chunk.worker_now_us = 123'456;
  wire::ChunkEvent span;
  span.name = "slave_round";
  span.phase = 'X';
  span.tid = 3;
  span.ts_us = 1'000;
  span.dur_us = 250;
  span.args = {{"round", 4.0}, {"moves", 1'024.0}};
  chunk.events.push_back(span);
  wire::ChunkEvent instant;
  instant.name = "improved";
  instant.phase = 'i';
  instant.tid = 3;
  instant.ts_us = 1'100;
  instant.has_detail = true;
  instant.detail_key = "kind";
  instant.detail = "new incumbent";
  chunk.events.push_back(instant);
  chunk.counter_deltas = {{"worker_reports_total", 1}, {"moves_total", 2'048}};
  return chunk;
}

/// Strips the 8-byte frame header off an encoded frame.
std::span<const std::uint8_t> payload_of(const std::vector<std::uint8_t>& frame) {
  return std::span<const std::uint8_t>(frame).subspan(wire::kHeaderBytes);
}

TEST(TelemetryChunk, RoundTripsEventsAndCounterDeltas) {
  const auto chunk = sample_chunk();
  const auto frame = wire::encode_telemetry_chunk(chunk);

  const auto header = wire::decode_header(frame);
  ASSERT_TRUE(header) << header.status().to_string();
  EXPECT_EQ(header->type, wire::MessageType::kTelemetry);
  EXPECT_EQ(header->payload_size, frame.size() - wire::kHeaderBytes);

  const auto decoded = wire::decode_telemetry_chunk(payload_of(frame));
  ASSERT_TRUE(decoded) << decoded.status().to_string();
  EXPECT_EQ(decoded->slave_id, 2U);
  EXPECT_EQ(decoded->worker_now_us, 123'456);
  ASSERT_EQ(decoded->events.size(), 2U);
  const auto& span = decoded->events[0];
  EXPECT_EQ(span.name, "slave_round");
  EXPECT_EQ(span.phase, 'X');
  EXPECT_EQ(span.tid, 3U);
  EXPECT_EQ(span.ts_us, 1'000);
  EXPECT_EQ(span.dur_us, 250);
  ASSERT_EQ(span.args.size(), 2U);
  EXPECT_EQ(span.args[1].first, "moves");
  EXPECT_DOUBLE_EQ(span.args[1].second, 1'024.0);
  EXPECT_FALSE(span.has_detail);
  const auto& instant = decoded->events[1];
  EXPECT_TRUE(instant.has_detail);
  EXPECT_EQ(instant.detail_key, "kind");
  EXPECT_EQ(instant.detail, "new incumbent");
  ASSERT_EQ(decoded->counter_deltas.size(), 2U);
  EXPECT_EQ(decoded->counter_deltas[0].first, "worker_reports_total");
  EXPECT_EQ(decoded->counter_deltas[1].second, 2'048U);
}

TEST(TelemetryChunk, EmptyChunkRoundTrips) {
  wire::TelemetryChunk chunk;
  chunk.slave_id = 7;
  chunk.worker_now_us = -5;  // clock offsets can make this negative
  const auto frame = wire::encode_telemetry_chunk(chunk);
  const auto decoded = wire::decode_telemetry_chunk(payload_of(frame));
  ASSERT_TRUE(decoded) << decoded.status().to_string();
  EXPECT_EQ(decoded->slave_id, 7U);
  EXPECT_EQ(decoded->worker_now_us, -5);
  EXPECT_TRUE(decoded->events.empty());
  EXPECT_TRUE(decoded->counter_deltas.empty());
}

TEST(TelemetryChunk, EveryTruncationIsAStatusNotACrash) {
  // The decoder consumes exactly the encoded byte count, so every strict
  // prefix must come back as a Status (total decoding, no UB, no throw).
  const auto frame = wire::encode_telemetry_chunk(sample_chunk());
  const auto payload = payload_of(frame);
  for (std::size_t len = 0; len < payload.size(); ++len) {
    const auto decoded = wire::decode_telemetry_chunk(payload.first(len));
    EXPECT_FALSE(decoded) << "prefix of " << len << " bytes decoded";
  }
  // Trailing garbage is equally rejected: the payload must be fully consumed.
  std::vector<std::uint8_t> padded(payload.begin(), payload.end());
  padded.push_back(0);
  EXPECT_FALSE(wire::decode_telemetry_chunk(padded));
}

TEST(TelemetryChunk, RejectsUnknownEventPhase) {
  auto chunk = sample_chunk();
  const auto frame = wire::encode_telemetry_chunk(chunk);
  // Payload layout: u32 slave_id, u64 now, u32 event_count, then event 0 as
  // str name (u32 length + bytes) followed by the phase byte.
  const std::size_t phase_offset = wire::kHeaderBytes + 4 + 8 + 4 + 4 +
                                   chunk.events[0].name.size();
  std::vector<std::uint8_t> corrupt(frame);
  ASSERT_EQ(corrupt[phase_offset], static_cast<std::uint8_t>('X'));
  corrupt[phase_offset] = static_cast<std::uint8_t>('Z');
  const auto decoded = wire::decode_telemetry_chunk(payload_of(corrupt));
  ASSERT_FALSE(decoded);
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(TelemetryChunk, RejectsOversizedStringsAndAbsurdCounts) {
  // Event names beyond the 256-byte cap never allocate their claimed length.
  wire::TelemetryChunk chunk;
  wire::ChunkEvent event;
  event.name = std::string(300, 'n');
  event.phase = 'i';
  chunk.events.push_back(event);
  EXPECT_FALSE(wire::decode_telemetry_chunk(payload_of(
      wire::encode_telemetry_chunk(chunk))));

  // Details beyond 4096 bytes are likewise rejected.
  wire::TelemetryChunk detail_chunk;
  wire::ChunkEvent with_detail;
  with_detail.name = "d";
  with_detail.phase = 'i';
  with_detail.has_detail = true;
  with_detail.detail_key = "k";
  with_detail.detail = std::string(5'000, 'x');
  detail_chunk.events.push_back(with_detail);
  EXPECT_FALSE(wire::decode_telemetry_chunk(payload_of(
      wire::encode_telemetry_chunk(detail_chunk))));

  // A forged event count far beyond what the payload could hold must be
  // rejected before any reserve happens.
  std::vector<std::uint8_t> forged(16, 0);
  forged[12] = 0xFF;  // event_count = 0xFF000000+ little-endian low byte
  forged[13] = 0xFF;
  forged[14] = 0xFF;
  forged[15] = 0x7F;
  EXPECT_FALSE(wire::decode_telemetry_chunk(forged));
}

TEST(TelemetryChunk, MergedTraceFromProcRunIsOneCoherentTimeline) {
  // The acceptance scenario: a real proc-backend CTS2 run with the tracer on
  // must leave ONE merged Chrome trace in the master tracer — master spans on
  // pid 1, every worker's spans remapped to a labelled pid >= 2 — and the
  // workers' counter deltas folded into the master registry.
  const auto inst =
      mkp::generate_gk({.num_items = 60, .num_constraints = 5}, 17);

  auto& tr = obs::tracer();
  obs::set_telemetry_enabled(true);
  tr.clear();
  tr.set_enabled(true);
  const auto reports_before =
      obs::metrics().counter("worker_reports_total").value();
  const auto chunks_before =
      obs::metrics().counter("proc_telemetry_chunks_total").value();

  ParallelConfig config;
  config.mode = CooperationMode::kCooperativeAdaptive;
  config.num_slaves = 3;
  config.search_iterations = 3;
  config.work_per_slave_round = 2'000;
  config.seed = 5;
  config.backend = Backend::kProcess;
  config.proc.worker_path = kWorkerBin;
  const auto run = run_parallel_tabu_search(inst, config);
  tr.set_enabled(false);
  ASSERT_TRUE(run.status.ok()) << run.status.to_string();
  ASSERT_EQ(run.master.slave_faults, 0U);

  const auto events = tr.snapshot();
  std::ostringstream chrome;
  tr.write_chrome_trace(chrome);
  tr.clear();

  // Schema: both sides of the process boundary are present, and every worker
  // pid got its process_name metadata row.
  std::set<std::uint32_t> pids;
  std::set<std::uint32_t> named_worker_pids;
  bool master_span = false;
  bool worker_span = false;
  for (const auto& event : events) {
    pids.insert(event.pid);
    if (event.phase == 'X' && event.pid == 1) master_span = true;
    if (event.phase == 'X' && event.pid >= 2) worker_span = true;
    if (event.phase == 'M' && event.pid >= 2 &&
        std::string_view(event.name) == "process_name") {
      named_worker_pids.insert(event.pid);
      EXPECT_EQ(event.detail.rfind("pts_worker ", 0), 0U) << event.detail;
    }
  }
  EXPECT_TRUE(master_span);
  EXPECT_TRUE(worker_span);
  EXPECT_GE(pids.size(), 2U);  // master + at least one merged worker
  for (const auto pid : pids) {
    if (pid >= 2) {
      EXPECT_TRUE(named_worker_pids.count(pid)) << "pid " << pid;
    }
  }

  // The exported file is sorted: timestamps are monotone in file order, so
  // Perfetto renders one timeline with no out-of-order warnings.
  const std::string text = chrome.str();
  ASSERT_EQ(text.rfind("{\"traceEvents\":[", 0), 0U);
  std::int64_t previous = -1;
  std::size_t samples = 0;
  for (std::size_t at = text.find("\"ts\":"); at != std::string::npos;
       at = text.find("\"ts\":", at + 5)) {
    const auto ts = std::stoll(text.substr(at + 5));
    EXPECT_GE(ts, previous) << "trace not sorted at byte " << at;
    previous = ts;
    ++samples;
  }
  EXPECT_EQ(samples, events.size());

  // Counter folding: every worker counts one report send per round on ITS
  // OWN registry; the supervisor's folds must reproduce the farm total.
  const auto reports =
      obs::metrics().counter("worker_reports_total").value() - reports_before;
  EXPECT_EQ(reports, config.num_slaves * run.master.rounds_completed);
  EXPECT_GE(obs::metrics().counter("proc_telemetry_chunks_total").value() -
                chunks_before,
            static_cast<std::uint64_t>(config.num_slaves));
}

}  // namespace
}  // namespace pts::parallel
