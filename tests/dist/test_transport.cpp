// FrameSocket / SocketTransport behaviour over a real socketpair: framed
// round trips, the heartbeat timeout, EOF-as-dead-peer, and cancel.
#include "parallel/transport.hpp"

#include <gtest/gtest.h>

#include <sys/socket.h>

#include <thread>
#include <variant>

#include "bounds/greedy.hpp"
#include "mkp/generator.hpp"
#include "parallel/wire.hpp"
#include "util/rng.hpp"

namespace pts::parallel {
namespace {

struct SocketPair {
  FrameSocket a;
  FrameSocket b;
};

SocketPair make_pair_sockets() {
  int fds[2];
  EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  return {FrameSocket(fds[0]), FrameSocket(fds[1])};
}

mkp::Instance make_instance() {
  return mkp::generate_gk({.num_items = 30, .num_constraints = 4}, 1);
}

TEST(FrameSocket, FrameRoundTripAcrossThePair) {
  auto [a, b] = make_pair_sockets();
  ASSERT_TRUE(a.send_frame(wire::encode_to_slave(Stop{})).ok());
  auto frame = b.read_frame(/*timeout_seconds=*/5.0);
  ASSERT_TRUE(frame) << frame.status().to_string();
  EXPECT_EQ(frame->type, wire::MessageType::kStop);
  EXPECT_TRUE(frame->payload.empty());
}

TEST(FrameSocket, LargePayloadArrivesWhole) {
  const auto inst = mkp::generate_gk({.num_items = 400, .num_constraints = 30}, 2);
  auto [a, b] = make_pair_sockets();
  const auto sent = wire::encode_hello({1, 2, inst});
  // Writer thread: a large frame can exceed the socketpair buffer, so the
  // write must be concurrent with the read (exactly the pump's situation).
  std::jthread writer([&a, &sent] { ASSERT_TRUE(a.send_frame(sent).ok()); });
  auto frame = b.read_frame(10.0);
  ASSERT_TRUE(frame) << frame.status().to_string();
  ASSERT_EQ(frame->type, wire::MessageType::kHello);
  const auto hello = wire::decode_hello(frame->payload);
  ASSERT_TRUE(hello);
  EXPECT_EQ(hello->instance.num_items(), 400U);
}

TEST(FrameSocket, TimeoutIsDeadlineExceeded) {
  auto [a, b] = make_pair_sockets();
  const auto frame = b.read_frame(/*timeout_seconds=*/0.15);
  ASSERT_FALSE(frame);
  EXPECT_EQ(frame.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(FrameSocket, PeerCloseIsUnavailable) {
  auto [a, b] = make_pair_sockets();
  a.close();
  const auto frame = b.read_frame(5.0);
  ASSERT_FALSE(frame);
  EXPECT_EQ(frame.status().code(), StatusCode::kUnavailable);
}

TEST(FrameSocket, TruncatedFrameIsUnavailableNotHang) {
  // A peer that dies mid-frame leaves a short read; the reader must surface
  // a dead-peer Status once EOF lands, never block forever.
  auto [a, b] = make_pair_sockets();
  const auto full = wire::encode_from_slave(SlaveFault{0, 1, "dying words"});
  const std::size_t cut = wire::kHeaderBytes + 3;
  ASSERT_TRUE(a.send_frame({full.data(), cut}).ok());
  a.close();
  const auto frame = b.read_frame(5.0);
  ASSERT_FALSE(frame);
  EXPECT_EQ(frame.status().code(), StatusCode::kUnavailable);
}

TEST(FrameSocket, CorruptHeaderIsInvalidArgument) {
  auto [a, b] = make_pair_sockets();
  auto bad = wire::encode_to_slave(Stop{});
  bad[0] ^= 0xFF;  // break the magic
  ASSERT_TRUE(a.send_frame(bad).ok());
  const auto frame = b.read_frame(5.0);
  ASSERT_FALSE(frame);
  EXPECT_EQ(frame.status().code(), StatusCode::kInvalidArgument);
}

TEST(FrameSocket, CancelAbortsTheWait) {
  auto [a, b] = make_pair_sockets();
  CancelSource cancel;
  std::jthread firer([&cancel] {
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    cancel.request_cancel();
  });
  const auto frame = b.read_frame(/*timeout_seconds=*/30.0, cancel.token());
  ASSERT_FALSE(frame);
  EXPECT_EQ(frame.status().code(), StatusCode::kCancelled);
}

TEST(SocketTransport, DeliversDirectivesAndOutcomes) {
  const auto inst = make_instance();
  auto [master_side, worker_side] = make_pair_sockets();
  SocketTransport transport(worker_side, inst);

  Rng rng(7);
  Assignment assignment{4, bounds::greedy_randomized(inst, rng), {}};
  assignment.params.max_moves = 50;
  ASSERT_TRUE(
      master_side.send_frame(wire::encode_to_slave(assignment)).ok());

  auto received = transport.receive({});
  ASSERT_TRUE(received.has_value());
  const auto* got = std::get_if<Assignment>(&*received);
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->round, 4U);

  Report report;
  report.slave_id = 0;
  report.round = 4;
  report.final_value = 123.0;
  ASSERT_TRUE(transport.send(report));
  auto frame = master_side.read_frame(5.0);
  ASSERT_TRUE(frame);
  const auto decoded = wire::decode_from_slave(frame->type, frame->payload, inst);
  ASSERT_TRUE(decoded);
  EXPECT_DOUBLE_EQ(std::get<Report>(*decoded).final_value, 123.0);
}

TEST(SocketTransport, EofReadsAsClosedLink) {
  const auto inst = make_instance();
  auto [master_side, worker_side] = make_pair_sockets();
  SocketTransport transport(worker_side, inst);
  master_side.close();
  EXPECT_FALSE(transport.receive({}).has_value());
}

TEST(SocketTransport, SendOnDeadPeerReturnsFalse) {
  const auto inst = make_instance();
  auto [master_side, worker_side] = make_pair_sockets();
  SocketTransport transport(worker_side, inst);
  master_side.close();
  // First write may succeed into the kernel buffer; the second must fail
  // with EPIPE. Either way no crash (SIGPIPE must not fire).
  Report report;
  const bool first = transport.send(report);
  const bool second = transport.send(report);
  EXPECT_FALSE(first && second);
}

}  // namespace
}  // namespace pts::parallel
