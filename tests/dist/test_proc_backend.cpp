// Multi-process backend integration: thread/proc equivalence on a fixed
// seed, worker death (kill -9) mid-run mapped onto the SlaveFault -> respawn
// path, and clean errors when the worker binary is missing. The worker path
// comes from the build (PTS_WORKER_BIN_FOR_TESTS points at the pts_worker
// target), so these tests exercise the real spawned binary.
#include "parallel/proc_backend.hpp"

#include <gtest/gtest.h>

#include <signal.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "mkp/generator.hpp"
#include "parallel/master.hpp"
#include "parallel/runner.hpp"

#ifndef PTS_WORKER_BIN_FOR_TESTS
#error "build must define PTS_WORKER_BIN_FOR_TESTS (see tests/CMakeLists.txt)"
#endif

namespace pts::parallel {
namespace {

constexpr const char* kWorkerBin = PTS_WORKER_BIN_FOR_TESTS;

ParallelConfig base_config() {
  ParallelConfig config;
  config.mode = CooperationMode::kCooperativeAdaptive;
  config.num_slaves = 3;
  config.search_iterations = 3;
  config.work_per_slave_round = 2'000;
  config.seed = 5;
  return config;
}

TEST(ProcBackend, MatchesThreadBackendOnFixedSeed) {
  // The core determinism claim of DESIGN.md §8: same seed, same preset,
  // same best value and solution whether slaves are threads or processes —
  // doubles travel as bit patterns and every round's rng derives from
  // (seed, slave, round) only.
  const auto inst = mkp::generate_gk({.num_items = 100, .num_constraints = 10}, 11);

  auto thread_config = base_config();
  const auto thread_run = run_parallel_tabu_search(inst, thread_config);
  ASSERT_TRUE(thread_run.status.ok());

  auto proc_config = base_config();
  proc_config.backend = Backend::kProcess;
  proc_config.proc.worker_path = kWorkerBin;
  const auto proc_run = run_parallel_tabu_search(inst, proc_config);
  ASSERT_TRUE(proc_run.status.ok()) << proc_run.status.to_string();

  EXPECT_DOUBLE_EQ(proc_run.best_value, thread_run.best_value);
  EXPECT_EQ(proc_run.best, thread_run.best);
  EXPECT_EQ(proc_run.master.rounds_completed, thread_run.master.rounds_completed);
  EXPECT_EQ(proc_run.master.slave_faults, 0U);
  EXPECT_EQ(proc_run.proc.workers_spawned, 3U);
  EXPECT_EQ(proc_run.proc.worker_respawns, 0U);
}

TEST(ProcBackend, KillNineMidRoundStillCompletesWithRespawn) {
  // The acceptance scenario: SIGKILL one worker while the farm runs. The
  // supervisor must map the death onto a SlaveFault (so the round completes
  // with P-1 reports), respawn the process, and finish every round.
  const auto inst = mkp::generate_gk({.num_items = 50, .num_constraints = 5}, 3);

  ProcOptions options;
  options.worker_path = kWorkerBin;
  ProcSupervisor supervisor(inst, /*num_slaves=*/3, /*seed=*/9, options, {});
  ASSERT_TRUE(supervisor.start().ok());

  struct Killer : MasterTrace {
    ProcSupervisor* supervisor = nullptr;
    std::atomic<bool> fired{false};
    void on_round_start(std::size_t round) override {
      if (round == 2 && !fired.exchange(true)) {
        const pid_t pid = supervisor->worker_pid(0);
        ASSERT_GT(pid, 0);
        ASSERT_EQ(::kill(pid, SIGKILL), 0);
      }
    }
  } killer;
  killer.supervisor = &supervisor;

  MasterConfig master_config;
  master_config.num_slaves = 3;
  master_config.search_iterations = 6;
  master_config.work_per_slave_round = 1'500;
  master_config.seed = 9;

  const auto result =
      run_master(inst, supervisor.channels(), master_config, &killer);
  supervisor.shutdown();

  EXPECT_TRUE(killer.fired.load());
  EXPECT_EQ(result.rounds_completed, 6U);
  EXPECT_GE(result.slave_faults, 1U);
  EXPECT_GE(result.slave_respawns, 1U);
  EXPECT_GT(result.best_value, 0.0);
  const auto stats = supervisor.stats();
  EXPECT_GE(stats.worker_respawns, 1U);
  EXPECT_EQ(stats.workers_spawned, 3U + stats.worker_respawns);
}

TEST(ProcBackend, RapidDeathBurstDoesNotBurnRespawnBudget) {
  // Regression: the old policy respawned eagerly inside the fault handler,
  // so a worker dying three times in under 100ms burned three respawns in
  // one round. The backoff policy respawns an isolated death immediately
  // but defers a streak — assignments landing inside the backoff window
  // fault fast (respawn_backoff_skips) and cost no budget.
  const auto inst = mkp::generate_gk({.num_items = 40, .num_constraints = 4}, 7);

  ProcOptions options;
  options.worker_path = kWorkerBin;
  options.max_respawns_per_slave = 8;
  options.respawn_backoff_base_seconds = 0.25;
  options.respawn_backoff_cap_seconds = 1.0;
  options.breaker_threshold = 0;  // isolate the backoff from the breaker
  ProcSupervisor supervisor(inst, /*num_slaves=*/2, /*seed=*/13, options, {});
  ASSERT_TRUE(supervisor.start().ok());

  // Kill worker 0 the moment it exists, continuously — every respawned
  // process dies within milliseconds, the tightest death loop we can make.
  std::atomic<bool> done{false};
  std::thread killer([&] {
    while (!done.load()) {
      const pid_t pid = supervisor.worker_pid(0);
      if (pid > 0) ::kill(pid, SIGKILL);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  MasterConfig master_config;
  master_config.num_slaves = 2;
  master_config.search_iterations = 8;
  master_config.work_per_slave_round = 500;
  master_config.seed = 13;

  const auto result =
      run_master(inst, supervisor.channels(), master_config, nullptr);
  done.store(true);
  killer.join();
  supervisor.shutdown();

  const auto stats = supervisor.stats();
  // Every round still completed (faults keep the rendezvous alive) and the
  // surviving slave kept the search going.
  EXPECT_EQ(result.rounds_completed, 8U);
  EXPECT_GT(result.best_value, 0.0);
  EXPECT_GE(result.slave_faults, 3U);
  // The budget survived the burst: strictly fewer respawns than faults, the
  // difference absorbed by backoff fast-faults.
  EXPECT_LT(stats.worker_respawns, options.max_respawns_per_slave);
  EXPECT_LT(stats.worker_respawns, result.slave_faults);
  EXPECT_GE(stats.respawn_backoff_skips, 1U);
}

TEST(ProcBackend, MissingWorkerBinaryIsACleanStatus) {
  const auto inst = mkp::generate_gk({.num_items = 30, .num_constraints = 4}, 1);
  auto config = base_config();
  config.search_iterations = 1;
  config.backend = Backend::kProcess;
  config.proc.worker_path = "/nonexistent/dir/pts_worker";
  const auto result = run_parallel_tabu_search(inst, config);
  ASSERT_FALSE(result.status.ok());
  EXPECT_EQ(result.status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(result.master.rounds_completed, 0U);
}

TEST(ProcBackend, BackendNamesRoundTripWithFlags) {
  EXPECT_EQ(to_string(Backend::kThread), "thread");
  EXPECT_EQ(to_string(Backend::kProcess), "proc");
  ASSERT_TRUE(backend_from_string("proc"));
  EXPECT_EQ(*backend_from_string("PROC"), Backend::kProcess);
  EXPECT_EQ(*backend_from_string("Thread"), Backend::kThread);
  EXPECT_FALSE(backend_from_string("pvm"));
}

TEST(ProcBackend, IndependentModeAlsoMatchesAcrossBackends) {
  // ITS never shares solutions, so any cross-backend divergence here would
  // isolate a serialization bug (no cooperative masking).
  const auto inst = mkp::generate_gk({.num_items = 60, .num_constraints = 5}, 21);
  auto thread_config = base_config();
  thread_config.mode = CooperationMode::kIndependent;
  const auto thread_run = run_parallel_tabu_search(inst, thread_config);

  auto proc_config = thread_config;
  proc_config.backend = Backend::kProcess;
  proc_config.proc.worker_path = kWorkerBin;
  const auto proc_run = run_parallel_tabu_search(inst, proc_config);
  ASSERT_TRUE(proc_run.status.ok()) << proc_run.status.to_string();
  EXPECT_DOUBLE_EQ(proc_run.best_value, thread_run.best_value);
}

}  // namespace
}  // namespace pts::parallel
