#include "mkp/instance.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace pts::mkp {
namespace {

Instance make_2x3() {
  // 2 constraints, 3 items.
  //   c = {6, 4, 2}
  //   a = [1 2 3]
  //       [4 5 6]
  //   b = {10, 20}
  return Instance("t", {6, 4, 2}, {1, 2, 3, 4, 5, 6}, {10, 20});
}

TEST(Instance, BasicAccessors) {
  const auto inst = make_2x3();
  EXPECT_EQ(inst.name(), "t");
  EXPECT_EQ(inst.num_items(), 3U);
  EXPECT_EQ(inst.num_constraints(), 2U);
  EXPECT_DOUBLE_EQ(inst.profit(0), 6.0);
  EXPECT_DOUBLE_EQ(inst.profit(2), 2.0);
  EXPECT_DOUBLE_EQ(inst.weight(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(inst.weight(1, 2), 6.0);
  EXPECT_DOUBLE_EQ(inst.capacity(0), 10.0);
  EXPECT_DOUBLE_EQ(inst.capacity(1), 20.0);
}

TEST(Instance, WeightsRowIsContiguousRow) {
  const auto inst = make_2x3();
  const auto row1 = inst.weights_row(1);
  ASSERT_EQ(row1.size(), 3U);
  EXPECT_DOUBLE_EQ(row1[0], 4.0);
  EXPECT_DOUBLE_EQ(row1[1], 5.0);
  EXPECT_DOUBLE_EQ(row1[2], 6.0);
}

TEST(Instance, WeightsColIsContiguousColumnMirror) {
  const auto inst = make_2x3();
  for (std::size_t j = 0; j < inst.num_items(); ++j) {
    const auto col = inst.weights_col(j);
    ASSERT_EQ(col.size(), inst.num_constraints());
    for (std::size_t i = 0; i < inst.num_constraints(); ++i) {
      EXPECT_DOUBLE_EQ(col[i], inst.weight(i, j)) << "a[" << i << "][" << j << "]";
    }
  }
}

TEST(Instance, ColumnMinMaxWeightSummaries) {
  const auto inst = make_2x3();  // columns: {1,4}, {2,5}, {3,6}
  EXPECT_DOUBLE_EQ(inst.min_col_weight(0), 1.0);
  EXPECT_DOUBLE_EQ(inst.max_col_weight(0), 4.0);
  EXPECT_DOUBLE_EQ(inst.min_col_weight(2), 3.0);
  EXPECT_DOUBLE_EQ(inst.max_col_weight(2), 6.0);
}

TEST(Instance, RelativeSlackScalesAreReciprocalCapacities) {
  const auto inst = make_2x3();
  EXPECT_DOUBLE_EQ(inst.relative_slack_scale(0), 1.0 / 10.0);
  EXPECT_DOUBLE_EQ(inst.relative_slack_scale(1), 1.0 / 20.0);
  // b_i = 0 falls back to raw slack (scale 1), never a division by zero.
  Instance zero_cap("zc", {1}, {1, 1}, {0, 5});
  EXPECT_DOUBLE_EQ(zero_cap.relative_slack_scale(0), 1.0);
  EXPECT_DOUBLE_EQ(zero_cap.relative_slack_scale(1), 1.0 / 5.0);
}

TEST(Instance, ColumnWeightSums) {
  const auto inst = make_2x3();
  EXPECT_DOUBLE_EQ(inst.column_weight_sum(0), 5.0);
  EXPECT_DOUBLE_EQ(inst.column_weight_sum(1), 7.0);
  EXPECT_DOUBLE_EQ(inst.column_weight_sum(2), 9.0);
}

TEST(Instance, ProfitDensity) {
  const auto inst = make_2x3();
  EXPECT_DOUBLE_EQ(inst.profit_density(0), 6.0 / 5.0);
  EXPECT_DOUBLE_EQ(inst.profit_density(1), 4.0 / 7.0);
}

TEST(Instance, ZeroWeightItemHasInfiniteDensity) {
  Instance inst("z", {5, 3}, {0, 1, 0, 1}, {4, 4});
  EXPECT_TRUE(std::isinf(inst.profit_density(0)));
}

TEST(Instance, TotalProfit) {
  const auto inst = make_2x3();
  EXPECT_DOUBLE_EQ(inst.total_profit(), 12.0);
}

TEST(Instance, KnownOptimumDefaultsUnset) {
  auto inst = make_2x3();
  EXPECT_FALSE(inst.known_optimum().has_value());
  inst.set_known_optimum(11.0);
  ASSERT_TRUE(inst.known_optimum().has_value());
  EXPECT_DOUBLE_EQ(*inst.known_optimum(), 11.0);
}

TEST(Instance, ValidateCleanInstance) {
  EXPECT_TRUE(make_2x3().validate().empty());
}

TEST(Instance, ValidateFlagsNonPositiveProfit) {
  Instance inst("bad", {0, 1}, {1, 1}, {2});
  const auto issues = inst.validate();
  ASSERT_EQ(issues.size(), 1U);
  EXPECT_NE(issues[0].find("profit"), std::string::npos);
}

TEST(Instance, ValidateFlagsNegativeWeightAndCapacity) {
  Instance inst("bad", {1, 1}, {-1, 1}, {-2});
  const auto issues = inst.validate();
  EXPECT_EQ(issues.size(), 2U);
}

TEST(Instance, EveryItemFits) {
  EXPECT_TRUE(make_2x3().every_item_fits());
  Instance tight("tight", {1, 1}, {5, 20}, {10});
  EXPECT_FALSE(tight.every_item_fits());
}

TEST(InstanceDeath, RejectsEmptyItems) {
  EXPECT_DEATH(Instance("x", {}, {}, {1.0}), "at least one item");
}

TEST(InstanceDeath, RejectsEmptyConstraints) {
  EXPECT_DEATH(Instance("x", {1.0}, {}, {}), "at least one constraint");
}

TEST(InstanceDeath, RejectsWrongMatrixSize) {
  EXPECT_DEATH(Instance("x", {1.0, 2.0}, {1.0, 2.0, 3.0}, {1.0}), "m\\*n");
}

}  // namespace
}  // namespace pts::mkp
