#include "mkp/catalog.hpp"

#include <gtest/gtest.h>

#include "exact/brute_force.hpp"

namespace pts::mkp {
namespace {

TEST(Catalog, NonEmptyAndValid) {
  const auto entries = catalog();
  EXPECT_GE(entries.size(), 8U);
  for (const auto& entry : entries) {
    EXPECT_TRUE(entry.instance.validate().empty()) << entry.instance.name();
    EXPECT_GT(entry.optimum, 0.0);
  }
}

TEST(Catalog, LookupByName) {
  const auto entry = catalog_entry("cat-pick-two");
  EXPECT_EQ(entry.instance.num_items(), 4U);
  EXPECT_DOUBLE_EQ(entry.optimum, 13.0);
}

TEST(CatalogDeath, UnknownNameAborts) {
  EXPECT_DEATH(catalog_entry("no-such-instance"), "unknown catalog entry");
}

// The load-bearing cross-check: every hand-computed optimum in the catalog
// must agree with exhaustive enumeration. A failure here means either the
// catalog comment math or the oracle is wrong.
class CatalogOracle : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CatalogOracle, HandOptimumMatchesBruteForce) {
  const auto entries = catalog();
  ASSERT_LT(GetParam(), entries.size());
  const auto& entry = entries[GetParam()];
  ASSERT_LE(entry.instance.num_items(), 30U);
  const auto oracle = exact::brute_force(entry.instance);
  EXPECT_DOUBLE_EQ(oracle.optimum, entry.optimum) << entry.instance.name();
  EXPECT_TRUE(oracle.best.is_feasible());
  EXPECT_DOUBLE_EQ(oracle.best.value(), entry.optimum);
}

INSTANTIATE_TEST_SUITE_P(AllEntries, CatalogOracle,
                         ::testing::Range(std::size_t{0}, catalog().size()));

}  // namespace
}  // namespace pts::mkp
