#include "mkp/analysis.hpp"

#include <gtest/gtest.h>

#include "mkp/generator.hpp"

namespace pts::mkp {
namespace {

TEST(Analysis, TightnessOfUniformInstance) {
  // weights all 1, capacity 3 of 6 items: tightness 0.5 in both constraints.
  Instance inst("t", {1, 1, 1, 1, 1, 1}, std::vector<double>(12, 1.0), {3, 3});
  const auto profile = profile_instance(inst);
  EXPECT_DOUBLE_EQ(profile.tightness_min, 0.5);
  EXPECT_DOUBLE_EQ(profile.tightness_max, 0.5);
  EXPECT_DOUBLE_EQ(profile.tightness_mean, 0.5);
  EXPECT_NEAR(profile.expected_fill, 0.5, 1e-12);
}

TEST(Analysis, TightnessRangeWithAsymmetricConstraints) {
  Instance inst("a", {1, 1}, {1, 1, 1, 1}, {1, 2});
  const auto profile = profile_instance(inst);
  EXPECT_DOUBLE_EQ(profile.tightness_min, 0.5);
  EXPECT_DOUBLE_EQ(profile.tightness_max, 1.0);
  EXPECT_DOUBLE_EQ(profile.tightness_mean, 0.75);
}

TEST(Analysis, PerfectCorrelationDetected) {
  // c_j exactly equals the column weight sum.
  Instance inst("c", {2, 4, 6}, {2, 4, 6}, {6});
  const auto profile = profile_instance(inst);
  EXPECT_NEAR(profile.profit_weight_correlation, 1.0, 1e-9);
  // ...and then every density is 1: zero dispersion.
  EXPECT_NEAR(profile.density_cv, 0.0, 1e-12);
}

TEST(Analysis, GkInstancesAreStronglyCorrelated) {
  const auto inst = generate_gk({.num_items = 200, .num_constraints = 10}, 5);
  const auto profile = profile_instance(inst);
  EXPECT_GT(profile.profit_weight_correlation, 0.6);
  EXPECT_NEAR(profile.tightness_mean, 0.25, 0.02);
  EXPECT_LT(profile.density_cv, 0.5);  // densities carry little signal
}

TEST(Analysis, UncorrelatedInstancesAreNot) {
  const auto inst = generate_uncorrelated(200, 5, 6);
  const auto profile = profile_instance(inst);
  EXPECT_LT(profile.profit_weight_correlation, 0.3);
  EXPECT_GT(profile.density_cv,
            profile_instance(generate_gk({.num_items = 200, .num_constraints = 5}, 6))
                .density_cv);
}

TEST(Analysis, GeneratorTightnessKnobIsVisible) {
  const auto tight = generate_uncorrelated(100, 3, 7, 1000.0, 0.25);
  const auto loose = generate_uncorrelated(100, 3, 7, 1000.0, 0.75);
  EXPECT_LT(profile_instance(tight).tightness_mean,
            profile_instance(loose).tightness_mean);
}

TEST(Analysis, ToStringMentionsTheShape) {
  const auto inst = generate_gk({.num_items = 50, .num_constraints = 5}, 8);
  const auto text = profile_instance(inst).to_string();
  EXPECT_NE(text.find("n=50"), std::string::npos);
  EXPECT_NE(text.find("m=5"), std::string::npos);
  EXPECT_NE(text.find("tightness"), std::string::npos);
}

}  // namespace
}  // namespace pts::mkp
