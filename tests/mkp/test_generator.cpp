#include "mkp/generator.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace pts::mkp {
namespace {

TEST(GkGenerator, ShapeMatchesConfig) {
  const auto inst = generate_gk({.num_items = 40, .num_constraints = 6}, 11);
  EXPECT_EQ(inst.num_items(), 40U);
  EXPECT_EQ(inst.num_constraints(), 6U);
  EXPECT_TRUE(inst.validate().empty());
}

TEST(GkGenerator, DeterministicPerSeed) {
  const auto a = generate_gk({.num_items = 30, .num_constraints = 5}, 99);
  const auto b = generate_gk({.num_items = 30, .num_constraints = 5}, 99);
  for (std::size_t j = 0; j < 30; ++j) EXPECT_DOUBLE_EQ(a.profit(j), b.profit(j));
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(a.capacity(i), b.capacity(i));
    for (std::size_t j = 0; j < 30; ++j) {
      EXPECT_DOUBLE_EQ(a.weight(i, j), b.weight(i, j));
    }
  }
}

TEST(GkGenerator, SeedsProduceDifferentInstances) {
  const auto a = generate_gk({.num_items = 30, .num_constraints = 5}, 1);
  const auto b = generate_gk({.num_items = 30, .num_constraints = 5}, 2);
  bool any_diff = false;
  for (std::size_t j = 0; j < 30 && !any_diff; ++j) {
    any_diff = a.profit(j) != b.profit(j);
  }
  EXPECT_TRUE(any_diff);
}

TEST(GkGenerator, WeightsWithinRange) {
  const auto inst = generate_gk({.num_items = 50, .num_constraints = 4}, 5);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 50; ++j) {
      EXPECT_GE(inst.weight(i, j), 1.0);
      EXPECT_LE(inst.weight(i, j), 1000.0);
    }
  }
}

TEST(GkGenerator, CapacityRespectsTightness) {
  GkConfig config{.num_items = 100, .num_constraints = 3, .tightness = 0.25};
  const auto inst = generate_gk(config, 7);
  for (std::size_t i = 0; i < 3; ++i) {
    double row_sum = 0.0;
    for (std::size_t j = 0; j < 100; ++j) row_sum += inst.weight(i, j);
    EXPECT_LE(inst.capacity(i), 0.25 * row_sum + 1.0);
    EXPECT_GE(inst.capacity(i), 0.25 * row_sum - 1.0);
  }
}

TEST(GkGenerator, NoItemTriviallyExcluded) {
  // b_i >= max row weight even at extreme tightness.
  GkConfig config{.num_items = 8, .num_constraints = 2, .tightness = 0.01};
  const auto inst = generate_gk(config, 13);
  EXPECT_TRUE(inst.every_item_fits());
}

TEST(GkGenerator, ProfitsAreCorrelatedWithColumnSums) {
  // c_j = colsum/m + U(0,500): so c_j - colsum/m must lie in [0, 500].
  const auto inst = generate_gk({.num_items = 200, .num_constraints = 5}, 17);
  for (std::size_t j = 0; j < 200; ++j) {
    const double base = inst.column_weight_sum(j) / 5.0;
    EXPECT_GE(inst.profit(j), base - 1.0);
    EXPECT_LE(inst.profit(j), base + 501.0);
  }
}

TEST(FpGenerator, ShapeAndValidity) {
  const auto inst = generate_fp({.num_items = 25, .num_constraints = 10}, 3);
  EXPECT_EQ(inst.num_items(), 25U);
  EXPECT_EQ(inst.num_constraints(), 10U);
  EXPECT_TRUE(inst.validate().empty());
}

TEST(Fp57, ExactlyFiftySevenProblems) {
  const auto suite = generate_fp57(42);
  ASSERT_EQ(suite.size(), 57U);
}

TEST(Fp57, SizesWithinPublishedRanges) {
  for (const auto& inst : generate_fp57(42)) {
    EXPECT_GE(inst.num_items(), 6U);
    EXPECT_LE(inst.num_items(), 105U);
    EXPECT_GE(inst.num_constraints(), 2U);
    EXPECT_LE(inst.num_constraints(), 30U);
    EXPECT_TRUE(inst.validate().empty());
  }
}

TEST(Fp57, DeterministicPerSeed) {
  const auto a = generate_fp57(9);
  const auto b = generate_fp57(9);
  for (std::size_t k = 0; k < 57; ++k) {
    EXPECT_EQ(a[k].num_items(), b[k].num_items());
    EXPECT_DOUBLE_EQ(a[k].profit(0), b[k].profit(0));
  }
}

TEST(Uncorrelated, ProfitsIndependentOfWeights) {
  const auto inst = generate_uncorrelated(60, 4, 21);
  EXPECT_EQ(inst.num_items(), 60U);
  EXPECT_TRUE(inst.validate().empty());
}

TEST(WeaklyCorrelated, ProfitsNearFirstRow) {
  const auto inst = generate_weakly_correlated(80, 3, 23, 1000.0, 100.0);
  for (std::size_t j = 0; j < 80; ++j) {
    EXPECT_GE(inst.profit(j), inst.weight(0, j) - 101.0);
    EXPECT_LE(inst.profit(j), inst.weight(0, j) + 101.0);
  }
}

TEST(StronglyCorrelated, ProfitIsShiftedMeanWeight) {
  const auto inst = generate_strongly_correlated(50, 4, 29, 1000.0, 100.0);
  for (std::size_t j = 0; j < 50; ++j) {
    const double mean_w = inst.column_weight_sum(j) / 4.0;
    EXPECT_NEAR(inst.profit(j), mean_w + 100.0, 1.0);
  }
}

TEST(Table1Classes, CoversPaperGrid) {
  const auto classes = generate_gk_table1_classes(31, 2);
  ASSERT_EQ(classes.size(), 10U);
  EXPECT_EQ(classes.front().label, "3x10");
  EXPECT_EQ(classes.back().label, "25x500");
  for (const auto& cls : classes) {
    EXPECT_EQ(cls.instances.size(), 2U);
    for (const auto& inst : cls.instances) EXPECT_TRUE(inst.validate().empty());
  }
}

TEST(Table1Classes, SizeScaleShrinksItems) {
  const auto classes = generate_gk_table1_classes(31, 1, 0.2);
  // 25x500 scaled by 0.2 -> 25x100.
  EXPECT_EQ(classes.back().label, "25x100");
  EXPECT_EQ(classes.back().instances[0].num_items(), 100U);
}

class GeneratorSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeneratorSeedSweep, AllFamiliesProduceValidInstances) {
  const auto seed = GetParam();
  EXPECT_TRUE(generate_gk({.num_items = 30, .num_constraints = 5}, seed).validate().empty());
  EXPECT_TRUE(generate_fp({.num_items = 20, .num_constraints = 4}, seed).validate().empty());
  EXPECT_TRUE(generate_uncorrelated(25, 3, seed).validate().empty());
  EXPECT_TRUE(generate_weakly_correlated(25, 3, seed).validate().empty());
  EXPECT_TRUE(generate_strongly_correlated(25, 3, seed).validate().empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorSeedSweep,
                         ::testing::Values(1, 7, 19, 101, 997, 10007));

}  // namespace
}  // namespace pts::mkp
