#include "mkp/solution.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "mkp/generator.hpp"
#include "util/rng.hpp"

namespace pts::mkp {
namespace {

Instance make_inst() {
  // 2 constraints, 4 items.
  //   c = {10, 7, 6, 1}
  //   a = [5 4 3 1]
  //       [2 2 2 2]
  //   b = {7, 6}
  return Instance("s", {10, 7, 6, 1}, {5, 4, 3, 1, 2, 2, 2, 2}, {7, 6});
}

TEST(Solution, StartsEmptyAndFeasible) {
  const auto inst = make_inst();
  Solution s(inst);
  EXPECT_EQ(s.cardinality(), 0U);
  EXPECT_DOUBLE_EQ(s.value(), 0.0);
  EXPECT_TRUE(s.is_feasible());
  EXPECT_DOUBLE_EQ(s.total_violation(), 0.0);
  EXPECT_DOUBLE_EQ(s.load(0), 0.0);
}

TEST(Solution, AddUpdatesValueAndLoads) {
  const auto inst = make_inst();
  Solution s(inst);
  s.add(0);
  EXPECT_TRUE(s.contains(0));
  EXPECT_DOUBLE_EQ(s.value(), 10.0);
  EXPECT_DOUBLE_EQ(s.load(0), 5.0);
  EXPECT_DOUBLE_EQ(s.load(1), 2.0);
  EXPECT_DOUBLE_EQ(s.slack(0), 2.0);
  EXPECT_EQ(s.cardinality(), 1U);
}

TEST(Solution, DropRestoresState) {
  const auto inst = make_inst();
  Solution s(inst);
  s.add(1);
  s.add(2);
  s.drop(1);
  EXPECT_FALSE(s.contains(1));
  EXPECT_DOUBLE_EQ(s.value(), 6.0);
  EXPECT_DOUBLE_EQ(s.load(0), 3.0);
  EXPECT_EQ(s.cardinality(), 1U);
}

TEST(Solution, FlipTogglesMembership) {
  const auto inst = make_inst();
  Solution s(inst);
  s.flip(3);
  EXPECT_TRUE(s.contains(3));
  s.flip(3);
  EXPECT_FALSE(s.contains(3));
}

TEST(Solution, ClearResetsEverything) {
  const auto inst = make_inst();
  Solution s(inst);
  s.add(0);
  s.add(3);
  s.clear();
  EXPECT_EQ(s.cardinality(), 0U);
  EXPECT_DOUBLE_EQ(s.value(), 0.0);
  EXPECT_DOUBLE_EQ(s.load(0), 0.0);
  EXPECT_DOUBLE_EQ(s.load(1), 0.0);
}

TEST(Solution, InfeasibilityDetected) {
  const auto inst = make_inst();
  Solution s(inst);
  s.add(0);  // load0 = 5
  s.add(1);  // load0 = 9 > 7
  EXPECT_FALSE(s.is_feasible());
  EXPECT_DOUBLE_EQ(s.total_violation(), 2.0);
}

TEST(Solution, FitsChecksEveryConstraint) {
  const auto inst = make_inst();
  Solution s(inst);
  s.add(0);            // loads: {5, 2}
  EXPECT_FALSE(s.fits(1));  // 5+4 = 9 > 7
  EXPECT_TRUE(s.fits(3));   // 5+1 = 6 <= 7, 2+2 = 4 <= 6
  s.add(3);            // loads: {6, 4}
  s.add(2);            // would be 9 > 7... add unchecked
  EXPECT_FALSE(s.is_feasible());
}

TEST(Solution, MostSaturatedConstraintAbsolute) {
  const auto inst = make_inst();
  Solution s(inst);
  s.add(0);  // slacks: {2, 4}
  EXPECT_EQ(s.most_saturated_constraint(), 0U);
  s.drop(0);
  s.add(3);  // slacks: {6, 4}
  EXPECT_EQ(s.most_saturated_constraint(), 1U);
}

TEST(Solution, MostSaturatedConstraintRelative) {
  // Capacities differ wildly: relative mode normalizes.
  Instance inst("r", {1, 1}, {9, 0, 0, 150}, {100, 1000});
  Solution s(inst);
  s.add(0);  // relative slacks: 91/100 = 0.91, 1000/1000 = 1.0
  EXPECT_EQ(s.most_saturated_constraint(true), 0U);
  s.add(1);  // relative slacks: 0.91, 850/1000 = 0.85
  EXPECT_EQ(s.most_saturated_constraint(true), 1U);
}

TEST(Solution, MostSaturatedConstraintZeroCapacityTieBreak) {
  // b_0 = 0 uses raw slack (no normalization). Both constraints sit at
  // relative key 0 when empty... constraint 0: slack 0 raw; constraint 1:
  // slack 8, key 1.0 — the zero-capacity constraint is the bottleneck.
  Instance inst("zc", {1, 1}, {0, 0, 4, 4}, {0, 8});
  Solution s(inst);
  EXPECT_EQ(s.most_saturated_constraint(true), 0U);
  // A second zero-capacity constraint ties at key 0; lowest index wins.
  Instance both("zz", {1}, {1, 1}, {0, 0});
  Solution t(both);
  EXPECT_EQ(t.most_saturated_constraint(true), 0U);
  EXPECT_EQ(t.most_saturated_constraint(false), 0U);
}

TEST(Solution, MinSlackTracksAddDropClear) {
  const auto inst = make_inst();  // b = {7, 6}
  Solution s(inst);
  EXPECT_DOUBLE_EQ(s.min_slack(), 6.0);  // empty: min capacity
  s.add(0);                              // slacks {2, 4}
  EXPECT_DOUBLE_EQ(s.min_slack(), 2.0);
  s.add(3);  // slacks {1, 2}
  EXPECT_DOUBLE_EQ(s.min_slack(), 1.0);
  s.drop(0);  // slacks {6, 4}
  EXPECT_DOUBLE_EQ(s.min_slack(), 4.0);
  s.add(1);  // slacks {2, 2}
  s.add(2);  // slacks {-1, 0}: infeasible, min_slack negative
  EXPECT_DOUBLE_EQ(s.min_slack(), -1.0);
  EXPECT_FALSE(s.is_feasible());
  s.clear();
  EXPECT_DOUBLE_EQ(s.min_slack(), 6.0);
}

TEST(Solution, MinSlackMatchesDirectScanOnRandomWalk) {
  const auto inst = generate_gk({.num_items = 50, .num_constraints = 9}, 77);
  Solution s(inst);
  Rng rng(78);
  for (int step = 0; step < 500; ++step) {
    s.flip(rng.index(inst.num_items()));
    double expect = s.slack(0);
    for (std::size_t i = 1; i < inst.num_constraints(); ++i) {
      expect = std::min(expect, s.slack(i));
    }
    ASSERT_DOUBLE_EQ(s.min_slack(), expect) << "step " << step;
  }
}

TEST(Solution, InvSlackIsFlooredReciprocalSlack) {
  const auto inst = make_inst();  // b = {7, 6}
  Solution s(inst);
  ASSERT_EQ(s.inv_slack().size(), 2U);
  EXPECT_DOUBLE_EQ(s.inv_slack()[0], 1.0 / 7.0);
  EXPECT_DOUBLE_EQ(s.inv_slack()[1], 1.0 / 6.0);
  s.add(0);  // slacks {2, 4}
  EXPECT_DOUBLE_EQ(s.inv_slack()[0], 1.0 / 2.0);
  EXPECT_DOUBLE_EQ(s.inv_slack()[1], 1.0 / 4.0);
  s.add(1);  // slacks {-2, 2}: negative slack floors at kSlackFloor
  EXPECT_DOUBLE_EQ(s.inv_slack()[0], 1.0 / Solution::kSlackFloor);
  EXPECT_DOUBLE_EQ(s.inv_slack()[1], 1.0 / 2.0);
}

TEST(Solution, InvSlackMatchesDirectRecomputeOnRandomWalk) {
  const auto inst = generate_gk({.num_items = 50, .num_constraints = 9}, 81);
  Solution s(inst);
  Rng rng(82);
  for (int step = 0; step < 500; ++step) {
    s.flip(rng.index(inst.num_items()));
    for (std::size_t i = 0; i < inst.num_constraints(); ++i) {
      const double expect = 1.0 / std::max(s.slack(i), Solution::kSlackFloor);
      ASSERT_DOUBLE_EQ(s.inv_slack()[i], expect) << "step " << step << " i " << i;
    }
  }
}

TEST(Solution, SelectedItemsSortedAscending) {
  const auto inst = make_inst();
  Solution s(inst);
  s.add(2);
  s.add(0);
  const auto items = s.selected_items();
  ASSERT_EQ(items.size(), 2U);
  EXPECT_EQ(items[0], 0U);
  EXPECT_EQ(items[1], 2U);
}

TEST(Solution, HammingDistance) {
  const auto inst = make_inst();
  Solution a(inst), b(inst);
  a.add(0);
  a.add(1);
  b.add(1);
  b.add(2);
  EXPECT_EQ(a.hamming_distance(b), 2U);
  EXPECT_EQ(a.hamming_distance(a), 0U);
}

TEST(Solution, EqualityIsContentBased) {
  const auto inst = make_inst();
  Solution a(inst), b(inst);
  a.add(1);
  b.add(1);
  EXPECT_EQ(a, b);
  b.add(2);
  EXPECT_NE(a, b);
}

TEST(Solution, CopyAssignmentHelper) {
  const auto inst = make_inst();
  Solution a(inst), b(inst);
  a.add(0);
  copy_assignment(a, b);
  EXPECT_EQ(a, b);
  EXPECT_DOUBLE_EQ(b.value(), 10.0);
}

TEST(Solution, ConsistencyHoldsAfterManualOps) {
  const auto inst = make_inst();
  Solution s(inst);
  s.add(0);
  s.add(3);
  s.drop(0);
  EXPECT_TRUE(s.check_consistency());
}

class SolutionRandomWalk : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SolutionRandomWalk, IncrementalMatchesRecompute) {
  const auto inst = generate_gk({.num_items = 60, .num_constraints = 7}, GetParam());
  Solution s(inst);
  Rng rng(GetParam() ^ 0xABCDULL);
  for (int step = 0; step < 2000; ++step) {
    s.flip(rng.index(inst.num_items()));
  }
  EXPECT_TRUE(s.check_consistency());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolutionRandomWalk,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace pts::mkp
