#include "mkp/solution.hpp"

#include <gtest/gtest.h>

#include "mkp/generator.hpp"
#include "util/rng.hpp"

namespace pts::mkp {
namespace {

Instance make_inst() {
  // 2 constraints, 4 items.
  //   c = {10, 7, 6, 1}
  //   a = [5 4 3 1]
  //       [2 2 2 2]
  //   b = {7, 6}
  return Instance("s", {10, 7, 6, 1}, {5, 4, 3, 1, 2, 2, 2, 2}, {7, 6});
}

TEST(Solution, StartsEmptyAndFeasible) {
  const auto inst = make_inst();
  Solution s(inst);
  EXPECT_EQ(s.cardinality(), 0U);
  EXPECT_DOUBLE_EQ(s.value(), 0.0);
  EXPECT_TRUE(s.is_feasible());
  EXPECT_DOUBLE_EQ(s.total_violation(), 0.0);
  EXPECT_DOUBLE_EQ(s.load(0), 0.0);
}

TEST(Solution, AddUpdatesValueAndLoads) {
  const auto inst = make_inst();
  Solution s(inst);
  s.add(0);
  EXPECT_TRUE(s.contains(0));
  EXPECT_DOUBLE_EQ(s.value(), 10.0);
  EXPECT_DOUBLE_EQ(s.load(0), 5.0);
  EXPECT_DOUBLE_EQ(s.load(1), 2.0);
  EXPECT_DOUBLE_EQ(s.slack(0), 2.0);
  EXPECT_EQ(s.cardinality(), 1U);
}

TEST(Solution, DropRestoresState) {
  const auto inst = make_inst();
  Solution s(inst);
  s.add(1);
  s.add(2);
  s.drop(1);
  EXPECT_FALSE(s.contains(1));
  EXPECT_DOUBLE_EQ(s.value(), 6.0);
  EXPECT_DOUBLE_EQ(s.load(0), 3.0);
  EXPECT_EQ(s.cardinality(), 1U);
}

TEST(Solution, FlipTogglesMembership) {
  const auto inst = make_inst();
  Solution s(inst);
  s.flip(3);
  EXPECT_TRUE(s.contains(3));
  s.flip(3);
  EXPECT_FALSE(s.contains(3));
}

TEST(Solution, ClearResetsEverything) {
  const auto inst = make_inst();
  Solution s(inst);
  s.add(0);
  s.add(3);
  s.clear();
  EXPECT_EQ(s.cardinality(), 0U);
  EXPECT_DOUBLE_EQ(s.value(), 0.0);
  EXPECT_DOUBLE_EQ(s.load(0), 0.0);
  EXPECT_DOUBLE_EQ(s.load(1), 0.0);
}

TEST(Solution, InfeasibilityDetected) {
  const auto inst = make_inst();
  Solution s(inst);
  s.add(0);  // load0 = 5
  s.add(1);  // load0 = 9 > 7
  EXPECT_FALSE(s.is_feasible());
  EXPECT_DOUBLE_EQ(s.total_violation(), 2.0);
}

TEST(Solution, FitsChecksEveryConstraint) {
  const auto inst = make_inst();
  Solution s(inst);
  s.add(0);            // loads: {5, 2}
  EXPECT_FALSE(s.fits(1));  // 5+4 = 9 > 7
  EXPECT_TRUE(s.fits(3));   // 5+1 = 6 <= 7, 2+2 = 4 <= 6
  s.add(3);            // loads: {6, 4}
  s.add(2);            // would be 9 > 7... add unchecked
  EXPECT_FALSE(s.is_feasible());
}

TEST(Solution, MostSaturatedConstraintAbsolute) {
  const auto inst = make_inst();
  Solution s(inst);
  s.add(0);  // slacks: {2, 4}
  EXPECT_EQ(s.most_saturated_constraint(), 0U);
  s.drop(0);
  s.add(3);  // slacks: {6, 4}
  EXPECT_EQ(s.most_saturated_constraint(), 1U);
}

TEST(Solution, MostSaturatedConstraintRelative) {
  // Capacities differ wildly: relative mode normalizes.
  Instance inst("r", {1, 1}, {9, 0, 0, 150}, {100, 1000});
  Solution s(inst);
  s.add(0);  // relative slacks: 91/100 = 0.91, 1000/1000 = 1.0
  EXPECT_EQ(s.most_saturated_constraint(true), 0U);
  s.add(1);  // relative slacks: 0.91, 850/1000 = 0.85
  EXPECT_EQ(s.most_saturated_constraint(true), 1U);
}

TEST(Solution, SelectedItemsSortedAscending) {
  const auto inst = make_inst();
  Solution s(inst);
  s.add(2);
  s.add(0);
  const auto items = s.selected_items();
  ASSERT_EQ(items.size(), 2U);
  EXPECT_EQ(items[0], 0U);
  EXPECT_EQ(items[1], 2U);
}

TEST(Solution, HammingDistance) {
  const auto inst = make_inst();
  Solution a(inst), b(inst);
  a.add(0);
  a.add(1);
  b.add(1);
  b.add(2);
  EXPECT_EQ(a.hamming_distance(b), 2U);
  EXPECT_EQ(a.hamming_distance(a), 0U);
}

TEST(Solution, EqualityIsContentBased) {
  const auto inst = make_inst();
  Solution a(inst), b(inst);
  a.add(1);
  b.add(1);
  EXPECT_EQ(a, b);
  b.add(2);
  EXPECT_NE(a, b);
}

TEST(Solution, CopyAssignmentHelper) {
  const auto inst = make_inst();
  Solution a(inst), b(inst);
  a.add(0);
  copy_assignment(a, b);
  EXPECT_EQ(a, b);
  EXPECT_DOUBLE_EQ(b.value(), 10.0);
}

TEST(Solution, ConsistencyHoldsAfterManualOps) {
  const auto inst = make_inst();
  Solution s(inst);
  s.add(0);
  s.add(3);
  s.drop(0);
  EXPECT_TRUE(s.check_consistency());
}

class SolutionRandomWalk : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SolutionRandomWalk, IncrementalMatchesRecompute) {
  const auto inst = generate_gk({.num_items = 60, .num_constraints = 7}, GetParam());
  Solution s(inst);
  Rng rng(GetParam() ^ 0xABCDULL);
  for (int step = 0; step < 2000; ++step) {
    s.flip(rng.index(inst.num_items()));
  }
  EXPECT_TRUE(s.check_consistency());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolutionRandomWalk,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace pts::mkp
