#include "mkp/parser.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "mkp/generator.hpp"

namespace pts::mkp {
namespace {

constexpr const char* kSingle = R"(3 2 21
6 4 2
1 2 3
4 5 6
10 20
)";

TEST(Parser, ReadsSingleProblem) {
  std::istringstream in(kSingle);
  const auto inst = read_orlib_single(in, "p");
  EXPECT_EQ(inst.num_items(), 3U);
  EXPECT_EQ(inst.num_constraints(), 2U);
  EXPECT_DOUBLE_EQ(inst.profit(0), 6.0);
  EXPECT_DOUBLE_EQ(inst.weight(1, 2), 6.0);
  EXPECT_DOUBLE_EQ(inst.capacity(1), 20.0);
  ASSERT_TRUE(inst.known_optimum().has_value());
  EXPECT_DOUBLE_EQ(*inst.known_optimum(), 21.0);
}

TEST(Parser, ZeroOptimumMeansUnknown) {
  std::istringstream in("2 1 0\n3 4\n1 1\n2\n");
  const auto inst = read_orlib_single(in);
  EXPECT_FALSE(inst.known_optimum().has_value());
}

TEST(Parser, ReadsMultiProblemFile) {
  std::ostringstream file;
  file << "2\n" << kSingle << "2 1 0\n3 4\n1 1\n2\n";
  std::istringstream in(file.str());
  const auto instances = read_orlib(in, "multi");
  ASSERT_EQ(instances.size(), 2U);
  EXPECT_EQ(instances[0].name(), "multi-1");
  EXPECT_EQ(instances[1].name(), "multi-2");
  EXPECT_EQ(instances[1].num_items(), 2U);
}

TEST(Parser, LineBreaksAreInsignificant) {
  std::istringstream in("3 2 21 6 4 2 1 2 3 4 5 6 10 20");
  const auto inst = read_orlib_single(in);
  EXPECT_EQ(inst.num_items(), 3U);
  EXPECT_DOUBLE_EQ(inst.capacity(0), 10.0);
}

TEST(Parser, FractionalValuesSupported) {
  std::istringstream in("2 1 8706.1\n3.5 4.25\n1.5 2.5\n3.0\n");
  const auto inst = read_orlib_single(in);
  EXPECT_DOUBLE_EQ(inst.profit(0), 3.5);
  EXPECT_DOUBLE_EQ(*inst.known_optimum(), 8706.1);
}

TEST(Parser, TruncatedFileThrows) {
  std::istringstream in("3 2 0\n6 4\n");  // profits cut short
  EXPECT_THROW(read_orlib_single(in), ParseError);
}

TEST(Parser, GarbageTokenThrows) {
  std::istringstream in("3 two 0\n");
  EXPECT_THROW(read_orlib_single(in), ParseError);
}

TEST(Parser, ZeroItemCountThrows) {
  std::istringstream in("0 2 0\n");
  EXPECT_THROW(read_orlib_single(in), ParseError);
}

TEST(Parser, ZeroConstraintCountThrows) {
  std::istringstream in("3 0 0\n");
  EXPECT_THROW(read_orlib_single(in), ParseError);
}

TEST(Parser, NegativeCountThrows) {
  std::istringstream in("-3 2 0\n");
  EXPECT_THROW(read_orlib_single(in), ParseError);
}

TEST(Parser, FractionalCountThrows) {
  std::istringstream in("3.5 2 0\n");
  EXPECT_THROW(read_orlib_single(in), ParseError);
}

TEST(Parser, MissingFileThrows) {
  EXPECT_THROW(read_orlib_file("/nonexistent/path/x.txt"), ParseError);
}

TEST(Parser, WriterRoundTripsSingle) {
  std::istringstream in(kSingle);
  const auto original = read_orlib_single(in, "orig");
  std::ostringstream out;
  write_orlib_single(out, original);
  std::istringstream in2(out.str());
  const auto reread = read_orlib_single(in2, "orig");
  EXPECT_EQ(reread.num_items(), original.num_items());
  EXPECT_EQ(reread.num_constraints(), original.num_constraints());
  for (std::size_t j = 0; j < original.num_items(); ++j) {
    EXPECT_DOUBLE_EQ(reread.profit(j), original.profit(j));
  }
  for (std::size_t i = 0; i < original.num_constraints(); ++i) {
    EXPECT_DOUBLE_EQ(reread.capacity(i), original.capacity(i));
    for (std::size_t j = 0; j < original.num_items(); ++j) {
      EXPECT_DOUBLE_EQ(reread.weight(i, j), original.weight(i, j));
    }
  }
  EXPECT_EQ(reread.known_optimum(), original.known_optimum());
}

TEST(Parser, WriterRoundTripsGeneratedBatch) {
  std::vector<Instance> batch;
  batch.push_back(generate_gk({.num_items = 20, .num_constraints = 3}, 1));
  batch.push_back(generate_gk({.num_items = 15, .num_constraints = 5}, 2));
  std::ostringstream out;
  write_orlib(out, batch);
  std::istringstream in(out.str());
  const auto reread = read_orlib(in, "rt");
  ASSERT_EQ(reread.size(), 2U);
  for (std::size_t k = 0; k < 2; ++k) {
    EXPECT_EQ(reread[k].num_items(), batch[k].num_items());
    for (std::size_t i = 0; i < batch[k].num_constraints(); ++i) {
      for (std::size_t j = 0; j < batch[k].num_items(); ++j) {
        EXPECT_DOUBLE_EQ(reread[k].weight(i, j), batch[k].weight(i, j));
      }
    }
  }
}

TEST(Parser, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/pts_parser_rt.txt";
  std::vector<Instance> batch;
  batch.push_back(generate_fp({.num_items = 12, .num_constraints = 4}, 7));
  write_orlib_file(path, batch);
  const auto reread = read_orlib_file(path);
  ASSERT_EQ(reread.size(), 1U);
  EXPECT_EQ(reread[0].num_items(), 12U);
  EXPECT_EQ(reread[0].num_constraints(), 4U);
}

}  // namespace
}  // namespace pts::mkp
