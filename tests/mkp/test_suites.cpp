#include "mkp/suites.hpp"

#include <gtest/gtest.h>

#include "mkp/analysis.hpp"

namespace pts::mkp {
namespace {

TEST(ChuBeasley, FullGridShape) {
  const auto classes = generate_chu_beasley(1);
  // 3 constraint counts x 3 item counts x 3 tightness levels.
  ASSERT_EQ(classes.size(), 27U);
  for (const auto& cls : classes) {
    ASSERT_EQ(cls.instances.size(), 1U);
    EXPECT_TRUE(cls.instances[0].validate().empty()) << cls.label;
  }
}

TEST(ChuBeasley, LabelsEncodeTheCell) {
  const auto classes = generate_chu_beasley(2);
  EXPECT_EQ(classes.front().label, "cb-5x100-t0.25");
  EXPECT_EQ(classes.back().label, "cb-30x500-t0.75");
}

TEST(ChuBeasley, TightnessIsRealized) {
  ChuBeasleyConfig config;
  config.constraint_counts = {5};
  config.item_counts = {200};
  const auto classes = generate_chu_beasley(3, config);
  ASSERT_EQ(classes.size(), 3U);
  for (const auto& cls : classes) {
    const auto profile = profile_instance(cls.instances[0]);
    EXPECT_NEAR(profile.tightness_mean, cls.tightness, 0.02) << cls.label;
  }
}

TEST(ChuBeasley, SizeScaleShrinks) {
  ChuBeasleyConfig config;
  config.constraint_counts = {5};
  config.item_counts = {100};
  config.tightness_levels = {0.5};
  config.size_scale = 0.3;
  const auto classes = generate_chu_beasley(4, config);
  ASSERT_EQ(classes.size(), 1U);
  EXPECT_EQ(classes[0].instances[0].num_items(), 30U);
}

TEST(ChuBeasley, DeterministicPerSeed) {
  ChuBeasleyConfig config;
  config.constraint_counts = {5};
  config.item_counts = {50};
  config.tightness_levels = {0.25};
  const auto a = generate_chu_beasley(7, config);
  const auto b = generate_chu_beasley(7, config);
  EXPECT_DOUBLE_EQ(a[0].instances[0].profit(0), b[0].instances[0].profit(0));
  const auto c = generate_chu_beasley(8, config);
  bool differs = false;
  for (std::size_t j = 0; j < 50 && !differs; ++j) {
    differs = a[0].instances[0].profit(j) != c[0].instances[0].profit(j);
  }
  EXPECT_TRUE(differs);
}

TEST(ChuBeasley, MultipleInstancesPerClassAreDistinct) {
  ChuBeasleyConfig config;
  config.constraint_counts = {5};
  config.item_counts = {60};
  config.tightness_levels = {0.5};
  config.instances_per_class = 3;
  const auto classes = generate_chu_beasley(9, config);
  ASSERT_EQ(classes[0].instances.size(), 3U);
  EXPECT_NE(classes[0].instances[0].profit(0), classes[0].instances[1].profit(0));
}

}  // namespace
}  // namespace pts::mkp
