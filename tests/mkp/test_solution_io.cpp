#include "mkp/solution_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "bounds/greedy.hpp"
#include "mkp/generator.hpp"

namespace pts::mkp {
namespace {

Instance make_inst() { return generate_gk({.num_items = 20, .num_constraints = 3}, 1); }

TEST(SolutionIo, RoundTripPreservesAssignment) {
  const auto inst = make_inst();
  const auto original = bounds::greedy_construct(inst);
  std::stringstream buffer;
  write_solution(buffer, original);
  const auto reread = read_solution(buffer, inst);
  EXPECT_EQ(reread, original);
  EXPECT_DOUBLE_EQ(reread.value(), original.value());
}

TEST(SolutionIo, EmptySolutionRoundTrips) {
  const auto inst = make_inst();
  Solution empty(inst);
  std::stringstream buffer;
  write_solution(buffer, empty);
  const auto reread = read_solution(buffer, inst);
  EXPECT_EQ(reread.cardinality(), 0U);
}

TEST(SolutionIo, FormatIsHumanReadable) {
  const auto inst = make_inst();
  Solution s(inst);
  s.add(3);
  s.add(7);
  std::stringstream buffer;
  write_solution(buffer, s);
  const auto text = buffer.str();
  EXPECT_NE(text.find("mkpsol 1"), std::string::npos);
  EXPECT_NE(text.find("items 20"), std::string::npos);
  EXPECT_NE(text.find("selected 2 3 7"), std::string::npos);
}

TEST(SolutionIo, RejectsWrongItemCount) {
  const auto inst = make_inst();
  const auto other = generate_gk({.num_items = 25, .num_constraints = 3}, 1);
  std::stringstream buffer;
  write_solution(buffer, Solution(other));
  EXPECT_THROW((void)read_solution(buffer, inst), SolutionIoError);
}

TEST(SolutionIo, RejectsValueMismatch) {
  const auto inst = make_inst();
  std::stringstream buffer;
  buffer << "mkpsol 1\ninstance x\nitems 20\nvalue 99999\nselected 1 0\n";
  EXPECT_THROW((void)read_solution(buffer, inst), SolutionIoError);
}

TEST(SolutionIo, RejectsOutOfRangeIndex) {
  const auto inst = make_inst();
  std::stringstream buffer;
  buffer << "mkpsol 1\ninstance x\nitems 20\nvalue 0\nselected 1 25\n";
  EXPECT_THROW((void)read_solution(buffer, inst), SolutionIoError);
}

TEST(SolutionIo, RejectsDuplicateIndex) {
  const auto inst = make_inst();
  const double v = 2.0 * inst.profit(0);
  std::stringstream buffer;
  buffer << "mkpsol 1\ninstance x\nitems 20\nvalue " << v << "\nselected 2 0 0\n";
  EXPECT_THROW((void)read_solution(buffer, inst), SolutionIoError);
}

TEST(SolutionIo, RejectsInfeasibleSolution) {
  // Tight instance where both items together violate the constraint.
  Instance tight("tight", {5, 5}, {3, 3}, {4});
  std::stringstream buffer;
  buffer << "mkpsol 1\ninstance tight\nitems 2\nvalue 10\nselected 2 0 1\n";
  EXPECT_THROW((void)read_solution(buffer, tight), SolutionIoError);
}

TEST(SolutionIo, RejectsBadMagicAndVersion) {
  const auto inst = make_inst();
  std::stringstream bad_magic("nope 1\n");
  EXPECT_THROW((void)read_solution(bad_magic, inst), SolutionIoError);
  std::stringstream bad_version("mkpsol 9\n");
  EXPECT_THROW((void)read_solution(bad_version, inst), SolutionIoError);
}

TEST(SolutionIo, RejectsTruncation) {
  const auto inst = make_inst();
  std::stringstream truncated("mkpsol 1\ninstance x\nitems 20\nvalue 0\nselected 3 1\n");
  EXPECT_THROW((void)read_solution(truncated, inst), SolutionIoError);
}

TEST(SolutionIo, FileRoundTrip) {
  const auto inst = make_inst();
  const auto original = bounds::greedy_construct(inst);
  const std::string path = ::testing::TempDir() + "/pts_solution_rt.mkpsol";
  write_solution_file(path, original);
  const auto reread = read_solution_file(path, inst);
  EXPECT_EQ(reread, original);
}

TEST(SolutionIo, MissingFileThrows) {
  const auto inst = make_inst();
  EXPECT_THROW((void)read_solution_file("/nonexistent/file.mkpsol", inst),
               SolutionIoError);
}

}  // namespace
}  // namespace pts::mkp
