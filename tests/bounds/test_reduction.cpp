#include "bounds/reduction.hpp"

#include <gtest/gtest.h>

#include "bounds/greedy.hpp"
#include "exact/branch_and_bound.hpp"
#include "exact/brute_force.hpp"
#include "mkp/generator.hpp"

namespace pts::bounds {
namespace {

TEST(Reduction, TrivialLowerBoundFixesNothingToZeroWrongly) {
  // With lb = 0 every solution is "worth keeping"... almost: variables whose
  // forced inclusion caps the LP below 0 cannot exist (profits positive),
  // so nothing fixes to 0; variables may still fix to 1.
  const auto inst = mkp::generate_gk({.num_items = 30, .num_constraints = 4}, 1);
  const auto fixing = reduced_cost_fixing(inst, 0.0);
  ASSERT_TRUE(fixing.lp_solved);
  EXPECT_EQ(fixing.fixed_to_zero, 0U);
}

TEST(Reduction, StrongBoundFixesVariables) {
  // Loose uncorrelated instances have spread-out reduced costs: a greedy
  // bound fixes a solid share of the variables.
  const auto inst = mkp::generate_uncorrelated(60, 3, 2, 1000.0, 0.5);
  const double lb = greedy_construct(inst).value();
  const auto fixing = reduced_cost_fixing(inst, lb);
  ASSERT_TRUE(fixing.lp_solved);
  EXPECT_GT(fixing.fixed_total(), 0U);
  EXPECT_EQ(fixing.status.size(), 60U);
}

TEST(Reduction, NeverCutsTheOptimumOff) {
  for (std::uint64_t seed : {3, 5, 7, 11, 13}) {
    const auto inst = mkp::generate_uncorrelated(18, 3, seed, 100.0, 0.5);
    const auto oracle = exact::brute_force(inst);
    const double lb = greedy_construct(inst).value();
    const auto fixing = reduced_cost_fixing(inst, lb);
    // The optimum must respect every fixing (it is strictly better than lb
    // or equal to it; equal-to-lb solutions may be cut ONLY with gap_eps>0,
    // which we did not set).
    if (oracle.optimum <= lb) continue;  // greedy already optimal: skip
    for (std::size_t j = 0; j < 18; ++j) {
      if (fixing.status[j] == FixedValue::kZero) {
        EXPECT_FALSE(oracle.best.contains(j)) << "seed " << seed << " item " << j;
      } else if (fixing.status[j] == FixedValue::kOne) {
        EXPECT_TRUE(oracle.best.contains(j)) << "seed " << seed << " item " << j;
      }
    }
  }
}

TEST(Reduction, BuildReducedFoldsFixedOnes) {
  mkp::Instance inst("fold", {10, 6, 4}, {2, 3, 4}, {9});
  ReductionResult fixing;
  fixing.status = {FixedValue::kOne, FixedValue::kFree, FixedValue::kZero};
  fixing.fixed_to_one = 1;
  fixing.fixed_to_zero = 1;
  const auto reduced = build_reduced(inst, fixing);
  ASSERT_TRUE(reduced.instance.has_value());
  EXPECT_EQ(reduced.instance->num_items(), 1U);
  EXPECT_DOUBLE_EQ(reduced.instance->profit(0), 6.0);
  EXPECT_DOUBLE_EQ(reduced.instance->capacity(0), 7.0);  // 9 - 2
  EXPECT_DOUBLE_EQ(reduced.banked_profit, 10.0);
  ASSERT_EQ(reduced.free_to_original.size(), 1U);
  EXPECT_EQ(reduced.free_to_original[0], 1U);
}

TEST(Reduction, LiftReconstructsFullSolution) {
  mkp::Instance inst("lift", {10, 6, 4}, {2, 3, 4}, {9});
  ReductionResult fixing;
  fixing.status = {FixedValue::kOne, FixedValue::kFree, FixedValue::kZero};
  const auto reduced = build_reduced(inst, fixing);
  ASSERT_TRUE(reduced.instance.has_value());
  mkp::Solution residual(*reduced.instance);
  residual.add(0);  // the free variable (original index 1)
  const auto full = reduced.lift(inst, &residual);
  EXPECT_TRUE(full.contains(0));
  EXPECT_TRUE(full.contains(1));
  EXPECT_FALSE(full.contains(2));
  EXPECT_DOUBLE_EQ(full.value(), 16.0);
}

TEST(Reduction, AllFixedGivesNoResidualInstance) {
  mkp::Instance inst("all", {5, 3}, {1, 1}, {2});
  ReductionResult fixing;
  fixing.status = {FixedValue::kOne, FixedValue::kOne};
  const auto reduced = build_reduced(inst, fixing);
  EXPECT_FALSE(reduced.instance.has_value());
  const auto full = reduced.lift(inst, nullptr);
  EXPECT_DOUBLE_EQ(full.value(), 8.0);
}

TEST(ReductionDeath, OverfixedCapacityAborts) {
  mkp::Instance inst("bad", {5, 3}, {2, 2}, {3});
  ReductionResult fixing;
  fixing.status = {FixedValue::kOne, FixedValue::kOne};  // 4 > 3
  EXPECT_DEATH((void)build_reduced(inst, fixing), "capacity");
}

class ReductionOracleSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ReductionOracleSweep, ReducedSearchFindsTheSameOptimum) {
  const auto inst = mkp::generate_uncorrelated(16, 3, GetParam(), 200.0, 0.5);
  const auto oracle = exact::brute_force(inst);
  const double lb = greedy_construct(inst).value();
  const auto fixing = reduced_cost_fixing(inst, lb);
  const auto reduced = build_reduced(inst, fixing);

  double best = lb;  // the incumbent survives by construction
  if (reduced.instance.has_value()) {
    const auto residual = exact::brute_force(*reduced.instance);
    best = std::max(best, reduced.banked_profit + residual.optimum);
  } else {
    best = std::max(best, reduced.banked_profit);
  }
  EXPECT_DOUBLE_EQ(best, oracle.optimum) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReductionOracleSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

}  // namespace
}  // namespace pts::bounds
