#include "bounds/linalg.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace pts::bounds {
namespace {

TEST(Lu, SolvesIdentity) {
  const std::vector<double> eye{1, 0, 0, 1};
  const auto lu = LuFactors::factorize(eye, 2);
  ASSERT_TRUE(lu.ok());
  const std::vector<double> rhs{3, 7};
  const auto x = lu.solve(rhs);
  EXPECT_DOUBLE_EQ(x[0], 3.0);
  EXPECT_DOUBLE_EQ(x[1], 7.0);
}

TEST(Lu, SolvesKnownSystem) {
  // [2 1; 1 3] x = [5; 10] -> x = (1, 3).
  const std::vector<double> a{2, 1, 1, 3};
  const auto lu = LuFactors::factorize(a, 2);
  ASSERT_TRUE(lu.ok());
  const auto x = lu.solve(std::vector<double>{5, 10});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Lu, RequiresPivoting) {
  // Zero on the diagonal forces a row swap.
  const std::vector<double> a{0, 1, 1, 0};
  const auto lu = LuFactors::factorize(a, 2);
  ASSERT_TRUE(lu.ok());
  const auto x = lu.solve(std::vector<double>{2, 5});
  EXPECT_NEAR(x[0], 5.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Lu, SingularMatrixReported) {
  const std::vector<double> a{1, 2, 2, 4};
  const auto lu = LuFactors::factorize(a, 2);
  EXPECT_FALSE(lu.ok());
}

TEST(Lu, TransposedSolve) {
  // A = [2 0; 1 3]; A^T y = c with c = (4, 9) -> y solves
  // [2 1; 0 3] y = (4, 9): y1 = 3, y0 = 0.5.
  const std::vector<double> a{2, 0, 1, 3};
  const auto lu = LuFactors::factorize(a, 2);
  ASSERT_TRUE(lu.ok());
  const auto y = lu.solve_transposed(std::vector<double>{4, 9});
  EXPECT_NEAR(y[0], 0.5, 1e-12);
  EXPECT_NEAR(y[1], 3.0, 1e-12);
}

class LuRandomSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LuRandomSweep, ResidualsSmallOnRandomSystems) {
  const std::size_t n = GetParam();
  Rng rng(n * 17 + 1);
  std::vector<double> a(n * n);
  for (auto& v : a) v = rng.uniform_real(-10, 10);
  // Diagonal dominance keeps the random matrix comfortably nonsingular.
  for (std::size_t i = 0; i < n; ++i) a[i * n + i] += 25.0;
  std::vector<double> x_true(n);
  for (auto& v : x_true) v = rng.uniform_real(-5, 5);
  std::vector<double> b(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) b[i] += a[i * n + j] * x_true[j];
  }

  const auto lu = LuFactors::factorize(a, n);
  ASSERT_TRUE(lu.ok());
  const auto x = lu.solve(b);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-8);

  // Transposed: bT_i = sum_j a_ji x_j.
  std::vector<double> bt(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) bt[i] += a[j * n + i] * x_true[j];
  }
  const auto xt = lu.solve_transposed(bt);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(xt[i], x_true[i], 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LuRandomSweep, ::testing::Values(1, 2, 3, 5, 10, 30));

}  // namespace
}  // namespace pts::bounds
