#include "bounds/simplex.hpp"

#include <gtest/gtest.h>

#include "bounds/dantzig.hpp"
#include "exact/brute_force.hpp"
#include "mkp/catalog.hpp"
#include "mkp/generator.hpp"

namespace pts::bounds {
namespace {

TEST(Simplex, SolvesTinyByHand) {
  // max 3x0 + 2x1, x0 + x1 <= 1.5, x in [0,1]: optimum x = (1, 0.5) -> 4.
  mkp::Instance inst("lp", {3, 2}, {1, 1}, {1.5});
  const auto lp = solve_lp_relaxation(inst);
  ASSERT_TRUE(lp.optimal());
  EXPECT_NEAR(lp.objective, 4.0, 1e-9);
  EXPECT_NEAR(lp.primal[0], 1.0, 1e-9);
  EXPECT_NEAR(lp.primal[1], 0.5, 1e-9);
}

TEST(Simplex, AllItemsFitIsTotalProfit) {
  mkp::Instance inst("loose", {5, 7, 9}, {1, 1, 1}, {100});
  const auto lp = solve_lp_relaxation(inst);
  ASSERT_TRUE(lp.optimal());
  EXPECT_NEAR(lp.objective, 21.0, 1e-9);
}

TEST(Simplex, ZeroCapacityIsZero) {
  mkp::Instance inst("zero", {5, 7}, {1, 1}, {0});
  const auto lp = solve_lp_relaxation(inst);
  ASSERT_TRUE(lp.optimal());
  EXPECT_NEAR(lp.objective, 0.0, 1e-9);
}

TEST(Simplex, CardinalityLpIsIntegral) {
  // All weights 1, capacity 4: the LP optimum takes the four best profits.
  const auto entry = mkp::catalog_entry("cat-cardinality");
  const auto lp = solve_lp_relaxation(entry.instance);
  ASSERT_TRUE(lp.optimal());
  EXPECT_NEAR(lp.objective, entry.optimum, 1e-9);
}

TEST(Simplex, PrimalWithinBoundsAndFeasible) {
  const auto inst = mkp::generate_gk({.num_items = 50, .num_constraints = 8}, 3);
  const auto lp = solve_lp_relaxation(inst);
  ASSERT_TRUE(lp.optimal());
  ASSERT_EQ(lp.primal.size(), 50U);
  for (double x : lp.primal) {
    EXPECT_GE(x, -1e-9);
    EXPECT_LE(x, 1.0 + 1e-9);
  }
  for (std::size_t i = 0; i < 8; ++i) {
    double load = 0.0;
    for (std::size_t j = 0; j < 50; ++j) load += inst.weight(i, j) * lp.primal[j];
    EXPECT_LE(load, inst.capacity(i) + 1e-6);
  }
}

TEST(Simplex, ObjectiveMatchesPrimal) {
  const auto inst = mkp::generate_gk({.num_items = 40, .num_constraints = 5}, 4);
  const auto lp = solve_lp_relaxation(inst);
  ASSERT_TRUE(lp.optimal());
  double recomputed = 0.0;
  for (std::size_t j = 0; j < 40; ++j) recomputed += inst.profit(j) * lp.primal[j];
  EXPECT_NEAR(lp.objective, recomputed, 1e-7);
}

TEST(Simplex, DualsNonNegative) {
  const auto inst = mkp::generate_gk({.num_items = 40, .num_constraints = 5}, 5);
  const auto lp = solve_lp_relaxation(inst);
  ASSERT_TRUE(lp.optimal());
  for (double y : lp.duals) EXPECT_GE(y, 0.0);
}

TEST(Simplex, WeakDualityAgainstDantzig) {
  // The LP with all constraints is at least as tight as the best
  // single-constraint continuous bound.
  const auto inst = mkp::generate_gk({.num_items = 60, .num_constraints = 10}, 6);
  const auto lp = solve_lp_relaxation(inst);
  ASSERT_TRUE(lp.optimal());
  EXPECT_LE(lp.objective, min_constraint_bound(inst) + 1e-6);
}

TEST(Simplex, HandlesLargerInstancesToOptimality) {
  const auto inst = mkp::generate_gk({.num_items = 300, .num_constraints = 25}, 7);
  const auto lp = solve_lp_relaxation(inst);
  EXPECT_TRUE(lp.optimal());
  EXPECT_GT(lp.objective, 0.0);
  EXPECT_LT(lp.objective, inst.total_profit());
}

TEST(Simplex, BasicVariableCountAtOptimum) {
  // A classic LP-relaxation property of the MKP: at most m fractional
  // variables at an optimal basic solution.
  const auto inst = mkp::generate_gk({.num_items = 80, .num_constraints = 5}, 8);
  const auto lp = solve_lp_relaxation(inst);
  ASSERT_TRUE(lp.optimal());
  std::size_t fractional = 0;
  for (double x : lp.primal) {
    if (x > 1e-6 && x < 1.0 - 1e-6) ++fractional;
  }
  EXPECT_LE(fractional, 5U);
}

class SimplexOracleSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimplexOracleSweep, LpBoundsIntegerOptimum) {
  const auto inst =
      mkp::generate_gk({.num_items = 15, .num_constraints = 5}, GetParam());
  const auto lp = solve_lp_relaxation(inst);
  ASSERT_TRUE(lp.optimal());
  const auto oracle = exact::brute_force(inst);
  EXPECT_GE(lp.objective, oracle.optimum - 1e-7);
  // And the relaxation cannot be wildly loose on these tiny instances.
  EXPECT_LE(lp.objective, oracle.optimum * 1.5 + 1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexOracleSweep,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88, 99, 110));

}  // namespace
}  // namespace pts::bounds
