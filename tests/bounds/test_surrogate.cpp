#include "bounds/surrogate.hpp"

#include <gtest/gtest.h>

#include "bounds/simplex.hpp"
#include "exact/brute_force.hpp"
#include "mkp/catalog.hpp"
#include "mkp/generator.hpp"

namespace pts::bounds {
namespace {

TEST(Surrogate, SingleConstraintEqualsDantzig) {
  // With m = 1 every multiplier gives the same aggregate: the bound is the
  // plain continuous knapsack bound.
  mkp::Instance inst("one", {3, 4}, {1, 2}, {2});
  const std::vector<double> u{1.0};
  EXPECT_DOUBLE_EQ(surrogate_bound(inst, u), 5.0);
  const std::vector<double> u2{3.5};
  EXPECT_DOUBLE_EQ(surrogate_bound(inst, u2), 5.0);
}

TEST(Surrogate, BoundDominatesOptimumOnCatalog) {
  for (const auto& entry : mkp::catalog()) {
    const auto result = solve_surrogate(entry.instance);
    EXPECT_GE(result.bound, entry.optimum - 1e-9) << entry.instance.name();
  }
}

TEST(Surrogate, RefinementNeverWorseThanAllOnes) {
  const auto inst = mkp::generate_gk({.num_items = 60, .num_constraints = 8}, 5);
  const std::vector<double> ones(8, 1.0);
  const double start = surrogate_bound(inst, ones);
  SurrogateOptions options;
  options.seed_with_lp_duals = false;
  const auto refined = solve_surrogate(inst, options);
  EXPECT_LE(refined.bound, start + 1e-9);
  EXPECT_GE(refined.evaluations, 1U);
}

TEST(Surrogate, LpDualSeedAvailable) {
  const auto inst = mkp::generate_gk({.num_items = 40, .num_constraints = 5}, 6);
  const auto result = solve_surrogate(inst);
  ASSERT_EQ(result.multipliers.size(), 5U);
  for (double u : result.multipliers) EXPECT_GE(u, 0.0);
}

TEST(Surrogate, SurrogateAtLeastAsLooseAsLp) {
  // Theory: LP relaxation dominates (is tighter than or equal to) the
  // continuous surrogate relaxation bound.
  const auto inst = mkp::generate_gk({.num_items = 50, .num_constraints = 6}, 7);
  const auto lp = solve_lp_relaxation(inst);
  ASSERT_TRUE(lp.optimal());
  const auto surrogate = solve_surrogate(inst);
  EXPECT_GE(surrogate.bound, lp.objective - 1e-6);
}

TEST(SurrogateDeath, RejectsNegativeMultiplier) {
  mkp::Instance inst("neg", {1, 1}, {1, 1, 1, 1}, {2, 2});
  const std::vector<double> u{1.0, -0.5};
  EXPECT_DEATH((void)surrogate_bound(inst, u), "non-negative");
}

TEST(SurrogateDeath, RejectsAllZeroMultipliers) {
  mkp::Instance inst("zero", {1, 1}, {1, 1, 1, 1}, {2, 2});
  const std::vector<double> u{0.0, 0.0};
  EXPECT_DEATH((void)surrogate_bound(inst, u), "positive");
}

class SurrogateOracleSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SurrogateOracleSweep, BoundsIntegerOptimum) {
  const auto inst =
      mkp::generate_fp({.num_items = 14, .num_constraints = 6}, GetParam());
  const auto oracle = exact::brute_force(inst);
  const auto result = solve_surrogate(inst);
  EXPECT_GE(result.bound, oracle.optimum - 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SurrogateOracleSweep,
                         ::testing::Values(3, 6, 9, 12, 15, 18));

}  // namespace
}  // namespace pts::bounds
