#include "bounds/dantzig.hpp"

#include <gtest/gtest.h>

#include "exact/brute_force.hpp"
#include "mkp/catalog.hpp"
#include "mkp/generator.hpp"

namespace pts::bounds {
namespace {

TEST(DensityOrder, SortsByProfitPerWeight) {
  const std::vector<double> profits{10, 9, 8};
  const std::vector<double> weights{5, 3, 1};
  // densities: 2, 3, 8 -> order 2, 1, 0.
  const auto order = density_order(profits, weights);
  ASSERT_EQ(order.size(), 3U);
  EXPECT_EQ(order[0], 2U);
  EXPECT_EQ(order[1], 1U);
  EXPECT_EQ(order[2], 0U);
}

TEST(DensityOrder, ZeroWeightFirst) {
  const std::vector<double> profits{1, 100};
  const std::vector<double> weights{0, 10};
  const auto order = density_order(profits, weights);
  EXPECT_EQ(order[0], 0U);
}

TEST(Dantzig, IntegralFillWhenEverythingFits) {
  const std::vector<double> profits{3, 2};
  const std::vector<double> weights{1, 1};
  const auto order = density_order(profits, weights);
  EXPECT_DOUBLE_EQ(dantzig_bound(profits, weights, order, 10.0), 5.0);
}

TEST(Dantzig, FractionalLastItem) {
  // densities 3 and 2; capacity 2 takes item 0 fully (w=1,p=3) and half of
  // item 1 (w=2,p=4) -> 3 + 2 = 5.
  const std::vector<double> profits{3, 4};
  const std::vector<double> weights{1, 2};
  const auto order = density_order(profits, weights);
  EXPECT_DOUBLE_EQ(dantzig_bound(profits, weights, order, 2.0), 5.0);
}

TEST(Dantzig, ZeroCapacityIsZero) {
  const std::vector<double> profits{3, 4};
  const std::vector<double> weights{1, 2};
  const auto order = density_order(profits, weights);
  EXPECT_DOUBLE_EQ(dantzig_bound(profits, weights, order, 0.0), 0.0);
}

TEST(Dantzig, ZeroWeightItemsAlwaysIncluded) {
  const std::vector<double> profits{7, 3};
  const std::vector<double> weights{0, 5};
  const auto order = density_order(profits, weights);
  EXPECT_DOUBLE_EQ(dantzig_bound(profits, weights, order, 0.0), 7.0);
}

TEST(MinConstraintBound, UpperBoundsCatalogOptima) {
  for (const auto& entry : mkp::catalog()) {
    const double bound = min_constraint_bound(entry.instance);
    EXPECT_GE(bound, entry.optimum - 1e-9) << entry.instance.name();
  }
}

TEST(MinConstraintBound, TightOnPureCardinalityInstance) {
  // cat-cardinality: all weights 1, capacity 4: continuous bound = top-4
  // profits = optimum.
  const auto entry = mkp::catalog_entry("cat-cardinality");
  EXPECT_DOUBLE_EQ(min_constraint_bound(entry.instance), entry.optimum);
}

class DantzigOracleSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DantzigOracleSweep, BoundDominatesBruteForceOptimum) {
  const auto inst =
      mkp::generate_gk({.num_items = 14, .num_constraints = 4}, GetParam());
  const auto oracle = exact::brute_force(inst);
  EXPECT_GE(min_constraint_bound(inst), oracle.optimum - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DantzigOracleSweep,
                         ::testing::Values(10, 20, 30, 40, 50, 60, 70, 80));

}  // namespace
}  // namespace pts::bounds
