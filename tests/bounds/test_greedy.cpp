#include "bounds/greedy.hpp"

#include <gtest/gtest.h>

#include "mkp/catalog.hpp"
#include "mkp/generator.hpp"

namespace pts::bounds {
namespace {

using mkp::generate_gk;

TEST(Greedy, ProducesFeasibleSolution) {
  const auto inst = generate_gk({.num_items = 50, .num_constraints = 5}, 1);
  for (auto order : {GreedyOrder::kProfit, GreedyOrder::kDensity,
                     GreedyOrder::kScaledDensity}) {
    const auto s = greedy_construct(inst, order);
    EXPECT_TRUE(s.is_feasible());
    EXPECT_GT(s.value(), 0.0);
  }
}

TEST(Greedy, SolutionIsMaximal) {
  const auto inst = generate_gk({.num_items = 50, .num_constraints = 5}, 2);
  const auto s = greedy_construct(inst);
  for (std::size_t j = 0; j < inst.num_items(); ++j) {
    if (!s.contains(j)) EXPECT_FALSE(s.fits(j)) << "item " << j << " still fits";
  }
}

TEST(Greedy, DensityGreedyFallsIntoTheTrap) {
  // The catalog instance built so density-greedy picks item 0 and scores 10
  // while the optimum is 12.
  const auto entry = mkp::catalog_entry("cat-greedy-trap");
  const auto s = greedy_construct(entry.instance, GreedyOrder::kDensity);
  EXPECT_DOUBLE_EQ(s.value(), 10.0);
  EXPECT_LT(s.value(), entry.optimum);
}

TEST(Greedy, OrderFunctionReturnsPermutation) {
  const auto inst = generate_gk({.num_items = 30, .num_constraints = 3}, 3);
  const auto order = greedy_item_order(inst, GreedyOrder::kDensity);
  ASSERT_EQ(order.size(), 30U);
  std::vector<bool> seen(30, false);
  for (auto j : order) {
    ASSERT_LT(j, 30U);
    EXPECT_FALSE(seen[j]);
    seen[j] = true;
  }
}

TEST(Greedy, ProfitOrderIsDescendingProfit) {
  const auto inst = generate_gk({.num_items = 25, .num_constraints = 3}, 4);
  const auto order = greedy_item_order(inst, GreedyOrder::kProfit);
  for (std::size_t k = 1; k < order.size(); ++k) {
    EXPECT_GE(inst.profit(order[k - 1]), inst.profit(order[k]));
  }
}

TEST(GreedyRandomized, RclOneEqualsDeterministicGreedy) {
  const auto inst = generate_gk({.num_items = 40, .num_constraints = 5}, 5);
  Rng rng(1);
  const auto det = greedy_construct(inst);
  const auto rand1 = greedy_randomized(inst, rng, 1);
  EXPECT_EQ(det, rand1);
}

TEST(GreedyRandomized, FeasibleAndMaximal) {
  const auto inst = generate_gk({.num_items = 40, .num_constraints = 5}, 6);
  Rng rng(2);
  const auto s = greedy_randomized(inst, rng, 4);
  EXPECT_TRUE(s.is_feasible());
  for (std::size_t j = 0; j < inst.num_items(); ++j) {
    if (!s.contains(j)) EXPECT_FALSE(s.fits(j));
  }
}

TEST(GreedyRandomized, DifferentDrawsDiffer) {
  const auto inst = generate_gk({.num_items = 60, .num_constraints = 5}, 7);
  Rng rng(3);
  const auto a = greedy_randomized(inst, rng, 6);
  const auto b = greedy_randomized(inst, rng, 6);
  EXPECT_NE(a, b);  // overwhelmingly likely with rcl 6 on 60 items
}

TEST(RandomFeasible, FeasibleMaximalAndVaried) {
  const auto inst = generate_gk({.num_items = 60, .num_constraints = 5}, 8);
  Rng rng(4);
  const auto a = random_feasible(inst, rng);
  const auto b = random_feasible(inst, rng);
  EXPECT_TRUE(a.is_feasible());
  EXPECT_TRUE(b.is_feasible());
  EXPECT_NE(a, b);
  for (std::size_t j = 0; j < inst.num_items(); ++j) {
    if (!a.contains(j)) EXPECT_FALSE(a.fits(j));
  }
}

TEST(GreedyFill, CompletesPartialSolution) {
  const auto inst = generate_gk({.num_items = 30, .num_constraints = 4}, 9);
  mkp::Solution s(inst);
  greedy_fill(s);
  const double filled = s.value();
  EXPECT_GT(filled, 0.0);
  // Filling an already-maximal solution changes nothing.
  greedy_fill(s);
  EXPECT_DOUBLE_EQ(s.value(), filled);
}

TEST(Repair, NoOpOnFeasible) {
  const auto inst = generate_gk({.num_items = 30, .num_constraints = 4}, 10);
  auto s = greedy_construct(inst);
  const double value = s.value();
  repair_to_feasible(s);
  EXPECT_DOUBLE_EQ(s.value(), value);
}

TEST(Repair, RestoresFeasibility) {
  const auto inst = generate_gk({.num_items = 30, .num_constraints = 4}, 11);
  mkp::Solution s(inst);
  for (std::size_t j = 0; j < inst.num_items(); ++j) s.add(j);  // grossly infeasible
  ASSERT_FALSE(s.is_feasible());
  repair_to_feasible(s);
  EXPECT_TRUE(s.is_feasible());
}

TEST(Repair, DropsWorstRatioFirst) {
  // Two items violating a single constraint: the one with worse
  // weight-sum/profit ratio must go first.
  mkp::Instance inst("r", {10, 1}, {5, 5}, {5});
  mkp::Solution s(inst);
  s.add(0);
  s.add(1);
  ASSERT_FALSE(s.is_feasible());
  repair_to_feasible(s);
  EXPECT_TRUE(s.contains(0));   // ratio 0.5
  EXPECT_FALSE(s.contains(1));  // ratio 5.0 -> dropped
}

class GreedySeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GreedySeedSweep, AllConstructorsFeasibleOnFpInstances) {
  const auto inst = mkp::generate_fp({.num_items = 35, .num_constraints = 8}, GetParam());
  Rng rng(GetParam());
  EXPECT_TRUE(greedy_construct(inst, GreedyOrder::kProfit).is_feasible());
  EXPECT_TRUE(greedy_construct(inst, GreedyOrder::kDensity).is_feasible());
  EXPECT_TRUE(greedy_construct(inst, GreedyOrder::kScaledDensity).is_feasible());
  EXPECT_TRUE(greedy_randomized(inst, rng, 3).is_feasible());
  EXPECT_TRUE(random_feasible(inst, rng).is_feasible());
}

INSTANTIATE_TEST_SUITE_P(Seeds, GreedySeedSweep, ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace pts::bounds
