#include "bounds/lagrangian.hpp"

#include <gtest/gtest.h>

#include "bounds/greedy.hpp"
#include "bounds/simplex.hpp"
#include "exact/brute_force.hpp"
#include "mkp/catalog.hpp"
#include "mkp/generator.hpp"

namespace pts::bounds {
namespace {

TEST(Lagrangian, ZeroMultipliersGiveProfitSum) {
  mkp::Instance inst("z", {3, 5, 7}, {1, 1, 1}, {1});
  const std::vector<double> u{0.0};
  EXPECT_DOUBLE_EQ(lagrangian_value(inst, u), 15.0);
}

TEST(Lagrangian, ValueAtHandPickedMultiplier) {
  // max 3x0 + 2x1, x0 + x1 <= 1.5. At u = 2:
  // L = 2*1.5 + max(0, 3-2) + max(0, 2-2) = 3 + 1 = 4.
  mkp::Instance inst("h", {3, 2}, {1, 1}, {1.5});
  const std::vector<double> u{2.0};
  EXPECT_DOUBLE_EQ(lagrangian_value(inst, u), 4.0);
}

TEST(Lagrangian, EveryMultiplierBoundsCatalogOptima) {
  for (const auto& entry : mkp::catalog()) {
    const std::size_t m = entry.instance.num_constraints();
    for (double scale : {0.0, 0.5, 1.0, 5.0}) {
      const std::vector<double> u(m, scale);
      EXPECT_GE(lagrangian_value(entry.instance, u), entry.optimum - 1e-9)
          << entry.instance.name() << " scale " << scale;
    }
  }
}

TEST(Lagrangian, SubgradientTightensTheBound) {
  const auto inst = mkp::generate_gk({.num_items = 60, .num_constraints = 6}, 3);
  const std::vector<double> zeros(6, 0.0);
  const double at_zero = lagrangian_value(inst, zeros);
  const auto result = solve_lagrangian(inst);
  EXPECT_LT(result.bound, at_zero);
  EXPECT_GT(result.iterations, 0U);
}

TEST(Lagrangian, WarmTargetAccelerates) {
  const auto inst = mkp::generate_gk({.num_items = 60, .num_constraints = 6}, 4);
  LagrangianOptions warm;
  warm.target = greedy_construct(inst).value();
  warm.max_iterations = 100;
  LagrangianOptions cold;
  cold.max_iterations = 100;
  const auto warm_result = solve_lagrangian(inst, warm);
  const auto cold_result = solve_lagrangian(inst, cold);
  // The Polyak step with a real target must not be worse.
  EXPECT_LE(warm_result.bound, cold_result.bound * 1.02);
}

TEST(Lagrangian, DualApproachesLpBound) {
  // Integrality property: the Lagrangian dual equals the LP bound. The
  // subgradient method is approximate, so allow a modest overshoot but no
  // undershoot.
  for (std::uint64_t seed : {5, 6, 7}) {
    const auto inst = mkp::generate_gk({.num_items = 40, .num_constraints = 5}, seed);
    const auto lp = solve_lp_relaxation(inst);
    ASSERT_TRUE(lp.optimal());
    LagrangianOptions options;
    options.max_iterations = 600;
    options.target = greedy_construct(inst).value();
    const auto lagrangian = solve_lagrangian(inst, options);
    EXPECT_GE(lagrangian.bound, lp.objective - 1e-6) << "seed " << seed;
    EXPECT_LE(lagrangian.bound, lp.objective * 1.05) << "seed " << seed;
  }
}

TEST(Lagrangian, InnerSolutionMatchesReportedSize) {
  const auto inst = mkp::generate_gk({.num_items = 50, .num_constraints = 5}, 8);
  const auto result = solve_lagrangian(inst);
  ASSERT_EQ(result.inner_solution.size(), 50U);
  ASSERT_EQ(result.multipliers.size(), 5U);
  for (double u : result.multipliers) EXPECT_GE(u, 0.0);
}

TEST(LagrangianDeath, NegativeMultiplierRejected) {
  mkp::Instance inst("n", {1.0}, {1.0}, {1.0});
  const std::vector<double> u{-1.0};
  EXPECT_DEATH((void)lagrangian_value(inst, u), ">= 0");
}

class LagrangianOracleSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LagrangianOracleSweep, BoundsTheIntegerOptimum) {
  const auto inst =
      mkp::generate_fp({.num_items = 14, .num_constraints = 5}, GetParam());
  const auto oracle = exact::brute_force(inst);
  const auto result = solve_lagrangian(inst);
  EXPECT_GE(result.bound, oracle.optimum - 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LagrangianOracleSweep,
                         ::testing::Values(11, 22, 33, 44, 55));

}  // namespace
}  // namespace pts::bounds
