// Core-problem soundness (bounds/core.hpp): the reduction must never exclude
// a verified optimum, must engage only when it fixes enough to pay for the
// remapping, and must be deterministic — the same instance and options
// rederive the identical fixing (the property the snapshot resume path
// stands on). Optima come from the embedded catalog (hand-verified) and the
// exhaustive brute-force oracle on small generated instances.
#include "bounds/core.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "bounds/greedy.hpp"
#include "exact/brute_force.hpp"
#include "mkp/catalog.hpp"
#include "mkp/generator.hpp"

namespace pts::bounds {
namespace {

CoreOptions engaged_options() {
  CoreOptions options;
  options.enabled = true;
  options.min_fixed_fraction = 0.0;  // engage on any successful fixing
  return options;
}

TEST(Core, NeverExcludesTheCatalogOptimum) {
  // Every embedded instance has a hand-verified optimum. Whatever the core
  // fixes, lifting the residual's exact optimum must reproduce it.
  for (const auto& entry : mkp::catalog()) {
    const auto core = build_core_problem(entry.instance, engaged_options());
    if (!core.use_core) continue;  // LP declined; nothing was cut
    double best = core.lower_bound;  // the bound's solution survives by construction
    if (core.solved_outright()) {
      best = std::max(best, core.lift(entry.instance, nullptr).value());
    } else {
      const auto residual = exact::brute_force(core.core_instance());
      mkp::Solution residual_best = residual.best;
      const auto full = core.lift(entry.instance, &residual_best);
      EXPECT_DOUBLE_EQ(full.value(), core.banked_profit() + residual.optimum);
      best = std::max(best, full.value());
    }
    EXPECT_DOUBLE_EQ(best, entry.optimum) << entry.instance.name();
  }
}

TEST(Core, NeverExcludesTheBruteForceOptimumOnGeneratedInstances) {
  for (std::uint64_t seed : {1, 2, 3, 5, 8, 13, 21}) {
    const auto inst = mkp::generate_uncorrelated(17, 4, seed, 150.0, 0.5);
    const auto oracle = exact::brute_force(inst);
    const auto core = build_core_problem(inst, engaged_options());
    if (!core.use_core) continue;
    double best = core.lower_bound;
    if (core.solved_outright()) {
      best = std::max(best, core.lift(inst, nullptr).value());
    } else {
      const auto residual = exact::brute_force(core.core_instance());
      best = std::max(best, core.banked_profit() + residual.optimum);
    }
    EXPECT_DOUBLE_EQ(best, oracle.optimum) << "seed " << seed;
  }
}

TEST(Core, FixingsAgreeWithTheOptimumItemByItem) {
  // Stronger than value preservation: whenever the optimum strictly beats
  // the bound the fixing used, every fixed variable must take its fixed
  // value IN the optimum (gap_eps = 0 preserves ties; strict improvement is
  // never cut).
  for (std::uint64_t seed : {4, 6, 9}) {
    const auto inst = mkp::generate_uncorrelated(16, 3, seed, 120.0, 0.5);
    const auto oracle = exact::brute_force(inst);
    const auto core = build_core_problem(inst, engaged_options());
    if (!core.use_core || oracle.optimum <= core.lower_bound) continue;
    for (std::size_t j = 0; j < inst.num_items(); ++j) {
      if (core.fixing.status[j] == FixedValue::kZero) {
        EXPECT_FALSE(oracle.best.contains(j)) << "seed " << seed << " item " << j;
      } else if (core.fixing.status[j] == FixedValue::kOne) {
        EXPECT_TRUE(oracle.best.contains(j)) << "seed " << seed << " item " << j;
      }
    }
  }
}

TEST(Core, IsDeterministic) {
  const auto inst = mkp::generate_gk({.num_items = 120, .num_constraints = 5}, 7);
  const auto a = build_core_problem(inst, engaged_options());
  const auto b = build_core_problem(inst, engaged_options());
  EXPECT_EQ(a.use_core, b.use_core);
  EXPECT_EQ(a.fixing.status, b.fixing.status);
  EXPECT_DOUBLE_EQ(a.lower_bound, b.lower_bound);
  if (a.use_core && !a.solved_outright()) {
    EXPECT_EQ(a.core_instance().num_items(), b.core_instance().num_items());
  }
}

TEST(Core, MinFixedFractionGate) {
  // An impossible threshold keeps the core disengaged even when the LP
  // fixes variables — the fixing is still reported for telemetry.
  const auto inst = mkp::generate_uncorrelated(60, 3, 2, 1000.0, 0.5);
  CoreOptions demanding = engaged_options();
  demanding.min_fixed_fraction = 1.1;
  const auto core = build_core_problem(inst, demanding);
  EXPECT_FALSE(core.use_core);
  EXPECT_TRUE(core.fixing.lp_solved);
}

TEST(Core, LowerBoundHintRaisesTheBound) {
  const auto inst = mkp::generate_uncorrelated(60, 3, 2, 1000.0, 0.5);
  const double greedy = greedy_construct(inst).value();
  CoreOptions hinted = engaged_options();
  hinted.lower_bound_hint = greedy + 10.0;
  const auto core = build_core_problem(inst, hinted);
  EXPECT_DOUBLE_EQ(core.lower_bound, greedy + 10.0);
  // A (possibly infeasible-to-attain) tighter bound can only fix more.
  const auto baseline = build_core_problem(inst, engaged_options());
  EXPECT_GE(core.fixing.fixed_total(), baseline.fixing.fixed_total());
}

TEST(Core, CoreInstanceShrinksAndBanksProfit) {
  const auto inst = mkp::generate_uncorrelated(60, 3, 2, 1000.0, 0.5);
  const auto core = build_core_problem(inst, engaged_options());
  ASSERT_TRUE(core.use_core);
  ASSERT_FALSE(core.solved_outright());
  EXPECT_LT(core.core_instance().num_items(), inst.num_items());
  EXPECT_EQ(core.core_instance().num_items(),
            inst.num_items() - core.fixing.fixed_total());
  double banked = 0.0;
  for (std::size_t j = 0; j < inst.num_items(); ++j) {
    if (core.fixing.status[j] == FixedValue::kOne) banked += inst.profit(j);
  }
  EXPECT_DOUBLE_EQ(core.banked_profit(), banked);
}

}  // namespace
}  // namespace pts::bounds
