// Degenerate LP shapes: duplicated columns, non-binding constraints,
// all-zero rows — the basis handling must survive all of them.
#include <gtest/gtest.h>

#include "bounds/simplex.hpp"
#include "exact/brute_force.hpp"
#include "mkp/instance.hpp"

namespace pts::bounds {
namespace {

TEST(SimplexDegenerate, DuplicateColumns) {
  // Three identical items; capacity for 1.5 of them: LP = 1.5 * profit.
  mkp::Instance inst("dup", {10, 10, 10}, {2, 2, 2}, {3});
  const auto lp = solve_lp_relaxation(inst);
  ASSERT_TRUE(lp.optimal());
  EXPECT_NEAR(lp.objective, 15.0, 1e-9);
}

TEST(SimplexDegenerate, NonBindingConstraint) {
  // Constraint 1 can never bind (capacity exceeds the row sum): the LP must
  // behave exactly like the single-constraint problem.
  mkp::Instance two("two", {3, 4}, {1, 2, 1, 1}, {2, 100});
  mkp::Instance one("one", {3, 4}, {1, 2}, {2});
  const auto lp_two = solve_lp_relaxation(two);
  const auto lp_one = solve_lp_relaxation(one);
  ASSERT_TRUE(lp_two.optimal());
  ASSERT_TRUE(lp_one.optimal());
  EXPECT_NEAR(lp_two.objective, lp_one.objective, 1e-9);
  // The slack constraint's dual must be zero (complementary slackness).
  EXPECT_NEAR(lp_two.duals[1], 0.0, 1e-9);
}

TEST(SimplexDegenerate, AllZeroWeightRow) {
  // A constraint touching no item: harmless, dual zero.
  mkp::Instance inst("zrow", {5, 7}, {1, 1, 0, 0}, {1, 3});
  const auto lp = solve_lp_relaxation(inst);
  ASSERT_TRUE(lp.optimal());
  EXPECT_NEAR(lp.duals[1], 0.0, 1e-9);
  EXPECT_NEAR(lp.objective, 7.0, 1e-9);  // take item 1 fully (density 7 > 5)
}

TEST(SimplexDegenerate, ZeroWeightItemEnters) {
  // Item 0 consumes nothing: LP takes it at 1 regardless.
  mkp::Instance inst("zitem", {9, 4}, {0, 3}, {3});
  const auto lp = solve_lp_relaxation(inst);
  ASSERT_TRUE(lp.optimal());
  EXPECT_NEAR(lp.primal[0], 1.0, 1e-9);
  EXPECT_NEAR(lp.objective, 13.0, 1e-9);
}

TEST(SimplexDegenerate, IdenticalRowsTwice) {
  // The same constraint repeated: the basis matrix risks singularity if
  // both slacks leave; the solver must still finish.
  mkp::Instance inst("twin", {3, 5, 2}, {1, 2, 1, 1, 2, 1}, {2, 2});
  const auto lp = solve_lp_relaxation(inst);
  ASSERT_TRUE(lp.optimal());
  const auto oracle = exact::brute_force(inst);
  EXPECT_GE(lp.objective, oracle.optimum - 1e-9);
}

TEST(SimplexDegenerate, ReducedCostsSignPattern) {
  const mkp::Instance inst("signs", {3, 2, 9}, {1, 1, 3}, {3});
  const auto lp = solve_lp_relaxation(inst);
  ASSERT_TRUE(lp.optimal());
  ASSERT_EQ(lp.reduced_costs.size(), 3U);
  for (std::size_t j = 0; j < 3; ++j) {
    if (lp.primal[j] <= 1e-9) {
      EXPECT_LE(lp.reduced_costs[j], 1e-7) << "at-zero variable " << j;
    } else if (lp.primal[j] >= 1.0 - 1e-9) {
      EXPECT_GE(lp.reduced_costs[j], -1e-7) << "at-one variable " << j;
    }
  }
}

TEST(SimplexDegenerate, SingleVariableSingleConstraint) {
  mkp::Instance inst("1x1", {5.0}, {2.0}, {1.0});
  const auto lp = solve_lp_relaxation(inst);
  ASSERT_TRUE(lp.optimal());
  EXPECT_NEAR(lp.objective, 2.5, 1e-9);  // x = 0.5
  EXPECT_NEAR(lp.primal[0], 0.5, 1e-9);
}

}  // namespace
}  // namespace pts::bounds
