// Resume semantics (DESIGN.md §9): a run killed at a round boundary and
// resumed from its checkpoint must replay the exact draw sequence of an
// uninterrupted run — bit-identical final best — because the checkpoint
// captures the master RNG raw state and every slave record, and slave-side
// randomness derives from (seed, slave, round) alone.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "mkp/generator.hpp"
#include "obs/anytime.hpp"
#include "parallel/runner.hpp"
#include "parallel/snapshot.hpp"

namespace pts::parallel {
namespace {

mkp::Instance test_instance() {
  return mkp::generate_gk({.num_items = 60, .num_constraints = 5}, 23);
}

ParallelConfig cts2_config(std::size_t rounds) {
  ParallelConfig config;
  config.mode = CooperationMode::kCooperativeAdaptive;
  config.num_slaves = 3;
  config.search_iterations = rounds;
  config.work_per_slave_round = 1'200;
  config.seed = 41;
  return config;
}

std::string temp_path(const char* name) { return ::testing::TempDir() + name; }

TEST(Resume, ResumedRunMatchesUninterruptedBitForBit) {
  const auto inst = test_instance();

  // Reference: 6 rounds straight through, no checkpointing at all.
  const auto uninterrupted = run_parallel_tabu_search(inst, cts2_config(6));
  ASSERT_TRUE(uninterrupted.status.ok());

  // "Crashed" run: stop after 3 rounds, leaving a checkpoint behind (the
  // final-checkpoint write covers the kill-at-a-round-boundary case).
  const auto path = temp_path("resume_equiv.ckpt");
  auto first_half = cts2_config(3);
  first_half.checkpoint_path = path;
  const auto partial = run_parallel_tabu_search(inst, first_half);
  ASSERT_TRUE(partial.status.ok());

  auto checkpoint = snapshot::load_checkpoint(path, inst);
  ASSERT_TRUE(checkpoint) << checkpoint.status().to_string();
  EXPECT_EQ(checkpoint->next_round, 3U);

  // Resumed run: same config asking for 6 rounds total; executes 3..5.
  auto second_half = cts2_config(6);
  second_half.resume = &*checkpoint;
  const auto resumed = run_parallel_tabu_search(inst, second_half);
  ASSERT_TRUE(resumed.status.ok());

  EXPECT_EQ(resumed.master.resumed_from_round, 3U);
  EXPECT_EQ(resumed.master.rounds_completed, 6U);
  EXPECT_DOUBLE_EQ(resumed.best_value, uninterrupted.best_value);
  EXPECT_EQ(resumed.best, uninterrupted.best);
  EXPECT_EQ(resumed.total_moves, uninterrupted.total_moves);
  std::remove(path.c_str());
}

TEST(Resume, IndependentModeAlsoResumesBitForBit) {
  // ITS shares nothing between slaves, so any divergence here isolates a
  // bug in the per-slave record capture rather than in pool reconstruction.
  const auto inst = test_instance();
  auto reference_config = cts2_config(5);
  reference_config.mode = CooperationMode::kIndependent;
  const auto reference = run_parallel_tabu_search(inst, reference_config);

  const auto path = temp_path("resume_its.ckpt");
  auto first = reference_config;
  first.search_iterations = 2;
  first.checkpoint_path = path;
  ASSERT_TRUE(run_parallel_tabu_search(inst, first).status.ok());

  auto checkpoint = snapshot::load_checkpoint(path, inst);
  ASSERT_TRUE(checkpoint);
  auto rest = reference_config;
  rest.resume = &*checkpoint;
  const auto resumed = run_parallel_tabu_search(inst, rest);
  ASSERT_TRUE(resumed.status.ok());
  EXPECT_DOUBLE_EQ(resumed.best_value, reference.best_value);
  EXPECT_EQ(resumed.best, reference.best);
  std::remove(path.c_str());
}

TEST(Resume, CheckpointCadenceCountsWrites) {
  const auto inst = test_instance();
  const auto path = temp_path("resume_cadence.ckpt");

  // Every 2 rounds over 6 rounds: writes after rounds 2, 4 and 6; the final
  // round's cadence write doubles as the final checkpoint (no extra write).
  auto config = cts2_config(6);
  config.checkpoint_path = path;
  config.checkpoint_every_rounds = 2;
  const auto result = run_parallel_tabu_search(inst, config);
  ASSERT_TRUE(result.status.ok());
  EXPECT_EQ(result.master.checkpoints_written, 3U);
  EXPECT_EQ(result.master.checkpoint_failures, 0U);

  // Cadence 4 over 6 rounds: one cadence write plus the final checkpoint.
  auto sparse = cts2_config(6);
  sparse.checkpoint_path = path;
  sparse.checkpoint_every_rounds = 4;
  const auto sparse_result = run_parallel_tabu_search(inst, sparse);
  ASSERT_TRUE(sparse_result.status.ok());
  EXPECT_EQ(sparse_result.master.checkpoints_written, 2U);

  // The surviving file is always the final state.
  auto cp = snapshot::load_checkpoint(path, inst);
  ASSERT_TRUE(cp);
  EXPECT_EQ(cp->next_round, 6U);
  std::remove(path.c_str());
}

TEST(Resume, UnwritableCheckpointPathDegradesGracefully) {
  // Durability must never kill the search it protects: the run completes,
  // the failures are counted.
  const auto inst = test_instance();
  auto config = cts2_config(3);
  config.checkpoint_path = "/nonexistent-dir/sub/never.ckpt";
  const auto result = run_parallel_tabu_search(inst, config);
  ASSERT_TRUE(result.status.ok());
  EXPECT_EQ(result.master.rounds_completed, 3U);
  EXPECT_EQ(result.master.checkpoints_written, 0U);
  EXPECT_GE(result.master.checkpoint_failures, 1U);
  EXPECT_GT(result.best_value, 0.0);
}

TEST(Resume, AnytimeEnvelopeReanchorsAtTheCheckpointedBest) {
  if (!obs::kTelemetryCompiled) GTEST_SKIP() << "telemetry compiled out";
  const auto inst = test_instance();
  const auto path = temp_path("resume_anytime.ckpt");
  auto first = cts2_config(3);
  first.checkpoint_path = path;
  ASSERT_TRUE(run_parallel_tabu_search(inst, first).status.ok());

  auto checkpoint = snapshot::load_checkpoint(path, inst);
  ASSERT_TRUE(checkpoint);
  auto rest = cts2_config(6);
  rest.resume = &*checkpoint;
  const auto resumed = run_parallel_tabu_search(inst, rest);
  ASSERT_TRUE(resumed.status.ok());

  // The resumed curve's first global-envelope sample re-anchors at the
  // checkpointed best and the carried-over elapsed time, so stitched curves
  // across a restart stay monotone in both axes.
  const obs::AnytimeSample* first_global = nullptr;
  for (const auto& sample : resumed.master.anytime) {
    if (sample.source == obs::kGlobalSource) {
      first_global = &sample;
      break;
    }
  }
  ASSERT_NE(first_global, nullptr);
  EXPECT_DOUBLE_EQ(first_global->value, checkpoint->best.value());
  EXPECT_DOUBLE_EQ(first_global->seconds, checkpoint->elapsed_seconds);
  EXPECT_EQ(first_global->work_units, checkpoint->total_moves);

  // And the envelope never dips below the checkpointed best afterwards.
  for (const auto& sample : resumed.master.anytime) {
    if (sample.source == obs::kGlobalSource) {
      EXPECT_GE(sample.value, checkpoint->best.value());
    }
  }
  std::remove(path.c_str());
}

TEST(Resume, CoreReducedRunResumesBitForBitViaPath) {
  // A core-reduced run's checkpoint holds core-space solutions; resuming it
  // through resume_from_path rederives the identical fixing, validates the
  // checkpointed CoreSection against it, and replays the remaining rounds in
  // core space — bit-identical to a run that was never interrupted.
  const auto inst = mkp::generate_uncorrelated(80, 3, 3, 1000.0, 0.5);
  auto base = cts2_config(6);
  base.core.enabled = true;
  base.core.min_fixed_fraction = 0.0;

  const auto uninterrupted = run_parallel_tabu_search(inst, base);
  ASSERT_TRUE(uninterrupted.status.ok());
  ASSERT_TRUE(uninterrupted.core_engaged)
      << "fixing did not engage; pick a different instance";

  const auto path = temp_path("resume_core.ckpt");
  auto first_half = base;
  first_half.search_iterations = 3;
  first_half.checkpoint_path = path;
  const auto partial = run_parallel_tabu_search(inst, first_half);
  ASSERT_TRUE(partial.status.ok());
  ASSERT_TRUE(partial.core_engaged);

  auto second_half = base;
  second_half.checkpoint_path.clear();
  second_half.resume_from_path = path;
  const auto resumed = run_parallel_tabu_search(inst, second_half);
  ASSERT_TRUE(resumed.status.ok()) << resumed.status.to_string();
  EXPECT_TRUE(resumed.core_engaged);
  EXPECT_EQ(resumed.master.resumed_from_round, 3U);
  EXPECT_EQ(resumed.master.rounds_completed, 6U);
  EXPECT_DOUBLE_EQ(resumed.best_value, uninterrupted.best_value);
  EXPECT_EQ(resumed.best, uninterrupted.best);
  EXPECT_EQ(resumed.total_moves, uninterrupted.total_moves);
  std::remove(path.c_str());
}

TEST(Resume, CoreCheckpointRefusesACoreDisabledResume) {
  // The checkpoint's solutions live in core coordinates, so a full-space
  // run must not be allowed to adopt them: the fingerprint (which is the
  // CORE instance's) fails against the full instance and the run errors out
  // instead of resuming garbage.
  const auto inst = mkp::generate_uncorrelated(80, 3, 3, 1000.0, 0.5);
  const auto path = temp_path("resume_core_mismatch.ckpt");
  auto core_run = cts2_config(3);
  core_run.core.enabled = true;
  core_run.core.min_fixed_fraction = 0.0;
  core_run.checkpoint_path = path;
  const auto partial = run_parallel_tabu_search(inst, core_run);
  ASSERT_TRUE(partial.status.ok());
  ASSERT_TRUE(partial.core_engaged);

  auto full_run = cts2_config(6);
  full_run.resume_from_path = path;
  const auto refused = run_parallel_tabu_search(inst, full_run);
  EXPECT_FALSE(refused.status.ok());
  EXPECT_EQ(refused.status.code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(Resume, MissingResumePathStartsFresh) {
  // resume_from_path names a file that does not exist: that is the normal
  // first launch of a crash-safe deployment, not an error.
  const auto inst = test_instance();
  auto config = cts2_config(3);
  config.resume_from_path = temp_path("never_written.ckpt");
  const auto result = run_parallel_tabu_search(inst, config);
  ASSERT_TRUE(result.status.ok()) << result.status.to_string();
  EXPECT_EQ(result.master.resumed_from_round, 0U);
  EXPECT_EQ(result.master.rounds_completed, 3U);
}

}  // namespace
}  // namespace pts::parallel
