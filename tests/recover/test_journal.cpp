// Job-journal semantics: the append-only submitted/resolved log replays to
// exactly the jobs whose futures never resolved, tolerates the torn tail a
// kill -9 mid-append leaves behind, refuses to parse foreign files, and —
// at the service level — carries shutdown-stranded jobs into the next
// incarnation as JobOrigin::kResumed.
#include "service/journal.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "mkp/generator.hpp"
#include "obs/metrics.hpp"
#include "parallel/snapshot.hpp"
#include "service/solver_service.hpp"

namespace pts::service::journal {
namespace {

mkp::Instance test_instance(std::uint64_t seed) {
  return mkp::generate_gk({.num_items = 40, .num_constraints = 4}, seed);
}

std::string temp_path(const char* name) { return ::testing::TempDir() + name; }

/// Submits through the redesigned aggregate API; a refusal fails the test.
JobHandle must_submit(SolverService& server, std::uint64_t seed,
                      JobOptions options) {
  SubmitRequest request;
  request.instance = std::make_shared<const mkp::Instance>(test_instance(seed));
  request.priority = options.priority;
  request.deadline_seconds = options.deadline_seconds;
  request.options = std::move(options);
  auto handle = server.submit(std::move(request));
  EXPECT_TRUE(handle) << handle.status().to_string();
  if (!handle) return {};
  return std::move(*handle);
}

JobOptions fancy_options() {
  JobOptions options;
  options.preset = "thorough";
  options.time_budget_seconds = 3.5;
  options.deadline_seconds = 12.0;
  options.priority = 7;
  options.seed = 99;
  options.target_value = 1234.5;
  options.mode = parallel::CooperationMode::kCooperativePool;
  options.backend = parallel::Backend::kProcess;
  options.proc.worker_path = "/opt/bin/pts_worker";
  options.proc.max_respawns_per_slave = 5;
  options.proc.breaker_threshold = 2;
  return options;
}

TEST(Journal, JobOptionsRoundTripEveryField) {
  const auto options = fancy_options();
  parallel::codec::Writer w;
  put_job_options(w, options);
  const auto bytes = w.take();
  parallel::codec::Reader r(bytes);
  const auto decoded = get_job_options(r);
  ASSERT_TRUE(decoded) << decoded.status().to_string();
  EXPECT_EQ(decoded->preset, "thorough");
  EXPECT_DOUBLE_EQ(decoded->time_budget_seconds, 3.5);
  ASSERT_TRUE(decoded->deadline_seconds);
  EXPECT_DOUBLE_EQ(*decoded->deadline_seconds, 12.0);
  EXPECT_EQ(decoded->priority, 7);
  EXPECT_EQ(decoded->seed, 99U);
  ASSERT_TRUE(decoded->target_value);
  EXPECT_DOUBLE_EQ(*decoded->target_value, 1234.5);
  ASSERT_TRUE(decoded->mode);
  EXPECT_EQ(*decoded->mode, parallel::CooperationMode::kCooperativePool);
  ASSERT_TRUE(decoded->backend);
  EXPECT_EQ(*decoded->backend, parallel::Backend::kProcess);
  EXPECT_EQ(decoded->proc.worker_path, "/opt/bin/pts_worker");
  EXPECT_EQ(decoded->proc.max_respawns_per_slave, 5U);
  EXPECT_EQ(decoded->proc.breaker_threshold, 2U);
}

TEST(Journal, JobOptionsCoreReductionFlagRoundTrips) {
  JobOptions options;
  options.core_reduction = true;
  parallel::codec::Writer w;
  put_job_options(w, options);
  const auto bytes = w.take();
  parallel::codec::Reader r(bytes);
  const auto decoded = get_job_options(r);
  ASSERT_TRUE(decoded) << decoded.status().to_string();
  EXPECT_TRUE(decoded->core_reduction);
}

TEST(Journal, V1OptionsBodyDecodesWithCoreReductionOff) {
  // A v1 journal's options body ends before the core_reduction byte. Decode
  // the truncated body under version 1: every v1 field intact, flag off.
  const auto options = fancy_options();
  parallel::codec::Writer w;
  put_job_options(w, options);
  auto bytes = w.take();
  bytes.pop_back();  // strip the v2 tail (one flag byte)
  parallel::codec::Reader r(bytes);
  const auto decoded = get_job_options(r, /*version=*/1);
  ASSERT_TRUE(decoded) << decoded.status().to_string();
  EXPECT_TRUE(r.done());
  EXPECT_EQ(decoded->preset, "thorough");
  EXPECT_EQ(decoded->priority, 7);
  EXPECT_FALSE(decoded->core_reduction);
}

TEST(Journal, DispatchRecordsAttachStartSequencesToOpenJobs) {
  const auto path = temp_path("journal_dispatch.jnl");
  {
    auto opened = JobJournal::open_truncate(path);
    ASSERT_TRUE(opened) << opened.status().to_string();
    auto& journal = **opened;
    ASSERT_TRUE(journal.append_submitted(1, test_instance(1), JobOptions{}).ok());
    ASSERT_TRUE(journal.append_submitted(2, test_instance(2), JobOptions{}).ok());
    ASSERT_TRUE(journal.append_submitted(3, test_instance(3), JobOptions{}).ok());
    ASSERT_TRUE(journal.append_dispatched(2, 1).ok());
    ASSERT_TRUE(journal.append_dispatched(1, 2).ok());
    // Job 2 finished: its dispatch record is struck along with the submission.
    ASSERT_TRUE(journal.append_resolved(2).ok());
  }
  auto recovered = recover_jobs(path);
  ASSERT_TRUE(recovered) << recovered.status().to_string();
  ASSERT_EQ(recovered->size(), 2U);
  EXPECT_EQ((*recovered)[0].id, 1U);
  EXPECT_EQ((*recovered)[0].dispatch_sequence, 2U);
  EXPECT_EQ((*recovered)[1].id, 3U);
  EXPECT_EQ((*recovered)[1].dispatch_sequence, 0U);  // never dispatched
  std::remove(path.c_str());
}

TEST(Journal, ReplayKeepsOnlyUnresolvedSubmissions) {
  const auto path = temp_path("journal_replay.jnl");
  {
    auto opened = JobJournal::open_truncate(path);
    ASSERT_TRUE(opened) << opened.status().to_string();
    auto& journal = **opened;
    ASSERT_TRUE(journal.append_submitted(1, test_instance(1), JobOptions{}).ok());
    ASSERT_TRUE(journal.append_submitted(2, test_instance(2), fancy_options()).ok());
    ASSERT_TRUE(journal.append_submitted(3, test_instance(3), JobOptions{}).ok());
    ASSERT_TRUE(journal.append_resolved(2).ok());
  }
  auto recovered = recover_jobs(path);
  ASSERT_TRUE(recovered) << recovered.status().to_string();
  ASSERT_EQ(recovered->size(), 2U);
  EXPECT_EQ((*recovered)[0].id, 1U);
  EXPECT_EQ((*recovered)[1].id, 3U);
  // The instance travels intact: fingerprints match what was submitted.
  EXPECT_EQ(parallel::snapshot::instance_fingerprint((*recovered)[0].instance),
            parallel::snapshot::instance_fingerprint(test_instance(1)));
  EXPECT_EQ(parallel::snapshot::instance_fingerprint((*recovered)[1].instance),
            parallel::snapshot::instance_fingerprint(test_instance(3)));
  std::remove(path.c_str());
}

TEST(Journal, TornTailRecordIsDiscardedCleanly) {
  const auto path = temp_path("journal_torn.jnl");
  {
    auto opened = JobJournal::open_truncate(path);
    ASSERT_TRUE(opened);
    ASSERT_TRUE((*opened)->append_submitted(1, test_instance(1), JobOptions{}).ok());
    ASSERT_TRUE((*opened)->append_submitted(2, test_instance(2), JobOptions{}).ok());
  }
  // A kill -9 mid-append leaves a partial last record: cut 5 bytes off.
  const auto full_size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full_size - 5);
  auto recovered = recover_jobs(path);
  ASSERT_TRUE(recovered) << recovered.status().to_string();
  ASSERT_EQ(recovered->size(), 1U);
  EXPECT_EQ((*recovered)[0].id, 1U);
  std::remove(path.c_str());
}

TEST(Journal, CorruptTailCrcStopsReplayAtTheCrashPoint) {
  const auto path = temp_path("journal_crc.jnl");
  {
    auto opened = JobJournal::open_truncate(path);
    ASSERT_TRUE(opened);
    ASSERT_TRUE((*opened)->append_submitted(1, test_instance(1), JobOptions{}).ok());
    ASSERT_TRUE((*opened)->append_submitted(2, test_instance(2), JobOptions{}).ok());
  }
  // Flip the last byte (inside record 2's body): its CRC no longer matches,
  // so replay treats it as the torn tail — record 1 is still trusted.
  std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
  file.seekg(-1, std::ios::end);
  const char last = static_cast<char>(file.get());
  file.seekp(-1, std::ios::end);
  file.put(static_cast<char>(last ^ 0x40));
  file.close();

  auto recovered = recover_jobs(path);
  ASSERT_TRUE(recovered);
  ASSERT_EQ(recovered->size(), 1U);
  EXPECT_EQ((*recovered)[0].id, 1U);
  std::remove(path.c_str());
}

TEST(Journal, ForeignFilesAreErrorsNotEmptyJournals) {
  const auto path = temp_path("journal_foreign.jnl");
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a job journal";
  }
  const auto garbage = recover_jobs(path);
  ASSERT_FALSE(garbage);
  EXPECT_NE(garbage.status().to_string().find("magic"), std::string::npos);

  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "PTSJ" << static_cast<char>(kJournalVersion + 1);
  }
  const auto future = recover_jobs(path);
  ASSERT_FALSE(future);
  EXPECT_NE(future.status().to_string().find("version"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Journal, MissingFileIsAnEmptyJournal) {
  const auto recovered = recover_jobs(temp_path("no_such_journal.jnl"));
  ASSERT_TRUE(recovered);
  EXPECT_TRUE(recovered->empty());
}

TEST(Journal, CompactRewritesToExactlyTheLiveSet) {
  const auto path = temp_path("journal_compact.jnl");
  auto opened = JobJournal::open_truncate(path);
  ASSERT_TRUE(opened) << opened.status().to_string();
  auto& journal = **opened;

  std::vector<mkp::Instance> instances;
  for (std::uint64_t k = 1; k <= 6; ++k) instances.push_back(test_instance(k));
  const JobOptions options;
  for (std::uint64_t k = 1; k <= 6; ++k) {
    ASSERT_TRUE(journal.append_submitted(k, instances[k - 1], options).ok());
  }
  ASSERT_TRUE(journal.append_dispatched(2, 1).ok());
  ASSERT_TRUE(journal.append_dispatched(4, 2).ok());
  ASSERT_TRUE(journal.append_resolved(2).ok());
  ASSERT_TRUE(journal.append_resolved(5).ok());
  ASSERT_TRUE(journal.append_resolved(6).ok());
  EXPECT_EQ(journal.records_appended(), 11U);
  const auto before = std::filesystem::file_size(path);

  // Still open: 1 and 3 queued, 4 running with start sequence 2.
  const std::vector<LiveJob> live = {
      {1, &instances[0], &options, 0},
      {3, &instances[2], &options, 0},
      {4, &instances[3], &options, 2},
  };
  ASSERT_TRUE(journal.compact(live).ok());
  // 3 kSubmitted + 1 kDispatched — the counter restarts at the image size.
  EXPECT_EQ(journal.records_appended(), 4U);
  EXPECT_LT(std::filesystem::file_size(path), before);

  // Appends after the rewrite land in the NEW file (the renamed inode).
  ASSERT_TRUE(journal.append_submitted(7, instances[0], options).ok());
  ASSERT_TRUE(journal.append_resolved(1).ok());
  EXPECT_EQ(journal.records_appended(), 6U);

  auto recovered = recover_jobs(path);
  ASSERT_TRUE(recovered) << recovered.status().to_string();
  ASSERT_EQ(recovered->size(), 3U);
  EXPECT_EQ((*recovered)[0].id, 3U);
  EXPECT_EQ((*recovered)[0].dispatch_sequence, 0U);
  EXPECT_EQ((*recovered)[1].id, 4U);
  EXPECT_EQ((*recovered)[1].dispatch_sequence, 2U);  // survived the rewrite
  EXPECT_EQ((*recovered)[2].id, 7U);
  EXPECT_EQ(parallel::snapshot::instance_fingerprint((*recovered)[1].instance),
            parallel::snapshot::instance_fingerprint(instances[3]));
  std::remove(path.c_str());
}

TEST(Journal, CompactWithNothingOpenLeavesJustTheHeader) {
  const auto path = temp_path("journal_compact_empty.jnl");
  auto opened = JobJournal::open_truncate(path);
  ASSERT_TRUE(opened) << opened.status().to_string();
  auto& journal = **opened;
  const auto inst = test_instance(1);
  ASSERT_TRUE(journal.append_submitted(1, inst, JobOptions{}).ok());
  ASSERT_TRUE(journal.append_resolved(1).ok());

  ASSERT_TRUE(journal.compact({}).ok());
  EXPECT_EQ(journal.records_appended(), 0U);
  EXPECT_EQ(std::filesystem::file_size(path), kJournalHeaderBytes);
  {
    auto recovered = recover_jobs(path);
    ASSERT_TRUE(recovered) << recovered.status().to_string();
    EXPECT_TRUE(recovered->empty());
  }

  // The journal is still live after shrinking to nothing.
  ASSERT_TRUE(journal.append_submitted(2, inst, JobOptions{}).ok());
  auto recovered = recover_jobs(path);
  ASSERT_TRUE(recovered);
  ASSERT_EQ(recovered->size(), 1U);
  EXPECT_EQ((*recovered)[0].id, 2U);
  std::remove(path.c_str());
}

TEST(Journal, ServiceCompactsPeriodicallyWithoutRestart) {
  // A long-lived service must not grow its journal without bound: with the
  // compaction cadence configured, a batch of completed jobs shrinks the file
  // back to (near) the header while the service keeps running — no restart.
  const auto path = temp_path("journal_service_compact.jnl");
  std::remove(path.c_str());
  const auto compactions_before =
      obs::metrics().counter("service_journal_compactions_total").value();

  ServiceConfig config;
  config.num_workers = 2;
  config.journal_path = path;
  config.journal_compact_every_records = 8;
  SolverService server(config);

  std::vector<JobHandle> submissions;
  for (std::uint64_t k = 1; k <= 12; ++k) {
    JobOptions options;
    options.preset = "quick";
    options.time_budget_seconds = 0.05;
    options.seed = k;
    submissions.push_back(must_submit(server, k, options));
  }
  // High-water mark: 12 submitted records (each carrying a full instance)
  // are on disk before any compaction can fire — the hysteresis refuses to
  // rewrite while (almost) everything is still live.
  const auto after_submit = std::filesystem::file_size(path);
  for (auto& submission : submissions) {
    EXPECT_TRUE(submission.result.get().status.ok());
  }

  // As resolutions accumulate, a scheduler tick rewrites the log down to the
  // few still-open jobs. Poll for the compaction — the final strikes race
  // the future resolutions by design. (The file does NOT shrink to the bare
  // header: the appends that land after the last rewrite stay until the
  // counter reaches the cadence again.)
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (obs::metrics().counter("service_journal_compactions_total").value() ==
             compactions_before &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GT(obs::metrics().counter("service_journal_compactions_total").value(),
            compactions_before);
  EXPECT_LT(std::filesystem::file_size(path), after_submit);

  // After shutdown every job thread has struck its resolution, so the
  // compacted-and-appended file replays to exactly nothing.
  server.shutdown();
  auto recovered = recover_jobs(path);
  ASSERT_TRUE(recovered) << recovered.status().to_string();
  EXPECT_TRUE(recovered->empty());
  std::remove(path.c_str());
}

TEST(Journal, ServiceRecoversShutdownStrandedJobsAsResumed) {
  const auto path = temp_path("journal_service.jnl");
  std::remove(path.c_str());

  // Incarnation 1: a one-wide pool with three half-second jobs, shut down
  // immediately — one job is cancelled mid-run, two are cancelled while
  // queued. None of the three resolutions strikes the journal.
  {
    ServiceConfig config;
    config.num_workers = 1;
    config.journal_path = path;
    SolverService server(config);
    std::vector<JobHandle> submissions;
    for (std::uint64_t k = 1; k <= 3; ++k) {
      JobOptions options;
      options.preset = "quick";
      options.time_budget_seconds = 0.5;
      options.seed = k;
      submissions.push_back(must_submit(server, k, options));
    }
    server.shutdown();
    for (auto& submission : submissions) {
      const auto result = submission.result.get();
      EXPECT_EQ(result.status.code(), StatusCode::kCancelled);
      EXPECT_EQ(result.origin, JobOrigin::kFresh);
    }
  }

  // Incarnation 2: all three come back as kResumed, run to completion, and
  // their normal resolutions strike the journal.
  {
    ServiceConfig config;
    config.num_workers = 4;
    config.journal_path = path;
    SolverService server(config);
    auto recovered = server.take_recovered();
    ASSERT_EQ(recovered.size(), 3U);
    EXPECT_TRUE(server.take_recovered().empty());  // single-shot
    for (auto& submission : recovered) {
      const auto result = submission.result.get();
      EXPECT_TRUE(result.status.ok()) << result.status.to_string();
      EXPECT_EQ(result.origin, JobOrigin::kResumed);
      EXPECT_GT(result.best_value, 0.0);
    }
    const auto stats = server.stats();
    EXPECT_EQ(stats.resumed, 3U);
    EXPECT_EQ(stats.completed, 3U);
    server.shutdown();
  }

  // Incarnation 3: everything resolved last time, so nothing recovers.
  {
    ServiceConfig config;
    config.journal_path = path;
    SolverService server(config);
    EXPECT_TRUE(server.take_recovered().empty());
    EXPECT_EQ(server.stats().resumed, 0U);
    server.shutdown();
  }
  std::remove(path.c_str());
}

TEST(Journal, ServiceRestoresDispatchOrderNotJustTheJobSet) {
  const auto path = temp_path("journal_order.jnl");
  std::remove(path.c_str());

  // Incarnation 1, one-wide pool: job A (lowest priority) is dispatched
  // first because it arrives alone; B and C queue behind it with HIGHER
  // priorities. Kill (shutdown) before any of them resolves.
  {
    ServiceConfig config;
    config.num_workers = 1;
    config.journal_path = path;
    SolverService server(config);
    JobOptions slow;
    slow.preset = "quick";
    slow.time_budget_seconds = 1.0;  // long enough to outlive the shutdown
    slow.priority = 0;
    auto a = must_submit(server, 1, slow);
    // Wait until A is actually running (its kDispatched record is written
    // under the same lock that moves it to running_).
    while (server.running_jobs() == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    slow.priority = 5;
    auto b = must_submit(server, 2, slow);
    slow.priority = 10;
    auto c = must_submit(server, 3, slow);
    server.shutdown();
    (void)a.result.get();
    (void)b.result.get();
    (void)c.result.get();
  }

  // Incarnation 2, still one-wide: priority alone would run C, B, A. The
  // dispatch record must put A — the job the crashed service had committed
  // to — first; C and B follow by priority.
  {
    ServiceConfig config;
    config.num_workers = 1;
    config.journal_path = path;
    SolverService server(config);
    auto recovered = server.take_recovered();
    ASSERT_EQ(recovered.size(), 3U);  // submission order: A, B, C
    JobResult results[3];
    for (std::size_t k = 0; k < 3; ++k) results[k] = recovered[k].result.get();
    EXPECT_LT(results[0].start_sequence, results[2].start_sequence)
        << "resumed-dispatched A must run before C";
    EXPECT_LT(results[2].start_sequence, results[1].start_sequence)
        << "C outranks B by priority";
    server.shutdown();
  }
  std::remove(path.c_str());
}

TEST(Journal, TenantAndWarmPolicyRoundTripThroughReplay) {
  // The v3 kSubmitted tail: tenant and warm-start policy survive replay;
  // records written without them default to the pre-tenant values.
  const auto path = temp_path("journal_v3_tail.jnl");
  std::remove(path.c_str());
  {
    auto journal = JobJournal::open_truncate(path);
    ASSERT_TRUE(journal) << journal.status().to_string();
    ASSERT_TRUE((*journal)
                    ->append_submitted(7, test_instance(1), fancy_options(),
                                       "prod", WarmStartPolicy::kSimilar)
                    .ok());
    ASSERT_TRUE((*journal)->append_submitted(8, test_instance(2), JobOptions{}).ok());
  }
  auto recovered = recover_jobs(path);
  ASSERT_TRUE(recovered) << recovered.status().to_string();
  ASSERT_EQ(recovered->size(), 2U);
  EXPECT_EQ((*recovered)[0].id, 7U);
  EXPECT_EQ((*recovered)[0].tenant, "prod");
  EXPECT_EQ((*recovered)[0].warm_start, WarmStartPolicy::kSimilar);
  EXPECT_EQ((*recovered)[0].options.priority, 7);
  EXPECT_TRUE((*recovered)[1].tenant.empty());
  EXPECT_EQ((*recovered)[1].warm_start, WarmStartPolicy::kDisabled);
  std::remove(path.c_str());
}

TEST(Journal, DedupLinkReplaysOnlyWhileBothSidesAreOpen) {
  const auto path = temp_path("journal_dedup_link.jnl");
  std::remove(path.c_str());
  auto journal = JobJournal::open_truncate(path);
  ASSERT_TRUE(journal) << journal.status().to_string();
  ASSERT_TRUE((*journal)->append_submitted(1, test_instance(1), JobOptions{}).ok());
  ASSERT_TRUE((*journal)->append_submitted(2, test_instance(1), JobOptions{}).ok());
  ASSERT_TRUE((*journal)->append_dedup(2, 1).ok());
  {
    auto recovered = recover_jobs(path);
    ASSERT_TRUE(recovered) << recovered.status().to_string();
    ASSERT_EQ(recovered->size(), 2U);
    EXPECT_EQ((*recovered)[0].dedup_primary, 0U);
    EXPECT_EQ((*recovered)[1].dedup_primary, 1U);
  }
  // Once the primary resolved, the link is inert provenance: the follower
  // still recovers, as a plain job.
  ASSERT_TRUE((*journal)->append_resolved(1).ok());
  auto recovered = recover_jobs(path);
  ASSERT_TRUE(recovered) << recovered.status().to_string();
  ASSERT_EQ(recovered->size(), 1U);
  EXPECT_EQ((*recovered)[0].id, 2U);
  EXPECT_EQ((*recovered)[0].dedup_primary, 0U);
  std::remove(path.c_str());
}

TEST(Journal, TornTailOnV3RecordsEndsReplayCleanly) {
  // kill -9 mid-append of a v3 record (tenant-tailed kSubmitted, then a
  // kDedup torn a few bytes short): everything before the torn record is
  // trusted, the tear itself is the clean end of the log.
  const auto path = temp_path("journal_v3_torn.jnl");
  std::remove(path.c_str());
  {
    auto journal = JobJournal::open_truncate(path);
    ASSERT_TRUE(journal) << journal.status().to_string();
    ASSERT_TRUE((*journal)
                    ->append_submitted(1, test_instance(1), JobOptions{},
                                       "prod", WarmStartPolicy::kExact)
                    .ok());
    ASSERT_TRUE((*journal)
                    ->append_submitted(2, test_instance(1), JobOptions{},
                                       "batch", WarmStartPolicy::kDisabled)
                    .ok());
    ASSERT_TRUE((*journal)->append_dedup(2, 1).ok());
  }
  const auto full_size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full_size - 3);  // tear the kDedup record
  auto recovered = recover_jobs(path);
  ASSERT_TRUE(recovered) << recovered.status().to_string();
  ASSERT_EQ(recovered->size(), 2U);
  EXPECT_EQ((*recovered)[0].tenant, "prod");
  EXPECT_EQ((*recovered)[0].warm_start, WarmStartPolicy::kExact);
  EXPECT_EQ((*recovered)[1].dedup_primary, 0U);  // the link never landed

  // Garbage appended after a valid log is likewise a torn tail, not an error.
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out.write("\x07garbage", 8);
  }
  auto again = recover_jobs(path);
  ASSERT_TRUE(again) << again.status().to_string();
  EXPECT_EQ(again->size(), 2U);
  std::remove(path.c_str());
}

TEST(Journal, ServiceRecoversDedupedJobsAcrossThreeIncarnations) {
  // A deduplicated pair in flight at shutdown must come back as TWO open
  // submissions that re-coalesce on resubmit — in every later incarnation —
  // and a final clean run strikes them both.
  const auto path = temp_path("journal_dedup_service.jnl");
  std::remove(path.c_str());
  JobOptions slow;
  slow.preset = "quick";
  slow.time_budget_seconds = 0.5;
  slow.seed = 3;

  // Incarnation 1: blocker runs, an identical pair queues and coalesces;
  // shutdown strands all three.
  {
    ServiceConfig config;
    config.num_workers = 1;
    config.journal_path = path;
    SolverService server(config);
    auto blocker = must_submit(server, 1, slow);
    while (server.running_jobs() == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    auto primary = must_submit(server, 2, slow);
    auto follower = must_submit(server, 2, slow);  // byte-identical: attaches
    EXPECT_FALSE(primary.deduplicated);
    EXPECT_TRUE(follower.deduplicated);
    EXPECT_EQ(server.stats().dedup_hits, 1U);
    server.shutdown();
    (void)blocker.result.get();
    (void)primary.result.get();
    (void)follower.result.get();
  }

  // Incarnation 2: three open submissions replay and the pair re-coalesces
  // at resubmit; shut down again before anything resolves — still open.
  {
    ServiceConfig config;
    config.num_workers = 1;
    config.journal_path = path;
    SolverService server(config);
    auto recovered = server.take_recovered();
    ASSERT_EQ(recovered.size(), 3U);
    EXPECT_EQ(server.stats().dedup_hits, 1U);
    server.shutdown();
    for (auto& submission : recovered) (void)submission.result.get();
  }

  // Incarnation 3: let everything run. The pair still shares one solve
  // (same start sequence) and all three resolve OK as kResumed.
  {
    ServiceConfig config;
    config.num_workers = 2;
    config.journal_path = path;
    SolverService server(config);
    auto recovered = server.take_recovered();
    ASSERT_EQ(recovered.size(), 3U);
    EXPECT_EQ(server.stats().dedup_hits, 1U);
    std::vector<JobResult> results;
    for (auto& submission : recovered) results.push_back(submission.result.get());
    for (const auto& result : results) {
      EXPECT_TRUE(result.status.ok()) << result.status.to_string();
      EXPECT_EQ(result.origin, JobOrigin::kResumed);
    }
    // Submission order was blocker, primary, follower.
    EXPECT_EQ(results[1].start_sequence, results[2].start_sequence);
    EXPECT_EQ(results[1].best_value, results[2].best_value);
    EXPECT_TRUE(results[2].deduplicated);
    server.shutdown();
  }

  // Everything resolved: a fourth incarnation recovers nothing.
  auto empty = recover_jobs(path);
  ASSERT_TRUE(empty) << empty.status().to_string();
  EXPECT_TRUE(empty->empty());
  std::remove(path.c_str());
}

TEST(Journal, CancelledJobIsStruckAndDoesNotRecover) {
  const auto path = temp_path("journal_cancel.jnl");
  std::remove(path.c_str());
  {
    ServiceConfig config;
    config.num_workers = 1;
    config.journal_path = path;
    SolverService server(config);
    JobOptions slow;
    slow.preset = "quick";
    slow.time_budget_seconds = 30.0;
    auto a = must_submit(server, 1, slow);  // runs
    auto b = must_submit(server, 2, slow);  // queued
    EXPECT_TRUE(server.cancel(b.id));                 // deliberate cancel
    EXPECT_EQ(b.result.get().status.code(), StatusCode::kCancelled);
    server.cancel(a.id);
    (void)a.result.get();
    server.shutdown();
  }
  // The deliberate cancels were struck; nothing recovers.
  ServiceConfig config;
  config.journal_path = path;
  SolverService server(config);
  EXPECT_TRUE(server.take_recovered().empty());
  server.shutdown();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace pts::service::journal
