// Snapshot format hardening: a checkpoint written by a real run must load
// back exactly, and every corruption a crash or a stray file can produce —
// truncation, flipped bytes, foreign magic, version drift, oversized length
// prefixes, a checkpoint for a different instance — must come back as a
// Status from the total decoder, never a crash or an unbounded allocation.
#include "parallel/snapshot.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "mkp/generator.hpp"
#include "parallel/runner.hpp"
#include "util/crc32.hpp"
#include "util/rng.hpp"

namespace pts::parallel::snapshot {
namespace {

mkp::Instance test_instance() {
  return mkp::generate_gk({.num_items = 50, .num_constraints = 5}, 17);
}

std::string temp_path(const char* name) {
  return ::testing::TempDir() + name;
}

/// Runs a short CTS2 run that checkpoints to `path`, so every test works on
/// a file the real write path produced (atomic tmp+rename, real state).
ParallelResult run_with_checkpoint(const mkp::Instance& inst,
                                   const std::string& path,
                                   std::size_t rounds = 4) {
  ParallelConfig config;
  config.mode = CooperationMode::kCooperativeAdaptive;
  config.num_slaves = 3;
  config.search_iterations = rounds;
  config.work_per_slave_round = 1'000;
  config.seed = 29;
  config.checkpoint_path = path;
  return run_parallel_tabu_search(inst, config);
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void write_file(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

TEST(Snapshot, RoundTripsThroughARealRun) {
  const auto inst = test_instance();
  const auto path = temp_path("snapshot_roundtrip.ckpt");
  const auto run = run_with_checkpoint(inst, path);
  ASSERT_TRUE(run.status.ok());
  EXPECT_GE(run.master.checkpoints_written, 1U);
  EXPECT_EQ(run.master.checkpoint_failures, 0U);

  auto loaded = load_checkpoint(path, inst);
  ASSERT_TRUE(loaded) << loaded.status().to_string();
  EXPECT_EQ(loaded->seed, 29U);
  EXPECT_EQ(loaded->num_slaves, 3U);
  EXPECT_TRUE(loaded->share_solutions);
  EXPECT_TRUE(loaded->adapt_strategies);
  EXPECT_EQ(loaded->next_round, 4U);
  EXPECT_EQ(loaded->rounds_completed, 4U);
  EXPECT_EQ(loaded->slaves.size(), 3U);
  EXPECT_DOUBLE_EQ(loaded->best.value(), run.best_value);
  EXPECT_EQ(loaded->best, run.best);
  EXPECT_EQ(loaded->instance_fingerprint, instance_fingerprint(inst));
  EXPECT_TRUE(check_compatible(*loaded, inst, 29, 3, true, true).ok());
  std::remove(path.c_str());
}

TEST(Snapshot, EncodeDecodeRoundTripsInMemory) {
  const auto inst = test_instance();
  const auto path = temp_path("snapshot_mem.ckpt");
  ASSERT_TRUE(run_with_checkpoint(inst, path).status.ok());
  const auto image = read_file(path);
  auto decoded = decode_checkpoint(image, inst);
  ASSERT_TRUE(decoded) << decoded.status().to_string();
  EXPECT_EQ(encode_checkpoint(*decoded), image);
  std::remove(path.c_str());
}

TEST(Snapshot, TruncatedFileIsRejectedAtEveryLength) {
  const auto inst = test_instance();
  const auto path = temp_path("snapshot_trunc.ckpt");
  ASSERT_TRUE(run_with_checkpoint(inst, path).status.ok());
  auto image = read_file(path);
  ASSERT_GT(image.size(), kSnapshotHeaderBytes);

  // Sample truncation points across the whole file, including the header.
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{3}, kSnapshotHeaderBytes - 1,
        kSnapshotHeaderBytes, image.size() / 2, image.size() - 1}) {
    auto cut = image;
    cut.resize(keep);
    const auto decoded = decode_checkpoint(cut, inst);
    EXPECT_FALSE(decoded) << "accepted a " << keep << "-byte prefix";
  }
  std::remove(path.c_str());
}

TEST(Snapshot, AnySingleFlippedByteIsRejected) {
  // Every byte of the image is load-bearing: magic, version, CRC, length and
  // body are each covered by a dedicated check. Fuzz positions across the
  // file; no flip may decode (and none may crash or over-allocate).
  const auto inst = test_instance();
  const auto path = temp_path("snapshot_flip.ckpt");
  ASSERT_TRUE(run_with_checkpoint(inst, path).status.ok());
  const auto image = read_file(path);

  Rng rng(2026);
  for (int trial = 0; trial < 64; ++trial) {
    auto fuzzed = image;
    const auto pos = rng.index(fuzzed.size());
    fuzzed[pos] ^= static_cast<std::uint8_t>(1 + rng.index(255));
    const auto decoded = decode_checkpoint(fuzzed, inst);
    EXPECT_FALSE(decoded) << "accepted a flip at byte " << pos;
  }
  std::remove(path.c_str());
}

TEST(Snapshot, FlippedCrcOnDiskIsRejected) {
  const auto inst = test_instance();
  const auto path = temp_path("snapshot_crc.ckpt");
  ASSERT_TRUE(run_with_checkpoint(inst, path).status.ok());
  auto image = read_file(path);
  image[5] ^= 0xFF;  // CRC field lives at offset 5 (after magic + version)
  write_file(path, image);
  const auto loaded = load_checkpoint(path, inst);
  ASSERT_FALSE(loaded);
  EXPECT_NE(loaded.status().to_string().find("CRC"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Snapshot, WrongMagicAndVersionAreRejected) {
  const auto inst = test_instance();
  const auto path = temp_path("snapshot_magic.ckpt");
  ASSERT_TRUE(run_with_checkpoint(inst, path).status.ok());
  const auto image = read_file(path);

  auto foreign = image;
  foreign[0] = 'X';
  auto magic_result = decode_checkpoint(foreign, inst);
  ASSERT_FALSE(magic_result);
  EXPECT_NE(magic_result.status().to_string().find("magic"), std::string::npos);

  auto future_version = image;
  future_version[4] = kSnapshotVersion + 1;
  auto version_result = decode_checkpoint(future_version, inst);
  ASSERT_FALSE(version_result);
  EXPECT_NE(version_result.status().to_string().find("version"),
            std::string::npos);
  std::remove(path.c_str());
}

TEST(Snapshot, OversizedLengthPrefixesAreRejectedBeforeAllocating) {
  const auto inst = test_instance();
  const auto path = temp_path("snapshot_len.ckpt");
  ASSERT_TRUE(run_with_checkpoint(inst, path).status.ok());
  const auto image = read_file(path);

  // Body-size header pumped past the ceiling: rejected by the cap check.
  auto huge = image;
  const std::uint64_t absurd = kMaxBodyBytes + 1;
  std::memcpy(huge.data() + 9, &absurd, sizeof absurd);
  auto capped = decode_checkpoint(huge, inst);
  ASSERT_FALSE(capped);
  EXPECT_NE(capped.status().to_string().find("ceiling"), std::string::npos);

  // Body-size merely wrong (claims more than the file holds): rejected by
  // the length/file-size agreement check.
  auto wrong = image;
  const std::uint64_t off_by_some = image.size();  // > actual body size
  std::memcpy(wrong.data() + 9, &off_by_some, sizeof off_by_some);
  EXPECT_FALSE(decode_checkpoint(wrong, inst));

  // Corrupt in-body counts with a RECOMPUTED CRC, so the plausible_count
  // bounds — not the checksum — must do the rejecting: splice 0xFFFFFFFF
  // over every aligned u32 in the body and re-CRC. Splices landing in fields
  // where any bit pattern is legal (rng state, aggregates) may still decode;
  // the ones hitting a count or a solution must fail, and none may crash or
  // trigger an unbounded allocation.
  std::size_t rejected = 0;
  for (std::size_t pos = kSnapshotHeaderBytes; pos + 4 <= image.size();
       pos += 4) {
    auto spliced = image;
    const std::uint32_t absurd_count = 0xFFFFFFFF;
    std::memcpy(spliced.data() + pos, &absurd_count, sizeof absurd_count);
    const std::uint32_t crc =
        crc32(std::span(spliced).subspan(kSnapshotHeaderBytes));
    std::memcpy(spliced.data() + 5, &crc, sizeof crc);
    if (!decode_checkpoint(spliced, inst)) ++rejected;
  }
  EXPECT_GT(rejected, 0U);
  std::remove(path.c_str());
}

TEST(Snapshot, CheckpointForAnotherInstanceIsForeign) {
  const auto inst = test_instance();
  const auto other = mkp::generate_gk({.num_items = 50, .num_constraints = 5}, 18);
  const auto path = temp_path("snapshot_foreign.ckpt");
  ASSERT_TRUE(run_with_checkpoint(inst, path).status.ok());
  const auto loaded = load_checkpoint(path, other);
  ASSERT_FALSE(loaded);
  EXPECT_NE(loaded.status().to_string().find("different instance"),
            std::string::npos);
  std::remove(path.c_str());
}

TEST(Snapshot, CheckCompatibleRejectsConfigDrift) {
  const auto inst = test_instance();
  const auto path = temp_path("snapshot_drift.ckpt");
  ASSERT_TRUE(run_with_checkpoint(inst, path).status.ok());
  auto cp = load_checkpoint(path, inst);
  ASSERT_TRUE(cp);
  EXPECT_TRUE(check_compatible(*cp, inst, 29, 3, true, true).ok());
  EXPECT_FALSE(check_compatible(*cp, inst, 30, 3, true, true).ok());   // seed
  EXPECT_FALSE(check_compatible(*cp, inst, 29, 4, true, true).ok());   // width
  EXPECT_FALSE(check_compatible(*cp, inst, 29, 3, false, true).ok());  // mode
  EXPECT_FALSE(check_compatible(*cp, inst, 29, 3, true, false).ok());  // mode
  std::remove(path.c_str());
}

TEST(Snapshot, MissingFileIsUnavailableNotCorrupt) {
  const auto inst = test_instance();
  const auto loaded = load_checkpoint(temp_path("no_such_checkpoint.ckpt"), inst);
  ASSERT_FALSE(loaded);
  EXPECT_EQ(loaded.status().code(), StatusCode::kUnavailable);
}

TEST(Snapshot, CoreSectionRoundTrips) {
  // The v2 body tail carries the core-reduction fixing verbatim; it must
  // survive encode → decode bit-for-bit alongside everything else.
  const auto inst = test_instance();
  const auto path = temp_path("snapshot_core.ckpt");
  ASSERT_TRUE(run_with_checkpoint(inst, path).status.ok());
  auto loaded = load_checkpoint(path, inst);
  ASSERT_TRUE(loaded);
  EXPECT_FALSE(loaded->core.engaged());  // plain run writes a disengaged tail

  MasterCheckpoint with_core = *loaded;
  with_core.core.full_instance_fingerprint = 0xDEADBEEFu;
  with_core.core.status = {bounds::FixedValue::kZero, bounds::FixedValue::kFree,
                           bounds::FixedValue::kOne, bounds::FixedValue::kOne,
                           bounds::FixedValue::kFree};
  const auto image = encode_checkpoint(with_core);
  auto decoded = decode_checkpoint(image, inst);
  ASSERT_TRUE(decoded) << decoded.status().to_string();
  EXPECT_TRUE(decoded->core.engaged());
  EXPECT_EQ(decoded->core, with_core.core);
  EXPECT_EQ(decoded->best, with_core.best);
  std::remove(path.c_str());
}

TEST(Snapshot, V1ImageStillDecodes) {
  // Forward compatibility promise: a checkpoint written by the previous
  // format version (no core tail at all) must load with a disengaged core
  // section, not be rejected as corrupt.
  const auto inst = test_instance();
  const auto path = temp_path("snapshot_v1.ckpt");
  ASSERT_TRUE(run_with_checkpoint(inst, path).status.ok());
  auto image = read_file(path);
  ASSERT_GT(image.size(), kSnapshotHeaderBytes + 1);

  // A disengaged v2 body is exactly the v1 body plus one engaged=0 byte:
  // strip it, stamp version 1, and re-seal the CRC and length fields.
  image.pop_back();
  image[4] = 1;  // version byte (after the 4-byte magic)
  const std::span<const std::uint8_t> body(image.data() + kSnapshotHeaderBytes,
                                           image.size() - kSnapshotHeaderBytes);
  const std::uint32_t crc = crc32(body);
  const std::uint64_t size = body.size();
  std::memcpy(image.data() + 5, &crc, sizeof(crc));
  std::memcpy(image.data() + 9, &size, sizeof(size));

  auto decoded = decode_checkpoint(image, inst);
  ASSERT_TRUE(decoded) << decoded.status().to_string();
  EXPECT_FALSE(decoded->core.engaged());
  EXPECT_EQ(decoded->next_round, 4U);
  std::remove(path.c_str());
}

TEST(Snapshot, EngagedFlagWithEmptyStatusIsCorrupt) {
  // engaged=1 followed by a zero-length status vector is self-contradictory
  // — engaged() is defined by non-emptiness — so the decoder rejects it
  // rather than materialising a lying section.
  const auto inst = test_instance();
  const auto path = temp_path("snapshot_core_lie.ckpt");
  ASSERT_TRUE(run_with_checkpoint(inst, path).status.ok());
  auto image = read_file(path);
  // Replace the trailing engaged=0 byte with engaged=1 + fingerprint + count=0.
  image.pop_back();
  image.push_back(1);
  for (int k = 0; k < 8; ++k) image.push_back(0);  // fingerprint u32 + count u32
  const std::span<const std::uint8_t> body(image.data() + kSnapshotHeaderBytes,
                                           image.size() - kSnapshotHeaderBytes);
  const std::uint32_t crc = crc32(body);
  const std::uint64_t size = body.size();
  std::memcpy(image.data() + 5, &crc, sizeof(crc));
  std::memcpy(image.data() + 9, &size, sizeof(size));

  const auto decoded = decode_checkpoint(image, inst);
  ASSERT_FALSE(decoded);
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace pts::parallel::snapshot
