// Peer-protocol codec tests (DESIGN.md §11): every frame of the cluster
// peer range round-trips bit-exactly, and every decoder is total —
// truncated payloads, unknown enum bytes, implausible record counts,
// trailing garbage and random bit flips come back as a Status, never a
// crash or an unbounded allocation. Peer frames cross a machine boundary
// between nodes that may be mid-crash, so this is the coordinator's and
// the worker's first line of defense against each other.
#include "cluster/peer_protocol.hpp"

#include <gtest/gtest.h>

#include "mkp/generator.hpp"
#include "parallel/wire.hpp"
#include "util/rng.hpp"

namespace pts::cluster {
namespace {

namespace wire = parallel::wire;

mkp::Instance make_instance(std::uint64_t seed = 1) {
  return mkp::generate_gk({.num_items = 30, .num_constraints = 4}, seed);
}

ReplicateRecord make_submitted(std::uint64_t seq, service::JobId id) {
  ReplicateRecord record;
  record.seq = seq;
  record.kind = ReplicateRecord::Kind::kSubmitted;
  record.job_id = id;
  record.instance = make_instance(seq);
  record.options.preset = "quick";
  record.options.time_budget_seconds = 0.75;
  record.options.seed = 42;
  record.options.priority = 2;
  record.tenant = "prod";
  record.warm_start = service::WarmStartPolicy::kSimilar;
  return record;
}

PeerReplicate make_replicate() {
  PeerReplicate m;
  m.records.push_back(make_submitted(5, 11));
  ReplicateRecord resolved;
  resolved.seq = 6;
  resolved.kind = ReplicateRecord::Kind::kResolved;
  resolved.job_id = 11;
  m.records.push_back(std::move(resolved));
  ReplicateRecord dedup;
  dedup.seq = 7;
  dedup.kind = ReplicateRecord::Kind::kDedup;
  dedup.job_id = 12;
  dedup.dedup_primary = 11;
  m.records.push_back(std::move(dedup));
  return m;
}

/// Splits an encoded frame into its validated header and payload view.
std::span<const std::uint8_t> payload_of(const std::vector<std::uint8_t>& frame,
                                         wire::MessageType expected) {
  auto header = wire::decode_header(frame);
  EXPECT_TRUE(header) << header.status().to_string();
  if (header) EXPECT_EQ(header->type, expected);
  return std::span<const std::uint8_t>(frame).subspan(wire::kHeaderBytes);
}

TEST(PeerProtocol, HelloRoundTrip) {
  const auto frame = encode_peer_hello({"prod-cluster", 9});
  const auto decoded =
      decode_peer_hello(payload_of(frame, wire::MessageType::kPeerHello));
  ASSERT_TRUE(decoded) << decoded.status().to_string();
  EXPECT_EQ(decoded->cluster_name, "prod-cluster");
  EXPECT_EQ(decoded->coordinator_epoch, 9u);
}

TEST(PeerProtocol, WelcomeRoundTrip) {
  const auto frame = encode_peer_welcome({"node-b", 31, 8});
  const auto decoded =
      decode_peer_welcome(payload_of(frame, wire::MessageType::kPeerWelcome));
  ASSERT_TRUE(decoded) << decoded.status().to_string();
  EXPECT_EQ(decoded->node_name, "node-b");
  EXPECT_EQ(decoded->last_applied_seq, 31u);
  EXPECT_EQ(decoded->num_workers, 8u);
}

TEST(PeerProtocol, PingPongRoundTrip) {
  const auto ping =
      decode_peer_ping(payload_of(encode_peer_ping({77}),
                                  wire::MessageType::kPeerPing));
  ASSERT_TRUE(ping) << ping.status().to_string();
  EXPECT_EQ(ping->seq, 77u);

  const auto pong = decode_peer_pong(payload_of(
      encode_peer_pong({77, 3, 5, 20}), wire::MessageType::kPeerPong));
  ASSERT_TRUE(pong) << pong.status().to_string();
  EXPECT_EQ(pong->seq, 77u);
  EXPECT_EQ(pong->running_jobs, 3u);
  EXPECT_EQ(pong->queued_jobs, 5u);
  EXPECT_EQ(pong->last_applied_seq, 20u);
}

TEST(PeerProtocol, ReplicateRoundTripsAllRecordKinds) {
  const auto m = make_replicate();
  const auto frame = encode_peer_replicate(m);
  const auto decoded = decode_peer_replicate(
      payload_of(frame, wire::MessageType::kPeerReplicate));
  ASSERT_TRUE(decoded) << decoded.status().to_string();
  ASSERT_EQ(decoded->records.size(), 3u);

  const auto& submitted = decoded->records[0];
  EXPECT_EQ(submitted.seq, 5u);
  EXPECT_EQ(submitted.kind, ReplicateRecord::Kind::kSubmitted);
  EXPECT_EQ(submitted.job_id, 11u);
  ASSERT_TRUE(submitted.instance.has_value());
  // Bit-exact instance: a promoted coordinator re-runs the job off this
  // image, so any drift would change the content hash and the trajectory.
  const auto reference = make_instance(5);
  ASSERT_EQ(submitted.instance->num_items(), reference.num_items());
  for (std::size_t j = 0; j < reference.num_items(); ++j) {
    EXPECT_EQ(submitted.instance->profit(j), reference.profit(j));
  }
  EXPECT_EQ(submitted.options.preset, "quick");
  EXPECT_EQ(submitted.options.time_budget_seconds, 0.75);
  EXPECT_EQ(submitted.options.seed, 42u);
  EXPECT_EQ(submitted.options.priority, 2);
  EXPECT_EQ(submitted.tenant, "prod");
  EXPECT_EQ(submitted.warm_start, service::WarmStartPolicy::kSimilar);

  EXPECT_EQ(decoded->records[1].kind, ReplicateRecord::Kind::kResolved);
  EXPECT_EQ(decoded->records[1].seq, 6u);
  EXPECT_EQ(decoded->records[1].job_id, 11u);
  EXPECT_FALSE(decoded->records[1].instance.has_value());

  EXPECT_EQ(decoded->records[2].kind, ReplicateRecord::Kind::kDedup);
  EXPECT_EQ(decoded->records[2].job_id, 12u);
  EXPECT_EQ(decoded->records[2].dedup_primary, 11u);
}

TEST(PeerProtocol, ReplicateAckRoundTrip) {
  const auto decoded = decode_peer_replicate_ack(payload_of(
      encode_peer_replicate_ack({19}), wire::MessageType::kPeerReplicateAck));
  ASSERT_TRUE(decoded) << decoded.status().to_string();
  EXPECT_EQ(decoded->last_applied_seq, 19u);
}

TEST(PeerProtocolFuzz, TruncatedPayloadsAlwaysReturnStatus) {
  const std::vector<std::vector<std::uint8_t>> frames = {
      encode_peer_hello({"prod", 2}),
      encode_peer_welcome({"node-a", 7, 4}),
      encode_peer_ping({1}),
      encode_peer_pong({1, 2, 3, 4}),
      encode_peer_replicate(make_replicate()),
      encode_peer_replicate_ack({9}),
  };
  for (const auto& frame : frames) {
    const auto header = wire::decode_header(frame);
    ASSERT_TRUE(header) << header.status().to_string();
    const auto payload =
        std::span<const std::uint8_t>(frame).subspan(wire::kHeaderBytes);
    for (std::size_t cut = 0; cut < payload.size();
         cut += (payload.size() > 512 ? 37 : 1)) {
      const auto stub = payload.subspan(0, cut);
      switch (header->type) {
        case wire::MessageType::kPeerHello:
          EXPECT_FALSE(decode_peer_hello(stub)) << "cut=" << cut;
          break;
        case wire::MessageType::kPeerWelcome:
          EXPECT_FALSE(decode_peer_welcome(stub)) << "cut=" << cut;
          break;
        case wire::MessageType::kPeerPing:
          EXPECT_FALSE(decode_peer_ping(stub)) << "cut=" << cut;
          break;
        case wire::MessageType::kPeerPong:
          EXPECT_FALSE(decode_peer_pong(stub)) << "cut=" << cut;
          break;
        case wire::MessageType::kPeerReplicate:
          EXPECT_FALSE(decode_peer_replicate(stub)) << "cut=" << cut;
          break;
        case wire::MessageType::kPeerReplicateAck:
          EXPECT_FALSE(decode_peer_replicate_ack(stub)) << "cut=" << cut;
          break;
        default:
          FAIL() << "unexpected frame type";
      }
    }
  }
}

TEST(PeerProtocolFuzz, TrailingGarbageIsRejected) {
  auto frame = encode_peer_replicate_ack({3});
  std::vector<std::uint8_t> payload(frame.begin() + wire::kHeaderBytes,
                                    frame.end());
  payload.push_back(0x00);
  EXPECT_FALSE(decode_peer_replicate_ack(payload));
}

TEST(PeerProtocolFuzz, UnknownRecordKindByteIsRejected) {
  PeerReplicate m;
  ReplicateRecord resolved;
  resolved.seq = 1;
  resolved.kind = ReplicateRecord::Kind::kResolved;
  resolved.job_id = 4;
  m.records.push_back(std::move(resolved));
  auto frame = encode_peer_replicate(m);
  // Payload layout: count (u32) + seq (u64) + kind (u8) + ...
  const std::size_t offset = wire::kHeaderBytes + 4 + 8;
  ASSERT_LT(offset, frame.size());
  frame[offset] = 0x7F;
  EXPECT_FALSE(decode_peer_replicate(
      std::span<const std::uint8_t>(frame).subspan(wire::kHeaderBytes)));
}

TEST(PeerProtocolFuzz, UnknownWarmStartByteIsRejected) {
  PeerReplicate m;
  m.records.push_back(make_submitted(1, 2));
  auto frame = encode_peer_replicate(m);
  // The warm-start byte is the last payload byte of a kSubmitted record
  // (it is written after instance + options + tenant).
  frame[frame.size() - 1] = 0x7F;
  EXPECT_FALSE(decode_peer_replicate(
      std::span<const std::uint8_t>(frame).subspan(wire::kHeaderBytes)));
}

TEST(PeerProtocolFuzz, ImplausibleRecordCountIsRejectedWithoutAllocation) {
  // A forged payload claiming ~4 billion records in 8 bytes.
  std::vector<std::uint8_t> payload = {0xFF, 0xFF, 0xFF, 0xFF,
                                       0x00, 0x00, 0x00, 0x00};
  EXPECT_FALSE(decode_peer_replicate(payload));
  // One past the per-frame batch ceiling is refused too, even with bytes
  // to spare — the cap is a protocol rule, not an honesty check.
  std::vector<std::uint8_t> oversized(4 + 32 * 1024, 0);
  const auto count =
      static_cast<std::uint32_t>(kMaxReplicateRecordsPerFrame + 1);
  oversized[0] = static_cast<std::uint8_t>(count & 0xFF);
  oversized[1] = static_cast<std::uint8_t>((count >> 8) & 0xFF);
  EXPECT_FALSE(decode_peer_replicate(oversized));
}

TEST(PeerProtocolFuzz, RandomByteFlipsNeverCrashTheDecoders) {
  const std::vector<std::vector<std::uint8_t>> frames = {
      encode_peer_hello({"prod", 2}),
      encode_peer_welcome({"node-a", 7, 4}),
      encode_peer_pong({1, 2, 3, 4}),
      encode_peer_replicate(make_replicate()),
  };
  Rng rng(0xC1A05);
  for (const auto& original : frames) {
    for (int trial = 0; trial < 200; ++trial) {
      auto frame = original;
      const std::size_t at =
          wire::kHeaderBytes +
          rng.index(frame.size() - wire::kHeaderBytes);
      frame[at] ^= static_cast<std::uint8_t>(1u << rng.index(8));
      const auto payload =
          std::span<const std::uint8_t>(frame).subspan(wire::kHeaderBytes);
      // Either decode succeeds (the flip hit a don't-care bit) or it
      // returns a Status. It must never crash or hang.
      (void)decode_peer_hello(payload);
      (void)decode_peer_welcome(payload);
      (void)decode_peer_pong(payload);
      (void)decode_peer_replicate(payload);
    }
  }
}

}  // namespace
}  // namespace pts::cluster
