// The cluster acceptance drill (DESIGN.md §11), against the REAL
// pts_cluster binaries: a 3-node cluster (1 coordinator + 2 workers)
// survives kill -9 of a worker mid-solve — every submitted future
// resolves Ok and the final best dominates everything the dead node had
// reported before it died (the deterministic engine replays the same
// trajectory on the survivor, so failover costs wall-clock, never
// quality). A second drill drives the node-kill chaos knob instead of an
// external SIGKILL: the worker executes raise(SIGKILL) on itself the
// moment the coordinator's hello arrives.
#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "mkp/generator.hpp"
#include "net/client.hpp"

namespace pts::cluster {
namespace {

using namespace std::chrono_literals;

constexpr const char* kClusterBin = PTS_CLUSTER_BIN_FOR_TESTS;

/// fork/exec with stdout captured to `out_path` (the tests parse bound
/// ports off the banners) and optional extra environment (chaos knobs).
pid_t spawn_to_file(const std::vector<std::string>& argv_strings,
                    const std::string& out_path,
                    const std::vector<std::pair<std::string, std::string>>&
                        env = {}) {
  std::vector<char*> argv;
  argv.reserve(argv_strings.size() + 1);
  for (const auto& arg : argv_strings) {
    argv.push_back(const_cast<char*>(arg.c_str()));
  }
  argv.push_back(nullptr);
  const pid_t pid = ::fork();
  if (pid == 0) {
    for (const auto& [key, value] : env) {
      ::setenv(key.c_str(), value.c_str(), 1);
    }
    const int out =
        ::open(out_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    const int devnull = ::open("/dev/null", O_WRONLY);
    if (out >= 0) ::dup2(out, STDOUT_FILENO);
    if (devnull >= 0) ::dup2(devnull, STDERR_FILENO);
    ::execv(argv[0], argv.data());
    std::_Exit(127);
  }
  return pid;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string wait_for_output(const std::string& path, const std::string& needle,
                            double timeout_seconds) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_seconds);
  for (;;) {
    auto text = slurp(path);
    if (text.find(needle) != std::string::npos ||
        std::chrono::steady_clock::now() >= deadline) {
      return text;
    }
    std::this_thread::sleep_for(20ms);
  }
}

std::uint16_t parse_port(const std::string& banner) {
  const std::string key = "listening on 127.0.0.1:";
  const auto at = banner.find(key);
  if (at == std::string::npos) return 0;
  return static_cast<std::uint16_t>(
      std::strtoul(banner.c_str() + at + key.size(), nullptr, 10));
}

void reap(pid_t pid, int signal = SIGKILL) {
  if (pid <= 0) return;
  ::kill(pid, signal);
  int status = 0;
  ::waitpid(pid, &status, 0);
}

struct TempDir {
  std::filesystem::path path;
  explicit TempDir(const std::string& stem) {
    path = std::filesystem::temp_directory_path() /
           (stem + "_" + std::to_string(::getpid()));
    std::filesystem::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
};

std::uint16_t spawn_worker(const TempDir& dir, const std::string& name,
                           pid_t& pid,
                           const std::vector<std::pair<std::string,
                                                       std::string>>& env = {}) {
  const auto out = (dir.path / (name + ".out")).string();
  pid = spawn_to_file({kClusterBin, "--role=worker", "--name=" + name,
                       "--port=0", "--workers=2",
                       "--replica=" + (dir.path / (name + ".rep")).string()},
                      out, env);
  EXPECT_GT(pid, 0);
  return parse_port(wait_for_output(out, "listening on", 20.0));
}

std::uint16_t spawn_coordinator(const TempDir& dir,
                                const std::string& peers, pid_t& pid) {
  const auto out = (dir.path / "coordinator.out").string();
  pid = spawn_to_file(
      {kClusterBin, "--role=coordinator", "--port=0", "--peers=" + peers,
       "--journal=" + (dir.path / "coord.journal").string(),
       "--heartbeat-interval=0.05", "--heartbeat-misses=4"},
      out);
  EXPECT_GT(pid, 0);
  return parse_port(wait_for_output(out, "listening on", 20.0));
}

service::SubmitRequest make_request(std::uint64_t seed, double budget) {
  service::SubmitRequest request;
  request.instance = std::make_shared<const mkp::Instance>(
      mkp::generate_gk({.num_items = 60, .num_constraints = 5}, seed));
  request.tenant = "prod";
  request.options.preset = "quick";
  request.options.time_budget_seconds = budget;
  request.options.seed = seed;
  return request;
}

TEST(ClusterBin, Kill9WorkerMidSolveEveryFutureResolvesOk) {
  TempDir dir("pts_cluster_kill9");
  pid_t w1 = 0, w2 = 0, co = 0;
  const auto p1 = spawn_worker(dir, "w1", w1);
  const auto p2 = spawn_worker(dir, "w2", w2);
  ASSERT_NE(p1, 0);
  ASSERT_NE(p2, 0);
  const auto pc = spawn_coordinator(
      dir,
      "127.0.0.1:" + std::to_string(p1) + ",127.0.0.1:" + std::to_string(p2),
      co);
  ASSERT_NE(pc, 0);

  auto client = net::Client::connect("127.0.0.1", pc, 10.0);
  ASSERT_TRUE(client) << client.status().to_string();

  // Two in-flight jobs so BOTH workers hold work when one dies.
  auto job1 = client->submit(make_request(3, 3.0));
  auto job2 = client->submit(make_request(4, 3.0));
  ASSERT_TRUE(job1) << job1.status().to_string();
  ASSERT_TRUE(job2) << job2.status().to_string();

  std::this_thread::sleep_for(800ms);
  ASSERT_EQ(::kill(w1, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(w1, &status, 0), w1);
  ASSERT_TRUE(WIFSIGNALED(status));
  w1 = 0;

  // Every future resolves Ok — the coordinator failed the dead node's job
  // over to the survivor. The deterministic engine replays the identical
  // trajectory with the full budget, so the final best dominates every
  // anytime sample streamed before the kill (the curve spans both
  // attempts: pre-kill samples from the dead node included).
  for (auto* job : {&*job1, &*job2}) {
    auto result = client->wait(*job, /*timeout_seconds=*/60.0);
    ASSERT_TRUE(result) << result.status().to_string();
    EXPECT_TRUE(result->status.ok()) << result->status.to_string();
    EXPECT_GT(result->best_value, 0.0);
    ASSERT_TRUE(result->best.has_value());
    EXPECT_TRUE(result->best->is_feasible());
    double pre_kill_best = 0.0;
    for (const auto& sample : result->anytime) {
      pre_kill_best = std::max(pre_kill_best, sample.value);
    }
    EXPECT_GE(result->best_value, pre_kill_best);
  }

  reap(co, SIGTERM);
  reap(w2, SIGTERM);
}

TEST(ClusterBin, NodeKillChaosKnobFailsOverToHealthyNode) {
  TempDir dir("pts_cluster_chaos");
  pid_t doomed = 0, healthy = 0, co = 0;
  // The doomed worker SIGKILLs itself on the first inbound peer frame (the
  // coordinator's hello): a node that dies during the handshake.
  const auto p1 = spawn_worker(dir, "doomed", doomed,
                               {{"PTS_CHAOS_NODE_KILL_PPM", "1000000"}});
  const auto p2 = spawn_worker(dir, "healthy", healthy);
  ASSERT_NE(p1, 0);
  ASSERT_NE(p2, 0);
  const auto pc = spawn_coordinator(
      dir,
      "127.0.0.1:" + std::to_string(p1) + ",127.0.0.1:" + std::to_string(p2),
      co);
  ASSERT_NE(pc, 0);

  // The chaos kill must have taken the doomed node down with SIGKILL.
  int status = 0;
  ASSERT_EQ(::waitpid(doomed, &status, 0), doomed);
  EXPECT_TRUE(WIFSIGNALED(status));
  if (WIFSIGNALED(status)) EXPECT_EQ(WTERMSIG(status), SIGKILL);
  doomed = 0;

  // The cluster still serves: the healthy node takes the job.
  auto client = net::Client::connect("127.0.0.1", pc, 10.0);
  ASSERT_TRUE(client) << client.status().to_string();
  auto job = client->submit(make_request(5, 0.5));
  ASSERT_TRUE(job) << job.status().to_string();
  auto result = client->wait(*job, /*timeout_seconds=*/60.0);
  ASSERT_TRUE(result) << result.status().to_string();
  EXPECT_TRUE(result->status.ok()) << result->status.to_string();

  reap(co, SIGTERM);
  reap(healthy, SIGTERM);
}

}  // namespace
}  // namespace pts::cluster
