// In-process cluster tests (DESIGN.md §11): a real Coordinator and real
// WorkerNodes on loopback ephemeral ports, exercising the failover
// invariants directly — every accepted future resolves through node death,
// dedup-coalesced submissions share ONE remote solve, replicas catch up,
// and a coordinator (re)started off a journal or replica re-owns the open
// jobs. Node death here is WorkerNode::stop() (the socket vanishes exactly
// as it does on kill -9); the real-SIGKILL drill lives in
// test_cluster_bin.cpp against the pts_cluster binary.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <future>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "cluster/coordinator.hpp"
#include "cluster/worker_node.hpp"
#include "mkp/generator.hpp"
#include "parallel/wire.hpp"

namespace pts::cluster {
namespace {

using namespace std::chrono_literals;

std::shared_ptr<const mkp::Instance> make_instance(std::uint64_t seed = 1) {
  return std::make_shared<const mkp::Instance>(
      mkp::generate_gk({.num_items = 30, .num_constraints = 4}, seed));
}

service::SubmitRequest make_request(std::uint64_t seed = 7,
                                    double budget = 0.2) {
  service::SubmitRequest request;
  request.instance = make_instance(seed);
  request.tenant = "prod";
  request.options.preset = "quick";
  request.options.time_budget_seconds = budget;
  request.options.seed = seed;
  return request;
}

std::unique_ptr<WorkerNode> start_worker(const std::string& replica = "",
                                         std::uint16_t port = 0) {
  WorkerNodeConfig config;
  config.replica_journal_path = replica;
  config.service.num_workers = 2;
  config.server.port = port;
  auto node = WorkerNode::start(std::move(config));
  EXPECT_TRUE(node) << node.status().to_string();
  return node ? std::move(*node) : nullptr;
}

CoordinatorConfig fast_config(std::vector<std::uint16_t> ports) {
  CoordinatorConfig config;
  for (const auto port : ports) config.peers.push_back({"127.0.0.1", port});
  config.heartbeat_interval_seconds = 0.05;
  config.heartbeat_misses = 4;
  config.resubmit_backoff_seconds = 0.02;
  return config;
}

/// Polls until the coordinator reports `n` live peers (mesh formation is
/// asynchronous by design).
void wait_for_peers(Coordinator& coordinator, std::size_t n,
                    double timeout_seconds = 10.0) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_seconds);
  while (coordinator.alive_peers() < n &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(10ms);
  }
  ASSERT_EQ(coordinator.alive_peers(), n);
}

TEST(Cluster, SubmitThroughCoordinatorResolvesOk) {
  auto w1 = start_worker();
  auto w2 = start_worker();
  ASSERT_TRUE(w1 && w2);
  auto coordinator =
      Coordinator::start(fast_config({w1->port(), w2->port()}));
  ASSERT_TRUE(coordinator) << coordinator.status().to_string();
  wait_for_peers(**coordinator, 2);

  auto handle = (*coordinator)->submit(make_request());
  ASSERT_TRUE(handle) << handle.status().to_string();
  auto result = handle->result.get();
  EXPECT_TRUE(result.status.ok()) << result.status.to_string();
  EXPECT_GT(result.best_value, 0.0);
  ASSERT_TRUE(result.best.has_value());
  EXPECT_TRUE(result.best->is_feasible());
  EXPECT_EQ(result.tenant, "prod");
  EXPECT_EQ((*coordinator)->stats().dispatched, 1u);
}

TEST(Cluster, DedupCoalescesIntoOneRemoteSolve) {
  auto w1 = start_worker();
  ASSERT_TRUE(w1);
  auto coordinator = Coordinator::start(fast_config({w1->port()}));
  ASSERT_TRUE(coordinator) << coordinator.status().to_string();
  wait_for_peers(**coordinator, 1);

  // Identical instance + solve shape from two callers: one remote solve,
  // two futures. A longer budget keeps the first in flight while the
  // second arrives.
  auto first = (*coordinator)->submit(make_request(3, /*budget=*/1.0));
  ASSERT_TRUE(first) << first.status().to_string();
  auto second = (*coordinator)->submit(make_request(3, /*budget=*/1.0));
  ASSERT_TRUE(second) << second.status().to_string();
  EXPECT_FALSE(first->deduplicated);
  EXPECT_TRUE(second->deduplicated);
  EXPECT_NE(first->id, second->id);
  EXPECT_EQ(first->content_hash, second->content_hash);

  auto r1 = first->result.get();
  auto r2 = second->result.get();
  EXPECT_TRUE(r1.status.ok()) << r1.status.to_string();
  EXPECT_TRUE(r2.status.ok()) << r2.status.to_string();
  EXPECT_EQ(r1.best_value, r2.best_value);
  EXPECT_TRUE(r2.deduplicated);

  const auto stats = (*coordinator)->stats();
  EXPECT_EQ(stats.submitted, 2u);
  EXPECT_EQ(stats.dedup_hits, 1u);
  EXPECT_EQ(stats.dispatched, 1u);  // ONE remote solve for both waiters
}

TEST(Cluster, DedupOptOutGetsItsOwnSolve) {
  auto w1 = start_worker();
  ASSERT_TRUE(w1);
  auto coordinator = Coordinator::start(fast_config({w1->port()}));
  ASSERT_TRUE(coordinator) << coordinator.status().to_string();
  wait_for_peers(**coordinator, 1);

  auto request = make_request(4, /*budget=*/0.3);
  request.allow_dedup = false;
  auto first = (*coordinator)->submit(request);
  auto second = (*coordinator)->submit(request);
  ASSERT_TRUE(first && second);
  EXPECT_FALSE(second->deduplicated);
  EXPECT_TRUE(first->result.get().status.ok());
  EXPECT_TRUE(second->result.get().status.ok());
  EXPECT_EQ((*coordinator)->stats().dispatched, 2u);
}

TEST(Cluster, WorkerDeathFailsJobOverToSurvivor) {
  auto w1 = start_worker();
  auto w2 = start_worker();
  ASSERT_TRUE(w1 && w2);
  auto coordinator =
      Coordinator::start(fast_config({w1->port(), w2->port()}));
  ASSERT_TRUE(coordinator) << coordinator.status().to_string();
  wait_for_peers(**coordinator, 2);

  auto handle = (*coordinator)->submit(make_request(9, /*budget=*/5.0));
  ASSERT_TRUE(handle) << handle.status().to_string();

  // Find the node actually running the job and kill THAT one.
  WorkerNode* victim = nullptr;
  const auto deadline = std::chrono::steady_clock::now() + 10s;
  while (!victim && std::chrono::steady_clock::now() < deadline) {
    if (w1->service().running_jobs() > 0) victim = w1.get();
    else if (w2->service().running_jobs() > 0) victim = w2.get();
    else std::this_thread::sleep_for(5ms);
  }
  ASSERT_NE(victim, nullptr) << "job never started on either node";
  victim->stop();  // connection vanishes exactly as on kill -9

  auto result = handle->result.get();
  EXPECT_TRUE(result.status.ok()) << result.status.to_string();
  EXPECT_GT(result.best_value, 0.0);
  const auto stats = (*coordinator)->stats();
  EXPECT_GE(stats.failovers, 1u);
  EXPECT_GE(stats.nodes_lost, 1u);
  EXPECT_GE(stats.dispatched, 2u);  // original + at least one resubmission
  EXPECT_EQ(stats.exhausted, 0u);
}

TEST(Cluster, DeadlineExpiresWhileNoNodeIsAlive) {
  // No worker listens on this roster, so the job can never dispatch; its
  // per-waiter deadline must still fire.
  auto coordinator = Coordinator::start(fast_config({1}));
  ASSERT_TRUE(coordinator) << coordinator.status().to_string();
  auto request = make_request(5);
  request.deadline_seconds = 0.2;
  auto handle = (*coordinator)->submit(request);
  ASSERT_TRUE(handle) << handle.status().to_string();
  auto result = handle->result.get();
  EXPECT_EQ(result.status.code(), StatusCode::kDeadlineExceeded);
}

TEST(Cluster, StopResolvesOutstandingWaitersUnavailable) {
  auto coordinator = Coordinator::start(fast_config({1}));
  ASSERT_TRUE(coordinator) << coordinator.status().to_string();
  auto handle = (*coordinator)->submit(make_request(6));
  ASSERT_TRUE(handle) << handle.status().to_string();
  (*coordinator)->stop();
  auto result = handle->result.get();
  EXPECT_EQ(result.status.code(), StatusCode::kUnavailable);
}

TEST(Cluster, ReplicaCatchesUpAndBootsAPromotedCoordinator) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("pts_cluster_promote_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  const auto replica = (dir / "w1.replica").string();

  auto w1 = start_worker(replica);
  ASSERT_TRUE(w1);
  const auto port = w1->port();
  auto config = fast_config({port});
  config.journal_path = (dir / "coord.journal").string();
  auto coordinator = Coordinator::start(std::move(config));
  ASSERT_TRUE(coordinator) << coordinator.status().to_string();
  wait_for_peers(**coordinator, 1);

  // One resolved job (2 records), then one left in flight (1 record).
  auto done = (*coordinator)->submit(make_request(21, /*budget=*/0.1));
  ASSERT_TRUE(done) << done.status().to_string();
  EXPECT_TRUE(done->result.get().status.ok());
  auto open = (*coordinator)->submit(make_request(22, /*budget=*/5.0));
  ASSERT_TRUE(open) << open.status().to_string();

  // The worker's replica must apply all three records.
  const auto deadline = std::chrono::steady_clock::now() + 10s;
  while (w1->last_applied_seq() < 3 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(10ms);
  }
  EXPECT_GE(w1->last_applied_seq(), 3u);

  // Coordinator dies (gracefully here; its journal records stay open).
  (*coordinator)->stop();
  EXPECT_EQ(open->result.get().status.code(), StatusCode::kUnavailable);

  // Promotion: a NEW coordinator boots off a COPY of the worker's replica
  // and re-owns the in-flight job. The replica is the standard PTSJ format,
  // so this is just journal_path pointed at the snapshot. (A copy, not the
  // live file: the epoch-2 handshake below truncates w1's replica, which
  // must not clobber the promoted coordinator's own journal.)
  const auto promoted_journal = (dir / "promoted.journal").string();
  std::filesystem::copy_file(replica, promoted_journal);
  auto promoted_config = fast_config({port});
  promoted_config.journal_path = promoted_journal;
  promoted_config.epoch = 2;
  auto promoted = Coordinator::start(std::move(promoted_config));
  ASSERT_TRUE(promoted) << promoted.status().to_string();
  auto recovered = (*promoted)->take_recovered();
  ASSERT_EQ(recovered.size(), 1u);  // the resolved job must NOT come back
  auto result = recovered[0].result.get();
  EXPECT_TRUE(result.status.ok()) << result.status.to_string();
  EXPECT_GT(result.best_value, 0.0);

  // The epoch bump must have reset w1's cursor: the promoted coordinator
  // numbers its replication log from 1 again (seq 1 = the recovered job's
  // kSubmitted, seq 2 = its kResolved above), so w1's stale epoch-1 cursor
  // of 3 would swallow both and stall replication to it for good.
  const auto epoch_deadline = std::chrono::steady_clock::now() + 10s;
  while (w1->last_applied_seq() != 2 &&
         std::chrono::steady_clock::now() < epoch_deadline) {
    std::this_thread::sleep_for(10ms);
  }
  EXPECT_EQ(w1->last_applied_seq(), 2u);

  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

TEST(Cluster, WorkerRefusesAStaleCoordinatorEpoch) {
  // Driven through the handler directly: once epoch 5 has been served, a
  // hello from epoch 4 — the deposed coordinator waking back up — must be
  // refused, not silently re-adopted.
  auto w1 = start_worker();
  ASSERT_TRUE(w1);
  const auto hello5 = encode_peer_hello({"pts", 5});
  const std::span<const std::uint8_t> payload5 =
      std::span(hello5).subspan(parallel::wire::kHeaderBytes);
  auto first = w1->on_peer_frame(parallel::wire::MessageType::kPeerHello,
                                 payload5);
  ASSERT_TRUE(first) << first.status().to_string();

  const auto hello4 = encode_peer_hello({"pts", 4});
  const std::span<const std::uint8_t> payload4 =
      std::span(hello4).subspan(parallel::wire::kHeaderBytes);
  auto stale = w1->on_peer_frame(parallel::wire::MessageType::kPeerHello,
                                 payload4);
  ASSERT_FALSE(stale);
  EXPECT_EQ(stale.status().code(), StatusCode::kInvalidArgument);

  // The incumbent epoch reconnecting is fine (cursor kept, no refusal).
  auto again = w1->on_peer_frame(parallel::wire::MessageType::kPeerHello,
                                 payload5);
  EXPECT_TRUE(again) << again.status().to_string();
}

TEST(Cluster, CoordinatorJournalKeepsDedupProvenanceOnReplay) {
  // The coordinator writes a coalesced follower as kSubmitted THEN kDedup;
  // replay only honors a link whose follower is already open, so the
  // reverse order would silently drop the provenance.
  const auto dir = std::filesystem::temp_directory_path() /
                   ("pts_cluster_dedup_journal_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  auto config = fast_config({1});  // no node listens: jobs stay open
  config.journal_path = (dir / "coord.journal").string();
  const auto journal_path = config.journal_path;
  auto coordinator = Coordinator::start(std::move(config));
  ASSERT_TRUE(coordinator) << coordinator.status().to_string();

  auto first = (*coordinator)->submit(make_request(51, /*budget=*/5.0));
  auto second = (*coordinator)->submit(make_request(51, /*budget=*/5.0));
  ASSERT_TRUE(first && second);
  EXPECT_TRUE(second->deduplicated);
  (*coordinator)->stop();  // waiters resolve kUnavailable, records stay open

  auto recovered = service::journal::recover_jobs(journal_path);
  ASSERT_TRUE(recovered) << recovered.status().to_string();
  ASSERT_EQ(recovered->size(), 2u);
  EXPECT_EQ((*recovered)[0].dedup_primary, 0u);
  EXPECT_EQ((*recovered)[1].dedup_primary, (*recovered)[0].id);

  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

TEST(Cluster, WorkerWithoutReplicaNeverAcksReplication) {
  // A node with no replica journal still solves jobs, but its
  // applied-through cursor must stay at 0: acking records it never
  // persisted would let a promotion trust an empty (nonexistent) replica.
  auto w1 = start_worker(/*replica=*/"");
  ASSERT_TRUE(w1);
  auto coordinator = Coordinator::start(fast_config({w1->port()}));
  ASSERT_TRUE(coordinator) << coordinator.status().to_string();
  wait_for_peers(**coordinator, 1);

  auto handle = (*coordinator)->submit(make_request(41, /*budget=*/0.1));
  ASSERT_TRUE(handle) << handle.status().to_string();
  EXPECT_TRUE(handle->result.get().status.ok());
  EXPECT_EQ(w1->last_applied_seq(), 0u);
}

TEST(Cluster, RejoinedWorkerCatchesUpAndTakesPendingWork) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("pts_cluster_rejoin_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);

  auto w1 = start_worker((dir / "w1.replica").string());
  ASSERT_TRUE(w1);
  const auto port = w1->port();
  auto coordinator = Coordinator::start(fast_config({port}));
  ASSERT_TRUE(coordinator) << coordinator.status().to_string();
  wait_for_peers(**coordinator, 1);

  auto handle = (*coordinator)->submit(make_request(31, /*budget=*/0.3));
  ASSERT_TRUE(handle) << handle.status().to_string();

  // The only node dies; the job returns to pending with nowhere to go.
  w1->stop();
  w1.reset();

  // A replacement joins on the SAME address with a fresh replica (cursor
  // 0). The coordinator must re-handshake, resend the live image and
  // dispatch the stranded job to it.
  auto w2 = start_worker((dir / "w2.replica").string(), port);
  ASSERT_TRUE(w2);

  auto result = handle->result.get();
  EXPECT_TRUE(result.status.ok()) << result.status.to_string();
  EXPECT_GE(w2->last_applied_seq(), 1u);
  EXPECT_GE((*coordinator)->stats().nodes_connected, 2u);

  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

TEST(Cluster, CoordinatorRefusesAnEmptyRoster) {
  CoordinatorConfig config;
  auto coordinator = Coordinator::start(std::move(config));
  ASSERT_FALSE(coordinator);
  EXPECT_EQ(coordinator.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace pts::cluster
