// Client-protocol codec tests (DESIGN.md §10): every frame of the v3 client
// range round-trips bit-exactly, and every decoder is total — truncated
// payloads, corrupt headers, absurd length prefixes, unknown enum bytes and
// random bit flips come back as a Status, never a crash or an unbounded
// allocation. These frames cross a machine boundary, so the fuzz coverage
// here is the server's first line of defense.
#include "net/protocol.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "bounds/greedy.hpp"
#include "mkp/generator.hpp"
#include "util/rng.hpp"

namespace pts::net {
namespace {

namespace wire = parallel::wire;

mkp::Instance make_instance(std::uint64_t seed = 1) {
  return mkp::generate_gk({.num_items = 40, .num_constraints = 5}, seed);
}

mkp::Solution make_solution(const mkp::Instance& inst) {
  Rng rng(17);
  return bounds::greedy_randomized(inst, rng);
}

SubmitJob make_submit(const mkp::Instance& inst) {
  service::JobOptions options;
  options.preset = "thorough";
  options.time_budget_seconds = 0.625;
  options.seed = 99;
  options.target_value = 1234.5;
  options.mode = parallel::CooperationMode::kCooperativeAdaptive;
  options.backend = parallel::Backend::kProcess;
  options.proc.worker_path = "/does/not/matter";
  options.core_reduction = true;
  return SubmitJob{/*request_id=*/7,
                   /*tenant=*/"prod",
                   /*priority=*/3,
                   /*deadline_seconds=*/2.5,
                   service::WarmStartPolicy::kSimilar,
                   /*allow_dedup=*/false,
                   std::move(options),
                   mkp::Instance(inst)};
}

/// Splits an encoded frame into its validated header and payload view.
std::span<const std::uint8_t> payload_of(const std::vector<std::uint8_t>& frame,
                                         wire::MessageType expected) {
  auto header = wire::decode_header(frame);
  EXPECT_TRUE(header) << header.status().to_string();
  if (header) EXPECT_EQ(header->type, expected);
  return std::span<const std::uint8_t>(frame).subspan(wire::kHeaderBytes);
}

TEST(NetProtocol, SubmitJobRoundTrip) {
  const auto inst = make_instance();
  const auto m = make_submit(inst);
  const auto frame = encode_submit_job(m);
  const auto decoded =
      decode_submit_job(payload_of(frame, wire::MessageType::kSubmitJob));
  ASSERT_TRUE(decoded) << decoded.status().to_string();
  EXPECT_EQ(decoded->request_id, 7u);
  EXPECT_EQ(decoded->tenant, "prod");
  EXPECT_EQ(decoded->priority, 3);
  ASSERT_TRUE(decoded->deadline_seconds.has_value());
  EXPECT_EQ(*decoded->deadline_seconds, 2.5);
  EXPECT_EQ(decoded->warm_start, service::WarmStartPolicy::kSimilar);
  EXPECT_FALSE(decoded->allow_dedup);
  EXPECT_EQ(decoded->options.preset, "thorough");
  EXPECT_EQ(decoded->options.time_budget_seconds, 0.625);
  EXPECT_EQ(decoded->options.seed, 99u);
  ASSERT_TRUE(decoded->options.target_value.has_value());
  EXPECT_EQ(*decoded->options.target_value, 1234.5);
  ASSERT_TRUE(decoded->options.mode.has_value());
  EXPECT_EQ(*decoded->options.mode, parallel::CooperationMode::kCooperativeAdaptive);
  ASSERT_TRUE(decoded->options.backend.has_value());
  EXPECT_EQ(*decoded->options.backend, parallel::Backend::kProcess);
  EXPECT_TRUE(decoded->options.core_reduction);
  // The instance survives bit-exactly — the server's content address is
  // computed over these bytes, so any drift would fragment dedup.
  EXPECT_EQ(decoded->instance.num_items(), inst.num_items());
  EXPECT_EQ(decoded->instance.num_constraints(), inst.num_constraints());
  for (std::size_t j = 0; j < inst.num_items(); ++j) {
    EXPECT_EQ(decoded->instance.profit(j), inst.profit(j));
  }
}

TEST(NetProtocol, SubmitJobWithoutDeadlineRoundTrips) {
  const auto inst = make_instance();
  auto m = make_submit(inst);
  m.deadline_seconds.reset();
  const auto frame = encode_submit_job(m);
  const auto decoded =
      decode_submit_job(payload_of(frame, wire::MessageType::kSubmitJob));
  ASSERT_TRUE(decoded) << decoded.status().to_string();
  EXPECT_FALSE(decoded->deadline_seconds.has_value());
}

TEST(NetProtocol, SubmitAckRoundTrip) {
  SubmitAck m;
  m.request_id = 11;
  m.status = Status::resource_exhausted("queue full");
  m.job_id = 42;
  m.content_hash = 0xDEADBEEFCAFEF00Dull;
  m.deduplicated = true;
  const auto frame = encode_submit_ack(m);
  const auto decoded =
      decode_submit_ack(payload_of(frame, wire::MessageType::kSubmitAck));
  ASSERT_TRUE(decoded) << decoded.status().to_string();
  EXPECT_EQ(decoded->request_id, 11u);
  EXPECT_EQ(decoded->status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(decoded->status.message(), "queue full");
  EXPECT_EQ(decoded->job_id, 42u);
  EXPECT_EQ(decoded->content_hash, 0xDEADBEEFCAFEF00Dull);
  EXPECT_TRUE(decoded->deduplicated);
}

TEST(NetProtocol, JobEventRoundTripIsBitExact) {
  JobEvent m;
  m.request_id = 5;
  m.anytime = {{obs::kGlobalSource, 0.125, 100, 17.5},
               {/*source=*/2, 1.75, 900, 42.0}};
  const auto frame = encode_job_event(m);
  const auto decoded =
      decode_job_event(payload_of(frame, wire::MessageType::kJobEvent));
  ASSERT_TRUE(decoded) << decoded.status().to_string();
  EXPECT_EQ(decoded->request_id, 5u);
  ASSERT_EQ(decoded->anytime.size(), 2u);
  EXPECT_EQ(decoded->anytime[0].source, obs::kGlobalSource);
  const double seconds = decoded->anytime[1].seconds;
  const double expected = 1.75;
  EXPECT_EQ(std::memcmp(&seconds, &expected, sizeof(double)), 0);
  EXPECT_EQ(decoded->anytime[1].work_units, 900u);
}

TEST(NetProtocol, JobResultRoundTrip) {
  const auto inst = make_instance();
  JobResultFrame m;
  m.request_id = 13;
  m.status = Status::deadline_exceeded("missed it");
  m.origin = service::JobOrigin::kResumed;
  m.best = make_solution(inst);
  m.best_value = m.best->value();
  m.total_moves = 123456;
  m.reached_target = true;
  m.slave_faults = 2;
  m.queue_seconds = 0.25;
  m.run_seconds = 1.5;
  m.start_sequence = 9;
  m.tenant = "batch";
  m.content_hash = 0x1122334455667788ull;
  m.deduplicated = true;
  m.warm_started = true;
  const auto frame = encode_job_result(m);
  const auto decoded = decode_job_result(
      payload_of(frame, wire::MessageType::kJobResult), inst);
  ASSERT_TRUE(decoded) << decoded.status().to_string();
  EXPECT_EQ(decoded->request_id, 13u);
  EXPECT_EQ(decoded->status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(decoded->origin, service::JobOrigin::kResumed);
  ASSERT_TRUE(decoded->best.has_value());
  EXPECT_EQ(*decoded->best, *m.best);
  const double got = decoded->best_value;
  EXPECT_EQ(std::memcmp(&got, &m.best_value, sizeof(double)), 0);
  EXPECT_EQ(decoded->total_moves, 123456u);
  EXPECT_TRUE(decoded->reached_target);
  EXPECT_EQ(decoded->slave_faults, 2u);
  EXPECT_EQ(decoded->start_sequence, 9u);
  EXPECT_EQ(decoded->tenant, "batch");
  EXPECT_EQ(decoded->content_hash, 0x1122334455667788ull);
  EXPECT_TRUE(decoded->deduplicated);
  EXPECT_TRUE(decoded->warm_started);
}

TEST(NetProtocol, JobResultWithoutSolutionRoundTrips) {
  const auto inst = make_instance();
  JobResultFrame m;
  m.request_id = 1;
  m.status = Status::invalid_argument("unknown preset 'warp-speed'");
  const auto frame = encode_job_result(m);
  const auto decoded = decode_job_result(
      payload_of(frame, wire::MessageType::kJobResult), inst);
  ASSERT_TRUE(decoded) << decoded.status().to_string();
  EXPECT_FALSE(decoded->best.has_value());
  EXPECT_EQ(decoded->status.code(), StatusCode::kInvalidArgument);
}

TEST(NetProtocol, CancelAndGoodbyeRoundTrip) {
  const auto cancel_frame = encode_cancel_job({/*request_id=*/21});
  const auto cancel = decode_cancel_job(
      payload_of(cancel_frame, wire::MessageType::kCancelJob));
  ASSERT_TRUE(cancel) << cancel.status().to_string();
  EXPECT_EQ(cancel->request_id, 21u);

  const auto goodbye_frame = encode_goodbye({"draining for restart"});
  const auto goodbye = decode_goodbye(
      payload_of(goodbye_frame, wire::MessageType::kGoodbye));
  ASSERT_TRUE(goodbye) << goodbye.status().to_string();
  EXPECT_EQ(goodbye->reason, "draining for restart");
}

// -- Header hardening for the client range. --

TEST(NetProtocolHeader, RejectsBadMagic) {
  auto frame = encode_cancel_job({1});
  frame[0] ^= 0xFF;
  const auto header = wire::decode_header(frame);
  ASSERT_FALSE(header);
  EXPECT_EQ(header.status().code(), StatusCode::kInvalidArgument);
}

TEST(NetProtocolHeader, RejectsBadVersion) {
  auto frame = encode_cancel_job({1});
  frame[2] = wire::kVersion + 1;
  EXPECT_FALSE(wire::decode_header(frame));
}

TEST(NetProtocolHeader, RejectsTypeBetweenWorkerAndClientRanges) {
  // The gap between kTelemetry and kSubmitJob is unassigned; a byte there
  // must be refused even though both ranges around it are valid.
  auto frame = encode_cancel_job({1});
  frame[3] = static_cast<std::uint8_t>(wire::MessageType::kSubmitJob) - 1;
  EXPECT_FALSE(wire::decode_header(frame));
}

TEST(NetProtocolHeader, RejectsOversizedLengthPrefix) {
  // A corrupt length prefix must be refused BEFORE any allocation: claim a
  // ~4 GiB payload and expect a clean Status.
  auto frame = encode_goodbye({"x"});
  const std::uint32_t huge = 0xFFFFFFFFu;
  std::memcpy(frame.data() + 4, &huge, sizeof(huge));
  const auto header = wire::decode_header(frame);
  ASSERT_FALSE(header);
  EXPECT_EQ(header.status().code(), StatusCode::kInvalidArgument);
}

// -- Totality fuzz: truncation at every cut, for every frame type. --

TEST(NetProtocolFuzz, TruncatedPayloadsAlwaysReturnStatus) {
  const auto inst = make_instance();
  JobEvent event;
  event.request_id = 3;
  event.anytime = {{/*source=*/0, 0.5, 10, 1.0}};
  JobResultFrame result;
  result.request_id = 4;
  result.best = make_solution(inst);
  result.best_value = result.best->value();
  result.tenant = "prod";
  SubmitAck ack;
  ack.request_id = 2;
  ack.status = Status::unavailable("shutting down");
  const std::vector<std::vector<std::uint8_t>> frames = {
      encode_submit_job(make_submit(inst)), encode_submit_ack(ack),
      encode_job_event(event),              encode_job_result(result),
      encode_cancel_job({6}),               encode_goodbye({"bye"}),
  };
  for (const auto& frame : frames) {
    const auto header = wire::decode_header(frame);
    ASSERT_TRUE(header) << header.status().to_string();
    const auto payload =
        std::span<const std::uint8_t>(frame).subspan(wire::kHeaderBytes);
    for (std::size_t cut = 0; cut < payload.size();
         cut += (payload.size() > 512 ? 37 : 1)) {
      const auto stub = payload.subspan(0, cut);
      switch (header->type) {
        case wire::MessageType::kSubmitJob:
          EXPECT_FALSE(decode_submit_job(stub)) << "cut=" << cut;
          break;
        case wire::MessageType::kSubmitAck:
          EXPECT_FALSE(decode_submit_ack(stub)) << "cut=" << cut;
          break;
        case wire::MessageType::kJobEvent:
          EXPECT_FALSE(decode_job_event(stub)) << "cut=" << cut;
          break;
        case wire::MessageType::kJobResult:
          EXPECT_FALSE(decode_job_result(stub, inst)) << "cut=" << cut;
          break;
        case wire::MessageType::kCancelJob:
          EXPECT_FALSE(decode_cancel_job(stub)) << "cut=" << cut;
          break;
        case wire::MessageType::kGoodbye:
          EXPECT_FALSE(decode_goodbye(stub)) << "cut=" << cut;
          break;
        default:
          FAIL() << "unexpected frame type";
      }
    }
  }
}

TEST(NetProtocolFuzz, TrailingGarbageIsRejected) {
  // Decoders are exact, not prefix-tolerant: extra bytes after a valid
  // image mean a framing bug (or an attack) and must be refused.
  auto frame = encode_cancel_job({9});
  std::vector<std::uint8_t> payload(frame.begin() + wire::kHeaderBytes,
                                    frame.end());
  payload.push_back(0x00);
  EXPECT_FALSE(decode_cancel_job(payload));
}

TEST(NetProtocolFuzz, UnknownEnumBytesAreRejected) {
  const auto inst = make_instance();
  {  // warm-start policy byte past kSimilar
    auto m = make_submit(inst);
    auto frame = encode_submit_job(m);
    // The policy byte sits right after request_id (8) + tenant (4 + len) +
    // priority (4) + deadline flag+value (1 + 8) in the payload.
    const std::size_t offset =
        wire::kHeaderBytes + 8 + 4 + m.tenant.size() + 4 + 1 + 8;
    ASSERT_LT(offset, frame.size());
    frame[offset] = 0x7F;
    EXPECT_FALSE(decode_submit_job(
        std::span<const std::uint8_t>(frame).subspan(wire::kHeaderBytes)));
  }
  {  // status code byte past kInternal
    SubmitAck ack;
    ack.request_id = 1;
    auto frame = encode_submit_ack(ack);
    frame[wire::kHeaderBytes + 8] = 0x7F;  // code byte follows request_id
    EXPECT_FALSE(decode_submit_ack(
        std::span<const std::uint8_t>(frame).subspan(wire::kHeaderBytes)));
  }
}

TEST(NetProtocolFuzz, ImplausibleSampleCountIsRejectedWithoutAllocation) {
  JobEvent m;
  m.request_id = 1;
  m.anytime = {{/*source=*/0, 0.5, 10, 1.0}};
  auto frame = encode_job_event(m);
  // The sample count is the u32 after request_id (8) + kind (1).
  const std::uint32_t absurd = 0x7FFFFFFFu;
  std::memcpy(frame.data() + wire::kHeaderBytes + 9, &absurd, sizeof(absurd));
  EXPECT_FALSE(decode_job_event(
      std::span<const std::uint8_t>(frame).subspan(wire::kHeaderBytes)));
}

TEST(NetProtocolFuzz, RandomByteFlipsNeverCrashTheDecoders) {
  // Corruption may happen to decode (a flipped low bit in a double payload
  // is still a valid frame) — the invariant under test is totality: every
  // outcome is a value or a Status, never a crash or a giant allocation.
  const auto inst = make_instance();
  const auto reference = encode_submit_job(make_submit(inst));
  Rng rng(2026);
  for (int trial = 0; trial < 300; ++trial) {
    auto frame = reference;
    const int flips = 1 + static_cast<int>(rng.next_below(4));
    for (int f = 0; f < flips; ++f) {
      const auto pos = rng.next_below(frame.size());
      frame[pos] ^= static_cast<std::uint8_t>(1u << rng.next_below(8));
    }
    const auto header = wire::decode_header(frame);
    if (!header) continue;
    const auto payload = std::span<const std::uint8_t>(frame).subspan(
        wire::kHeaderBytes,
        std::min<std::size_t>(frame.size() - wire::kHeaderBytes,
                              header->payload_size));
    if (payload.size() < header->payload_size) continue;  // truncated claim
    switch (header->type) {
      case wire::MessageType::kSubmitJob:
        (void)decode_submit_job(payload);
        break;
      case wire::MessageType::kSubmitAck:
        (void)decode_submit_ack(payload);
        break;
      case wire::MessageType::kJobEvent:
        (void)decode_job_event(payload);
        break;
      case wire::MessageType::kJobResult:
        (void)decode_job_result(payload, inst);
        break;
      case wire::MessageType::kCancelJob:
        (void)decode_cancel_job(payload);
        break;
      case wire::MessageType::kGoodbye:
        (void)decode_goodbye(payload);
        break;
      default:
        break;  // a flip may land in the worker range; not ours to decode
    }
  }
}

}  // namespace
}  // namespace pts::net
