// Client reconnect tests (DESIGN.md §10): a connection that dies
// mid-conversation is rebuilt with jittered exponential backoff, and every
// submission still awaiting its result is replayed under its ORIGINAL
// request id. The server restarts on the same port between the drop and
// the retry — exactly the operational event the policy exists for.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>

#include "bounds/greedy.hpp"
#include "mkp/generator.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "service/solver_service.hpp"
#include "util/rng.hpp"

namespace pts::net {
namespace {

using namespace std::chrono_literals;

std::shared_ptr<const mkp::Instance> make_instance(std::uint64_t seed = 1) {
  return std::make_shared<const mkp::Instance>(
      mkp::generate_gk({.num_items = 30, .num_constraints = 4}, seed));
}

service::SubmitRequest make_request(double budget = 2.0) {
  service::SubmitRequest request;
  request.instance = make_instance();
  request.tenant = "prod";
  request.options.preset = "quick";
  request.options.time_budget_seconds = budget;
  request.options.seed = 7;
  return request;
}

ReconnectPolicy fast_policy() {
  ReconnectPolicy policy;
  policy.enabled = true;
  policy.max_attempts = 10;
  policy.initial_backoff_seconds = 0.02;
  policy.max_backoff_seconds = 0.2;
  return policy;
}

TEST(NetClientReconnect, ServerRestartOnSamePortResubmitsAndResolves) {
  service::SolverService service{service::ServiceConfig{}};
  auto first = Server::start(service, {});
  ASSERT_TRUE(first) << first.status().to_string();
  const auto port = (*first)->port();

  auto client =
      Client::connect("127.0.0.1", port, /*timeout_seconds=*/5.0, fast_policy());
  ASSERT_TRUE(client) << client.status().to_string();
  auto job = client->submit(make_request(/*budget=*/1.0));
  ASSERT_TRUE(job) << job.status().to_string();

  // The server goes away and comes back on the SAME port (SO_REUSEADDR);
  // the original job's waiter dies with the connection, but the replayed
  // submission re-runs the same deterministic solve.
  (*first)->stop();
  first->reset();
  auto second = Server::start(service, {.port = port});
  ASSERT_TRUE(second) << second.status().to_string();

  auto result = client->wait(*job, /*timeout_seconds=*/60.0);
  ASSERT_TRUE(result) << result.status().to_string();
  EXPECT_TRUE(result->status.ok()) << result->status.to_string();
  EXPECT_GT(result->best_value, 0.0);
  EXPECT_GE(client->reconnects(), 1u);

  // The rebuilt connection is fully usable for NEW work too.
  auto again = client->submit(make_request(/*budget=*/0.2));
  ASSERT_TRUE(again) << again.status().to_string();
  EXPECT_TRUE(client->wait(*again, 60.0)->status.ok());

  (*second)->stop();
  service.shutdown();
}

TEST(NetClientReconnect, DisabledPolicyStaysDeadAfterDrop) {
  service::SolverService service{service::ServiceConfig{}};
  auto server = Server::start(service, {});
  ASSERT_TRUE(server) << server.status().to_string();

  auto client = Client::connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(client) << client.status().to_string();
  auto job = client->submit(make_request(/*budget=*/5.0));
  ASSERT_TRUE(job) << job.status().to_string();

  (*server)->stop();
  auto result = client->wait(*job, /*timeout_seconds=*/30.0);
  ASSERT_FALSE(result);
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(client->reconnects(), 0u);
  service.shutdown();
}

TEST(NetClientReconnect, ExhaustedAttemptsComeBackUnavailable) {
  service::SolverService service{service::ServiceConfig{}};
  auto server = Server::start(service, {});
  ASSERT_TRUE(server) << server.status().to_string();

  ReconnectPolicy policy = fast_policy();
  policy.max_attempts = 2;
  auto client = Client::connect("127.0.0.1", (*server)->port(),
                                /*timeout_seconds=*/5.0, policy);
  ASSERT_TRUE(client) << client.status().to_string();
  auto job = client->submit(make_request(/*budget=*/5.0));
  ASSERT_TRUE(job) << job.status().to_string();

  // Nothing ever comes back on this port: both attempts must burn out and
  // the wait must resolve kUnavailable instead of spinning forever.
  (*server)->stop();
  auto result = client->wait(*job, /*timeout_seconds=*/30.0);
  ASSERT_FALSE(result);
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  service.shutdown();
}

}  // namespace
}  // namespace pts::net
