// The pts_serve daemon acceptance loop (DESIGN.md §9 + §10): kill -9 a
// serving daemon with a job in flight, restart it on the same --journal, and
// the stranded job is re-enqueued — the "recovered N unresolved job(s)" line
// is the observable contract. Drives the REAL pts_serve binary end to end:
// spawn, parse the bound port off its stdout, submit over TCP, SIGKILL,
// restart, SIGTERM, clean exit.
#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "mkp/generator.hpp"
#include "net/client.hpp"

namespace pts::net {
namespace {

using namespace std::chrono_literals;

constexpr const char* kServeBin = PTS_SERVE_BIN_FOR_TESTS;

/// fork/exec with stdout captured to `out_path` (the test parses the bound
/// port and the recovery banner off it); stderr is discarded.
pid_t spawn_to_file(const std::vector<std::string>& argv_strings,
                    const std::string& out_path) {
  std::vector<char*> argv;
  argv.reserve(argv_strings.size() + 1);
  for (const auto& arg : argv_strings) {
    argv.push_back(const_cast<char*>(arg.c_str()));
  }
  argv.push_back(nullptr);
  const pid_t pid = ::fork();
  if (pid == 0) {
    const int out =
        ::open(out_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    const int devnull = ::open("/dev/null", O_WRONLY);
    if (out >= 0) ::dup2(out, STDOUT_FILENO);
    if (devnull >= 0) ::dup2(devnull, STDERR_FILENO);
    ::execv(argv[0], argv.data());
    std::_Exit(127);
  }
  return pid;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Polls `path` until its contents contain `needle`; returns the full
/// contents (empty-needle-free) or what was there at timeout.
std::string wait_for_output(const std::string& path, const std::string& needle,
                            double timeout_seconds) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_seconds);
  for (;;) {
    auto text = slurp(path);
    if (text.find(needle) != std::string::npos ||
        std::chrono::steady_clock::now() >= deadline) {
      return text;
    }
    std::this_thread::sleep_for(20ms);
  }
}

std::uint16_t parse_port(const std::string& banner) {
  const std::string key = "listening on 127.0.0.1:";
  const auto at = banner.find(key);
  if (at == std::string::npos) return 0;
  return static_cast<std::uint16_t>(
      std::strtoul(banner.c_str() + at + key.size(), nullptr, 10));
}

TEST(PtsServe, Kill9ThenRestartWithJournalReenqueuesStrandedJobs) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("pts_serve_test_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  const auto journal = (dir / "jobs.journal").string();
  const auto out1 = (dir / "serve1.out").string();
  const auto out2 = (dir / "serve2.out").string();

  // First incarnation: serve, accept one long job, die without warning.
  pid_t pid = spawn_to_file({kServeBin, "--port=0", "--workers=2",
                             "--journal=" + journal, "--drain-timeout=2"},
                            out1);
  ASSERT_GT(pid, 0);
  const auto banner = wait_for_output(out1, "listening on", 20.0);
  const auto port = parse_port(banner);
  ASSERT_NE(port, 0) << "pts_serve never announced its port: " << banner;

  {
    auto client = Client::connect("127.0.0.1", port, /*timeout_seconds=*/10.0);
    ASSERT_TRUE(client) << client.status().to_string();
    service::SubmitRequest request;
    request.instance = std::make_shared<const mkp::Instance>(
        mkp::generate_gk({.num_items = 60, .num_constraints = 5}, 11));
    request.tenant = "prod";
    request.options.preset = "thorough";
    request.options.time_budget_seconds = 30.0;
    request.options.seed = 11;
    auto job = client->submit(request);  // the ack means the job is journaled
    ASSERT_TRUE(job) << job.status().to_string();

    ASSERT_EQ(::kill(pid, SIGKILL), 0);
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(status));
  }

  // Second incarnation, same journal: the stranded job must come back.
  pid = spawn_to_file({kServeBin, "--port=0", "--workers=2",
                       "--journal=" + journal, "--drain-timeout=2"},
                      out2);
  ASSERT_GT(pid, 0);
  const auto recovered = wait_for_output(out2, "listening on", 20.0);
  EXPECT_NE(recovered.find("recovered 1 unresolved job(s)"), std::string::npos)
      << "restart output was: " << recovered;

  // Graceful shutdown: SIGTERM drains and exits 0 (the recovered job is
  // cancelled by service shutdown; journaled jobs stay open by design).
  ASSERT_EQ(::kill(pid, SIGTERM), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  EXPECT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);

  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

}  // namespace
}  // namespace pts::net
