// Network front-end integration tests (DESIGN.md §10): a real net::Server
// over a real SolverService on a loopback ephemeral port, driven by the real
// net::Client — the exact frames a remote pts_client sends. The acceptance
// bar: a TCP-submitted job is bit-identical to the same submission made
// in-process (fixed seed, thread AND proc backends), a vanished client
// cancels only its own waiters, and the chaos knobs break things without
// crashing anything.
#include "net/server.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "bounds/greedy.hpp"
#include "mkp/generator.hpp"
#include "net/client.hpp"
#include "service/solver_service.hpp"
#include "util/rng.hpp"

namespace pts::net {
namespace {

using namespace std::chrono_literals;

constexpr const char* kWorkerBin = PTS_WORKER_BIN_FOR_TESTS;

class EnvGuard {
 public:
  EnvGuard(std::initializer_list<std::pair<const char*, const char*>> vars) {
    for (const auto& [name, value] : vars) {
      ::setenv(name, value, 1);
      names_.push_back(name);
    }
  }
  ~EnvGuard() {
    for (const char* name : names_) ::unsetenv(name);
  }
  EnvGuard(const EnvGuard&) = delete;
  EnvGuard& operator=(const EnvGuard&) = delete;

 private:
  std::vector<const char*> names_;
};

std::shared_ptr<const mkp::Instance> make_instance(std::uint64_t seed = 1) {
  return std::make_shared<const mkp::Instance>(
      mkp::generate_gk({.num_items = 30, .num_constraints = 4}, seed));
}

/// A target the search's very first incumbent already beats: the run stops
/// at the first round boundary instead of its wall-clock budget, so the
/// trajectory — and the move count — is fully deterministic on a fixed seed.
double easy_target(const mkp::Instance& inst) {
  Rng rng(1);
  return bounds::greedy_randomized(inst, rng).value() * 0.5;
}

service::SubmitRequest make_request(std::shared_ptr<const mkp::Instance> inst,
                                    double budget = 8.0,
                                    std::uint64_t seed = 7) {
  service::SubmitRequest request;
  request.instance = std::move(inst);
  request.tenant = "prod";
  request.options.preset = "quick";
  request.options.time_budget_seconds = budget;
  request.options.seed = seed;
  return request;
}

struct Harness {
  std::unique_ptr<service::SolverService> service;
  std::unique_ptr<Server> server;

  explicit Harness(service::ServiceConfig pool = {}, ServerConfig net = {}) {
    service = std::make_unique<service::SolverService>(pool);
    auto started = Server::start(*service, net);
    EXPECT_TRUE(started) << started.status().to_string();
    if (started) server = std::move(*started);
  }
  ~Harness() {
    if (server) server->stop();
    if (service) service->shutdown();
  }
  Client connect() {
    auto client = Client::connect("127.0.0.1", server->port());
    EXPECT_TRUE(client) << client.status().to_string();
    return std::move(*client);
  }
};

/// The acceptance bar: the SAME SubmitRequest through TCP and through the
/// in-process API lands on a bit-identical result — value, move count and
/// the solution itself. The wire carries IEEE-754 bit patterns end to end.
void expect_tcp_matches_in_process(service::SubmitRequest request) {
  // In-process reference, on its own service so nothing is shared.
  service::JobResult reference;
  {
    service::SolverService local{service::ServiceConfig{}};
    auto handle = local.submit(request);
    ASSERT_TRUE(handle) << handle.status().to_string();
    reference = handle->result.get();
  }
  ASSERT_TRUE(reference.status.ok()) << reference.status.to_string();

  ServerConfig net;
  if (request.options.backend == parallel::Backend::kProcess) {
    net.worker_path = kWorkerBin;
  }
  Harness harness({}, net);
  Client client = harness.connect();
  auto job = client.submit(request);
  ASSERT_TRUE(job) << job.status().to_string();
  auto remote = client.wait(*job, /*timeout_seconds=*/60.0);
  ASSERT_TRUE(remote) << remote.status().to_string();
  ASSERT_TRUE(remote->status.ok()) << remote->status.to_string();

  EXPECT_EQ(std::memcmp(&remote->best_value, &reference.best_value,
                        sizeof(double)),
            0)
      << "remote=" << remote->best_value << " local=" << reference.best_value;
  EXPECT_EQ(remote->total_moves, reference.total_moves);
  ASSERT_TRUE(remote->best.has_value());
  ASSERT_TRUE(reference.best.has_value());
  EXPECT_EQ(*remote->best, *reference.best);
  EXPECT_EQ(remote->content_hash, reference.content_hash);
}

TEST(NetServer, TcpSubmissionMatchesInProcessThreadBackend) {
  auto request = make_request(make_instance());
  request.options.target_value = easy_target(*request.instance);
  expect_tcp_matches_in_process(std::move(request));
}

TEST(NetServer, TcpSubmissionMatchesInProcessProcBackend) {
  auto request = make_request(make_instance());
  request.options.target_value = easy_target(*request.instance);
  request.options.backend = parallel::Backend::kProcess;
  request.options.proc.worker_path = kWorkerBin;
  expect_tcp_matches_in_process(std::move(request));
}

TEST(NetServer, ServerOverridesClientWorkerPath) {
  // A client-sent worker path names a binary on the CLIENT's machine; the
  // server must substitute its own. A bogus client path + a correct server
  // path must still solve.
  ServerConfig net;
  net.worker_path = kWorkerBin;
  Harness harness({}, net);
  Client client = harness.connect();
  auto request = make_request(make_instance(), /*budget=*/8.0);
  request.options.target_value = easy_target(*request.instance);
  request.options.backend = parallel::Backend::kProcess;
  request.options.proc.worker_path = "/nonexistent/pts_worker";
  auto job = client.submit(request);
  ASSERT_TRUE(job) << job.status().to_string();
  auto result = client.wait(*job, 60.0);
  ASSERT_TRUE(result) << result.status().to_string();
  EXPECT_TRUE(result->status.ok()) << result->status.to_string();
}

TEST(NetServer, CancelFrameResolvesThatJobCancelled) {
  Harness harness;
  Client client = harness.connect();
  auto request = make_request(make_instance(), /*budget=*/30.0);
  request.options.preset = "thorough";
  auto job = client.submit(request);
  ASSERT_TRUE(job) << job.status().to_string();
  std::this_thread::sleep_for(200ms);
  ASSERT_TRUE(client.cancel(*job).ok());
  auto result = client.wait(*job, /*timeout_seconds=*/30.0);
  ASSERT_TRUE(result) << result.status().to_string();
  EXPECT_EQ(result->status.code(), StatusCode::kCancelled);
}

TEST(NetServer, DisconnectCancelsOnlyThatConnectionsWaiters) {
  // Two connections attach to ONE deduplicated solve. The first vanishes
  // mid-run; the second still gets its result — the vanished peer loses
  // only its own stake (SolverService::cancel per outstanding submission).
  Harness harness;
  auto inst = make_instance(5);
  Client doomed = harness.connect();
  Client survivor = harness.connect();

  auto request = make_request(inst, /*budget=*/6.0);
  auto first = doomed.submit(request);
  ASSERT_TRUE(first) << first.status().to_string();
  auto second = survivor.submit(request);
  ASSERT_TRUE(second) << second.status().to_string();
  EXPECT_TRUE(second->deduplicated);  // same instance, same solve shape

  doomed.close();  // vanish mid-solve

  auto result = survivor.wait(*second, /*timeout_seconds=*/60.0);
  ASSERT_TRUE(result) << result.status().to_string();
  EXPECT_TRUE(result->status.ok()) << result->status.to_string();

  // The server counted exactly the vanished connection's waiter.
  const auto deadline = std::chrono::steady_clock::now() + 10s;
  while (harness.server->stats().disconnect_cancels == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(10ms);
  }
  EXPECT_EQ(harness.server->stats().disconnect_cancels, 1u);
}

TEST(NetServer, AdmissionRejectionComesBackOnTheAck) {
  // Queue backpressure is an ADMISSION failure: submit() returns the Status,
  // the server ships it on the ack, no result frame ever follows.
  service::ServiceConfig pool;
  pool.num_workers = 1;
  pool.queue_capacity = 1;
  Harness harness(pool);
  Client client = harness.connect();
  std::vector<RemoteJob> accepted;
  Status rejection;
  for (int k = 0; k < 8; ++k) {
    auto request = make_request(make_instance(static_cast<std::uint64_t>(k)),
                                /*budget=*/10.0);
    request.allow_dedup = false;
    auto job = client.submit(request);
    if (job) {
      accepted.push_back(*job);
      continue;
    }
    rejection = job.status();
    break;
  }
  EXPECT_EQ(rejection.code(), StatusCode::kResourceExhausted)
      << rejection.to_string();
  for (const auto& job : accepted) (void)client.cancel(job);
  for (const auto& job : accepted) (void)client.wait(job, 30.0);
}

TEST(NetServer, InvalidOptionsAreRefusedOnTheAck) {
  // An unknown preset is an admission failure under the request API: the
  // submit() Status crosses back on the ack, no result frame ever follows —
  // and the connection stays healthy for the next submission.
  Harness harness;
  Client client = harness.connect();
  auto request = make_request(make_instance());
  request.options.preset = "warp-speed";
  auto job = client.submit(request);
  ASSERT_FALSE(job);
  EXPECT_EQ(job.status().code(), StatusCode::kInvalidArgument)
      << job.status().to_string();

  auto good = make_request(make_instance(), /*budget=*/8.0);
  good.options.target_value = easy_target(*good.instance);
  auto ok = client.submit(good);
  ASSERT_TRUE(ok) << ok.status().to_string();
  auto result = client.wait(*ok, 60.0);
  ASSERT_TRUE(result) << result.status().to_string();
  EXPECT_TRUE(result->status.ok()) << result->status.to_string();
}

TEST(NetServer, ConnectionCapTurnsAwayWithGoodbye) {
  ServerConfig net;
  net.max_connections = 1;
  Harness harness({}, net);
  Client first = harness.connect();
  Client second = harness.connect();  // accepted, told Goodbye, closed
  auto job = second.submit(make_request(make_instance(), /*budget=*/1.0));
  EXPECT_FALSE(job);
  const auto deadline = std::chrono::steady_clock::now() + 10s;
  while (harness.server->stats().connections_turned_away == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(10ms);
  }
  EXPECT_EQ(harness.server->stats().connections_turned_away, 1u);

  // The capped connection was never admitted; the first one still works.
  auto ok = first.submit(make_request(make_instance(), /*budget=*/2.0));
  ASSERT_TRUE(ok) << ok.status().to_string();
  auto result = first.wait(*ok, 60.0);
  ASSERT_TRUE(result) << result.status().to_string();
}

TEST(NetServer, DrainRefusesNewWorkAndSaysGoodbye) {
  Harness harness;
  Client client = harness.connect();
  EXPECT_TRUE(harness.server->drain(/*timeout_seconds=*/5.0));
  auto job = client.submit(make_request(make_instance(), /*budget=*/1.0));
  ASSERT_FALSE(job);
  EXPECT_EQ(job.status().code(), StatusCode::kUnavailable)
      << job.status().to_string();
}

TEST(NetServerChaos, CorruptKnobInjectsWithoutCrashing) {
  // 100% corrupt probability: every outbound frame gets one flipped bit past
  // the header. The invariant is totality, not failure — a flip can land in
  // a don't-care byte and still decode — so the assertions are "chaos fired"
  // and "nothing crashed", with every client outcome a value or a Status.
  EnvGuard chaos({{"PTS_CHAOS_NET_CORRUPT_PPM", "1000000"}});
  Harness harness;
  Client client = harness.connect();
  for (int k = 0; k < 4; ++k) {
    auto job = client.submit(make_request(make_instance(), /*budget=*/0.2));
    if (!job) break;  // a corrupt ack is the expected outcome
    (void)client.wait(*job, 30.0);
  }
  EXPECT_GE(harness.server->stats().chaos_injections, 1u);
}

TEST(NetServerChaos, DropKnobVanishesTheConnection) {
  // 100% drop probability: the first inbound frame drops the connection as
  // if the peer vanished. The client sees a dead socket, the server counts
  // the injection, and nothing hangs.
  EnvGuard chaos({{"PTS_CHAOS_NET_DROP_PPM", "1000000"}});
  Harness harness;
  Client client = harness.connect();
  auto job = client.submit(make_request(make_instance(), /*budget=*/1.0));
  EXPECT_FALSE(job);
  EXPECT_GE(harness.server->stats().chaos_injections, 1u);
}

TEST(NetServer, IdleConnectionIsReapedAfterTimeout) {
  // A connection that never sends a byte (a half-open peer after a crash
  // or a silent partition) must not hold its reader thread and connection
  // slot forever: past the idle timeout the server reaps it.
  ServerConfig net;
  net.idle_timeout_seconds = 0.3;
  Harness harness({}, net);
  auto socket = dial("127.0.0.1", harness.server->port(), 5.0);
  ASSERT_TRUE(socket) << socket.status().to_string();

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(10.0);
  while (harness.server->stats().connections_reaped == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(10ms);
  }
  EXPECT_EQ(harness.server->stats().connections_reaped, 1u);
}

TEST(NetServer, ConnectionOwedAResultIsNeverReaped) {
  // The reap rule is byte-silence AND no outstanding work: a client that
  // submitted a job longer than the idle timeout and is quietly blocked in
  // wait() keeps its connection until the result frame goes out.
  ServerConfig net;
  net.idle_timeout_seconds = 0.3;
  Harness harness({}, net);
  Client client = harness.connect();
  auto job = client.submit(make_request(make_instance(), /*budget=*/1.5));
  ASSERT_TRUE(job) << job.status().to_string();
  auto result = client.wait(*job, /*timeout_seconds=*/60.0);
  ASSERT_TRUE(result) << result.status().to_string();
  EXPECT_TRUE(result->status.ok()) << result->status.to_string();
  EXPECT_EQ(harness.server->stats().connections_reaped, 0u);
}

TEST(NetServer, StopWithOutstandingWorkTerminates) {
  // stop() without a drain must cancel outstanding submissions and join
  // every thread — a hang here is the bug.
  auto harness = std::make_unique<Harness>();
  Client client = harness->connect();
  auto request = make_request(make_instance(), /*budget=*/30.0);
  request.options.preset = "thorough";
  auto job = client.submit(request);
  ASSERT_TRUE(job) << job.status().to_string();
  harness->server->stop();
  harness.reset();  // ~SolverService: every future resolves
}

}  // namespace
}  // namespace pts::net
