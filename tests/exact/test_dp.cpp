#include "exact/dp_single.hpp"

#include <gtest/gtest.h>

#include "exact/brute_force.hpp"
#include "mkp/generator.hpp"

namespace pts::exact {
namespace {

TEST(Dp, TinyHandExample) {
  mkp::Instance inst("t", {10, 7, 6, 1}, {5, 4, 3, 1}, {7});
  const auto result = dp_single_knapsack(inst);
  EXPECT_DOUBLE_EQ(result.optimum, 13.0);
  EXPECT_TRUE(result.best.is_feasible());
}

TEST(Dp, SubsetSumReachesCapacity) {
  mkp::Instance inst("ss", {1, 2, 3, 4, 5, 6}, {1, 2, 3, 4, 5, 6}, {10});
  const auto result = dp_single_knapsack(inst);
  EXPECT_DOUBLE_EQ(result.optimum, 10.0);
}

TEST(Dp, NothingFits) {
  mkp::Instance inst("n", {5.0}, {10.0}, {4.0});
  const auto result = dp_single_knapsack(inst);
  EXPECT_DOUBLE_EQ(result.optimum, 0.0);
  EXPECT_EQ(result.best.cardinality(), 0U);
}

TEST(Dp, FractionalCapacityIsFloored) {
  // capacity 7.9 floors to 7: same optimum as capacity 7.
  mkp::Instance inst("f", {10, 7, 6, 1}, {5, 4, 3, 1}, {7.9});
  const auto result = dp_single_knapsack(inst);
  EXPECT_DOUBLE_EQ(result.optimum, 13.0);
}

TEST(DpDeath, RequiresSingleConstraint) {
  mkp::Instance inst("m2", {1, 1}, {1, 1, 1, 1}, {2, 2});
  EXPECT_DEATH((void)dp_single_knapsack(inst), "one constraint");
}

TEST(DpDeath, RequiresIntegerWeights) {
  mkp::Instance inst("fr", {1, 1}, {1.5, 2.0}, {3.0});
  EXPECT_DEATH((void)dp_single_knapsack(inst), "integer weights");
}

class DpOracleSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DpOracleSweep, MatchesBruteForce) {
  const auto inst = mkp::generate_uncorrelated(18, 1, GetParam(), 40.0, 0.5);
  const auto oracle = brute_force(inst);
  const auto result = dp_single_knapsack(inst);
  EXPECT_DOUBLE_EQ(result.optimum, oracle.optimum);
}

TEST_P(DpOracleSweep, MatchesBruteForceStronglyCorrelated) {
  const auto inst = mkp::generate_strongly_correlated(15, 1, GetParam(), 30.0, 10.0);
  const auto oracle = brute_force(inst);
  const auto result = dp_single_knapsack(inst);
  EXPECT_DOUBLE_EQ(result.optimum, oracle.optimum);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DpOracleSweep, ::testing::Values(2, 4, 6, 8, 10, 12));

}  // namespace
}  // namespace pts::exact
