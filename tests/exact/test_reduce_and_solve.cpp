#include "exact/reduce_and_solve.hpp"

#include <gtest/gtest.h>

#include "exact/brute_force.hpp"
#include "mkp/catalog.hpp"
#include "mkp/generator.hpp"

namespace pts::exact {
namespace {

TEST(ReduceAndSolve, MatchesPlainBnbOnCatalog) {
  for (const auto& entry : mkp::catalog()) {
    const auto result = branch_and_bound_with_reduction(entry.instance);
    EXPECT_TRUE(result.proven_optimal) << entry.instance.name();
    EXPECT_DOUBLE_EQ(result.objective, entry.optimum) << entry.instance.name();
    EXPECT_TRUE(result.best.is_feasible());
  }
}

TEST(ReduceAndSolve, StatsAreInternallyConsistent) {
  const auto inst = mkp::generate_uncorrelated(50, 4, 9, 500.0, 0.5);
  ReducedSolveStats stats;
  const auto result = branch_and_bound_with_reduction(inst, {}, &stats);
  EXPECT_TRUE(result.proven_optimal);
  EXPECT_EQ(stats.original_variables, 50U);
  EXPECT_EQ(stats.residual_variables,
            50U - stats.fixed_to_zero - stats.fixed_to_one);
  EXPECT_GT(stats.lp_objective, 0.0);
  EXPECT_GE(stats.lp_objective, stats.greedy_lower_bound);
  EXPECT_GE(result.objective, stats.greedy_lower_bound);
}

TEST(ReduceAndSolve, ReductionShrinksTheTree) {
  // On loose uncorrelated instances the reduction fixes most variables, so
  // the residual tree must be (much) smaller than the plain one.
  const auto inst = mkp::generate_uncorrelated(40, 3, 10, 1000.0, 0.5);
  const auto plain = branch_and_bound(inst);
  ReducedSolveStats stats;
  const auto reduced = branch_and_bound_with_reduction(inst, {}, &stats);
  ASSERT_TRUE(plain.proven_optimal);
  ASSERT_TRUE(reduced.proven_optimal);
  EXPECT_DOUBLE_EQ(reduced.objective, plain.objective);
  EXPECT_GT(stats.fixed_to_zero + stats.fixed_to_one, 0U);
  EXPECT_LE(reduced.nodes, plain.nodes);
}

TEST(ReduceAndSolve, FpStyleInstancesResistReduction) {
  // The FP set exists to defeat size-reduction methods: profits hug the
  // aggregate weights, reduced costs cluster near zero, and few variables
  // fix. (The quantitative comparison lives in bench_reduction.)
  const auto gk_loose = mkp::generate_uncorrelated(40, 5, 11, 1000.0, 0.5);
  const auto fp_hard = mkp::generate_fp({.num_items = 40, .num_constraints = 5}, 11);
  ReducedSolveStats loose_stats, hard_stats;
  (void)branch_and_bound_with_reduction(gk_loose, {}, &loose_stats);
  (void)branch_and_bound_with_reduction(fp_hard, {}, &hard_stats);
  EXPECT_LE(hard_stats.fixed_to_zero + hard_stats.fixed_to_one,
            loose_stats.fixed_to_zero + loose_stats.fixed_to_one);
}

class ReduceAndSolveOracle : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ReduceAndSolveOracle, MatchesBruteForceAcrossFamilies) {
  const auto uncorrelated = mkp::generate_uncorrelated(15, 3, GetParam());
  EXPECT_DOUBLE_EQ(branch_and_bound_with_reduction(uncorrelated).objective,
                   brute_force(uncorrelated).optimum);
  const auto gk = mkp::generate_gk({.num_items = 14, .num_constraints = 4}, GetParam());
  EXPECT_DOUBLE_EQ(branch_and_bound_with_reduction(gk).objective,
                   brute_force(gk).optimum);
  const auto fp = mkp::generate_fp({.num_items = 13, .num_constraints = 5}, GetParam());
  EXPECT_DOUBLE_EQ(branch_and_bound_with_reduction(fp).objective,
                   brute_force(fp).optimum);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReduceAndSolveOracle,
                         ::testing::Values(21, 22, 23, 24, 25, 26));

}  // namespace
}  // namespace pts::exact
