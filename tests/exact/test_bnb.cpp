#include "exact/branch_and_bound.hpp"

#include <gtest/gtest.h>

#include "bounds/greedy.hpp"
#include "exact/brute_force.hpp"
#include "mkp/catalog.hpp"
#include "mkp/generator.hpp"

namespace pts::exact {
namespace {

TEST(Bnb, SolvesCatalogToProvenOptimality) {
  for (const auto& entry : mkp::catalog()) {
    const auto result = branch_and_bound(entry.instance);
    EXPECT_TRUE(result.proven_optimal) << entry.instance.name();
    EXPECT_DOUBLE_EQ(result.objective, entry.optimum) << entry.instance.name();
    EXPECT_TRUE(result.best.is_feasible());
    EXPECT_DOUBLE_EQ(result.best.value(), entry.optimum);
  }
}

TEST(Bnb, WarmStartDoesNotChangeTheAnswer) {
  const auto entry = mkp::catalog_entry("cat-blocks");
  BnbOptions options;
  options.initial_lower_bound =
      bounds::greedy_construct(entry.instance).value();
  const auto result = branch_and_bound(entry.instance, options);
  EXPECT_TRUE(result.proven_optimal);
  EXPECT_DOUBLE_EQ(result.objective, entry.optimum);
}

TEST(Bnb, NodeLimitStopsSearch) {
  const auto inst = mkp::generate_gk({.num_items = 80, .num_constraints = 10}, 2);
  BnbOptions options;
  options.node_limit = 50;
  const auto result = branch_and_bound(inst, options);
  EXPECT_FALSE(result.proven_optimal);
  EXPECT_LE(result.nodes, 50U + 1024U);  // limit is checked every 1024 nodes
}

TEST(Bnb, TimeLimitStopsSearch) {
  const auto inst = mkp::generate_gk({.num_items = 200, .num_constraints = 25}, 3);
  BnbOptions options;
  options.time_limit_seconds = 0.05;
  const auto result = branch_and_bound(inst, options);
  EXPECT_LT(result.seconds, 5.0);  // generous: it must not run forever
}

TEST(Bnb, PrunesComparedToBruteForce) {
  const auto inst = mkp::generate_gk({.num_items = 20, .num_constraints = 5}, 4);
  const auto oracle = brute_force(inst);
  const auto result = branch_and_bound(inst);
  ASSERT_TRUE(result.proven_optimal);
  EXPECT_DOUBLE_EQ(result.objective, oracle.optimum);
  EXPECT_LT(result.nodes, oracle.assignments_visited);
}

TEST(Bnb, HandlesMediumFpInstance) {
  const auto inst = mkp::generate_fp({.num_items = 40, .num_constraints = 5}, 6);
  BnbOptions options;
  options.time_limit_seconds = 30.0;
  const auto result = branch_and_bound(inst, options);
  EXPECT_TRUE(result.proven_optimal);
  EXPECT_GT(result.objective, 0.0);
}

TEST(Bnb, NothingFitsGivesZero) {
  mkp::Instance inst("n", {5, 6}, {10, 20}, {4});
  const auto result = branch_and_bound(inst);
  EXPECT_TRUE(result.proven_optimal);
  EXPECT_DOUBLE_EQ(result.objective, 0.0);
}

class BnbOracleSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BnbOracleSweep, MatchesBruteForceOnGk) {
  const auto inst =
      mkp::generate_gk({.num_items = 16, .num_constraints = 5}, GetParam());
  const auto oracle = brute_force(inst);
  const auto result = branch_and_bound(inst);
  ASSERT_TRUE(result.proven_optimal);
  EXPECT_DOUBLE_EQ(result.objective, oracle.optimum);
}

TEST_P(BnbOracleSweep, MatchesBruteForceOnFp) {
  const auto inst =
      mkp::generate_fp({.num_items = 15, .num_constraints = 8}, GetParam());
  const auto oracle = brute_force(inst);
  const auto result = branch_and_bound(inst);
  ASSERT_TRUE(result.proven_optimal);
  EXPECT_DOUBLE_EQ(result.objective, oracle.optimum);
}

TEST_P(BnbOracleSweep, MatchesBruteForceOnUncorrelated) {
  const auto inst = mkp::generate_uncorrelated(17, 3, GetParam());
  const auto oracle = brute_force(inst);
  const auto result = branch_and_bound(inst);
  ASSERT_TRUE(result.proven_optimal);
  EXPECT_DOUBLE_EQ(result.objective, oracle.optimum);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BnbOracleSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

}  // namespace
}  // namespace pts::exact
