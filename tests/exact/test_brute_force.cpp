#include "exact/brute_force.hpp"

#include <gtest/gtest.h>

#include "mkp/catalog.hpp"
#include "mkp/generator.hpp"

namespace pts::exact {
namespace {

TEST(BruteForce, TinyHandExample) {
  // max 10x0 + 7x1 + 6x2 + x3, 5x0+4x1+3x2+x3 <= 7: optimum {1,2} = 13.
  mkp::Instance inst("t", {10, 7, 6, 1}, {5, 4, 3, 1}, {7});
  const auto result = brute_force(inst);
  EXPECT_DOUBLE_EQ(result.optimum, 13.0);
  EXPECT_TRUE(result.best.contains(1));
  EXPECT_TRUE(result.best.contains(2));
  EXPECT_FALSE(result.best.contains(0));
  EXPECT_TRUE(result.best.is_feasible());
}

TEST(BruteForce, VisitsEveryAssignment) {
  mkp::Instance inst("v", {1, 1, 1}, {1, 1, 1}, {3});
  const auto result = brute_force(inst);
  EXPECT_EQ(result.assignments_visited, 8U);
  EXPECT_DOUBLE_EQ(result.optimum, 3.0);
}

TEST(BruteForce, NothingFitsGivesEmptyOptimum) {
  mkp::Instance inst("n", {5, 6}, {10, 20}, {4});
  const auto result = brute_force(inst);
  EXPECT_DOUBLE_EQ(result.optimum, 0.0);
  EXPECT_EQ(result.best.cardinality(), 0U);
}

TEST(BruteForce, MultiConstraintBindingMix) {
  const auto entry = mkp::catalog_entry("cat-crossed");
  const auto result = brute_force(entry.instance);
  EXPECT_DOUBLE_EQ(result.optimum, entry.optimum);
}

TEST(BruteForce, BestSolutionIsConsistent) {
  const auto inst = mkp::generate_gk({.num_items = 12, .num_constraints = 3}, 5);
  const auto result = brute_force(inst);
  EXPECT_TRUE(result.best.check_consistency());
  EXPECT_DOUBLE_EQ(result.best.value(), result.optimum);
}

TEST(BruteForceDeath, RefusesLargeN) {
  const auto inst = mkp::generate_gk({.num_items = 31, .num_constraints = 2}, 1);
  EXPECT_DEATH((void)brute_force(inst), "n <= 30");
}

}  // namespace
}  // namespace pts::exact
