// The event tracer: enable/disable semantics, tid scoping, span/instant/
// sample recording, and the two export formats.
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <thread>

namespace pts::obs {
namespace {

/// Each test drives the process-global tracer; reset around every test so
/// order does not matter.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    tracer().set_enabled(false);
    tracer().clear();
  }
  void TearDown() override {
    tracer().set_enabled(false);
    tracer().clear();
  }
};

TEST_F(TraceTest, DisabledByDefaultAndScopesAreInert) {
  EXPECT_FALSE(tracer().enabled());
  {
    SpanScope span("should_not_record");
    tracer().instant("also_not_recorded");
  }
  EXPECT_EQ(tracer().size(), 0U);
}

TEST_F(TraceTest, RecordsSpansInstantsAndSamples) {
  tracer().set_enabled(true);
  if (!tracer().enabled()) GTEST_SKIP() << "telemetry compiled out";
  const auto start = tracer().now_us();
  tracer().span("phase", start, {{"round", 2.0}});
  tracer().instant("event", {{"x", 1.5}}, "kind", "diversified");
  tracer().sample("queue_depth", 4.0);
  ASSERT_EQ(tracer().size(), 3U);

  const auto events = tracer().snapshot();
  EXPECT_STREQ(events[0].name, "phase");
  EXPECT_EQ(events[0].phase, 'X');
  EXPECT_GE(events[0].dur_us, 0);
  ASSERT_EQ(events[0].args.size(), 1U);
  EXPECT_STREQ(events[0].args[0].key, "round");
  EXPECT_DOUBLE_EQ(events[0].args[0].value, 2.0);
  EXPECT_EQ(events[1].phase, 'i');
  EXPECT_EQ(events[1].detail, "diversified");
  EXPECT_EQ(events[2].phase, 'C');
}

TEST_F(TraceTest, SpanScopeMeasuresItsOwnLifetime) {
  tracer().set_enabled(true);
  if (!tracer().enabled()) GTEST_SKIP() << "telemetry compiled out";
  {
    SpanScope span("scoped", {{"a", 1.0}});
  }
  ASSERT_EQ(tracer().size(), 1U);
  const auto events = tracer().snapshot();
  EXPECT_STREQ(events[0].name, "scoped");
  EXPECT_EQ(events[0].phase, 'X');
  EXPECT_GE(events[0].dur_us, 0);
  ASSERT_EQ(events[0].args.size(), 1U);
}

TEST_F(TraceTest, SpanArmedAtConstructionSurvivesDisable) {
  tracer().set_enabled(true);
  if (!tracer().enabled()) GTEST_SKIP() << "telemetry compiled out";
  {
    SpanScope span("armed_early");
    tracer().set_enabled(false);
  }  // still records: armed when tracing was on
  tracer().set_enabled(true);
  EXPECT_EQ(tracer().size(), 1U);
}

TEST_F(TraceTest, TidScopeTagsEventsAndRestores) {
  tracer().set_enabled(true);
  if (!tracer().enabled()) GTEST_SKIP() << "telemetry compiled out";
  EXPECT_EQ(thread_tid(), 0U);
  {
    TidScope tid(3);
    EXPECT_EQ(thread_tid(), 3U);
    tracer().instant("from_three");
    {
      TidScope inner(5);
      tracer().instant("from_five");
    }
    EXPECT_EQ(thread_tid(), 3U);
  }
  EXPECT_EQ(thread_tid(), 0U);
  const auto events = tracer().snapshot();
  ASSERT_EQ(events.size(), 2U);
  EXPECT_EQ(events[0].tid, 3U);
  EXPECT_EQ(events[1].tid, 5U);
}

TEST_F(TraceTest, TidIsPerThread) {
  tracer().set_enabled(true);
  if (!tracer().enabled()) GTEST_SKIP() << "telemetry compiled out";
  TidScope main_tid(1);
  std::thread worker([] {
    EXPECT_EQ(thread_tid(), 0U);  // scopes do not leak across threads
    TidScope tid(2);
    tracer().instant("worker");
  });
  worker.join();
  tracer().instant("main");
  const auto events = tracer().snapshot();
  ASSERT_EQ(events.size(), 2U);
  EXPECT_EQ(events[0].tid, 2U);
  EXPECT_EQ(events[1].tid, 1U);
}

TEST_F(TraceTest, ChromeTraceIsWellFormedAndSorted) {
  tracer().set_enabled(true);
  if (!tracer().enabled()) GTEST_SKIP() << "telemetry compiled out";
  // Append a later-starting event first: the writer must sort by start
  // timestamp. Hand-built events pin the timestamps (µs clock ties would
  // make real calls land on the same tick and defeat the point).
  tracer().record_event({"later", 'i', 0, 10, 0, {{"v", 1.0}}, nullptr, {}});
  tracer().record_event({"earlier", 'X', 0, 5, 7, {}, nullptr, {}});
  tracer().name_thread(1, "slave-0");

  std::ostringstream out;
  tracer().write_chrome_trace(out);
  const auto text = out.str();
  EXPECT_EQ(text.rfind("{\"traceEvents\":[", 0), 0U);
  EXPECT_NE(text.find("\"name\":\"earlier\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(text.find("\"slave-0\""), std::string::npos);
  EXPECT_LT(text.find("\"name\":\"earlier\""), text.find("\"name\":\"later\""));
  EXPECT_EQ(text.back(), '\n');
}

TEST_F(TraceTest, JsonlHasOneObjectPerEvent) {
  tracer().set_enabled(true);
  if (!tracer().enabled()) GTEST_SKIP() << "telemetry compiled out";
  tracer().instant("a");
  tracer().instant("b", {}, "note", "quote\"and\\slash");
  std::ostringstream out;
  tracer().write_jsonl(out);
  std::istringstream lines(out.str());
  std::string line;
  std::size_t count = 0;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"name\""), std::string::npos);
    ++count;
  }
  EXPECT_EQ(count, 2U);
  // The escaping round-trip: raw quote/backslash never appear unescaped.
  EXPECT_NE(out.str().find("quote\\\"and\\\\slash"), std::string::npos);
}

TEST_F(TraceTest, ClearEmptiesTheBuffer) {
  tracer().set_enabled(true);
  if (!tracer().enabled()) GTEST_SKIP() << "telemetry compiled out";
  tracer().instant("x");
  EXPECT_EQ(tracer().size(), 1U);
  tracer().clear();
  EXPECT_EQ(tracer().size(), 0U);
}

TEST_F(TraceTest, ConcurrentRecordingIsSafe) {
  tracer().set_enabled(true);
  if (!tracer().enabled()) GTEST_SKIP() << "telemetry compiled out";
  constexpr int kThreads = 4;
  constexpr int kEach = 100;
  {
    std::vector<std::jthread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([t] {
        TidScope tid(static_cast<std::uint32_t>(t) + 1);
        for (int i = 0; i < kEach; ++i) tracer().instant("tick");
      });
    }
  }
  EXPECT_EQ(tracer().size(), static_cast<std::size_t>(kThreads) * kEach);
}

}  // namespace
}  // namespace pts::obs
