// The per-thread counter registry: sink binding, the kill switch, and the
// master-side CounterStats aggregation.
#include "obs/counters.hpp"

#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "mkp/generator.hpp"
#include "tabu/engine.hpp"

namespace pts::obs {
namespace {

TEST(Counters, StartZeroAndIndexByEnum) {
  Counters c;
  EXPECT_FALSE(c.any());
  c[Counter::kMovesTried] = 3;
  c[Counter::kDrops] += 2;
  EXPECT_TRUE(c.any());
  EXPECT_EQ(c[Counter::kMovesTried], 3U);
  EXPECT_EQ(c[Counter::kDrops], 2U);
  EXPECT_EQ(c[Counter::kAdds], 0U);
}

TEST(Counters, AddIsElementwise) {
  Counters a, b;
  a[Counter::kAdds] = 5;
  b[Counter::kAdds] = 7;
  b[Counter::kFitScoreCalls] = 11;
  a.add(b);
  EXPECT_EQ(a[Counter::kAdds], 12U);
  EXPECT_EQ(a[Counter::kFitScoreCalls], 11U);
}

TEST(Counters, NamesAreUniqueAndNonEmpty) {
  std::set<std::string> names;
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    const std::string name = counter_name(static_cast<Counter>(i));
    EXPECT_FALSE(name.empty());
    EXPECT_TRUE(names.insert(name).second) << "duplicate counter name " << name;
  }
}

TEST(Bump, NoOpWithoutScope) {
  bump(Counter::kMovesTried);  // must not crash and must go nowhere
  Counters sink;
  {
    CounterScope scope(&sink);
    bump(Counter::kMovesTried, 2);
  }
  bump(Counter::kMovesTried, 100);  // scope ended: dropped again
  if (kTelemetryCompiled) {
    EXPECT_EQ(sink[Counter::kMovesTried], 2U);
  } else {
    EXPECT_EQ(sink[Counter::kMovesTried], 0U);
  }
}

TEST(Bump, ScopesNestAndRestore) {
  if (!kTelemetryCompiled) GTEST_SKIP() << "telemetry compiled out";
  Counters outer, inner;
  CounterScope outer_scope(&outer);
  bump(Counter::kAdds);
  {
    CounterScope inner_scope(&inner);
    bump(Counter::kAdds, 3);
    {
      CounterScope off(nullptr);  // explicit suppression
      bump(Counter::kAdds, 50);
    }
  }
  bump(Counter::kAdds);
  EXPECT_EQ(outer[Counter::kAdds], 2U);
  EXPECT_EQ(inner[Counter::kAdds], 3U);
}

TEST(Bump, SinkIsPerThread) {
  if (!kTelemetryCompiled) GTEST_SKIP() << "telemetry compiled out";
  Counters main_sink;
  CounterScope scope(&main_sink);
  Counters worker_sink;
  std::thread worker([&worker_sink] {
    // No scope on this thread yet: bumps vanish instead of racing main's sink.
    bump(Counter::kDrops, 9);
    CounterScope worker_scope(&worker_sink);
    bump(Counter::kDrops, 4);
  });
  worker.join();
  EXPECT_EQ(main_sink[Counter::kDrops], 0U);
  EXPECT_EQ(worker_sink[Counter::kDrops], 4U);
}

TEST(TelemetryEnabled, DefaultsOnAndToggles) {
  EXPECT_TRUE(telemetry_enabled());
  set_telemetry_enabled(false);
  EXPECT_FALSE(telemetry_enabled());
  set_telemetry_enabled(true);
  EXPECT_TRUE(telemetry_enabled());
}

TEST(CounterStats, ObserveTracksTotalsAndDistribution) {
  CounterStats stats;
  Counters a, b;
  a[Counter::kMovesTried] = 10;
  b[Counter::kMovesTried] = 30;
  stats.observe(a);
  stats.observe(b);
  EXPECT_EQ(stats.snapshots(), 2U);
  EXPECT_EQ(stats.totals()[Counter::kMovesTried], 40U);
  EXPECT_DOUBLE_EQ(stats.stats(Counter::kMovesTried).mean(), 20.0);
  EXPECT_DOUBLE_EQ(stats.stats(Counter::kMovesTried).min(), 10.0);
  EXPECT_DOUBLE_EQ(stats.stats(Counter::kMovesTried).max(), 30.0);
}

TEST(CounterStats, MergeEqualsCombinedObservation) {
  CounterStats left, right, all;
  for (std::uint64_t v : {3U, 5U, 8U, 13U}) {
    Counters c;
    c[Counter::kAdds] = v;
    (v < 6 ? left : right).observe(c);
    all.observe(c);
  }
  left.merge(right);
  EXPECT_EQ(left.snapshots(), all.snapshots());
  EXPECT_EQ(left.totals()[Counter::kAdds], all.totals()[Counter::kAdds]);
  EXPECT_DOUBLE_EQ(left.stats(Counter::kAdds).mean(), all.stats(Counter::kAdds).mean());
  EXPECT_DOUBLE_EQ(left.stats(Counter::kAdds).min(), all.stats(Counter::kAdds).min());
  EXPECT_DOUBLE_EQ(left.stats(Counter::kAdds).max(), all.stats(Counter::kAdds).max());
}

// End-to-end: a real engine run fills the counter block consistently.
TEST(EngineCounters, RunFillsConsistentCounters) {
  if (!kTelemetryCompiled) GTEST_SKIP() << "telemetry compiled out";
  const auto inst = mkp::generate_gk({.num_items = 60, .num_constraints = 5}, 7);
  Rng rng(7);
  tabu::TsParams params;
  params.max_moves = 500;
  params.strategy.nb_local = 20;
  const auto result = tabu::tabu_search_from_scratch(inst, params, rng);

  const auto& c = result.counters;
  EXPECT_EQ(c[Counter::kMovesTried], result.moves);
  EXPECT_EQ(c[Counter::kDrops], result.move_stats.drops);
  EXPECT_EQ(c[Counter::kAdds], result.move_stats.adds);
  EXPECT_EQ(c[Counter::kForcedDrops], result.move_stats.forced_drops);
  EXPECT_EQ(c[Counter::kTabuRejections], result.move_stats.tabu_blocked_adds);
  EXPECT_EQ(c[Counter::kAspirationAccepts], result.move_stats.aspiration_hits);
  EXPECT_EQ(c[Counter::kIntensifications], result.intensifications);
  EXPECT_EQ(c[Counter::kDiversifications], result.diversifications);
  // Every add decision either scored the column or was pruned in O(1).
  EXPECT_GT(c[Counter::kFitScoreCalls], 0U);
  EXPECT_GE(c[Counter::kMovesImproved], result.improvements.empty() ? 0U : 1U);
  EXPECT_LE(c[Counter::kMovesImproved], c[Counter::kMovesTried]);
  // The anytime curve mirrors the improvements list (same improvement events).
  EXPECT_EQ(result.anytime.size(), result.improvements.size());
  for (std::size_t i = 1; i < result.anytime.size(); ++i) {
    EXPECT_GT(result.anytime[i].value, result.anytime[i - 1].value);
    EXPECT_GE(result.anytime[i].seconds, result.anytime[i - 1].seconds);
  }
}

TEST(EngineCounters, KillSwitchSuppressesCollection) {
  if (!kTelemetryCompiled) GTEST_SKIP() << "telemetry compiled out";
  const auto inst = mkp::generate_gk({.num_items = 40, .num_constraints = 4}, 9);
  tabu::TsParams params;
  params.max_moves = 200;

  set_telemetry_enabled(false);
  Rng rng_off(3);
  const auto off = tabu::tabu_search_from_scratch(inst, params, rng_off);
  set_telemetry_enabled(true);
  Rng rng_on(3);
  const auto on = tabu::tabu_search_from_scratch(inst, params, rng_on);

  EXPECT_FALSE(off.counters.any());
  EXPECT_TRUE(off.anytime.empty());
  EXPECT_TRUE(on.counters.any());
  // The switch must not change the search itself.
  EXPECT_DOUBLE_EQ(off.best_value, on.best_value);
  EXPECT_EQ(off.moves, on.moves);
}

}  // namespace
}  // namespace pts::obs
