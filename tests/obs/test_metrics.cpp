// MetricsRegistry: get-or-create handle stability, kill-switch gating, the
// drain/apply counter-delta path the proc backend rides, exporter formats,
// and concurrent recording (the TSan smoke targets Metrics*).
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace pts::obs {
namespace {

/// Restores the kill switch for whatever test runs next.
struct TelemetryGuard {
  ~TelemetryGuard() { set_telemetry_enabled(true); }
};

TEST(Metrics, CounterGaugeHistogramBasics) {
  MetricsRegistry reg;
  reg.counter("events_total").add();
  reg.counter("events_total").add(4);
  EXPECT_EQ(reg.counter("events_total").value(), 5U);

  reg.gauge("depth").set(3.5);
  EXPECT_DOUBLE_EQ(reg.gauge("depth").value(), 3.5);

  reg.histogram("latency_seconds").record(0.25);
  reg.histogram("latency_seconds").record(0.5);
  const auto snap = reg.histogram("latency_seconds").snapshot();
  EXPECT_EQ(snap.count(), 2U);
  EXPECT_DOUBLE_EQ(snap.sum(), 0.75);
}

TEST(Metrics, HandlesAreStableAcrossInsertionsAndResetValues) {
  MetricsRegistry reg;
  auto& first = reg.counter("a_total");
  first.add(7);
  // Force rebalancing-shaped churn: many later insertions.
  for (int i = 0; i < 100; ++i) {
    reg.counter("churn_" + std::to_string(i)).add();
  }
  EXPECT_EQ(&first, &reg.counter("a_total"));
  EXPECT_EQ(first.value(), 7U);

  reg.reset_values();
  // Same handle, zeroed value — cached references survive a reset.
  EXPECT_EQ(&first, &reg.counter("a_total"));
  EXPECT_EQ(first.value(), 0U);
  first.add(2);
  EXPECT_EQ(reg.counter("a_total").value(), 2U);
}

TEST(Metrics, KillSwitchGatesRecordingButNotRawFolds) {
  const TelemetryGuard guard;
  MetricsRegistry reg;
  set_telemetry_enabled(false);
  reg.counter("gated_total").add(5);
  reg.gauge("gated_depth").set(9.0);
  reg.histogram("gated_seconds").record(1.0);
  EXPECT_EQ(reg.counter("gated_total").value(), 0U);
  EXPECT_DOUBLE_EQ(reg.gauge("gated_depth").value(), 0.0);
  EXPECT_EQ(reg.histogram("gated_seconds").snapshot().count(), 0U);

  // The supervisor's chunk fold bypasses the switch: those events were
  // recorded (and gated) on the worker side already.
  reg.apply_counter_delta("gated_total", 3);
  EXPECT_EQ(reg.counter("gated_total").value(), 3U);

  set_telemetry_enabled(true);
  reg.counter("gated_total").add(5);
  EXPECT_EQ(reg.counter("gated_total").value(), 8U);
}

TEST(Metrics, DrainCounterDeltasReportsGrowthSinceLastDrain) {
  MetricsRegistry reg;
  reg.counter("x_total").add(10);
  reg.counter("y_total").add(2);
  reg.gauge("ignored").set(1.0);

  auto first = reg.drain_counter_deltas();
  ASSERT_EQ(first.size(), 2U);
  EXPECT_EQ(first[0].name, "x_total");
  EXPECT_EQ(first[0].delta, 10U);
  EXPECT_EQ(first[1].name, "y_total");
  EXPECT_EQ(first[1].delta, 2U);

  // No growth: nothing to ship.
  EXPECT_TRUE(reg.drain_counter_deltas().empty());

  reg.counter("x_total").add(5);
  auto second = reg.drain_counter_deltas();
  ASSERT_EQ(second.size(), 1U);
  EXPECT_EQ(second[0].name, "x_total");
  EXPECT_EQ(second[0].delta, 5U);
}

TEST(Metrics, DrainThenApplyReproducesTotals) {
  // The full worker -> chunk -> supervisor path in miniature: draining one
  // registry in stages and applying every delta into another must reproduce
  // the totals exactly.
  MetricsRegistry worker;
  MetricsRegistry master;
  for (int round = 0; round < 5; ++round) {
    worker.counter("moves_total").add(static_cast<std::uint64_t>(100 + round));
    if (round % 2 == 0) worker.counter("faults_total").add();
    for (const auto& delta : worker.drain_counter_deltas()) {
      master.apply_counter_delta(delta.name, delta.delta);
    }
  }
  EXPECT_EQ(master.counter("moves_total").value(),
            worker.counter("moves_total").value());
  EXPECT_EQ(master.counter("faults_total").value(),
            worker.counter("faults_total").value());
}

TEST(Metrics, PrometheusExportCarriesTypesAndQuantiles) {
  MetricsRegistry reg;
  reg.counter("jobs_total").add(3);
  reg.gauge("queue_depth").set(2.0);
  reg.histogram("rtt_seconds").record(0.001);
  reg.histogram("rtt_seconds").record(0.002);

  std::ostringstream out;
  reg.write_prometheus(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("# TYPE pts_jobs_total counter"), std::string::npos);
  EXPECT_NE(text.find("pts_jobs_total 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE pts_queue_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE pts_rtt_seconds summary"), std::string::npos);
  EXPECT_NE(text.find("pts_rtt_seconds{quantile=\"0.5\"}"), std::string::npos);
  EXPECT_NE(text.find("pts_rtt_seconds{quantile=\"0.99\"}"), std::string::npos);
  EXPECT_NE(text.find("pts_rtt_seconds_count 2"), std::string::npos);
}

TEST(Metrics, JsonlExportIsOneObjectPerLine) {
  MetricsRegistry reg;
  reg.counter("jobs_total").add(1);
  reg.histogram("rtt_seconds").record(0.5);

  std::ostringstream out;
  reg.write_jsonl(out);
  std::istringstream lines(out.str());
  std::string line;
  std::size_t objects = 0;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    ++objects;
  }
  EXPECT_EQ(objects, 2U);
  EXPECT_NE(out.str().find("\"metric\":\"rtt_seconds\""), std::string::npos);
  EXPECT_NE(out.str().find("\"p99\":"), std::string::npos);
}

TEST(Metrics, HistogramCsvListsEveryHistogram) {
  MetricsRegistry reg;
  reg.histogram("a_seconds").record(1.0);
  reg.histogram("b_seconds");

  std::ostringstream out;
  reg.write_histogram_csv(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("name,count,sum,min,max,p50,p90,p99\n"),
            std::string::npos);
  EXPECT_NE(text.find("a_seconds,1,"), std::string::npos);
  EXPECT_NE(text.find("b_seconds,0,"), std::string::npos);
  EXPECT_TRUE(reg.has_histogram_samples());
  reg.reset_values();
  EXPECT_FALSE(reg.has_histogram_samples());
}

TEST(Metrics, ConcurrentRecordingLosesNothing) {
  // 8 threads hammering one counter and one histogram through the same
  // handles: totals must be exact (the TSan smoke runs this instrumented).
  MetricsRegistry reg;
  auto& hits = reg.counter("hits_total");
  auto& latency = reg.histogram("lat_seconds");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hits, &latency, t] {
      for (int i = 0; i < kPerThread; ++i) {
        hits.add();
        if (i % 100 == 0) latency.record(0.001 * (t + 1));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(hits.value(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(latency.snapshot().count(),
            static_cast<std::uint64_t>(kThreads) * (kPerThread / 100));
}

TEST(Metrics, GlobalRegistryIsASingleton) {
  auto& a = metrics();
  auto& b = metrics();
  EXPECT_EQ(&a, &b);
  // Register-and-read through the global instance (unique name so other
  // tests' instrumentation cannot collide).
  metrics().counter("test_metrics_singleton_total").add();
  EXPECT_GE(metrics().counter("test_metrics_singleton_total").value(), 1U);
}

}  // namespace
}  // namespace pts::obs
