// The anytime recorder and the best-so-far envelope computation.
#include "obs/anytime.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace pts::obs {
namespace {

TEST(AnytimeRecorder, RecordsInOrder) {
  AnytimeRecorder recorder;
  EXPECT_EQ(recorder.size(), 0U);
  recorder.record(0, 0.1, 10, 100.0);
  recorder.record(1, 0.2, 20, 90.0);
  const auto samples = recorder.snapshot();
  ASSERT_EQ(samples.size(), 2U);
  EXPECT_EQ(samples[0].source, 0);
  EXPECT_DOUBLE_EQ(samples[0].seconds, 0.1);
  EXPECT_EQ(samples[0].work_units, 10U);
  EXPECT_DOUBLE_EQ(samples[0].value, 100.0);
  recorder.clear();
  EXPECT_EQ(recorder.size(), 0U);
}

TEST(AnytimeRecorder, ConcurrentAppendsAllLand) {
  AnytimeRecorder recorder;
  constexpr int kThreads = 4;
  constexpr int kEach = 200;
  {
    std::vector<std::jthread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&recorder, t] {
        for (int i = 0; i < kEach; ++i) {
          recorder.record(t, 0.001 * i, static_cast<std::uint64_t>(i), 1.0 * i);
        }
      });
    }
  }
  EXPECT_EQ(recorder.size(), static_cast<std::size_t>(kThreads) * kEach);
}

TEST(GlobalEnvelope, KeepsOnlyMonotoneImprovements) {
  // Two interleaved sources; the envelope is the best-so-far over both.
  std::vector<AnytimeSample> samples{
      {0, 0.30, 30, 105.0},  // out of time order on purpose
      {1, 0.10, 5, 100.0},
      {0, 0.20, 20, 95.0},   // below the running best: dropped
      {1, 0.40, 40, 103.0},  // not an improvement over 105: dropped
      {0, 0.50, 50, 110.0},
  };
  const auto envelope = global_envelope(std::move(samples));
  ASSERT_EQ(envelope.size(), 3U);
  EXPECT_DOUBLE_EQ(envelope[0].value, 100.0);
  EXPECT_DOUBLE_EQ(envelope[1].value, 105.0);
  EXPECT_DOUBLE_EQ(envelope[2].value, 110.0);
  for (std::size_t i = 0; i < envelope.size(); ++i) {
    EXPECT_EQ(envelope[i].source, kGlobalSource);
    if (i > 0) {
      EXPECT_GE(envelope[i].seconds, envelope[i - 1].seconds);
      EXPECT_GT(envelope[i].value, envelope[i - 1].value);
    }
  }
}

TEST(GlobalEnvelope, EmptyInAndSingleSample) {
  EXPECT_TRUE(global_envelope({}).empty());
  const auto one = global_envelope({{3, 1.0, 7, 42.0}});
  ASSERT_EQ(one.size(), 1U);
  EXPECT_EQ(one[0].source, kGlobalSource);
  EXPECT_DOUBLE_EQ(one[0].value, 42.0);
}

TEST(GlobalEnvelope, StableForEqualTimestamps) {
  // Ties in seconds must not reorder improvements (stable sort): the later
  // recorded, larger value survives as the second envelope point.
  const auto envelope = global_envelope({{0, 1.0, 1, 10.0}, {1, 1.0, 2, 12.0}});
  ASSERT_EQ(envelope.size(), 2U);
  EXPECT_DOUBLE_EQ(envelope[0].value, 10.0);
  EXPECT_DOUBLE_EQ(envelope[1].value, 12.0);
}

}  // namespace
}  // namespace pts::obs
