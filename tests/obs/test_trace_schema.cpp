// Schema validation of an emitted trace: run a real CTS2 search with tracing
// on, write the Chrome trace + JSONL through TelemetrySession, then re-parse
// the files and assert the contract a viewer (Perfetto) and ad-hoc scripts
// rely on — required keys, per-thread monotone timestamps, and the expected
// cooperation events (gather / sgp / isp spans, at least one retune).
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "mkp/generator.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "parallel/runner.hpp"

namespace pts::obs {
namespace {

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(static_cast<bool>(in)) << "cannot open " << path;
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

/// Extracts the integer value of `"key":<int>` from one event line.
std::int64_t int_field(const std::string& line, const std::string& key) {
  const auto tag = "\"" + key + "\":";
  const auto at = line.find(tag);
  EXPECT_NE(at, std::string::npos) << "missing " << tag << " in: " << line;
  if (at == std::string::npos) return 0;
  return std::stoll(line.substr(at + tag.size()));
}

bool has_field(const std::string& line, const std::string& key) {
  return line.find("\"" + key + "\":") != std::string::npos;
}

std::size_t count_events(const std::vector<std::string>& lines,
                         const std::string& name) {
  std::size_t n = 0;
  for (const auto& line : lines) {
    if (line.find("\"name\":\"" + name + "\"") != std::string::npos) ++n;
  }
  return n;
}

TEST(TraceSchema, Cts2TraceSatisfiesTheContract) {
  if (!kTelemetryCompiled) GTEST_SKIP() << "telemetry compiled out";
  const std::string path = ::testing::TempDir() + "pts_schema_trace.json";

  const auto inst = mkp::generate_gk({.num_items = 40, .num_constraints = 4}, 77);
  {
    TelemetryOptions options;
    options.trace_path = path;
    TelemetrySession session(options);

    parallel::ParallelConfig config;
    config.mode = parallel::CooperationMode::kCooperativeAdaptive;  // CTS2
    config.num_slaves = 2;
    config.search_iterations = 4;
    config.work_per_slave_round = 300;
    config.base_params.strategy.nb_local = 10;
    config.seed = 77;
    // Any non-improving round must retune so the trace carries the event.
    config.sgp.initial_score = 1;
    const auto result = parallel::run_parallel_tabu_search(inst, config);
    EXPECT_GT(result.master.strategy_retunes, 0U)
        << "run produced no retune; the trace cannot contain sgp_retune";
    ASSERT_TRUE(session.finalize());
  }

  // --- Chrome trace file ------------------------------------------------
  const auto lines = read_lines(path);
  ASSERT_GE(lines.size(), 3U);
  EXPECT_EQ(lines.front(), "{\"traceEvents\":[");
  EXPECT_EQ(lines.back(), "]}");

  std::vector<std::string> events(lines.begin() + 1, lines.end() - 1);
  ASSERT_FALSE(events.empty());
  std::map<std::int64_t, std::int64_t> last_ts_per_tid;
  for (auto event : events) {
    if (event.back() == ',') event.pop_back();
    ASSERT_FALSE(event.empty());
    EXPECT_EQ(event.front(), '{');
    EXPECT_EQ(event.back(), '}');
    // Required keys.
    EXPECT_TRUE(has_field(event, "name")) << event;
    EXPECT_TRUE(has_field(event, "ph")) << event;
    EXPECT_TRUE(has_field(event, "ts")) << event;
    EXPECT_TRUE(has_field(event, "pid")) << event;
    EXPECT_TRUE(has_field(event, "tid")) << event;
    EXPECT_EQ(int_field(event, "pid"), 1);
    // Per-thread timestamps are monotone in file order.
    const auto tid = int_field(event, "tid");
    const auto ts = int_field(event, "ts");
    EXPECT_GE(ts, 0);
    auto it = last_ts_per_tid.find(tid);
    if (it != last_ts_per_tid.end()) {
      EXPECT_GE(ts, it->second) << "timestamps regressed for tid " << tid;
    }
    last_ts_per_tid[tid] = ts;
  }

  // The cooperation story must be visible: the master's phases, at least one
  // per-slave search span, and at least one strategy retune instant.
  EXPECT_GE(count_events(events, "scatter"), 1U);
  EXPECT_GE(count_events(events, "gather"), 1U);
  EXPECT_GE(count_events(events, "sgp"), 1U);
  EXPECT_GE(count_events(events, "isp"), 1U);
  EXPECT_GE(count_events(events, "slave_ts_round"), 1U);
  EXPECT_GE(count_events(events, "sgp_retune"), 1U);
  // Master is tid 0 and slaves occupy tids >= 1.
  EXPECT_TRUE(last_ts_per_tid.count(0));
  EXPECT_GE(last_ts_per_tid.size(), 2U);

  // --- JSONL sidecar ----------------------------------------------------
  const auto jsonl = read_lines(path + ".jsonl");
  EXPECT_EQ(jsonl.size(), events.size());
  for (const auto& line : jsonl) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_TRUE(has_field(line, "name")) << line;
    EXPECT_TRUE(has_field(line, "ph")) << line;
    EXPECT_TRUE(has_field(line, "ts")) << line;
    EXPECT_TRUE(has_field(line, "tid")) << line;
  }

  // A retune instant names its kind and both strategy knobs, old and new.
  bool saw_retune_args = false;
  for (const auto& line : jsonl) {
    if (line.find("\"name\":\"sgp_retune\"") == std::string::npos) continue;
    EXPECT_TRUE(has_field(line, "tenure_old")) << line;
    EXPECT_TRUE(has_field(line, "tenure_new")) << line;
    EXPECT_TRUE(has_field(line, "nb_drop_old")) << line;
    EXPECT_TRUE(has_field(line, "nb_drop_new")) << line;
    EXPECT_TRUE(has_field(line, "kind")) << line;
    saw_retune_args = true;
  }
  EXPECT_TRUE(saw_retune_args);
}

TEST(TraceSchema, SessionWithoutTracePathWritesNothing) {
  TelemetryOptions options;  // no trace_path
  options.metrics = true;
  TelemetrySession session(options);
  EXPECT_FALSE(session.tracing());
  EXPECT_TRUE(session.metrics());
  EXPECT_FALSE(tracer().enabled());
  EXPECT_TRUE(session.finalize());
}

}  // namespace
}  // namespace pts::obs
