#include "baselines/simulated_annealing.hpp"

#include <gtest/gtest.h>

#include "exact/brute_force.hpp"
#include "mkp/catalog.hpp"
#include "mkp/generator.hpp"

namespace pts::baselines {
namespace {

TEST(Sa, BestIsFeasibleAndConsistent) {
  const auto inst = mkp::generate_gk({.num_items = 60, .num_constraints = 6}, 1);
  Rng rng(1);
  SaParams params;
  params.max_steps = 30000;
  const auto result = simulated_annealing(inst, rng, params);
  EXPECT_TRUE(result.best.is_feasible());
  EXPECT_TRUE(result.best.check_consistency());
  EXPECT_DOUBLE_EQ(result.best.value(), result.best_value);
  EXPECT_EQ(result.steps, 30000U);
}

TEST(Sa, AcceptsSomeUphillMovesEarly) {
  const auto inst = mkp::generate_gk({.num_items = 60, .num_constraints = 6}, 2);
  Rng rng(2);
  SaParams params;
  params.max_steps = 20000;
  const auto result = simulated_annealing(inst, rng, params);
  EXPECT_GT(result.accepted_uphill, 0U);
}

TEST(Sa, TemperatureCools) {
  const auto inst = mkp::generate_gk({.num_items = 40, .num_constraints = 4}, 3);
  Rng rng(3);
  SaParams params;
  params.max_steps = 50000;
  params.reheat_after = 0;  // no reheats: monotone cooling
  const auto result = simulated_annealing(inst, rng, params);
  const double t0 = 2.0 * inst.total_profit() / 40.0;
  EXPECT_LT(result.final_temperature, t0);
  EXPECT_GE(result.final_temperature, params.min_temperature);
}

TEST(Sa, ReheatsOnStagnation) {
  const auto inst = mkp::generate_gk({.num_items = 20, .num_constraints = 3}, 4);
  Rng rng(4);
  SaParams params;
  params.max_steps = 30000;
  params.reheat_after = 2000;  // tiny instance stagnates fast
  const auto result = simulated_annealing(inst, rng, params);
  EXPECT_GT(result.reheats, 0U);
}

TEST(Sa, FindsCatalogOptima) {
  for (const auto& entry : mkp::catalog()) {
    Rng rng(entry.instance.num_items());
    SaParams params;
    params.max_steps = 60000;
    const auto result = simulated_annealing(entry.instance, rng, params);
    EXPECT_DOUBLE_EQ(result.best_value, entry.optimum) << entry.instance.name();
  }
}

TEST(Sa, TargetStopsEarly) {
  const auto inst = mkp::generate_gk({.num_items = 60, .num_constraints = 6}, 5);
  Rng rng(5);
  SaParams params;
  params.max_steps = 1'000'000;
  params.target_value = 1.0;
  const auto result = simulated_annealing(inst, rng, params);
  EXPECT_TRUE(result.reached_target);
  EXPECT_LT(result.steps, 1'000'000U);
}

TEST(Sa, NeverExceedsOptimum) {
  for (std::uint64_t seed : {6, 7, 8}) {
    const auto inst = mkp::generate_gk({.num_items = 14, .num_constraints = 4}, seed);
    const auto oracle = exact::brute_force(inst);
    Rng rng(seed);
    SaParams params;
    params.max_steps = 10000;
    const auto result = simulated_annealing(inst, rng, params);
    EXPECT_LE(result.best_value, oracle.optimum + 1e-9);
  }
}

TEST(Sa, DeterministicPerSeed) {
  const auto inst = mkp::generate_gk({.num_items = 50, .num_constraints = 5}, 9);
  Rng a(10), b(10);
  SaParams params;
  params.max_steps = 10000;
  EXPECT_DOUBLE_EQ(simulated_annealing(inst, a, params).best_value,
                   simulated_annealing(inst, b, params).best_value);
}

TEST(SaDeath, UnboundedRunRejected) {
  const auto inst = mkp::generate_gk({.num_items = 10, .num_constraints = 2}, 11);
  Rng rng(11);
  SaParams params;
  params.max_steps = 0;
  params.time_limit_seconds = 0.0;
  EXPECT_DEATH((void)simulated_annealing(inst, rng, params), "bounded");
}

}  // namespace
}  // namespace pts::baselines
