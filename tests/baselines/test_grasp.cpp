#include "baselines/grasp.hpp"

#include <gtest/gtest.h>

#include "bounds/greedy.hpp"
#include "exact/brute_force.hpp"
#include "mkp/catalog.hpp"
#include "mkp/generator.hpp"

namespace pts::baselines {
namespace {

TEST(Grasp, BestIsFeasibleAndConsistent) {
  const auto inst = mkp::generate_gk({.num_items = 60, .num_constraints = 6}, 1);
  Rng rng(1);
  GraspParams params;
  params.max_iterations = 50;
  const auto result = grasp(inst, rng, params);
  EXPECT_TRUE(result.best.is_feasible());
  EXPECT_TRUE(result.best.check_consistency());
  EXPECT_EQ(result.iterations, 50U);
}

TEST(Grasp, AtLeastAsGoodAsOneDeterministicGreedy) {
  // Every GRASP iteration ends with the swap fixpoint; with rcl = 1 the
  // first iteration IS deterministic-greedy + local search.
  const auto inst = mkp::generate_gk({.num_items = 80, .num_constraints = 8}, 2);
  Rng rng(2);
  GraspParams params;
  params.rcl_size = 1;
  params.max_iterations = 1;
  const auto result = grasp(inst, rng, params);
  EXPECT_GE(result.best_value, bounds::greedy_construct(inst).value());
}

TEST(Grasp, MoreIterationsNeverWorse) {
  const auto inst = mkp::generate_gk({.num_items = 60, .num_constraints = 6}, 3);
  Rng rng_small(4), rng_large(4);
  GraspParams small;
  small.max_iterations = 5;
  GraspParams large;
  large.max_iterations = 100;
  const auto few = grasp(inst, rng_small, small);
  const auto many = grasp(inst, rng_large, large);
  EXPECT_GE(many.best_value, few.best_value);
}

TEST(Grasp, LocalSearchActuallyFires) {
  const auto inst = mkp::generate_gk({.num_items = 80, .num_constraints = 8}, 5);
  Rng rng(5);
  GraspParams params;
  params.max_iterations = 40;
  const auto result = grasp(inst, rng, params);
  EXPECT_GT(result.local_search_swaps, 0U);
}

TEST(Grasp, FindsCatalogOptimaWithWideRcl) {
  for (const auto& entry : mkp::catalog()) {
    Rng rng(entry.instance.num_items() + 1);
    GraspParams params;
    params.max_iterations = 800;
    params.rcl_size = 6;
    const auto result = grasp(entry.instance, rng, params);
    EXPECT_DOUBLE_EQ(result.best_value, entry.optimum) << entry.instance.name();
  }
}

TEST(Grasp, NarrowRclCannotEscapeTheCrossedTrap) {
  // On cat-crossed the six odd items dominate the scaled-density order, so
  // an RCL of width 3 only ever constructs odds-heavy solutions (value 20)
  // and the 1-1 swap cannot reach the mixed optimum (27). This pins the
  // semantics of the RCL width — and is exactly the kind of structural trap
  // tabu search's drop/add + memory escapes (see test_engine.cpp).
  const auto entry = mkp::catalog_entry("cat-crossed");
  Rng rng(13);
  GraspParams params;
  params.rcl_size = 3;
  params.max_iterations = 800;
  const auto narrow = grasp(entry.instance, rng, params);
  EXPECT_DOUBLE_EQ(narrow.best_value, 20.0);
  Rng rng_wide(13);
  params.rcl_size = 6;
  const auto wide = grasp(entry.instance, rng_wide, params);
  EXPECT_DOUBLE_EQ(wide.best_value, entry.optimum);
}

TEST(Grasp, TargetStopsEarly) {
  const auto inst = mkp::generate_gk({.num_items = 60, .num_constraints = 6}, 6);
  Rng rng(6);
  GraspParams params;
  params.max_iterations = 100000;
  params.target_value = 1.0;
  const auto result = grasp(inst, rng, params);
  EXPECT_TRUE(result.reached_target);
  EXPECT_EQ(result.iterations, 1U);
}

TEST(Grasp, NeverExceedsOptimum) {
  for (std::uint64_t seed : {7, 8, 9}) {
    const auto inst = mkp::generate_gk({.num_items = 14, .num_constraints = 4}, seed);
    const auto oracle = exact::brute_force(inst);
    Rng rng(seed);
    GraspParams params;
    params.max_iterations = 60;
    const auto result = grasp(inst, rng, params);
    EXPECT_LE(result.best_value, oracle.optimum + 1e-9);
  }
}

TEST(GraspDeath, UnboundedRunRejected) {
  const auto inst = mkp::generate_gk({.num_items = 10, .num_constraints = 2}, 10);
  Rng rng(10);
  GraspParams params;
  params.max_iterations = 0;
  params.time_limit_seconds = 0.0;
  EXPECT_DEATH((void)grasp(inst, rng, params), "bounded");
}

}  // namespace
}  // namespace pts::baselines
