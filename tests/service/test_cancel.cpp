// Cooperative cancellation: the token itself, the cancellable mailbox wait,
// and the latency with which a fired token unwinds a running search.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "mkp/generator.hpp"
#include "parallel/runner.hpp"
#include "tabu/engine.hpp"
#include "util/cancel.hpp"
#include "util/mailbox.hpp"
#include "util/timer.hpp"

namespace pts {
namespace {

TEST(CancelToken, DefaultTokenNeverStops) {
  CancelToken token;
  EXPECT_FALSE(token.can_stop());
  EXPECT_FALSE(token.stop_requested());
  EXPECT_FALSE(token.cancel_requested());
  EXPECT_FALSE(token.deadline_expired());
}

TEST(CancelToken, SourceCancelReachesEveryTokenCopy) {
  CancelSource source;
  CancelToken a = source.token();
  CancelToken b = a;  // copies observe the same state
  EXPECT_FALSE(a.stop_requested());
  source.request_cancel();
  EXPECT_TRUE(a.stop_requested());
  EXPECT_TRUE(b.cancel_requested());
  EXPECT_FALSE(b.deadline_expired());
}

TEST(CancelToken, DeadlineFiresWithoutExplicitCancel) {
  CancelSource source(Deadline::after_seconds(0.02));
  CancelToken token = source.token();
  EXPECT_TRUE(token.can_stop());
  EXPECT_FALSE(token.cancel_requested());
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  EXPECT_TRUE(token.deadline_expired());
  EXPECT_TRUE(token.stop_requested());
  EXPECT_FALSE(token.cancel_requested());
}

TEST(CancelToken, TokenOutlivesItsSource) {
  CancelToken token;
  {
    CancelSource source;
    token = source.token();
    source.request_cancel();
  }
  EXPECT_TRUE(token.stop_requested());
}

TEST(MailboxCancel, BlockedReceiveUnblocksOnCancel) {
  Mailbox<int> box;
  CancelSource source;
  Stopwatch watch;
  std::thread firer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    source.request_cancel();
  });
  const auto message = box.receive(source.token());
  firer.join();
  EXPECT_FALSE(message.has_value());
  // One 5 ms poll slice past the cancel, with generous slack for CI.
  EXPECT_LT(watch.elapsed_seconds(), 2.0);
}

TEST(MailboxCancel, QueuedMessagesDrainBeforeTheCancelWins) {
  Mailbox<int> box;
  box.send(7);
  CancelSource source;
  source.request_cancel();
  // A message already queued is still delivered; only an empty wait stops.
  const auto message = box.receive(source.token());
  ASSERT_TRUE(message.has_value());
  EXPECT_EQ(*message, 7);
  EXPECT_FALSE(box.receive(source.token()).has_value());
}

TEST(EngineCancel, InnerLoopStopsPromptlyMidRun) {
  // A budget that would run for many seconds; the cancel must cut it short
  // within the one-check-per-move latency.
  const auto inst = mkp::generate_gk({.num_items = 100, .num_constraints = 10}, 1);
  CancelSource source;
  tabu::TsParams params;
  params.max_moves = 50'000'000;
  params.cancel = source.token();
  Rng rng(1);
  Stopwatch watch;
  std::thread firer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    source.request_cancel();
  });
  const auto result = tabu::tabu_search_from_scratch(inst, params, rng);
  firer.join();
  EXPECT_LT(watch.elapsed_seconds(), 5.0);  // vs tens of seconds uncancelled
  EXPECT_LT(result.moves, 50'000'000U);
  EXPECT_TRUE(result.best.is_feasible());
}

TEST(RunnerCancel, WholeFarmUnwindsAndReportsCancelled) {
  const auto inst = mkp::generate_gk({.num_items = 60, .num_constraints = 5}, 2);
  CancelSource source;
  parallel::ParallelConfig config;
  config.num_slaves = 3;
  config.search_iterations = 100'000;  // would run for a very long time
  config.work_per_slave_round = 2'000;
  config.base_params.strategy.nb_local = 10;
  config.cancel = source.token();
  Stopwatch watch;
  std::thread firer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(80));
    source.request_cancel();
  });
  const auto result = parallel::run_parallel_tabu_search(inst, config);
  firer.join();
  EXPECT_TRUE(result.cancelled);
  EXPECT_LT(watch.elapsed_seconds(), 10.0);
  EXPECT_TRUE(result.best.is_feasible());
}

TEST(RunnerCancel, SequentialModeHonoursTheTokenToo) {
  const auto inst = mkp::generate_gk({.num_items = 60, .num_constraints = 5}, 3);
  CancelSource source;
  source.request_cancel();  // already fired: the run should be near-instant
  parallel::ParallelConfig config;
  config.mode = parallel::CooperationMode::kSequential;
  config.search_iterations = 100'000;
  config.work_per_slave_round = 2'000;
  config.cancel = source.token();
  Stopwatch watch;
  const auto result = parallel::run_parallel_tabu_search(inst, config);
  EXPECT_TRUE(result.cancelled);
  EXPECT_LT(watch.elapsed_seconds(), 5.0);
}

}  // namespace
}  // namespace pts
