// Fault tolerance in the master-slave farm: a slave whose round throws must
// degrade that round to P-1 reports — never hang the rendezvous — and be
// respawned with a fresh strategy for the next round.
#include <gtest/gtest.h>

#include "mkp/generator.hpp"
#include "parallel/comm.hpp"
#include "parallel/runner.hpp"
#include "service/solver_service.hpp"

namespace pts::parallel {
namespace {

ParallelConfig cts2_config(std::size_t slaves, std::size_t rounds) {
  ParallelConfig config;
  config.mode = CooperationMode::kCooperativeAdaptive;
  config.num_slaves = slaves;
  config.search_iterations = rounds;
  config.work_per_slave_round = 500;
  config.base_params.strategy.nb_local = 10;
  config.seed = 11;
  return config;
}

TEST(FaultInjection, OnePermanentlyFaultySlaveNeverHangsTheGather) {
  // Slave 0 throws every round: each gather completes with P-1 reports and
  // the run still terminates with a usable best solution.
  const auto inst = mkp::generate_gk({.num_items = 40, .num_constraints = 5}, 1);
  FaultInjector injector;
  injector.should_throw = [](std::size_t slave_id, std::size_t) {
    return slave_id == 0;
  };
  auto config = cts2_config(3, 4);
  config.fault_injector = &injector;
  const auto result = run_parallel_tabu_search(inst, config);

  EXPECT_EQ(result.master.rounds_completed, 4U);
  EXPECT_EQ(result.master.slave_faults, 4U);    // one per round
  EXPECT_EQ(result.master.slave_respawns, 4U);  // respawned each time
  // Timeline only logs real reports: (P-1) per round.
  EXPECT_EQ(result.master.timeline.size(), 4U * 2U);
  for (const auto& log : result.master.timeline) {
    EXPECT_NE(log.slave, 0U);
  }
  EXPECT_TRUE(result.best.is_feasible());
  EXPECT_GT(result.best_value, 0.0);
}

TEST(FaultInjection, SingleRoundFaultRecoversTheNextRound) {
  const auto inst = mkp::generate_gk({.num_items = 40, .num_constraints = 5}, 2);
  FaultInjector injector;
  injector.should_throw = [](std::size_t slave_id, std::size_t round) {
    return slave_id == 1 && round == 1;
  };
  auto config = cts2_config(3, 4);
  config.fault_injector = &injector;
  const auto result = run_parallel_tabu_search(inst, config);

  EXPECT_EQ(result.master.slave_faults, 1U);
  EXPECT_EQ(result.master.slave_respawns, 1U);
  EXPECT_EQ(result.master.rounds_completed, 4U);
  EXPECT_EQ(result.master.timeline.size(), 4U * 3U - 1U);
  // The respawned slave reports again after its faulty round.
  bool slave1_after_fault = false;
  for (const auto& log : result.master.timeline) {
    if (log.slave == 1 && log.round > 1) slave1_after_fault = true;
  }
  EXPECT_TRUE(slave1_after_fault);
}

TEST(FaultInjection, EverySlaveFaultingStillTerminates) {
  // The degenerate case: all P slaves throw in every round, so every gather
  // completes with zero reports. The run must still terminate cleanly.
  const auto inst = mkp::generate_gk({.num_items = 30, .num_constraints = 4}, 3);
  FaultInjector injector;
  injector.should_throw = [](std::size_t, std::size_t) { return true; };
  auto config = cts2_config(2, 3);
  config.fault_injector = &injector;
  const auto result = run_parallel_tabu_search(inst, config);

  EXPECT_EQ(result.master.rounds_completed, 3U);
  EXPECT_EQ(result.master.slave_faults, 2U * 3U);
  EXPECT_TRUE(result.master.timeline.empty());
}

TEST(FaultInjection, ServiceSurfacesPerJobFaultCounts) {
  // The same injector threaded through the service: the job still resolves
  // OK and carries its fault count; the service aggregates it.
  const auto inst = mkp::generate_gk({.num_items = 40, .num_constraints = 5}, 4);
  FaultInjector injector;
  injector.should_throw = [](std::size_t slave_id, std::size_t) {
    return slave_id == 0;
  };
  service::ServiceConfig pool;
  pool.num_workers = 2;
  pool.fault_injector = &injector;
  service::SolverService server(pool);

  service::SubmitRequest request;
  request.instance = std::make_shared<const mkp::Instance>(inst);
  request.options.preset = "quick";
  request.options.time_budget_seconds = 0.3;
  auto handle = server.submit(std::move(request));
  ASSERT_TRUE(handle) << handle.status().to_string();
  const auto result = handle->result.get();

  EXPECT_TRUE(result.status.ok()) << result.status.to_string();
  EXPECT_GT(result.slave_faults, 0U);
  ASSERT_TRUE(result.best.has_value());
  EXPECT_TRUE(result.best->is_feasible());
  server.shutdown();
  EXPECT_EQ(server.stats().slave_faults, result.slave_faults);
}

}  // namespace
}  // namespace pts::parallel
