// Multi-tenant SolverService semantics (DESIGN.md §7): weighted-fair
// dispatch across tenants, per-tenant running-slot quotas, shed-by-weight
// backpressure, content-addressed in-flight dedup (one solve fanned out to
// many waiters, each with its own deadline/cancel semantics), and the
// persistent cross-job warm-start store.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <future>
#include <thread>
#include <vector>

#include "mkp/generator.hpp"
#include "service/solver_service.hpp"
#include "util/timer.hpp"

namespace pts::service {
namespace {

using namespace std::chrono_literals;

mkp::Instance small_instance(std::uint64_t seed) {
  return mkp::generate_gk({.num_items = 30, .num_constraints = 4}, seed);
}

SubmitRequest make_request(std::shared_ptr<const mkp::Instance> instance,
                           JobOptions options, TenantId tenant) {
  SubmitRequest request;
  request.instance = std::move(instance);
  request.tenant = std::move(tenant);
  request.priority = options.priority;
  request.deadline_seconds = options.deadline_seconds;
  request.options = std::move(options);
  return request;
}

JobHandle submit_ok(SolverService& server, SubmitRequest request) {
  auto handle = server.submit(std::move(request));
  EXPECT_TRUE(handle) << handle.status().to_string();
  if (!handle) return {};
  return std::move(*handle);
}

void wait_until_running(SolverService& server, std::size_t count) {
  Stopwatch watch;
  while (server.running_jobs() < count && watch.elapsed_seconds() < 10.0) {
    std::this_thread::sleep_for(1ms);
  }
  ASSERT_GE(server.running_jobs(), count);
}

JobOptions quick_options(double budget, std::uint64_t seed = 1) {
  JobOptions options;
  options.preset = "quick";
  options.time_budget_seconds = budget;
  options.seed = seed;
  return options;
}

TEST(ServiceDedup, IdenticalQueuedSubmissionsShareOneSolve) {
  // Two tenants submit the byte-identical instance with the same solve
  // shape while the pool is busy: the second attaches to the first as an
  // extra waiter, both futures resolve from ONE run.
  SolverService server({.num_workers = 1});
  auto blocker = submit_ok(
      server, make_request(std::make_shared<const mkp::Instance>(small_instance(1)),
                           quick_options(0.4), "setup"));
  wait_until_running(server, 1);

  const auto shared = std::make_shared<const mkp::Instance>(small_instance(2));
  auto primary = submit_ok(server, make_request(shared, quick_options(0.2, 7), "prod"));
  auto follower = submit_ok(server, make_request(shared, quick_options(0.2, 7), "batch"));
  EXPECT_FALSE(primary.deduplicated);
  EXPECT_TRUE(follower.deduplicated);
  EXPECT_EQ(primary.content_hash, follower.content_hash);
  EXPECT_NE(primary.id, follower.id);

  const auto first = primary.result.get();
  const auto second = follower.result.get();
  EXPECT_TRUE(first.status.ok()) << first.status.to_string();
  EXPECT_TRUE(second.status.ok()) << second.status.to_string();
  // One solve: both resolved from the same dispatch.
  EXPECT_GT(first.start_sequence, 0U);
  EXPECT_EQ(first.start_sequence, second.start_sequence);
  EXPECT_EQ(first.best_value, second.best_value);
  EXPECT_FALSE(first.deduplicated);
  EXPECT_TRUE(second.deduplicated);
  EXPECT_EQ(first.tenant, "prod");
  EXPECT_EQ(second.tenant, "batch");
  (void)blocker.result.get();
  server.shutdown();
  EXPECT_EQ(server.stats().dedup_hits, 1U);
  EXPECT_EQ(server.stats().submitted, 3U);
}

TEST(ServiceDedup, OptOutAndDifferentSolveShapesDoNotCoalesce) {
  SolverService server({.num_workers = 1});
  auto blocker = submit_ok(
      server, make_request(std::make_shared<const mkp::Instance>(small_instance(3)),
                           quick_options(0.4), ""));
  wait_until_running(server, 1);

  const auto shared = std::make_shared<const mkp::Instance>(small_instance(4));
  auto a = submit_ok(server, make_request(shared, quick_options(0.1, 5), ""));

  // Same instance, different seed: a different solve — no dedup.
  auto different = submit_ok(server, make_request(shared, quick_options(0.1, 6), ""));
  EXPECT_FALSE(different.deduplicated);

  // Identical solve but the submission opts out.
  auto opted_out_request = make_request(shared, quick_options(0.1, 5), "");
  opted_out_request.allow_dedup = false;
  auto opted_out = submit_ok(server, std::move(opted_out_request));
  EXPECT_FALSE(opted_out.deduplicated);

  (void)blocker.result.get();
  (void)a.result.get();
  (void)different.result.get();
  (void)opted_out.result.get();
  server.shutdown();
  EXPECT_EQ(server.stats().dedup_hits, 0U);
}

TEST(ServiceDedup, CancelDetachesOneWaiterAndTheSolveContinues) {
  // Cancelling a follower on a running shared solve detaches just that
  // waiter; the run continues and the primary still resolves OK. Cancelling
  // the last waiter stops the run itself.
  SolverService server({.num_workers = 2});
  const auto shared = std::make_shared<const mkp::Instance>(small_instance(8));
  auto primary = submit_ok(server, make_request(shared, quick_options(30.0), "prod"));
  wait_until_running(server, 1);
  auto follower = submit_ok(server, make_request(shared, quick_options(30.0), "batch"));
  ASSERT_TRUE(follower.deduplicated);

  EXPECT_TRUE(server.cancel(follower.id));
  ASSERT_EQ(follower.result.wait_for(5s), std::future_status::ready);
  EXPECT_EQ(follower.result.get().status.code(), StatusCode::kCancelled);
  // The solve itself is still going for the primary waiter.
  EXPECT_EQ(server.running_jobs(), 1U);
  EXPECT_EQ(primary.result.wait_for(100ms), std::future_status::timeout);

  EXPECT_TRUE(server.cancel(primary.id));  // last waiter: stops the run
  ASSERT_EQ(primary.result.wait_for(10s), std::future_status::ready);
  const auto result = primary.result.get();
  EXPECT_EQ(result.status.code(), StatusCode::kCancelled);
  ASSERT_TRUE(result.best.has_value());  // ran long enough to have a best
}

TEST(ServiceDedup, EachWaiterKeepsItsOwnDeadline) {
  // A shared queued solve with one patient and one hurried waiter: the
  // hurried one's deadline fires while queued and resolves just that future;
  // the patient one still gets the full run.
  SolverService server({.num_workers = 1});
  auto blocker = submit_ok(
      server, make_request(std::make_shared<const mkp::Instance>(small_instance(9)),
                           quick_options(0.5), ""));
  wait_until_running(server, 1);

  const auto shared = std::make_shared<const mkp::Instance>(small_instance(10));
  auto patient = submit_ok(server, make_request(shared, quick_options(0.1, 3), "prod"));
  auto hurried_options = quick_options(0.1, 3);
  hurried_options.deadline_seconds = 0.05;  // passes long before the blocker ends
  auto hurried = submit_ok(server, make_request(shared, hurried_options, "batch"));
  ASSERT_TRUE(hurried.deduplicated);  // deadline does not fragment the key

  const auto hurried_result = hurried.result.get();
  EXPECT_EQ(hurried_result.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(hurried_result.start_sequence, 0U);  // resolved while queued
  const auto patient_result = patient.result.get();
  EXPECT_TRUE(patient_result.status.ok()) << patient_result.status.to_string();
  EXPECT_GT(patient_result.start_sequence, 0U);
  (void)blocker.result.get();
}

TEST(ServiceTenants, WeightedFairDispatchFavorsTheHeavierTenant) {
  // One-wide pool, prod weighted 3x over batch, four queued jobs each: the
  // weighted-fair scheduler serves prod three times as often, so three of
  // the first four dispatches after the blocker are prod's.
  ServiceConfig config;
  config.num_workers = 1;
  config.tenants = {{"prod", 3.0, 0}, {"batch", 1.0, 0}};
  SolverService server(config);
  auto blocker = submit_ok(
      server, make_request(std::make_shared<const mkp::Instance>(small_instance(20)),
                           quick_options(0.4), "setup"));
  wait_until_running(server, 1);

  std::vector<JobHandle> prod, batch;
  for (std::uint64_t k = 0; k < 4; ++k) {
    prod.push_back(submit_ok(
        server, make_request(std::make_shared<const mkp::Instance>(small_instance(30 + k)),
                             quick_options(0.05, k), "prod")));
  }
  for (std::uint64_t k = 0; k < 4; ++k) {
    batch.push_back(submit_ok(
        server, make_request(std::make_shared<const mkp::Instance>(small_instance(40 + k)),
                             quick_options(0.05, k), "batch")));
  }

  std::vector<std::uint64_t> prod_seq, batch_seq;
  for (auto& handle : prod) {
    const auto result = handle.result.get();
    ASSERT_TRUE(result.status.ok()) << result.status.to_string();
    prod_seq.push_back(result.start_sequence);
  }
  for (auto& handle : batch) {
    const auto result = handle.result.get();
    ASSERT_TRUE(result.status.ok()) << result.status.to_string();
    batch_seq.push_back(result.start_sequence);
  }
  (void)blocker.result.get();

  // Of the four earliest dispatches among the eight, exactly three are
  // prod's — the 3:1 share, enforced deterministically by virtual time.
  std::vector<std::pair<std::uint64_t, bool>> order;  // (sequence, is_prod)
  for (auto s : prod_seq) order.emplace_back(s, true);
  for (auto s : batch_seq) order.emplace_back(s, false);
  std::sort(order.begin(), order.end());
  int prod_in_first_four = 0;
  for (std::size_t k = 0; k < 4; ++k) prod_in_first_four += order[k].second;
  EXPECT_EQ(prod_in_first_four, 3);
  // And batch is not starved: its last job still ran.
  EXPECT_GT(batch_seq.back(), 0U);
}

TEST(ServiceTenants, RunningSlotQuotaCapsATenantButNotThePool) {
  // Quick-preset jobs take 2 slots each on this 4-wide pool, and batch may
  // hold at most 2 slots: its second job waits for its own quota while a
  // prod job walks straight into the two free slots.
  ServiceConfig config;
  config.num_workers = 4;
  config.tenants = {{"batch", 1.0, 2}};
  SolverService server(config);

  auto first = submit_ok(
      server, make_request(std::make_shared<const mkp::Instance>(small_instance(50)),
                           quick_options(0.4), "batch"));
  wait_until_running(server, 1);
  auto quota_blocked = submit_ok(
      server, make_request(std::make_shared<const mkp::Instance>(small_instance(51)),
                           quick_options(0.1), "batch"));
  auto prod = submit_ok(
      server, make_request(std::make_shared<const mkp::Instance>(small_instance(52)),
                           quick_options(0.1), "prod"));

  const auto first_result = first.result.get();
  const auto blocked_result = quota_blocked.result.get();
  const auto prod_result = prod.result.get();
  ASSERT_TRUE(first_result.status.ok());
  ASSERT_TRUE(blocked_result.status.ok());
  ASSERT_TRUE(prod_result.status.ok());
  // prod dispatched before batch's quota-blocked second job.
  EXPECT_LT(prod_result.start_sequence, blocked_result.start_sequence);
}

TEST(ServiceTenants, BackpressureShedsByWeightBeforePriority) {
  // Queue of one, shed-lowest overflow: a queued low-weight job is evicted
  // by a heavier tenant's submission even at lower priority — weight is the
  // primary shed rank, priority only breaks ties within a weight.
  ServiceConfig config;
  config.num_workers = 1;
  config.queue_capacity = 1;
  config.overflow = OverflowPolicy::kShedLowest;
  config.tenants = {{"prod", 3.0, 0}, {"batch", 1.0, 0}};
  SolverService server(config);

  auto running = submit_ok(
      server, make_request(std::make_shared<const mkp::Instance>(small_instance(60)),
                           quick_options(0.4), "setup"));
  wait_until_running(server, 1);

  auto victim_options = quick_options(0.1);
  victim_options.priority = 5;  // high priority, but the lightest tenant
  auto victim = submit_ok(
      server, make_request(std::make_shared<const mkp::Instance>(small_instance(61)),
                           victim_options, "batch"));

  auto usurper = submit_ok(
      server, make_request(std::make_shared<const mkp::Instance>(small_instance(62)),
                           quick_options(0.1), "prod"));  // priority 0, weight 3
  EXPECT_EQ(victim.result.get().status.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(usurper.result.get().status.ok());
  (void)running.result.get();
  EXPECT_EQ(server.stats().rejected, 1U);
}

TEST(ServiceTenants, ConcurrentShedAdmissionsRunUnderDistinctJobIds) {
  // Regression: shed admission must stamp the job's id exactly like the
  // normal accept path. Two shed-admitted jobs alive at once used to
  // collide on the id-0 sentinel in the running books — the duplicate
  // job-thread key destroyed a joinable std::thread and aborted the
  // process.
  ServiceConfig config;
  config.num_workers = 4;  // room for two 2-slot quick jobs at once
  config.queue_capacity = 1;
  config.overflow = OverflowPolicy::kShedLowest;
  config.tenants = {{"prod", 3.0, 0}, {"batch", 1.0, 0}};
  SolverService server(config);

  // Two staggered pool-fillers: the first frees capacity for the first
  // shed-admitted job while the second still pins the rest of the pool.
  auto filler_a = submit_ok(
      server, make_request(std::make_shared<const mkp::Instance>(small_instance(80)),
                           quick_options(0.25), "setup"));
  wait_until_running(server, 1);  // capacity 1: drain the queue between fillers
  auto filler_b = submit_ok(
      server, make_request(std::make_shared<const mkp::Instance>(small_instance(81)),
                           quick_options(0.8), "setup"));
  wait_until_running(server, 2);

  auto victim1 = submit_ok(
      server, make_request(std::make_shared<const mkp::Instance>(small_instance(82)),
                           quick_options(0.1), "batch"));
  auto usurper1 = submit_ok(
      server, make_request(std::make_shared<const mkp::Instance>(small_instance(83)),
                           quick_options(1.5), "prod"));
  EXPECT_EQ(victim1.result.get().status.code(), StatusCode::kResourceExhausted);

  // filler_a ends first; the shed-admitted usurper1 leaves the queue.
  Stopwatch watch;
  while (server.queued_jobs() != 0 && watch.elapsed_seconds() < 10.0) {
    std::this_thread::sleep_for(1ms);
  }
  ASSERT_EQ(server.queued_jobs(), 0U);

  auto victim2 = submit_ok(
      server, make_request(std::make_shared<const mkp::Instance>(small_instance(84)),
                           quick_options(0.1), "batch"));
  auto usurper2 = submit_ok(
      server, make_request(std::make_shared<const mkp::Instance>(small_instance(85)),
                           quick_options(0.5), "prod"));
  EXPECT_EQ(victim2.result.get().status.code(), StatusCode::kResourceExhausted);

  // filler_b ends while usurper1 still runs: both shed-admitted jobs are in
  // the running books together, each under its own id.
  (void)filler_a.result.get();
  (void)filler_b.result.get();
  const auto first = usurper1.result.get();
  const auto second = usurper2.result.get();
  EXPECT_TRUE(first.status.ok()) << first.status.to_string();
  EXPECT_TRUE(second.status.ok()) << second.status.to_string();
  EXPECT_NE(first.start_sequence, second.start_sequence);
}

TEST(ServiceDedup, DetachedGenerousWaiterDoesNotStrandTheStricterDeadline) {
  // Regression: when the most generous waiter of a shared RUNNING solve
  // cancels, the remaining waiter's own stricter deadline must still be
  // swept — it used to wait out the full (longer) solve deadline.
  SolverService server({.num_workers = 2});
  const auto shared = std::make_shared<const mkp::Instance>(small_instance(90));
  auto patient_options = quick_options(30.0, 5);
  patient_options.deadline_seconds = 30.0;  // the solve's committed leash
  auto patient = submit_ok(server, make_request(shared, patient_options, "prod"));
  wait_until_running(server, 1);

  auto hurried_options = quick_options(30.0, 5);
  hurried_options.deadline_seconds = 1.0;
  auto hurried = submit_ok(server, make_request(shared, hurried_options, "batch"));
  ASSERT_TRUE(hurried.deduplicated);  // covered: 1 s fits inside 30 s

  EXPECT_TRUE(server.cancel(patient.id));  // detach the generous waiter
  ASSERT_EQ(patient.result.wait_for(5s), std::future_status::ready);
  EXPECT_EQ(patient.result.get().status.code(), StatusCode::kCancelled);

  // The lone remaining waiter's deadline fires at ~1 s, not at 30 s.
  Stopwatch watch;
  ASSERT_EQ(hurried.result.wait_for(10s), std::future_status::ready);
  EXPECT_LT(watch.elapsed_seconds(), 8.0);
  EXPECT_EQ(hurried.result.get().status.code(),
            StatusCode::kDeadlineExceeded);
}

TEST(ServiceWarm, ExactEntrySeedsARepeatAcrossServiceInstances) {
  const auto dir = ::testing::TempDir() + "pts_warm_store_exact";
  std::filesystem::remove_all(dir);
  const auto shared = std::make_shared<const mkp::Instance>(small_instance(70));

  ServiceConfig config;
  config.num_workers = 2;
  config.warm_start_dir = dir;
  {
    SolverService server(config);
    auto cold = submit_ok(server, make_request(shared, quick_options(0.3, 11), "prod"));
    const auto result = cold.result.get();
    ASSERT_TRUE(result.status.ok()) << result.status.to_string();
    EXPECT_FALSE(result.warm_started);  // the store was empty
    // The save runs on the job thread after the future resolves; wait for
    // the entry file before tearing the service down.
    Stopwatch watch;
    auto has_entry = [&] {
      std::error_code ec;
      for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
        if (entry.path().extension() == ".ptsw") return true;
      }
      return false;
    };
    while (!has_entry() && watch.elapsed_seconds() < 10.0) {
      std::this_thread::sleep_for(5ms);
    }
    ASSERT_TRUE(has_entry());
  }

  // A NEW service over the same store directory: the repeat run is seeded
  // from the persisted entry.
  SolverService server(config);
  auto repeat_request = make_request(shared, quick_options(0.3, 12), "batch");
  repeat_request.warm_start = WarmStartPolicy::kExact;
  auto warm = submit_ok(server, std::move(repeat_request));
  const auto warm_result = warm.result.get();
  ASSERT_TRUE(warm_result.status.ok()) << warm_result.status.to_string();
  EXPECT_TRUE(warm_result.warm_started);
  server.shutdown();
  EXPECT_EQ(server.stats().warm_started, 1U);
  std::filesystem::remove_all(dir);
}

TEST(ServiceWarm, SimilarPolicySeedsFromANeighboringInstance) {
  // Same (m, n) shape, different seed: a different content hash, but the
  // mean tightness lands within the store's tolerance — kSimilar seeds the
  // run from the neighbor's strategies while kExact would miss.
  const auto dir = ::testing::TempDir() + "pts_warm_store_similar";
  std::filesystem::remove_all(dir);
  ServiceConfig config;
  config.num_workers = 2;
  config.warm_start_dir = dir;
  SolverService server(config);

  auto seeder = submit_ok(
      server, make_request(std::make_shared<const mkp::Instance>(small_instance(80)),
                           quick_options(0.3, 21), "prod"));
  ASSERT_TRUE(seeder.result.get().status.ok());
  Stopwatch watch;
  auto has_entry = [&] {
    std::error_code ec;
    for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
      if (entry.path().extension() == ".ptsw") return true;
    }
    return false;
  };
  while (!has_entry() && watch.elapsed_seconds() < 10.0) {
    std::this_thread::sleep_for(5ms);
  }
  ASSERT_TRUE(has_entry());

  const auto neighbor = std::make_shared<const mkp::Instance>(small_instance(81));
  auto exact_request = make_request(neighbor, quick_options(0.3, 22), "prod");
  exact_request.warm_start = WarmStartPolicy::kExact;
  auto exact_miss = submit_ok(server, std::move(exact_request));
  EXPECT_FALSE(exact_miss.result.get().warm_started);  // hash differs: miss

  auto similar_request = make_request(neighbor, quick_options(0.3, 23), "batch");
  similar_request.warm_start = WarmStartPolicy::kSimilar;
  auto similar = submit_ok(server, std::move(similar_request));
  const auto similar_result = similar.result.get();
  ASSERT_TRUE(similar_result.status.ok()) << similar_result.status.to_string();
  EXPECT_TRUE(similar_result.warm_started);
  server.shutdown();
  std::filesystem::remove_all(dir);
}

TEST(Tenants, SlotAskAboveQuotaIsClampedNotStarved) {
  // Regression: a job whose preset asks for more slots than its tenant's
  // max_running_slots quota was permanently ineligible for dispatch — the
  // scheduler skipped it forever and its future never resolved. The ask is
  // clamped to the quota at submit instead, so the job runs narrower.
  ServiceConfig config;
  config.num_workers = 4;
  config.tenants = {{"capped", 1.0, 1}};  // below the quick preset's 2-slot ask
  SolverService server(config);
  auto handle = submit_ok(
      server,
      make_request(std::make_shared<const mkp::Instance>(small_instance(1)),
                   quick_options(0.3), "capped"));
  ASSERT_EQ(handle.result.wait_for(30s), std::future_status::ready)
      << "quota-capped job never dispatched";
  const auto result = handle.result.get();
  EXPECT_TRUE(result.status.ok()) << result.status.to_string();
  server.shutdown();
}

}  // namespace
}  // namespace pts::service
