// SolverService: multi-job scheduling over a fixed pool, deadlines,
// cancellation, backpressure, priorities, and the every-future-resolves
// guarantee under a 50-job stress load — all through the redesigned
// submit(SubmitRequest) -> Expected<JobHandle> surface. Admission failures
// (bad options, backpressure, shutdown) come back as a Status; an accepted
// handle's future always resolves. The deprecated positional shim keeps the
// old resolved-future contract and is pinned by its own tests below.
#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "mkp/generator.hpp"
#include "service/solver_service.hpp"
#include "util/timer.hpp"

namespace pts::service {
namespace {

using namespace std::chrono_literals;

mkp::Instance small_instance(std::uint64_t seed) {
  return mkp::generate_gk({.num_items = 30, .num_constraints = 4}, seed);
}

/// Builds a request the way most tests want one: a fresh small instance and
/// the urgency fields lifted out of the options (the request-level priority
/// and deadline are authoritative under the new API).
SubmitRequest make_request(std::uint64_t seed, JobOptions options = {},
                           TenantId tenant = {}) {
  SubmitRequest request;
  request.instance = std::make_shared<const mkp::Instance>(small_instance(seed));
  request.tenant = std::move(tenant);
  request.priority = options.priority;
  request.deadline_seconds = options.deadline_seconds;
  request.options = std::move(options);
  return request;
}

/// Submits a request that must be admitted; a refusal fails the test.
JobHandle submit_ok(SolverService& server, SubmitRequest request) {
  auto handle = server.submit(std::move(request));
  EXPECT_TRUE(handle) << handle.status().to_string();
  if (!handle) return {};
  return std::move(*handle);
}

void wait_until_running(SolverService& server, std::size_t count) {
  Stopwatch watch;
  while (server.running_jobs() < count && watch.elapsed_seconds() < 10.0) {
    std::this_thread::sleep_for(1ms);
  }
  ASSERT_GE(server.running_jobs(), count);
}

TEST(Service, SolvesASingleJob) {
  SolverService server({.num_workers = 2});
  JobOptions options;
  options.preset = "quick";
  options.time_budget_seconds = 0.2;
  auto handle = submit_ok(server, make_request(1, options));
  EXPECT_GT(handle.id, 0U);
  EXPECT_NE(handle.content_hash, 0U);
  EXPECT_FALSE(handle.deduplicated);
  const auto result = handle.result.get();
  EXPECT_TRUE(result.status.ok()) << result.status.to_string();
  EXPECT_EQ(result.id, handle.id);
  EXPECT_EQ(result.content_hash, handle.content_hash);
  ASSERT_TRUE(result.best.has_value());
  EXPECT_TRUE(result.best->is_feasible());
  EXPECT_GT(result.best_value, 0.0);
  EXPECT_GT(result.total_moves, 0U);
  EXPECT_EQ(result.start_sequence, 1U);
  server.shutdown();
  EXPECT_EQ(server.stats().completed, 1U);
}

TEST(Service, UnknownPresetIsRefusedAtAdmission) {
  // Under the new API a bogus preset never produces a future at all: the
  // submit itself returns the structured error.
  SolverService server({.num_workers = 1});
  JobOptions options;
  options.preset = "warp-speed";
  auto handle = server.submit(make_request(2, options));
  ASSERT_FALSE(handle);
  EXPECT_EQ(handle.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(handle.status().message().find("warp-speed"), std::string::npos);
  EXPECT_NE(handle.status().message().find("quick"), std::string::npos);
  EXPECT_EQ(server.stats().invalid, 1U);
}

TEST(Service, BadOptionsAreRefusedAtAdmission) {
  SolverService server({.num_workers = 1});
  JobOptions negative_budget;
  negative_budget.time_budget_seconds = -1.0;
  auto bad = server.submit(make_request(3, negative_budget));
  ASSERT_FALSE(bad);
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);

  SubmitRequest null_instance;  // never set request.instance
  auto null_handle = server.submit(std::move(null_instance));
  ASSERT_FALSE(null_handle);
  EXPECT_EQ(null_handle.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(server.stats().invalid, 2U);
}

TEST(Service, CancelRunningJobResolvesCancelledWithBestSoFar) {
  SolverService server({.num_workers = 2});
  JobOptions options;
  options.preset = "quick";
  options.time_budget_seconds = 30.0;  // would run for ages uncancelled
  auto handle = submit_ok(server, make_request(4, options));
  wait_until_running(server, 1);
  std::this_thread::sleep_for(50ms);

  Stopwatch watch;
  EXPECT_TRUE(server.cancel(handle.id));
  ASSERT_EQ(handle.result.wait_for(10s), std::future_status::ready);
  EXPECT_LT(watch.elapsed_seconds(), 5.0);  // prompt, not budget-long
  const auto result = handle.result.get();
  EXPECT_EQ(result.status.code(), StatusCode::kCancelled);
  ASSERT_TRUE(result.best.has_value());  // carries the best found so far
  EXPECT_TRUE(result.best->is_feasible());
  EXPECT_FALSE(server.cancel(handle.id));  // already resolved
}

TEST(Service, CancelQueuedJobNeverRuns) {
  SolverService server({.num_workers = 1});
  JobOptions blocker_options;
  blocker_options.preset = "quick";
  blocker_options.time_budget_seconds = 1.0;
  auto blocker = submit_ok(server, make_request(5, blocker_options));
  wait_until_running(server, 1);

  auto queued = submit_ok(server, make_request(6, blocker_options));
  EXPECT_TRUE(server.cancel(queued.id));
  const auto result = queued.result.get();
  EXPECT_EQ(result.status.code(), StatusCode::kCancelled);
  EXPECT_EQ(result.start_sequence, 0U);  // resolved without running
  EXPECT_FALSE(result.best.has_value());
  server.cancel(blocker.id);
  (void)blocker.result.get();
  EXPECT_FALSE(server.cancel(9999));  // unknown id
}

TEST(Service, DeadlineBoundsAreHonoured) {
  // A quick-preset job with a 10 s budget but a 0.4 s deadline: it must not
  // resolve before the deadline (the budget is truncated, not ignored) and
  // must resolve promptly after it — the tentpole's 50 ms latency target,
  // with CI slack on the overshoot side.
  SolverService server({.num_workers = 2});
  JobOptions options;
  options.preset = "quick";
  options.time_budget_seconds = 10.0;
  options.deadline_seconds = 0.4;
  Stopwatch watch;
  auto handle = submit_ok(server, make_request(7, options));
  ASSERT_EQ(handle.result.wait_for(10s), std::future_status::ready);
  const double elapsed = watch.elapsed_seconds();
  const auto result = handle.result.get();
  EXPECT_EQ(result.status.code(), StatusCode::kDeadlineExceeded)
      << result.status.to_string();
  EXPECT_GE(elapsed, 0.35);  // no undershoot: ran until the deadline
  EXPECT_LT(elapsed, 2.0);   // no overshoot beyond scheduling slack
  ASSERT_TRUE(result.best.has_value());
  EXPECT_TRUE(result.best->is_feasible());
}

TEST(Service, QueuedJobPastDeadlineResolvesWithoutRunning) {
  SolverService server({.num_workers = 1});
  JobOptions blocker_options;
  blocker_options.preset = "quick";
  blocker_options.time_budget_seconds = 0.6;
  auto blocker = submit_ok(server, make_request(8, blocker_options));
  wait_until_running(server, 1);

  JobOptions hopeless;
  hopeless.preset = "quick";
  hopeless.time_budget_seconds = 0.2;
  hopeless.deadline_seconds = 0.05;  // passes long before the blocker ends
  auto queued = submit_ok(server, make_request(9, hopeless));
  const auto result = queued.result.get();
  EXPECT_EQ(result.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(result.start_sequence, 0U);
  (void)blocker.result.get();
}

TEST(Service, QueueOverflowRefusesTheNewcomer) {
  SolverService server({.num_workers = 1, .queue_capacity = 1});
  JobOptions options;
  options.preset = "quick";
  options.time_budget_seconds = 0.5;
  auto running = submit_ok(server, make_request(10, options));
  wait_until_running(server, 1);
  auto queued = submit_ok(server, make_request(11, options));
  auto overflow = server.submit(make_request(12, options));

  ASSERT_FALSE(overflow);  // backpressure is an admission error now
  EXPECT_EQ(overflow.status().code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(queued.result.get().status.ok());
  EXPECT_TRUE(running.result.get().status.ok());
  EXPECT_EQ(server.stats().rejected, 1U);
}

TEST(Service, ShedLowestEvictsOnlyWhenOutranked) {
  SolverService server(
      {.num_workers = 1, .queue_capacity = 1, .overflow = OverflowPolicy::kShedLowest});
  JobOptions options;
  options.preset = "quick";
  options.time_budget_seconds = 0.5;
  auto running = submit_ok(server, make_request(13, options));
  wait_until_running(server, 1);

  JobOptions low = options;
  low.priority = 1;
  auto victim = submit_ok(server, make_request(14, low));

  JobOptions lower = options;
  lower.priority = 0;  // does NOT outrank the queued job: refused itself
  auto bounced = server.submit(make_request(15, lower));
  ASSERT_FALSE(bounced);
  EXPECT_EQ(bounced.status().code(), StatusCode::kResourceExhausted);

  JobOptions high = options;
  high.priority = 5;  // outranks: evicts the queued low-priority job
  auto usurper = submit_ok(server, make_request(16, high));
  EXPECT_EQ(victim.result.get().status.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(usurper.result.get().status.ok());
  (void)running.result.get();
}

TEST(Service, PriorityOrdersDispatch) {
  SolverService server({.num_workers = 1});
  JobOptions blocker_options;
  blocker_options.preset = "quick";
  blocker_options.time_budget_seconds = 0.3;
  auto blocker = submit_ok(server, make_request(17, blocker_options));
  wait_until_running(server, 1);

  JobOptions low = blocker_options;
  low.time_budget_seconds = 0.05;
  low.priority = 0;
  JobOptions high = blocker_options;
  high.time_budget_seconds = 0.05;
  high.priority = 9;
  auto first_submitted = submit_ok(server, make_request(18, low));
  auto second_submitted = submit_ok(server, make_request(19, high));

  const auto low_result = first_submitted.result.get();
  const auto high_result = second_submitted.result.get();
  ASSERT_GT(low_result.start_sequence, 0U);
  ASSERT_GT(high_result.start_sequence, 0U);
  // The high-priority job started before the earlier-submitted low one.
  EXPECT_LT(high_result.start_sequence, low_result.start_sequence);
  (void)blocker.result.get();
}

TEST(Service, ShutdownResolvesEverythingAndRefusesNewWork) {
  auto server = std::make_unique<SolverService>(ServiceConfig{.num_workers = 1});
  JobOptions options;
  options.preset = "quick";
  options.time_budget_seconds = 5.0;
  std::vector<JobHandle> handles;
  for (std::uint64_t k = 0; k < 4; ++k) {
    handles.push_back(submit_ok(*server, make_request(20 + k, options)));
  }
  server->shutdown();
  for (auto& handle : handles) {
    ASSERT_EQ(handle.result.wait_for(10s), std::future_status::ready);
    const auto result = handle.result.get();
    EXPECT_TRUE(result.status.ok() ||
                result.status.code() == StatusCode::kCancelled)
        << result.status.to_string();
  }
  auto late = server->submit(make_request(30, options));
  ASSERT_FALSE(late);
  EXPECT_EQ(late.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(late.status().message().find("shut down"), std::string::npos);
  server.reset();  // double-shutdown via the destructor must be safe
}

// -- The transitional positional shim, pinned until its removal. It keeps
// the pre-tenant contract: EVERY submission gets a valid id and a future,
// and admission failures are resolved INTO that future rather than being
// returned as a Status.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

TEST(ServiceLegacyShim, InvalidOptionsResolveIntoTheFuture) {
  SolverService server({.num_workers = 1});
  JobOptions options;
  options.preset = "warp-speed";
  auto submission = server.submit(small_instance(2), options);
  EXPECT_GT(submission.id, 0U);
  ASSERT_EQ(submission.result.wait_for(5s), std::future_status::ready);
  const auto result = submission.result.get();
  EXPECT_EQ(result.status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status.message().find("warp-speed"), std::string::npos);
  EXPECT_FALSE(result.best.has_value());
  EXPECT_EQ(result.start_sequence, 0U);  // never ran
  EXPECT_EQ(server.stats().invalid, 1U);
}

TEST(ServiceLegacyShim, SubmitAfterShutdownResolvesUnavailableImmediately) {
  // Pinned contract: a submit that loses the race with shutdown() still gets
  // a valid id and an immediately-ready future carrying kUnavailable with no
  // solution — never a hang, never an abort, never an unresolved future.
  SolverService server({.num_workers = 1});
  server.shutdown();
  auto submission = server.submit(small_instance(40), JobOptions{});
  EXPECT_GT(submission.id, 0U);
  ASSERT_EQ(submission.result.wait_for(0s), std::future_status::ready);
  const auto result = submission.result.get();
  EXPECT_EQ(result.status.code(), StatusCode::kUnavailable);
  EXPECT_NE(result.status.message().find("shut down"), std::string::npos);
  EXPECT_FALSE(result.best.has_value());
  EXPECT_EQ(result.start_sequence, 0U);  // never ran
  EXPECT_EQ(result.origin, JobOrigin::kFresh);
  const auto stats = server.stats();
  EXPECT_EQ(stats.submitted, 1U);
  EXPECT_EQ(stats.cancelled, 1U);
}

#pragma GCC diagnostic pop

TEST(ServiceStress, FiftyJobsOnFourWorkersEveryFutureResolves) {
  // The tentpole acceptance load: 50 mixed jobs on a 4-wide pool — short
  // solves, tight deadlines, a bogus preset, mid-flight cancels — and every
  // single future must resolve with a definite status. The bogus-preset
  // submissions are refused at admission under the new API: no future to
  // leak, the structured error comes straight back.
  SolverService server({.num_workers = 4, .queue_capacity = 64});
  std::vector<JobHandle> handles;
  handles.reserve(50);
  std::size_t refused = 0;
  for (std::uint64_t k = 0; k < 50; ++k) {
    JobOptions options;
    options.preset = (k % 7 == 3) ? "warp-speed" : "quick";
    options.time_budget_seconds = 0.05;
    options.seed = k;
    options.priority = static_cast<int>(k % 3);
    if (k % 5 == 0) options.deadline_seconds = 0.3;
    auto handle = server.submit(make_request(100 + k, options));
    if (!handle) {
      EXPECT_EQ(handle.status().code(), StatusCode::kInvalidArgument);
      ++refused;
      continue;
    }
    handles.push_back(std::move(*handle));
  }
  EXPECT_EQ(refused, 7U);  // k % 7 == 3 hits: 3,10,17,24,31,38,45
  // Cancel a handful while the pool churns.
  for (std::size_t k = 10; k < handles.size(); k += 10) {
    server.cancel(handles[k].id);
  }

  std::size_t solved = 0;
  for (auto& handle : handles) {
    ASSERT_EQ(handle.result.wait_for(120s), std::future_status::ready)
        << "job " << handle.id << " never resolved";
    const auto result = handle.result.get();
    switch (result.status.code()) {
      case StatusCode::kOk:
        ++solved;
        ASSERT_TRUE(result.best.has_value());
        EXPECT_TRUE(result.best->is_feasible());
        break;
      case StatusCode::kDeadlineExceeded:
      case StatusCode::kCancelled:
      case StatusCode::kResourceExhausted:
        break;  // all legitimate terminal outcomes under this load
      default:
        FAIL() << "unexpected status: " << result.status.to_string();
    }
  }
  EXPECT_GT(solved, 25U);  // the bulk of the load actually solves
  server.shutdown();
  const auto stats = server.stats();
  EXPECT_EQ(stats.submitted, 50U);
  EXPECT_EQ(stats.completed, solved);
  EXPECT_EQ(stats.invalid, 7U);
}

TEST(ServiceStress, RepeatedConstructionAndTeardown) {
  for (int round = 0; round < 5; ++round) {
    SolverService server({.num_workers = 2});
    JobOptions options;
    options.preset = "quick";
    options.time_budget_seconds = 0.02;
    auto a = submit_ok(server, make_request(200 + round, options));
    auto b = submit_ok(server, make_request(300 + round, options));
    EXPECT_TRUE(a.result.get().status.ok());
    EXPECT_TRUE(b.result.get().status.ok());
  }
}

}  // namespace
}  // namespace pts::service
