// CommonOptions: the shared CLI vocabulary of every driver binary. The
// rejection paths matter as much as the happy path — a typo'd flag must be
// a structured Status naming the flag, never a silent fallback (a --seed=-1
// silently wrapping to 2^64-1 once cost a confusing non-repro).
#include "service/options.hpp"

#include <gtest/gtest.h>

#include "parallel/presets.hpp"

namespace pts::service {
namespace {

template <int N>
Expected<CommonOptions> parse(const char* (&argv)[N]) {
  return CommonOptions::from_cli(CliArgs::parse(N, argv));
}

TEST(CommonOptions, RejectsUnknownMode) {
  const char* argv[] = {"prog", "--mode=bogus"};
  const auto options = parse(argv);
  ASSERT_FALSE(options);
  EXPECT_EQ(options.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(options.status().message().find("--mode"), std::string::npos);
}

TEST(CommonOptions, RejectsUnknownBackend) {
  const char* argv[] = {"prog", "--backend=quantum"};
  const auto options = parse(argv);
  ASSERT_FALSE(options);
  EXPECT_EQ(options.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(options.status().message().find("--backend"), std::string::npos);
}

TEST(CommonOptions, RejectsUnknownWarmStartPolicy) {
  const char* argv[] = {"prog", "--warm-start=sometimes",
                        "--warm-start-dir=/tmp/ws"};
  const auto options = parse(argv);
  ASSERT_FALSE(options);
  EXPECT_EQ(options.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(options.status().message().find("--warm-start"), std::string::npos);
}

TEST(CommonOptions, RejectsResumeWithoutCheckpoint) {
  const char* argv[] = {"prog", "--resume"};
  const auto options = parse(argv);
  ASSERT_FALSE(options);
  EXPECT_EQ(options.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(options.status().message().find("--checkpoint"), std::string::npos);
}

TEST(CommonOptions, RejectsWarmStartWithoutDir) {
  const char* argv[] = {"prog", "--warm-start=exact"};
  const auto options = parse(argv);
  ASSERT_FALSE(options);
  EXPECT_EQ(options.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(options.status().message().find("--warm-start-dir"),
            std::string::npos);
}

TEST(CommonOptions, WarmStartOffNeedsNoDir) {
  const char* argv[] = {"prog", "--warm-start=off"};
  const auto options = parse(argv);
  ASSERT_TRUE(options) << options.status().to_string();
  EXPECT_EQ(options->warm_start, WarmStartPolicy::kDisabled);
}

TEST(CommonOptions, RejectsNegativeSeed) {
  // A negative seed used to wrap through the uint64 cast to a perfectly
  // valid-looking giant seed — a silent non-repro instead of an error.
  const char* argv[] = {"prog", "--seed=-1"};
  const auto options = parse(argv);
  ASSERT_FALSE(options);
  EXPECT_EQ(options.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(options.status().message().find("--seed"), std::string::npos);
}

TEST(CommonOptions, AcceptsZeroSeed) {
  const char* argv[] = {"prog", "--seed=0"};
  const auto options = parse(argv);
  ASSERT_TRUE(options) << options.status().to_string();
  EXPECT_EQ(options->seed, 0u);
}

TEST(CommonOptions, ApplyOverridesPropagatesWorkerWithoutBackendFlag) {
  // --worker must land in proc.worker_path even when --backend is not on
  // the same command line: a preset (or the submitting service) may already
  // select the process backend, and the explicit worker path must win there.
  const char* argv[] = {"prog", "--worker=/opt/bin/pts_worker"};
  const auto options = parse(argv);
  ASSERT_TRUE(options) << options.status().to_string();
  auto config = *parallel::preset_by_name("quick", /*seed=*/1);
  options->apply_overrides(config);
  EXPECT_EQ(config.proc.worker_path, "/opt/bin/pts_worker");
  EXPECT_EQ(config.backend, parallel::Backend::kThread);  // not forced
}

TEST(CommonOptions, ApplyOverridesKeepsExistingWorkerWhenFlagAbsent) {
  const char* argv[] = {"prog", "--seed=3"};
  const auto options = parse(argv);
  ASSERT_TRUE(options) << options.status().to_string();
  auto config = *parallel::preset_by_name("quick", /*seed=*/1);
  config.proc.worker_path = "/from/the/preset";
  options->apply_overrides(config);
  EXPECT_EQ(config.proc.worker_path, "/from/the/preset");
  EXPECT_EQ(config.seed, 3u);
}

TEST(CommonOptions, ApplyOverridesSetsWorkerAlongsideBackend) {
  const char* argv[] = {"prog", "--backend=proc", "--worker=/opt/bin/w"};
  const auto options = parse(argv);
  ASSERT_TRUE(options) << options.status().to_string();
  auto config = *parallel::preset_by_name("quick", /*seed=*/1);
  options->apply_overrides(config);
  EXPECT_EQ(config.backend, parallel::Backend::kProcess);
  EXPECT_EQ(config.proc.worker_path, "/opt/bin/w");
}

}  // namespace
}  // namespace pts::service
