#include "tabu/intensify.hpp"

#include <gtest/gtest.h>

#include "bounds/greedy.hpp"
#include "mkp/generator.hpp"

namespace pts::tabu {
namespace {

TEST(SwapIntensify, AppliesProfitableExchange) {
  // Item 0 selected (profit 5), item 1 unselected (profit 8), same weight:
  // the exchange is feasible and must happen.
  mkp::Instance inst("sw", {5, 8}, {3, 3}, {3});
  mkp::Solution s(inst);
  s.add(0);
  IntensifyStats stats;
  const auto applied = swap_intensify(s, &stats);
  EXPECT_EQ(applied, 1U);
  EXPECT_EQ(stats.swaps, 1U);
  EXPECT_FALSE(s.contains(0));
  EXPECT_TRUE(s.contains(1));
  EXPECT_DOUBLE_EQ(s.value(), 8.0);
}

TEST(SwapIntensify, SkipsInfeasibleExchange) {
  // Item 1 is better but heavier than the slack allows.
  mkp::Instance inst("inf", {5, 8}, {3, 4}, {3});
  mkp::Solution s(inst);
  s.add(0);
  EXPECT_EQ(swap_intensify(s), 0U);
  EXPECT_TRUE(s.contains(0));
}

TEST(SwapIntensify, NeverDecreasesValue) {
  const auto inst = mkp::generate_gk({.num_items = 50, .num_constraints = 5}, 7);
  auto s = bounds::greedy_construct(inst, bounds::GreedyOrder::kProfit);
  const double before = s.value();
  swap_intensify(s);
  EXPECT_GE(s.value(), before);
  EXPECT_TRUE(s.is_feasible());
}

TEST(SwapIntensify, ReachesFixpoint) {
  const auto inst = mkp::generate_gk({.num_items = 40, .num_constraints = 5}, 8);
  auto s = bounds::greedy_construct(inst);
  swap_intensify(s);
  EXPECT_EQ(swap_intensify(s), 0U);  // a second pass finds nothing
}

TEST(SwapIntensify, ChainsMultipleExchanges) {
  // 1 constraint; capacity 3. Selected {0}; 1 and 2 both better, weight 3 and 3:
  // exchanging 0->2 then no more (only one slot). Build a two-step chain:
  // c = {1, 2, 3}, w = {1, 1, 1}, b = 2, start {0, 1}: swap 0->2 gives {2,1}.
  mkp::Instance inst("ch", {1, 2, 3}, {1, 1, 1}, {2});
  mkp::Solution s(inst);
  s.add(0);
  s.add(1);
  const auto applied = swap_intensify(s);
  EXPECT_GE(applied, 1U);
  EXPECT_TRUE(s.contains(2));
  EXPECT_TRUE(s.contains(1));
  EXPECT_DOUBLE_EQ(s.value(), 5.0);
}

TEST(Oscillation, AlwaysReturnsFeasible) {
  const auto inst = mkp::generate_gk({.num_items = 50, .num_constraints = 5}, 9);
  auto s = bounds::greedy_construct(inst);
  Rng rng(1);
  for (int round = 0; round < 5; ++round) {
    oscillation_intensify(s, 6, rng);
    EXPECT_TRUE(s.is_feasible());
    EXPECT_TRUE(s.check_consistency());
  }
}

TEST(Oscillation, DepthLimitBoundsExcursion) {
  const auto inst = mkp::generate_gk({.num_items = 50, .num_constraints = 5}, 10);
  auto s = bounds::greedy_construct(inst);
  Rng rng(2);
  IntensifyStats stats;
  oscillation_intensify(s, 4, rng, &stats);
  EXPECT_LE(stats.oscillation_adds, 4U);
}

TEST(Oscillation, ZeroDepthIsRepairPlusFill) {
  const auto inst = mkp::generate_gk({.num_items = 30, .num_constraints = 4}, 11);
  auto s = bounds::greedy_construct(inst);
  const double before = s.value();
  Rng rng(3);
  oscillation_intensify(s, 0, rng);
  // Feasible maximal input with no excursion: value unchanged.
  EXPECT_DOUBLE_EQ(s.value(), before);
}

TEST(Oscillation, StatsAccumulateDrops) {
  const auto inst = mkp::generate_gk({.num_items = 50, .num_constraints = 5}, 12);
  auto s = bounds::greedy_construct(inst);
  Rng rng(4);
  IntensifyStats stats;
  oscillation_intensify(s, 8, rng, &stats);
  // Whatever was added beyond feasibility must have been dropped again
  // (possibly along with original items).
  EXPECT_GE(stats.oscillation_drops, 0U);
  EXPECT_TRUE(s.is_feasible());
}

class OscillationSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(OscillationSweep, FeasibleAtEveryDepth) {
  const auto inst = mkp::generate_fp({.num_items = 40, .num_constraints = 6}, 13);
  auto s = bounds::greedy_construct(inst);
  Rng rng(GetParam());
  oscillation_intensify(s, GetParam(), rng);
  EXPECT_TRUE(s.is_feasible());
}

INSTANTIATE_TEST_SUITE_P(Depths, OscillationSweep,
                         ::testing::Values(0, 1, 2, 3, 5, 8, 13, 21));

}  // namespace
}  // namespace pts::tabu
