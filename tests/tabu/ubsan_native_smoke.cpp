// UBSan smoke over the native kernel surface. This binary recompiles the
// four TUs behind the runtime SIMD dispatch — tabu/kernels.cpp,
// tabu/kernels_simd.cpp, util/bitvec.cpp, util/simd.cpp — with
// -fsanitize=undefined -fno-sanitize-recover and PTS_NATIVE_SIMD_DEFAULT=1,
// then drives full candidate sweeps through every dispatch kind the CPU
// supports. Any misaligned vector load, padded-lane over-read turned into
// UB, or out-of-range shift in the word scans aborts the run; any
// scalar/vector divergence fails it with a diagnostic. Registered in the
// default ctest sweep (no sanitizer build required) so the vector paths get
// UBSan coverage on every run, mirroring what a -DPTS_ENABLE_NATIVE=ON
// sanitizer job would see.
#include <cstdio>
#include <cstring>

#include "bounds/greedy.hpp"
#include "mkp/generator.hpp"
#include "tabu/kernels.hpp"
#include "util/bitvec.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"

namespace {

using namespace pts;

/// Mid-search state with mixed fit/non-fit candidates, same shape the tabu
/// engine scans (see bench_kernels.cpp).
mkp::Solution sweep_state(const mkp::Instance& inst, std::uint64_t seed) {
  auto x = bounds::greedy_construct(inst);
  Rng rng(seed);
  const auto selected = x.selected_items();
  for (std::size_t k = 0; k < selected.size() / 4; ++k) {
    const std::size_t j = selected[rng.index(selected.size())];
    if (x.contains(j)) x.drop(j);
  }
  return x;
}

bool bitwise_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

int check_sweep(const mkp::Instance& inst, std::uint64_t seed) {
  const auto x = sweep_state(inst, seed);
  int failures = 0;
  const auto vector_kind = simd::best_supported();
  // The hoisted sweep evaluator runs the same bodies through cached raw
  // pointers plus the certain-fit score-only path — UBSan over it too.
  const tabu::kernels::AddScan scan(x, vector_kind);
  for (std::size_t j = 0; j < inst.num_items(); ++j) {
    if (x.contains(j)) continue;
    const auto scalar = tabu::kernels::fit_and_score_scalar(x, j);
    const auto vec = tabu::kernels::fit_and_score_vector(x, j, vector_kind);
    const auto hoisted = scan(j);
    if (scalar.fit != vec.fit ||
        (scalar.fit && !bitwise_equal(scalar.score, vec.score))) {
      std::fprintf(stderr,
                   "DIVERGENCE %s item %zu: scalar (%d, %.17g) vs %s (%d, %.17g)\n",
                   inst.name().c_str(), j, scalar.fit, scalar.score,
                   simd::to_string(vector_kind), vec.fit, vec.score);
      ++failures;
    }
    if (scalar.fit != hoisted.fit ||
        (scalar.fit && !bitwise_equal(scalar.score, hoisted.score))) {
      std::fprintf(stderr,
                   "ADDSCAN DIVERGENCE %s item %zu: scalar (%d, %.17g) vs "
                   "hoisted (%d, %.17g)\n",
                   inst.name().c_str(), j, scalar.fit, scalar.score, hoisted.fit,
                   hoisted.score);
      ++failures;
    }
    if (scalar.fit && tabu::kernels::prune_add_candidate(x, j)) {
      std::fprintf(stderr, "PRUNE LIED %s item %zu: pruned but fits\n",
                   inst.name().c_str(), j);
      ++failures;
    }
  }
  // Word scans over the selection mask: every position, both polarities —
  // the shift/mask arithmetic in the vectorized scan is exactly where UBSan
  // finds off-by-ones.
  const BitVec& bits = x.bits();
  std::size_t ones = 0;
  for (std::size_t j = bits.next_one(0); j < inst.num_items();
       j = bits.next_one(j + 1)) {
    ++ones;
  }
  std::size_t zeros = 0;
  for (std::size_t j = bits.next_zero(0); j < inst.num_items();
       j = bits.next_zero(j + 1)) {
    ++zeros;
  }
  if (ones != bits.popcount() || ones + zeros != inst.num_items()) {
    std::fprintf(stderr, "SCAN MISCOUNT %s: %zu ones + %zu zeros != %zu items\n",
                 inst.name().c_str(), ones, zeros, inst.num_items());
    ++failures;
  }
  return failures;
}

}  // namespace

int main() {
  std::printf("ubsan native smoke: dispatch default %s, best %s\n",
              simd::to_string(simd::active()),
              simd::to_string(simd::best_supported()));
  int failures = 0;
  // Shapes straddle the lane width: n and m both prime-ish and lane-aligned,
  // including the paper's widest (30 rows) where the padded tail is longest.
  const struct {
    std::size_t n, m;
  } shapes[] = {{7, 3}, {64, 4}, {100, 5}, {250, 10}, {500, 25}, {500, 30}};
  for (const auto& shape : shapes) {
    for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
      const auto gk = mkp::generate_gk(
          {.num_items = shape.n, .num_constraints = shape.m}, seed);
      failures += check_sweep(gk, seed);
      const auto uncor =
          mkp::generate_uncorrelated(shape.n, shape.m, seed, 1000.0, 0.5);
      failures += check_sweep(uncor, seed);
    }
  }
  if (failures != 0) {
    std::fprintf(stderr, "FAIL: %d divergences\n", failures);
    return 1;
  }
  std::printf("ok\n");
  return 0;
}
