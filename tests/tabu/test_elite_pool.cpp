#include "tabu/elite_pool.hpp"

#include <gtest/gtest.h>

#include "mkp/instance.hpp"

namespace pts::tabu {
namespace {

mkp::Instance make_inst() {
  // 6 items, one loose constraint so any subset is feasible; profits
  // 1, 2, 4, 8, 16, 32 make subset values unique.
  return mkp::Instance("e", {1, 2, 4, 8, 16, 32},
                       {1, 1, 1, 1, 1, 1}, {100});
}

mkp::Solution make_solution(const mkp::Instance& inst,
                            std::initializer_list<std::size_t> items) {
  mkp::Solution s(inst);
  for (auto j : items) s.add(j);
  return s;
}

TEST(ElitePool, KeepsBestFirst) {
  const auto inst = make_inst();
  ElitePool pool(3);
  EXPECT_TRUE(pool.offer(make_solution(inst, {0})));       // 1
  EXPECT_TRUE(pool.offer(make_solution(inst, {5})));       // 32
  EXPECT_TRUE(pool.offer(make_solution(inst, {2})));       // 4
  ASSERT_EQ(pool.size(), 3U);
  EXPECT_DOUBLE_EQ(pool.best().value(), 32.0);
  EXPECT_DOUBLE_EQ(pool.solutions()[1].value(), 4.0);
  EXPECT_DOUBLE_EQ(pool.solutions()[2].value(), 1.0);
}

TEST(ElitePool, EvictsWorstAtCapacity) {
  const auto inst = make_inst();
  ElitePool pool(2);
  pool.offer(make_solution(inst, {0}));  // 1
  pool.offer(make_solution(inst, {1}));  // 2
  EXPECT_TRUE(pool.offer(make_solution(inst, {2})));  // 4 evicts 1
  ASSERT_EQ(pool.size(), 2U);
  EXPECT_DOUBLE_EQ(pool.solutions()[1].value(), 2.0);
}

TEST(ElitePool, RejectsWorseThanWorstWhenFull) {
  const auto inst = make_inst();
  ElitePool pool(2);
  pool.offer(make_solution(inst, {4}));  // 16
  pool.offer(make_solution(inst, {5}));  // 32
  EXPECT_FALSE(pool.offer(make_solution(inst, {0})));  // 1 < 16
  EXPECT_EQ(pool.size(), 2U);
}

TEST(ElitePool, RejectsDuplicates) {
  const auto inst = make_inst();
  ElitePool pool(3);
  EXPECT_TRUE(pool.offer(make_solution(inst, {1, 2})));
  EXPECT_FALSE(pool.offer(make_solution(inst, {1, 2})));
  EXPECT_EQ(pool.size(), 1U);
}

TEST(ElitePool, RejectsInfeasible) {
  mkp::Instance tight("t", {5, 5}, {3, 3}, {3});
  ElitePool pool(3);
  mkp::Solution bad(tight);
  bad.add(0);
  bad.add(1);  // load 6 > 3
  EXPECT_FALSE(pool.offer(bad));
  EXPECT_TRUE(pool.empty());
}

TEST(ElitePool, ZeroCapacityAcceptsNothing) {
  const auto inst = make_inst();
  ElitePool pool(0);
  EXPECT_FALSE(pool.offer(make_solution(inst, {5})));
}

TEST(ElitePool, EqualValuesDistinctContentBothKept) {
  // items 0+1 (value 3) vs item 0 and 1 separately... use {0,1} vs {2}? 4 != 3.
  // Build two distinct solutions of equal value: {0,1} = 3 and... no pair
  // matches; use profits trick: {2} = 4 vs {0,1}+... simplest: same-value via
  // different instance.
  mkp::Instance inst("eq", {2, 1, 1}, {1, 1, 1}, {10});
  ElitePool pool(3);
  mkp::Solution a(inst);
  a.add(0);  // value 2
  mkp::Solution b(inst);
  b.add(1);
  b.add(2);  // value 2
  EXPECT_TRUE(pool.offer(a));
  EXPECT_TRUE(pool.offer(b));
  EXPECT_EQ(pool.size(), 2U);
}

TEST(ElitePool, MeanPairwiseHamming) {
  const auto inst = make_inst();
  ElitePool pool(3);
  EXPECT_DOUBLE_EQ(pool.mean_pairwise_hamming(), 0.0);
  pool.offer(make_solution(inst, {5}));
  EXPECT_DOUBLE_EQ(pool.mean_pairwise_hamming(), 0.0);  // single solution
  pool.offer(make_solution(inst, {4}));
  // {5} vs {4}: distance 2.
  EXPECT_DOUBLE_EQ(pool.mean_pairwise_hamming(), 2.0);
  pool.offer(make_solution(inst, {3, 4}));
  // pairs: {5}-{4}:2, {5}-{3,4}:3, {4}-{3,4}:1 -> mean 2.
  EXPECT_DOUBLE_EQ(pool.mean_pairwise_hamming(), 2.0);
}

TEST(ElitePool, ClearEmptiesPool) {
  const auto inst = make_inst();
  ElitePool pool(3);
  pool.offer(make_solution(inst, {0}));
  pool.clear();
  EXPECT_TRUE(pool.empty());
}

TEST(ElitePoolDeath, BestOnEmptyAborts) {
  ElitePool pool(3);
  EXPECT_DEATH((void)pool.best(), "empty");
}

}  // namespace
}  // namespace pts::tabu
