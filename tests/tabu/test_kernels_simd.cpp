// Scalar == SIMD bit-compatibility for the dispatched fit_and_score bodies
// (DESIGN.md "Runtime SIMD dispatch"): the vector kernels replicate the
// scalar accumulation tree lane-for-lane, so their results must be BITWISE
// equal — not merely within tolerance — across every m mod 4 remainder
// (exercising the padded-tail path), unaligned column bases, empty/partial/
// saturated/infeasible states, and whole fixed-seed search trajectories.
// When this binary/CPU has no vector kind, the suite records itself skipped
// rather than silently passing on the scalar==scalar identity.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "bounds/greedy.hpp"
#include "mkp/generator.hpp"
#include "tabu/engine.hpp"
#include "tabu/kernels.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"

namespace pts::tabu {
namespace {

// Restores the process-wide dispatch no matter how a test exits.
class DispatchGuard {
 public:
  DispatchGuard() : saved_(simd::active()) {}
  ~DispatchGuard() { simd::set_active(saved_); }

 private:
  simd::Kind saved_;
};

bool bitwise_equal(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

TEST(SimdKernel, BitwiseEqualToScalarAcrossAllRemainders) {
  const simd::Kind kind = simd::best_supported();
  if (kind == simd::Kind::kScalar) {
    GTEST_SKIP() << "no vector kernel on this CPU/build";
  }
  // m = 1..9 covers every lane remainder twice (tail-only, one-group+tail,
  // two-groups+tail); the larger shapes match the GK benchmark family.
  const std::vector<std::size_t> ms = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 25, 30, 33};
  for (const std::size_t m : ms) {
    const auto inst = mkp::generate_gk({.num_items = 60, .num_constraints = m},
                                       0xBEEF ^ m);
    mkp::Solution x(inst);
    Rng rng(0x5EED ^ m);
    std::size_t compared = 0;
    for (int step = 0; step < 300; ++step) {
      x.flip(rng.index(inst.num_items()));
      if (step % 10 != 0) continue;
      for (std::size_t j = 0; j < inst.num_items(); ++j) {
        if (x.contains(j)) continue;
        const auto scalar = kernels::fit_and_score_scalar(x, j);
        const auto vector = kernels::fit_and_score_vector(x, j, kind);
        ASSERT_EQ(scalar.fit, vector.fit) << "m=" << m << " item " << j;
        ASSERT_TRUE(bitwise_equal(scalar.score, vector.score))
            << "m=" << m << " item " << j << " scalar=" << scalar.score
            << " vector=" << vector.score;
        ++compared;
      }
    }
    ASSERT_GT(compared, 0U);
  }
}

TEST(SimdKernel, BitwiseEqualOnSaturatedAndDegenerateColumns) {
  const simd::Kind kind = simd::best_supported();
  if (kind == simd::Kind::kScalar) {
    GTEST_SKIP() << "no vector kernel on this CPU/build";
  }
  // All-zero columns (infinite score), a column that exactly saturates a
  // constraint (slack floor engaged), and a never-fitting column: the edge
  // rules (+inf score, floored reciprocal, early-out verdict) must agree.
  //                      j:  0  1   2  3
  mkp::Instance inst("edges", {5, 7, 11, 3},
                     {0, 4, 30, 2,   //
                      0, 6, 1, 2,    //
                      0, 10, 1, 10}, //
                     {10, 6, 10});
  mkp::Solution x(inst);
  for (std::size_t j = 0; j < inst.num_items(); ++j) {
    const auto scalar = kernels::fit_and_score_scalar(x, j);
    const auto vector = kernels::fit_and_score_vector(x, j, kind);
    ASSERT_EQ(scalar.fit, vector.fit) << "item " << j;
    ASSERT_TRUE(bitwise_equal(scalar.score, vector.score)) << "item " << j;
  }
  x.add(1);  // saturates constraint 1 (weight 6 == capacity 6): slack 0 → floor
  for (std::size_t j = 0; j < inst.num_items(); ++j) {
    if (x.contains(j)) continue;
    const auto scalar = kernels::fit_and_score_scalar(x, j);
    const auto vector = kernels::fit_and_score_vector(x, j, kind);
    ASSERT_EQ(scalar.fit, vector.fit) << "item " << j;
    ASSERT_TRUE(bitwise_equal(scalar.score, vector.score)) << "item " << j;
  }
}

// AddScan is the hoisted sweep evaluator the engine and benchmark scan
// through; it must agree bitwise with the per-call API under BOTH dispatch
// kinds, including on a loose post-drop state where the certain-fit
// score-only fast path (max_col_weight <= min_slack) actually fires.
TEST(SimdKernel, AddScanMatchesPerCallApiBitwise) {
  const simd::Kind kind = simd::best_supported();
  for (const std::size_t m : {3UL, 5UL, 10UL, 25UL, 30UL}) {
    const auto inst = mkp::generate_gk({.num_items = 80, .num_constraints = m},
                                       0xADD ^ m);
    // Greedy-fill then drop a third of the selection: elevated slack makes a
    // sizeable fraction of candidates certainly-fitting, like the state right
    // after the engine's drop phase.
    auto x = bounds::greedy_construct(inst);
    Rng rng(0xCAFE ^ m);
    const auto selected = x.selected_items();
    for (std::size_t k = 0; k < selected.size() / 3; ++k) {
      const std::size_t j = selected[rng.index(selected.size())];
      if (x.contains(j)) x.drop(j);
    }
    const kernels::AddScan scan_scalar(x, simd::Kind::kScalar);
    const kernels::AddScan scan_vector(x, kind);
    std::size_t certain = 0;
    for (std::size_t j = 0; j < inst.num_items(); ++j) {
      if (x.contains(j)) continue;
      const auto reference = kernels::fit_and_score_scalar(x, j);
      const auto via_scalar = scan_scalar(j);
      const auto via_vector = scan_vector(j);
      ASSERT_EQ(reference.fit, via_scalar.fit) << "m=" << m << " item " << j;
      ASSERT_EQ(reference.fit, via_vector.fit) << "m=" << m << " item " << j;
      ASSERT_TRUE(bitwise_equal(reference.score, via_scalar.score))
          << "m=" << m << " item " << j;
      ASSERT_TRUE(bitwise_equal(reference.score, via_vector.score))
          << "m=" << m << " item " << j;
      if (inst.max_col_weight(j) <= x.min_slack()) ++certain;
    }
    ASSERT_GT(certain, 0U) << "m=" << m
                           << ": state never exercised the certain-fit path";
  }
}

// The ctest-asserted acceptance property: a fixed-seed engine run dispatched
// through the vector kernels follows the EXACT trajectory of the scalar run
// — same incumbent bits, same improvement history, same move counts.
TEST(SimdKernel, FixedSeedTrajectoryUnchangedByDispatch) {
  const simd::Kind kind = simd::best_supported();
  if (kind == simd::Kind::kScalar) {
    GTEST_SKIP() << "no vector kernel on this CPU/build";
  }
  DispatchGuard guard;
  for (const std::size_t m : {6UL, 10UL, 30UL}) {
    const auto inst = mkp::generate_gk({.num_items = 120, .num_constraints = m},
                                       0xD15 ^ m);
    TsParams params;
    params.strategy.tabu_tenure = 7;
    params.strategy.nb_local = 40;
    params.max_moves = 4000;

    ASSERT_TRUE(simd::set_active(simd::Kind::kScalar));
    Rng rng_scalar(99);
    const auto scalar = tabu_search_from_scratch(inst, params, rng_scalar);

    ASSERT_TRUE(simd::set_active(kind));
    Rng rng_vector(99);
    const auto vector = tabu_search_from_scratch(inst, params, rng_vector);

    ASSERT_TRUE(bitwise_equal(scalar.best_value, vector.best_value)) << "m=" << m;
    ASSERT_EQ(scalar.best.bits(), vector.best.bits()) << "m=" << m;
    ASSERT_EQ(scalar.moves, vector.moves) << "m=" << m;
    ASSERT_EQ(scalar.improvements, vector.improvements) << "m=" << m;
  }
}

TEST(SimdDispatch, SetActiveRejectsUnsupportedAndScalarAlwaysWorks) {
  DispatchGuard guard;
  EXPECT_TRUE(simd::set_active(simd::Kind::kScalar));
  EXPECT_EQ(simd::active(), simd::Kind::kScalar);
  const simd::Kind best = simd::best_supported();
  EXPECT_TRUE(simd::set_active(best));
  EXPECT_EQ(simd::active(), best);
#if defined(__x86_64__)
  EXPECT_FALSE(simd::set_active(simd::Kind::kNeon));
  EXPECT_EQ(simd::active(), best) << "failed set_active must not change dispatch";
#endif
}

}  // namespace
}  // namespace pts::tabu
