#include "tabu/rem.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace pts::tabu {
namespace {

std::vector<std::size_t> move(std::initializer_list<std::size_t> items) {
  return std::vector<std::size_t>(items);
}

TEST(Rem, EmptyHistoryForbidsNothing) {
  ReverseElimination rem(5);
  rem.compute_forbidden();
  for (std::size_t j = 0; j < 5; ++j) EXPECT_FALSE(rem.is_forbidden(j));
}

TEST(Rem, SingleFlipForbidsItsReversal) {
  ReverseElimination rem(5);
  const auto m = move({2});
  rem.record_move(m);
  rem.compute_forbidden();
  // Flipping 2 again would recreate the pre-move solution.
  EXPECT_TRUE(rem.is_forbidden(2));
  EXPECT_FALSE(rem.is_forbidden(0));
  EXPECT_EQ(rem.forbidden_count(), 1U);
}

TEST(Rem, TwoFlipMoveDoesNotForbidSingles) {
  ReverseElimination rem(5);
  const auto m = move({1, 3});
  rem.record_move(m);
  rem.compute_forbidden();
  // Undoing the move needs both flips; neither single flip returns.
  EXPECT_FALSE(rem.is_forbidden(1));
  EXPECT_FALSE(rem.is_forbidden(3));
}

TEST(Rem, CancellationAcrossMoves) {
  // Move A flips {1,3}; move B flips {3}. Residual after walking B then A:
  // after B: {3} -> forbid 3 (returns to the state between A and B);
  // after A: {1} -> forbid 1 (returns to the initial state).
  ReverseElimination rem(5);
  rem.record_move(move({1, 3}));
  rem.record_move(move({3}));
  rem.compute_forbidden();
  EXPECT_TRUE(rem.is_forbidden(3));
  EXPECT_TRUE(rem.is_forbidden(1));
  EXPECT_EQ(rem.forbidden_count(), 2U);
}

TEST(Rem, NoFalseForbidWhenResidualStaysLarge) {
  ReverseElimination rem(6);
  rem.record_move(move({0, 1}));
  rem.record_move(move({2, 3}));
  rem.record_move(move({4, 5}));
  rem.compute_forbidden();
  EXPECT_EQ(rem.forbidden_count(), 0U);
}

TEST(Rem, RecomputeReflectsLatestHistory) {
  ReverseElimination rem(4);
  rem.record_move(move({0}));
  rem.compute_forbidden();
  EXPECT_TRUE(rem.is_forbidden(0));
  rem.record_move(move({1}));
  rem.compute_forbidden();
  // Now: last move {1} -> forbid 1; walking further, residual {1,0} size 2.
  EXPECT_TRUE(rem.is_forbidden(1));
  EXPECT_FALSE(rem.is_forbidden(0));
}

TEST(Rem, FlipsScannedGrowsQuadratically) {
  // The paper's criticism: each compute walks the whole running list.
  ReverseElimination rem(10);
  for (std::size_t k = 0; k < 10; ++k) {
    rem.record_move(move({k % 10}));
    rem.compute_forbidden();
  }
  // 1 + 2 + ... + 10 = 55 single flips scanned.
  EXPECT_EQ(rem.flips_scanned_total(), 55U);
  EXPECT_EQ(rem.running_list_moves(), 10U);
}

TEST(Rem, ClearResets) {
  ReverseElimination rem(4);
  rem.record_move(move({2}));
  rem.compute_forbidden();
  rem.clear();
  EXPECT_EQ(rem.running_list_moves(), 0U);
  EXPECT_FALSE(rem.is_forbidden(2));
  rem.compute_forbidden();
  EXPECT_EQ(rem.forbidden_count(), 0U);
}

}  // namespace
}  // namespace pts::tabu
