#include "tabu/tabu_list.hpp"

#include <gtest/gtest.h>

namespace pts::tabu {
namespace {

TEST(TabuList, FreshListForbidsNothing) {
  TabuList tabu(10);
  for (std::size_t j = 0; j < 10; ++j) {
    EXPECT_FALSE(tabu.is_add_tabu(j, 0));
    EXPECT_FALSE(tabu.is_drop_tabu(j, 0));
  }
}

TEST(TabuList, AddTabuLastsExactlyTenure) {
  TabuList tabu(5);
  tabu.forbid_add(2, /*iter=*/10, /*tenure=*/3);
  EXPECT_TRUE(tabu.is_add_tabu(2, 10));
  EXPECT_TRUE(tabu.is_add_tabu(2, 11));
  EXPECT_TRUE(tabu.is_add_tabu(2, 12));
  EXPECT_FALSE(tabu.is_add_tabu(2, 13));
}

TEST(TabuList, DropTabuIndependentOfAddTabu) {
  TabuList tabu(5);
  tabu.forbid_add(1, 0, 5);
  EXPECT_TRUE(tabu.is_add_tabu(1, 2));
  EXPECT_FALSE(tabu.is_drop_tabu(1, 2));
  tabu.forbid_drop(3, 0, 5);
  EXPECT_TRUE(tabu.is_drop_tabu(3, 2));
  EXPECT_FALSE(tabu.is_add_tabu(3, 2));
}

TEST(TabuList, ZeroTenureForbidsNothing) {
  TabuList tabu(5);
  tabu.forbid_add(0, 7, 0);
  EXPECT_FALSE(tabu.is_add_tabu(0, 7));
}

TEST(TabuList, RenewalExtendsExpiry) {
  TabuList tabu(5);
  tabu.forbid_add(0, 0, 2);
  tabu.forbid_add(0, 1, 2);  // renewed at iter 1
  EXPECT_TRUE(tabu.is_add_tabu(0, 2));
  EXPECT_FALSE(tabu.is_add_tabu(0, 3));
}

TEST(TabuList, ClearRemovesEverything) {
  TabuList tabu(5);
  tabu.forbid_add(0, 0, 100);
  tabu.forbid_drop(1, 0, 100);
  tabu.clear();
  EXPECT_FALSE(tabu.is_add_tabu(0, 1));
  EXPECT_FALSE(tabu.is_drop_tabu(1, 1));
}

TEST(TabuList, ActiveCountTracksExpiry) {
  TabuList tabu(6);
  tabu.forbid_add(0, 0, 2);
  tabu.forbid_add(1, 0, 5);
  tabu.forbid_add(2, 0, 10);
  EXPECT_EQ(tabu.active_add_tabu_count(1), 3U);
  EXPECT_EQ(tabu.active_add_tabu_count(3), 2U);
  EXPECT_EQ(tabu.active_add_tabu_count(7), 1U);
  EXPECT_EQ(tabu.active_add_tabu_count(20), 0U);
}

TEST(TabuList, NumItems) {
  TabuList tabu(17);
  EXPECT_EQ(tabu.num_items(), 17U);
}

}  // namespace
}  // namespace pts::tabu
