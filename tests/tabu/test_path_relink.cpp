#include "tabu/path_relink.hpp"

#include <gtest/gtest.h>

#include "bounds/greedy.hpp"
#include "exact/brute_force.hpp"
#include "mkp/generator.hpp"
#include "parallel/runner.hpp"

namespace pts::tabu {
namespace {

TEST(PathRelink, IdenticalEndpointsReturnThem) {
  const auto inst = mkp::generate_gk({.num_items = 30, .num_constraints = 4}, 1);
  const auto s = bounds::greedy_construct(inst);
  const auto result = path_relink(s, s);
  EXPECT_EQ(result.path_length, 0U);
  EXPECT_DOUBLE_EQ(result.best_value, s.value());
  EXPECT_EQ(result.best, s);
}

TEST(PathRelink, NeverWorseThanEitherFeasibleEndpoint) {
  const auto inst = mkp::generate_gk({.num_items = 50, .num_constraints = 5}, 2);
  Rng rng(2);
  const auto a = bounds::greedy_randomized(inst, rng);
  const auto b = bounds::random_feasible(inst, rng);
  const auto result = path_relink(a, b);
  EXPECT_GE(result.best_value, std::max(a.value(), b.value()) - 1e-9);
  EXPECT_TRUE(result.best.is_feasible());
}

TEST(PathRelink, PathLengthIsTheHammingDistance) {
  const auto inst = mkp::generate_gk({.num_items = 40, .num_constraints = 4}, 3);
  Rng rng(3);
  const auto a = bounds::greedy_randomized(inst, rng);
  const auto b = bounds::random_feasible(inst, rng);
  const auto result = path_relink(a, b);
  EXPECT_EQ(result.path_length, a.hamming_distance(b));
}

TEST(PathRelink, FindsIntermediateBetterThanBothEndpoints) {
  // Construct endpoints whose union holds the optimum:
  // optimum is {0,1} (value 12), endpoints are {0,2} (9) and {1,3} (10).
  // capacity 6, weights all 3 — any 2 items fit.
  mkp::Instance inst("mid", {7, 5, 2, 5}, {3, 3, 3, 3}, {6});
  mkp::Solution a(inst), b(inst);
  a.add(0);
  a.add(2);  // 9
  b.add(1);
  b.add(3);  // 10
  const auto result = path_relink(a, b);
  // Path flips {0,1,2,3} in greedy delta order: +5 (add 1), +5 (add 3),
  // -2 (drop 2), -5... intermediates include {0,1,2}->repair and {0,1}.
  EXPECT_GE(result.best_value, 11.0);
  EXPECT_GT(result.improvements, 0U);
}

TEST(PathRelink, InfeasibleIntermediatesAreRepairedNotReported) {
  // Tight capacity: mid-path unions overflow; every reported solution must
  // still be feasible.
  const auto inst = mkp::generate_gk({.num_items = 60, .num_constraints = 6}, 4);
  Rng rng(4);
  const auto a = bounds::greedy_randomized(inst, rng);
  const auto b = bounds::random_feasible(inst, rng);
  const auto result = path_relink(a, b);
  EXPECT_TRUE(result.best.is_feasible());
  EXPECT_TRUE(result.best.check_consistency());
}

TEST(PathRelink, SymmetricEndpointsBothBounded) {
  const auto inst = mkp::generate_gk({.num_items = 16, .num_constraints = 4}, 5);
  const auto oracle = exact::brute_force(inst);
  Rng rng(5);
  const auto a = bounds::greedy_randomized(inst, rng);
  const auto b = bounds::random_feasible(inst, rng);
  const auto ab = path_relink(a, b);
  const auto ba = path_relink(b, a);
  EXPECT_LE(ab.best_value, oracle.optimum + 1e-9);
  EXPECT_LE(ba.best_value, oracle.optimum + 1e-9);
  EXPECT_EQ(ab.path_length, ba.path_length);
}

TEST(PathRelinkDeath, DifferentInstancesRejected) {
  const auto a_inst = mkp::generate_gk({.num_items = 10, .num_constraints = 2}, 6);
  const auto b_inst = mkp::generate_gk({.num_items = 10, .num_constraints = 2}, 7);
  mkp::Solution a(a_inst), b(b_inst);
  EXPECT_DEATH((void)path_relink(a, b), "");
}

TEST(PathRelinkMaster, RelinkOptionRunsAndNeverHurts) {
  const auto inst = mkp::generate_gk({.num_items = 80, .num_constraints = 8}, 8);
  parallel::ParallelConfig plain;
  plain.num_slaves = 4;
  plain.search_iterations = 6;
  plain.work_per_slave_round = 1000;
  plain.base_params.strategy.nb_local = 15;
  plain.seed = 9;
  auto with_relink = plain;
  with_relink.relink_elites = true;
  const auto off = parallel::run_parallel_tabu_search(inst, plain);
  const auto on = parallel::run_parallel_tabu_search(inst, with_relink);
  EXPECT_TRUE(on.best.is_feasible());
  // Relinking only ever *adds* candidate solutions for the incumbent...
  EXPECT_GE(on.best_value, 0.0);
  // ...and the option is genuinely off by default.
  EXPECT_EQ(off.master.relink_improvements, 0U);
}

}  // namespace
}  // namespace pts::tabu
