#include "tabu/diversify.hpp"

#include <gtest/gtest.h>

#include "mkp/generator.hpp"

namespace pts::tabu {
namespace {

TEST(Diversify, ForcesNeglectedItemsIn) {
  // 4 items, loose capacity. History: item 0 always present, others never.
  mkp::Instance inst("d", {1, 1, 1, 1}, {1, 1, 1, 1}, {10});
  FrequencyMemory memory(4);
  mkp::Solution tracked(inst);
  tracked.add(0);
  for (int i = 0; i < 10; ++i) memory.record(tracked);

  mkp::Solution x(inst);
  x.add(0);
  TabuList tabu(4);
  DiversifyConfig config{.high_frequency = 0.8, .low_frequency = 0.2, .hold = 5};
  const auto outcome = diversify(x, memory, config, tabu, /*iter=*/100);

  EXPECT_EQ(outcome.forced_out, 1U);  // item 0 banned
  EXPECT_EQ(outcome.forced_in, 3U);   // items 1..3 pinned in
  EXPECT_FALSE(x.contains(0));
  EXPECT_TRUE(x.contains(1));
  EXPECT_TRUE(x.contains(2));
  EXPECT_TRUE(x.contains(3));
  EXPECT_TRUE(x.is_feasible());
}

TEST(Diversify, InstallsTabuHolds) {
  mkp::Instance inst("h", {1, 1}, {1, 1}, {5});
  FrequencyMemory memory(2);
  mkp::Solution tracked(inst);
  tracked.add(0);
  for (int i = 0; i < 10; ++i) memory.record(tracked);

  mkp::Solution x(inst);
  TabuList tabu(2);
  DiversifyConfig config{.high_frequency = 0.8, .low_frequency = 0.2, .hold = 7};
  diversify(x, memory, config, tabu, 50);

  // Item 0 (over-used) may not come back during the hold.
  EXPECT_TRUE(tabu.is_add_tabu(0, 51));
  EXPECT_TRUE(tabu.is_add_tabu(0, 56));
  EXPECT_FALSE(tabu.is_add_tabu(0, 60));
  // Item 1 (forced in) may not be dropped during the hold.
  EXPECT_TRUE(tabu.is_drop_tabu(1, 51));
  EXPECT_FALSE(tabu.is_drop_tabu(1, 60));
}

TEST(Diversify, MidFrequencyItemsFillGreedily) {
  // Item with frequency 0.5 is neither forced nor banned; it should be
  // added by the greedy fill when it fits.
  mkp::Instance inst("m", {5, 1}, {1, 1}, {5});
  FrequencyMemory memory(2);
  mkp::Solution tracked(inst);
  tracked.add(0);
  memory.record(tracked);  // item0 at 1
  tracked.drop(0);
  memory.record(tracked);  // item0 at 0 -> freq 0.5; item1 freq 0 -> forced in

  mkp::Solution x(inst);
  TabuList tabu(2);
  DiversifyConfig config{.high_frequency = 0.8, .low_frequency = 0.2, .hold = 3};
  diversify(x, memory, config, tabu, 10);
  EXPECT_TRUE(x.contains(0));
  EXPECT_TRUE(x.contains(1));
}

TEST(Diversify, ResultAlwaysFeasible) {
  const auto inst = mkp::generate_gk({.num_items = 60, .num_constraints = 6}, 21);
  FrequencyMemory memory(60);
  Rng rng(5);
  mkp::Solution tracked(inst);
  for (int it = 0; it < 200; ++it) {
    tracked.flip(rng.index(60));
    memory.record(tracked);
  }
  mkp::Solution x(inst);
  TabuList tabu(60);
  DiversifyConfig config;
  const auto outcome = diversify(x, memory, config, tabu, 500);
  EXPECT_TRUE(x.is_feasible());
  EXPECT_TRUE(x.check_consistency());
  EXPECT_GE(outcome.forced_in + outcome.forced_out, 0U);
}

TEST(Diversify, EmptyHistoryForcesEverythingIn) {
  // No iterations recorded: every frequency is 0 < low, so forced_in covers
  // whatever fits.
  mkp::Instance inst("e", {1, 1, 1}, {1, 1, 1}, {2});
  FrequencyMemory memory(3);
  mkp::Solution x(inst);
  TabuList tabu(3);
  DiversifyConfig config;
  const auto outcome = diversify(x, memory, config, tabu, 1);
  EXPECT_EQ(outcome.forced_in, 2U);  // capacity limits to 2 of 3
  EXPECT_EQ(outcome.forced_out, 0U);
  EXPECT_TRUE(x.is_feasible());
}

TEST(DiversifyDeath, RejectsInvertedThresholds) {
  mkp::Instance inst("bad", {1.0}, {1.0}, {1.0});
  FrequencyMemory memory(1);
  mkp::Solution x(inst);
  TabuList tabu(1);
  DiversifyConfig config{.high_frequency = 0.2, .low_frequency = 0.8, .hold = 1};
  EXPECT_DEATH(diversify(x, memory, config, tabu, 1), "low_frequency");
}

}  // namespace
}  // namespace pts::tabu
