// Deeper engine behaviors: the interplay of the memories and phases that
// the per-component unit tests cannot see.
#include <gtest/gtest.h>

#include "bounds/greedy.hpp"
#include "mkp/generator.hpp"
#include "tabu/engine.hpp"

namespace pts::tabu {
namespace {

TsParams params_with(std::uint64_t moves, std::size_t nb_local = 15) {
  TsParams params;
  params.max_moves = moves;
  params.strategy.nb_local = nb_local;
  return params;
}

TEST(EngineBehavior, AspirationFiresUnderTinyTenureOne) {
  // Tenure 1 and nb_drop 1 churn items rapidly; on a small instance the
  // aspiration criterion gets exercised within a modest budget.
  const auto inst = mkp::generate_gk({.num_items = 25, .num_constraints = 3}, 1);
  Rng rng(1);
  auto params = params_with(4000);
  params.strategy.tabu_tenure = 12;  // long tenure: many blocked adds
  const auto result = tabu_search_from_scratch(inst, params, rng);
  EXPECT_GT(result.move_stats.tabu_blocked_adds, 0U);
}

TEST(EngineBehavior, ForcedDropsHappenWhenEverythingIsPinned) {
  // Tiny solution + long drop-tabu: the drop rule must fall back.
  const auto inst = mkp::generate_gk({.num_items = 10, .num_constraints = 2}, 2);
  Rng rng(2);
  auto params = params_with(2000);
  params.strategy.tabu_tenure = 50;  // drop-tabu tenure = 26 via tenure/2+1
  const auto result = tabu_search_from_scratch(inst, params, rng);
  EXPECT_GT(result.move_stats.forced_drops, 0U);
}

TEST(EngineBehavior, DiversificationHoldShowsInTrajectory) {
  // With aggressive thresholds every diversification forces items; the
  // engine's counters must reflect the configured cadence.
  const auto inst = mkp::generate_gk({.num_items = 40, .num_constraints = 4}, 3);
  Rng rng(3);
  auto params = params_with(3000, 10);
  params.nb_div = 2;
  params.nb_int = 1;
  params.high_frequency = 0.6;
  params.low_frequency = 0.3;
  params.diversify_hold = 40;
  const auto result = tabu_search_from_scratch(inst, params, rng);
  EXPECT_GT(result.diversifications, 0U);
  EXPECT_TRUE(result.best.is_feasible());
}

TEST(EngineBehavior, BBestCapRespectedAcrossBudgets) {
  const auto inst = mkp::generate_gk({.num_items = 60, .num_constraints = 6}, 4);
  for (std::size_t b : {1, 2, 5, 10}) {
    Rng rng(4);
    auto params = params_with(1500);
    params.b_best = b;
    const auto result = tabu_search_from_scratch(inst, params, rng);
    EXPECT_LE(result.elite.size(), b);
    EXPECT_GE(result.elite.size(), 1U);
  }
}

TEST(EngineBehavior, ZeroBBestStillTracksIncumbent) {
  const auto inst = mkp::generate_gk({.num_items = 40, .num_constraints = 4}, 5);
  Rng rng(5);
  auto params = params_with(800);
  params.b_best = 0;
  const auto result = tabu_search_from_scratch(inst, params, rng);
  EXPECT_TRUE(result.elite.empty());
  EXPECT_GT(result.best_value, 0.0);  // incumbent tracked independently
}

TEST(EngineBehavior, TimeLimitWithLiteralFigureOneShape) {
  const auto inst = mkp::generate_gk({.num_items = 200, .num_constraints = 10}, 6);
  Rng rng(6);
  TsParams params;
  params.max_moves = 0;
  params.time_limit_seconds = 0.05;
  params.run_to_budget = false;
  params.nb_div = 1000;  // time must cut this short
  const auto result = tabu_search_from_scratch(inst, params, rng);
  EXPECT_LT(result.seconds, 2.0);
  EXPECT_TRUE(result.best.is_feasible());
}

TEST(EngineBehavior, ReactiveEscapeEventuallyTriggersOnTinyInstance) {
  // A 12-item instance cycles fast; reactive control must detect the
  // repetitions and fire at least one escape kick.
  const auto inst = mkp::generate_gk({.num_items = 12, .num_constraints = 2}, 7);
  Rng rng(7);
  auto params = params_with(6000);
  params.tenure_control = TenureControl::kReactive;
  const auto result = tabu_search_from_scratch(inst, params, rng);
  EXPECT_GT(result.reactive_repetitions, 0U);
}

TEST(EngineBehavior, ImprovementsNeverExceedMoveCount) {
  const auto inst = mkp::generate_gk({.num_items = 60, .num_constraints = 6}, 8);
  Rng rng(8);
  const auto result = tabu_search_from_scratch(inst, params_with(1200), rng);
  EXPECT_LE(result.improvements.size(), result.moves + 3);  // +init/intensify
  for (const auto& [move, value] : result.improvements) {
    EXPECT_LE(move, result.moves);
    EXPECT_LE(value, result.best_value + 1e-9);
  }
}

TEST(EngineBehavior, HigherNbLocalMeansFewerIntensifications) {
  const auto inst = mkp::generate_gk({.num_items = 60, .num_constraints = 6}, 9);
  Rng rng_a(9), rng_b(9);
  auto impatient = params_with(3000, 5);
  auto patient = params_with(3000, 100);
  const auto many = tabu_search_from_scratch(inst, impatient, rng_a);
  const auto few = tabu_search_from_scratch(inst, patient, rng_b);
  EXPECT_GT(many.intensifications, few.intensifications);
}

TEST(EngineBehavior, StartFromEmptySolutionWorks) {
  const auto inst = mkp::generate_gk({.num_items = 50, .num_constraints = 5}, 10);
  mkp::Solution empty(inst);
  Rng rng(10);
  const auto result = tabu_search(inst, empty, params_with(800), rng);
  // The engine greedy-fills the start, so the result is a real search.
  EXPECT_GT(result.best_value, 0.0);
  EXPECT_GE(result.best_value, bounds::greedy_construct(inst).value() * 0.95);
}

TEST(EngineBehavior, StartFromFullSolutionWorks) {
  const auto inst = mkp::generate_gk({.num_items = 50, .num_constraints = 5}, 11);
  mkp::Solution full(inst);
  for (std::size_t j = 0; j < inst.num_items(); ++j) full.add(j);
  Rng rng(11);
  const auto result = tabu_search(inst, full, params_with(800), rng);
  EXPECT_TRUE(result.best.is_feasible());
  EXPECT_GT(result.best_value, 0.0);
}

class EngineCrossControl
    : public ::testing::TestWithParam<std::tuple<TenureControl, IntensificationKind>> {};

TEST_P(EngineCrossControl, EveryControlComboIsSound) {
  const auto [control, intensification] = GetParam();
  const auto inst = mkp::generate_gk({.num_items = 40, .num_constraints = 5}, 12);
  Rng rng(12);
  auto params = params_with(600);
  params.tenure_control = control;
  params.intensification = intensification;
  const auto result = tabu_search_from_scratch(inst, params, rng);
  EXPECT_TRUE(result.best.is_feasible());
  EXPECT_TRUE(result.best.check_consistency());
  EXPECT_EQ(result.moves, 600U);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, EngineCrossControl,
    ::testing::Combine(::testing::Values(TenureControl::kFixed,
                                         TenureControl::kReverseElimination,
                                         TenureControl::kReactive),
                       ::testing::Values(IntensificationKind::kNone,
                                         IntensificationKind::kSwap,
                                         IntensificationKind::kStrategicOscillation)));

}  // namespace
}  // namespace pts::tabu
