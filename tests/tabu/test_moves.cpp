#include "tabu/moves.hpp"

#include <gtest/gtest.h>

#include "mkp/generator.hpp"

namespace pts::tabu {
namespace {

// 1 constraint, 4 items; weights {4, 3, 2, 1}, profits {4, 6, 2, 3}.
// Drop rule key on the bottleneck row is a_j / c_j: {1.0, 0.5, 1.0, 0.333}.
// Ties break to the lowest index, so a full solution drops item 0 first.
mkp::Instance make_drop_inst() {
  return mkp::Instance("d", {4, 6, 2, 3}, {4, 3, 2, 1}, {10});
}

TEST(DropRule, PicksWorstLoadPerProfitOnBottleneck) {
  const auto inst = make_drop_inst();
  mkp::Solution s(inst);
  for (std::size_t j = 0; j < 4; ++j) s.add(j);  // load 10 == b
  TabuList tabu(4);
  MoveKernel kernel(inst);
  const auto victim = kernel.select_drop(s, tabu, 1);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(*victim, 0U);
}

TEST(DropRule, RespectsDropTabu) {
  const auto inst = make_drop_inst();
  mkp::Solution s(inst);
  for (std::size_t j = 0; j < 4; ++j) s.add(j);
  TabuList tabu(4);
  tabu.forbid_drop(0, 0, 10);
  MoveKernel kernel(inst);
  const auto victim = kernel.select_drop(s, tabu, 1);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(*victim, 2U);  // next-worst ratio 1.0 at index 2
}

TEST(DropRule, FallsBackWhenEverythingTabu) {
  const auto inst = make_drop_inst();
  mkp::Solution s(inst);
  s.add(0);
  s.add(1);
  TabuList tabu(4);
  tabu.forbid_drop(0, 0, 10);
  tabu.forbid_drop(1, 0, 10);
  MoveKernel kernel(inst);
  bool forced = false;
  const auto victim = kernel.select_drop(s, tabu, 1, &forced);
  ASSERT_TRUE(victim.has_value());
  EXPECT_TRUE(forced);
  EXPECT_EQ(*victim, 0U);
}

TEST(DropRule, EmptySolutionHasNothingToDrop) {
  const auto inst = make_drop_inst();
  mkp::Solution s(inst);
  TabuList tabu(4);
  MoveKernel kernel(inst);
  EXPECT_FALSE(kernel.select_drop(s, tabu, 1).has_value());
}

TEST(DropRule, TargetsMostSaturatedConstraint) {
  // Two constraints; constraint 1 is tighter after adding both items.
  // a0 = {1, 1}, b0 = 10 (slack 8); a1 = {5, 1}, b1 = 7 (slack 1).
  // On row 1 the ratios a/c are {5/1, 1/10}: item 0 must go.
  mkp::Instance inst("two", {1, 10}, {1, 1, 5, 1}, {10, 7});
  mkp::Solution s(inst);
  s.add(0);
  s.add(1);
  TabuList tabu(2);
  MoveKernel kernel(inst);
  const auto victim = kernel.select_drop(s, tabu, 1);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(*victim, 0U);
}

TEST(AddRule, PicksBestFittingItem) {
  const auto inst = make_drop_inst();
  mkp::Solution s(inst);
  TabuList tabu(4);
  MoveKernel kernel(inst);
  const auto pick = kernel.select_add(s, tabu, 1, 100.0);
  ASSERT_TRUE(pick.has_value());
  // add_score = c_j / (a_j / slack) with slack 10: {10, 20, 10, 30}.
  EXPECT_EQ(*pick, 3U);
}

TEST(AddRule, SkipsNonFittingItems) {
  const auto inst = make_drop_inst();
  mkp::Solution s(inst);
  s.add(0);
  s.add(1);
  s.add(2);  // load 9, slack 1: only item 3 (w=1) fits
  TabuList tabu(4);
  MoveKernel kernel(inst);
  const auto pick = kernel.select_add(s, tabu, 1, 100.0);
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(*pick, 3U);
}

TEST(AddRule, RespectsAddTabu) {
  const auto inst = make_drop_inst();
  mkp::Solution s(inst);
  TabuList tabu(4);
  tabu.forbid_add(3, 0, 10);
  MoveKernel kernel(inst);
  MoveStats stats;
  const auto pick = kernel.select_add(s, tabu, 1, /*best_value=*/1000.0, &stats);
  ASSERT_TRUE(pick.has_value());
  EXPECT_NE(*pick, 3U);
  EXPECT_EQ(stats.tabu_blocked_adds, 1U);
}

TEST(AddRule, AspirationOverridesTabu) {
  const auto inst = make_drop_inst();
  mkp::Solution s(inst);
  TabuList tabu(4);
  for (std::size_t j = 0; j < 4; ++j) tabu.forbid_add(j, 0, 10);
  MoveKernel kernel(inst);
  MoveStats stats;
  // best_value 0: any add beats it, so aspiration admits every candidate.
  const auto pick = kernel.select_add(s, tabu, 1, 0.0, &stats);
  ASSERT_TRUE(pick.has_value());
  EXPECT_GT(stats.aspiration_hits, 0U);
}

TEST(AddRule, NothingFitsReturnsNull) {
  mkp::Instance inst("full", {1, 1}, {10, 10}, {5});
  mkp::Solution s(inst);
  TabuList tabu(2);
  MoveKernel kernel(inst);
  EXPECT_FALSE(kernel.select_add(s, tabu, 1, 100.0).has_value());
}

TEST(AddScore, ZeroWhenConstraintSaturated) {
  const auto inst = make_drop_inst();
  mkp::Solution s(inst);
  for (std::size_t j = 0; j < 4; ++j) s.add(j);  // slack 0
  MoveKernel kernel(inst);
  // s.contains all; score of a hypothetical new item with weight > 0 is 0.
  // Drop item 3 so it is a candidate with slack 0 remaining... load 9? No:
  // dropping 3 leaves load 9, slack 1 > 0. Use a direct saturated case:
  mkp::Instance sat("sat", {5, 5}, {3, 3}, {3});
  mkp::Solution t(sat);
  t.add(0);  // slack 0
  MoveKernel k2(sat);
  EXPECT_DOUBLE_EQ(k2.add_score(t, 1), 0.0);
}

TEST(ApplyMove, FillsToMaximalAfterDrops) {
  const auto inst = mkp::generate_gk({.num_items = 40, .num_constraints = 5}, 3);
  mkp::Solution s(inst);
  TabuList tabu(40);
  MoveKernel kernel(inst);
  Rng rng(1);
  MoveStats stats;
  Strategy strategy;
  strategy.nb_drop = 2;
  const auto outcome = kernel.apply(s, tabu, 1, strategy, strategy.tabu_tenure,
                                    /*best_value=*/1e18, rng, stats);
  EXPECT_GT(outcome.num_adds, 0U);
  EXPECT_TRUE(s.is_feasible());
  // Maximality: nothing non-tabu fits.
  for (std::size_t j = 0; j < inst.num_items(); ++j) {
    if (!s.contains(j) && !tabu.is_add_tabu(j, 1)) {
      EXPECT_FALSE(s.fits(j)) << "item " << j;
    }
  }
}

TEST(ApplyMove, DropsBoundedByNbDrop) {
  const auto inst = mkp::generate_gk({.num_items = 40, .num_constraints = 5}, 4);
  mkp::Solution s(inst);
  TabuList tabu(40);
  MoveKernel kernel(inst);
  Rng rng(2);
  MoveStats stats;
  Strategy strategy;
  strategy.nb_drop = 3;
  // First fill the solution.
  (void)kernel.apply(s, tabu, 1, strategy, 0, 1e18, rng, stats);
  for (int iter = 2; iter < 30; ++iter) {
    const auto outcome =
        kernel.apply(s, tabu, iter, strategy, strategy.tabu_tenure, 1e18, rng, stats);
    EXPECT_LE(outcome.num_drops, 3U);
  }
}

TEST(ApplyMove, DroppedItemsBecomeAddTabu) {
  const auto inst = mkp::generate_gk({.num_items = 30, .num_constraints = 3}, 5);
  mkp::Solution s(inst);
  TabuList tabu(30);
  MoveKernel kernel(inst);
  Rng rng(3);
  MoveStats stats;
  Strategy strategy;
  strategy.tabu_tenure = 9;
  (void)kernel.apply(s, tabu, 1, strategy, 9, 1e18, rng, stats);  // fill
  const auto outcome = kernel.apply(s, tabu, 2, strategy, 9, 1e18, rng, stats);
  ASSERT_GT(outcome.num_drops, 0U);
  const std::size_t dropped = outcome.flipped.front();
  EXPECT_TRUE(tabu.is_add_tabu(dropped, 3));
}

TEST(ApplyMove, FlippedRecordsDropsThenAdds) {
  const auto inst = mkp::generate_gk({.num_items = 30, .num_constraints = 3}, 6);
  mkp::Solution s(inst);
  TabuList tabu(30);
  MoveKernel kernel(inst);
  Rng rng(4);
  MoveStats stats;
  Strategy strategy;
  (void)kernel.apply(s, tabu, 1, strategy, 7, 1e18, rng, stats);
  const auto outcome = kernel.apply(s, tabu, 2, strategy, 7, 1e18, rng, stats);
  EXPECT_EQ(outcome.flipped.size(), outcome.num_drops + outcome.num_adds);
}

}  // namespace
}  // namespace pts::tabu
