// The candidate-sampling strategy knob (Strategy::nb_candidates — the
// paper's "number of neighbor solutions evaluated at each move").
#include <gtest/gtest.h>

#include "mkp/generator.hpp"
#include "tabu/engine.hpp"
#include "tabu/moves.hpp"

namespace pts::tabu {
namespace {

TEST(CandidateSampling, ZeroEvaluatesEverythingAndIgnoresRng) {
  const auto inst = mkp::generate_gk({.num_items = 50, .num_constraints = 5}, 1);
  mkp::Solution x(inst);
  TabuList tabu(50);
  MoveKernel kernel(inst);
  const auto full = kernel.select_add(x, tabu, 1, 1e18);
  Rng rng(7);
  const auto with_rng = kernel.select_add(x, tabu, 1, 1e18, nullptr, &rng, 0);
  ASSERT_TRUE(full.has_value());
  EXPECT_EQ(*full, *with_rng);  // 0 = exhaustive either way
}

TEST(CandidateSampling, SampledPickIsAFittingItem) {
  const auto inst = mkp::generate_gk({.num_items = 80, .num_constraints = 5}, 2);
  mkp::Solution x(inst);
  TabuList tabu(80);
  MoveKernel kernel(inst);
  Rng rng(3);
  for (int round = 0; round < 50; ++round) {
    const auto pick = kernel.select_add(x, tabu, 1, 1e18, nullptr, &rng, 4);
    ASSERT_TRUE(pick.has_value());
    EXPECT_FALSE(x.contains(*pick));
    EXPECT_TRUE(x.fits(*pick));
  }
}

TEST(CandidateSampling, SamplingIntroducesVariety) {
  const auto inst = mkp::generate_gk({.num_items = 100, .num_constraints = 5}, 3);
  mkp::Solution x(inst);
  TabuList tabu(100);
  MoveKernel kernel(inst);
  Rng rng(4);
  std::set<std::size_t> picks;
  for (int round = 0; round < 60; ++round) {
    picks.insert(*kernel.select_add(x, tabu, 1, 1e18, nullptr, &rng, 3));
  }
  EXPECT_GT(picks.size(), 3U);  // exhaustive scan would always pick one item
}

TEST(CandidateSampling, SingleCandidateIsFirstFittingFromOffset) {
  // With k = 1 the rule degenerates to "first fitting non-tabu item from a
  // random start" — still a legal add.
  const auto inst = mkp::generate_gk({.num_items = 40, .num_constraints = 4}, 4);
  mkp::Solution x(inst);
  TabuList tabu(40);
  MoveKernel kernel(inst);
  Rng rng(5);
  const auto pick = kernel.select_add(x, tabu, 1, 1e18, nullptr, &rng, 1);
  ASSERT_TRUE(pick.has_value());
  EXPECT_TRUE(x.fits(*pick));
}

TEST(CandidateSampling, MoveStillFillsToMaximal) {
  const auto inst = mkp::generate_gk({.num_items = 60, .num_constraints = 5}, 5);
  mkp::Solution x(inst);
  TabuList tabu(60);
  MoveKernel kernel(inst);
  MoveStats stats;
  Rng rng(6);
  Strategy strategy;
  strategy.nb_candidates = 4;
  (void)kernel.apply(x, tabu, 1, strategy, 7, 1e18, rng, stats);
  EXPECT_TRUE(x.is_feasible());
  for (std::size_t j = 0; j < inst.num_items(); ++j) {
    if (!x.contains(j) && !tabu.is_add_tabu(j, 1)) {
      EXPECT_FALSE(x.fits(j)) << "item " << j;
    }
  }
}

TEST(CandidateSampling, EngineRunsWithSampledStrategy) {
  const auto inst = mkp::generate_gk({.num_items = 80, .num_constraints = 8}, 6);
  Rng rng(7);
  TsParams params;
  params.max_moves = 1500;
  params.strategy.nb_local = 20;
  params.strategy.nb_candidates = 8;
  const auto result = tabu_search_from_scratch(inst, params, rng);
  EXPECT_TRUE(result.best.is_feasible());
  EXPECT_GT(result.best_value, 0.0);
}

TEST(CandidateSampling, StrategyToStringShowsTheKnob) {
  Strategy plain;
  EXPECT_EQ(plain.to_string().find("nb_cand"), std::string::npos);
  Strategy sampled;
  sampled.nb_candidates = 16;
  EXPECT_NE(sampled.to_string().find("nb_cand=16"), std::string::npos);
}

class CandidateSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CandidateSweep, QualityStaysReasonableAcrossK) {
  const auto inst = mkp::generate_gk({.num_items = 80, .num_constraints = 8}, 8);
  Rng rng(GetParam() + 1);
  TsParams params;
  params.max_moves = 1200;
  params.strategy.nb_local = 20;
  params.strategy.nb_candidates = GetParam();
  const auto sampled = tabu_search_from_scratch(inst, params, rng);
  Rng rng_full(GetParam() + 1);
  params.strategy.nb_candidates = 0;
  const auto full = tabu_search_from_scratch(inst, params, rng_full);
  EXPECT_TRUE(sampled.best.is_feasible());
  // Sampling trades per-move quality for speed; it must not collapse.
  EXPECT_GE(sampled.best_value, full.best_value * 0.9);
}

INSTANTIATE_TEST_SUITE_P(Ks, CandidateSweep, ::testing::Values(1, 2, 4, 8, 16, 64));

}  // namespace
}  // namespace pts::tabu
