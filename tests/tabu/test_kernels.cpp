// Equivalence and soundness of the cache-aware Add-step kernels: the fused
// column-major fit_and_score must agree with the historical scalar pair
// (Solution::fits + MoveKernel::add_score) everywhere the search can
// observe, the O(1) prune must never reject a fitting item, and the
// column-mirror add/drop update path must keep incremental state exact.
#include "tabu/kernels.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "mkp/generator.hpp"
#include "tabu/moves.hpp"
#include "util/rng.hpp"

namespace pts::tabu {
namespace {

struct Shape {
  std::size_t n;
  std::size_t m;
};

// The ISSUE-mandated grid: n in {50, 250, 500}, m in {5, 25}.
const std::vector<Shape>& shapes() {
  static const std::vector<Shape> kShapes = {{50, 5},  {50, 25},  {250, 5},
                                             {250, 25}, {500, 5}, {500, 25}};
  return kShapes;
}

// Walk the solution through random flips so the kernels see empty, partial,
// saturated and infeasible states.
template <typename Check>
void for_random_states(std::uint64_t seed, const Check& check) {
  for (const auto& shape : shapes()) {
    const auto inst =
        mkp::generate_gk({.num_items = shape.n, .num_constraints = shape.m}, seed);
    mkp::Solution x(inst);
    Rng rng(seed ^ 0x9e3779b97f4a7c15ULL);
    for (int step = 0; step < 400; ++step) {
      x.flip(rng.index(inst.num_items()));
      if (step % 20 != 0) continue;
      check(inst, x);
    }
  }
}

TEST(FusedKernel, FitMatchesScalarPathOnRandomStates) {
  for_random_states(1, [](const mkp::Instance& inst, const mkp::Solution& x) {
    for (std::size_t j = 0; j < inst.num_items(); ++j) {
      if (x.contains(j)) continue;
      const auto fused = kernels::fit_and_score(x, j);
      const auto ref = kernels::fit_and_score_reference(x, j);
      ASSERT_EQ(fused.fit, x.fits(j)) << inst.name() << " item " << j;
      ASSERT_EQ(fused.fit, ref.fit) << inst.name() << " item " << j;
    }
  });
}

TEST(FusedKernel, ScoreMatchesAddScoreWhenFitting) {
  for_random_states(2, [](const mkp::Instance& inst, const mkp::Solution& x) {
    const MoveKernel kernel(inst);
    for (std::size_t j = 0; j < inst.num_items(); ++j) {
      if (x.contains(j)) continue;
      const auto fused = kernels::fit_and_score(x, j);
      if (!fused.fit) continue;
      const double scalar = kernel.add_score(x, j);
      // The fused kernel's reciprocal-multiply + unrolled accumulation may
      // differ from the scalar paths by ulps; the contract demands 1e-9.
      ASSERT_NEAR(fused.score, scalar, 1e-9) << inst.name() << " item " << j;
      ASSERT_NEAR(fused.score, kernels::fit_and_score_reference(x, j).score, 1e-9)
          << inst.name() << " item " << j;
    }
  });
}

TEST(FusedKernel, PruneNeverRejectsAFittingItem) {
  for_random_states(3, [](const mkp::Instance& inst, const mkp::Solution& x) {
    for (std::size_t j = 0; j < inst.num_items(); ++j) {
      if (x.contains(j)) continue;
      if (kernels::prune_add_candidate(x, j)) {
        ASSERT_FALSE(x.fits(j)) << inst.name() << " item " << j;
      }
    }
  });
}

TEST(FusedKernel, SelectAddUnchangedByKernelSwap) {
  // Replays the pre-mirror select_add scan (reference kernel, per-bit mask
  // test) and demands the production select_add picks the same item.
  for (const auto& shape : shapes()) {
    const auto inst =
        mkp::generate_gk({.num_items = shape.n, .num_constraints = shape.m}, 4);
    const MoveKernel kernel(inst);
    TabuList tabu(inst.num_items());
    mkp::Solution x(inst);
    Rng rng(17);
    for (std::uint64_t iter = 1; iter <= 40; ++iter) {
      x.flip(rng.index(inst.num_items()));
      if (rng.index(3) == 0) tabu.forbid_add(rng.index(inst.num_items()), iter, 5);

      std::size_t best = inst.num_items();
      double best_key = -1.0;
      for (std::size_t j = 0; j < inst.num_items(); ++j) {
        if (x.contains(j)) continue;
        const auto ref = kernels::fit_and_score_reference(x, j);
        if (!ref.fit) continue;
        if (tabu.is_add_tabu(j, iter) && !(x.value() + inst.profit(j) > 1e17)) continue;
        if (ref.score > best_key) {
          best_key = ref.score;
          best = j;
        }
      }
      const auto picked = kernel.select_add(x, tabu, iter, 1e17);
      if (best == inst.num_items()) {
        EXPECT_FALSE(picked.has_value());
      } else {
        ASSERT_TRUE(picked.has_value());
        EXPECT_EQ(*picked, best) << inst.name() << " iter " << iter;
      }
    }
  }
}

TEST(ColumnMirror, ConsistencyHoldsAfterTenThousandFlips) {
  for (const auto& shape : shapes()) {
    const auto inst =
        mkp::generate_gk({.num_items = shape.n, .num_constraints = shape.m}, 5);
    mkp::Solution x(inst);
    Rng rng(0xC01DULL + shape.n * 31 + shape.m);
    for (int step = 0; step < 10000; ++step) {
      x.flip(rng.index(inst.num_items()));
    }
    EXPECT_TRUE(x.check_consistency()) << inst.name();
  }
}

TEST(CandidateBudget, PrunedAndTabuItemsConsumeNoBudget) {
  // 1 constraint, 6 items, capacity 10. Item 0 can never fit (weight 20 >
  // capacity), item 1 is add-tabu; both must be skipped WITHOUT consuming
  // the max_candidates budget, so a budget of 1 still reaches item 2.
  mkp::Instance inst("budget", {5, 9, 3, 8, 8, 8}, {20, 4, 2, 1, 1, 1}, {10});
  mkp::Solution x(inst);
  TabuList tabu(6);
  tabu.forbid_add(1, 0, 100);
  const MoveKernel kernel(inst);

  // Find a seed whose first index(6) draw is 0 so the circular scan starts
  // at item 0 deterministically.
  std::uint64_t seed = 0;
  while (Rng(seed).index(6) != 0) ++seed;

  Rng rng(seed);
  MoveStats stats;
  const auto pick =
      kernel.select_add(x, tabu, /*iter=*/1, /*best_value=*/1e18, &stats, &rng,
                        /*max_candidates=*/1);
  ASSERT_TRUE(pick.has_value());
  // Item 0: pruned in O(1) (min weight 20 > slack 10) — no budget. Item 1:
  // fits but tabu without aspiration — no budget. Item 2 is the first fully
  // scored candidate; the budget of one stops the scan there even though
  // items 3..5 score higher (profit 8 over weight 1).
  EXPECT_EQ(*pick, 2U);
  EXPECT_EQ(stats.tabu_blocked_adds, 1U);

  // Budget 2 admits one more scored candidate: item 3 wins.
  Rng rng2(seed);
  MoveStats stats2;
  const auto pick2 = kernel.select_add(x, tabu, 1, 1e18, &stats2, &rng2, 2);
  ASSERT_TRUE(pick2.has_value());
  EXPECT_EQ(*pick2, 3U);
}

TEST(CandidateBudget, ZeroBudgetScansEverything) {
  mkp::Instance inst("all", {5, 9, 3, 8}, {2, 4, 2, 1}, {10});
  mkp::Solution x(inst);
  TabuList tabu(4);
  const MoveKernel kernel(inst);
  const auto pick = kernel.select_add(x, tabu, 1, 1e18);
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(*pick, 3U);  // global best score, budget unlimited
}

}  // namespace
}  // namespace pts::tabu
