#include "tabu/trajectory.hpp"

#include <gtest/gtest.h>

#include "mkp/generator.hpp"

namespace pts::tabu {
namespace {

TsParams quick_params(std::uint64_t moves = 1500) {
  TsParams params;
  params.max_moves = moves;
  params.strategy.nb_local = 20;
  return params;
}

TEST(Trajectory, RecordsSamplesAndEvents) {
  const auto inst = mkp::generate_gk({.num_items = 60, .num_constraints = 6}, 1);
  Rng rng(1);
  TrajectoryRecorder recorder;
  (void)tabu_search_from_scratch(inst, quick_params(), rng, &recorder);
  EXPECT_FALSE(recorder.samples().empty());
  EXPECT_FALSE(recorder.events().empty());
}

TEST(Trajectory, BestValueIsNonDecreasing) {
  const auto inst = mkp::generate_gk({.num_items = 60, .num_constraints = 6}, 2);
  Rng rng(2);
  TrajectoryRecorder recorder;
  (void)tabu_search_from_scratch(inst, quick_params(), rng, &recorder);
  for (std::size_t k = 1; k < recorder.samples().size(); ++k) {
    EXPECT_GE(recorder.samples()[k].best_value, recorder.samples()[k - 1].best_value);
    EXPECT_GE(recorder.samples()[k].move, recorder.samples()[k - 1].move);
  }
}

TEST(Trajectory, SummaryAgreesWithEngineResult) {
  const auto inst = mkp::generate_gk({.num_items = 60, .num_constraints = 6}, 3);
  Rng rng(3);
  TrajectoryRecorder recorder;
  const auto result = tabu_search_from_scratch(inst, quick_params(), rng, &recorder);
  const auto summary = recorder.summarize();
  EXPECT_EQ(summary.total_moves, result.moves);
  // The engine also credits intensification/diversification discoveries to
  // the incumbent, so the trace's move-driven best can only be <=.
  EXPECT_LE(summary.final_best, result.best_value + 1e-9);
  EXPECT_EQ(summary.intensifications, result.intensifications);
  EXPECT_EQ(summary.diversifications, result.diversifications);
}

TEST(Trajectory, AnytimeThresholdsAreOrdered) {
  const auto inst = mkp::generate_gk({.num_items = 80, .num_constraints = 8}, 4);
  Rng rng(4);
  TrajectoryRecorder recorder;
  (void)tabu_search_from_scratch(inst, quick_params(3000), rng, &recorder);
  const auto summary = recorder.summarize();
  ASSERT_GT(summary.moves_to_90pct, 0U);
  ASSERT_GT(summary.moves_to_99pct, 0U);
  EXPECT_LE(summary.moves_to_90pct, summary.moves_to_99pct);
  EXPECT_LE(summary.moves_to_99pct, summary.total_moves);
}

TEST(Trajectory, BestAtInterpolatesTheProfile) {
  const auto inst = mkp::generate_gk({.num_items = 60, .num_constraints = 6}, 5);
  Rng rng(5);
  TrajectoryRecorder recorder;
  (void)tabu_search_from_scratch(inst, quick_params(), rng, &recorder);
  // Move 0 carries the engine's normalized starting value (on_start).
  const auto& first = recorder.samples().front();
  EXPECT_EQ(first.move, 0U);
  EXPECT_GT(first.best_value, 0.0);
  EXPECT_DOUBLE_EQ(recorder.best_at(0), first.best_value);
  const auto& last = recorder.samples().back();
  EXPECT_DOUBLE_EQ(recorder.best_at(last.move), last.best_value);
  // Midpoint query is bounded by the endpoints.
  const double mid = recorder.best_at(last.move / 2);
  EXPECT_GE(mid, first.best_value);
  EXPECT_LE(mid, last.best_value);
}

TEST(Trajectory, StrideThinsSamplesButKeepsImprovements) {
  const auto inst = mkp::generate_gk({.num_items = 60, .num_constraints = 6}, 6);
  Rng rng_dense(7), rng_sparse(7);
  TrajectoryRecorder dense(1), sparse(50);
  (void)tabu_search_from_scratch(inst, quick_params(), rng_dense, &dense);
  (void)tabu_search_from_scratch(inst, quick_params(), rng_sparse, &sparse);
  EXPECT_LT(sparse.samples().size(), dense.samples().size());
  // Identical runs: the final best must match despite thinning.
  EXPECT_DOUBLE_EQ(sparse.summarize().final_best, dense.summarize().final_best);
}

TEST(Trajectory, SummaryToStringIsInformative) {
  const auto inst = mkp::generate_gk({.num_items = 40, .num_constraints = 4}, 8);
  Rng rng(8);
  TrajectoryRecorder recorder;
  (void)tabu_search_from_scratch(inst, quick_params(500), rng, &recorder);
  const auto text = recorder.summarize().to_string();
  EXPECT_NE(text.find("moves="), std::string::npos);
  EXPECT_NE(text.find("intensify="), std::string::npos);
}

TEST(Trajectory, IntensificationGainsAreRecorded) {
  const auto inst = mkp::generate_gk({.num_items = 60, .num_constraints = 6}, 9);
  Rng rng(9);
  TrajectoryRecorder recorder;
  auto params = quick_params();
  params.intensification = IntensificationKind::kSwap;
  (void)tabu_search_from_scratch(inst, params, rng, &recorder);
  // Swap intensification never loses value: every recorded gain >= 0.
  for (const auto& event : recorder.events()) {
    if (event.kind == TrajectoryRecorder::Event::Kind::kIntensify) {
      EXPECT_GE(event.value_delta, 0.0);
    }
  }
}

}  // namespace
}  // namespace pts::tabu
