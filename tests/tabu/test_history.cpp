#include "tabu/history.hpp"

#include <gtest/gtest.h>

#include "mkp/instance.hpp"

namespace pts::tabu {
namespace {

mkp::Instance make_inst() {
  return mkp::Instance("h", {1, 1, 1}, {1, 1, 1}, {3});
}

TEST(FrequencyMemory, StartsEmpty) {
  FrequencyMemory memory(3);
  EXPECT_EQ(memory.total_iterations(), 0U);
  EXPECT_DOUBLE_EQ(memory.frequency(0), 0.0);
  EXPECT_EQ(memory.num_items(), 3U);
}

TEST(FrequencyMemory, CountsSelectedItems) {
  const auto inst = make_inst();
  FrequencyMemory memory(3);
  mkp::Solution s(inst);
  s.add(0);
  memory.record(s);   // {0}
  s.add(1);
  memory.record(s);   // {0,1}
  EXPECT_EQ(memory.total_iterations(), 2U);
  EXPECT_EQ(memory.count(0), 2U);
  EXPECT_EQ(memory.count(1), 1U);
  EXPECT_EQ(memory.count(2), 0U);
  EXPECT_DOUBLE_EQ(memory.frequency(0), 1.0);
  EXPECT_DOUBLE_EQ(memory.frequency(1), 0.5);
  EXPECT_DOUBLE_EQ(memory.frequency(2), 0.0);
}

TEST(FrequencyMemory, ResetClears) {
  const auto inst = make_inst();
  FrequencyMemory memory(3);
  mkp::Solution s(inst);
  s.add(2);
  memory.record(s);
  memory.reset();
  EXPECT_EQ(memory.total_iterations(), 0U);
  EXPECT_EQ(memory.count(2), 0U);
}

TEST(FrequencyMemory, FrequencyAlwaysWithinUnitInterval) {
  const auto inst = make_inst();
  FrequencyMemory memory(3);
  mkp::Solution s(inst);
  for (int round = 0; round < 50; ++round) {
    s.flip(round % 3);
    memory.record(s);
  }
  for (std::size_t j = 0; j < 3; ++j) {
    EXPECT_GE(memory.frequency(j), 0.0);
    EXPECT_LE(memory.frequency(j), 1.0);
  }
}

}  // namespace
}  // namespace pts::tabu
