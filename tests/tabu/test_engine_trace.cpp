// Structural reproduction of the paper's Figure 1: the trace hooks must fire
// in exactly the nested order the pseudocode prescribes —
//   outer round -> (inner round -> moves... -> intensification) x Nb_int
//   -> diversification — repeated Nb_div times.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "mkp/generator.hpp"
#include "tabu/engine.hpp"

namespace pts::tabu {
namespace {

class RecordingTrace : public TsTrace {
 public:
  void on_outer_round(std::size_t div_round) override {
    events.push_back("outer:" + std::to_string(div_round));
  }
  void on_inner_round(std::size_t div_round, std::size_t int_round) override {
    events.push_back("inner:" + std::to_string(div_round) + ":" +
                     std::to_string(int_round));
  }
  void on_move(std::uint64_t, double, bool) override {
    if (events.empty() || events.back() != "move") events.push_back("move");
  }
  void on_intensification(IntensificationKind, double, double) override {
    events.push_back("intensify");
  }
  void on_diversification(std::size_t, std::size_t) override {
    events.push_back("diversify");
  }

  std::vector<std::string> events;
};

struct Shape {
  std::size_t nb_div;
  std::size_t nb_int;
};

class Figure1Structure : public ::testing::TestWithParam<Shape> {};

TEST_P(Figure1Structure, LoopNestingMatchesPseudocode) {
  const auto [nb_div, nb_int] = GetParam();
  const auto inst = mkp::generate_gk({.num_items = 30, .num_constraints = 4}, 42);
  Rng rng(42);
  TsParams params;
  params.nb_div = nb_div;
  params.nb_int = nb_int;
  params.strategy.nb_local = 5;
  params.max_moves = 1'000'000;  // large enough to never bind
  params.run_to_budget = false;  // the literal Figure-1 shape
  RecordingTrace trace;
  (void)tabu_search_from_scratch(inst, params, rng, &trace);

  // Build the exact expected sequence.
  std::vector<std::string> expected;
  for (std::size_t d = 0; d < nb_div; ++d) {
    expected.push_back("outer:" + std::to_string(d));
    for (std::size_t i = 0; i < nb_int; ++i) {
      expected.push_back("inner:" + std::to_string(d) + ":" + std::to_string(i));
      expected.push_back("move");       // collapsed run of moves
      expected.push_back("intensify");  // Figure 1 line 11
    }
    expected.push_back("diversify");  // Figure 1 line 12
  }
  EXPECT_EQ(trace.events, expected);
}

INSTANTIATE_TEST_SUITE_P(Shapes, Figure1Structure,
                         ::testing::Values(Shape{1, 1}, Shape{1, 3}, Shape{2, 2},
                                           Shape{3, 1}, Shape{4, 3}));

TEST(Figure1Counts, PhaseCountersMatchShape) {
  const auto inst = mkp::generate_gk({.num_items = 30, .num_constraints = 4}, 43);
  Rng rng(43);
  TsParams params;
  params.nb_div = 3;
  params.nb_int = 2;
  params.strategy.nb_local = 5;
  params.max_moves = 1'000'000;
  params.run_to_budget = false;
  const auto result = tabu_search_from_scratch(inst, params, rng);
  EXPECT_EQ(result.intensifications, 6U);  // nb_div * nb_int
  EXPECT_EQ(result.diversifications, 3U);  // nb_div
}

TEST(Figure1Budget, BudgetCutsTheStructureShort) {
  const auto inst = mkp::generate_gk({.num_items = 30, .num_constraints = 4}, 44);
  Rng rng(44);
  TsParams params;
  params.nb_div = 100;
  params.nb_int = 100;
  params.strategy.nb_local = 50;
  params.max_moves = 60;  // bites long before the loops complete
  params.run_to_budget = false;
  RecordingTrace trace;
  const auto result = tabu_search_from_scratch(inst, params, rng, &trace);
  EXPECT_EQ(result.moves, 60U);
  EXPECT_LT(result.diversifications, 100U);
}

TEST(Figure1RunToBudget, OuterLoopRepeatsUntilBudget) {
  const auto inst = mkp::generate_gk({.num_items = 30, .num_constraints = 4}, 45);
  Rng rng(45);
  TsParams params;
  params.nb_div = 1;
  params.nb_int = 1;
  params.strategy.nb_local = 5;
  params.max_moves = 500;
  params.run_to_budget = true;
  const auto result = tabu_search_from_scratch(inst, params, rng);
  EXPECT_EQ(result.moves, 500U);
  // With ~5-move local loops, one div round is ~ a handful of moves, so the
  // outer loop must have wrapped many times.
  EXPECT_GT(result.diversifications, 1U);
}

}  // namespace
}  // namespace pts::tabu
