#include "tabu/engine.hpp"

#include <gtest/gtest.h>

#include "bounds/greedy.hpp"
#include "mkp/catalog.hpp"
#include "mkp/generator.hpp"

namespace pts::tabu {
namespace {

TsParams quick_params(std::uint64_t max_moves = 2000) {
  TsParams params;
  params.max_moves = max_moves;
  params.strategy.nb_local = 25;
  return params;
}

TEST(Engine, BestIsFeasibleAndConsistent) {
  const auto inst = mkp::generate_gk({.num_items = 60, .num_constraints = 6}, 1);
  Rng rng(1);
  const auto result = tabu_search_from_scratch(inst, quick_params(), rng);
  EXPECT_TRUE(result.best.is_feasible());
  EXPECT_TRUE(result.best.check_consistency());
  EXPECT_DOUBLE_EQ(result.best.value(), result.best_value);
}

TEST(Engine, NeverWorseThanItsStartingPoint) {
  const auto inst = mkp::generate_gk({.num_items = 60, .num_constraints = 6}, 2);
  Rng rng(2);
  const auto initial = bounds::greedy_construct(inst);
  const auto result = tabu_search(inst, initial, quick_params(), rng);
  EXPECT_GE(result.best_value, initial.value());
}

TEST(Engine, RespectsMoveBudget) {
  const auto inst = mkp::generate_gk({.num_items = 60, .num_constraints = 6}, 3);
  Rng rng(3);
  auto params = quick_params(500);
  const auto result = tabu_search_from_scratch(inst, params, rng);
  EXPECT_LE(result.moves, 500U);
  EXPECT_GE(result.moves, 500U);  // run_to_budget consumes the whole budget
}

TEST(Engine, RespectsTimeBudget) {
  const auto inst = mkp::generate_gk({.num_items = 200, .num_constraints = 10}, 4);
  Rng rng(4);
  TsParams params;
  params.max_moves = 0;
  params.time_limit_seconds = 0.1;
  const auto result = tabu_search_from_scratch(inst, params, rng);
  EXPECT_LT(result.seconds, 3.0);
}

TEST(Engine, TargetValueStopsEarly) {
  const auto inst = mkp::generate_gk({.num_items = 60, .num_constraints = 6}, 5);
  Rng rng(5);
  auto params = quick_params(100000);
  params.target_value = 1.0;  // any feasible solution reaches this
  const auto result = tabu_search_from_scratch(inst, params, rng);
  EXPECT_TRUE(result.reached_target);
  EXPECT_LT(result.moves, 100000U);
}

TEST(Engine, DeterministicGivenSeed) {
  const auto inst = mkp::generate_gk({.num_items = 50, .num_constraints = 5}, 6);
  Rng rng1(7), rng2(7);
  const auto a = tabu_search_from_scratch(inst, quick_params(), rng1);
  const auto b = tabu_search_from_scratch(inst, quick_params(), rng2);
  EXPECT_DOUBLE_EQ(a.best_value, b.best_value);
  EXPECT_EQ(a.best, b.best);
  EXPECT_EQ(a.moves, b.moves);
}

TEST(Engine, DifferentSeedsExploreDifferently) {
  const auto inst = mkp::generate_gk({.num_items = 80, .num_constraints = 8}, 7);
  Rng rng1(1), rng2(2);
  const auto a = tabu_search_from_scratch(inst, quick_params(300), rng1);
  const auto b = tabu_search_from_scratch(inst, quick_params(300), rng2);
  // Values may coincide; trajectories should not be bit-identical.
  EXPECT_TRUE(a.best != b.best || a.improvements != b.improvements);
}

TEST(Engine, ImprovementTraceIsStrictlyIncreasing) {
  const auto inst = mkp::generate_gk({.num_items = 60, .num_constraints = 6}, 8);
  Rng rng(8);
  const auto result = tabu_search_from_scratch(inst, quick_params(), rng);
  ASSERT_FALSE(result.improvements.empty());
  for (std::size_t k = 1; k < result.improvements.size(); ++k) {
    EXPECT_LT(result.improvements[k - 1].second, result.improvements[k].second);
    EXPECT_LE(result.improvements[k - 1].first, result.improvements[k].first);
  }
  EXPECT_DOUBLE_EQ(result.improvements.back().second, result.best_value);
}

TEST(Engine, EliteSortedDistinctFeasible) {
  const auto inst = mkp::generate_gk({.num_items = 60, .num_constraints = 6}, 9);
  Rng rng(9);
  auto params = quick_params();
  params.b_best = 5;
  const auto result = tabu_search_from_scratch(inst, params, rng);
  ASSERT_GE(result.elite.size(), 1U);
  ASSERT_LE(result.elite.size(), 5U);
  for (std::size_t k = 0; k < result.elite.size(); ++k) {
    EXPECT_TRUE(result.elite[k].is_feasible());
    if (k > 0) {
      EXPECT_GE(result.elite[k - 1].value(), result.elite[k].value());
      EXPECT_NE(result.elite[k - 1], result.elite[k]);
    }
  }
  EXPECT_DOUBLE_EQ(result.elite.front().value(), result.best_value);
}

TEST(Engine, InfeasibleInitialGetsRepaired) {
  const auto inst = mkp::generate_gk({.num_items = 40, .num_constraints = 4}, 10);
  mkp::Solution bad(inst);
  for (std::size_t j = 0; j < inst.num_items(); ++j) bad.add(j);
  ASSERT_FALSE(bad.is_feasible());
  Rng rng(10);
  const auto result = tabu_search(inst, bad, quick_params(), rng);
  EXPECT_TRUE(result.best.is_feasible());
  EXPECT_GT(result.best_value, 0.0);
}

TEST(Engine, FindsOptimumOnCatalogInstances) {
  for (const auto& entry : mkp::catalog()) {
    Rng rng(entry.instance.num_items());
    TsParams params;
    params.max_moves = 5000;
    params.strategy.tabu_tenure = 3;
    params.strategy.nb_local = 30;
    const auto result = tabu_search_from_scratch(entry.instance, params, rng);
    EXPECT_DOUBLE_EQ(result.best_value, entry.optimum) << entry.instance.name();
  }
}

TEST(Engine, OscillationVariantRuns) {
  const auto inst = mkp::generate_gk({.num_items = 60, .num_constraints = 6}, 11);
  Rng rng(11);
  auto params = quick_params();
  params.intensification = IntensificationKind::kStrategicOscillation;
  params.oscillation_depth = 5;
  const auto result = tabu_search_from_scratch(inst, params, rng);
  EXPECT_TRUE(result.best.is_feasible());
  EXPECT_GT(result.intensifications, 0U);
}

TEST(Engine, NoIntensificationVariantRuns) {
  const auto inst = mkp::generate_gk({.num_items = 60, .num_constraints = 6}, 12);
  Rng rng(12);
  auto params = quick_params();
  params.intensification = IntensificationKind::kNone;
  const auto result = tabu_search_from_scratch(inst, params, rng);
  EXPECT_TRUE(result.best.is_feasible());
  EXPECT_EQ(result.intensify_stats.swaps, 0U);
}

TEST(Engine, RemControlRunsAndRecordsOverhead) {
  const auto inst = mkp::generate_gk({.num_items = 40, .num_constraints = 5}, 13);
  Rng rng(13);
  auto params = quick_params(400);
  params.tenure_control = TenureControl::kReverseElimination;
  const auto result = tabu_search_from_scratch(inst, params, rng);
  EXPECT_TRUE(result.best.is_feasible());
  EXPECT_GT(result.rem_flips_scanned, 0U);
}

TEST(Engine, ReactiveControlAdjustsTenure) {
  const auto inst = mkp::generate_gk({.num_items = 40, .num_constraints = 5}, 14);
  Rng rng(14);
  auto params = quick_params(3000);
  params.tenure_control = TenureControl::kReactive;
  params.strategy.tabu_tenure = 7;
  const auto result = tabu_search_from_scratch(inst, params, rng);
  EXPECT_TRUE(result.best.is_feasible());
  EXPECT_GT(result.final_tenure, 0U);
}

TEST(Engine, MoveStatsAddUp) {
  const auto inst = mkp::generate_gk({.num_items = 60, .num_constraints = 6}, 15);
  Rng rng(15);
  const auto result = tabu_search_from_scratch(inst, quick_params(), rng);
  EXPECT_GT(result.move_stats.drops, 0U);
  EXPECT_GT(result.move_stats.adds, 0U);
  EXPECT_GE(result.intensifications, 1U);
  EXPECT_GE(result.diversifications, 1U);
}

TEST(EngineDeath, UnboundedRunRejected) {
  const auto inst = mkp::generate_gk({.num_items = 20, .num_constraints = 3}, 16);
  Rng rng(16);
  TsParams params;
  params.max_moves = 0;
  params.time_limit_seconds = 0.0;
  EXPECT_DEATH((void)tabu_search_from_scratch(inst, params, rng), "bounded");
}

class EngineStrategySweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(EngineStrategySweep, FeasibleAcrossStrategyGrid) {
  const auto [tenure, nb_drop] = GetParam();
  const auto inst = mkp::generate_gk({.num_items = 50, .num_constraints = 5}, 17);
  Rng rng(tenure * 100 + nb_drop);
  auto params = quick_params(800);
  params.strategy.tabu_tenure = tenure;
  params.strategy.nb_drop = nb_drop;
  const auto result = tabu_search_from_scratch(inst, params, rng);
  EXPECT_TRUE(result.best.is_feasible());
  EXPECT_GT(result.best_value, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Grid, EngineStrategySweep,
                         ::testing::Combine(::testing::Values(1, 3, 7, 15, 40),
                                            ::testing::Values(1, 2, 4, 8)));

}  // namespace
}  // namespace pts::tabu
