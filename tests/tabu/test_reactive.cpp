#include "tabu/reactive.hpp"

#include <gtest/gtest.h>

namespace pts::tabu {
namespace {

TEST(Reactive, StartsAtClampedBase) {
  ReactiveConfig config;
  config.min_tenure = 5;
  config.max_tenure = 50;
  ReactiveTenure r(2, config);
  EXPECT_EQ(r.current_tenure(), 5U);
  ReactiveTenure r2(100, config);
  EXPECT_EQ(r2.current_tenure(), 50U);
}

TEST(Reactive, GrowsOnRepetition) {
  ReactiveTenure r(10);
  r.on_solution(0xAA, 1);
  const auto before = r.current_tenure();
  r.on_solution(0xAA, 2);  // revisit
  EXPECT_GT(r.current_tenure(), before);
  EXPECT_EQ(r.repetitions(), 1U);
}

TEST(Reactive, NoGrowthOnFreshSolutions) {
  ReactiveTenure r(10);
  for (std::uint64_t i = 0; i < 50; ++i) r.on_solution(i, i);
  EXPECT_EQ(r.repetitions(), 0U);
  EXPECT_LE(r.current_tenure(), 10U);
}

TEST(Reactive, ShrinksAfterQuietStretch) {
  ReactiveConfig config;
  config.shrink_after = 10;
  config.min_tenure = 3;
  ReactiveTenure r(20, config);
  // Trigger one repetition so last_repetition_iter is set, growing tenure.
  r.on_solution(1, 1);
  r.on_solution(1, 2);
  const auto grown = r.current_tenure();
  // A long fresh stretch must eventually shrink below the grown value.
  for (std::uint64_t i = 10; i < 200; ++i) r.on_solution(1000 + i, i);
  EXPECT_LT(r.current_tenure(), grown);
}

TEST(Reactive, TenureRespectsBounds) {
  ReactiveConfig config;
  config.min_tenure = 4;
  config.max_tenure = 12;
  ReactiveTenure r(8, config);
  for (std::uint64_t i = 0; i < 30; ++i) r.on_solution(0xBB, i);  // repeat hard
  EXPECT_LE(r.current_tenure(), 12U);
  ReactiveTenure r2(8, config);
  for (std::uint64_t i = 0; i < 10000; ++i) r2.on_solution(i * 7 + 1, i);
  EXPECT_GE(r2.current_tenure(), 4U);
}

TEST(Reactive, EscapeAfterRepeatedRevisits) {
  ReactiveConfig config;
  config.escape_after = 3;
  ReactiveTenure r(10, config);
  r.on_solution(0xCC, 1);
  r.on_solution(0xCC, 2);
  EXPECT_FALSE(r.consume_escape());
  r.on_solution(0xCC, 3);  // third visit
  EXPECT_TRUE(r.consume_escape());
  EXPECT_FALSE(r.consume_escape());  // cleared on read
  EXPECT_EQ(r.escapes_triggered(), 1U);
}

TEST(Reactive, VisitCountRestartsAfterEscape) {
  ReactiveConfig config;
  config.escape_after = 2;
  ReactiveTenure r(10, config);
  r.on_solution(0xDD, 1);
  r.on_solution(0xDD, 2);
  EXPECT_TRUE(r.consume_escape());
  r.on_solution(0xDD, 3);
  EXPECT_FALSE(r.consume_escape());  // count restarted, needs another revisit
  r.on_solution(0xDD, 4);
  EXPECT_TRUE(r.consume_escape());
}

TEST(Reactive, TableGrowsWithDistinctSolutions) {
  ReactiveTenure r(10);
  for (std::uint64_t i = 0; i < 100; ++i) r.on_solution(i, i);
  EXPECT_EQ(r.table_size(), 100U);
}

}  // namespace
}  // namespace pts::tabu
