#include "tabu/cets.hpp"

#include <gtest/gtest.h>

#include "bounds/greedy.hpp"
#include "exact/brute_force.hpp"
#include "mkp/catalog.hpp"
#include "mkp/generator.hpp"

namespace pts::tabu {
namespace {

CetsParams quick_params(std::uint64_t steps = 20000) {
  CetsParams params;
  params.max_steps = steps;
  return params;
}

TEST(Cets, BestIsFeasibleAndConsistent) {
  const auto inst = mkp::generate_gk({.num_items = 60, .num_constraints = 6}, 1);
  Rng rng(1);
  const auto result = critical_event_tabu_search(inst, rng, quick_params());
  EXPECT_TRUE(result.best.is_feasible());
  EXPECT_TRUE(result.best.check_consistency());
  EXPECT_DOUBLE_EQ(result.best.value(), result.best_value);
  EXPECT_EQ(result.steps, 20000U);
}

TEST(Cets, OscillationActuallyCrossesTheBoundary) {
  const auto inst = mkp::generate_gk({.num_items = 60, .num_constraints = 6}, 2);
  Rng rng(2);
  const auto result = critical_event_tabu_search(inst, rng, quick_params());
  // A 20k-step run swings across the boundary thousands of times.
  EXPECT_GT(result.critical_events, 100U);
}

TEST(Cets, ImprovesOnTheGreedyStart) {
  const auto inst = mkp::generate_gk({.num_items = 100, .num_constraints = 10}, 3);
  const double greedy = bounds::greedy_construct(inst).value();
  Rng rng(3);
  const auto result = critical_event_tabu_search(inst, rng, quick_params(40000));
  EXPECT_GE(result.best_value, greedy * 0.99);
}

TEST(Cets, FindsCatalogOptima) {
  for (const auto& entry : mkp::catalog()) {
    Rng rng(entry.instance.num_items());
    const auto result =
        critical_event_tabu_search(entry.instance, rng, quick_params(30000));
    EXPECT_DOUBLE_EQ(result.best_value, entry.optimum) << entry.instance.name();
  }
}

TEST(Cets, NeverExceedsTheOptimum) {
  for (std::uint64_t seed : {5, 6, 7}) {
    const auto inst = mkp::generate_gk({.num_items = 14, .num_constraints = 4}, seed);
    const auto oracle = exact::brute_force(inst);
    Rng rng(seed);
    const auto result = critical_event_tabu_search(inst, rng, quick_params(5000));
    EXPECT_LE(result.best_value, oracle.optimum + 1e-9);
  }
}

TEST(Cets, TargetValueStopsEarly) {
  const auto inst = mkp::generate_gk({.num_items = 60, .num_constraints = 6}, 8);
  Rng rng(8);
  auto params = quick_params(1'000'000);
  params.target_value = 1.0;
  const auto result = critical_event_tabu_search(inst, rng, params);
  EXPECT_TRUE(result.reached_target);
  EXPECT_LT(result.steps, 1'000'000U);
}

TEST(Cets, TimeLimitRespected) {
  const auto inst = mkp::generate_gk({.num_items = 200, .num_constraints = 10}, 9);
  Rng rng(9);
  CetsParams params;
  params.max_steps = 0;
  params.time_limit_seconds = 0.1;
  const auto result = critical_event_tabu_search(inst, rng, params);
  EXPECT_LT(result.seconds, 3.0);
}

TEST(Cets, DeterministicPerSeed) {
  const auto inst = mkp::generate_gk({.num_items = 60, .num_constraints = 6}, 10);
  Rng a(11), b(11);
  const auto r1 = critical_event_tabu_search(inst, a, quick_params(5000));
  const auto r2 = critical_event_tabu_search(inst, b, quick_params(5000));
  EXPECT_DOUBLE_EQ(r1.best_value, r2.best_value);
  EXPECT_EQ(r1.critical_events, r2.critical_events);
}

TEST(Cets, AmplitudeWidensOnStagnation) {
  // A tiny instance stagnates quickly; the adaptive span must kick in.
  const auto inst = mkp::generate_gk({.num_items = 20, .num_constraints = 3}, 12);
  Rng rng(12);
  auto params = quick_params(30000);
  params.widen_after = 5;
  const auto result = critical_event_tabu_search(inst, rng, params);
  EXPECT_GT(result.amplitude_widenings, 0U);
}

TEST(Cets, RestartsOnLongStagnation) {
  const auto inst = mkp::generate_gk({.num_items = 20, .num_constraints = 3}, 13);
  Rng rng(13);
  auto params = quick_params(40000);
  params.restart_after = 30;
  const auto result = critical_event_tabu_search(inst, rng, params);
  EXPECT_GT(result.restarts, 0U);
}

TEST(CetsDeath, UnboundedRunRejected) {
  const auto inst = mkp::generate_gk({.num_items = 10, .num_constraints = 2}, 14);
  Rng rng(14);
  CetsParams params;
  params.max_steps = 0;
  params.time_limit_seconds = 0.0;
  EXPECT_DEATH((void)critical_event_tabu_search(inst, rng, params), "bounded");
}

}  // namespace
}  // namespace pts::tabu
