// Ablation A5: slave-count scaling at a FIXED TOTAL work budget, plus the
// synchronous (CTS2 rendezvous) vs asynchronous (decentralized swarm, the
// paper's announced future work) comparison. On this 1-core container the
// wall-clock column shows overhead only — the quality-vs-P and idle-time
// trends are the reproducible signal (DESIGN.md, hardware substitution).
#include "common.hpp"

#include <cstdio>
#include <vector>

#include "mkp/generator.hpp"
#include "parallel/async_swarm.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace pts;
  const auto options = bench::BenchOptions::from_cli(argc, argv);

  // --topology=broadcast|ring|random-peer restricts the async sweep to one
  // topology (default: all three).
  const auto args = CliArgs::parse(argc, argv);
  std::vector<parallel::AsyncTopology> topologies = {
      parallel::AsyncTopology::kFullBroadcast, parallel::AsyncTopology::kRing,
      parallel::AsyncTopology::kRandomPeer};
  if (args.has("topology")) {
    const auto parsed =
        parallel::topology_from_string(args.get_string("topology", ""));
    if (!parsed) {
      std::fprintf(stderr, "--topology: %s\n", parsed.status().to_string().c_str());
      return 1;
    }
    topologies = {*parsed};
  }

  const auto inst = mkp::generate_gk(
      {.num_items = options.quick ? 100u : 250u, .num_constraints = 10},
      options.seed + 3);
  const std::uint64_t total_work = options.work(48000);
  const std::size_t rounds = 3;
  const std::uint64_t seeds[] = {1, 2, 3};

  TextTable table({"scheme", "P", "mean best", "mean time (s)",
                   "rendezvous idle (s)"});

  for (std::size_t p : {1, 2, 4, 8, 16}) {
    RunningStats values, seconds, idle;
    for (std::uint64_t seed : seeds) {
      auto config = bench::default_cts2(seed, p, rounds, total_work / (p * rounds));
      Stopwatch watch;
      const auto result = parallel::run_parallel_tabu_search(inst, config);
      seconds.add(watch.elapsed_seconds());
      values.add(result.best_value);
      idle.add(result.master.rendezvous_idle_seconds);
    }
    table.add_row({"CTS2 (sync)", TextTable::fmt(p), TextTable::fmt(values.mean(), 1),
                   TextTable::fmt(seconds.mean(), 2), TextTable::fmt(idle.mean(), 3)});
  }

  for (auto topology : topologies) {
    const std::size_t p = 8;
    RunningStats values, seconds;
    for (std::uint64_t seed : seeds) {
      parallel::AsyncConfig config;
      config.num_peers = p;
      config.bursts_per_peer = rounds;
      config.work_per_burst = total_work / (p * rounds);
      config.base_params.strategy.nb_local = 25;
      config.topology = topology;
      config.seed = seed;
      Stopwatch watch;
      const auto result = parallel::run_async_swarm(inst, config);
      seconds.add(watch.elapsed_seconds());
      values.add(result.best_value);
    }
    table.add_row({"async (" + to_string(topology) + ")", TextTable::fmt(p),
                   TextTable::fmt(values.mean(), 1),
                   TextTable::fmt(seconds.mean(), 2), "-"});
  }

  bench::emit(options, "Ablation A5",
              "slave-count scaling at fixed total work; sync vs async", table,
              "paper shape: quality holds (or improves) as P grows at fixed total "
              "work thanks to cooperative diversity; the async scheme removes the "
              "rendezvous idle column entirely.");
  return 0;
}
