// FP set (paper §5, prose): "The optimal solution is reached for all these
// [57 Fréville–Plateau] problems". We regenerate the suite on the published
// size grid, prove optima with branch & bound where it finishes in budget,
// and count how many CTS2 matches. Problems whose optimum B&B cannot prove
// in budget are scored against the LP bound instead and excluded from the
// solved-to-optimality count.
#include "common.hpp"

#include "exact/branch_and_bound.hpp"
#include "mkp/generator.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace pts;
  const auto options = bench::BenchOptions::from_cli(argc, argv);

  const auto suite = mkp::generate_fp57(options.seed);
  const std::size_t take = options.quick ? 15 : suite.size();
  const double bnb_budget = options.quick ? 0.5 : 5.0;

  std::size_t proven = 0;
  std::size_t matched = 0;
  double max_ts_seconds = 0.0;
  RunningStats unproven_gap;
  Stopwatch total;

  for (std::size_t idx = 0; idx < take; ++idx) {
    const auto& inst = suite[idx];
    exact::BnbOptions bnb_options;
    bnb_options.time_limit_seconds = bnb_budget;
    const auto exact_result = exact::branch_and_bound(inst, bnb_options);

    // Up to three independent runs per problem (fresh seeds), stopping at
    // the proven optimum — the multi-start protocol any practitioner runs.
    Stopwatch watch;
    double ts_best = 0.0;
    for (std::uint64_t attempt = 0; attempt < 3; ++attempt) {
      auto config = bench::default_cts2(options.seed + idx + attempt * 7919, 6, 20,
                                        options.work(12000));
      if (exact_result.proven_optimal) config.target_value = exact_result.objective;
      const auto run = parallel::run_parallel_tabu_search(inst, config);
      ts_best = std::max(ts_best, run.best_value);
      if (!exact_result.proven_optimal ||
          ts_best >= exact_result.objective - 1e-9) {
        break;
      }
    }
    max_ts_seconds = std::max(max_ts_seconds, watch.elapsed_seconds());

    if (exact_result.proven_optimal) {
      ++proven;
      if (ts_best >= exact_result.objective - 1e-9) ++matched;
    } else {
      std::string kind;
      unproven_gap.add(bench::reference_gap_percent(inst, ts_best, 0.0, &kind));
    }
  }

  TextTable table({"problems", "optimum proven (B&B)", "CTS2 matched optimum",
                   "max TS time (s)", "LP gap on unproven (%)", "total time (s)"});
  table.add_row({TextTable::fmt(take), TextTable::fmt(proven), TextTable::fmt(matched),
                 TextTable::fmt(max_ts_seconds, 2),
                 unproven_gap.count() ? TextTable::fmt(unproven_gap.mean(), 2) : "-",
                 TextTable::fmt(total.elapsed_seconds(), 1)});
  bench::emit(options, "FP-57",
              "Fréville–Plateau-style suite: optima reached by CTS2", table,
              "paper shape: every problem with a proven optimum is matched by the "
              "parallel tabu search in short time.");
  return 0;
}
