// Table 1 (paper §5): Glover–Kochenberger-style problem classes from 3x10 up
// to 25x500 — maximum execution time and % deviation per class, solved with
// the full CTS2 parallel tabu search.
//
// Paper-vs-here: the paper reports deviation against best-known values from
// the literature; offline we measure against the exact optimum where B&B
// proves it quickly and against the LP-relaxation upper bound otherwise
// (the LP gap over-states the true deviation, so these numbers are a
// conservative ceiling). See DESIGN.md, data substitution note.
#include "common.hpp"

#include "mkp/generator.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace pts;
  const auto options = bench::BenchOptions::from_cli(argc, argv);

  const double size_scale = options.quick ? 0.2 : 1.0;
  const std::size_t per_class = 2;
  const auto classes =
      mkp::generate_gk_table1_classes(options.seed, per_class, size_scale);

  TextTable table({"class (m x n)", "instances", "max time (s)", "mean dev (%)",
                   "max dev (%)", "ref"});
  for (const auto& cls : classes) {
    RunningStats deviations;
    double max_seconds = 0.0;
    std::string reference = "?";
    for (std::size_t k = 0; k < cls.instances.size(); ++k) {
      const auto& inst = cls.instances[k];
      Stopwatch watch;
      auto config = bench::default_cts2(options.seed + k, 4, 4,
                                        options.work(5000));
      const auto result = parallel::run_parallel_tabu_search(inst, config);
      max_seconds = std::max(max_seconds, watch.elapsed_seconds());
      deviations.add(bench::reference_gap_percent(inst, result.best_value,
                                                  options.quick ? 0.5 : 3.0,
                                                  &reference));
    }
    table.add_row({cls.label, TextTable::fmt(cls.instances.size()),
                   TextTable::fmt(max_seconds, 2), TextTable::fmt(deviations.mean(), 2),
                   TextTable::fmt(deviations.max(), 2), reference});
  }

  bench::emit(options, "Table 1",
              "CTS2 on Glover–Kochenberger classes: max time and deviation", table,
              "paper shape: deviations stay small (<~1% vs best known) and grow "
              "mildly with m; times grow with n. 'LP' rows over-state the true "
              "gap because the reference is the LP bound, not the optimum.");
  return 0;
}
