// Table 2 (paper §5): best cost found by SEQ / ITS / CTS1 / CTS2 on five
// problems MK1..MK5 under an identical total work budget per mode (the
// paper fixed wall-clock on 16 Alphas; on one core we fix move*drop work —
// DESIGN.md, hardware substitution note). Each mode/problem pair is run over
// several seeds and the mean best cost is reported, since a single seed's
// ordering is noise.
#include "common.hpp"

#include "mkp/generator.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace pts;
  const auto options = bench::BenchOptions::from_cli(argc, argv);

  // MK1..MK5: one instance per paper row, growing sizes.
  struct Spec {
    const char* name;
    std::size_t m, n;
  };
  const Spec specs[] = {
      {"MK1", 5, 100}, {"MK2", 5, 200}, {"MK3", 10, 250},
      {"MK4", 15, 250}, {"MK5", 25, 400},
  };

  constexpr parallel::CooperationMode kModes[] = {
      parallel::CooperationMode::kSequential,
      parallel::CooperationMode::kIndependent,
      parallel::CooperationMode::kCooperativePool,
      parallel::CooperationMode::kCooperativeAdaptive,
  };
  const std::uint64_t seeds[] = {1, 2, 3, 4, 5};

  TextTable table({"Prob", "SEQ", "ITS", "CTS1", "CTS2", "best mode", "time (s)"});
  for (const auto& spec : specs) {
    const auto inst = mkp::generate_gk(
        {.num_items = options.quick ? spec.n / 4 : spec.n, .num_constraints = spec.m},
        options.seed + spec.m * 1000 + spec.n, spec.name);

    // Many short rounds rather than few long ones: the SGP's scoring needs
    // at least initial_score (4) unproductive rounds before it can retire a
    // strategy, and the ISP needs rounds to inject/restart — the cooperative
    // machinery is invisible in a 3-round run.
    double means[4] = {0, 0, 0, 0};
    Stopwatch watch;
    for (std::size_t mode_idx = 0; mode_idx < 4; ++mode_idx) {
      RunningStats stats;
      for (std::uint64_t seed : seeds) {
        auto config = bench::default_cts2(seed, 4, 16, options.work(600));
        config.isp.alpha = 0.99;
        config.mode = kModes[mode_idx];
        stats.add(parallel::run_parallel_tabu_search(inst, config).best_value);
      }
      means[mode_idx] = stats.mean();
    }
    double top = means[0];
    for (double m : means) top = std::max(top, m);
    std::string winners;
    for (std::size_t k = 0; k < 4; ++k) {
      if (means[k] >= top - 1e-9) {
        if (!winners.empty()) winners += "/";
        winners += to_string(kModes[k]);
      }
    }
    table.add_row({spec.name, TextTable::fmt(means[0], 1), TextTable::fmt(means[1], 1),
                   TextTable::fmt(means[2], 1), TextTable::fmt(means[3], 1),
                   winners, TextTable::fmt(watch.elapsed_seconds(), 2)});
  }

  bench::emit(options, "Table 2",
              "SEQ vs ITS vs CTS1 vs CTS2 at a fixed work budget (mean of 5 seeds)",
              table,
              "paper shape: cooperative modes (CTS1/CTS2) dominate SEQ and ITS, "
              "with CTS2's dynamic strategy setting winning most rows.");
  return 0;
}
