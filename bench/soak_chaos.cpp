// Chaos soak: hammer the SolverService with proc-backend jobs while the
// PTS_CHAOS_* knobs kill, corrupt and stall the spawned pts_worker
// processes on a schedule, and randomly cancel jobs mid-flight. The single
// hard invariant under all of that noise: every submitted future resolves —
// zero hangs, zero lost jobs. Chaos may cost quality, spawns and respawn
// budget, never liveness.
//
//   ./soak_chaos --seconds=10 --workers=3 --seed=1
//   ./soak_chaos --quick            2-second smoke (the ctest wiring)
//
// The 30-second soak runs under `ctest -L soak` when the build was
// configured with -DPTS_SOAK=ON.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <string>

#include "mkp/generator.hpp"
#include "service/solver_service.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

#ifndef PTS_WORKER_BIN_FOR_TESTS
#error "build must define PTS_WORKER_BIN_FOR_TESTS (see bench/CMakeLists.txt)"
#endif

namespace {

/// Chaos defaults, injected only when the caller has not already set a knob
/// (so a CI job can dial the storm up or down through the environment).
void default_chaos_env() {
  ::setenv("PTS_CHAOS_CRASH_PPM", "120000", /*overwrite=*/0);
  ::setenv("PTS_CHAOS_CORRUPT_PPM", "80000", /*overwrite=*/0);
  ::setenv("PTS_CHAOS_STALL_MS", "1", /*overwrite=*/0);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pts;
  using Clock = std::chrono::steady_clock;
  const auto args = CliArgs::parse(argc, argv);

  const bool quick = args.get_bool("quick", false);
  const double seconds = quick ? 2.0 : args.get_int("seconds", 10);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  default_chaos_env();

  service::ServiceConfig pool;
  pool.num_workers = static_cast<std::size_t>(args.get_int("workers", 3));
  pool.queue_capacity = 64;
  service::SolverService server(pool);
  std::printf("soak: %.0fs, %zu service workers, chaos crash/corrupt/stall = "
              "%s/%s/%s ppm/ppm/ms\n",
              seconds, pool.num_workers, std::getenv("PTS_CHAOS_CRASH_PPM"),
              std::getenv("PTS_CHAOS_CORRUPT_PPM"),
              std::getenv("PTS_CHAOS_STALL_MS"));

  Rng rng(seed ^ 0x50A7C4A05ULL);
  std::deque<service::JobHandle> in_flight;
  std::uint64_t submitted = 0, resolved = 0, ok = 0, cancelled = 0,
                errored = 0, faults_seen = 0, cancels_requested = 0;

  const auto drain_one = [&](bool must_resolve) -> bool {
    auto& front = in_flight.front();
    // A generous bound: a hung future is the exact bug this soak exists to
    // catch, so a timeout is a hard failure, not a skip.
    const auto wait = must_resolve ? std::chrono::seconds(120)
                                   : std::chrono::seconds(0);
    if (front.result.wait_for(wait) != std::future_status::ready) {
      if (!must_resolve) return false;
      std::printf("FAIL: job %llu never resolved\n",
                  static_cast<unsigned long long>(front.id));
      return false;
    }
    const auto result = front.result.get();
    ++resolved;
    faults_seen += result.slave_faults;
    if (result.status.ok()) {
      ++ok;
    } else if (result.status.code() == StatusCode::kCancelled) {
      ++cancelled;
    } else {
      ++errored;
    }
    in_flight.pop_front();
    return true;
  };

  const auto deadline = Clock::now() + std::chrono::duration<double>(seconds);
  while (Clock::now() < deadline) {
    auto inst = mkp::generate_gk(
        {.num_items = 40 + 10 * static_cast<std::size_t>(rng.index(3)),
         .num_constraints = 5},
        seed + submitted);
    service::SubmitRequest request;
    request.instance = std::make_shared<const mkp::Instance>(std::move(inst));
    request.options.preset = "quick";
    request.options.time_budget_seconds = 0.25;
    request.options.seed = seed + submitted;
    request.options.backend = parallel::Backend::kProcess;
    request.options.proc.worker_path = PTS_WORKER_BIN_FOR_TESTS;
    request.options.proc.max_respawns_per_slave = 3;
    request.options.proc.respawn_backoff_base_seconds = 0.02;
    request.options.proc.respawn_backoff_cap_seconds = 0.1;
    auto handle = server.submit(std::move(request));
    if (!handle) {
      // Valid options on an open service: any refusal here is a soak failure.
      std::printf("FAIL: submit refused: %s\n",
                  handle.status().to_string().c_str());
      return 1;
    }
    in_flight.push_back(std::move(*handle));
    ++submitted;

    // Every seventh job gets cancelled shortly after submission — the
    // cancel path must stay correct while workers are dying underneath it.
    if (submitted % 7 == 0) {
      ++cancels_requested;
      server.cancel(in_flight.back().id);
    }

    // Keep a bounded backlog: drain opportunistically, block when deep.
    while (in_flight.size() > 2 * pool.num_workers) {
      if (!drain_one(/*must_resolve=*/true)) return 1;
    }
    while (!in_flight.empty() && drain_one(/*must_resolve=*/false)) {
    }
  }

  // Submission stopped; every outstanding future must still resolve.
  while (!in_flight.empty()) {
    if (!drain_one(/*must_resolve=*/true)) return 1;
  }
  server.shutdown();

  const auto stats = server.stats();
  std::printf(
      "\nsoak result: %llu submitted, %llu resolved (%llu ok, %llu "
      "cancelled, %llu errored), %llu cancel requests, %llu slave faults "
      "observed\n",
      static_cast<unsigned long long>(submitted),
      static_cast<unsigned long long>(resolved),
      static_cast<unsigned long long>(ok),
      static_cast<unsigned long long>(cancelled),
      static_cast<unsigned long long>(errored),
      static_cast<unsigned long long>(cancels_requested),
      static_cast<unsigned long long>(faults_seen));
  std::printf("service: %llu completed, %llu cancelled, %llu slave faults\n",
              static_cast<unsigned long long>(stats.completed),
              static_cast<unsigned long long>(stats.cancelled),
              static_cast<unsigned long long>(stats.slave_faults));
  if (resolved != submitted) {
    std::printf("FAIL: %llu job(s) unaccounted for\n",
                static_cast<unsigned long long>(submitted - resolved));
    return 1;
  }
  std::printf("PASS: every future resolved\n");
  return 0;
}
