// Telemetry overhead gate (experiment index: observability). Runs the same
// seeded tabu search on the paper's largest GK shape (25x500) under three
// telemetry states:
//
//   off       runtime kill switch down: no counters, no anytime, no trace
//   counters  kill switch up, tracer disabled — the normal production state
//   trace     kill switch up and the event tracer recording
//
// and writes the measured slowdowns to BENCH_observability.json (override
// with --json=PATH). The contract: with telemetry compiled in but tracing
// disabled, the `counters` state stays within 2% of `off` on a full run.
// `--smoke` shrinks the workload for the ctest gate and loosens the bound to
// 10% — short runs on shared CI hardware jitter more than the margin we are
// trying to certify, so the tight check is reserved for full runs.
//
// The three states must also be bit-identical in search behavior: telemetry
// never draws from the RNG or changes control flow, so best value and move
// counts are asserted equal across states before any timing is trusted.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "mkp/generator.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "tabu/engine.hpp"
#include "util/rng.hpp"

namespace {

using namespace pts;

constexpr std::uint64_t kSeed = 20260807;

struct TelemetryState {
  const char* name;
  bool enabled;  ///< obs::set_telemetry_enabled
  bool tracing;  ///< obs::tracer().set_enabled
};

constexpr TelemetryState kStates[] = {
    {"off", false, false},
    {"counters", true, false},
    {"trace", true, true},
};

struct RunOutcome {
  double seconds = 0.0;
  double best_value = 0.0;
  std::uint64_t moves = 0;
};

RunOutcome run_once(const mkp::Instance& inst, const tabu::TsParams& params,
                    const TelemetryState& state) {
  obs::set_telemetry_enabled(state.enabled);
  obs::tracer().clear();
  obs::tracer().set_enabled(state.tracing);
  Rng rng(kSeed);
  const auto begin = std::chrono::steady_clock::now();
  const auto result = tabu::tabu_search_from_scratch(inst, params, rng);
  const auto end = std::chrono::steady_clock::now();
  obs::tracer().set_enabled(false);
  obs::tracer().clear();
  RunOutcome outcome;
  outcome.seconds = std::chrono::duration<double>(end - begin).count();
  outcome.best_value = result.best_value;
  outcome.moves = result.moves;
  return outcome;
}

int run_overhead_comparison(const std::string& json_path, bool smoke) {
  const auto inst =
      mkp::generate_gk({.num_items = 500, .num_constraints = 25}, kSeed);
  tabu::TsParams params;
  params.max_moves = smoke ? 4'000 : 40'000;
  const std::size_t rounds = smoke ? 3 : 7;
  const double tolerance = smoke ? 1.10 : 1.02;

  // Round-robin over the states so drift (thermal, scheduler) hits all three
  // equally; keep the per-state minimum, the standard noise-robust reducer.
  constexpr std::size_t kNumStates = std::size(kStates);
  double best_seconds[kNumStates];
  RunOutcome reference[kNumStates];
  bool identical = true;
  for (std::size_t r = 0; r < rounds; ++r) {
    for (std::size_t s = 0; s < kNumStates; ++s) {
      const auto outcome = run_once(inst, params, kStates[s]);
      if (r == 0) {
        best_seconds[s] = outcome.seconds;
        reference[s] = outcome;
      } else {
        best_seconds[s] = std::min(best_seconds[s], outcome.seconds);
      }
      identical = identical && outcome.best_value == reference[0].best_value &&
                  outcome.moves == reference[0].moves;
    }
  }
  // Leave the process in the default state for anything that runs after.
  obs::set_telemetry_enabled(true);

  const double off = best_seconds[0];
  bool ok = identical;
  std::string json = "{\n  \"shape\": {\"m\": 25, \"n\": 500},\n  \"moves\": " +
                     std::to_string(params.max_moves) +
                     ",\n  \"rounds\": " + std::to_string(rounds) +
                     ",\n  \"states\": [\n";
  for (std::size_t s = 0; s < kNumStates; ++s) {
    const double slowdown = off > 0.0 ? best_seconds[s] / off : 1.0;
    char row[192];
    std::snprintf(row, sizeof(row),
                  "    {\"name\": \"%s\", \"seconds\": %.4f, "
                  "\"slowdown_vs_off\": %.4f}%s\n",
                  kStates[s].name, best_seconds[s], slowdown,
                  s + 1 < kNumStates ? "," : "");
    json += row;
    std::printf("%-8s  %.4f s  %.2f%% vs off\n", kStates[s].name,
                best_seconds[s], (slowdown - 1.0) * 100.0);
  }
  const double counters_slowdown = off > 0.0 ? best_seconds[1] / off : 1.0;
  ok = ok && counters_slowdown <= tolerance;
  json += "  ],\n  \"identical_trajectories\": ";
  json += identical ? "true" : "false";
  char tail[128];
  std::snprintf(tail, sizeof(tail),
                ",\n  \"tolerance\": %.2f,\n  \"counters_within_tolerance\": %s\n}\n",
                tolerance, ok ? "true" : "false");
  json += tail;

  if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  if (!identical) {
    std::fprintf(stderr, "FAIL: telemetry state changed the search trajectory\n");
    return 1;
  }
  if (!ok) {
    std::fprintf(stderr,
                 "FAIL: counters state >%.0f%% slower than telemetry-off\n",
                 (tolerance - 1.0) * 100.0);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path = "BENCH_observability.json";
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[a], "--json=", 7) == 0) {
      json_path = argv[a] + 7;
    }
  }
  return run_overhead_comparison(json_path, smoke);
}
