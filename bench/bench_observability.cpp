// Telemetry overhead gate (experiment index: observability). Runs the same
// seeded tabu search on the paper's largest GK shape (25x500) under three
// telemetry states:
//
//   off       runtime kill switch down: no counters, no anytime, no trace
//   counters  kill switch up, tracer disabled — the normal production state
//   trace     kill switch up and the event tracer recording
//
// and writes the measured slowdowns to BENCH_observability.json (override
// with --json=PATH). The contract: with telemetry compiled in but tracing
// disabled, the `counters` state stays within 2% of `off` on a full run.
// `--smoke` shrinks the workload for the ctest gate and loosens the bound to
// 10% — short runs on shared CI hardware jitter more than the margin we are
// trying to certify, so the tight check is reserved for full runs.
//
// The three states must also be bit-identical in search behavior: telemetry
// never draws from the RNG or changes control flow, so best value and move
// counts are asserted equal across states before any timing is trusted.
//
// A second section repeats the off/counters comparison on the PROC backend,
// where counters-on additionally ships per-round TelemetryChunk frames from
// every worker back to the supervisor: the aggregation path itself must stay
// within the same bound, and the proc trajectories must match the thread
// backend's bit-for-bit in both states.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "mkp/generator.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "parallel/runner.hpp"
#include "tabu/engine.hpp"
#include "util/rng.hpp"

#ifndef PTS_WORKER_BIN_FOR_TESTS
#error "build must define PTS_WORKER_BIN_FOR_TESTS (see bench/CMakeLists.txt)"
#endif

namespace {

using namespace pts;

constexpr std::uint64_t kSeed = 20260807;
constexpr const char* kWorkerBin = PTS_WORKER_BIN_FOR_TESTS;

struct TelemetryState {
  const char* name;
  bool enabled;  ///< obs::set_telemetry_enabled
  bool tracing;  ///< obs::tracer().set_enabled
};

constexpr TelemetryState kStates[] = {
    {"off", false, false},
    {"counters", true, false},
    {"trace", true, true},
};

struct RunOutcome {
  double seconds = 0.0;
  double best_value = 0.0;
  std::uint64_t moves = 0;
};

RunOutcome run_once(const mkp::Instance& inst, const tabu::TsParams& params,
                    const TelemetryState& state) {
  obs::set_telemetry_enabled(state.enabled);
  obs::tracer().clear();
  obs::tracer().set_enabled(state.tracing);
  Rng rng(kSeed);
  const auto begin = std::chrono::steady_clock::now();
  const auto result = tabu::tabu_search_from_scratch(inst, params, rng);
  const auto end = std::chrono::steady_clock::now();
  obs::tracer().set_enabled(false);
  obs::tracer().clear();
  RunOutcome outcome;
  outcome.seconds = std::chrono::duration<double>(end - begin).count();
  outcome.best_value = result.best_value;
  outcome.moves = result.moves;
  return outcome;
}

RunOutcome run_parallel_once(const mkp::Instance& inst, bool proc,
                             const TelemetryState& state, bool smoke) {
  obs::set_telemetry_enabled(state.enabled);
  obs::tracer().clear();
  obs::tracer().set_enabled(state.tracing);
  parallel::ParallelConfig config;
  config.mode = parallel::CooperationMode::kCooperativeAdaptive;
  config.num_slaves = 3;
  config.search_iterations = smoke ? 3 : 6;
  config.work_per_slave_round = smoke ? 2'000 : 20'000;
  config.seed = kSeed;
  if (proc) {
    config.backend = parallel::Backend::kProcess;
    config.proc.worker_path = kWorkerBin;
  }
  const auto begin = std::chrono::steady_clock::now();
  const auto result = parallel::run_parallel_tabu_search(inst, config);
  const auto end = std::chrono::steady_clock::now();
  obs::tracer().set_enabled(false);
  obs::tracer().clear();
  RunOutcome outcome;
  outcome.seconds = std::chrono::duration<double>(end - begin).count();
  outcome.best_value = result.status.ok() ? result.best_value : -1.0;
  outcome.moves = result.total_moves;
  return outcome;
}

/// Proc-backend section: off vs counters on the real worker farm. Returns
/// the JSON object (appended into the main document) and sets `ok` false on
/// a trajectory mismatch or an overhead beyond `tolerance`.
std::string run_proc_comparison(const mkp::Instance& inst, bool smoke,
                                double tolerance, bool& ok) {
  // Only the first two states: tracing on the proc backend additionally
  // merges every worker's span stream, which is gated by the trace-schema
  // ctest rather than a timing bound (spawn jitter would drown it here).
  const std::size_t rounds = smoke ? 3 : 5;
  double best_seconds[2] = {0.0, 0.0};
  RunOutcome reference[2];
  // The thread backend in the counters state is the equivalence reference:
  // proc must reproduce its trajectory bit-for-bit in both states.
  const auto thread_ref =
      run_parallel_once(inst, /*proc=*/false, kStates[1], smoke);
  bool identical = true;
  for (std::size_t r = 0; r < rounds; ++r) {
    for (std::size_t s = 0; s < 2; ++s) {
      const auto outcome = run_parallel_once(inst, /*proc=*/true, kStates[s], smoke);
      if (r == 0) {
        best_seconds[s] = outcome.seconds;
        reference[s] = outcome;
      } else {
        best_seconds[s] = std::min(best_seconds[s], outcome.seconds);
      }
      identical = identical && outcome.best_value == thread_ref.best_value &&
                  outcome.moves == thread_ref.moves;
    }
  }
  // A smoke run here lasts ~50 ms, so the 10% relative margin is ~5 ms —
  // less than worker-spawn jitter on a busy host. Grant the smoke gate a
  // small absolute floor on top of the relative one so it measures the
  // counters path, not the scheduler; the full run keeps the pure ratio.
  const double abs_slack = smoke ? 0.008 : 0.0;
  // A real overhead regression survives re-measurement; a minimum inflated by
  // scheduler noise does not. Take extra paired rounds before failing — the
  // minimum only tightens, the tolerance never loosens.
  for (std::size_t extra = 0, max_extra = smoke ? 8 : 2; extra < max_extra;
       ++extra) {
    if (best_seconds[0] > 0.0 &&
        best_seconds[1] <= best_seconds[0] * tolerance + abs_slack) {
      break;
    }
    for (std::size_t s = 0; s < 2; ++s) {
      const auto outcome = run_parallel_once(inst, /*proc=*/true, kStates[s], smoke);
      best_seconds[s] = std::min(best_seconds[s], outcome.seconds);
      identical = identical && outcome.best_value == thread_ref.best_value &&
                  outcome.moves == thread_ref.moves;
    }
  }
  obs::set_telemetry_enabled(true);

  const double off = best_seconds[0];
  const double slowdown = off > 0.0 ? best_seconds[1] / off : 1.0;
  const bool within = best_seconds[1] <= off * tolerance + abs_slack;
  ok = ok && identical && within;
  for (std::size_t s = 0; s < 2; ++s) {
    std::printf("proc/%-8s  %.4f s  %.2f%% vs off\n", kStates[s].name,
                best_seconds[s],
                (off > 0.0 ? best_seconds[s] / off - 1.0 : 0.0) * 100.0);
  }
  if (!identical) {
    std::fprintf(stderr,
                 "FAIL: proc-backend trajectory diverged from the thread "
                 "backend (or between telemetry states)\n");
  }
  if (!within) {
    std::fprintf(stderr,
                 "FAIL: proc counters+aggregation state >%.0f%% slower than "
                 "telemetry-off\n",
                 (tolerance - 1.0) * 100.0);
  }
  char buf[384];
  std::snprintf(buf, sizeof(buf),
                "  \"proc\": {\n"
                "    \"off_seconds\": %.4f,\n"
                "    \"counters_seconds\": %.4f,\n"
                "    \"counters_slowdown_vs_off\": %.4f,\n"
                "    \"identical_to_thread_backend\": %s,\n"
                "    \"counters_within_tolerance\": %s\n  },\n",
                best_seconds[0], best_seconds[1], slowdown,
                identical ? "true" : "false", within ? "true" : "false");
  return buf;
}

int run_overhead_comparison(const std::string& json_path, bool smoke) {
  const auto inst =
      mkp::generate_gk({.num_items = 500, .num_constraints = 25}, kSeed);
  tabu::TsParams params;
  params.max_moves = smoke ? 4'000 : 40'000;
  const std::size_t rounds = smoke ? 3 : 7;
  const double tolerance = smoke ? 1.10 : 1.02;

  // Round-robin over the states so drift (thermal, scheduler) hits all three
  // equally; keep the per-state minimum, the standard noise-robust reducer.
  constexpr std::size_t kNumStates = std::size(kStates);
  double best_seconds[kNumStates];
  RunOutcome reference[kNumStates];
  bool identical = true;
  for (std::size_t r = 0; r < rounds; ++r) {
    for (std::size_t s = 0; s < kNumStates; ++s) {
      const auto outcome = run_once(inst, params, kStates[s]);
      if (r == 0) {
        best_seconds[s] = outcome.seconds;
        reference[s] = outcome;
      } else {
        best_seconds[s] = std::min(best_seconds[s], outcome.seconds);
      }
      identical = identical && outcome.best_value == reference[0].best_value &&
                  outcome.moves == reference[0].moves;
    }
  }
  // Same retry policy as the proc leg below: extra round-robin passes only
  // tighten the per-state minima, so re-measuring cannot mask a genuine
  // overhead — it only gives a descheduled pass a second chance.
  for (std::size_t extra = 0, max_extra = smoke ? 4 : 2; extra < max_extra;
       ++extra) {
    if (best_seconds[0] > 0.0 &&
        best_seconds[1] <= best_seconds[0] * tolerance) {
      break;
    }
    for (std::size_t s = 0; s < kNumStates; ++s) {
      const auto outcome = run_once(inst, params, kStates[s]);
      best_seconds[s] = std::min(best_seconds[s], outcome.seconds);
      identical = identical && outcome.best_value == reference[0].best_value &&
                  outcome.moves == reference[0].moves;
    }
  }
  // Leave the process in the default state for anything that runs after.
  obs::set_telemetry_enabled(true);

  const double off = best_seconds[0];
  bool ok = identical;
  std::string json = "{\n  \"shape\": {\"m\": 25, \"n\": 500},\n  \"moves\": " +
                     std::to_string(params.max_moves) +
                     ",\n  \"rounds\": " + std::to_string(rounds) +
                     ",\n  \"states\": [\n";
  for (std::size_t s = 0; s < kNumStates; ++s) {
    const double slowdown = off > 0.0 ? best_seconds[s] / off : 1.0;
    char row[192];
    std::snprintf(row, sizeof(row),
                  "    {\"name\": \"%s\", \"seconds\": %.4f, "
                  "\"slowdown_vs_off\": %.4f}%s\n",
                  kStates[s].name, best_seconds[s], slowdown,
                  s + 1 < kNumStates ? "," : "");
    json += row;
    std::printf("%-8s  %.4f s  %.2f%% vs off\n", kStates[s].name,
                best_seconds[s], (slowdown - 1.0) * 100.0);
  }
  const double counters_slowdown = off > 0.0 ? best_seconds[1] / off : 1.0;
  ok = ok && counters_slowdown <= tolerance;
  json += "  ],\n";
  // Proc-backend leg: counters + TelemetryChunk aggregation vs kill-switch
  // off on the spawned worker farm (smaller shape — spawn cost dominates the
  // big one, and the trajectory equality is what certifies correctness).
  const auto proc_inst =
      mkp::generate_gk({.num_items = 100, .num_constraints = 10}, kSeed);
  json += run_proc_comparison(proc_inst, smoke, tolerance, ok);
  json += "  \"identical_trajectories\": ";
  json += identical ? "true" : "false";
  char tail[128];
  std::snprintf(tail, sizeof(tail),
                ",\n  \"tolerance\": %.2f,\n  \"counters_within_tolerance\": %s\n}\n",
                tolerance, ok ? "true" : "false");
  json += tail;

  if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  if (!identical) {
    std::fprintf(stderr, "FAIL: telemetry state changed the search trajectory\n");
    return 1;
  }
  if (!ok) {
    std::fprintf(stderr,
                 "FAIL: counters state >%.0f%% slower than telemetry-off\n",
                 (tolerance - 1.0) * 100.0);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path = "BENCH_observability.json";
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[a], "--json=", 7) == 0) {
      json_path = argv[a] + 7;
    }
  }
  return run_overhead_comparison(json_path, smoke);
}
