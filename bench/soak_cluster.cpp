// Cluster chaos soak: a coordinator + worker mesh under sustained node
// failure. A churn thread kills (stop()) a random worker and boots a
// replacement on the same port on a schedule, while the node-level chaos
// knobs stall and partition the survivors' peer links; a submit storm of
// mixed-size jobs runs through all of it. The single hard invariant, same
// as soak_chaos: every submitted future resolves — zero hangs, zero lost
// jobs. Node churn may cost failovers, resubmissions and (past the retry
// budget) kUnavailable verdicts, never liveness.
//
//   ./soak_cluster --seconds=10 --nodes=3 --seed=1
//   ./soak_cluster --quick          2-second smoke (the ctest wiring)
//
// The 30-second soak runs under `ctest -L soak` when the build was
// configured with -DPTS_SOAK=ON.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <memory>
#include <thread>
#include <vector>

#include "cluster/coordinator.hpp"
#include "cluster/worker_node.hpp"
#include "mkp/generator.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

namespace {

using namespace pts;
using Clock = std::chrono::steady_clock;

/// Chaos defaults, injected only when the caller has not already set a knob
/// (so a CI job can dial the storm up or down through the environment).
/// The kill knob stays OFF here — these nodes live in the soak's own
/// process, so raise(SIGKILL) would take the harness down with them; real
/// out-of-process kills are test_cluster_bin.cpp's job. Node death in this
/// soak is the churn thread's stop()/replace cycle, which severs the
/// socket exactly the way SIGKILL does.
void default_chaos_env() {
  ::setenv("PTS_CHAOS_NODE_STALL_MS", "2", /*overwrite=*/0);
  ::setenv("PTS_CHAOS_NODE_PARTITION_PPM", "20000", /*overwrite=*/0);
  ::setenv("PTS_CHAOS_NODE_PARTITION_MS", "300", /*overwrite=*/0);
}

std::unique_ptr<cluster::WorkerNode> start_worker(std::uint16_t port) {
  cluster::WorkerNodeConfig config;
  config.service.num_workers = 2;
  config.server.port = port;
  auto node = cluster::WorkerNode::start(std::move(config));
  if (!node) {
    std::fprintf(stderr, "worker start failed: %s\n",
                 node.status().to_string().c_str());
    return nullptr;
  }
  return std::move(*node);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pts;
  const auto args = CliArgs::parse(argc, argv);
  const bool quick = args.get_bool("quick", false);
  const double seconds = quick ? 2.0 : args.get_int("seconds", 10);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const auto node_count =
      static_cast<std::size_t>(args.get_int("nodes", 3));
  default_chaos_env();

  std::vector<std::unique_ptr<cluster::WorkerNode>> nodes;
  cluster::CoordinatorConfig config;
  for (std::size_t k = 0; k < node_count; ++k) {
    auto node = start_worker(0);
    if (!node) return 1;
    config.peers.push_back({"127.0.0.1", node->port()});
    nodes.push_back(std::move(node));
  }
  config.heartbeat_interval_seconds = 0.05;
  config.heartbeat_misses = 5;
  config.resubmit_backoff_seconds = 0.02;
  config.max_resubmits = 6;
  auto started = cluster::Coordinator::start(config);
  if (!started) {
    std::fprintf(stderr, "coordinator start failed: %s\n",
                 started.status().to_string().c_str());
    return 1;
  }
  auto& coordinator = **started;
  std::printf("soak: %.0fs, %zu nodes, chaos stall/partition = %s ms / %s "
              "ppm (%s ms windows), churn every ~1.2s\n",
              seconds, node_count, std::getenv("PTS_CHAOS_NODE_STALL_MS"),
              std::getenv("PTS_CHAOS_NODE_PARTITION_PPM"),
              std::getenv("PTS_CHAOS_NODE_PARTITION_MS"));

  // Churn thread: stop a random node, give the coordinator a beat to
  // notice, boot a replacement on the same port.
  std::atomic<bool> stop_churn{false};
  std::atomic<std::uint64_t> churn_kills{0};
  std::thread churn([&] {
    Rng rng(seed ^ 0xC0DEULL);
    while (!stop_churn.load()) {
      for (int slice = 0; slice < 12 && !stop_churn.load(); ++slice) {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
      }
      if (stop_churn.load()) break;
      const auto pick = rng.index(nodes.size());
      const auto port = nodes[pick]->port();
      nodes[pick]->stop();
      churn_kills.fetch_add(1);
      std::this_thread::sleep_for(std::chrono::milliseconds(150));
      if (auto replacement = start_worker(port)) {
        nodes[pick] = std::move(replacement);
      }
    }
  });

  Rng rng(seed ^ 0x50A7ULL);
  std::deque<service::JobHandle> in_flight;
  std::uint64_t submitted = 0, resolved = 0, ok_jobs = 0, unavailable = 0,
                other = 0;
  bool ok = true;

  const auto drain_one = [&](bool must_resolve) -> bool {
    auto& front = in_flight.front();
    // A hung future is the exact bug this soak exists to catch, so a
    // timeout is a hard failure, not a skip.
    const auto wait = must_resolve ? std::chrono::seconds(120)
                                   : std::chrono::seconds(0);
    if (front.result.wait_for(wait) != std::future_status::ready) {
      return false;
    }
    const auto result = front.result.get();
    ++resolved;
    if (result.status.ok()) ++ok_jobs;
    else if (result.status.code() == StatusCode::kUnavailable) ++unavailable;
    else ++other;
    in_flight.pop_front();
    return true;
  };

  const auto deadline =
      Clock::now() + std::chrono::duration<double>(seconds);
  while (Clock::now() < deadline) {
    service::SubmitRequest request;
    request.instance = std::make_shared<const mkp::Instance>(mkp::generate_gk(
        {.num_items = 30 + 10 * (submitted % 3), .num_constraints = 4},
        seed + submitted));
    request.options.preset = "quick";
    request.options.time_budget_seconds = 0.05 + 0.1 * (submitted % 4);
    request.options.seed = seed + submitted;
    request.allow_dedup = (submitted % 5) != 0;
    auto handle = coordinator.submit(std::move(request));
    if (!handle) {
      std::fprintf(stderr, "submit refused: %s\n",
                   handle.status().to_string().c_str());
      ok = false;
      break;
    }
    ++submitted;
    in_flight.push_back(std::move(*handle));
    while (in_flight.size() > 8) {
      if (!drain_one(/*must_resolve=*/true)) {
        std::fprintf(stderr, "FAIL: future hung with %zu in flight\n",
                     in_flight.size());
        ok = false;
        in_flight.pop_front();
      }
    }
    std::this_thread::sleep_for(
        std::chrono::milliseconds(10 + rng.index(40)));
  }
  while (!in_flight.empty() && ok) {
    if (!drain_one(/*must_resolve=*/true)) {
      std::fprintf(stderr, "FAIL: future hung during final drain\n");
      ok = false;
    }
  }

  stop_churn.store(true);
  churn.join();
  (*started)->stop();

  const auto stats = coordinator.stats();
  std::printf(
      "soak done: %llu submitted, %llu resolved (%llu ok, %llu unavailable, "
      "%llu other), %llu churn kills, %llu failovers, %llu exhausted, "
      "%llu dedup hits\n",
      static_cast<unsigned long long>(submitted),
      static_cast<unsigned long long>(resolved),
      static_cast<unsigned long long>(ok_jobs),
      static_cast<unsigned long long>(unavailable),
      static_cast<unsigned long long>(other),
      static_cast<unsigned long long>(churn_kills.load()),
      static_cast<unsigned long long>(stats.failovers),
      static_cast<unsigned long long>(stats.exhausted),
      static_cast<unsigned long long>(stats.dedup_hits));
  if (resolved != submitted) {
    std::fprintf(stderr, "FAIL: %llu futures never resolved\n",
                 static_cast<unsigned long long>(submitted - resolved));
    ok = false;
  }
  std::printf("%s\n", ok ? "SOAK PASS" : "SOAK FAIL");
  return ok ? 0 : 1;
}
