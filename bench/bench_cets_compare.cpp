// Baseline comparison (paper §5 closing remark): "The execution times for
// these two benchmarks are very short comparing to those given in [7],
// which do not include the time needed to find the suitable parameter
// values for the TS algorithm." We stage that comparison: the fixed-
// parameter sequential baselines (our Figure-1 engine with default and with
// deliberately poor strategies, and critical-event tabu search after
// reference [6]) against the self-tuning parallel CTS2 — all under the SAME
// WALL-TIME budget, since a CETS step and an engine move cost very
// different amounts of work.
#include "common.hpp"

#include "baselines/grasp.hpp"
#include "baselines/simulated_annealing.hpp"
#include "mkp/generator.hpp"
#include "tabu/cets.hpp"
#include "tabu/engine.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace pts;
  const auto options = bench::BenchOptions::from_cli(argc, argv);

  const double time_budget = options.quick ? 0.08 : 0.4;
  const std::uint64_t seeds[] = {1, 2, 3};
  struct Shape {
    std::size_t m, n;
  };
  const Shape shapes[] = {{5, 100}, {10, 250}};

  TextTable table({"instance", "method", "mean best", "mean time (s)"});
  for (const auto& shape : shapes) {
    const auto inst = mkp::generate_gk(
        {.num_items = options.quick ? shape.n / 4 : shape.n,
         .num_constraints = shape.m},
        options.seed + shape.n);
    const std::string label =
        std::to_string(shape.m) + "x" + std::to_string(inst.num_items());

    auto add_row = [&](const std::string& method, auto&& runner) {
      RunningStats values, seconds;
      for (std::uint64_t seed : seeds) {
        Stopwatch watch;
        values.add(runner(seed));
        seconds.add(watch.elapsed_seconds());
      }
      table.add_row({label, method, TextTable::fmt(values.mean(), 1),
                     TextTable::fmt(seconds.mean(), 2)});
    };

    add_row("TS (default params)", [&](std::uint64_t seed) {
      Rng rng(seed);
      tabu::TsParams params;
      params.max_moves = 0;
      params.time_limit_seconds = time_budget;
      params.strategy.nb_local = 25;
      return tabu::tabu_search_from_scratch(inst, params, rng).best_value;
    });
    add_row("TS (poor params)", [&](std::uint64_t seed) {
      Rng rng(seed);
      tabu::TsParams params;
      params.strategy = tabu::Strategy{55, 8, 12};
      params.max_moves = 0;
      params.time_limit_seconds = time_budget;
      return tabu::tabu_search_from_scratch(inst, params, rng).best_value;
    });
    add_row("CETS [6] (fixed)", [&](std::uint64_t seed) {
      Rng rng(seed);
      tabu::CetsParams params;
      params.max_steps = 0;
      params.time_limit_seconds = time_budget;
      return tabu::critical_event_tabu_search(inst, rng, params).best_value;
    });
    add_row("SA baseline", [&](std::uint64_t seed) {
      Rng rng(seed);
      baselines::SaParams params;
      params.max_steps = 0;
      params.time_limit_seconds = time_budget;
      return baselines::simulated_annealing(inst, rng, params).best_value;
    });
    add_row("GRASP baseline", [&](std::uint64_t seed) {
      Rng rng(seed);
      baselines::GraspParams params;
      params.max_iterations = 0;
      params.time_limit_seconds = time_budget;
      return baselines::grasp(inst, rng, params).best_value;
    });
    add_row("CTS2 (self-tuning)", [&](std::uint64_t seed) {
      // Many small rounds; the time limit cuts the round loop.
      auto config = bench::default_cts2(seed, 4, 1000, 400);
      config.time_limit_seconds = time_budget;
      return parallel::run_parallel_tabu_search(inst, config).best_value;
    });
    add_row("CTS2 + path relink", [&](std::uint64_t seed) {
      auto config = bench::default_cts2(seed, 4, 1000, 400);
      config.time_limit_seconds = time_budget;
      config.relink_elites = true;
      return parallel::run_parallel_tabu_search(inst, config).best_value;
    });
  }

  bench::emit(options, "Baseline comparison",
              "fixed-parameter baselines vs self-tuning CTS2 at one TIME budget",
              table,
              "paper shape: a well-parameterized sequential TS is competitive, "
              "the badly parameterized one pays heavily — the tuning cost the "
              "paper says [7]'s timings omit; CTS2 reaches top quality with no "
              "hand tuning at all. CETS here is a simplified reimplementation "
              "of [6], reported for orientation, not as that paper's numbers.");
  return 0;
}
