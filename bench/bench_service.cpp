// Multi-tenant service storm bench (experiment index: service). Drives one
// SolverService through the four contracts the DESIGN.md §7 redesign makes,
// and writes the measured numbers to BENCH_service.json (override with
// --json=PATH):
//
//   bit_identical  a single-tenant, single-job submission through the new
//                  SubmitRequest API produces the same trajectory (best value
//                  AND move count) as the deprecated positional shim — the
//                  redesign added machinery, not behavior, on the one-job path
//   dedup_storm    N identical submissions from alternating tenants coalesce
//                  into ONE solve: every future resolves with the same start
//                  sequence and best value, and stats count N-1 dedup hits
//   warm_start     a repeat submission seeded from the warm-start store
//                  reaches the cold run's best value in strictly fewer moves
//                  than a cold control run chasing the same target
//   fairness       a two-tenant mixed-priority storm on a narrow pool: per-
//                  tenant queue-wait percentiles are recorded, and no
//                  tenant's p99 wait may exceed 3x the total serial solve
//                  time (the generous smoke bound for shared CI hardware)
//
// `--quick` shrinks the storm sizes for the ctest smoke (label: service).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "mkp/generator.hpp"
#include "service/solver_service.hpp"

namespace {

using namespace pts;

constexpr std::uint64_t kSeed = 20260808;

service::SubmitRequest make_request(std::shared_ptr<const mkp::Instance> inst,
                                    service::JobOptions options,
                                    service::TenantId tenant = {}) {
  service::SubmitRequest request;
  request.instance = std::move(inst);
  request.tenant = std::move(tenant);
  request.priority = options.priority;
  request.deadline_seconds = options.deadline_seconds;
  request.options = std::move(options);
  return request;
}

service::JobOptions quick_options(double budget, std::uint64_t seed) {
  service::JobOptions options;
  options.preset = "quick";
  options.time_budget_seconds = budget;
  options.seed = seed;
  return options;
}

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const auto rank = static_cast<std::size_t>(
      p * static_cast<double>(values.size() - 1) + 0.5);
  return values[std::min(rank, values.size() - 1)];
}

// -- Phase 1: the one-job path is bit-identical across the two APIs. --------

struct Trajectory {
  double best_value = 0.0;
  std::uint64_t total_moves = 0;
};

bool run_bit_identical(const std::shared_ptr<const mkp::Instance>& inst,
                       Trajectory* legacy, Trajectory* fresh) {
  // A wall-clock budget truncates the run at a load-dependent move, so the
  // comparison runs chase a probed target instead: both stop at the move
  // that reaches it, which is deterministic iff the trajectories match.
  auto options = quick_options(/*budget=*/10.0, kSeed);
  {
    service::SolverService server({.num_workers = 2});
    auto probe = options;
    probe.time_budget_seconds = 0.3;
    auto handle = server.submit(make_request(inst, probe));
    if (!handle) return false;
    const auto result = handle->result.get();
    if (!result.status.ok()) return false;
    options.target_value = result.best_value;
  }
  {
    service::SolverService server({.num_workers = 2});
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
    auto submission = server.submit(inst, options);
#pragma GCC diagnostic pop
    const auto result = submission.result.get();
    if (!result.status.ok() || !result.reached_target) {
      std::fprintf(stderr, "FAIL: legacy-shim run failed: %s\n",
                   result.status.to_string().c_str());
      return false;
    }
    *legacy = {result.best_value, result.total_moves};
  }
  {
    service::SolverService server({.num_workers = 2});
    auto handle = server.submit(make_request(inst, options));
    if (!handle) {
      std::fprintf(stderr, "FAIL: submit refused: %s\n",
                   handle.status().to_string().c_str());
      return false;
    }
    const auto result = handle->result.get();
    if (!result.status.ok() || !result.reached_target) {
      std::fprintf(stderr, "FAIL: new-API run failed: %s\n",
                   result.status.to_string().c_str());
      return false;
    }
    *fresh = {result.best_value, result.total_moves};
  }
  return true;
}

// -- Phase 2: an identical storm resolves as one solve. ---------------------

struct DedupOutcome {
  std::size_t group = 0;
  std::uint64_t dedup_hits = 0;
  bool one_solve = false;
};

bool run_dedup_storm(const std::shared_ptr<const mkp::Instance>& inst,
                     std::size_t group, DedupOutcome* out) {
  service::SolverService server({.num_workers = 2});
  // A blocker holds the whole 2-wide pool (quick asks 2 slots), so the
  // identical group coalesces while queued.
  auto blocker = server.submit(make_request(inst, quick_options(0.3, 77)));
  if (!blocker) return false;

  const auto options = quick_options(/*budget=*/0.5, kSeed + 1);
  std::vector<service::JobHandle> handles;
  for (std::size_t k = 0; k < group; ++k) {
    auto handle = server.submit(
        make_request(inst, options, k % 2 == 0 ? "prod" : "batch"));
    if (!handle) {
      std::fprintf(stderr, "FAIL: storm submit refused: %s\n",
                   handle.status().to_string().c_str());
      return false;
    }
    handles.push_back(std::move(*handle));
  }
  (void)blocker->result.get();

  std::uint64_t sequence = 0;
  double best = 0.0;
  bool one_solve = true;
  for (auto& handle : handles) {
    const auto result = handle.result.get();
    if (!result.status.ok()) one_solve = false;
    if (sequence == 0) {
      sequence = result.start_sequence;
      best = result.best_value;
    } else if (result.start_sequence != sequence ||
               result.best_value != best) {
      one_solve = false;
    }
  }
  *out = {group, server.stats().dedup_hits, one_solve};
  return out->one_solve && out->dedup_hits == group - 1;
}

// -- Phase 3: a warm-started repeat needs no more moves than a cold rerun. --

struct WarmOutcome {
  double cold_best = 0.0;
  std::uint64_t control_moves = 0;
  std::uint64_t warm_moves = 0;
  bool warm_started = false;
};

bool run_warm_start(const std::shared_ptr<const mkp::Instance>& inst,
                    WarmOutcome* out) {
  namespace fs = std::filesystem;
  const auto dir = fs::temp_directory_path() / "pts_bench_service_warm";
  std::error_code ec;
  fs::remove_all(dir, ec);

  const auto options = quick_options(/*budget=*/10.0, kSeed + 2);
  {
    // Cold run populates the store (saving happens on the job thread after
    // the future resolves, so poll for the entry before moving on).
    service::SolverService server(
        {.num_workers = 2, .warm_start_dir = dir.string()});
    auto handle = server.submit(make_request(inst, options));
    if (!handle) return false;
    const auto result = handle->result.get();
    if (!result.status.ok()) return false;
    out->cold_best = result.best_value;
    const auto give_up =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    bool saved = false;
    while (std::chrono::steady_clock::now() < give_up && !saved) {
      for (const auto& entry : fs::directory_iterator(dir, ec)) {
        if (entry.path().extension() == ".ptsw") saved = true;
      }
      if (!saved) std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    if (!saved) {
      std::fprintf(stderr, "FAIL: no warm-start entry appeared in %s\n",
                   dir.string().c_str());
      return false;
    }
  }
  {
    // Cold control: same seed, chasing the cold best as its target.
    service::SolverService server({.num_workers = 2});
    auto control = options;
    control.target_value = out->cold_best;
    auto handle = server.submit(make_request(inst, control));
    if (!handle) return false;
    const auto result = handle->result.get();
    if (!result.status.ok() || !result.reached_target) return false;
    out->control_moves = result.total_moves;
  }
  {
    // Warm repeat: a NEW service over the same store, exact-hit policy.
    service::SolverService server(
        {.num_workers = 2, .warm_start_dir = dir.string()});
    auto warm = options;
    warm.target_value = out->cold_best;
    auto request = make_request(inst, warm);
    request.warm_start = service::WarmStartPolicy::kExact;
    auto handle = server.submit(std::move(request));
    if (!handle) return false;
    const auto result = handle->result.get();
    if (!result.status.ok() || !result.reached_target) return false;
    out->warm_moves = result.total_moves;
    out->warm_started = result.warm_started;
  }
  fs::remove_all(dir, ec);
  if (!out->warm_started) {
    std::fprintf(stderr, "FAIL: repeat submission missed the store\n");
    return false;
  }
  if (out->warm_moves >= out->control_moves) {
    std::fprintf(stderr,
                 "FAIL: warm-started repeat needed %llu moves to reach the "
                 "cold best, cold control needed %llu\n",
                 static_cast<unsigned long long>(out->warm_moves),
                 static_cast<unsigned long long>(out->control_moves));
    return false;
  }
  return true;
}

// -- Phase 4: two-tenant storm, per-tenant wait percentiles. ----------------

struct TenantWaits {
  std::vector<double> waits;
  double p50 = 0.0;
  double p99 = 0.0;
};

bool run_fairness_storm(const std::shared_ptr<const mkp::Instance>& inst,
                        std::size_t jobs_per_tenant, TenantWaits* prod,
                        TenantWaits* batch, double* serial_seconds) {
  service::ServiceConfig config;
  config.num_workers = 2;
  config.tenants = {{.name = "prod", .weight = 3.0},
                    {.name = "batch", .weight = 1.0}};
  service::SolverService server(config);
  auto blocker = server.submit(make_request(inst, quick_options(0.2, 99)));
  if (!blocker) return false;

  std::vector<std::pair<bool, service::JobHandle>> handles;
  for (std::size_t k = 0; k < jobs_per_tenant; ++k) {
    // Mixed priorities: fairness must come from tenant weights, not from a
    // priority accident — batch even gets the higher priority values.
    for (const bool is_prod : {false, true}) {
      auto options = quick_options(/*budget=*/0.08, kSeed + 10 + k);
      options.priority = is_prod ? 0 : static_cast<int>(k % 3);
      auto handle = server.submit(
          make_request(inst, std::move(options), is_prod ? "prod" : "batch"));
      if (!handle) {
        std::fprintf(stderr, "FAIL: storm submit refused: %s\n",
                     handle.status().to_string().c_str());
        return false;
      }
      handles.emplace_back(is_prod, std::move(*handle));
    }
  }

  *serial_seconds = blocker->result.get().run_seconds;
  for (auto& [is_prod, handle] : handles) {
    auto result = handle.result.get();
    if (!result.status.ok()) {
      std::fprintf(stderr, "FAIL: storm job %llu resolved %s\n",
                   static_cast<unsigned long long>(result.id),
                   result.status.to_string().c_str());
      return false;
    }
    *serial_seconds += result.run_seconds;
    (is_prod ? prod : batch)->waits.push_back(result.queue_seconds);
  }
  for (auto* tenant : {prod, batch}) {
    tenant->p50 = percentile(tenant->waits, 0.50);
    tenant->p99 = percentile(tenant->waits, 0.99);
  }
  const double bound = 3.0 * *serial_seconds;
  for (const auto& [name, tenant] :
       {std::pair{"prod", prod}, std::pair{"batch", batch}}) {
    if (tenant->p99 > bound) {
      std::fprintf(stderr,
                   "FAIL: tenant %s p99 wait %.3fs exceeds 3x the serial "
                   "solve time (%.3fs)\n",
                   name, tenant->p99, bound);
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string json_path = "BENCH_service.json";
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "--quick") == 0) {
      quick = true;
    } else if (std::strncmp(argv[a], "--json=", 7) == 0) {
      json_path = argv[a] + 7;
    }
  }

  const auto inst = std::make_shared<const mkp::Instance>(
      mkp::generate_gk({.num_items = 60, .num_constraints = 5}, kSeed));
  const std::size_t group = quick ? 6 : 16;
  const std::size_t jobs_per_tenant = quick ? 8 : 24;

  bool ok = true;
  Trajectory legacy, fresh;
  if (!run_bit_identical(inst, &legacy, &fresh)) ok = false;
  const bool identical = legacy.best_value == fresh.best_value &&
                         legacy.total_moves == fresh.total_moves;
  if (!identical) {
    std::fprintf(stderr,
                 "FAIL: single-job trajectory diverged between the legacy "
                 "shim (%.1f in %llu moves) and SubmitRequest (%.1f in %llu)\n",
                 legacy.best_value,
                 static_cast<unsigned long long>(legacy.total_moves),
                 fresh.best_value,
                 static_cast<unsigned long long>(fresh.total_moves));
    ok = false;
  }
  std::printf("bit-identical: best %.1f in %llu moves through both APIs\n",
              fresh.best_value,
              static_cast<unsigned long long>(fresh.total_moves));

  DedupOutcome dedup;
  if (!run_dedup_storm(inst, group, &dedup)) {
    std::fprintf(stderr,
                 "FAIL: %zu identical submissions did not resolve as one "
                 "solve (%llu dedup hits)\n",
                 dedup.group,
                 static_cast<unsigned long long>(dedup.dedup_hits));
    ok = false;
  }
  std::printf("dedup storm: %zu identical submissions, %llu coalesced\n",
              dedup.group, static_cast<unsigned long long>(dedup.dedup_hits));

  WarmOutcome warm;
  if (!run_warm_start(inst, &warm)) ok = false;
  std::printf(
      "warm start: cold best %.1f; control reached it in %llu moves, "
      "warm-started repeat in %llu\n",
      warm.cold_best, static_cast<unsigned long long>(warm.control_moves),
      static_cast<unsigned long long>(warm.warm_moves));

  TenantWaits prod, batch;
  double serial_seconds = 0.0;
  if (!run_fairness_storm(inst, jobs_per_tenant, &prod, &batch,
                          &serial_seconds)) {
    ok = false;
  }
  std::printf(
      "fairness storm: %zu jobs/tenant on a 2-wide pool — prod wait "
      "p50/p99 %.3f/%.3fs, batch %.3f/%.3fs (serial %.2fs)\n",
      jobs_per_tenant, prod.p50, prod.p99, batch.p50, batch.p99,
      serial_seconds);

  char buffer[256];
  std::string json = "{\n";
  std::snprintf(buffer, sizeof buffer,
                "  \"bit_identical\": {\"best\": %.1f, \"moves\": %llu, "
                "\"identical\": %s},\n",
                fresh.best_value,
                static_cast<unsigned long long>(fresh.total_moves),
                identical ? "true" : "false");
  json += buffer;
  std::snprintf(buffer, sizeof buffer,
                "  \"dedup_storm\": {\"group\": %zu, \"dedup_hits\": %llu, "
                "\"one_solve\": %s},\n",
                dedup.group,
                static_cast<unsigned long long>(dedup.dedup_hits),
                dedup.one_solve ? "true" : "false");
  json += buffer;
  std::snprintf(buffer, sizeof buffer,
                "  \"warm_start\": {\"cold_best\": %.1f, \"control_moves\": "
                "%llu, \"warm_moves\": %llu, \"warm_started\": %s},\n",
                warm.cold_best,
                static_cast<unsigned long long>(warm.control_moves),
                static_cast<unsigned long long>(warm.warm_moves),
                warm.warm_started ? "true" : "false");
  json += buffer;
  std::snprintf(buffer, sizeof buffer,
                "  \"fairness\": {\"jobs_per_tenant\": %zu, \"serial_seconds\""
                ": %.3f,\n",
                jobs_per_tenant, serial_seconds);
  json += buffer;
  std::snprintf(buffer, sizeof buffer,
                "    \"prod\": {\"weight\": 3, \"p50_wait\": %.4f, "
                "\"p99_wait\": %.4f},\n",
                prod.p50, prod.p99);
  json += buffer;
  std::snprintf(buffer, sizeof buffer,
                "    \"batch\": {\"weight\": 1, \"p50_wait\": %.4f, "
                "\"p99_wait\": %.4f}},\n",
                batch.p50, batch.p99);
  json += buffer;
  json += std::string("  \"ok\": ") + (ok ? "true" : "false") + "\n}\n";

  if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  return ok ? 0 : 1;
}
