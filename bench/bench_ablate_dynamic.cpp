// Ablation A4 (paper §4.1): ways to set the tabu tenure dynamically. The
// paper argues REM's per-iteration cost grows with the iteration count and
// reactive hashing carries table overhead, and proposes master-driven tuning
// (CTS2) instead. Compare all four at one fixed work budget and surface each
// scheme's bookkeeping bill.
#include "common.hpp"

#include "mkp/generator.hpp"
#include "tabu/engine.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace pts;
  const auto options = bench::BenchOptions::from_cli(argc, argv);

  const auto inst = mkp::generate_gk(
      {.num_items = options.quick ? 80u : 200u, .num_constraints = 10},
      options.seed + 2);
  // REM is quadratic in the move count; keep the budget moderate so the
  // bench terminates while still exposing the overhead trend.
  const std::uint64_t moves = options.work(4000);
  const std::uint64_t seeds[] = {1, 2, 3};

  TextTable table({"scheme", "mean best", "mean time (s)", "overhead metric"});

  auto run_engine_variant = [&](const std::string& label,
                                tabu::TenureControl control) {
    RunningStats values, seconds;
    std::uint64_t overhead = 0;
    for (std::uint64_t seed : seeds) {
      Rng rng(seed);
      tabu::TsParams params;
      params.tenure_control = control;
      params.strategy.nb_local = 25;
      params.max_moves = moves;
      Stopwatch watch;
      const auto result = tabu::tabu_search_from_scratch(inst, params, rng);
      seconds.add(watch.elapsed_seconds());
      values.add(result.best_value);
      overhead += result.rem_flips_scanned + result.reactive_repetitions;
    }
    std::string metric = "-";
    if (control == tabu::TenureControl::kReverseElimination) {
      metric = TextTable::fmt(overhead) + " flips scanned";
    } else if (control == tabu::TenureControl::kReactive) {
      metric = TextTable::fmt(overhead) + " repetitions";
    }
    table.add_row({label, TextTable::fmt(values.mean(), 1),
                   TextTable::fmt(seconds.mean(), 2), metric});
  };

  run_engine_variant("fixed tenure", tabu::TenureControl::kFixed);
  run_engine_variant("REM (running list)", tabu::TenureControl::kReverseElimination);
  run_engine_variant("reactive (hashing)", tabu::TenureControl::kReactive);

  {
    // CTS2: master-tuned strategies, same total work (one slave so the
    // budget matches the sequential variants).
    RunningStats values, seconds;
    std::uint64_t retunes = 0;
    for (std::uint64_t seed : seeds) {
      auto config = bench::default_cts2(seed, 1, 16, moves / 16);
      Stopwatch watch;
      const auto result = parallel::run_parallel_tabu_search(inst, config);
      seconds.add(watch.elapsed_seconds());
      values.add(result.best_value);
      retunes += result.master.strategy_retunes;
    }
    table.add_row({"CTS2 master tuning", TextTable::fmt(values.mean(), 1),
                   TextTable::fmt(seconds.mean(), 2),
                   TextTable::fmt(retunes) + " retunes"});
  }

  bench::emit(options, "Ablation A4",
              "dynamic tenure schemes at one work budget (3 seeds)", table,
              "paper shape: REM pays a time overhead that grows with the move "
              "count; reactive pays hashing bookkeeping; the master-level tuning "
              "achieves comparable quality with negligible slave-side overhead.");
  return 0;
}
