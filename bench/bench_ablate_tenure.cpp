// Ablation A1 (paper §4.1 discussion): the tabu-list length trade-off.
// Small tenures intensify (quick returns to good regions, many revisits);
// large tenures diversify (few revisits) but over-constrain the move pool.
// Sweep the tenure on one GK instance at a fixed budget and report quality
// plus the revisit rate (distinct/total solution hashes).
#include "common.hpp"

#include <unordered_set>

#include "bounds/greedy.hpp"
#include "mkp/generator.hpp"
#include "tabu/engine.hpp"
#include "util/stats.hpp"

namespace {

// Counts distinct solutions along the trajectory via a trace.
class RevisitProbe : public pts::tabu::TsTrace {
 public:
  void on_move(std::uint64_t, double value, bool) override {
    ++total_;
    // Hash the objective value as a cheap trajectory signature; exact
    // duplicate values on GK instances almost always mean equal solutions.
    seen_.insert(static_cast<std::int64_t>(value * 16));
  }
  [[nodiscard]] double revisit_rate() const {
    return total_ == 0
               ? 0.0
               : 1.0 - static_cast<double>(seen_.size()) / static_cast<double>(total_);
  }

 private:
  std::unordered_set<std::int64_t> seen_;
  std::uint64_t total_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace pts;
  const auto options = bench::BenchOptions::from_cli(argc, argv);

  const auto inst = mkp::generate_gk(
      {.num_items = options.quick ? 80u : 250u, .num_constraints = 10}, options.seed);

  TextTable table({"tenure", "best value", "revisit rate", "aspiration hits"});
  for (std::size_t tenure : {1, 3, 5, 7, 10, 15, 20, 30, 40}) {
    RunningStats values;
    RunningStats revisits;
    std::uint64_t aspiration = 0;
    for (std::uint64_t seed : {1, 2, 3}) {
      Rng rng(seed);
      tabu::TsParams params;
      params.strategy.tabu_tenure = tenure;
      params.strategy.nb_local = 25;
      params.max_moves = options.work(8000);
      RevisitProbe probe;
      const auto result = tabu::tabu_search_from_scratch(inst, params, rng, &probe);
      values.add(result.best_value);
      revisits.add(probe.revisit_rate());
      aspiration += result.move_stats.aspiration_hits;
    }
    table.add_row({TextTable::fmt(tenure), TextTable::fmt(values.mean(), 1),
                   TextTable::fmt(revisits.mean(), 3), TextTable::fmt(aspiration)});
  }

  bench::emit(options, "Ablation A1", "tabu tenure sweep (mean of 3 seeds)", table,
              "paper shape: revisit rate falls as tenure grows; quality peaks at "
              "a mid tenure and degrades at both extremes.");
  return 0;
}
