// Cluster failover-latency bench (experiment index: cluster). Stands up a
// real coordinator + worker-node mesh on loopback and measures the two
// latencies DESIGN.md §11 puts bounds on, writing them to
// BENCH_cluster.json (override with --json=PATH):
//
//   dispatch_ms   submit -> resolved for a tiny target-capped job through
//                 the full stack (coordinator sharding + TCP round trips) —
//                 the steady-state overhead a cluster adds over a bare
//                 SolverService
//   failover_ms   node death -> the stranded job is re-dispatched to a
//                 survivor. Bounded by heartbeat detection (interval x
//                 misses) + jittered resubmit backoff + one tick; the gate
//                 asserts the p95 stays under 10x that analytic budget so a
//                 regression in detection or redispatch shows up as a test
//                 failure, not an ops surprise. Each round kills the node
//                 actually running the job and boots a replacement on the
//                 same port for the next round (rejoin catch-up included).
//
// `--quick` shrinks the round counts for the ctest smoke (label: cluster).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cluster/coordinator.hpp"
#include "cluster/worker_node.hpp"
#include "mkp/generator.hpp"

namespace {

using namespace pts;
using Clock = std::chrono::steady_clock;

constexpr std::uint64_t kSeed = 20260809;

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const auto rank = static_cast<std::size_t>(
      p * static_cast<double>(values.size() - 1) + 0.5);
  return values[std::min(rank, values.size() - 1)];
}

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

std::unique_ptr<cluster::WorkerNode> start_worker(std::uint16_t port = 0) {
  cluster::WorkerNodeConfig config;
  config.service.num_workers = 2;
  config.server.port = port;
  auto node = cluster::WorkerNode::start(std::move(config));
  if (!node) {
    std::fprintf(stderr, "worker start failed: %s\n",
                 node.status().to_string().c_str());
    return nullptr;
  }
  return std::move(*node);
}

service::SubmitRequest make_request(std::uint64_t seed, double budget) {
  service::SubmitRequest request;
  request.instance = std::make_shared<const mkp::Instance>(
      mkp::generate_gk({.num_items = 40, .num_constraints = 5}, seed));
  request.options.preset = "quick";
  request.options.time_budget_seconds = budget;
  request.options.seed = seed;
  return request;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pts;
  bool quick = false;
  std::string json_path = "BENCH_cluster.json";
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "--quick") == 0) {
      quick = true;
    } else if (std::strncmp(argv[a], "--json=", 7) == 0) {
      json_path = argv[a] + 7;
    }
  }
  const std::size_t dispatch_rounds = quick ? 6 : 20;
  const std::size_t failover_rounds = quick ? 3 : 8;

  auto w1 = start_worker();
  auto w2 = start_worker();
  if (!w1 || !w2) return 1;

  cluster::CoordinatorConfig config;
  config.peers = {{"127.0.0.1", w1->port()}, {"127.0.0.1", w2->port()}};
  config.heartbeat_interval_seconds = 0.05;
  config.heartbeat_misses = 4;
  config.resubmit_backoff_seconds = 0.02;
  // The analytic failover budget: full heartbeat silence + max first-try
  // backoff + a dispatch tick. The p95 gate sits at 10x this to absorb CI
  // scheduling noise without hiding an order-of-magnitude regression.
  const double analytic_budget_ms =
      (config.heartbeat_interval_seconds * config.heartbeat_misses +
       config.resubmit_backoff_seconds + 0.02) *
      1000.0;
  auto started = cluster::Coordinator::start(config);
  if (!started) {
    std::fprintf(stderr, "coordinator start failed: %s\n",
                 started.status().to_string().c_str());
    return 1;
  }
  auto& coordinator = **started;
  while (coordinator.alive_peers() < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  bool ok = true;

  // -- Steady-state dispatch overhead. -------------------------------------
  std::vector<double> dispatch_ms;
  for (std::size_t round = 0; round < dispatch_rounds; ++round) {
    const auto start = Clock::now();
    auto handle = coordinator.submit(make_request(kSeed + round, 0.05));
    if (!handle) {
      std::fprintf(stderr, "submit failed: %s\n",
                   handle.status().to_string().c_str());
      ok = false;
      break;
    }
    auto result = handle->result.get();
    if (!result.status.ok()) {
      std::fprintf(stderr, "job failed: %s\n", result.status.to_string().c_str());
      ok = false;
      break;
    }
    dispatch_ms.push_back(ms_since(start));
  }
  std::printf("dispatch: %zu jobs, p50 %.1f ms, p95 %.1f ms\n",
              dispatch_ms.size(), percentile(dispatch_ms, 0.50),
              percentile(dispatch_ms, 0.95));

  // -- Failover latency: node death -> redispatch on a survivor. -----------
  // Each round needs to know which node runs ITS job, and the only outside
  // signal is running_jobs(): both nodes must be fully idle before the
  // round's submit, or the previous round's still-cancelling job points the
  // victim search at the wrong node.
  const auto wait_until_idle = [&]() -> bool {
    const auto idle_deadline = Clock::now() + std::chrono::seconds(30);
    while (Clock::now() < idle_deadline) {
      if (w1->service().running_jobs() == 0 &&
          w1->service().queued_jobs() == 0 &&
          w2->service().running_jobs() == 0 &&
          w2->service().queued_jobs() == 0) {
        return true;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return false;
  };
  std::vector<double> failover_ms;
  for (std::size_t round = 0; round < failover_rounds && ok; ++round) {
    if (!wait_until_idle()) {
      std::fprintf(stderr, "round %zu: nodes never went idle\n", round);
      ok = false;
      break;
    }
    auto handle = coordinator.submit(make_request(1000 + round, 10.0));
    if (!handle) {
      ok = false;
      break;
    }
    // Find the node running the job; that one dies.
    cluster::WorkerNode* victim = nullptr;
    const auto find_deadline = Clock::now() + std::chrono::seconds(30);
    while (!victim && Clock::now() < find_deadline) {
      if (w1->service().running_jobs() > 0) victim = w1.get();
      else if (w2->service().running_jobs() > 0) victim = w2.get();
      else std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    if (!victim) {
      std::fprintf(stderr, "round %zu: job never started\n", round);
      ok = false;
      break;
    }
    const auto dispatched_before = coordinator.stats().dispatched;
    const auto victim_port = victim->port();
    victim->stop();
    const auto death = Clock::now();

    // Redispatch (not resolution) is the failover metric: the re-solve
    // itself costs the job's own budget, which is not the cluster's doing.
    const auto redispatch_deadline = Clock::now() + std::chrono::seconds(30);
    while (coordinator.stats().dispatched == dispatched_before &&
           Clock::now() < redispatch_deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    if (coordinator.stats().dispatched == dispatched_before) {
      std::fprintf(stderr, "round %zu: job was never re-dispatched\n", round);
      ok = false;
      break;
    }
    failover_ms.push_back(ms_since(death));
    if (!coordinator.cancel(handle->id)) {
      std::fprintf(stderr, "round %zu: cancel refused\n", round);
      ok = false;
    }
    (void)handle->result.get();  // resolves (cancelled); never hangs

    // A replacement joins on the dead node's port for the next round.
    auto replacement = start_worker(victim_port);
    if (!replacement) {
      ok = false;
      break;
    }
    if (victim == w1.get()) w1 = std::move(replacement);
    else w2 = std::move(replacement);
  }
  const double failover_p50 = percentile(failover_ms, 0.50);
  const double failover_p95 = percentile(failover_ms, 0.95);
  std::printf("failover: %zu rounds, p50 %.1f ms, p95 %.1f ms "
              "(analytic budget %.0f ms, gate %.0f ms)\n",
              failover_ms.size(), failover_p50, failover_p95,
              analytic_budget_ms, 10.0 * analytic_budget_ms);
  if (failover_ms.size() < failover_rounds) ok = false;
  if (failover_p95 > 10.0 * analytic_budget_ms) {
    std::fprintf(stderr,
                 "FAIL: failover p95 %.1f ms exceeds the %.0f ms gate\n",
                 failover_p95, 10.0 * analytic_budget_ms);
    ok = false;
  }

  const auto stats = coordinator.stats();
  std::printf("coordinator: %llu submitted, %llu dispatched, %llu failovers, "
              "%llu exhausted\n",
              static_cast<unsigned long long>(stats.submitted),
              static_cast<unsigned long long>(stats.dispatched),
              static_cast<unsigned long long>(stats.failovers),
              static_cast<unsigned long long>(stats.exhausted));
  if (stats.exhausted != 0) ok = false;
  // Every round must have produced exactly one real failover — fewer means
  // the victim search stopped the wrong node and the latencies are noise.
  if (ok && stats.failovers != failover_rounds) {
    std::fprintf(stderr, "FAIL: expected %zu failovers, measured %llu\n",
                 failover_rounds,
                 static_cast<unsigned long long>(stats.failovers));
    ok = false;
  }

  char buffer[256];
  std::string json = "{\n";
  std::snprintf(buffer, sizeof buffer,
                "  \"dispatch_rounds\": %zu,\n"
                "  \"dispatch_p50_ms\": %.3f,\n"
                "  \"dispatch_p95_ms\": %.3f,\n",
                dispatch_ms.size(), percentile(dispatch_ms, 0.50),
                percentile(dispatch_ms, 0.95));
  json += buffer;
  std::snprintf(buffer, sizeof buffer,
                "  \"failover_rounds\": %zu,\n"
                "  \"failover_p50_ms\": %.3f,\n"
                "  \"failover_p95_ms\": %.3f,\n"
                "  \"failover_gate_ms\": %.1f,\n",
                failover_ms.size(), failover_p50, failover_p95,
                10.0 * analytic_budget_ms);
  json += buffer;
  json += std::string("  \"ok\": ") + (ok ? "true" : "false") + "\n}\n";
  if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    ok = false;
  }

  (*started)->stop();
  return ok ? 0 : 1;
}
