// Ablation A6 (paper §4.2): the ISP's alpha threshold — "by changing
// dynamically the value of alpha it is possible to force or forbid threads
// to realize search in the same region": large alpha ~ macro
// intensification (weak slaves herded onto the global best), small alpha +
// random restarts ~ macro diversification. Sweep alpha and report quality,
// injections, restarts and how diverse the slaves' reports stay.
#include "common.hpp"

#include "mkp/generator.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace pts;
  const auto options = bench::BenchOptions::from_cli(argc, argv);

  const auto inst = mkp::generate_gk(
      {.num_items = options.quick ? 100u : 200u, .num_constraints = 10},
      options.seed + 4);
  const std::uint64_t seeds[] = {1, 2, 3};

  TextTable table({"alpha", "mean best", "global-best injections", "random restarts",
                   "mean report spread"});
  for (double alpha : {0.50, 0.80, 0.90, 0.95, 0.99, 0.999}) {
    RunningStats values, spread;
    std::uint64_t injections = 0, restarts = 0;
    for (std::uint64_t seed : seeds) {
      auto config = bench::default_cts2(seed, 4, 5, options.work(2500));
      config.isp.alpha = alpha;
      const auto result = parallel::run_parallel_tabu_search(inst, config);
      values.add(result.best_value);
      injections += result.master.global_best_injections;
      restarts += result.master.random_restarts;
      // Diversity proxy: spread of final values across slaves and rounds.
      RunningStats finals;
      for (const auto& log : result.master.timeline) finals.add(log.final_value);
      spread.add(finals.stddev());
    }
    table.add_row({TextTable::fmt(alpha, 3), TextTable::fmt(values.mean(), 1),
                   TextTable::fmt(injections), TextTable::fmt(restarts),
                   TextTable::fmt(spread.mean(), 1)});
  }

  bench::emit(options, "Ablation A6",
              "ISP alpha sweep: macro intensification vs diversification (3 seeds)",
              table,
              "paper shape: injections rise with alpha (threads herded together, "
              "report spread shrinks); small alpha keeps threads independent.");
  return 0;
}
