// Micro-kernel benchmarks (google-benchmark): the inner loops whose cost
// model the paper's work balancing assumes — O(m) add/drop, O(n m) move
// application scaling with nb_drop, plus the LP solve and pool-spread
// kernels the master relies on.
//
// In addition to the google-benchmark suite, a self-timed comparison of the
// fused column-major fit_and_score sweep against the historical two-pass
// row-major scalar path always runs first and writes machine-readable
// results to BENCH_kernels.json (override with --json=PATH). `--smoke`
// skips the google-benchmark suite, shrinks the comparison to well under
// five seconds, and exits nonzero if the fused kernel fails to beat the
// scalar reference — the ctest `bench_smoke_kernels` regression gate.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bounds/greedy.hpp"
#include "bounds/lagrangian.hpp"
#include "bounds/reduction.hpp"
#include "bounds/simplex.hpp"
#include "mkp/generator.hpp"
#include "tabu/cets.hpp"
#include "tabu/elite_pool.hpp"
#include "tabu/kernels.hpp"
#include "tabu/moves.hpp"
#include "tabu/path_relink.hpp"
#include "util/rng.hpp"

namespace {

using namespace pts;

mkp::Instance bench_instance(std::size_t n, std::size_t m) {
  return mkp::generate_gk({.num_items = n, .num_constraints = m}, 12345);
}

// A mid-search Add-step state: greedy-fill, then drop a few items so there
// are real candidates with mixed fit/non-fit outcomes, like the scans the
// tabu engine actually runs.
mkp::Solution sweep_state(const mkp::Instance& inst) {
  auto x = bounds::greedy_construct(inst);
  Rng rng(99);
  const auto selected = x.selected_items();
  for (std::size_t k = 0; k < selected.size() / 4; ++k) {
    const std::size_t j = selected[rng.index(selected.size())];
    if (x.contains(j)) x.drop(j);
  }
  return x;
}

// One full candidate sweep with the pre-mirror path: every unselected item
// pays the strided fits() pass and, when feasible, the strided score pass.
double sweep_scalar_reference(const mkp::Solution& x) {
  const std::size_t n = x.num_items();
  double acc = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    if (x.contains(j)) continue;
    const auto fs = tabu::kernels::fit_and_score_reference(x, j);
    if (fs.fit) acc += fs.score;
  }
  return acc;
}

// The same sweep through the fused column-major kernel with O(1) pruning
// and a word-level zero-scan of the selection mask.
double sweep_fused(const mkp::Solution& x) {
  const std::size_t n = x.num_items();
  const BitVec& bits = x.bits();
  double acc = 0.0;
  for (std::size_t j = bits.next_zero(0); j < n; j = bits.next_zero(j + 1)) {
    if (tabu::kernels::prune_add_candidate(x, j)) continue;
    const auto fs = tabu::kernels::fit_and_score(x, j);
    if (fs.fit) acc += fs.score;
  }
  return acc;
}

struct SweepTiming {
  double scalar_ns_per_sweep = 0.0;
  double fused_ns_per_sweep = 0.0;
  [[nodiscard]] double speedup() const {
    return fused_ns_per_sweep > 0.0 ? scalar_ns_per_sweep / fused_ns_per_sweep : 0.0;
  }
};

template <typename Fn>
double time_ns_per_call(Fn&& fn, std::size_t reps) {
  volatile double sink = 0.0;
  // Warm-up pass so both paths start with the same cache state.
  sink = sink + fn();
  const auto begin = std::chrono::steady_clock::now();
  for (std::size_t r = 0; r < reps; ++r) sink = sink + fn();
  const auto end = std::chrono::steady_clock::now();
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(end - begin).count()) /
         static_cast<double>(reps);
}

SweepTiming time_sweeps(const mkp::Instance& inst, std::size_t reps) {
  const auto x = sweep_state(inst);
  SweepTiming timing;
  // Interleave A/B/A/B halves so neither path benefits from running last.
  timing.scalar_ns_per_sweep = time_ns_per_call([&] { return sweep_scalar_reference(x); }, reps / 2);
  timing.fused_ns_per_sweep = time_ns_per_call([&] { return sweep_fused(x); }, reps / 2);
  timing.scalar_ns_per_sweep =
      0.5 * (timing.scalar_ns_per_sweep +
             time_ns_per_call([&] { return sweep_scalar_reference(x); }, reps / 2));
  timing.fused_ns_per_sweep =
      0.5 * (timing.fused_ns_per_sweep +
             time_ns_per_call([&] { return sweep_fused(x); }, reps / 2));
  return timing;
}

/// Writes BENCH_kernels.json and returns 0 when the fused kernel is no more
/// than `tolerance` slower than the scalar reference on every shape.
int run_kernel_comparison(const std::string& json_path, bool smoke) {
  struct Shape {
    std::size_t m;
    std::size_t n;
  };
  // 25x500 is the paper's largest GK shape — the acceptance target.
  static constexpr Shape kShapes[] = {{5, 100}, {10, 250}, {25, 500}};
  const std::size_t reps = smoke ? 2000 : 20000;
  constexpr double kTolerance = 1.10;  // fail only if >10% slower

  std::string json = "{\n  \"unit\": \"ns_per_sweep\",\n  \"reps\": " +
                     std::to_string(reps) + ",\n  \"shapes\": [\n";
  bool ok = true;
  for (std::size_t s = 0; s < std::size(kShapes); ++s) {
    const auto& shape = kShapes[s];
    const auto inst = bench_instance(shape.n, shape.m);
    const auto timing = time_sweeps(inst, reps);
    ok = ok && timing.fused_ns_per_sweep <= timing.scalar_ns_per_sweep * kTolerance;
    char row[256];
    std::snprintf(row, sizeof(row),
                  "    {\"m\": %zu, \"n\": %zu, \"scalar_ns\": %.1f, "
                  "\"fused_ns\": %.1f, \"speedup\": %.2f}%s\n",
                  shape.m, shape.n, timing.scalar_ns_per_sweep,
                  timing.fused_ns_per_sweep, timing.speedup(),
                  s + 1 < std::size(kShapes) ? "," : "");
    json += row;
    std::printf("fit_and_score sweep %zux%zu: scalar %.0f ns, fused %.0f ns, %.2fx\n",
                shape.m, shape.n, timing.scalar_ns_per_sweep,
                timing.fused_ns_per_sweep, timing.speedup());
  }
  json += "  ],\n  \"fused_within_tolerance\": ";
  json += ok ? "true" : "false";
  json += "\n}\n";

  if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  if (!ok) {
    std::fprintf(stderr,
                 "FAIL: fused kernel slower than the scalar reference by >10%%\n");
    return 1;
  }
  return 0;
}

void BM_FitScoreSweepScalarRef(benchmark::State& state) {
  const auto inst = bench_instance(static_cast<std::size_t>(state.range(1)),
                                   static_cast<std::size_t>(state.range(0)));
  const auto x = sweep_state(inst);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sweep_scalar_reference(x));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(1));
}
BENCHMARK(BM_FitScoreSweepScalarRef)->Args({5, 100})->Args({25, 500});

void BM_FitScoreSweepFused(benchmark::State& state) {
  const auto inst = bench_instance(static_cast<std::size_t>(state.range(1)),
                                   static_cast<std::size_t>(state.range(0)));
  const auto x = sweep_state(inst);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sweep_fused(x));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(1));
}
BENCHMARK(BM_FitScoreSweepFused)->Args({5, 100})->Args({25, 500});

void BM_SolutionAddDrop(benchmark::State& state) {
  const auto inst = bench_instance(500, static_cast<std::size_t>(state.range(0)));
  mkp::Solution s(inst);
  std::size_t j = 0;
  for (auto _ : state) {
    s.add(j);
    s.drop(j);
    j = (j + 1) % inst.num_items();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2);
}
BENCHMARK(BM_SolutionAddDrop)->Arg(5)->Arg(10)->Arg(25);

void BM_MoveApply(benchmark::State& state) {
  const auto inst = bench_instance(static_cast<std::size_t>(state.range(0)), 10);
  auto x = bounds::greedy_construct(inst);
  tabu::TabuList tabu(inst.num_items());
  tabu::MoveKernel kernel(inst);
  tabu::MoveStats stats;
  tabu::Strategy strategy;
  strategy.nb_drop = static_cast<std::size_t>(state.range(1));
  Rng rng(1);
  std::uint64_t iter = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        kernel.apply(x, tabu, ++iter, strategy, 7, 1e18, rng, stats));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MoveApply)
    ->Args({100, 1})
    ->Args({100, 4})
    ->Args({250, 1})
    ->Args({250, 4})
    ->Args({500, 1})
    ->Args({500, 4});

void BM_GreedyConstruct(benchmark::State& state) {
  const auto inst = bench_instance(static_cast<std::size_t>(state.range(0)), 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bounds::greedy_construct(inst));
  }
}
BENCHMARK(BM_GreedyConstruct)->Arg(100)->Arg(500);

void BM_LpRelaxation(benchmark::State& state) {
  const auto inst = bench_instance(static_cast<std::size_t>(state.range(0)),
                                   static_cast<std::size_t>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(bounds::solve_lp_relaxation(inst));
  }
}
BENCHMARK(BM_LpRelaxation)->Args({100, 5})->Args({250, 10})->Args({500, 25});

void BM_HammingDistance(benchmark::State& state) {
  const auto inst = bench_instance(static_cast<std::size_t>(state.range(0)), 5);
  Rng rng(2);
  const auto a = bounds::random_feasible(inst, rng);
  const auto b = bounds::random_feasible(inst, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.hamming_distance(b));
  }
}
BENCHMARK(BM_HammingDistance)->Arg(500)->Arg(2000);

void BM_ElitePoolSpread(benchmark::State& state) {
  const auto inst = bench_instance(250, 10);
  Rng rng(3);
  tabu::ElitePool pool(static_cast<std::size_t>(state.range(0)));
  for (int k = 0; k < state.range(0) * 3; ++k) {
    pool.offer(bounds::random_feasible(inst, rng));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(pool.mean_pairwise_hamming());
  }
}
BENCHMARK(BM_ElitePoolSpread)->Arg(5)->Arg(20);

void BM_CetsStep(benchmark::State& state) {
  // One add/drop oscillation step, amortized over a bounded run.
  const auto inst = bench_instance(static_cast<std::size_t>(state.range(0)), 10);
  Rng rng(4);
  for (auto _ : state) {
    tabu::CetsParams params;
    params.max_steps = 256;
    benchmark::DoNotOptimize(tabu::critical_event_tabu_search(inst, rng, params));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 256);
}
BENCHMARK(BM_CetsStep)->Arg(100)->Arg(250);

void BM_PathRelink(benchmark::State& state) {
  const auto inst = bench_instance(static_cast<std::size_t>(state.range(0)), 10);
  Rng rng(5);
  const auto a = bounds::greedy_randomized(inst, rng);
  const auto b = bounds::random_feasible(inst, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tabu::path_relink(a, b));
  }
}
BENCHMARK(BM_PathRelink)->Arg(100)->Arg(250);

void BM_ReducedCostFixing(benchmark::State& state) {
  const auto inst = bench_instance(static_cast<std::size_t>(state.range(0)), 10);
  const double lb = bounds::greedy_construct(inst).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(bounds::reduced_cost_fixing(inst, lb));
  }
}
BENCHMARK(BM_ReducedCostFixing)->Arg(100)->Arg(250);

void BM_LagrangianDual(benchmark::State& state) {
  const auto inst = bench_instance(250, static_cast<std::size_t>(state.range(0)));
  bounds::LagrangianOptions options;
  options.max_iterations = 100;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bounds::solve_lagrangian(inst, options));
  }
}
BENCHMARK(BM_LagrangianDual)->Arg(5)->Arg(25);

void BM_GenerateGk(benchmark::State& state) {
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mkp::generate_gk(
        {.num_items = static_cast<std::size_t>(state.range(0)),
         .num_constraints = 25},
        ++seed));
  }
}
BENCHMARK(BM_GenerateGk)->Arg(100)->Arg(500);

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path = "BENCH_kernels.json";
  // Strip our flags before handing argv to google-benchmark.
  std::vector<char*> passthrough = {argv[0]};
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[a], "--json=", 7) == 0) {
      json_path = argv[a] + 7;
    } else {
      passthrough.push_back(argv[a]);
    }
  }
  const int comparison = run_kernel_comparison(json_path, smoke);
  if (smoke) return comparison;

  argc = static_cast<int>(passthrough.size());
  argv = passthrough.data();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return comparison;
}
