// Micro-kernel benchmarks (google-benchmark): the inner loops whose cost
// model the paper's work balancing assumes — O(m) add/drop, O(n m) move
// application scaling with nb_drop, plus the LP solve and pool-spread
// kernels the master relies on.
//
// In addition to the google-benchmark suite, a self-timed comparison of the
// fused column-major fit_and_score sweep against the historical two-pass
// row-major scalar path always runs first and writes machine-readable
// results to BENCH_kernels.json (override with --json=PATH). The table has
// three columns per shape — two-pass scalar reference, fused kernel pinned
// to scalar dispatch, fused kernel on the best vector kind — plus two
// self-timed sections: the cooperation round-trip latency (scatter→gather,
// thread vs process backend) and the core-reduction work comparison on the
// paper's 10x500 / 30x500 GK shapes. `--smoke` skips the google-benchmark
// suite, shrinks everything to well under the ctest timeout, and exits
// nonzero if the fused kernel fails to beat the scalar reference or the
// vector kind regresses against fused-scalar — the `bench_smoke_kernels`
// regression gate.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bounds/core.hpp"
#include "bounds/greedy.hpp"
#include "bounds/lagrangian.hpp"
#include "bounds/reduction.hpp"
#include "bounds/simplex.hpp"
#include "mkp/generator.hpp"
#include "parallel/runner.hpp"
#include "tabu/cets.hpp"
#include "tabu/elite_pool.hpp"
#include "tabu/kernels.hpp"
#include "tabu/moves.hpp"
#include "tabu/path_relink.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"

namespace {

using namespace pts;

mkp::Instance bench_instance(std::size_t n, std::size_t m) {
  return mkp::generate_gk({.num_items = n, .num_constraints = m}, 12345);
}

// A mid-search Add-step state: greedy-fill, then drop a few items so there
// are real candidates with mixed fit/non-fit outcomes, like the scans the
// tabu engine actually runs.
mkp::Solution sweep_state(const mkp::Instance& inst) {
  auto x = bounds::greedy_construct(inst);
  Rng rng(99);
  const auto selected = x.selected_items();
  for (std::size_t k = 0; k < selected.size() / 4; ++k) {
    const std::size_t j = selected[rng.index(selected.size())];
    if (x.contains(j)) x.drop(j);
  }
  return x;
}

// One full candidate sweep with the pre-mirror path: every unselected item
// pays the strided fits() pass and, when feasible, the strided score pass.
double sweep_scalar_reference(const mkp::Solution& x) {
  const std::size_t n = x.num_items();
  double acc = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    if (x.contains(j)) continue;
    const auto fs = tabu::kernels::fit_and_score_reference(x, j);
    if (fs.fit) acc += fs.score;
  }
  return acc;
}

// The same sweep through the fused column-major kernel with O(1) pruning
// and a word-level zero-scan of the selection mask.
double sweep_fused(const mkp::Solution& x) {
  const std::size_t n = x.num_items();
  const BitVec& bits = x.bits();
  // One AddScan per sweep, exactly as the engine's select_add does: the
  // dispatch resolve and pointer bundle are hoisted, candidates evaluated
  // through the same prune + checked/certain-fit bodies.
  const tabu::kernels::AddScan scan(x);
  double acc = 0.0;
  for (std::size_t j = bits.next_zero(0); j < n; j = bits.next_zero(j + 1)) {
    const auto fs = scan(j);
    if (fs.fit) acc += fs.score;
  }
  return acc;
}

struct SweepTiming {
  double scalar_ns_per_sweep = 0.0;  ///< two-pass row-major reference
  double fused_ns_per_sweep = 0.0;   ///< fused kernel, dispatch pinned to scalar
  double simd_ns_per_sweep = 0.0;    ///< fused kernel, best supported vector kind
  [[nodiscard]] double speedup() const {
    return fused_ns_per_sweep > 0.0 ? scalar_ns_per_sweep / fused_ns_per_sweep : 0.0;
  }
  [[nodiscard]] double simd_speedup() const {
    return simd_ns_per_sweep > 0.0 ? fused_ns_per_sweep / simd_ns_per_sweep : 0.0;
  }
};

template <typename Fn>
double time_ns_per_call(Fn&& fn, std::size_t reps) {
  volatile double sink = 0.0;
  // Warm-up pass so both paths start with the same cache state.
  sink = sink + fn();
  const auto begin = std::chrono::steady_clock::now();
  for (std::size_t r = 0; r < reps; ++r) sink = sink + fn();
  const auto end = std::chrono::steady_clock::now();
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(end - begin).count()) /
         static_cast<double>(reps);
}

SweepTiming time_sweeps(const mkp::Instance& inst, std::size_t reps) {
  const auto x = sweep_state(inst);
  const auto previous = simd::active();
  const auto vector_kind = simd::best_supported();
  SweepTiming timing;
  // Interleave A/B/C/A/B/C halves so no path benefits from running last.
  // The dispatch pin makes the columns honest: "fused" is the PR 1 scalar
  // kernel even on AVX2 hardware, "simd" is the vector path.
  const auto scalar_pass = [&] {
    simd::set_active(simd::Kind::kScalar);
    return time_ns_per_call([&] { return sweep_scalar_reference(x); }, reps / 2);
  };
  const auto fused_pass = [&] {
    simd::set_active(simd::Kind::kScalar);
    return time_ns_per_call([&] { return sweep_fused(x); }, reps / 2);
  };
  const auto simd_pass = [&] {
    simd::set_active(vector_kind);
    return time_ns_per_call([&] { return sweep_fused(x); }, reps / 2);
  };
  // Keep the MINIMUM over three interleaved passes, not an average: a pass
  // that loses the core to a neighbour inflates a mean (and once flipped the
  // A/B verdict on shared CI hardware) but can never deflate a minimum.
  timing.scalar_ns_per_sweep = scalar_pass();
  timing.fused_ns_per_sweep = fused_pass();
  timing.simd_ns_per_sweep = simd_pass();
  for (int pass = 0; pass < 2; ++pass) {
    timing.scalar_ns_per_sweep =
        std::min(timing.scalar_ns_per_sweep, scalar_pass());
    timing.fused_ns_per_sweep = std::min(timing.fused_ns_per_sweep, fused_pass());
    timing.simd_ns_per_sweep = std::min(timing.simd_ns_per_sweep, simd_pass());
  }
  simd::set_active(previous);
  return timing;
}

/// Wall-clock per cooperation round (scatter assignments → gather reports)
/// with a work budget small enough that the search itself is noise: the
/// number is dominated by the mailbox/socket round trip plus the barrier.
double coop_round_trip_us(parallel::Backend backend, std::size_t rounds) {
  const auto inst = bench_instance(100, 5);
  parallel::ParallelConfig config;
  config.mode = parallel::CooperationMode::kCooperativePool;
  config.backend = backend;
  config.num_slaves = 4;
  config.search_iterations = rounds;
  config.work_per_slave_round = 32;
  config.seed = 7;
  const auto result = run_parallel_tabu_search(inst, config);
  if (!result.status.ok() || result.master.rounds_completed == 0) {
    std::fprintf(stderr, "coop latency (%s backend): %s\n",
                 parallel::to_string(backend).c_str(),
                 result.status.to_string().c_str());
    return -1.0;
  }
  return result.seconds * 1e6 / static_cast<double>(result.master.rounds_completed);
}

struct CoreComparison {
  bool engaged = false;
  bool reached = false;          ///< core run reached the full run's best
  double full_best = 0.0;
  double gap_eps = 0.0;          ///< approximate-core tolerance used
  std::uint64_t full_moves = 0;  ///< moves the full-space run spent
  std::uint64_t core_moves = 0;  ///< moves the core run spent to reach it
  std::size_t fixed = 0;         ///< variables the LP fixed
};

/// Full-space run for a fixed round budget, then a core-reduced run chasing
/// the full run's best as target. On the GK family strict (gap_eps = 0)
/// reduced-cost fixing cannot bite — every reduced cost is smaller than the
/// ~1% LP–incumbent gap — so this comparison runs the documented
/// approximate core: the incumbent as lower-bound hint plus a gap_eps of
/// 95% of the remaining LP gap, the classic core-problem trade (a few
/// hundred variables fixed, optimality certificate given up). Everything is
/// seeded, so the moves columns are machine-independent.
CoreComparison compare_core_reduction(std::size_t n, std::size_t m,
                                      std::size_t rounds, std::uint64_t work) {
  const auto inst = bench_instance(n, m);
  parallel::ParallelConfig config;
  config.mode = parallel::CooperationMode::kCooperativeAdaptive;
  config.num_slaves = 3;
  config.search_iterations = rounds;
  config.work_per_slave_round = work;
  config.seed = 13;

  const auto full = run_parallel_tabu_search(inst, config);
  CoreComparison out;
  if (!full.status.ok()) return out;
  out.full_best = full.best_value;
  out.full_moves = full.total_moves;

  auto core_config = config;
  core_config.core.enabled = true;
  core_config.core.min_fixed_fraction = 0.0;
  core_config.core.lower_bound_hint = full.best_value;
  // One strict probe for the LP objective, then 95% of the gap as the
  // approximate-core tolerance.
  const auto strict = bounds::build_core_problem(inst, core_config.core);
  if (strict.fixing.lp_solved) {
    out.gap_eps =
        0.95 * std::max(0.0, strict.fixing.lp_objective - full.best_value);
  }
  core_config.core.gap_eps = out.gap_eps;
  core_config.target_value = full.best_value;
  core_config.search_iterations = rounds * 4;  // headroom; target stops it early
  const auto core = run_parallel_tabu_search(inst, core_config);
  if (!core.status.ok()) return out;
  out.engaged = core.core_engaged;
  out.fixed = core.core_fixed_zero + core.core_fixed_one;
  out.reached = core.best_value >= full.best_value;
  out.core_moves = core.total_moves;
  return out;
}

/// Writes BENCH_kernels.json and returns 0 when the fused kernel is no more
/// than `tolerance` slower than the scalar reference on every shape AND the
/// vector kind never regresses against fused-scalar.
int run_kernel_comparison(const std::string& json_path, bool smoke) {
  struct Shape {
    std::size_t m;
    std::size_t n;
  };
  // 25x500 is the paper's largest GK shape — the acceptance target; 10x500
  // and 30x500 are the core-reduction shapes, timed here too so the sweep
  // columns and the core section describe the same instances.
  static constexpr Shape kShapes[] = {
      {5, 100}, {10, 250}, {10, 500}, {25, 500}, {30, 500}};
  const std::size_t reps = smoke ? 1200 : 20000;
  constexpr double kTolerance = 1.10;  // fail only if >10% slower

  const auto vector_kind = simd::best_supported();
  std::string json = "{\n  \"unit\": \"ns_per_sweep\",\n  \"reps\": " +
                     std::to_string(reps) + ",\n  \"simd_kind\": \"" +
                     simd::to_string(vector_kind) + "\",\n  \"shapes\": [\n";
  bool ok = true;
  for (std::size_t s = 0; s < std::size(kShapes); ++s) {
    const auto& shape = kShapes[s];
    const auto inst = bench_instance(shape.n, shape.m);
    // A genuine kernel regression fails EVERY measurement; a measurement that
    // lost its core to a noisy neighbour fails one. Re-measure a failing
    // shape before calling it a regression — the 10% tolerance itself never
    // loosens, only the noise has to lose three times in a row.
    const auto within_tolerance = [](const SweepTiming& t) {
      return t.fused_ns_per_sweep <= t.scalar_ns_per_sweep * kTolerance &&
             t.simd_ns_per_sweep <= t.fused_ns_per_sweep * kTolerance;
    };
    auto timing = time_sweeps(inst, reps);
    for (int retry = 0; retry < 2 && !within_tolerance(timing); ++retry) {
      timing = time_sweeps(inst, reps);
    }
    ok = ok && within_tolerance(timing);
    char row[320];
    std::snprintf(row, sizeof(row),
                  "    {\"m\": %zu, \"n\": %zu, \"scalar_ns\": %.1f, "
                  "\"fused_ns\": %.1f, \"simd_ns\": %.1f, \"speedup\": %.2f, "
                  "\"simd_speedup\": %.2f}%s\n",
                  shape.m, shape.n, timing.scalar_ns_per_sweep,
                  timing.fused_ns_per_sweep, timing.simd_ns_per_sweep,
                  timing.speedup(), timing.simd_speedup(),
                  s + 1 < std::size(kShapes) ? "," : "");
    json += row;
    std::printf(
        "fit_and_score sweep %zux%zu: scalar %.0f ns, fused %.0f ns, "
        "%s %.0f ns (%.2fx fused, %.2fx simd-over-fused)\n",
        shape.m, shape.n, timing.scalar_ns_per_sweep, timing.fused_ns_per_sweep,
        simd::to_string(vector_kind), timing.simd_ns_per_sweep,
        timing.speedup(), timing.simd_speedup());
  }
  json += "  ],\n  \"fused_within_tolerance\": ";
  json += ok ? "true" : "false";

  // Cooperation round-trip latency: same master/slave logic, two transports.
  const std::size_t coop_rounds = smoke ? 6 : 24;
  const double thread_us = coop_round_trip_us(parallel::Backend::kThread, coop_rounds);
  const double proc_us = coop_round_trip_us(parallel::Backend::kProcess, coop_rounds);
  ok = ok && thread_us > 0.0 && proc_us > 0.0;
  {
    char row[256];
    std::snprintf(row, sizeof(row),
                  ",\n  \"coop_round_trip\": {\"slaves\": 4, \"rounds\": %zu, "
                  "\"thread_us_per_round\": %.1f, \"proc_us_per_round\": %.1f}",
                  coop_rounds, thread_us, proc_us);
    json += row;
    std::printf("cooperation round trip (4 slaves): thread %.0f us, proc %.0f us\n",
                thread_us, proc_us);
  }

  // Core-problem reduction on the GK shapes the acceptance names: the core
  // run chases the full run's best and reports the moves it took.
  json += ",\n  \"core_reduction\": [\n";
  static constexpr Shape kCoreShapes[] = {{10, 500}, {30, 500}};
  const std::size_t core_rounds = smoke ? 3 : 8;
  const std::uint64_t core_work = smoke ? 1'500 : 10'000;
  for (std::size_t s = 0; s < std::size(kCoreShapes); ++s) {
    const auto& shape = kCoreShapes[s];
    const auto cmp = compare_core_reduction(shape.n, shape.m, core_rounds, core_work);
    char row[384];
    std::snprintf(row, sizeof(row),
                  "    {\"m\": %zu, \"n\": %zu, \"engaged\": %s, \"fixed\": %zu, "
                  "\"gap_eps\": %.1f, \"full_best\": %.1f, \"full_moves\": %llu, "
                  "\"reached_full_best\": %s, \"core_moves\": %llu}%s\n",
                  shape.m, shape.n, cmp.engaged ? "true" : "false", cmp.fixed,
                  cmp.gap_eps, cmp.full_best,
                  static_cast<unsigned long long>(cmp.full_moves),
                  cmp.reached ? "true" : "false",
                  static_cast<unsigned long long>(cmp.core_moves),
                  s + 1 < std::size(kCoreShapes) ? "," : "");
    json += row;
    std::printf(
        "core reduction %zux%zu: fixed %zu, full best %.1f in %llu moves, "
        "core %s it in %llu moves\n",
        shape.m, shape.n, cmp.fixed, cmp.full_best,
        static_cast<unsigned long long>(cmp.full_moves),
        cmp.reached ? "reached" : "MISSED",
        static_cast<unsigned long long>(cmp.core_moves));
    ok = ok && cmp.reached && cmp.core_moves < cmp.full_moves;
  }
  json += "  ]\n}\n";

  if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  if (!ok) {
    std::fprintf(stderr,
                 "FAIL: kernel regression, backend failure, or core run "
                 "missed the full-space best (see table above)\n");
    return 1;
  }
  return 0;
}

void BM_FitScoreSweepScalarRef(benchmark::State& state) {
  const auto inst = bench_instance(static_cast<std::size_t>(state.range(1)),
                                   static_cast<std::size_t>(state.range(0)));
  const auto x = sweep_state(inst);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sweep_scalar_reference(x));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(1));
}
BENCHMARK(BM_FitScoreSweepScalarRef)->Args({5, 100})->Args({25, 500});

void BM_FitScoreSweepFused(benchmark::State& state) {
  const auto inst = bench_instance(static_cast<std::size_t>(state.range(1)),
                                   static_cast<std::size_t>(state.range(0)));
  const auto x = sweep_state(inst);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sweep_fused(x));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(1));
}
BENCHMARK(BM_FitScoreSweepFused)->Args({5, 100})->Args({25, 500});

void BM_SolutionAddDrop(benchmark::State& state) {
  const auto inst = bench_instance(500, static_cast<std::size_t>(state.range(0)));
  mkp::Solution s(inst);
  std::size_t j = 0;
  for (auto _ : state) {
    s.add(j);
    s.drop(j);
    j = (j + 1) % inst.num_items();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2);
}
BENCHMARK(BM_SolutionAddDrop)->Arg(5)->Arg(10)->Arg(25);

void BM_MoveApply(benchmark::State& state) {
  const auto inst = bench_instance(static_cast<std::size_t>(state.range(0)), 10);
  auto x = bounds::greedy_construct(inst);
  tabu::TabuList tabu(inst.num_items());
  tabu::MoveKernel kernel(inst);
  tabu::MoveStats stats;
  tabu::Strategy strategy;
  strategy.nb_drop = static_cast<std::size_t>(state.range(1));
  Rng rng(1);
  std::uint64_t iter = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        kernel.apply(x, tabu, ++iter, strategy, 7, 1e18, rng, stats));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MoveApply)
    ->Args({100, 1})
    ->Args({100, 4})
    ->Args({250, 1})
    ->Args({250, 4})
    ->Args({500, 1})
    ->Args({500, 4});

void BM_GreedyConstruct(benchmark::State& state) {
  const auto inst = bench_instance(static_cast<std::size_t>(state.range(0)), 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bounds::greedy_construct(inst));
  }
}
BENCHMARK(BM_GreedyConstruct)->Arg(100)->Arg(500);

void BM_LpRelaxation(benchmark::State& state) {
  const auto inst = bench_instance(static_cast<std::size_t>(state.range(0)),
                                   static_cast<std::size_t>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(bounds::solve_lp_relaxation(inst));
  }
}
BENCHMARK(BM_LpRelaxation)->Args({100, 5})->Args({250, 10})->Args({500, 25});

void BM_HammingDistance(benchmark::State& state) {
  const auto inst = bench_instance(static_cast<std::size_t>(state.range(0)), 5);
  Rng rng(2);
  const auto a = bounds::random_feasible(inst, rng);
  const auto b = bounds::random_feasible(inst, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.hamming_distance(b));
  }
}
BENCHMARK(BM_HammingDistance)->Arg(500)->Arg(2000);

void BM_ElitePoolSpread(benchmark::State& state) {
  const auto inst = bench_instance(250, 10);
  Rng rng(3);
  tabu::ElitePool pool(static_cast<std::size_t>(state.range(0)));
  for (int k = 0; k < state.range(0) * 3; ++k) {
    pool.offer(bounds::random_feasible(inst, rng));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(pool.mean_pairwise_hamming());
  }
}
BENCHMARK(BM_ElitePoolSpread)->Arg(5)->Arg(20);

void BM_CetsStep(benchmark::State& state) {
  // One add/drop oscillation step, amortized over a bounded run.
  const auto inst = bench_instance(static_cast<std::size_t>(state.range(0)), 10);
  Rng rng(4);
  for (auto _ : state) {
    tabu::CetsParams params;
    params.max_steps = 256;
    benchmark::DoNotOptimize(tabu::critical_event_tabu_search(inst, rng, params));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 256);
}
BENCHMARK(BM_CetsStep)->Arg(100)->Arg(250);

void BM_PathRelink(benchmark::State& state) {
  const auto inst = bench_instance(static_cast<std::size_t>(state.range(0)), 10);
  Rng rng(5);
  const auto a = bounds::greedy_randomized(inst, rng);
  const auto b = bounds::random_feasible(inst, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tabu::path_relink(a, b));
  }
}
BENCHMARK(BM_PathRelink)->Arg(100)->Arg(250);

void BM_ReducedCostFixing(benchmark::State& state) {
  const auto inst = bench_instance(static_cast<std::size_t>(state.range(0)), 10);
  const double lb = bounds::greedy_construct(inst).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(bounds::reduced_cost_fixing(inst, lb));
  }
}
BENCHMARK(BM_ReducedCostFixing)->Arg(100)->Arg(250);

void BM_LagrangianDual(benchmark::State& state) {
  const auto inst = bench_instance(250, static_cast<std::size_t>(state.range(0)));
  bounds::LagrangianOptions options;
  options.max_iterations = 100;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bounds::solve_lagrangian(inst, options));
  }
}
BENCHMARK(BM_LagrangianDual)->Arg(5)->Arg(25);

void BM_GenerateGk(benchmark::State& state) {
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mkp::generate_gk(
        {.num_items = static_cast<std::size_t>(state.range(0)),
         .num_constraints = 25},
        ++seed));
  }
}
BENCHMARK(BM_GenerateGk)->Arg(100)->Arg(500);

}  // namespace

int main(int argc, char** argv) {
#ifdef PTS_WORKER_BIN_FOR_TESTS
  // Point the process backend at the build-tree worker without requiring
  // the caller to export anything; an explicit env var still wins.
  ::setenv("PTS_WORKER_BIN", PTS_WORKER_BIN_FOR_TESTS, /*overwrite=*/0);
#endif
  bool smoke = false;
  std::string json_path = "BENCH_kernels.json";
  // Strip our flags before handing argv to google-benchmark.
  std::vector<char*> passthrough = {argv[0]};
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[a], "--json=", 7) == 0) {
      json_path = argv[a] + 7;
    } else {
      passthrough.push_back(argv[a]);
    }
  }
  const int comparison = run_kernel_comparison(json_path, smoke);
  if (smoke) return comparison;

  argc = static_cast<int>(passthrough.size());
  argv = passthrough.data();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return comparison;
}
