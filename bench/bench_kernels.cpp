// Micro-kernel benchmarks (google-benchmark): the inner loops whose cost
// model the paper's work balancing assumes — O(m) add/drop, O(n m) move
// application scaling with nb_drop, plus the LP solve and pool-spread
// kernels the master relies on.
#include <benchmark/benchmark.h>

#include "bounds/greedy.hpp"
#include "bounds/lagrangian.hpp"
#include "bounds/reduction.hpp"
#include "bounds/simplex.hpp"
#include "mkp/generator.hpp"
#include "tabu/cets.hpp"
#include "tabu/elite_pool.hpp"
#include "tabu/moves.hpp"
#include "tabu/path_relink.hpp"
#include "util/rng.hpp"

namespace {

using namespace pts;

mkp::Instance bench_instance(std::size_t n, std::size_t m) {
  return mkp::generate_gk({.num_items = n, .num_constraints = m}, 12345);
}

void BM_SolutionAddDrop(benchmark::State& state) {
  const auto inst = bench_instance(500, static_cast<std::size_t>(state.range(0)));
  mkp::Solution s(inst);
  std::size_t j = 0;
  for (auto _ : state) {
    s.add(j);
    s.drop(j);
    j = (j + 1) % inst.num_items();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2);
}
BENCHMARK(BM_SolutionAddDrop)->Arg(5)->Arg(10)->Arg(25);

void BM_MoveApply(benchmark::State& state) {
  const auto inst = bench_instance(static_cast<std::size_t>(state.range(0)), 10);
  auto x = bounds::greedy_construct(inst);
  tabu::TabuList tabu(inst.num_items());
  tabu::MoveKernel kernel(inst);
  tabu::MoveStats stats;
  tabu::Strategy strategy;
  strategy.nb_drop = static_cast<std::size_t>(state.range(1));
  Rng rng(1);
  std::uint64_t iter = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        kernel.apply(x, tabu, ++iter, strategy, 7, 1e18, rng, stats));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MoveApply)
    ->Args({100, 1})
    ->Args({100, 4})
    ->Args({250, 1})
    ->Args({250, 4})
    ->Args({500, 1})
    ->Args({500, 4});

void BM_GreedyConstruct(benchmark::State& state) {
  const auto inst = bench_instance(static_cast<std::size_t>(state.range(0)), 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bounds::greedy_construct(inst));
  }
}
BENCHMARK(BM_GreedyConstruct)->Arg(100)->Arg(500);

void BM_LpRelaxation(benchmark::State& state) {
  const auto inst = bench_instance(static_cast<std::size_t>(state.range(0)),
                                   static_cast<std::size_t>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(bounds::solve_lp_relaxation(inst));
  }
}
BENCHMARK(BM_LpRelaxation)->Args({100, 5})->Args({250, 10})->Args({500, 25});

void BM_HammingDistance(benchmark::State& state) {
  const auto inst = bench_instance(static_cast<std::size_t>(state.range(0)), 5);
  Rng rng(2);
  const auto a = bounds::random_feasible(inst, rng);
  const auto b = bounds::random_feasible(inst, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.hamming_distance(b));
  }
}
BENCHMARK(BM_HammingDistance)->Arg(500)->Arg(2000);

void BM_ElitePoolSpread(benchmark::State& state) {
  const auto inst = bench_instance(250, 10);
  Rng rng(3);
  tabu::ElitePool pool(static_cast<std::size_t>(state.range(0)));
  for (int k = 0; k < state.range(0) * 3; ++k) {
    pool.offer(bounds::random_feasible(inst, rng));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(pool.mean_pairwise_hamming());
  }
}
BENCHMARK(BM_ElitePoolSpread)->Arg(5)->Arg(20);

void BM_CetsStep(benchmark::State& state) {
  // One add/drop oscillation step, amortized over a bounded run.
  const auto inst = bench_instance(static_cast<std::size_t>(state.range(0)), 10);
  Rng rng(4);
  for (auto _ : state) {
    tabu::CetsParams params;
    params.max_steps = 256;
    benchmark::DoNotOptimize(tabu::critical_event_tabu_search(inst, rng, params));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 256);
}
BENCHMARK(BM_CetsStep)->Arg(100)->Arg(250);

void BM_PathRelink(benchmark::State& state) {
  const auto inst = bench_instance(static_cast<std::size_t>(state.range(0)), 10);
  Rng rng(5);
  const auto a = bounds::greedy_randomized(inst, rng);
  const auto b = bounds::random_feasible(inst, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tabu::path_relink(a, b));
  }
}
BENCHMARK(BM_PathRelink)->Arg(100)->Arg(250);

void BM_ReducedCostFixing(benchmark::State& state) {
  const auto inst = bench_instance(static_cast<std::size_t>(state.range(0)), 10);
  const double lb = bounds::greedy_construct(inst).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(bounds::reduced_cost_fixing(inst, lb));
  }
}
BENCHMARK(BM_ReducedCostFixing)->Arg(100)->Arg(250);

void BM_LagrangianDual(benchmark::State& state) {
  const auto inst = bench_instance(250, static_cast<std::size_t>(state.range(0)));
  bounds::LagrangianOptions options;
  options.max_iterations = 100;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bounds::solve_lagrangian(inst, options));
  }
}
BENCHMARK(BM_LagrangianDual)->Arg(5)->Arg(25);

void BM_GenerateGk(benchmark::State& state) {
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mkp::generate_gk(
        {.num_items = static_cast<std::size_t>(state.range(0)),
         .num_constraints = 25},
        ++seed));
  }
}
BENCHMARK(BM_GenerateGk)->Arg(100)->Arg(500);

}  // namespace

BENCHMARK_MAIN();
