#include "common.hpp"

#include <cstdio>

#include "bounds/simplex.hpp"
#include "exact/branch_and_bound.hpp"
#include "util/stats.hpp"

namespace pts::bench {

BenchOptions BenchOptions::from_cli(int argc, const char* const* argv) {
  const auto args = CliArgs::parse(argc, argv);
  BenchOptions options;
  options.quick = args.get_bool("quick", false);
  options.csv = args.get_bool("csv", false);
  options.seed = static_cast<std::uint64_t>(args.get_int("seed", 20260707));
  options.telemetry =
      std::make_shared<obs::TelemetrySession>(obs::TelemetryOptions::from_cli(args));
  return options;
}

parallel::ParallelConfig default_cts2(std::uint64_t seed, std::size_t slaves,
                                      std::size_t rounds,
                                      std::uint64_t work_per_round) {
  parallel::ParallelConfig config;
  config.mode = parallel::CooperationMode::kCooperativeAdaptive;
  config.num_slaves = slaves;
  config.search_iterations = rounds;
  config.work_per_slave_round = work_per_round;
  config.base_params.strategy.nb_local = 25;
  config.mix_intensification = true;
  config.seed = seed;
  return config;
}

void emit(const BenchOptions& options, const std::string& experiment_id,
          const std::string& title, const TextTable& table,
          const std::string& footnote) {
  std::printf("== %s — %s%s ==\n", experiment_id.c_str(), title.c_str(),
              options.quick ? " (quick)" : "");
  std::fputs(options.csv ? table.render_csv().c_str() : table.render().c_str(), stdout);
  if (!footnote.empty()) std::printf("note: %s\n", footnote.c_str());
  std::printf("\n");
}

double reference_gap_percent(const mkp::Instance& inst, double achieved,
                             double exact_budget_seconds,
                             std::string* reference_kind) {
  if (inst.num_items() <= 60 && exact_budget_seconds > 0.0) {
    exact::BnbOptions options;
    options.time_limit_seconds = exact_budget_seconds;
    const auto result = exact::branch_and_bound(inst, options);
    if (result.proven_optimal) {
      if (reference_kind) *reference_kind = "opt";
      return deviation_percent(achieved, result.objective);
    }
  }
  const auto lp = bounds::solve_lp_relaxation(inst);
  if (reference_kind) *reference_kind = "LP";
  return deviation_percent(achieved, lp.objective);
}

}  // namespace pts::bench
