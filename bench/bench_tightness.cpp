// Ablation A8 — tightness hardness profile on the Chu–Beasley-style grid
// (the field's standard suite after 1998, same GK construction crossed with
// tightness in {0.25, 0.5, 0.75}). The classic finding this bench
// regenerates: tighter instances (smaller capacity fraction) carry larger
// LP gaps and are harder for heuristics, and the gap narrows as tightness
// grows. Forward-compares the reproduction against the later literature's
// workload.
#include "common.hpp"

#include "mkp/suites.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace pts;
  const auto options = bench::BenchOptions::from_cli(argc, argv);

  mkp::ChuBeasleyConfig suite_config;
  suite_config.constraint_counts = {5, 10};
  suite_config.item_counts = {100, 250};
  suite_config.instances_per_class = 1;
  suite_config.size_scale = options.quick ? 0.25 : 1.0;
  const auto classes = mkp::generate_chu_beasley(options.seed, suite_config);

  TextTable table({"class", "tightness", "CTS2 best", "LP gap (%)", "time (s)"});
  for (const auto& cls : classes) {
    RunningStats gaps;
    RunningStats values;
    double seconds = 0.0;
    for (const auto& inst : cls.instances) {
      Stopwatch watch;
      auto config = bench::default_cts2(options.seed, 4, 4, options.work(4000));
      const auto result = parallel::run_parallel_tabu_search(inst, config);
      seconds += watch.elapsed_seconds();
      values.add(result.best_value);
      std::string kind;
      gaps.add(bench::reference_gap_percent(inst, result.best_value, 0.0, &kind));
    }
    table.add_row({cls.label, TextTable::fmt(cls.tightness, 2),
                   TextTable::fmt(values.mean(), 1), TextTable::fmt(gaps.mean(), 2),
                   TextTable::fmt(seconds, 2)});
  }

  bench::emit(options, "Ablation A8",
              "tightness hardness profile on the Chu–Beasley-style grid", table,
              "shape: within each (m, n) block the LP gap shrinks as tightness "
              "grows (looser capacities admit more items, diluting the "
              "integrality gap); m raises the gap across the board.");
  return 0;
}
