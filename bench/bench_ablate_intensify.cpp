// Ablation A3 (paper §3.2): the two intensification procedures — component
// swapping vs depth-limited strategic oscillation — against no
// intensification at all, plus the oscillation-depth knob the paper uses to
// cap the extra computing time of exploring infeasible solutions.
#include "common.hpp"

#include "mkp/generator.hpp"
#include "tabu/engine.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace pts;
  const auto options = bench::BenchOptions::from_cli(argc, argv);

  const auto inst = mkp::generate_gk(
      {.num_items = options.quick ? 100u : 250u, .num_constraints = 10},
      options.seed + 1);
  const std::uint64_t moves = options.work(6000);
  const std::uint64_t seeds[] = {1, 2, 3};

  struct Variant {
    std::string label;
    tabu::IntensificationKind kind;
    std::size_t depth;
  };
  const Variant variants[] = {
      {"none", tabu::IntensificationKind::kNone, 0},
      {"swap", tabu::IntensificationKind::kSwap, 0},
      {"oscillation d=2", tabu::IntensificationKind::kStrategicOscillation, 2},
      {"oscillation d=5", tabu::IntensificationKind::kStrategicOscillation, 5},
      {"oscillation d=10", tabu::IntensificationKind::kStrategicOscillation, 10},
      {"oscillation d=20", tabu::IntensificationKind::kStrategicOscillation, 20},
      {"oscillation d=60", tabu::IntensificationKind::kStrategicOscillation, 60},
      {"oscillation d=150", tabu::IntensificationKind::kStrategicOscillation, 150},
  };

  TextTable table({"intensification", "mean best", "mean time (s)", "swaps",
                   "osc adds"});
  for (const auto& variant : variants) {
    RunningStats values, seconds;
    std::uint64_t swaps = 0, osc_adds = 0;
    for (std::uint64_t seed : seeds) {
      Rng rng(seed);
      tabu::TsParams params;
      params.intensification = variant.kind;
      params.oscillation_depth = variant.depth;
      params.strategy.nb_local = 25;
      params.max_moves = moves;
      Stopwatch watch;
      const auto result = tabu::tabu_search_from_scratch(inst, params, rng);
      seconds.add(watch.elapsed_seconds());
      values.add(result.best_value);
      swaps += result.intensify_stats.swaps;
      osc_adds += result.intensify_stats.oscillation_adds;
    }
    table.add_row({variant.label, TextTable::fmt(values.mean(), 1),
                   TextTable::fmt(seconds.mean(), 2), TextTable::fmt(swaps),
                   TextTable::fmt(osc_adds)});
  }

  bench::emit(options, "Ablation A3",
              "intensification variants at a fixed move budget (3 seeds)", table,
              "paper shape: both procedures beat 'none'; oscillation's cost (adds to "
              "explore + projection work) keeps growing with depth while the "
              "quality gain flattens — the rationale for the paper's depth limit.");
  return 0;
}
