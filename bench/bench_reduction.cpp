// Ablation A7 — why the paper benchmarks on Fréville–Plateau problems at
// all: that suite was built to be "hard for size reduction methods". We
// implement the classic size reduction (LP reduced-cost variable fixing)
// and measure the fixed fraction and residual B&B tree across instance
// families. Uncorrelated instances collapse; FP/GK-style correlated ones
// resist — which is exactly why a metaheuristic is the right tool there.
#include "common.hpp"

#include <functional>

#include "exact/reduce_and_solve.hpp"
#include "mkp/analysis.hpp"
#include "mkp/generator.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace pts;
  const auto options = bench::BenchOptions::from_cli(argc, argv);

  const std::size_t n = options.quick ? 22 : 32;
  const std::size_t m = 5;
  const std::uint64_t seeds[] = {1, 2, 3, 4, 5};
  exact::BnbOptions bnb_options;
  bnb_options.time_limit_seconds = options.quick ? 2.0 : 10.0;

  struct Family {
    std::string label;
    std::function<mkp::Instance(std::uint64_t)> make;
  };
  const Family families[] = {
      {"uncorrelated",
       [&](std::uint64_t s) { return mkp::generate_uncorrelated(n, m, s); }},
      {"weakly correlated",
       [&](std::uint64_t s) { return mkp::generate_weakly_correlated(n, m, s); }},
      {"GK (correlated)",
       [&](std::uint64_t s) {
         return mkp::generate_gk({.num_items = n, .num_constraints = m}, s);
       }},
      {"FP-style (anti-reduction)",
       [&](std::uint64_t s) {
         return mkp::generate_fp({.num_items = n, .num_constraints = m}, s);
       }},
  };

  TextTable table({"family", "corr(c,w)", "fixed vars (%)", "residual nodes",
                   "plain nodes", "node ratio", "solved"});
  for (const auto& family : families) {
    RunningStats correlation, fixed_fraction, reduced_nodes, plain_nodes;
    std::size_t solved = 0;
    for (std::uint64_t seed : seeds) {
      const auto inst = family.make(seed);
      correlation.add(mkp::profile_instance(inst).profit_weight_correlation);

      exact::ReducedSolveStats stats;
      const auto with = exact::branch_and_bound_with_reduction(inst, bnb_options, &stats);
      const auto without = exact::branch_and_bound(inst, bnb_options);
      fixed_fraction.add(100.0 *
                         static_cast<double>(stats.fixed_to_zero + stats.fixed_to_one) /
                         static_cast<double>(stats.original_variables));
      if (!with.proven_optimal || !without.proven_optimal) continue;
      ++solved;
      reduced_nodes.add(static_cast<double>(with.nodes));
      plain_nodes.add(static_cast<double>(without.nodes));
    }
    const double ratio =
        plain_nodes.mean() > 0.0 ? reduced_nodes.mean() / plain_nodes.mean() : 0.0;
    table.add_row({family.label, TextTable::fmt(correlation.mean(), 2),
                   TextTable::fmt(fixed_fraction.mean(), 1),
                   TextTable::fmt(reduced_nodes.mean(), 0),
                   TextTable::fmt(plain_nodes.mean(), 0), TextTable::fmt(ratio, 3),
                   TextTable::fmt(solved) + "/5"});
  }

  bench::emit(options, "Ablation A7",
              "size reduction (LP reduced-cost fixing) across instance families",
              table,
              "shape: the fixed fraction falls — and the surviving tree grows — "
              "as profit/weight correlation rises; FP/GK-style instances resist "
              "reduction (and even time out the exact solver), motivating the "
              "paper's tabu-search approach.");
  return 0;
}
