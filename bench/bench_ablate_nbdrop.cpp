// Ablation A2 (paper §4.1): "when the number of consecutive drops done in a
// move is small (less than 3), the objective function changes less rapidly
// and the visited solutions are close to one another. When nb_drop becomes
// high, the variations in the objective are more important and the visited
// solutions are distant."
//
// We drive the move kernel directly and measure, per nb_drop: the mean
// Hamming distance of one move, the mean |delta objective|, and the cost of
// a move (drops+adds performed) — the quantity the master's work balancing
// divides by.
#include "common.hpp"

#include <cmath>

#include "bounds/greedy.hpp"
#include "mkp/generator.hpp"
#include "tabu/moves.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace pts;
  const auto options = bench::BenchOptions::from_cli(argc, argv);

  const auto inst = mkp::generate_gk(
      {.num_items = options.quick ? 100u : 300u, .num_constraints = 10}, options.seed);
  const std::uint64_t moves = options.work(4000);

  TextTable table({"nb_drop", "mean step (Hamming)", "mean |dF|", "mean flips/move",
                   "best value seen"});
  for (std::size_t nb_drop : {1, 2, 3, 4, 6, 8}) {
    Rng rng(7);
    auto x = bounds::greedy_construct(inst);
    tabu::TabuList tabu(inst.num_items());
    tabu::MoveKernel kernel(inst);
    tabu::MoveStats move_stats;
    tabu::Strategy strategy;
    strategy.nb_drop = nb_drop;
    strategy.tabu_tenure = 7;

    RunningStats step_distance;
    RunningStats objective_delta;
    RunningStats flips;
    double best = x.value();

    for (std::uint64_t iter = 1; iter <= moves; ++iter) {
      const auto before = x;
      const auto outcome = kernel.apply(x, tabu, iter, strategy, strategy.tabu_tenure,
                                        best, rng, move_stats);
      step_distance.add(static_cast<double>(x.hamming_distance(before)));
      objective_delta.add(std::fabs(x.value() - before.value()));
      flips.add(static_cast<double>(outcome.flipped.size()));
      if (x.is_feasible()) best = std::max(best, x.value());
    }

    table.add_row({TextTable::fmt(nb_drop), TextTable::fmt(step_distance.mean(), 2),
                   TextTable::fmt(objective_delta.mean(), 1),
                   TextTable::fmt(flips.mean(), 2), TextTable::fmt(best, 1)});
  }

  bench::emit(options, "Ablation A2", "Nb_drop sweep on the raw move kernel", table,
              "paper shape: both the Hamming step and the objective variation "
              "grow monotonically with nb_drop — small drops intensify, large "
              "drops diversify.");
  return 0;
}
