#pragma once
// Shared scaffolding for the benchmark drivers. Every driver reproduces one
// table/figure/ablation from DESIGN.md's experiment index and prints a
// paper-style table; a `--quick` flag shrinks workloads for smoke runs and
// `--csv` switches the output format for downstream plotting.

#include <cstdint>
#include <memory>
#include <string>

#include "mkp/instance.hpp"
#include "obs/telemetry.hpp"
#include "parallel/runner.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace pts::bench {

/// Workload scale shared by the drivers.
struct BenchOptions {
  bool quick = false;  ///< shrink instance sizes / budgets for smoke runs
  bool csv = false;
  std::uint64_t seed = 20260707;

  /// Telemetry session behind the shared --log-level / --trace-out /
  /// --metrics flags. from_cli always creates it (shared_ptr because
  /// BenchOptions is passed by value); the trace file is written when the
  /// last copy goes out of scope at the end of main.
  std::shared_ptr<obs::TelemetrySession> telemetry;

  static BenchOptions from_cli(int argc, const char* const* argv);

  [[nodiscard]] bool metrics() const { return telemetry && telemetry->metrics(); }

  /// Scales a work budget: quick mode divides by 8.
  [[nodiscard]] std::uint64_t work(std::uint64_t full) const {
    return quick ? std::max<std::uint64_t>(100, full / 8) : full;
  }
};

/// A CTS2 configuration with the repo-wide benchmark defaults.
parallel::ParallelConfig default_cts2(std::uint64_t seed, std::size_t slaves = 4,
                                      std::size_t rounds = 3,
                                      std::uint64_t work_per_round = 3000);

/// Prints a titled table in the selected format, preceded by a header line
/// identifying the experiment (id from DESIGN.md's index).
void emit(const BenchOptions& options, const std::string& experiment_id,
          const std::string& title, const TextTable& table,
          const std::string& footnote = "");

/// % deviation of `achieved` below the tightest available reference bound:
/// the exact optimum when the instance is small enough to solve within
/// `exact_budget_seconds`, else the LP-relaxation bound. Returns the label
/// of the reference used through `reference_kind`.
double reference_gap_percent(const mkp::Instance& inst, double achieved,
                             double exact_budget_seconds, std::string* reference_kind);

}  // namespace pts::bench
