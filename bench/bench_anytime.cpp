// Anytime-profile figure — the introduction's claims that parallel
// cooperative search "reduces the execution time" and "improves the quality
// of the final solution". The paper's axis is wall time on P processors: in
// one time tick the ensemble spends P times the work of the sequential
// search. We therefore report CTS2 on two axes:
//   * equal TIME  (the paper's comparison): CTS2 has spent P*t work at
//     SEQ's t — this is where parallelism pays;
//   * equal WORK  (the single-core-fair comparison): one long trajectory vs
//     P/rounds short cooperative chunks — cooperation must carry the load.
#include "common.hpp"

#include "mkp/generator.hpp"
#include "tabu/trajectory.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace pts;
  const auto options = bench::BenchOptions::from_cli(argc, argv);

  const auto inst = mkp::generate_gk(
      {.num_items = options.quick ? 100u : 250u, .num_constraints = 10},
      options.seed + 9);
  const std::size_t kSlaves = 4;
  const std::size_t kCheckpoints = 8;
  const std::uint64_t seq_work = options.work(24000);  // SEQ's total work
  const std::uint64_t seeds[] = {1, 2, 3};

  // SEQ: one trajectory with a randomly drawn strategy (the paper's SEQ:
  // "the strategy parameters and the initial solution are chosen randomly"),
  // sampled on the time (= work) grid.
  std::vector<RunningStats> seq_profile(kCheckpoints);
  for (std::uint64_t seed : seeds) {
    Rng rng(seed);
    tabu::TsParams params;
    params.strategy = parallel::random_strategy(rng, parallel::SgpConfig{}.bounds);
    params.max_moves = seq_work / params.strategy.nb_drop;  // work-normalized
    tabu::TrajectoryRecorder recorder(/*stride=*/16);
    (void)tabu::tabu_search_from_scratch(inst, params, rng, &recorder);
    for (std::size_t c = 0; c < kCheckpoints; ++c) {
      const auto at = params.max_moves * (c + 1) / kCheckpoints;
      seq_profile[c].add(recorder.best_at(at));
    }
  }

  // CTS2 profiles: rounds are the checkpoints; the running best after round
  // r is read off the master timeline. Two budgets:
  //   equal time: each round spends kSlaves * (seq tick) of work;
  //   equal work: the whole ensemble splits SEQ's budget.
  auto cts2_profile = [&](std::uint64_t work_per_slave_round) {
    std::vector<RunningStats> profile(kCheckpoints);
    for (std::uint64_t seed : seeds) {
      auto config = bench::default_cts2(seed, kSlaves, kCheckpoints,
                                        work_per_slave_round);
      const auto result = parallel::run_parallel_tabu_search(inst, config);
      double running_best = 0.0;
      for (std::size_t round = 0; round < kCheckpoints; ++round) {
        for (const auto& log : result.master.timeline) {
          if (log.round == round) {
            running_best = std::max(running_best, log.final_value);
          }
        }
        profile[round].add(running_best);
      }
    }
    return profile;
  };
  const auto equal_time = cts2_profile(seq_work / kCheckpoints);
  const auto equal_work = cts2_profile(seq_work / (kSlaves * kCheckpoints));

  TextTable table({"time tick (SEQ work)", "SEQ", "CTS2 @equal time (Px work)",
                   "CTS2 @equal work"});
  for (std::size_t c = 0; c < kCheckpoints; ++c) {
    table.add_row({TextTable::fmt(seq_work * (c + 1) / kCheckpoints),
                   TextTable::fmt(seq_profile[c].mean(), 1),
                   TextTable::fmt(equal_time[c].mean(), 1),
                   TextTable::fmt(equal_work[c].mean(), 1)});
  }

  bench::emit(options, "Anytime profile",
              "best value vs time: SEQ vs CTS2 on 4 slaves (3 seeds)", table,
              "paper shape: the cooperative ensemble dominates the randomly "
              "parameterized sequential search at every tick on both axes. "
              "(A hand-tuned SEQ strategy can close the equal-work gap — which "
              "is the paper's point: CTS2 removes the dependence on a lucky "
              "parameter draw.)");
  return 0;
}
