#include "obs/counters.hpp"

#include <atomic>

namespace pts::obs {

namespace detail {
#if PTS_TELEMETRY
thread_local Counters* tl_sink = nullptr;
#endif
}  // namespace detail

namespace {
std::atomic<bool> g_enabled{true};
}  // namespace

void set_telemetry_enabled(bool enabled) { g_enabled.store(enabled); }

bool telemetry_enabled() {
  return kTelemetryCompiled && g_enabled.load(std::memory_order_relaxed);
}

const char* counter_name(Counter c) {
  switch (c) {
    case Counter::kMovesTried: return "moves_tried";
    case Counter::kMovesImproved: return "moves_improved";
    case Counter::kDrops: return "drops";
    case Counter::kAdds: return "adds";
    case Counter::kForcedDrops: return "forced_drops";
    case Counter::kTabuRejections: return "tabu_rejections";
    case Counter::kAspirationAccepts: return "aspiration_accepts";
    case Counter::kFitScoreCalls: return "fit_score_calls";
    case Counter::kPruneEarlyOuts: return "prune_early_outs";
    case Counter::kIntensifications: return "intensifications";
    case Counter::kOscillations: return "oscillations";
    case Counter::kDiversifications: return "diversifications";
    case Counter::kDroppedMessages: return "dropped_messages";
    case Counter::kCheckpointsWritten: return "checkpoints_written";
    case Counter::kPoolDegraded: return "pool_degraded";
    case Counter::kCount: break;
  }
  return "?";
}

}  // namespace pts::obs
