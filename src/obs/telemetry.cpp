#include "obs/telemetry.hpp"

#include <fstream>

#include "obs/trace.hpp"
#include "util/logging.hpp"

namespace pts::obs {

TelemetryOptions TelemetryOptions::from_cli(const CliArgs& args) {
  TelemetryOptions options;
  options.trace_path = args.get_string("trace-out", "");
  options.metrics = args.get_bool("metrics", false);
  if (args.has("log-level")) {
    const auto name = args.get_string("log-level", "");
    if (const auto level = parse_log_level(name)) {
      set_log_level(*level);
    } else {
      std::fprintf(stderr,
                   "unknown --log-level '%s' (want debug|info|warn|error|off); "
                   "keeping the current threshold\n",
                   name.c_str());
    }
  }
  return options;
}

TelemetrySession::TelemetrySession(TelemetryOptions options)
    : options_(std::move(options)) {
  if (tracing()) {
    tracer().clear();
    tracer().set_enabled(true);
    if (!tracer().enabled()) {
      std::fprintf(stderr,
                   "--trace-out ignored: telemetry compiled out (PTS_TELEMETRY=0)\n");
    }
  }
}

TelemetrySession::~TelemetrySession() { finalize(); }

bool TelemetrySession::finalize() {
  if (finalized_) return true;
  finalized_ = true;
  if (!tracing()) return true;
  tracer().set_enabled(false);
  bool ok = true;
  {
    std::ofstream out(options_.trace_path);
    if (out) {
      tracer().write_chrome_trace(out);
    } else {
      std::fprintf(stderr, "cannot write trace to %s\n", options_.trace_path.c_str());
      ok = false;
    }
  }
  const std::string jsonl_path = options_.trace_path + ".jsonl";
  {
    std::ofstream out(jsonl_path);
    if (out) {
      tracer().write_jsonl(out);
    } else {
      std::fprintf(stderr, "cannot write event stream to %s\n", jsonl_path.c_str());
      ok = false;
    }
  }
  if (ok) {
    std::fprintf(stderr,
                 "trace written: %s (%zu events; open in ui.perfetto.dev), "
                 "events: %s\n",
                 options_.trace_path.c_str(), tracer().size(), jsonl_path.c_str());
  }
  return ok;
}

void print_counter_report(std::FILE* out, const CounterStats& stats) {
  std::fprintf(out, "%-20s %14s", "counter", "total");
  if (stats.snapshots() > 1) {
    std::fprintf(out, " %12s %12s %12s  (over %zu snapshots)", "mean", "min", "max",
                 stats.snapshots());
  }
  std::fputc('\n', out);
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    const auto c = static_cast<Counter>(i);
    std::fprintf(out, "%-20s %14llu", counter_name(c),
                 static_cast<unsigned long long>(stats.totals()[c]));
    if (stats.snapshots() > 1) {
      const auto& s = stats.stats(c);
      std::fprintf(out, " %12.1f %12.0f %12.0f", s.mean(), s.min(), s.max());
    }
    std::fputc('\n', out);
  }
}

void print_counter_report(std::FILE* out, const Counters& counters) {
  CounterStats stats;
  stats.observe(counters);
  print_counter_report(out, stats);
}

}  // namespace pts::obs
