#include "obs/telemetry.hpp"

#include <chrono>
#include <cstdio>
#include <fstream>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/logging.hpp"

namespace pts::obs {

namespace {

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

bool write_metrics_snapshot_file(const std::string& path) {
  // tmp + rename so a concurrent scraper (or a kill mid-write) never sees a
  // torn snapshot. Metrics are best-effort observability, not durable state,
  // so no fsync — the journal/snapshot discipline stays where it matters.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp);
    if (!out) return false;
    if (ends_with(path, ".jsonl")) {
      metrics().write_jsonl(out);
    } else {
      metrics().write_prometheus(out);
    }
    if (!out) return false;
  }
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

TelemetryOptions TelemetryOptions::from_cli(const CliArgs& args) {
  TelemetryOptions options;
  options.trace_path = args.get_string("trace-out", "");
  options.metrics = args.get_bool("metrics", false);
  options.metrics_out_path = args.get_string("metrics-out", "");
  options.metrics_every_seconds = args.get_double("metrics-every", 0.0);
  if (args.has("log-level")) {
    const auto name = args.get_string("log-level", "");
    if (const auto level = parse_log_level(name)) {
      set_log_level(*level);
    } else {
      std::fprintf(stderr,
                   "unknown --log-level '%s' (want debug|info|warn|error|off); "
                   "keeping the current threshold\n",
                   name.c_str());
    }
  }
  return options;
}

TelemetrySession::TelemetrySession(TelemetryOptions options)
    : options_(std::move(options)) {
  if (tracing()) {
    tracer().clear();
    tracer().set_enabled(true);
    if (!tracer().enabled()) {
      std::fprintf(stderr,
                   "--trace-out ignored: telemetry compiled out (PTS_TELEMETRY=0)\n");
    }
  }
  if (!options_.metrics_out_path.empty() && options_.metrics_every_seconds > 0) {
    writer_ = std::thread([this] {
      const auto period = std::chrono::duration<double>(
          options_.metrics_every_seconds);
      std::unique_lock lock(writer_mutex_);
      while (!writer_cv_.wait_for(lock, period, [this] { return writer_stop_; })) {
        lock.unlock();
        write_metrics_snapshot();
        lock.lock();
      }
    });
  }
}

TelemetrySession::~TelemetrySession() { finalize(); }

bool TelemetrySession::write_metrics_snapshot() {
  if (options_.metrics_out_path.empty()) return true;
  if (!write_metrics_snapshot_file(options_.metrics_out_path)) {
    std::fprintf(stderr, "cannot write metrics snapshot to %s\n",
                 options_.metrics_out_path.c_str());
    return false;
  }
  return true;
}

void TelemetrySession::stop_periodic_writer() {
  if (!writer_.joinable()) return;
  {
    std::scoped_lock lock(writer_mutex_);
    writer_stop_ = true;
  }
  writer_cv_.notify_all();
  writer_.join();
}

bool TelemetrySession::finalize() {
  if (finalized_) return true;
  finalized_ = true;
  stop_periodic_writer();
  bool metrics_ok = true;
  if (!options_.metrics_out_path.empty()) {
    metrics_ok = write_metrics_snapshot();
    if (metrics_ok) {
      std::fprintf(stderr, "metrics snapshot written: %s\n",
                   options_.metrics_out_path.c_str());
    }
  }
  if (!tracing()) return metrics_ok;
  tracer().set_enabled(false);
  bool ok = true;
  {
    std::ofstream out(options_.trace_path);
    if (out) {
      tracer().write_chrome_trace(out);
    } else {
      std::fprintf(stderr, "cannot write trace to %s\n", options_.trace_path.c_str());
      ok = false;
    }
  }
  const std::string jsonl_path = options_.trace_path + ".jsonl";
  {
    std::ofstream out(jsonl_path);
    if (out) {
      tracer().write_jsonl(out);
    } else {
      std::fprintf(stderr, "cannot write event stream to %s\n", jsonl_path.c_str());
      ok = false;
    }
  }
  if (ok) {
    std::fprintf(stderr,
                 "trace written: %s (%zu events; open in ui.perfetto.dev), "
                 "events: %s\n",
                 options_.trace_path.c_str(), tracer().size(), jsonl_path.c_str());
  }
  return ok && metrics_ok;
}

void print_counter_report(std::FILE* out, const CounterStats& stats) {
  std::fprintf(out, "%-20s %14s", "counter", "total");
  if (stats.snapshots() > 1) {
    std::fprintf(out, " %12s %12s %12s  (over %zu snapshots)", "mean", "min", "max",
                 stats.snapshots());
  }
  std::fputc('\n', out);
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    const auto c = static_cast<Counter>(i);
    std::fprintf(out, "%-20s %14llu", counter_name(c),
                 static_cast<unsigned long long>(stats.totals()[c]));
    if (stats.snapshots() > 1) {
      const auto& s = stats.stats(c);
      std::fprintf(out, " %12.1f %12.0f %12.0f", s.mean(), s.min(), s.max());
    }
    std::fputc('\n', out);
  }
}

void print_counter_report(std::FILE* out, const Counters& counters) {
  CounterStats stats;
  stats.observe(counters);
  print_counter_report(out, stats);
}

}  // namespace pts::obs
