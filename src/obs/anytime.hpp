#pragma once
// Anytime-performance recording (DESIGN.md "Observability"): (wall-clock,
// work-units, best objective) points captured every time an incumbent
// improves, per search thread and globally. The paper's CTS2-vs-ITS claim is
// an *anytime* claim — same work budget, better best-so-far curve — so the
// curve is a first-class output of a run, serialized next to the timeline
// by report_io.
//
// The engine appends to the curve inside its own TsResult (single writer);
// the master stitches per-slave curves into one run-level sequence, offset
// to its own clock. AnytimeRecorder is the small thread-safe collector used
// when several threads must append to one curve directly (async swarm,
// ad-hoc instrumentation).

#include <cstdint>
#include <mutex>
#include <vector>

namespace pts::obs {

/// Sources >= 0 identify a slave/peer; kGlobalSource marks the run-level
/// best-so-far curve.
inline constexpr std::int32_t kGlobalSource = -1;

struct AnytimeSample {
  std::int32_t source = kGlobalSource;
  double seconds = 0.0;        ///< wall clock, relative to the curve's epoch
  std::uint64_t work_units = 0;///< moves (engine) or cumulative moves (master)
  double value = 0.0;          ///< best objective at that point
};

/// Thread-safe appender for concurrently produced samples.
class AnytimeRecorder {
 public:
  void record(std::int32_t source, double seconds, std::uint64_t work_units,
              double value) {
    std::scoped_lock lock(mutex_);
    samples_.push_back({source, seconds, work_units, value});
  }

  [[nodiscard]] std::vector<AnytimeSample> snapshot() const {
    std::scoped_lock lock(mutex_);
    return samples_;
  }

  [[nodiscard]] std::size_t size() const {
    std::scoped_lock lock(mutex_);
    return samples_.size();
  }

  void clear() {
    std::scoped_lock lock(mutex_);
    samples_.clear();
  }

 private:
  mutable std::mutex mutex_;
  std::vector<AnytimeSample> samples_;
};

/// The monotone best-so-far envelope over every sample (any source), in
/// time order — what an anytime plot actually draws.
[[nodiscard]] std::vector<AnytimeSample> global_envelope(
    std::vector<AnytimeSample> samples);

}  // namespace pts::obs
