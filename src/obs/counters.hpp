#pragma once
// Per-thread search counters (DESIGN.md "Observability").
//
// Every search thread owns one `Counters` block (it lives inside TsResult,
// so the engine's Run object is the single writer — no sharing, no atomics,
// nothing for TSan to complain about). Free functions that sit below the
// engine (the move kernels) publish through a thread-local sink pointer
// installed by `CounterScope` for the duration of a run; when no scope is
// active — or telemetry is compiled out via PTS_TELEMETRY=0 — a bump is a
// no-op costing one thread-local load and a predictable branch.
//
// The master merges the snapshots it gathers from slave Reports into a
// `CounterStats` (one RunningStats per counter over per-(slave, round)
// observations) plus exact uint64 totals.

#include <array>
#include <cstddef>
#include <cstdint>

#include "util/stats.hpp"

#ifndef PTS_TELEMETRY
#define PTS_TELEMETRY 1
#endif

namespace pts::obs {

inline constexpr bool kTelemetryCompiled = PTS_TELEMETRY != 0;

/// The counter taxonomy. One enumerator per fact the cooperation analysis
/// needs; keep names in sync with counter_name().
enum class Counter : std::size_t {
  kMovesTried,       ///< Drop/Add composite moves executed
  kMovesImproved,    ///< moves that improved the run's incumbent
  kDrops,            ///< individual Drop steps
  kAdds,             ///< individual Add steps
  kForcedDrops,      ///< drop fell back to a tabu item (all selected tabu)
  kTabuRejections,   ///< add candidates rejected by tabu status (no aspiration)
  kAspirationAccepts,///< tabu adds accepted through the aspiration criterion
  kFitScoreCalls,    ///< full fit_and_score column sweeps
  kPruneEarlyOuts,   ///< candidates rejected by the O(1) min-slack prune
  kIntensifications, ///< intensification phases entered
  kOscillations,     ///< of those, strategic-oscillation phases
  kDiversifications, ///< diversification phases entered
  kDroppedMessages,  ///< sends explicitly discarded on a closed/dead endpoint
  kCheckpointsWritten, ///< master snapshots durably written to disk
  kPoolDegraded,     ///< slaves retired by the pool-degradation policy
  kCount
};

inline constexpr std::size_t kCounterCount = static_cast<std::size_t>(Counter::kCount);

/// Short stable identifier ("moves_tried", ...) used in CSV/JSON exports.
[[nodiscard]] const char* counter_name(Counter c);

/// One thread's counter block. Plain (non-atomic) slots: each block has a
/// single writer; cross-thread movement happens by value through Reports.
struct Counters {
  std::array<std::uint64_t, kCounterCount> slots{};

  std::uint64_t& operator[](Counter c) { return slots[static_cast<std::size_t>(c)]; }
  std::uint64_t operator[](Counter c) const { return slots[static_cast<std::size_t>(c)]; }

  void add(const Counters& other) {
    for (std::size_t i = 0; i < kCounterCount; ++i) slots[i] += other.slots[i];
  }

  [[nodiscard]] bool any() const {
    for (const auto v : slots) {
      if (v != 0) return true;
    }
    return false;
  }
};

namespace detail {
#if PTS_TELEMETRY
extern thread_local Counters* tl_sink;
#endif
}  // namespace detail

/// Global kill switch for the always-on counter paths (the engine checks it
/// once per run, never per move). Defaults to enabled; bench_observability
/// flips it off to time the uninstrumented baseline in the same binary.
void set_telemetry_enabled(bool enabled);
[[nodiscard]] bool telemetry_enabled();

/// Publish into the current thread's bound sink, if any.
inline void bump(Counter c, std::uint64_t n = 1) {
#if PTS_TELEMETRY
  if (detail::tl_sink != nullptr) (*detail::tl_sink)[c] += n;
#else
  (void)c;
  (void)n;
#endif
}

/// Binds `sink` as the calling thread's counter sink for the scope's
/// lifetime; restores the previous binding on exit (scopes nest).
/// Binding nullptr suppresses publication inside the scope.
class CounterScope {
 public:
#if PTS_TELEMETRY
  explicit CounterScope(Counters* sink) : previous_(detail::tl_sink) {
    detail::tl_sink = sink;
  }
  ~CounterScope() { detail::tl_sink = previous_; }
#else
  explicit CounterScope(Counters*) {}
#endif
  CounterScope(const CounterScope&) = delete;
  CounterScope& operator=(const CounterScope&) = delete;

 private:
#if PTS_TELEMETRY
  Counters* previous_;
#endif
};

/// Master-side aggregation: per-counter distribution over the per-(slave,
/// round) snapshots it gathers, plus exact totals.
class CounterStats {
 public:
  void observe(const Counters& snapshot) {
    totals_.add(snapshot);
    for (std::size_t i = 0; i < kCounterCount; ++i) {
      per_counter_[i].add(static_cast<double>(snapshot.slots[i]));
    }
    ++snapshots_;
  }

  void merge(const CounterStats& other) {
    totals_.add(other.totals_);
    for (std::size_t i = 0; i < kCounterCount; ++i) {
      per_counter_[i].merge(other.per_counter_[i]);
    }
    snapshots_ += other.snapshots_;
  }

  [[nodiscard]] const Counters& totals() const { return totals_; }
  [[nodiscard]] const RunningStats& stats(Counter c) const {
    return per_counter_[static_cast<std::size_t>(c)];
  }
  [[nodiscard]] std::size_t snapshots() const { return snapshots_; }

 private:
  Counters totals_;
  std::array<RunningStats, kCounterCount> per_counter_{};
  std::size_t snapshots_ = 0;
};

}  // namespace pts::obs
