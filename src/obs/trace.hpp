#pragma once
// Event tracer (DESIGN.md "Observability"): timestamped spans, instants and
// counter samples from the master, the slaves and the async peers, exported
// as Chrome trace-event JSON (open chrome://tracing or https://ui.perfetto.dev
// and drop the file in) and as a flat JSONL stream for ad-hoc scripting.
//
// Tracing is OFF by default. Every recording call starts with one relaxed
// atomic load; when disabled nothing else happens, so instrumentation can
// stay in place permanently (bench_observability keeps that claim honest).
// When enabled, events go into one mutex-protected buffer — trace events are
// per-phase, not per-move, so contention is negligible next to the search.
//
// Event names must be string literals (the tracer stores the pointer).
// Thread identity is a small logical id (master = 0, slave/peer i = i + 1)
// bound via TidScope, not the OS thread id — deterministic across runs and
// readable in Perfetto.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

#include "obs/counters.hpp"  // PTS_TELEMETRY / kTelemetryCompiled

namespace pts::obs {

/// One numeric argument attached to an event. Keys must be string literals.
struct TraceArg {
  const char* key;
  double value;
};

struct TraceEvent {
  const char* name = "";
  char phase = 'i';          ///< 'X' span, 'i' instant, 'C' counter, 'M' metadata
  std::uint32_t tid = 0;
  std::int64_t ts_us = 0;    ///< microseconds since the tracer epoch
  std::int64_t dur_us = 0;   ///< spans only
  std::vector<TraceArg> args;
  const char* detail_key = nullptr;  ///< optional string arg (e.g. "kind")
  std::string detail;
  /// Logical process (master = 1, merged proc worker i = 2+i). Trails the
  /// aggregate so pre-merge brace-init call sites stay valid.
  std::uint32_t pid = 1;
};

/// Interns a dynamic string into process-lifetime storage and returns a
/// stable pointer, so strings that arrive over the wire (worker trace-event
/// names in TelemetryChunks) can flow through TraceEvent's literal-pointer
/// fields. The set only grows — names are drawn from a small fixed
/// vocabulary of instrumentation sites, not from payload data.
[[nodiscard]] const char* intern_name(std::string_view name);

/// Logical trace id of the calling thread (0 unless a TidScope is active).
[[nodiscard]] std::uint32_t thread_tid();

/// Binds a logical tid to the calling thread for the scope's lifetime.
class TidScope {
 public:
  explicit TidScope(std::uint32_t tid);
  ~TidScope();
  TidScope(const TidScope&) = delete;
  TidScope& operator=(const TidScope&) = delete;

 private:
  std::uint32_t previous_;
};

class Tracer {
 public:
  /// Enabling also (re)starts the epoch when the buffer is empty. A no-op
  /// when telemetry is compiled out (enabled() then always reports false).
  void set_enabled(bool enabled);
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Microseconds since the tracer epoch (monotonic clock).
  [[nodiscard]] std::int64_t now_us() const;

  /// Complete span: began at `start_us` (from now_us()), ends now.
  void span(const char* name, std::int64_t start_us,
            std::initializer_list<TraceArg> args = {},
            const char* detail_key = nullptr, std::string detail = {});

  void instant(const char* name, std::initializer_list<TraceArg> args = {},
               const char* detail_key = nullptr, std::string detail = {});

  /// Counter-track sample ('C'), e.g. mailbox queue depth over time.
  void sample(const char* name, double value);

  /// Names the logical thread in the viewer ('M' metadata event).
  void name_thread(std::uint32_t tid, std::string name);

  /// Names a logical process in the viewer ('M' process_name event) — the
  /// supervisor labels each merged worker's pid this way.
  void name_process(std::uint32_t pid, std::string name);

  void clear();
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::vector<TraceEvent> snapshot() const;

  /// Moves the buffered events out WITHOUT resetting the epoch (unlike
  /// clear()), so timestamps across successive drains share one timeline.
  /// The proc-backend worker drains before every report send and ships the
  /// batch to the supervisor as a TelemetryChunk.
  [[nodiscard]] std::vector<TraceEvent> drain();

  /// {"traceEvents":[...]} — one event per line, sorted by timestamp so
  /// per-thread timestamps are monotone in file order.
  void write_chrome_trace(std::ostream& out) const;
  /// The same events as bare JSON objects, one per line.
  void write_jsonl(std::ostream& out) const;

  /// Appends a fully-formed event; callers must check enabled() themselves.
  void record_event(TraceEvent event);

 private:
  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
  std::chrono::steady_clock::time_point epoch_ = std::chrono::steady_clock::now();
};

/// The process-wide tracer every instrumentation site records into.
Tracer& tracer();

/// RAII span against the global tracer: stamps the start on construction,
/// records on destruction. Inert when tracing is disabled at construction.
class SpanScope {
 public:
  explicit SpanScope(const char* name, std::initializer_list<TraceArg> args = {});
  ~SpanScope();
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

 private:
  const char* name_;
  std::int64_t start_us_ = 0;
  std::vector<TraceArg> args_;
  bool armed_ = false;
};

}  // namespace pts::obs
