#include "obs/anytime.hpp"

#include <algorithm>

namespace pts::obs {

std::vector<AnytimeSample> global_envelope(std::vector<AnytimeSample> samples) {
  std::stable_sort(samples.begin(), samples.end(),
                   [](const AnytimeSample& a, const AnytimeSample& b) {
                     return a.seconds < b.seconds;
                   });
  std::vector<AnytimeSample> envelope;
  double best = 0.0;
  for (const auto& sample : samples) {
    if (envelope.empty() || sample.value > best) {
      best = sample.value;
      AnytimeSample point = sample;
      point.source = kGlobalSource;
      envelope.push_back(point);
    }
  }
  return envelope;
}

}  // namespace pts::obs
