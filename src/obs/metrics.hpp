#pragma once
// Named metrics registry + exporter (DESIGN.md §6): the run-wide,
// pull-anytime complement to the per-(slave, round) counter taxonomy in
// counters.hpp. Counters there are a fixed enum riding inside Reports; the
// registry here is open-ended — any subsystem registers a named counter,
// gauge or latency histogram at first use and holds the returned reference
// (handles are stable for the registry's lifetime, including across
// reset_values()).
//
//   obs::metrics().counter("service_submitted_total").add();
//   obs::metrics().gauge("service_queue_depth").set(queue.size());
//   obs::metrics().histogram("job_run_seconds").record(seconds);
//
// Recording respects the same global kill switch as the counter sinks
// (obs::set_telemetry_enabled): one relaxed atomic load when disabled, so
// instrumentation stays in place permanently and bench_observability keeps
// the ≤2% overhead claim honest.
//
// Exporters: Prometheus text exposition (write_prometheus; histograms as
// quantile summaries) and JSONL (write_jsonl, one metric per line) — the
// TelemetrySession's --metrics-out writer drives both. For the proc backend,
// workers drain their registry into TelemetryChunk counter deltas
// (drain_counter_deltas) and the supervisor folds them into the master's
// registry (apply_counter_delta), so one snapshot covers the whole process
// tree.

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/counters.hpp"  // telemetry_enabled() kill switch
#include "util/histogram.hpp"

namespace pts::obs {

/// Monotonic event count. Cross-thread safe (relaxed atomic — totals are
/// exact, ordering against other metrics is not promised).
class MetricCounter {
 public:
  void add(std::uint64_t n = 1) {
    if (telemetry_enabled()) value_.fetch_add(n, std::memory_order_relaxed);
  }
  /// Unconditional add, bypassing the kill switch — for folding deltas that
  /// were already recorded elsewhere (worker chunks), never for new events.
  void add_raw(std::uint64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (queue depth, breaker state, ...).
class MetricGauge {
 public:
  void set(double v) {
    if (telemetry_enabled()) value_.store(v, std::memory_order_relaxed);
  }
  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Mutex-guarded LogHistogram: recorded on latency-shaped paths (per round /
/// per job / per frame, never per move), so contention is negligible.
class MetricHistogram {
 public:
  void record(double value) {
    if (!telemetry_enabled()) return;
    std::scoped_lock lock(mutex_);
    hist_.record(value);
  }
  void merge(const LogHistogram& other) {
    std::scoped_lock lock(mutex_);
    hist_.merge(other);
  }
  [[nodiscard]] LogHistogram snapshot() const {
    std::scoped_lock lock(mutex_);
    return hist_;
  }
  void reset() {
    std::scoped_lock lock(mutex_);
    hist_.reset();
  }

 private:
  mutable std::mutex mutex_;
  LogHistogram hist_;
};

class MetricsRegistry {
 public:
  /// Get-or-create by name. The returned reference is stable for the
  /// registry's lifetime; call sites cache it (function-local static or
  /// member) so steady-state recording never touches the registry map.
  MetricCounter& counter(std::string_view name);
  MetricGauge& gauge(std::string_view name);
  MetricHistogram& histogram(std::string_view name);

  /// Prometheus text exposition: `pts_<name>` with # TYPE headers;
  /// histograms export as summaries (quantile="0.5|0.9|0.99" + _sum/_count).
  void write_prometheus(std::ostream& out) const;
  /// One JSON object per metric per line; histograms carry
  /// count/sum/min/max/p50/p90/p99.
  void write_jsonl(std::ostream& out) const;
  /// Histogram table as CSV (report_io latency file):
  /// name,count,sum,min,max,p50,p90,p99.
  void write_histogram_csv(std::ostream& out) const;

  struct CounterDelta {
    std::string name;
    std::uint64_t delta;
  };
  /// Per-counter increase since the previous drain (worker → chunk path).
  /// Counters with no growth are omitted.
  [[nodiscard]] std::vector<CounterDelta> drain_counter_deltas();
  /// Fold a drained delta into this registry (supervisor ← chunk path).
  void apply_counter_delta(std::string_view name, std::uint64_t delta);

  /// Zero every value but keep all entries, so cached handles stay valid
  /// (tests and bench isolate runs this way).
  void reset_values();

  [[nodiscard]] bool empty() const;
  /// True when at least one histogram has recorded a sample — the report_io
  /// writer skips the latency CSV otherwise.
  [[nodiscard]] bool has_histogram_samples() const;

 private:
  mutable std::mutex mutex_;
  // Node-based maps: values never move, so handed-out references survive
  // later insertions. std::less<> enables string_view lookup.
  std::map<std::string, std::unique_ptr<MetricCounter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<MetricGauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<MetricHistogram>, std::less<>> histograms_;
  std::map<std::string, std::uint64_t, std::less<>> drained_totals_;
};

/// The process-wide registry every instrumentation site records into.
MetricsRegistry& metrics();

}  // namespace pts::obs
