#pragma once
// CLI-facing glue for the telemetry subsystem: one call turns the shared
// `--log-level=`, `--trace-out=`, and `--metrics` flags into a configured
// session that owns the tracer's lifetime and writes the trace files when it
// goes out of scope. Examples and bench drivers construct one of these right
// after CliArgs::parse and forget about it.
//
//   --log-level=debug|info|warn|error|off   logger threshold (util/logging)
//   --trace-out=PATH   enable tracing; Chrome trace JSON at PATH, the flat
//                      JSONL event stream at PATH.jsonl
//   --metrics          callers print a per-counter report after the run
//                      (TelemetrySession only latches the flag)

#include <cstdio>
#include <string>

#include "obs/counters.hpp"
#include "util/cli.hpp"

namespace pts::obs {

struct TelemetryOptions {
  std::string trace_path;  ///< empty = tracing stays off
  bool metrics = false;

  /// Reads the three flags; applies --log-level immediately (an unknown
  /// level warns on stderr and leaves the threshold unchanged).
  static TelemetryOptions from_cli(const CliArgs& args);
};

/// Enables the global tracer on construction when options.trace_path is set;
/// on destruction (or an explicit finalize()) writes the Chrome trace and
/// JSONL files and disables tracing again.
class TelemetrySession {
 public:
  TelemetrySession() = default;
  explicit TelemetrySession(TelemetryOptions options);
  ~TelemetrySession();
  TelemetrySession(const TelemetrySession&) = delete;
  TelemetrySession& operator=(const TelemetrySession&) = delete;

  /// Writes the trace files (if tracing was requested) and disables the
  /// tracer. Idempotent. Returns false when a file could not be written.
  bool finalize();

  [[nodiscard]] bool metrics() const { return options_.metrics; }
  [[nodiscard]] bool tracing() const { return !options_.trace_path.empty(); }
  [[nodiscard]] const TelemetryOptions& options() const { return options_; }

 private:
  TelemetryOptions options_;
  bool finalized_ = false;
};

/// Per-counter table (total, and per-snapshot mean/min/max when the stats
/// aggregate more than one snapshot) for --metrics output.
void print_counter_report(std::FILE* out, const CounterStats& stats);

/// Convenience for single-run reports: wraps one snapshot.
void print_counter_report(std::FILE* out, const Counters& counters);

}  // namespace pts::obs
