#pragma once
// CLI-facing glue for the telemetry subsystem: one call turns the shared
// `--log-level=`, `--trace-out=`, and `--metrics` flags into a configured
// session that owns the tracer's lifetime and writes the trace files when it
// goes out of scope. Examples and bench drivers construct one of these right
// after CliArgs::parse and forget about it.
//
//   --log-level=debug|info|warn|error|off   logger threshold (util/logging)
//   --trace-out=PATH   enable tracing; Chrome trace JSON at PATH, the flat
//                      JSONL event stream at PATH.jsonl
//   --metrics          callers print a per-counter report after the run
//                      (TelemetrySession only latches the flag)
//   --metrics-out=PATH metrics-registry snapshots: Prometheus text
//                      exposition, or one-object-per-line JSONL when PATH
//                      ends in .jsonl; rewritten atomically (tmp + rename)
//                      so a scraper never sees a torn file
//   --metrics-every=S  rewrite the snapshot every S seconds while the run
//                      is live (0 = only the final snapshot at exit)

#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>

#include "obs/counters.hpp"
#include "util/cli.hpp"

namespace pts::obs {

struct TelemetryOptions {
  std::string trace_path;        ///< empty = tracing stays off
  bool metrics = false;
  std::string metrics_out_path;  ///< empty = no metrics snapshots
  double metrics_every_seconds = 0.0;  ///< 0 = final snapshot only

  /// Reads the flags; applies --log-level immediately (an unknown level
  /// warns on stderr and leaves the threshold unchanged).
  static TelemetryOptions from_cli(const CliArgs& args);
};

/// Enables the global tracer on construction when options.trace_path is set;
/// on destruction (or an explicit finalize()) writes the Chrome trace and
/// JSONL files and disables tracing again. When options.metrics_out_path is
/// set, also snapshots the metrics registry there — periodically from a
/// background thread if metrics_every_seconds > 0, and always once at
/// finalize.
class TelemetrySession {
 public:
  TelemetrySession() = default;
  explicit TelemetrySession(TelemetryOptions options);
  ~TelemetrySession();
  TelemetrySession(const TelemetrySession&) = delete;
  TelemetrySession& operator=(const TelemetrySession&) = delete;

  /// Writes the trace files (if tracing was requested) and the final metrics
  /// snapshot (if requested), stops the periodic writer, and disables the
  /// tracer. Idempotent. Returns false when a file could not be written.
  bool finalize();

  [[nodiscard]] bool metrics() const { return options_.metrics; }
  [[nodiscard]] bool tracing() const { return !options_.trace_path.empty(); }
  [[nodiscard]] const TelemetryOptions& options() const { return options_; }

 private:
  bool write_metrics_snapshot();
  void stop_periodic_writer();

  TelemetryOptions options_;
  bool finalized_ = false;
  std::thread writer_;
  std::mutex writer_mutex_;
  std::condition_variable writer_cv_;
  bool writer_stop_ = false;
};

/// Atomic (tmp + rename) metrics-registry snapshot: Prometheus text, or
/// JSONL when the path ends in ".jsonl". Exposed for drivers that want a
/// snapshot at a specific moment (suite boundaries) without a session.
bool write_metrics_snapshot_file(const std::string& path);

/// Per-counter table (total, and per-snapshot mean/min/max when the stats
/// aggregate more than one snapshot) for --metrics output.
void print_counter_report(std::FILE* out, const CounterStats& stats);

/// Convenience for single-run reports: wraps one snapshot.
void print_counter_report(std::FILE* out, const Counters& counters);

}  // namespace pts::obs
