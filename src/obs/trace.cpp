#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <set>
#include <utility>

namespace pts::obs {

namespace {

thread_local std::uint32_t tl_tid = 0;

/// JSON string escaping for the few dynamic strings we emit (thread names,
/// retune kinds): quotes, backslashes and control characters.
void append_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_double(std::string& out, double v) {
  char buf[32];
  // %.17g round-trips but bloats the file; counters and strategy knobs are
  // small integers or seconds, where %.6g is exact enough and readable.
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out += buf;
}

std::string event_json(const TraceEvent& event) {
  std::string line = "{\"name\":\"";
  append_escaped(line, event.name);
  line += "\",\"ph\":\"";
  line += event.phase;
  line += "\",\"ts\":" + std::to_string(event.ts_us);
  if (event.phase == 'X') line += ",\"dur\":" + std::to_string(event.dur_us);
  line += ",\"pid\":" + std::to_string(event.pid) +
          ",\"tid\":" + std::to_string(event.tid);
  if (!event.args.empty() || event.detail_key != nullptr) {
    line += ",\"args\":{";
    bool first = true;
    for (const auto& arg : event.args) {
      if (!first) line += ',';
      first = false;
      line += '"';
      append_escaped(line, arg.key);
      line += "\":";
      append_double(line, arg.value);
    }
    if (event.detail_key != nullptr) {
      if (!first) line += ',';
      line += '"';
      append_escaped(line, event.detail_key);
      line += "\":\"";
      append_escaped(line, event.detail);
      line += '"';
    }
    line += '}';
  }
  line += '}';
  return line;
}

}  // namespace

const char* intern_name(std::string_view name) {
  // Node-based set: element addresses are stable across insertions, so the
  // returned c_str() lives for the process. Guarded by its own mutex — the
  // interner is only hit on the chunk-merge path (per round, not per event
  // name lookup in steady state misses rarely).
  static std::mutex mutex;
  static std::set<std::string, std::less<>> names;
  std::scoped_lock lock(mutex);
  auto it = names.find(name);
  if (it == names.end()) it = names.emplace(name).first;
  return it->c_str();
}

std::uint32_t thread_tid() { return tl_tid; }

TidScope::TidScope(std::uint32_t tid) : previous_(tl_tid) { tl_tid = tid; }
TidScope::~TidScope() { tl_tid = previous_; }

void Tracer::set_enabled(bool enabled) {
  if (!kTelemetryCompiled) return;
  if (enabled) {
    std::scoped_lock lock(mutex_);
    if (events_.empty()) epoch_ = std::chrono::steady_clock::now();
  }
  enabled_.store(enabled, std::memory_order_relaxed);
}

std::int64_t Tracer::now_us() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void Tracer::record_event(TraceEvent event) {
  std::scoped_lock lock(mutex_);
  events_.push_back(std::move(event));
}

void Tracer::span(const char* name, std::int64_t start_us,
                  std::initializer_list<TraceArg> args, const char* detail_key,
                  std::string detail) {
  if (!enabled()) return;
  TraceEvent event;
  event.name = name;
  event.phase = 'X';
  event.tid = tl_tid;
  event.ts_us = start_us;
  event.dur_us = std::max<std::int64_t>(0, now_us() - start_us);
  event.args = args;
  event.detail_key = detail_key;
  event.detail = std::move(detail);
  record_event(std::move(event));
}

void Tracer::instant(const char* name, std::initializer_list<TraceArg> args,
                     const char* detail_key, std::string detail) {
  if (!enabled()) return;
  TraceEvent event;
  event.name = name;
  event.phase = 'i';
  event.tid = tl_tid;
  event.ts_us = now_us();
  event.args = args;
  event.detail_key = detail_key;
  event.detail = std::move(detail);
  record_event(std::move(event));
}

void Tracer::sample(const char* name, double value) {
  if (!enabled()) return;
  TraceEvent event;
  event.name = name;
  event.phase = 'C';
  event.tid = tl_tid;
  event.ts_us = now_us();
  event.args = {TraceArg{"value", value}};
  record_event(std::move(event));
}

void Tracer::name_thread(std::uint32_t tid, std::string name) {
  if (!enabled()) return;
  TraceEvent event;
  event.name = "thread_name";
  event.phase = 'M';
  event.tid = tid;
  event.ts_us = 0;
  event.detail_key = "name";
  event.detail = std::move(name);
  record_event(std::move(event));
}

void Tracer::name_process(std::uint32_t pid, std::string name) {
  if (!enabled()) return;
  TraceEvent event;
  event.name = "process_name";
  event.phase = 'M';
  event.pid = pid;
  event.tid = 0;
  event.ts_us = 0;
  event.detail_key = "name";
  event.detail = std::move(name);
  record_event(std::move(event));
}

void Tracer::clear() {
  std::scoped_lock lock(mutex_);
  events_.clear();
  epoch_ = std::chrono::steady_clock::now();
}

std::vector<TraceEvent> Tracer::drain() {
  std::scoped_lock lock(mutex_);
  return std::exchange(events_, {});
}

std::size_t Tracer::size() const {
  std::scoped_lock lock(mutex_);
  return events_.size();
}

std::vector<TraceEvent> Tracer::snapshot() const {
  std::scoped_lock lock(mutex_);
  return events_;
}

void Tracer::write_chrome_trace(std::ostream& out) const {
  auto events = snapshot();
  // Stable sort by timestamp: spans are recorded at completion but stamped
  // with their start, so raw append order is not time order. After sorting,
  // timestamps are monotone per thread in file order (the schema test's
  // invariant).
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_us < b.ts_us;
                   });
  out << "{\"traceEvents\":[\n";
  for (std::size_t i = 0; i < events.size(); ++i) {
    out << event_json(events[i]) << (i + 1 < events.size() ? ",\n" : "\n");
  }
  out << "]}\n";
}

void Tracer::write_jsonl(std::ostream& out) const {
  auto events = snapshot();
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_us < b.ts_us;
                   });
  for (const auto& event : events) out << event_json(event) << '\n';
}

Tracer& tracer() {
  static Tracer instance;
  return instance;
}

SpanScope::SpanScope(const char* name, std::initializer_list<TraceArg> args)
    : name_(name) {
  if (!tracer().enabled()) return;
  armed_ = true;
  args_ = args;
  start_us_ = tracer().now_us();
}

SpanScope::~SpanScope() {
  // Armed at construction means the span records even if tracing was turned
  // off mid-scope — a half-captured phase is more useful than a hole, and
  // TelemetrySession::clear() discards stragglers before the next session.
  if (!armed_) return;
  TraceEvent event;
  event.name = name_;
  event.phase = 'X';
  event.tid = thread_tid();
  event.ts_us = start_us_;
  event.dur_us = std::max<std::int64_t>(0, tracer().now_us() - start_us_);
  event.args = std::move(args_);
  tracer().record_event(std::move(event));
}

}  // namespace pts::obs
