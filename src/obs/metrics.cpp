#include "obs/metrics.hpp"

#include <cstdio>
#include <ostream>

namespace pts::obs {

namespace {

/// Metric names are our own identifiers ([a-z0-9_]), but escape defensively
/// anyway — a bad name must not produce an unparseable export.
void append_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

std::string fmt_double(double v) {
  char buf[40];
  // %.9g: enough digits that microsecond-scale latencies survive the trip
  // through a scrape, without the %.17g bloat.
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

struct HistogramRow {
  std::string name;
  LogHistogram hist;
};

}  // namespace

MetricCounter& MetricsRegistry::counter(std::string_view name) {
  std::scoped_lock lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<MetricCounter>())
             .first;
  }
  return *it->second;
}

MetricGauge& MetricsRegistry::gauge(std::string_view name) {
  std::scoped_lock lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<MetricGauge>())
             .first;
  }
  return *it->second;
}

MetricHistogram& MetricsRegistry::histogram(std::string_view name) {
  std::scoped_lock lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<MetricHistogram>())
             .first;
  }
  return *it->second;
}

void MetricsRegistry::write_prometheus(std::ostream& out) const {
  std::scoped_lock lock(mutex_);
  for (const auto& [name, counter] : counters_) {
    out << "# TYPE pts_" << name << " counter\n";
    out << "pts_" << name << ' ' << counter->value() << '\n';
  }
  for (const auto& [name, gauge] : gauges_) {
    out << "# TYPE pts_" << name << " gauge\n";
    out << "pts_" << name << ' ' << fmt_double(gauge->value()) << '\n';
  }
  for (const auto& [name, histogram] : histograms_) {
    const auto hist = histogram->snapshot();
    out << "# TYPE pts_" << name << " summary\n";
    for (const auto& [label, q] :
         {std::pair{"0.5", 0.5}, std::pair{"0.9", 0.9}, std::pair{"0.99", 0.99}}) {
      out << "pts_" << name << "{quantile=\"" << label << "\"} "
          << fmt_double(hist.percentile(q)) << '\n';
    }
    out << "pts_" << name << "_sum " << fmt_double(hist.sum()) << '\n';
    out << "pts_" << name << "_count " << hist.count() << '\n';
  }
}

void MetricsRegistry::write_jsonl(std::ostream& out) const {
  std::scoped_lock lock(mutex_);
  for (const auto& [name, counter] : counters_) {
    std::string line = "{\"metric\":\"";
    append_escaped(line, name);
    line += "\",\"type\":\"counter\",\"value\":";
    line += std::to_string(counter->value());
    line += '}';
    out << line << '\n';
  }
  for (const auto& [name, gauge] : gauges_) {
    std::string line = "{\"metric\":\"";
    append_escaped(line, name);
    line += "\",\"type\":\"gauge\",\"value\":";
    line += fmt_double(gauge->value());
    line += '}';
    out << line << '\n';
  }
  for (const auto& [name, histogram] : histograms_) {
    const auto hist = histogram->snapshot();
    std::string line = "{\"metric\":\"";
    append_escaped(line, name);
    line += "\",\"type\":\"histogram\",\"count\":";
    line += std::to_string(hist.count());
    line += ",\"sum\":" + fmt_double(hist.sum());
    line += ",\"min\":" + fmt_double(hist.min());
    line += ",\"max\":" + fmt_double(hist.max());
    line += ",\"p50\":" + fmt_double(hist.percentile(0.5));
    line += ",\"p90\":" + fmt_double(hist.percentile(0.9));
    line += ",\"p99\":" + fmt_double(hist.percentile(0.99));
    line += '}';
    out << line << '\n';
  }
}

void MetricsRegistry::write_histogram_csv(std::ostream& out) const {
  std::vector<HistogramRow> rows;
  {
    std::scoped_lock lock(mutex_);
    rows.reserve(histograms_.size());
    for (const auto& [name, histogram] : histograms_) {
      rows.push_back({name, histogram->snapshot()});
    }
  }
  out << "name,count,sum,min,max,p50,p90,p99\n";
  for (const auto& row : rows) {
    out << row.name << ',' << row.hist.count() << ','
        << fmt_double(row.hist.sum()) << ',' << fmt_double(row.hist.min())
        << ',' << fmt_double(row.hist.max()) << ','
        << fmt_double(row.hist.percentile(0.5)) << ','
        << fmt_double(row.hist.percentile(0.9)) << ','
        << fmt_double(row.hist.percentile(0.99)) << '\n';
  }
}

std::vector<MetricsRegistry::CounterDelta> MetricsRegistry::drain_counter_deltas() {
  std::scoped_lock lock(mutex_);
  std::vector<CounterDelta> deltas;
  for (const auto& [name, counter] : counters_) {
    const auto total = counter->value();
    auto& drained = drained_totals_[name];
    if (total > drained) {
      deltas.push_back({name, total - drained});
      drained = total;
    }
  }
  return deltas;
}

void MetricsRegistry::apply_counter_delta(std::string_view name,
                                          std::uint64_t delta) {
  counter(name).add_raw(delta);
}

void MetricsRegistry::reset_values() {
  std::scoped_lock lock(mutex_);
  for (auto& [name, counter] : counters_) counter->reset();
  for (auto& [name, gauge] : gauges_) gauge->reset();
  for (auto& [name, histogram] : histograms_) histogram->reset();
  drained_totals_.clear();
}

bool MetricsRegistry::empty() const {
  std::scoped_lock lock(mutex_);
  return counters_.empty() && gauges_.empty() && histograms_.empty();
}

bool MetricsRegistry::has_histogram_samples() const {
  std::scoped_lock lock(mutex_);
  for (const auto& [name, histogram] : histograms_) {
    if (histogram->snapshot().count() > 0) return true;
  }
  return false;
}

MetricsRegistry& metrics() {
  static MetricsRegistry instance;
  return instance;
}

}  // namespace pts::obs
