#include "bounds/reduction.hpp"

#include "bounds/simplex.hpp"
#include "util/check.hpp"

namespace pts::bounds {

namespace {
constexpr double kTol = 1e-7;
}

ReductionResult reduced_cost_fixing(const mkp::Instance& inst, double lower_bound,
                                    const ReductionOptions& options) {
  const std::size_t n = inst.num_items();
  ReductionResult result;
  result.status.assign(n, FixedValue::kFree);
  result.lower_bound_used = lower_bound;

  const auto lp = solve_lp_relaxation(inst);
  if (!lp.optimal()) return result;  // nothing can be fixed safely
  result.lp_solved = true;
  result.lp_objective = lp.objective;

  const double cut = lower_bound + options.gap_eps;
  for (std::size_t j = 0; j < n; ++j) {
    const double x = lp.primal[j];
    const double d = lp.reduced_costs[j];
    if (x <= kTol && d <= kTol) {
      // At lower bound: forcing x_j = 1 bounds the IP by z_LP + d_j.
      if (lp.objective + d < cut - kTol) {
        result.status[j] = FixedValue::kZero;
        ++result.fixed_to_zero;
      }
    } else if (x >= 1.0 - kTol && d >= -kTol) {
      // At upper bound: forcing x_j = 0 bounds the IP by z_LP - d_j.
      if (lp.objective - d < cut - kTol) {
        result.status[j] = FixedValue::kOne;
        ++result.fixed_to_one;
      }
    }
    // Basic / fractional variables are never fixed.
  }
  return result;
}

ReducedInstance build_reduced(const mkp::Instance& inst, const ReductionResult& fixing) {
  const std::size_t n = inst.num_items();
  const std::size_t m = inst.num_constraints();
  PTS_CHECK(fixing.status.size() == n);

  ReducedInstance reduced;
  reduced.status = fixing.status;

  std::vector<double> residual_capacity(m);
  for (std::size_t i = 0; i < m; ++i) residual_capacity[i] = inst.capacity(i);
  for (std::size_t j = 0; j < n; ++j) {
    if (fixing.status[j] == FixedValue::kOne) {
      reduced.banked_profit += inst.profit(j);
      for (std::size_t i = 0; i < m; ++i) residual_capacity[i] -= inst.weight(i, j);
    } else if (fixing.status[j] == FixedValue::kFree) {
      reduced.free_to_original.push_back(j);
    }
  }
  for (double cap : residual_capacity) {
    PTS_CHECK_MSG(cap >= -1e-9, "fixed-to-one variables exceed a capacity");
  }

  if (reduced.free_to_original.empty()) return reduced;  // fully solved

  const std::size_t k = reduced.free_to_original.size();
  std::vector<double> profits(k);
  std::vector<double> weights(m * k);
  for (std::size_t col = 0; col < k; ++col) {
    const std::size_t j = reduced.free_to_original[col];
    profits[col] = inst.profit(j);
    for (std::size_t i = 0; i < m; ++i) weights[i * k + col] = inst.weight(i, j);
  }
  for (std::size_t i = 0; i < m; ++i) {
    residual_capacity[i] = std::max(0.0, residual_capacity[i]);
  }
  reduced.instance.emplace(inst.name() + "-reduced", std::move(profits),
                           std::move(weights), std::move(residual_capacity));
  return reduced;
}

mkp::Solution ReducedInstance::lift(const mkp::Instance& original,
                                    const mkp::Solution* residual) const {
  PTS_CHECK(status.size() == original.num_items());
  mkp::Solution full(original);
  for (std::size_t j = 0; j < original.num_items(); ++j) {
    if (status[j] == FixedValue::kOne) full.add(j);
  }
  if (residual != nullptr) {
    PTS_CHECK(residual->num_items() == free_to_original.size());
    for (std::size_t col = 0; col < free_to_original.size(); ++col) {
      if (residual->contains(col)) full.add(free_to_original[col]);
    }
  }
  PTS_CHECK_MSG(full.is_feasible(), "lifted solution violates the original instance");
  return full;
}

}  // namespace pts::bounds
