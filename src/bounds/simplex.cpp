#include "bounds/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "bounds/linalg.hpp"
#include "util/check.hpp"

namespace pts::bounds {

namespace {

// Variable indexing: 0..n-1 structural (bounds [0,1]), n..n+m-1 slack
// (bounds [0, inf)). Column of structural j is A's column j; column of
// slack i is e_i.
struct Tableau {
  const mkp::Instance* inst;
  std::size_t n, m;

  [[nodiscard]] double lower(std::size_t) const { return 0.0; }
  [[nodiscard]] double upper(std::size_t var) const {
    return var < n ? 1.0 : std::numeric_limits<double>::infinity();
  }
  [[nodiscard]] double cost(std::size_t var) const {
    return var < n ? inst->profit(var) : 0.0;
  }
  /// Column entry (row i) of variable `var`.
  [[nodiscard]] double entry(std::size_t i, std::size_t var) const {
    if (var < n) return inst->weight(i, var);
    return var - n == i ? 1.0 : 0.0;
  }
};

enum class Status : std::uint8_t { kAtLower, kAtUpper, kBasic };

}  // namespace

LpResult solve_lp_relaxation(const mkp::Instance& inst, const LpOptions& options) {
  const std::size_t n = inst.num_items();
  const std::size_t m = inst.num_constraints();
  Tableau tab{&inst, n, m};

  LpResult result;
  result.primal.assign(n, 0.0);
  result.duals.assign(m, 0.0);

  // Start: all slacks basic, all structural at lower bound (x = 0, feasible).
  std::vector<std::size_t> basis(m);
  std::vector<Status> status(n + m, Status::kAtLower);
  for (std::size_t i = 0; i < m; ++i) {
    basis[i] = n + i;
    status[n + i] = Status::kBasic;
  }

  std::vector<double> basis_matrix(m * m);
  std::vector<double> x_basic(m);
  std::vector<double> rhs(m);
  std::vector<double> cost_basic(m);

  double last_objective = -std::numeric_limits<double>::infinity();
  std::size_t stalls = 0;

  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;

    // Refactorize B and recover x_B = B^{-1}(b - N x_N).
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t k = 0; k < m; ++k) basis_matrix[i * m + k] = tab.entry(i, basis[k]);
    }
    const auto lu = LuFactors::factorize(basis_matrix, m);
    if (!lu.ok()) {
      result.status = LpStatus::kSingular;
      return result;
    }
    for (std::size_t i = 0; i < m; ++i) {
      double value = inst.capacity(i);
      for (std::size_t j = 0; j < n; ++j) {
        if (status[j] == Status::kAtUpper) value -= tab.entry(i, j);  // x_j = 1
      }
      rhs[i] = value;  // slacks at bounds are all at 0, contributing nothing
    }
    x_basic = lu.solve(rhs);

    // Duals y from Bᵀ y = c_B; reduced costs d_j = c_j - yᵀ A_j.
    for (std::size_t k = 0; k < m; ++k) cost_basic[k] = tab.cost(basis[k]);
    const auto y = lu.solve_transposed(cost_basic);

    const bool use_bland = stalls >= options.bland_after_stalls;
    std::size_t entering = n + m;  // sentinel
    bool entering_from_lower = true;
    double best_score = options.tolerance;
    for (std::size_t var = 0; var < n + m; ++var) {
      if (status[var] == Status::kBasic) continue;
      double reduced = tab.cost(var);
      for (std::size_t i = 0; i < m; ++i) reduced -= y[i] * tab.entry(i, var);
      const bool improves = status[var] == Status::kAtLower
                                ? reduced > options.tolerance
                                : reduced < -options.tolerance;
      if (!improves) continue;
      const double score = std::fabs(reduced);
      if (use_bland) {  // first improving index
        entering = var;
        entering_from_lower = status[var] == Status::kAtLower;
        break;
      }
      if (score > best_score) {
        best_score = score;
        entering = var;
        entering_from_lower = status[var] == Status::kAtLower;
      }
    }

    if (entering == n + m) {
      // Optimal: assemble primal values and objective.
      double objective = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        result.primal[j] = status[j] == Status::kAtUpper ? 1.0 : 0.0;
      }
      for (std::size_t k = 0; k < m; ++k) {
        if (basis[k] < n) result.primal[basis[k]] = std::clamp(x_basic[k], 0.0, 1.0);
      }
      for (std::size_t j = 0; j < n; ++j) objective += inst.profit(j) * result.primal[j];
      for (std::size_t i = 0; i < m; ++i) result.duals[i] = std::max(0.0, y[i]);
      result.reduced_costs.assign(n, 0.0);
      for (std::size_t j = 0; j < n; ++j) {
        double reduced = inst.profit(j);
        for (std::size_t i = 0; i < m; ++i) reduced -= y[i] * inst.weight(i, j);
        result.reduced_costs[j] = reduced;
      }
      result.objective = objective;
      result.status = LpStatus::kOptimal;
      return result;
    }

    // Direction: entering moves by t >= 0 away from its bound. Basic values
    // change by -alpha t (from lower) or +alpha t (from upper), where
    // alpha = B^{-1} A_entering.
    std::vector<double> column(m);
    for (std::size_t i = 0; i < m; ++i) column[i] = tab.entry(i, entering);
    const auto alpha = lu.solve(column);

    double t_max = tab.upper(entering) - tab.lower(entering);  // bound-flip step
    std::size_t leaving = m;  // sentinel; m means bound flip
    bool leaving_to_lower = true;
    for (std::size_t k = 0; k < m; ++k) {
      const double direction = entering_from_lower ? -alpha[k] : alpha[k];
      if (std::fabs(direction) < 1e-11) continue;
      const std::size_t var = basis[k];
      double limit;
      bool to_lower;
      if (direction < 0.0) {  // basic value decreases toward its lower bound
        limit = (x_basic[k] - tab.lower(var)) / -direction;
        to_lower = true;
      } else {  // increases toward its upper bound
        const double ub = tab.upper(var);
        if (!std::isfinite(ub)) continue;
        limit = (ub - x_basic[k]) / direction;
        to_lower = false;
      }
      if (limit < t_max - 1e-12) {
        t_max = limit;
        leaving = k;
        leaving_to_lower = to_lower;
      }
    }

    if (!std::isfinite(t_max)) {
      // All variables of this model are bounded or slack-limited; an
      // unbounded ray cannot occur with b >= 0 and a >= 0, but guard anyway.
      result.status = LpStatus::kIterationLimit;
      return result;
    }

    if (leaving == m) {
      // Bound flip: entering jumps to its opposite bound; basis unchanged.
      status[entering] =
          entering_from_lower ? Status::kAtUpper : Status::kAtLower;
    } else {
      status[basis[leaving]] = leaving_to_lower ? Status::kAtLower : Status::kAtUpper;
      status[entering] = Status::kBasic;
      basis[leaving] = entering;
    }

    // Stall detection for the Bland fallback.
    double objective = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (status[j] == Status::kAtUpper) objective += inst.profit(j);
    }
    for (std::size_t k = 0; k < m; ++k) {
      if (basis[k] < n) objective += inst.profit(basis[k]) * x_basic[k];
    }
    if (objective > last_objective + options.tolerance) {
      last_objective = objective;
      stalls = 0;
    } else {
      ++stalls;
    }
  }

  result.status = LpStatus::kIterationLimit;
  return result;
}

}  // namespace pts::bounds
