#pragma once
// The core-problem layer: shrink an MKP before searching it.
//
// Boussier et al.'s resolution search and Xu et al.'s "promising search
// space" (PAPERS.md) both win on the hard GK 10×500 / 30×500 family by the
// same move — don't search all n variables, search the residual core the LP
// cannot settle. This module packages that as one deterministic step on top
// of bounds/reduction:
//
//   greedy lower bound (optionally raised by a caller-supplied incumbent)
//     → LP reduced-cost fixing (reduced_cost_fixing)
//       → residual core Instance + index map + banked profit (build_reduced)
//
// and the inverse lift back to full space. The parallel runner wraps a whole
// cooperative run with it (ParallelConfig::core): master and slaves operate
// entirely in core coordinates — smaller columns for the SIMD kernels,
// smaller bitvecs on the wire — and only the runner's boundary translates.
// Soundness is inherited from reduced_cost_fixing: with gap_eps = 0 no
// solution strictly better than the lower bound is ever cut off, so the
// optimum survives whenever it beats the greedy value (tests/bounds pin
// this on instances with known optima).

#include <cstddef>
#include <optional>

#include "bounds/reduction.hpp"
#include "mkp/instance.hpp"
#include "mkp/solution.hpp"

namespace pts::bounds {

struct CoreOptions {
  /// Master switch (`--core-reduction`). Off = the runner never calls us.
  bool enabled = false;

  /// Forwarded to reduced_cost_fixing: solutions within gap_eps of the lower
  /// bound may be lost. 0 preserves ties (never excludes an optimum that
  /// beats the greedy bound).
  double gap_eps = 0.0;

  /// Engage only when at least this fraction of the variables was fixed; a
  /// reduction that settles almost nothing just adds remap overhead on both
  /// sides of the run.
  double min_fixed_fraction = 0.02;

  /// Optional known feasible value (an incumbent from an earlier run or a
  /// presolve pass); the fixing uses max(greedy value, hint). A tighter
  /// bound fixes more variables — this is how "reduce again at restarts
  /// with the current incumbent" composes.
  std::optional<double> lower_bound_hint;
};

/// The outcome of one reduction attempt. `use_core` is the runner's switch:
/// false means run the full instance untouched (LP failed or the fixing was
/// below min_fixed_fraction); `reduced` is only populated when true.
struct CoreProblem {
  ReductionResult fixing;
  ReducedInstance reduced;
  double lower_bound = 0.0;  ///< the feasible value the fixing used
  bool use_core = false;

  /// Every variable settled: no search needed, lift(nullptr) reconstructs
  /// the (unique surviving) full-space solution.
  [[nodiscard]] bool solved_outright() const {
    return use_core && !reduced.instance.has_value();
  }

  [[nodiscard]] const mkp::Instance& core_instance() const {
    PTS_CHECK(use_core && reduced.instance.has_value());
    return *reduced.instance;
  }

  [[nodiscard]] double banked_profit() const { return reduced.banked_profit; }

  /// Full-space solution from a core-space one (nullptr when
  /// solved_outright). Aborts on an infeasible lift — that means the fixing
  /// belongs to a different instance.
  [[nodiscard]] mkp::Solution lift(const mkp::Instance& original,
                                   const mkp::Solution* core_solution) const {
    return reduced.lift(original, core_solution);
  }
};

/// Deterministic: same instance + options → same fixing, same core. The
/// greedy bound is exact-arithmetic-free but fixed-order, so a resumed run
/// rederives the identical reduction it checkpointed under.
[[nodiscard]] CoreProblem build_core_problem(const mkp::Instance& inst,
                                             const CoreOptions& options);

}  // namespace pts::bounds
