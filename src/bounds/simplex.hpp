#pragma once
// LP relaxation of the 0-1 MKP via a bounded-variable revised simplex:
//
//   max c^T x   s.t.  A x <= b,  0 <= x <= 1.
//
// Structural variables carry the [0,1] bounds directly (no explicit bound
// rows), slacks are [0, inf). The starting all-slack basis is feasible
// because b >= 0, so no phase-1 is needed. The basis matrix is refactorized
// every iteration — at the m <= 30 of the paper's instances this costs
// microseconds and sidesteps update-formula drift.
//
// The LP optimum is the tightest linear bound we compute; Table 1's
// "Dev. in %" column is measured against it for instances too large for the
// exact solver (DESIGN.md data-substitution note).

#include <cstddef>
#include <vector>

#include "mkp/instance.hpp"

namespace pts::bounds {

enum class LpStatus {
  kOptimal,
  kIterationLimit,  ///< safeguard tripped; objective is still a valid bound
                    ///< only if derived from a dual-feasible point — callers
                    ///< should treat it as "failed"
  kSingular,        ///< basis matrix could not be factorized
};

struct LpResult {
  LpStatus status = LpStatus::kIterationLimit;
  double objective = 0.0;
  std::vector<double> primal;  ///< x_j in [0,1], size n
  std::vector<double> duals;   ///< y_i >= 0 per constraint, size m
  /// d_j = c_j - y^T A_j at the optimum, size n. Non-positive for variables
  /// at 0, non-negative for variables at 1, ~0 for basic (fractional) ones.
  /// Feeds reduced-cost variable fixing (bounds/reduction.hpp).
  std::vector<double> reduced_costs;
  std::size_t iterations = 0;

  [[nodiscard]] bool optimal() const { return status == LpStatus::kOptimal; }
};

struct LpOptions {
  std::size_t max_iterations = 20000;
  double tolerance = 1e-9;
  /// After this many iterations without objective progress, switch from
  /// Dantzig pricing to Bland's rule to break potential cycles.
  std::size_t bland_after_stalls = 64;
};

LpResult solve_lp_relaxation(const mkp::Instance& inst, const LpOptions& options = {});

}  // namespace pts::bounds
