#include "bounds/dantzig.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "util/check.hpp"

namespace pts::bounds {

double dantzig_bound(std::span<const double> profits, std::span<const double> weights,
                     std::span<const std::size_t> order, double capacity) {
  PTS_CHECK(profits.size() == weights.size());
  double remaining = capacity;
  double bound = 0.0;
  for (std::size_t j : order) {
    PTS_DCHECK(j < profits.size());
    const double w = weights[j];
    if (w <= remaining) {
      bound += profits[j];
      remaining -= w;
    } else {
      if (w > 0.0 && remaining > 0.0) bound += profits[j] * (remaining / w);
      break;
    }
  }
  return bound;
}

std::vector<std::size_t> density_order(std::span<const double> profits,
                                       std::span<const double> weights) {
  PTS_CHECK(profits.size() == weights.size());
  std::vector<double> keys(profits.size());
  for (std::size_t j = 0; j < profits.size(); ++j) {
    keys[j] = weights[j] > 0.0 ? profits[j] / weights[j]
                               : std::numeric_limits<double>::infinity();
  }
  std::vector<std::size_t> order(profits.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) { return keys[a] > keys[b]; });
  return order;
}

double min_constraint_bound(const mkp::Instance& inst) {
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < inst.num_constraints(); ++i) {
    const auto row = inst.weights_row(i);
    const auto order = density_order(inst.profits(), row);
    best = std::min(best, dantzig_bound(inst.profits(), row, order, inst.capacity(i)));
  }
  return best;
}

}  // namespace pts::bounds
