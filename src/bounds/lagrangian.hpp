#pragma once
// Lagrangian relaxation of the MKP with subgradient optimization. Dualizing
// all m constraints with multipliers u >= 0:
//
//   L(u) = max_{x in {0,1}^n} sum_j (c_j - u^T A_j) x_j + u^T b
//        = sum_j max(0, c_j - u^T A_j) + u^T b
//
// Every u gives a valid upper bound; the dual min_u L(u) is approached by
// projected subgradient steps. Because the inner problem has the
// integrality property, the Lagrangian dual equals the LP-relaxation bound
// — which the tests exploit as a cross-check between two independently
// implemented bounding procedures (subgradient vs simplex).

#include <cstddef>
#include <span>
#include <vector>

#include "mkp/instance.hpp"

namespace pts::bounds {

struct LagrangianOptions {
  std::size_t max_iterations = 300;
  /// Polyak-style step: t_k = agility * (L(u) - target) / ||g||^2, with the
  /// best known feasible value as target (0 if unknown).
  double agility = 1.0;
  double target = 0.0;
  /// Halve agility after this many iterations without improving the bound.
  std::size_t halve_after = 20;
  double tolerance = 1e-7;
};

struct LagrangianResult {
  double bound = 0.0;                ///< min over iterations of L(u)
  std::vector<double> multipliers;   ///< the best u
  std::size_t iterations = 0;
  /// x(u*) — the inner maximizer at the best u; often near-feasible and a
  /// useful construction seed.
  std::vector<bool> inner_solution;
};

/// L(u) for a fixed multiplier vector (u_i >= 0).
double lagrangian_value(const mkp::Instance& inst, std::span<const double> multipliers);

LagrangianResult solve_lagrangian(const mkp::Instance& inst,
                                  const LagrangianOptions& options = {});

}  // namespace pts::bounds
