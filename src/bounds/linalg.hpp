#pragma once
// Small dense linear algebra for the LP relaxation: LU factorization with
// partial pivoting sized for basis matrices of up to a few dozen rows
// (MKP constraint counts in the paper top out at m = 30).

#include <cstddef>
#include <span>
#include <vector>

namespace pts::bounds {

/// Dense row-major square LU factorization with partial pivoting.
/// Factor once per simplex iteration, then solve Ax=b and yᵀA=cᵀ cheaply.
class LuFactors {
 public:
  /// Factorizes `matrix` (row-major, size*size). Returns an engaged factor
  /// object, or disengaged (ok() == false) when the matrix is singular to
  /// working precision.
  static LuFactors factorize(std::span<const double> matrix, std::size_t size);

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] std::size_t size() const { return size_; }

  /// Solve A x = rhs.
  [[nodiscard]] std::vector<double> solve(std::span<const double> rhs) const;

  /// Solve Aᵀ x = rhs (used for the dual vector y: Bᵀ y = c_B).
  [[nodiscard]] std::vector<double> solve_transposed(std::span<const double> rhs) const;

 private:
  LuFactors() = default;
  std::size_t size_ = 0;
  bool ok_ = false;
  std::vector<double> lu_;        // combined L (unit diag) and U, row-major
  std::vector<std::size_t> perm_; // row permutation: row i of PA is perm_[i] of A
};

}  // namespace pts::bounds
