#include "bounds/lagrangian.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace pts::bounds {

namespace {

/// Inner maximization at u: pick every item with positive reduced profit.
/// Returns L(u) and fills `chosen` when non-null.
double inner_solve(const mkp::Instance& inst, std::span<const double> u,
                   std::vector<bool>* chosen) {
  const std::size_t n = inst.num_items();
  const std::size_t m = inst.num_constraints();
  double value = 0.0;
  for (std::size_t i = 0; i < m; ++i) value += u[i] * inst.capacity(i);
  if (chosen) chosen->assign(n, false);
  for (std::size_t j = 0; j < n; ++j) {
    double reduced = inst.profit(j);
    for (std::size_t i = 0; i < m; ++i) reduced -= u[i] * inst.weight(i, j);
    if (reduced > 0.0) {
      value += reduced;
      if (chosen) (*chosen)[j] = true;
    }
  }
  return value;
}

}  // namespace

double lagrangian_value(const mkp::Instance& inst, std::span<const double> multipliers) {
  PTS_CHECK(multipliers.size() == inst.num_constraints());
  for (double u : multipliers) PTS_CHECK_MSG(u >= 0.0, "multipliers must be >= 0");
  return inner_solve(inst, multipliers, nullptr);
}

LagrangianResult solve_lagrangian(const mkp::Instance& inst,
                                  const LagrangianOptions& options) {
  const std::size_t n = inst.num_items();
  const std::size_t m = inst.num_constraints();

  std::vector<double> u(m, 0.0);  // u = 0 gives L = sum of positive profits
  std::vector<bool> chosen;
  LagrangianResult result;
  result.bound = inner_solve(inst, u, &chosen);
  result.multipliers = u;
  result.inner_solution = chosen;
  result.iterations = 0;

  double agility = options.agility;
  std::size_t since_improvement = 0;

  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;
    const double value = inner_solve(inst, u, &chosen);
    if (value < result.bound - options.tolerance) {
      result.bound = value;
      result.multipliers = u;
      result.inner_solution = chosen;
      since_improvement = 0;
    } else if (++since_improvement >= options.halve_after) {
      agility *= 0.5;
      since_improvement = 0;
      if (agility < 1e-4) break;
    }

    // Subgradient of L at u: g_i = b_i - sum_j a_ij x_j(u).
    std::vector<double> g(m, 0.0);
    double g_norm_sq = 0.0;
    for (std::size_t i = 0; i < m; ++i) {
      double load = 0.0;
      const auto row = inst.weights_row(i);
      for (std::size_t j = 0; j < n; ++j) {
        if (chosen[j]) load += row[j];
      }
      g[i] = inst.capacity(i) - load;
      g_norm_sq += g[i] * g[i];
    }
    if (g_norm_sq < options.tolerance) break;  // x(u) feasible & complementary

    const double gap = std::max(value - options.target, options.tolerance);
    const double step = agility * gap / g_norm_sq;
    for (std::size_t i = 0; i < m; ++i) {
      u[i] = std::max(0.0, u[i] - step * g[i]);
    }
  }
  return result;
}

}  // namespace pts::bounds
