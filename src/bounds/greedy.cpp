#include "bounds/greedy.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

namespace pts::bounds {

namespace {

std::vector<double> order_keys(const mkp::Instance& inst, GreedyOrder order) {
  const std::size_t n = inst.num_items();
  const std::size_t m = inst.num_constraints();
  std::vector<double> keys(n);
  switch (order) {
    case GreedyOrder::kProfit:
      for (std::size_t j = 0; j < n; ++j) keys[j] = inst.profit(j);
      break;
    case GreedyOrder::kDensity:
      for (std::size_t j = 0; j < n; ++j) keys[j] = inst.profit_density(j);
      break;
    case GreedyOrder::kScaledDensity:
      for (std::size_t j = 0; j < n; ++j) {
        double scaled = 0.0;
        for (std::size_t i = 0; i < m; ++i) {
          const double cap = inst.capacity(i);
          if (cap > 0.0) scaled += inst.weight(i, j) / cap;
        }
        keys[j] = scaled > 0.0 ? inst.profit(j) / scaled
                               : std::numeric_limits<double>::infinity();
      }
      break;
  }
  return keys;
}

}  // namespace

std::vector<std::size_t> greedy_item_order(const mkp::Instance& inst, GreedyOrder order) {
  const auto keys = order_keys(inst, order);
  std::vector<std::size_t> items(inst.num_items());
  std::iota(items.begin(), items.end(), std::size_t{0});
  std::stable_sort(items.begin(), items.end(),
                   [&](std::size_t a, std::size_t b) { return keys[a] > keys[b]; });
  return items;
}

void greedy_fill(mkp::Solution& solution, GreedyOrder order) {
  for (std::size_t j : greedy_item_order(solution.instance(), order)) {
    if (!solution.contains(j) && solution.fits(j)) solution.add(j);
  }
}

mkp::Solution greedy_construct(const mkp::Instance& inst, GreedyOrder order) {
  mkp::Solution solution(inst);
  greedy_fill(solution, order);
  return solution;
}

mkp::Solution greedy_randomized(const mkp::Instance& inst, Rng& rng, std::size_t rcl_size,
                                GreedyOrder order) {
  PTS_CHECK(rcl_size >= 1);
  mkp::Solution solution(inst);
  auto candidates = greedy_item_order(inst, order);
  // Repeatedly pick among the first rcl_size still-fitting candidates.
  while (true) {
    std::vector<std::size_t> rcl;
    for (std::size_t j : candidates) {
      if (!solution.contains(j) && solution.fits(j)) {
        rcl.push_back(j);
        if (rcl.size() == rcl_size) break;
      }
    }
    if (rcl.empty()) break;
    solution.add(rcl[rng.index(rcl.size())]);
  }
  return solution;
}

mkp::Solution random_feasible(const mkp::Instance& inst, Rng& rng) {
  mkp::Solution solution(inst);
  for (std::size_t j : random_permutation(inst.num_items(), rng)) {
    if (solution.fits(j)) solution.add(j);
  }
  return solution;
}

void repair_to_feasible(mkp::Solution& solution) {
  const auto& inst = solution.instance();
  while (!solution.is_feasible()) {
    // Drop the selected item with the largest sum_i a_ij / c_j — the least
    // profit per unit of aggregate load (the paper's projection rule).
    std::size_t worst = inst.num_items();
    double worst_ratio = -1.0;
    for (std::size_t j = 0; j < inst.num_items(); ++j) {
      if (!solution.contains(j)) continue;
      const double profit = inst.profit(j);
      const double ratio = profit > 0.0
                               ? inst.column_weight_sum(j) / profit
                               : std::numeric_limits<double>::infinity();
      if (ratio > worst_ratio) {
        worst_ratio = ratio;
        worst = j;
      }
    }
    PTS_CHECK_MSG(worst < inst.num_items(),
                  "infeasible solution with no selected items cannot exist");
    solution.drop(worst);
  }
}

}  // namespace pts::bounds
