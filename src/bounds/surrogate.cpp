#include "bounds/surrogate.hpp"

#include <algorithm>
#include <cmath>

#include "bounds/dantzig.hpp"
#include "bounds/simplex.hpp"
#include "util/check.hpp"

namespace pts::bounds {

namespace {

struct Aggregate {
  std::vector<double> weights;
  double capacity = 0.0;
};

Aggregate aggregate(const mkp::Instance& inst, std::span<const double> u) {
  const std::size_t n = inst.num_items();
  const std::size_t m = inst.num_constraints();
  Aggregate agg;
  agg.weights.assign(n, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    if (u[i] == 0.0) continue;
    const auto row = inst.weights_row(i);
    for (std::size_t j = 0; j < n; ++j) agg.weights[j] += u[i] * row[j];
    agg.capacity += u[i] * inst.capacity(i);
  }
  return agg;
}

}  // namespace

double surrogate_bound(const mkp::Instance& inst, std::span<const double> multipliers) {
  PTS_CHECK(multipliers.size() == inst.num_constraints());
  double sum = 0.0;
  for (double u : multipliers) {
    PTS_CHECK_MSG(u >= 0.0, "surrogate multipliers must be non-negative");
    sum += u;
  }
  PTS_CHECK_MSG(sum > 0.0, "at least one surrogate multiplier must be positive");

  const auto agg = aggregate(inst, multipliers);
  const auto order = density_order(inst.profits(), agg.weights);
  return dantzig_bound(inst.profits(), agg.weights, order, agg.capacity);
}

SurrogateResult solve_surrogate(const mkp::Instance& inst, const SurrogateOptions& options) {
  const std::size_t m = inst.num_constraints();
  SurrogateResult result;

  std::vector<double> u(m, 1.0);
  if (options.seed_with_lp_duals) {
    const auto lp = solve_lp_relaxation(inst);
    if (lp.optimal()) {
      double mass = 0.0;
      for (double y : lp.duals) mass += y;
      if (mass > 0.0) u = lp.duals;
    }
  }
  // Guarantee positivity of the vector as a whole.
  if (std::all_of(u.begin(), u.end(), [](double v) { return v == 0.0; })) {
    u.assign(m, 1.0);
  }

  result.bound = surrogate_bound(inst, u);
  result.multipliers = u;
  result.evaluations = 1;

  // Multiplicative local refinement: nudging one coordinate at a time and
  // keeping any move that lowers the bound. Cheap and monotone.
  double step = 0.5;
  for (std::size_t round = 0; round < options.refinement_rounds; ++round) {
    bool improved = false;
    for (std::size_t i = 0; i < m; ++i) {
      for (const double factor : {1.0 + step, 1.0 / (1.0 + step)}) {
        std::vector<double> trial = result.multipliers;
        trial[i] = std::max(trial[i] * factor, trial[i] == 0.0 ? step : 0.0);
        double mass = 0.0;
        for (double v : trial) mass += v;
        if (mass <= 0.0) continue;
        const double bound = surrogate_bound(inst, trial);
        ++result.evaluations;
        if (bound < result.bound - 1e-9) {
          result.bound = bound;
          result.multipliers = std::move(trial);
          improved = true;
        }
      }
    }
    if (!improved) step *= 0.5;
    if (step < 1e-3) break;
  }
  return result;
}

}  // namespace pts::bounds
