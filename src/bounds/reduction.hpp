#pragma once
// Size reduction by LP reduced-cost variable fixing — the technique the
// Fréville–Plateau benchmark set (the paper's first test suite, "Hard 0-1
// test problems for size reduction methods") was designed to stress.
//
// Given the LP optimum z_LP with duals y and reduced costs d_j, and any
// feasible lower bound `lb`:
//
//   * a variable at 0 in the LP (d_j <= 0): forcing x_j = 1 caps every
//     integer solution at z_LP + d_j, so when z_LP + d_j < lb + gap_eps the
//     variable is fixed to 0;
//   * a variable at 1 in the LP (d_j >= 0): forcing x_j = 0 caps at
//     z_LP - d_j, so when z_LP - d_j < lb + gap_eps it is fixed to 1.
//
// No solution strictly better than lb is ever cut off. `build_reduced`
// materializes the smaller residual instance (fixed-to-1 loads folded into
// the capacities) and `lift` maps residual solutions back.

#include <cstdint>
#include <optional>
#include <vector>

#include "mkp/instance.hpp"
#include "mkp/solution.hpp"

namespace pts::bounds {

enum class FixedValue : std::uint8_t { kFree, kZero, kOne };

struct ReductionResult {
  std::vector<FixedValue> status;  ///< per original variable
  std::size_t fixed_to_zero = 0;
  std::size_t fixed_to_one = 0;
  double lp_objective = 0.0;
  double lower_bound_used = 0.0;
  bool lp_solved = false;

  [[nodiscard]] std::size_t fixed_total() const { return fixed_to_zero + fixed_to_one; }
  [[nodiscard]] double fixed_fraction(std::size_t n) const {
    return n == 0 ? 0.0 : static_cast<double>(fixed_total()) / static_cast<double>(n);
  }
};

struct ReductionOptions {
  /// Solutions within gap_eps of lb may be lost; keep 0 to preserve ties,
  /// or set to 1.0 - eps on integer-valued instances to also prune
  /// alternatives exactly equal to lb + fractional amounts.
  double gap_eps = 0.0;
};

/// Computes the fixing implied by (LP at `inst`, lower bound `lb`). `lb`
/// must come from a feasible solution (e.g. a greedy value).
ReductionResult reduced_cost_fixing(const mkp::Instance& inst, double lower_bound,
                                    const ReductionOptions& options = {});

/// The residual instance over the free variables, plus the index map and
/// the profit already banked by fixed-to-1 variables. Disengaged when no
/// variable is free (the reduction solved the problem outright) — then
/// `lift` of an empty residual still reconstructs the full solution.
struct ReducedInstance {
  std::optional<mkp::Instance> instance;  ///< nullopt when 0 variables free
  std::vector<std::size_t> free_to_original;
  double banked_profit = 0.0;             ///< sum of profits fixed to 1
  std::vector<FixedValue> status;         ///< copy of the fixing

  /// Reconstruct a full-size solution from a residual one (or from nothing
  /// when every variable was fixed). Aborts if the lift is infeasible —
  /// that would mean the fixing was computed for a different instance.
  [[nodiscard]] mkp::Solution lift(const mkp::Instance& original,
                                   const mkp::Solution* residual) const;
};

ReducedInstance build_reduced(const mkp::Instance& inst, const ReductionResult& fixing);

}  // namespace pts::bounds
