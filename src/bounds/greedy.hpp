#pragma once
// Primal construction heuristics. These provide (a) the quick feasible
// baselines the benches compare against, (b) initial solutions for the
// search threads, and (c) the repair/projection primitive shared with
// strategic oscillation (drop the items with the worst aggregate-weight to
// profit ratio until feasible — paper §3.2).

#include "mkp/instance.hpp"
#include "mkp/solution.hpp"
#include "util/rng.hpp"

namespace pts::bounds {

enum class GreedyOrder {
  kProfit,         ///< descending c_j
  kDensity,        ///< descending c_j / sum_i a_ij
  kScaledDensity,  ///< descending c_j / sum_i (a_ij / b_i): capacity-aware
};

/// Deterministic greedy: scan items in the chosen order, add whatever fits.
mkp::Solution greedy_construct(const mkp::Instance& inst,
                               GreedyOrder order = GreedyOrder::kScaledDensity);

/// GRASP-style randomized greedy: at each step pick uniformly among the
/// `rcl_size` best fitting items. rcl_size = 1 reproduces greedy_construct.
mkp::Solution greedy_randomized(const mkp::Instance& inst, Rng& rng,
                                std::size_t rcl_size = 4,
                                GreedyOrder order = GreedyOrder::kScaledDensity);

/// Uniformly random feasible solution: random permutation, add what fits.
/// This is the paper's "new randomly generated solution" used by the ISP for
/// stagnant slaves.
mkp::Solution random_feasible(const mkp::Instance& inst, Rng& rng);

/// Add every fitting item in the given order (in-place completion).
void greedy_fill(mkp::Solution& solution,
                 GreedyOrder order = GreedyOrder::kScaledDensity);

/// Drop items with the largest sum_i a_ij / c_j ratio until feasible — the
/// projection of strategic oscillation. No-op on feasible input.
void repair_to_feasible(mkp::Solution& solution);

/// Item order used by the greedy variants (indices, best first).
std::vector<std::size_t> greedy_item_order(const mkp::Instance& inst, GreedyOrder order);

}  // namespace pts::bounds
