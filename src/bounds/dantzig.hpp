#pragma once
// Dantzig's continuous bound for a single knapsack constraint, and the
// aggregate min-over-constraints bound it induces for the MKP. These are the
// cheap per-node bounds of the branch-and-bound exact solver and the inner
// evaluation of the surrogate relaxation.

#include <cstddef>
#include <span>
#include <vector>

#include "mkp/instance.hpp"

namespace pts::bounds {

/// Continuous single-knapsack bound: max sum c_j x_j s.t. sum w_j x_j <= cap,
/// 0 <= x_j <= 1. `order` must list item indices by descending c_j / w_j
/// (zero-weight items first). Runs in O(n) along the order.
double dantzig_bound(std::span<const double> profits, std::span<const double> weights,
                     std::span<const std::size_t> order, double capacity);

/// Density order for an explicit weight vector (zero weights first).
std::vector<std::size_t> density_order(std::span<const double> profits,
                                       std::span<const double> weights);

/// Upper bound for the full MKP: min over constraints i of the continuous
/// single-constraint bound. Valid because each relaxation keeps one
/// constraint and drops the rest.
double min_constraint_bound(const mkp::Instance& inst);

}  // namespace pts::bounds
