#pragma once
// Surrogate relaxation of the MKP: for multipliers u >= 0 (not all zero),
// aggregate the m constraints into one —
//
//   sum_j (u^T A)_j x_j  <=  u^T b
//
// — and bound the resulting single knapsack continuously (Dantzig). Every u
// yields a valid upper bound; the multiplier search looks for a tight one.
// The classic strong choice is the optimal LP duals, which we take as the
// starting point and refine by normalized multiplicative adjustment.

#include <cstddef>
#include <vector>

#include "mkp/instance.hpp"

namespace pts::bounds {

struct SurrogateResult {
  double bound = 0.0;
  std::vector<double> multipliers;  ///< the u achieving `bound`
  std::size_t evaluations = 0;      ///< number of single-knapsack bounds computed
};

/// Bound for a fixed multiplier vector (u_i >= 0, at least one positive).
double surrogate_bound(const mkp::Instance& inst, std::span<const double> multipliers);

struct SurrogateOptions {
  std::size_t refinement_rounds = 20;
  /// If true, seed with LP duals (costs one LP solve); else all-ones.
  bool seed_with_lp_duals = true;
};

/// Searches multipliers; the returned bound is min over all u evaluated and
/// therefore always a valid upper bound on the 0-1 optimum.
SurrogateResult solve_surrogate(const mkp::Instance& inst,
                                const SurrogateOptions& options = {});

}  // namespace pts::bounds
