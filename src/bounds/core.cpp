#include "bounds/core.hpp"

#include <algorithm>

#include "bounds/greedy.hpp"

namespace pts::bounds {

CoreProblem build_core_problem(const mkp::Instance& inst,
                               const CoreOptions& options) {
  CoreProblem core;

  // Deterministic feasible bound: the scaled-density greedy, raised by the
  // caller's incumbent when one is known. reduced_cost_fixing requires the
  // bound to be attainable; both sources are values of feasible solutions.
  const double greedy_value = greedy_construct(inst).value();
  core.lower_bound = greedy_value;
  if (options.lower_bound_hint) {
    core.lower_bound = std::max(core.lower_bound, *options.lower_bound_hint);
  }

  core.fixing = reduced_cost_fixing(inst, core.lower_bound,
                                    {.gap_eps = options.gap_eps});
  if (!core.fixing.lp_solved) return core;  // use_core stays false

  const double fixed_fraction = core.fixing.fixed_fraction(inst.num_items());
  if (fixed_fraction < options.min_fixed_fraction) return core;

  core.reduced = build_reduced(inst, core.fixing);
  core.use_core = true;
  return core;
}

}  // namespace pts::bounds
