#include "bounds/linalg.hpp"

#include <cmath>

#include "util/check.hpp"

namespace pts::bounds {

LuFactors LuFactors::factorize(std::span<const double> matrix, std::size_t size) {
  PTS_CHECK(matrix.size() == size * size);
  LuFactors f;
  f.size_ = size;
  f.lu_.assign(matrix.begin(), matrix.end());
  f.perm_.resize(size);
  for (std::size_t i = 0; i < size; ++i) f.perm_[i] = i;

  auto at = [&](std::size_t r, std::size_t c) -> double& { return f.lu_[r * size + c]; };

  for (std::size_t k = 0; k < size; ++k) {
    // Partial pivot: largest |entry| in column k at or below the diagonal.
    std::size_t pivot = k;
    double best = std::fabs(at(k, k));
    for (std::size_t r = k + 1; r < size; ++r) {
      const double candidate = std::fabs(at(r, k));
      if (candidate > best) {
        best = candidate;
        pivot = r;
      }
    }
    if (best < 1e-12) {
      f.ok_ = false;
      return f;
    }
    if (pivot != k) {
      for (std::size_t c = 0; c < size; ++c) std::swap(at(k, c), at(pivot, c));
      std::swap(f.perm_[k], f.perm_[pivot]);
    }
    const double diag = at(k, k);
    for (std::size_t r = k + 1; r < size; ++r) {
      const double factor = at(r, k) / diag;
      at(r, k) = factor;
      if (factor == 0.0) continue;
      for (std::size_t c = k + 1; c < size; ++c) at(r, c) -= factor * at(k, c);
    }
  }
  f.ok_ = true;
  return f;
}

std::vector<double> LuFactors::solve(std::span<const double> rhs) const {
  PTS_CHECK(ok_ && rhs.size() == size_);
  const std::size_t n = size_;
  std::vector<double> x(n);
  // Forward substitution with permuted rhs: L z = P rhs.
  for (std::size_t i = 0; i < n; ++i) {
    double value = rhs[perm_[i]];
    for (std::size_t k = 0; k < i; ++k) value -= lu_[i * n + k] * x[k];
    x[i] = value;
  }
  // Back substitution: U x = z.
  for (std::size_t ii = n; ii-- > 0;) {
    double value = x[ii];
    for (std::size_t k = ii + 1; k < n; ++k) value -= lu_[ii * n + k] * x[k];
    x[ii] = value / lu_[ii * n + ii];
  }
  return x;
}

std::vector<double> LuFactors::solve_transposed(std::span<const double> rhs) const {
  PTS_CHECK(ok_ && rhs.size() == size_);
  const std::size_t n = size_;
  // Aᵀ = (P⁻¹ L U)ᵀ = Uᵀ Lᵀ P. Solve Uᵀ z = rhs, then Lᵀ w = z, then
  // x = Pᵀ w (undo the row permutation on the result).
  std::vector<double> z(n);
  for (std::size_t i = 0; i < n; ++i) {
    double value = rhs[i];
    for (std::size_t k = 0; k < i; ++k) value -= lu_[k * n + i] * z[k];
    z[i] = value / lu_[i * n + i];
  }
  std::vector<double> w(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double value = z[ii];
    for (std::size_t k = ii + 1; k < n; ++k) value -= lu_[k * n + ii] * w[k];
    w[ii] = value;
  }
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) x[perm_[i]] = w[i];
  return x;
}

}  // namespace pts::bounds
