#include "net/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "net/protocol.hpp"
#include "obs/metrics.hpp"
#include "parallel/transport.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace pts::net {

namespace {

std::uint32_t env_u32(const char* name) {
  const char* value = std::getenv(name);
  if (!value || !*value) return 0;
  return static_cast<std::uint32_t>(std::strtoul(value, nullptr, 10));
}

Status errno_status(const char* what) {
  return Status::unavailable(std::string("net: ") + what + ": " +
                             std::strerror(errno));
}

bool is_peer_type(parallel::wire::MessageType type) {
  const auto byte = static_cast<std::uint8_t>(type);
  return byte >= static_cast<std::uint8_t>(
                     parallel::wire::MessageType::kPeerHello) &&
         byte <= static_cast<std::uint8_t>(
                     parallel::wire::MessageType::kPeerReplicateAck);
}

}  // namespace

/// Per-connection state. The reader thread owns `waiters` and the socket's
/// read side outright; `pending` is shared (reader, waiter threads);
/// `write_mutex` serializes every outbound frame (acks from the reader,
/// events/results from waiter threads) plus the chaos RNG it feeds.
struct Server::Connection {
  explicit Connection(int fd, std::uint64_t chaos_seed)
      : socket(fd), chaos_rng(chaos_seed) {}

  parallel::FrameSocket socket;

  std::mutex write_mutex;
  Rng chaos_rng;  // guarded by write_mutex

  std::mutex mutex;
  /// Accepted submissions whose result frame has not shipped yet:
  /// request_id -> the gateway-side job to cancel if the peer vanishes.
  std::map<std::uint64_t, service::JobId> pending;
  /// Sticky tenant tag: the last non-empty tenant this connection submitted
  /// under. Empty-tenant submissions inherit it, so a client can state its
  /// identity once and stay terse afterwards.
  service::TenantId tenant_tag;

  std::atomic<bool> closed{false};       ///< no further sends
  std::atomic<bool> reader_done{false};  ///< reader exited (waiters joined)

  struct WaiterThread {
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> done;
  };
  std::vector<WaiterThread> waiters;  // reader thread only

  std::thread reader;  // joined by accept-loop reap or stop()
};

Expected<std::unique_ptr<Server>> Server::start(JobGateway& gateway,
                                                ServerConfig config) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return errno_status("socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config.port);
  if (::inet_pton(AF_INET, config.bind_address.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::invalid_argument("net: bad bind address '" +
                                    config.bind_address + "'");
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    auto status = errno_status("bind");
    ::close(fd);
    return status;
  }
  if (::listen(fd, config.accept_backlog) != 0) {
    auto status = errno_status("listen");
    ::close(fd);
    return status;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) != 0) {
    auto status = errno_status("getsockname");
    ::close(fd);
    return status;
  }
  return std::unique_ptr<Server>(
      new Server(gateway, std::move(config), fd, ntohs(bound.sin_port)));
}

Expected<std::unique_ptr<Server>> Server::start(service::SolverService& service,
                                                ServerConfig config) {
  // The adapter outlives the Server because the Server owns it; binding the
  // gateway reference before handing over ownership is safe — the object's
  // address never changes.
  auto owned = std::make_unique<ServiceGateway>(service);
  auto server = start(*owned, std::move(config));
  if (!server) return server.status();
  (*server)->owned_gateway_ = std::move(owned);
  return server;
}

Server::Server(JobGateway& gateway, ServerConfig config, int listen_fd,
               std::uint16_t port)
    : gateway_(gateway),
      config_(std::move(config)),
      listen_fd_(listen_fd),
      port_(port),
      chaos_corrupt_ppm_(env_u32("PTS_CHAOS_NET_CORRUPT_PPM")),
      chaos_drop_ppm_(env_u32("PTS_CHAOS_NET_DROP_PPM")) {
  if (chaos_corrupt_ppm_ != 0 || chaos_drop_ppm_ != 0) {
    PTS_LOG_WARN("net: chaos enabled (corrupt_ppm=%u drop_ppm=%u)",
                 chaos_corrupt_ppm_, chaos_drop_ppm_);
  }
  acceptor_ = std::thread([this] { accept_loop(); });
}

Server::~Server() { stop(); }

std::size_t Server::active_connections() const {
  std::scoped_lock lock(connections_mutex_);
  std::size_t live = 0;
  for (const auto& conn : connections_) {
    if (!conn->reader_done.load(std::memory_order_acquire)) ++live;
  }
  return live;
}

NetStats Server::stats() const {
  NetStats s;
  s.connections_accepted = connections_accepted_.load();
  s.connections_turned_away = connections_turned_away_.load();
  s.connections_reaped = connections_reaped_.load();
  s.submissions = submissions_.load();
  s.protocol_errors = protocol_errors_.load();
  s.disconnect_cancels = disconnect_cancels_.load();
  s.peer_frames = peer_frames_.load();
  s.chaos_injections = chaos_injections_.load();
  return s;
}

std::size_t Server::outstanding_submissions() const {
  std::vector<std::shared_ptr<Connection>> conns;
  {
    std::scoped_lock lock(connections_mutex_);
    conns = connections_;
  }
  std::size_t outstanding = 0;
  for (const auto& conn : conns) {
    std::scoped_lock lock(conn->mutex);
    outstanding += conn->pending.size();
  }
  return outstanding;
}

bool Server::drain(double timeout_seconds) {
  draining_.store(true, std::memory_order_release);
  std::vector<std::shared_ptr<Connection>> conns;
  {
    std::scoped_lock lock(connections_mutex_);
    conns = connections_;
  }
  for (const auto& conn : conns) {
    if (!conn->reader_done.load(std::memory_order_acquire)) {
      send_frame(conn, encode_goodbye({"server is draining"}));
    }
  }
  const Deadline deadline = Deadline::after_seconds(timeout_seconds);
  while (outstanding_submissions() != 0) {
    if (deadline.expired()) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return true;
}

void Server::stop() {
  if (stopped_.exchange(true)) return;
  draining_.store(true, std::memory_order_release);
  stop_source_.request_cancel();
  if (acceptor_.joinable()) acceptor_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  std::vector<std::shared_ptr<Connection>> conns;
  {
    std::scoped_lock lock(connections_mutex_);
    conns.swap(connections_);
  }
  // Each reader observes the cancelled token within one poll slice, cancels
  // its outstanding submissions (so every waiter future resolves) and joins
  // its waiter threads before exiting — joining readers joins everything.
  for (const auto& conn : conns) {
    if (conn->reader.joinable()) conn->reader.join();
  }
}

void Server::accept_loop() {
  const CancelToken stop = stop_source_.token();
  std::uint64_t accept_seq = 0;
  while (!stop.cancel_requested()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (stop.cancel_requested()) break;
    if (rc <= 0) continue;
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == ECONNABORTED) continue;
      PTS_LOG_ERROR("net: accept failed: %s", std::strerror(errno));
      break;
    }
    ++accept_seq;
    // Kernel-level liveness probing backs up the application-level idle
    // reap: a peer that is gone (not merely quiet) eventually errors the fd.
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_KEEPALIVE, &one, sizeof(one));

    // Reap connections whose reader (and therefore waiters) finished, so a
    // long-lived server does not accrete dead Connection records.
    {
      std::scoped_lock lock(connections_mutex_);
      std::erase_if(connections_, [](const std::shared_ptr<Connection>& conn) {
        if (!conn->reader_done.load(std::memory_order_acquire)) return false;
        if (conn->reader.joinable()) conn->reader.join();
        return true;
      });
    }

    const bool over_cap = active_connections() >= config_.max_connections;
    if (draining_.load(std::memory_order_acquire) || over_cap) {
      // Accept-then-refuse: the peer gets an explicit verdict instead of a
      // connection parked forever in the kernel backlog.
      parallel::FrameSocket refused(fd);
      (void)refused.send_frame(encode_goodbye(
          {over_cap ? "server at connection capacity" : "server is draining"}));
      connections_turned_away_.fetch_add(1);
      continue;
    }

    std::uint64_t mix = accept_seq;
    auto conn = std::make_shared<Connection>(
        fd, splitmix64(mix) ^ static_cast<std::uint64_t>(fd));
    connections_accepted_.fetch_add(1);
    obs::metrics().counter("net_connections_total").add();
    {
      std::scoped_lock lock(connections_mutex_);
      connections_.push_back(conn);
    }
    conn->reader = std::thread([this, conn] { reader_loop(conn); });
  }
}

void Server::reader_loop(const std::shared_ptr<Connection>& conn) {
  const CancelToken stop = stop_source_.token();
  // Reads run in bounded slices so a byte-silent peer cannot park this
  // thread forever: each timeout re-checks the idle clock. The slice is a
  // quarter of the timeout (capped) so short test timeouts stay responsive
  // without spinning production readers.
  const double idle_timeout = config_.idle_timeout_seconds;
  const double slice =
      idle_timeout > 0 ? std::min(0.1, idle_timeout / 4.0) : 0.1;
  Stopwatch idle;
  for (;;) {
    auto frame = conn->socket.read_frame(slice, stop);
    if (!frame) {
      if (frame.status().code() == StatusCode::kDeadlineExceeded) {
        if (stop.cancel_requested()) break;
        if (idle_timeout > 0 && idle.elapsed_seconds() >= idle_timeout) {
          bool quiescent;
          {
            std::scoped_lock lock(conn->mutex);
            quiescent = conn->pending.empty();
          }
          // Never reap a connection that is owed a result: a client blocked
          // in wait() is legitimately silent for the whole solve.
          if (quiescent) {
            connections_reaped_.fetch_add(1);
            obs::metrics().counter("net_idle_reaps_total").add();
            PTS_LOG_WARN("net: reaping idle connection (%.1fs silent)",
                         idle.elapsed_seconds());
            break;
          }
        }
        continue;
      }
      // kCancelled = stop(); kUnavailable = peer gone. Anything else is a
      // malformed header — a protocol error, same disconnect outcome.
      if (frame.status().code() == StatusCode::kInvalidArgument) {
        protocol_errors_.fetch_add(1);
        obs::metrics().counter("net_protocol_errors_total").add();
      }
      break;
    }
    idle.restart();
    if (chaos_drop_ppm_ != 0) {
      std::scoped_lock lock(conn->write_mutex);
      if (conn->chaos_rng.next_below(1'000'000) < chaos_drop_ppm_) {
        chaos_injections_.fetch_add(1);
        PTS_LOG_WARN("net: chaos dropping connection");
        break;
      }
    }
    bool ok = false;
    if (is_peer_type(frame->type)) {
      // The peer range exists only on servers fronting a cluster node; a
      // plain pts_serve treats it like any other out-of-place frame.
      if (config_.peer_handler != nullptr) {
        peer_frames_.fetch_add(1);
        auto replies =
            config_.peer_handler->on_peer_frame(frame->type, frame->payload);
        if (replies) {
          for (auto& reply : *replies) send_frame(conn, std::move(reply));
          ok = true;
        }
      }
    } else {
      switch (frame->type) {
        case parallel::wire::MessageType::kSubmitJob:
          ok = handle_submit(conn, frame->payload);
          break;
        case parallel::wire::MessageType::kCancelJob: {
          auto cancel = decode_cancel_job(frame->payload);
          if (cancel) {
            service::JobId id = 0;
            {
              std::scoped_lock lock(conn->mutex);
              auto it = conn->pending.find(cancel->request_id);
              if (it != conn->pending.end()) id = it->second;
            }
            // Unknown / already-resolved ids are ignored by contract; the
            // result frame (kCancelled or the natural outcome) settles it.
            if (id != 0) (void)gateway_.cancel(id);
            ok = true;
          }
          break;
        }
        default:
          break;  // a client has no business sending any other type
      }
    }
    if (!ok) {
      protocol_errors_.fetch_add(1);
      obs::metrics().counter("net_protocol_errors_total").add();
      break;
    }
  }
  abandon_connection(conn);
  // Waiter futures all resolve (their jobs just got cancelled, or were
  // already done), so this join is bounded.
  for (auto& waiter : conn->waiters) {
    if (waiter.thread.joinable()) waiter.thread.join();
  }
  conn->waiters.clear();
  conn->reader_done.store(true, std::memory_order_release);
}

bool Server::handle_submit(const std::shared_ptr<Connection>& conn,
                           std::span<const std::uint8_t> payload) {
  auto decoded = decode_submit_job(payload);
  if (!decoded) return false;
  SubmitJob m = std::move(*decoded);
  submissions_.fetch_add(1);
  obs::metrics().counter("net_submissions_total").add();

  SubmitAck ack;
  ack.request_id = m.request_id;
  if (draining_.load(std::memory_order_acquire)) {
    ack.status = Status::unavailable("server is draining; no new submissions");
    send_frame(conn, encode_submit_ack(ack));
    return true;
  }

  {
    std::scoped_lock lock(conn->mutex);
    if (m.tenant.empty()) {
      m.tenant = conn->tenant_tag;
    } else {
      conn->tenant_tag = m.tenant;
    }
  }

  service::SubmitRequest request;
  request.instance = std::make_shared<mkp::Instance>(std::move(m.instance));
  request.tenant = std::move(m.tenant);
  request.priority = m.priority;
  request.deadline_seconds = m.deadline_seconds;
  request.warm_start = m.warm_start;
  request.allow_dedup = m.allow_dedup;
  request.options = std::move(m.options);
  // Never the client's worker path: it names a binary on the client's
  // machine. Empty falls through to the server host's default discovery.
  request.options.proc.worker_path = config_.worker_path;

  auto handle = gateway_.submit(std::move(request));
  if (!handle) {
    ack.status = handle.status();
    send_frame(conn, encode_submit_ack(ack));
    return true;  // an admission failure is an answer, not a protocol error
  }

  ack.job_id = handle->id;
  ack.content_hash = handle->content_hash;
  ack.deduplicated = handle->deduplicated;
  {
    std::scoped_lock lock(conn->mutex);
    conn->pending.emplace(m.request_id, handle->id);
  }
  send_frame(conn, encode_submit_ack(ack));

  // Opportunistically join waiters that already finished; outstanding ones
  // stay. Bounded by this connection's in-flight submissions.
  std::erase_if(conn->waiters, [](Connection::WaiterThread& waiter) {
    if (!waiter.done->load(std::memory_order_acquire)) return false;
    if (waiter.thread.joinable()) waiter.thread.join();
    return true;
  });

  auto done = std::make_shared<std::atomic<bool>>(false);
  const std::uint64_t request_id = m.request_id;
  std::thread thread([this, conn, request_id, done,
                      future = std::move(handle->result)]() mutable {
    service::JobResult result = future.get();
    {
      std::scoped_lock lock(conn->mutex);
      conn->pending.erase(request_id);
    }
    if (!conn->closed.load(std::memory_order_acquire)) {
      // Stream the anytime curve in bounded chunks, then the terminal frame.
      for (std::size_t offset = 0; offset < result.anytime.size();
           offset += kMaxAnytimeSamplesPerEvent) {
        JobEvent event;
        event.request_id = request_id;
        const std::size_t end = std::min(
            result.anytime.size(), offset + kMaxAnytimeSamplesPerEvent);
        event.anytime.assign(result.anytime.begin() + offset,
                             result.anytime.begin() + end);
        send_frame(conn, encode_job_event(event));
        if (conn->closed.load(std::memory_order_acquire)) break;
      }
      JobResultFrame terminal;
      terminal.request_id = request_id;
      terminal.status = result.status;
      terminal.origin = result.origin;
      terminal.best_value = result.best_value;
      terminal.best = std::move(result.best);
      terminal.total_moves = result.total_moves;
      terminal.reached_target = result.reached_target;
      terminal.slave_faults = result.slave_faults;
      terminal.queue_seconds = result.queue_seconds;
      terminal.run_seconds = result.run_seconds;
      terminal.start_sequence = result.start_sequence;
      terminal.tenant = std::move(result.tenant);
      terminal.content_hash = result.content_hash;
      terminal.deduplicated = result.deduplicated;
      terminal.warm_started = result.warm_started;
      send_frame(conn, encode_job_result(terminal));
    }
    done->store(true, std::memory_order_release);
  });
  conn->waiters.push_back({std::move(thread), std::move(done)});
  return true;
}

void Server::abandon_connection(const std::shared_ptr<Connection>& conn) {
  std::vector<service::JobId> orphans;
  {
    std::scoped_lock lock(conn->mutex);
    orphans.reserve(conn->pending.size());
    for (const auto& [request_id, job_id] : conn->pending) {
      orphans.push_back(job_id);
    }
    conn->pending.clear();
  }
  conn->closed.store(true, std::memory_order_release);
  const bool stopping = stop_source_.token().cancel_requested();
  for (const auto id : orphans) {
    // Cancel exactly this connection's stake: on a deduplicated solve the
    // service detaches one waiter and the run continues for everyone else.
    if (gateway_.cancel(id) && !stopping) {
      disconnect_cancels_.fetch_add(1);
      obs::metrics().counter("net_disconnect_cancels_total").add();
    }
  }
  // Wake anything blocked on the fd; the fd itself stays allocated until the
  // Connection (and with it the FrameSocket) is destroyed, so concurrent
  // sends cannot race a reused descriptor.
  if (conn->socket.valid()) ::shutdown(conn->socket.fd(), SHUT_RDWR);
}

void Server::send_frame(const std::shared_ptr<Connection>& conn,
                        std::vector<std::uint8_t> frame) {
  std::scoped_lock lock(conn->write_mutex);
  if (conn->closed.load(std::memory_order_acquire)) return;
  if (chaos_corrupt_ppm_ != 0 &&
      conn->chaos_rng.next_below(1'000'000) < chaos_corrupt_ppm_) {
    // Prefer flipping a payload byte (exercises the payload decoders);
    // header-only frames get their header flipped instead.
    const std::size_t lo =
        frame.size() > parallel::wire::kHeaderBytes ? parallel::wire::kHeaderBytes : 0;
    const std::size_t index = lo + conn->chaos_rng.index(frame.size() - lo);
    frame[index] ^= static_cast<std::uint8_t>(1u << conn->chaos_rng.index(8));
    chaos_injections_.fetch_add(1);
    obs::metrics().counter("net_chaos_injections_total").add();
  }
  if (!conn->socket.send_frame(frame).ok()) {
    conn->closed.store(true, std::memory_order_release);
  }
}

}  // namespace pts::net
