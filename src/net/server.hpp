#pragma once
// Network front-end of the solver service (DESIGN.md §10): a TCP listener
// that turns every accepted connection into a FrameSocket speaking the
// client range of the wire protocol (net/protocol.hpp) and bridges it onto
// a JobGateway — the in-process SolverService for pts_serve, or the cluster
// coordinator (cluster/coordinator.hpp) for pts_cluster, which shards the
// same submissions across peer nodes (DESIGN.md §11).
//
// Threading model. One accept thread; one reader thread per connection; one
// short-lived waiter thread per accepted submission (it blocks on the job's
// future, then streams the anytime curve and the result frame back under the
// connection's write lock). The gateway's own guarantees do the heavy
// lifting: every accepted future resolves, so every waiter thread
// terminates, so drain() and stop() terminate.
//
// Disconnect semantics. A connection that hits EOF, a socket error or a
// malformed frame cancels exactly the waiters it created (gateway cancel per
// outstanding submission): a deduplicated solve shared with other
// connections keeps running for them — the vanished peer loses only its own
// stake. Results that resolve after the disconnect are dropped on the floor
// (their send fails), never blocked on.
//
// Half-open reaping. Readers never block forever on a silent peer: accepted
// sockets run with TCP keepalive, and a connection that stays byte-silent
// for ServerConfig::idle_timeout_seconds with NO outstanding submissions is
// reaped (a client blocked in wait() has outstanding work, so it is never
// reaped while a result is owed — and cluster peer links ping well inside
// any sane timeout). This is what keeps a dead NAT entry or a kill -9'd
// client from pinning a reader thread and a connection slot forever.
//
// Drain. drain(timeout) stops accepting, sends every connected client a
// Goodbye frame, and waits up to the timeout for outstanding submissions to
// resolve and ship. stop() then (or directly, for an immediate shutdown)
// cancels whatever is still outstanding and joins every thread. Jobs the
// service journals stay open across a cancel-by-shutdown, so a pts_serve
// restarted with the same --journal re-enqueues them (DESIGN.md §9).
//
// Chaos. Two env knobs extend the PTS_CHAOS_* family across the client
// boundary, exercised by tests/net/:
//
//   PTS_CHAOS_NET_CORRUPT_PPM  flip one byte of an outbound frame with this
//                              per-frame probability (parts per million)
//   PTS_CHAOS_NET_DROP_PPM     per inbound frame, drop the connection as if
//                              the peer vanished mid-conversation

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "service/solver_service.hpp"
#include "util/cancel.hpp"
#include "util/status.hpp"

namespace pts::net {

/// What the server needs from whatever runs its submissions: admit-or-refuse
/// with a future that always resolves, and per-waiter cancel. SolverService
/// satisfies it via ServiceGateway; cluster::Coordinator implements it by
/// sharding across peer nodes.
class JobGateway {
 public:
  virtual ~JobGateway() = default;

  /// Admission failures return a Status; accepted work returns a handle
  /// whose future ALWAYS resolves (the server's waiter threads, and
  /// therefore drain()/stop(), depend on that).
  [[nodiscard]] virtual Expected<service::JobHandle> submit(
      service::SubmitRequest request) = 0;

  /// Cancels one waiter's stake. Returns false for unknown/resolved ids.
  virtual bool cancel(service::JobId id) = 0;
};

/// The in-process gateway: forwards straight to a SolverService.
class ServiceGateway final : public JobGateway {
 public:
  explicit ServiceGateway(service::SolverService& service) : service_(service) {}

  [[nodiscard]] Expected<service::JobHandle> submit(
      service::SubmitRequest request) override {
    return service_.submit(std::move(request));
  }
  bool cancel(service::JobId id) override { return service_.cancel(id); }

 private:
  service::SolverService& service_;
};

/// Server-side handler for the cluster peer range (kPeerHello..
/// kPeerReplicateAck). Installed via ServerConfig::peer_handler; a server
/// without one treats peer frames as protocol errors (the connection is
/// dropped). cluster::WorkerNode implements it (DESIGN.md §11).
class PeerHandler {
 public:
  virtual ~PeerHandler() = default;

  /// Handles one inbound peer frame; returned frames are sent back on the
  /// same connection, in order (an empty vector is a valid answer — e.g. a
  /// partition-chaos window swallowing a ping). A non-OK status is a
  /// protocol error: the server drops the connection. Called from the
  /// connection's reader thread; implementations synchronize their own
  /// state.
  [[nodiscard]] virtual Expected<std::vector<std::vector<std::uint8_t>>>
  on_peer_frame(parallel::wire::MessageType type,
                std::span<const std::uint8_t> payload) = 0;
};

struct ServerConfig {
  /// Interface to bind. Keep the loopback default unless you mean to expose
  /// the service: the protocol has no authentication layer yet.
  std::string bind_address = "127.0.0.1";
  /// 0 = ephemeral; the bound port is Server::port() either way.
  std::uint16_t port = 0;
  /// listen(2) backlog: connections the kernel may hold un-accepted.
  int accept_backlog = 16;
  /// Connections served concurrently; one past the cap is accepted, told
  /// Goodbye ("at capacity") and closed, so the peer gets a verdict instead
  /// of a kernel-queue stall.
  std::size_t max_connections = 64;
  /// pts_worker binary for proc-backend submissions. Applied to EVERY
  /// submission (a client-sent worker path names a binary on the wrong
  /// machine — never trusted). Empty = the server host's default discovery
  /// (parallel::default_worker_path()).
  std::string worker_path;
  /// Reap a connection that has been byte-silent this long with no
  /// outstanding submissions (half-open peer, dead NAT entry, vanished
  /// client). A connection that is owed a result is never reaped. 0 turns
  /// reaping off (readers still honour stop()).
  double idle_timeout_seconds = 300.0;
  /// Non-null: this server answers cluster peer frames through the handler
  /// (it is a worker node's front door). Null: peer frames are protocol
  /// errors. The handler must outlive the Server.
  PeerHandler* peer_handler = nullptr;
};

/// Monotone counters for tests and ops; net_* metrics mirror them.
struct NetStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_turned_away = 0;  ///< over max_connections
  std::uint64_t connections_reaped = 0;       ///< idle-timeout reaps
  std::uint64_t submissions = 0;              ///< SubmitJob frames admitted to submit()
  std::uint64_t protocol_errors = 0;          ///< malformed/unexpected frames
  std::uint64_t disconnect_cancels = 0;       ///< waiters cancelled by a vanish
  std::uint64_t peer_frames = 0;              ///< frames routed to the PeerHandler
  std::uint64_t chaos_injections = 0;         ///< PTS_CHAOS_NET_* activations
};

class Server {
 public:
  /// Binds, listens (port() is final on return) and starts accepting.
  /// The gateway must outlive the Server.
  [[nodiscard]] static Expected<std::unique_ptr<Server>> start(
      JobGateway& gateway, ServerConfig config);

  /// Convenience overload for the common in-process case: the returned
  /// Server owns a ServiceGateway over `service` (which must outlive it).
  [[nodiscard]] static Expected<std::unique_ptr<Server>> start(
      service::SolverService& service, ServerConfig config);

  ~Server();  ///< stop()

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] std::size_t active_connections() const;
  [[nodiscard]] NetStats stats() const;

  /// Graceful wind-down: stops accepting, sends Goodbye to every client,
  /// waits up to `timeout_seconds` for outstanding submissions to resolve
  /// and ship their results. Returns true when everything drained in time.
  bool drain(double timeout_seconds);

  /// Stops accepting, cancels every outstanding submission, closes all
  /// connections and joins every thread. Idempotent; the destructor calls it.
  void stop();

 private:
  struct Connection;

  Server(JobGateway& gateway, ServerConfig config, int listen_fd,
         std::uint16_t port);

  void accept_loop();
  void reader_loop(const std::shared_ptr<Connection>& conn);
  /// Returns false on an undecodable submission (the reader drops the
  /// connection); admission failures are answered with a non-OK ack.
  bool handle_submit(const std::shared_ptr<Connection>& conn,
                     std::span<const std::uint8_t> payload);
  /// Cancels every submission the connection still has outstanding
  /// (disconnect => waiter cancel) and marks it closed.
  void abandon_connection(const std::shared_ptr<Connection>& conn);
  /// Sends one frame under the connection's write lock, applying the
  /// corrupt-chaos knob. A failed send marks the connection closed.
  void send_frame(const std::shared_ptr<Connection>& conn,
                  std::vector<std::uint8_t> frame);
  std::size_t outstanding_submissions() const;

  JobGateway& gateway_;
  /// Set by the SolverService overload of start(): the adapter the server
  /// owns on the caller's behalf.
  std::unique_ptr<ServiceGateway> owned_gateway_;
  ServerConfig config_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  CancelSource stop_source_;  ///< fires in stop(): unblocks every reader
  std::atomic<bool> draining_{false};
  std::atomic<bool> stopped_{false};
  std::uint32_t chaos_corrupt_ppm_ = 0;
  std::uint32_t chaos_drop_ppm_ = 0;

  mutable std::mutex connections_mutex_;
  std::vector<std::shared_ptr<Connection>> connections_;

  std::atomic<std::uint64_t> connections_accepted_{0};
  std::atomic<std::uint64_t> connections_turned_away_{0};
  std::atomic<std::uint64_t> connections_reaped_{0};
  std::atomic<std::uint64_t> submissions_{0};
  std::atomic<std::uint64_t> protocol_errors_{0};
  std::atomic<std::uint64_t> disconnect_cancels_{0};
  std::atomic<std::uint64_t> peer_frames_{0};
  std::atomic<std::uint64_t> chaos_injections_{0};

  std::thread acceptor_;  // started last, joined by stop()
};

}  // namespace pts::net
