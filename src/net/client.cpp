#include "net/client.hpp"

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "util/timer.hpp"

namespace pts::net {

namespace {

/// Connects one resolved address with a bounded wait (non-blocking connect +
/// poll), restoring blocking mode on success. Returns -1 on failure.
int connect_with_timeout(const addrinfo& ai, double timeout_seconds) {
  const int fd = ::socket(ai.ai_family, ai.ai_socktype | SOCK_CLOEXEC,
                          ai.ai_protocol);
  if (fd < 0) return -1;
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  if (::connect(fd, ai.ai_addr, ai.ai_addrlen) != 0) {
    if (errno != EINPROGRESS) {
      ::close(fd);
      return -1;
    }
    pollfd pfd{fd, POLLOUT, 0};
    const int timeout_ms =
        static_cast<int>(std::max(1.0, timeout_seconds * 1000.0));
    if (::poll(&pfd, 1, timeout_ms) != 1) {
      ::close(fd);
      return -1;
    }
    int err = 0;
    socklen_t err_len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &err_len) != 0 ||
        err != 0) {
      ::close(fd);
      return -1;
    }
  }
  ::fcntl(fd, F_SETFL, flags);
  return fd;
}

}  // namespace

Expected<parallel::FrameSocket> dial(const std::string& host,
                                     std::uint16_t port,
                                     double timeout_seconds) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* list = nullptr;
  const std::string port_text = std::to_string(port);
  const int rc = ::getaddrinfo(host.c_str(), port_text.c_str(), &hints, &list);
  if (rc != 0) {
    return Status::unavailable("net: cannot resolve '" + host +
                               "': " + ::gai_strerror(rc));
  }
  int fd = -1;
  for (const addrinfo* ai = list; ai != nullptr && fd < 0; ai = ai->ai_next) {
    fd = connect_with_timeout(*ai, timeout_seconds);
  }
  ::freeaddrinfo(list);
  if (fd < 0) {
    return Status::unavailable("net: cannot connect to " + host + ":" +
                               port_text);
  }
  return parallel::FrameSocket(fd);
}

Client::Client(parallel::FrameSocket socket, std::string host,
               std::uint16_t port, double connect_timeout_seconds,
               ReconnectPolicy policy)
    : socket_(std::move(socket)),
      host_(std::move(host)),
      port_(port),
      connect_timeout_seconds_(connect_timeout_seconds),
      policy_(policy),
      backoff_rng_(0x706172616c6c656cull ^
                   (static_cast<std::uint64_t>(port) << 16)) {}

Expected<Client> Client::connect(const std::string& host, std::uint16_t port,
                                 double timeout_seconds,
                                 ReconnectPolicy policy) {
  auto socket = dial(host, port, timeout_seconds);
  if (!socket) return socket.status();
  return Client(std::move(*socket), host, port, timeout_seconds, policy);
}

bool Client::should_reconnect(const Status& status) const {
  return policy_.enabled && status.code() == StatusCode::kUnavailable;
}

Status Client::send_submission(std::uint64_t request_id,
                               const PendingSubmission& pending) {
  SubmitJob m{request_id,
              pending.tenant,
              pending.priority,
              pending.deadline_seconds,
              pending.warm_start,
              pending.allow_dedup,
              pending.options,
              *pending.instance};
  return socket_.send_frame(encode_submit_job(m));
}

Status Client::reconnect_and_resubmit() {
  if (!policy_.enabled) {
    return Status::unavailable("net: connection lost (reconnect disabled)");
  }
  socket_.close();
  double backoff = policy_.initial_backoff_seconds;
  for (int attempt = 0; attempt < policy_.max_attempts; ++attempt) {
    // Jitter to [backoff/2, backoff]: a herd of clients reconnecting to a
    // freshly restarted server must not arrive in lockstep.
    const double jittered =
        backoff * (0.5 + static_cast<double>(backoff_rng_.next_below(1000)) /
                             2000.0);
    std::this_thread::sleep_for(std::chrono::duration<double>(jittered));
    backoff = std::min(backoff * 2.0, policy_.max_backoff_seconds);

    auto fresh = dial(host_, port_, connect_timeout_seconds_);
    if (!fresh) continue;
    socket_ = std::move(*fresh);
    goodbye_.reset();
    // The server re-streams each replayed job's anytime curve from the
    // start; samples collected on the dead connection would duplicate the
    // prefix in the reassembled JobResult.
    for (const auto& [request_id, pending] : pending_) {
      chunks_.erase(request_id);
    }

    // Replay every unresolved submission under its ORIGINAL request id.
    // Server-side content addressing makes this idempotent: the retry either
    // attaches to the still-running (journal-recovered) solve or re-runs the
    // same deterministic job; pump_one cross-checks the fresh ack's hash.
    bool replay_ok = true;
    for (const auto& [request_id, pending] : pending_) {
      if (!send_submission(request_id, pending).ok()) {
        replay_ok = false;
        break;
      }
    }
    if (!replay_ok) {
      socket_.close();
      continue;  // the server vanished again mid-replay — next attempt
    }
    ++reconnects_;
    return Status();
  }
  socket_.close();
  return Status::unavailable("net: reconnect attempts exhausted after " +
                             std::to_string(policy_.max_attempts) + " tries");
}

Expected<RemoteJob> Client::submit(const service::SubmitRequest& request) {
  if (!socket_.valid()) {
    return Status::unavailable("net: client is not connected");
  }
  if (!request.instance) {
    return Status::invalid_argument("net: submit requires an instance");
  }
  if (goodbye_) {
    return Status::unavailable("net: server said goodbye: " + *goodbye_);
  }

  const std::uint64_t request_id = next_request_id_++;
  // Filed before the send so a reconnect triggered anywhere below replays
  // this submission along with the rest.
  PendingSubmission pending;
  pending.instance = request.instance;
  pending.tenant = request.tenant;
  pending.priority = request.priority;
  pending.deadline_seconds = request.deadline_seconds;
  pending.warm_start = request.warm_start;
  pending.allow_dedup = request.allow_dedup;
  pending.options = request.options;
  auto [it, inserted] = pending_.emplace(request_id, std::move(pending));
  (void)inserted;

  if (auto status = send_submission(request_id, it->second); !status.ok()) {
    if (!should_reconnect(status) || !reconnect_and_resubmit().ok()) {
      pending_.erase(request_id);
      return status;
    }
  }

  // Pump until this submission's ack lands (other requests' frames file
  // away normally — a result for job 3 may well beat the ack for job 5).
  while (!acks_.contains(request_id)) {
    if (auto status = pump_one(std::nullopt); !status.ok()) {
      if (should_reconnect(status) && reconnect_and_resubmit().ok()) continue;
      pending_.erase(request_id);
      return status;
    }
  }
  auto node = acks_.extract(request_id);
  const SubmitAck& ack = node.mapped();
  if (!ack.status.ok()) {
    pending_.erase(request_id);
    return ack.status;
  }
  // The idempotency anchor: a post-reconnect replay of this request must
  // come back with this same content hash.
  if (auto live = pending_.find(request_id); live != pending_.end()) {
    live->second.acked_content_hash = ack.content_hash;
  }
  RemoteJob job;
  job.request_id = ack.request_id;
  job.job_id = ack.job_id;
  job.content_hash = ack.content_hash;
  job.deduplicated = ack.deduplicated;
  return job;
}

Expected<service::JobResult> Client::wait(
    const RemoteJob& job, std::optional<double> timeout_seconds) {
  const Deadline deadline = timeout_seconds
                                ? Deadline::after_seconds(*timeout_seconds)
                                : Deadline();
  while (!results_.contains(job.request_id)) {
    if (!socket_.valid()) {
      return Status::unavailable("net: connection closed before the result");
    }
    std::optional<double> slice;
    if (deadline.is_bounded()) {
      const double remaining = deadline.remaining_seconds();
      if (remaining <= 0.0) {
        return Status::deadline_exceeded("net: wait timed out");
      }
      slice = remaining;
    }
    if (auto status = pump_one(slice); !status.ok()) {
      if (should_reconnect(status) && reconnect_and_resubmit().ok()) continue;
      return status;
    }
  }
  auto node = results_.extract(job.request_id);
  node.mapped().id = job.job_id;  // restore the server-side identity
  return std::move(node.mapped());
}

Status Client::cancel(const RemoteJob& job) {
  if (!socket_.valid()) {
    return Status::unavailable("net: client is not connected");
  }
  return socket_.send_frame(encode_cancel_job({job.request_id}));
}

Status Client::pump_one(std::optional<double> timeout_seconds) {
  auto frame = socket_.read_frame(timeout_seconds);
  if (!frame) return frame.status();
  switch (frame->type) {
    case parallel::wire::MessageType::kSubmitAck: {
      auto ack = decode_submit_ack(frame->payload);
      if (!ack) return ack.status();
      auto pending = pending_.find(ack->request_id);
      if (pending != pending_.end() &&
          pending->second.acked_content_hash.has_value()) {
        // A replay ack for a submission the old connection already accepted.
        if (!ack->status.ok()) {
          // The retry was refused (draining / backpressure): resolve the
          // wait with that verdict instead of blocking forever.
          service::JobResult refused;
          refused.id = ack->request_id;
          refused.status = ack->status;
          refused.instance = pending->second.instance;
          refused.tenant = pending->second.tenant;
          results_[ack->request_id] = std::move(refused);
          pending_.erase(pending);
          return Status();
        }
        if (ack->content_hash != *pending->second.acked_content_hash) {
          return Status::internal(
              "net: resubmission acked a different content hash — refusing "
              "to wait on somebody else's job");
        }
        return Status();  // idempotent replay confirmed; result still coming
      }
      acks_[ack->request_id] = std::move(*ack);
      return Status();
    }
    case parallel::wire::MessageType::kJobEvent: {
      auto event = decode_job_event(frame->payload);
      if (!event) return event.status();
      auto& samples = chunks_[event->request_id];
      samples.insert(samples.end(), event->anytime.begin(),
                     event->anytime.end());
      return Status();
    }
    case parallel::wire::MessageType::kJobResult: {
      // The solution decodes against the submitter's own instance copy; a
      // result for a request we never made is a protocol violation.
      auto pending_it = pending_.begin();
      {
        // Peek the request id (first u64 of the payload) to find the
        // instance without decoding twice.
        parallel::codec::Reader r(frame->payload);
        const std::uint64_t request_id = r.u64();
        if (!r.ok()) {
          return Status::invalid_argument("net: truncated job-result frame");
        }
        pending_it = pending_.find(request_id);
      }
      if (pending_it == pending_.end()) {
        return Status::invalid_argument(
            "net: result frame for an unknown request");
      }
      auto decoded =
          decode_job_result(frame->payload, *pending_it->second.instance);
      if (!decoded) return decoded.status();
      JobResultFrame m = std::move(*decoded);

      service::JobResult result;
      result.id = m.request_id;  // wait() replaces this with the server job id
      result.origin = m.origin;
      result.status = std::move(m.status);
      result.instance = pending_it->second.instance;
      result.best = std::move(m.best);
      result.best_value = m.best_value;
      result.total_moves = m.total_moves;
      result.reached_target = m.reached_target;
      result.slave_faults = m.slave_faults;
      result.queue_seconds = m.queue_seconds;
      result.run_seconds = m.run_seconds;
      result.start_sequence = m.start_sequence;
      result.tenant = std::move(m.tenant);
      result.content_hash = m.content_hash;
      result.deduplicated = m.deduplicated;
      result.warm_started = m.warm_started;
      if (auto chunk = chunks_.find(m.request_id); chunk != chunks_.end()) {
        result.anytime = std::move(chunk->second);
        chunks_.erase(chunk);
      }
      results_[m.request_id] = std::move(result);
      pending_.erase(pending_it);
      return Status();
    }
    case parallel::wire::MessageType::kGoodbye: {
      auto goodbye = decode_goodbye(frame->payload);
      if (!goodbye) return goodbye.status();
      goodbye_ = std::move(goodbye->reason);
      return Status();
    }
    default:
      return Status::invalid_argument(
          "net: unexpected frame type from the server");
  }
}

}  // namespace pts::net
