#pragma once
// Request/response protocol of the network front-end (DESIGN.md §10): the
// client-facing half of the wire format. A pts_client (or the embedded
// net::Client library) speaks these frames to a pts_serve daemon over a TCP
// FrameSocket — the same 8-byte header, version byte and 64MiB payload
// ceiling as the worker protocol (parallel/wire.hpp), with the frame types
// of the v3 client range (kSubmitJob..kGoodbye).
//
// Multiplexing. One connection carries many submissions concurrently. The
// client stamps every SubmitJob with a connection-local `request_id`; the
// server echoes it on the ack, on every streamed event and on the terminal
// result, so responses demultiplex without any ordering assumption (a result
// for request 3 may arrive before the ack for request 5).
//
// Total decoders. Every decoder here follows the wire discipline: truncated
// payloads, absurd counts, unknown enum bytes and over-long strings come
// back as a Status — never a crash, never an unbounded allocation. The
// frames cross a machine boundary, so the server trusts nothing a client
// sends and vice versa.

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "mkp/instance.hpp"
#include "obs/anytime.hpp"
#include "parallel/wire.hpp"
#include "service/job.hpp"
#include "util/status.hpp"

namespace pts::net {

/// Ceiling on anytime samples per kJobEvent frame: long runs stream their
/// curve in chunks instead of one outsized frame.
inline constexpr std::size_t kMaxAnytimeSamplesPerEvent = 4096;

/// client -> server: one submission. Everything SolverService::submit needs,
/// flattened for the wire: the instance (wire::put_instance bytes — the
/// server's content address is computed over exactly these), the tenant and
/// per-caller urgency, the warm-start policy, the dedup opt-out and the full
/// JobOptions (journal codec). The server overrides options.proc.worker_path
/// with its own configuration — a client-side path names a binary on the
/// wrong machine.
struct SubmitJob {
  std::uint64_t request_id = 0;
  service::TenantId tenant;
  int priority = 0;
  std::optional<double> deadline_seconds;
  service::WarmStartPolicy warm_start = service::WarmStartPolicy::kDisabled;
  bool allow_dedup = true;
  service::JobOptions options;
  mkp::Instance instance;
};

/// server -> client: the admission verdict for one SubmitJob. A non-OK
/// status is the submit() Status (invalid options, backpressure, shutdown) —
/// no further frames follow for that request. An OK ack promises exactly one
/// terminal kJobResult (possibly preceded by kJobEvent frames).
struct SubmitAck {
  std::uint64_t request_id = 0;
  Status status;
  service::JobId job_id = 0;       ///< server-side id (cancel/journal identity)
  std::uint64_t content_hash = 0;  ///< instance content address
  bool deduplicated = false;       ///< attached to an identical in-flight solve
};

/// server -> client: streamed progress for one accepted submission. Today
/// the one event kind is a chunk of the run's anytime curve (streamed after
/// the run, before the result frame, in kMaxAnytimeSamplesPerEvent slices);
/// the kind byte keeps room for richer mid-run events.
struct JobEvent {
  std::uint64_t request_id = 0;
  enum class Kind : std::uint8_t { kAnytimeChunk = 1 };
  Kind kind = Kind::kAnytimeChunk;
  std::vector<obs::AnytimeSample> anytime;
};

/// server -> client: the terminal result of one accepted submission — the
/// wire image of service::JobResult minus the fields the client already owns
/// (the instance) or that do not cross processes (the counters block). The
/// solution decodes against the client's own copy of the instance.
struct JobResultFrame {
  std::uint64_t request_id = 0;
  Status status;
  service::JobOrigin origin = service::JobOrigin::kFresh;
  double best_value = 0.0;
  std::optional<mkp::Solution> best;
  std::uint64_t total_moves = 0;
  bool reached_target = false;
  std::uint64_t slave_faults = 0;
  double queue_seconds = 0.0;
  double run_seconds = 0.0;
  std::uint64_t start_sequence = 0;
  service::TenantId tenant;
  std::uint64_t content_hash = 0;
  bool deduplicated = false;
  bool warm_started = false;
};

/// client -> server: cancel one accepted submission (this waiter only — a
/// deduplicated solve keeps running for everyone else). Unknown or already
/// resolved ids are ignored; the result frame is the authoritative outcome.
struct CancelJob {
  std::uint64_t request_id = 0;
};

/// server -> client: the server will accept no further submissions on this
/// connection (graceful drain, or the connection cap). In-flight work still
/// resolves; the server closes the connection after the last result.
struct Goodbye {
  std::string reason;
};

// -- Encoders. Each returns a complete frame, header included. --

[[nodiscard]] std::vector<std::uint8_t> encode_submit_job(const SubmitJob& m);
[[nodiscard]] std::vector<std::uint8_t> encode_submit_ack(const SubmitAck& m);
[[nodiscard]] std::vector<std::uint8_t> encode_job_event(const JobEvent& m);
[[nodiscard]] std::vector<std::uint8_t> encode_job_result(const JobResultFrame& m);
[[nodiscard]] std::vector<std::uint8_t> encode_cancel_job(const CancelJob& m);
[[nodiscard]] std::vector<std::uint8_t> encode_goodbye(const Goodbye& m);

// -- Payload decoders (payload only — the header is consumed by the frame
//    reader). All total. decode_job_result rebuilds the solution against
//    `inst`, the submitter's own copy of the instance. --

[[nodiscard]] Expected<SubmitJob> decode_submit_job(
    std::span<const std::uint8_t> payload);
[[nodiscard]] Expected<SubmitAck> decode_submit_ack(
    std::span<const std::uint8_t> payload);
[[nodiscard]] Expected<JobEvent> decode_job_event(
    std::span<const std::uint8_t> payload);
[[nodiscard]] Expected<JobResultFrame> decode_job_result(
    std::span<const std::uint8_t> payload, const mkp::Instance& inst);
[[nodiscard]] Expected<CancelJob> decode_cancel_job(
    std::span<const std::uint8_t> payload);
[[nodiscard]] Expected<Goodbye> decode_goodbye(
    std::span<const std::uint8_t> payload);

}  // namespace pts::net
