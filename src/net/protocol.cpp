#include "net/protocol.hpp"

#include "parallel/codec.hpp"
#include "service/journal.hpp"
#include "util/check.hpp"

namespace pts::net {

namespace {

using parallel::codec::Reader;
using parallel::codec::Writer;
using parallel::wire::MessageType;

Status truncated(const char* what) {
  return Status::invalid_argument(std::string("net: truncated or corrupt ") +
                                  what + " payload");
}

std::vector<std::uint8_t> finish_frame(MessageType type, Writer payload_writer) {
  auto payload = payload_writer.take();
  PTS_CHECK_MSG(payload.size() <= parallel::wire::kMaxPayloadBytes,
                "outgoing net frame exceeds kMaxPayloadBytes");
  Writer frame;
  frame.u16(parallel::wire::kMagic);
  frame.u8(parallel::wire::kVersion);
  frame.u8(static_cast<std::uint8_t>(type));
  frame.u32(static_cast<std::uint32_t>(payload.size()));
  auto out = frame.take();
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

/// Status on the wire: code byte + message. The code byte is validated on
/// the way in — an unknown code is a corrupt frame, not a new enumerator.
void put_status(Writer& w, const Status& status) {
  w.u8(static_cast<std::uint8_t>(status.code()));
  w.str(status.message());
}

[[nodiscard]] bool get_status(Reader& r, Status& out) {
  const auto code = r.u8();
  auto message = r.str(/*max_len=*/4096);
  if (!r.ok() || code > static_cast<std::uint8_t>(StatusCode::kInternal)) {
    return false;
  }
  out = Status(static_cast<StatusCode>(code), std::move(message));
  return true;
}

}  // namespace

std::vector<std::uint8_t> encode_submit_job(const SubmitJob& m) {
  Writer w;
  w.u64(m.request_id);
  w.str(m.tenant);
  w.i32(m.priority);
  w.u8(m.deadline_seconds.has_value() ? 1 : 0);
  w.f64(m.deadline_seconds.value_or(0.0));
  w.u8(static_cast<std::uint8_t>(m.warm_start));
  w.u8(m.allow_dedup ? 1 : 0);
  service::journal::put_job_options(w, m.options);
  parallel::wire::put_instance(w, m.instance);
  return finish_frame(MessageType::kSubmitJob, std::move(w));
}

Expected<SubmitJob> decode_submit_job(std::span<const std::uint8_t> payload) {
  Reader r(payload);
  const auto request_id = r.u64();
  auto tenant = r.str(/*max_len=*/256);
  const auto priority = r.i32();
  const bool has_deadline = r.u8() != 0;
  const double deadline = r.f64();
  const auto warm = r.u8();
  const bool allow_dedup = r.u8() != 0;
  if (!r.ok() ||
      warm > static_cast<std::uint8_t>(service::WarmStartPolicy::kSimilar)) {
    return truncated("submit-job");
  }
  auto options = service::journal::get_job_options(r);
  if (!options) return options.status();
  auto instance = parallel::wire::get_instance(r);
  if (!instance) return instance.status();
  if (!r.done()) return truncated("submit-job");
  SubmitJob m{request_id,
              std::move(tenant),
              priority,
              has_deadline ? std::optional<double>(deadline) : std::nullopt,
              static_cast<service::WarmStartPolicy>(warm),
              allow_dedup,
              std::move(*options),
              std::move(*instance)};
  return m;
}

std::vector<std::uint8_t> encode_submit_ack(const SubmitAck& m) {
  Writer w;
  w.u64(m.request_id);
  put_status(w, m.status);
  w.u64(m.job_id);
  w.u64(m.content_hash);
  w.u8(m.deduplicated ? 1 : 0);
  return finish_frame(MessageType::kSubmitAck, std::move(w));
}

Expected<SubmitAck> decode_submit_ack(std::span<const std::uint8_t> payload) {
  Reader r(payload);
  SubmitAck m;
  m.request_id = r.u64();
  if (!get_status(r, m.status)) return truncated("submit-ack status");
  m.job_id = r.u64();
  m.content_hash = r.u64();
  m.deduplicated = r.u8() != 0;
  if (!r.done()) return truncated("submit-ack");
  return m;
}

std::vector<std::uint8_t> encode_job_event(const JobEvent& m) {
  PTS_CHECK_MSG(m.anytime.size() <= kMaxAnytimeSamplesPerEvent,
                "job event exceeds the per-frame sample ceiling");
  Writer w;
  w.u64(m.request_id);
  w.u8(static_cast<std::uint8_t>(m.kind));
  w.u32(static_cast<std::uint32_t>(m.anytime.size()));
  for (const auto& sample : m.anytime) {
    w.i32(sample.source);
    w.f64(sample.seconds);
    w.u64(sample.work_units);
    w.f64(sample.value);
  }
  return finish_frame(MessageType::kJobEvent, std::move(w));
}

Expected<JobEvent> decode_job_event(std::span<const std::uint8_t> payload) {
  Reader r(payload);
  JobEvent m;
  m.request_id = r.u64();
  const auto kind = r.u8();
  const auto count = r.u32();
  if (!r.ok() || kind != static_cast<std::uint8_t>(JobEvent::Kind::kAnytimeChunk)) {
    return truncated("job-event");
  }
  // 28 bytes per serialized sample; the explicit cap keeps one frame's
  // decode allocation bounded independent of the payload ceiling.
  if (count > kMaxAnytimeSamplesPerEvent || !r.plausible_count(count, 28)) {
    return truncated("job-event samples");
  }
  m.anytime.reserve(count);
  for (std::uint32_t k = 0; k < count; ++k) {
    obs::AnytimeSample sample;
    sample.source = r.i32();
    sample.seconds = r.f64();
    sample.work_units = r.u64();
    sample.value = r.f64();
    m.anytime.push_back(sample);
  }
  if (!r.done()) return truncated("job-event");
  return m;
}

std::vector<std::uint8_t> encode_job_result(const JobResultFrame& m) {
  Writer w;
  w.u64(m.request_id);
  put_status(w, m.status);
  w.u8(static_cast<std::uint8_t>(m.origin));
  w.f64(m.best_value);
  w.u8(m.best.has_value() ? 1 : 0);
  if (m.best) parallel::wire::put_solution(w, *m.best);
  w.u64(m.total_moves);
  w.u8(m.reached_target ? 1 : 0);
  w.u64(m.slave_faults);
  w.f64(m.queue_seconds);
  w.f64(m.run_seconds);
  w.u64(m.start_sequence);
  w.str(m.tenant);
  w.u64(m.content_hash);
  w.u8(m.deduplicated ? 1 : 0);
  w.u8(m.warm_started ? 1 : 0);
  return finish_frame(MessageType::kJobResult, std::move(w));
}

Expected<JobResultFrame> decode_job_result(std::span<const std::uint8_t> payload,
                                           const mkp::Instance& inst) {
  Reader r(payload);
  JobResultFrame m;
  m.request_id = r.u64();
  if (!get_status(r, m.status)) return truncated("job-result status");
  const auto origin = r.u8();
  m.best_value = r.f64();
  const auto has_best = r.u8();
  if (!r.ok() ||
      origin > static_cast<std::uint8_t>(service::JobOrigin::kResumed)) {
    return truncated("job-result");
  }
  m.origin = static_cast<service::JobOrigin>(origin);
  if (has_best != 0) {
    auto solution = parallel::wire::get_solution(r, inst);
    if (!solution) return solution.status();
    m.best = std::move(*solution);
  }
  m.total_moves = r.u64();
  m.reached_target = r.u8() != 0;
  m.slave_faults = r.u64();
  m.queue_seconds = r.f64();
  m.run_seconds = r.f64();
  m.start_sequence = r.u64();
  m.tenant = r.str(/*max_len=*/256);
  m.content_hash = r.u64();
  m.deduplicated = r.u8() != 0;
  m.warm_started = r.u8() != 0;
  if (!r.done()) return truncated("job-result");
  return m;
}

std::vector<std::uint8_t> encode_cancel_job(const CancelJob& m) {
  Writer w;
  w.u64(m.request_id);
  return finish_frame(MessageType::kCancelJob, std::move(w));
}

Expected<CancelJob> decode_cancel_job(std::span<const std::uint8_t> payload) {
  Reader r(payload);
  CancelJob m;
  m.request_id = r.u64();
  if (!r.done()) return truncated("cancel-job");
  return m;
}

std::vector<std::uint8_t> encode_goodbye(const Goodbye& m) {
  Writer w;
  w.str(m.reason);
  return finish_frame(MessageType::kGoodbye, std::move(w));
}

Expected<Goodbye> decode_goodbye(std::span<const std::uint8_t> payload) {
  Reader r(payload);
  Goodbye m;
  m.reason = r.str(/*max_len=*/4096);
  if (!r.done()) return truncated("goodbye");
  return m;
}

}  // namespace pts::net
