#pragma once
// Client half of the network front-end (DESIGN.md §10): connect to a
// pts_serve daemon, submit jobs over the framed protocol, wait for results.
// pts_client wraps this in a CLI; examples/batch_server drives its demo
// workload through it.
//
// The API deliberately mirrors the in-process SolverService shape —
// submit() returns a handle, wait() resolves to a service::JobResult — so a
// caller can swap the embedded service for a remote one without rethinking
// its control flow. A fixed seed submitted through here produces the same
// trajectory as the same SubmitRequest issued in-process (the wire carries
// IEEE-754 bit patterns, never formatted approximations); tests/net/ holds
// that bit-for-bit.
//
// Reconnection. With ReconnectPolicy::enabled, a connection that dies
// mid-conversation is rebuilt with jittered exponential backoff and every
// submission still awaiting its result is resubmitted under its ORIGINAL
// request id. Resubmission is idempotent by construction: the server
// content-addresses instances (PR 8 dedup) and re-enqueues journaled jobs on
// restart, so the retry either attaches to the still-running solve or
// re-runs the same deterministic job; the client cross-checks the fresh
// ack's content hash against the one acked before the drop and fails loudly
// on a mismatch rather than silently waiting on a different job.
//
// Concurrency model: NOT thread-safe — one Client per thread. Multiplexing
// is still supported on one connection: submit several jobs back to back,
// then wait for each in any order. wait() pumps the socket and files frames
// for other requests as they arrive, so out-of-order completion costs
// nothing.

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "net/protocol.hpp"
#include "parallel/transport.hpp"
#include "service/job.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"

namespace pts::net {

/// One accepted remote submission: the connection-local request id (the
/// wait/cancel key) plus the server-side identity echoed in the ack.
struct RemoteJob {
  std::uint64_t request_id = 0;
  service::JobId job_id = 0;       ///< server-side id (journal identity)
  std::uint64_t content_hash = 0;  ///< instance content address
  bool deduplicated = false;       ///< attached to an in-flight solve server-side
};

/// Resolve-and-connect with a bounded wait: the TCP dial shared by Client,
/// its reconnect path and the cluster coordinator's peer links.
[[nodiscard]] Expected<parallel::FrameSocket> dial(const std::string& host,
                                                   std::uint16_t port,
                                                   double timeout_seconds);

/// How (whether) the client survives a dropped connection. Backoff doubles
/// per attempt from `initial_backoff_seconds` up to `max_backoff_seconds`,
/// jittered to half its nominal value so a herd of clients does not
/// reconnect in lockstep against a freshly restarted server.
struct ReconnectPolicy {
  bool enabled = false;
  int max_attempts = 8;
  double initial_backoff_seconds = 0.05;
  double max_backoff_seconds = 2.0;
};

class Client {
 public:
  Client() = default;  ///< disconnected; connect() builds a live one
  ~Client() = default;

  Client(Client&&) = default;
  Client& operator=(Client&&) = default;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Resolves `host` (name or dotted quad), connects with a bounded wait.
  /// The policy governs what happens if the connection later dies.
  [[nodiscard]] static Expected<Client> connect(const std::string& host,
                                               std::uint16_t port,
                                               double timeout_seconds = 5.0,
                                               ReconnectPolicy policy = {});

  [[nodiscard]] bool connected() const { return socket_.valid(); }

  /// Ships the submission and blocks for the ack. An admission failure
  /// (invalid options, backpressure, draining server) comes back as its
  /// Status; request.instance must be non-null. The client's own copy of
  /// the instance is retained until the result arrives — result frames
  /// decode their solution against it.
  [[nodiscard]] Expected<RemoteJob> submit(const service::SubmitRequest& request);

  /// Blocks until the job's terminal frame arrives (pumping the shared
  /// socket; frames for other requests are filed, not dropped). Returns the
  /// reassembled service::JobResult — including the streamed anytime curve —
  /// or kDeadlineExceeded when `timeout_seconds` passes first (the job stays
  /// waitable), or kUnavailable when the connection died and the reconnect
  /// policy was off (or exhausted).
  [[nodiscard]] Expected<service::JobResult> wait(
      const RemoteJob& job, std::optional<double> timeout_seconds = {});

  /// Fire-and-forget cancel of one accepted submission. The authoritative
  /// outcome is still the result frame (usually kCancelled).
  [[nodiscard]] Status cancel(const RemoteJob& job);

  /// Non-empty once the server said Goodbye (draining / at capacity):
  /// outstanding work still resolves, new submits will be refused.
  [[nodiscard]] const std::optional<std::string>& goodbye_reason() const {
    return goodbye_;
  }

  /// Successful reconnects performed so far (tests and ops).
  [[nodiscard]] std::uint64_t reconnects() const { return reconnects_; }

  void close() { socket_.close(); }

 private:
  Client(parallel::FrameSocket socket, std::string host, std::uint16_t port,
         double connect_timeout_seconds, ReconnectPolicy policy);

  /// Reads one frame and files it (ack / event chunk / result / goodbye).
  Status pump_one(std::optional<double> timeout_seconds);

  /// True when the status is a dead-connection verdict the policy covers.
  [[nodiscard]] bool should_reconnect(const Status& status) const;

  /// Rebuilds the connection with jittered exponential backoff and replays
  /// every pending submission under its original request id. On success the
  /// caller just resumes pumping; on failure the socket stays closed.
  Status reconnect_and_resubmit();

  /// Everything needed to replay one submission verbatim after a reconnect,
  /// plus the idempotency anchor (`acked_content_hash`) once the server has
  /// acked it. Lives until the result frame arrives.
  struct PendingSubmission {
    std::shared_ptr<const mkp::Instance> instance;
    service::TenantId tenant;
    int priority = 0;
    std::optional<double> deadline_seconds;
    service::WarmStartPolicy warm_start = service::WarmStartPolicy::kDisabled;
    bool allow_dedup = true;
    service::JobOptions options;
    std::optional<std::uint64_t> acked_content_hash;
  };

  [[nodiscard]] Status send_submission(std::uint64_t request_id,
                                       const PendingSubmission& pending);

  parallel::FrameSocket socket_;
  std::string host_;
  std::uint16_t port_ = 0;
  double connect_timeout_seconds_ = 5.0;
  ReconnectPolicy policy_;
  Rng backoff_rng_{0x706172616c6c656cull};  // jitter only; determinism is fine
  std::uint64_t reconnects_ = 0;
  std::uint64_t next_request_id_ = 1;
  /// Submissions whose result has not arrived (replay + decode context).
  std::map<std::uint64_t, PendingSubmission> pending_;
  std::map<std::uint64_t, SubmitAck> acks_;
  /// Anytime chunks accumulated ahead of their terminal frame.
  std::map<std::uint64_t, std::vector<obs::AnytimeSample>> chunks_;
  std::map<std::uint64_t, service::JobResult> results_;
  std::optional<std::string> goodbye_;
};

}  // namespace pts::net
