#pragma once
// Client half of the network front-end (DESIGN.md §10): connect to a
// pts_serve daemon, submit jobs over the framed protocol, wait for results.
// pts_client wraps this in a CLI; examples/batch_server drives its demo
// workload through it.
//
// The API deliberately mirrors the in-process SolverService shape —
// submit() returns a handle, wait() resolves to a service::JobResult — so a
// caller can swap the embedded service for a remote one without rethinking
// its control flow. A fixed seed submitted through here produces the same
// trajectory as the same SubmitRequest issued in-process (the wire carries
// IEEE-754 bit patterns, never formatted approximations); tests/net/ holds
// that bit-for-bit.
//
// Concurrency model: NOT thread-safe — one Client per thread. Multiplexing
// is still supported on one connection: submit several jobs back to back,
// then wait for each in any order. wait() pumps the socket and files frames
// for other requests as they arrive, so out-of-order completion costs
// nothing.

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "net/protocol.hpp"
#include "parallel/transport.hpp"
#include "service/job.hpp"
#include "util/status.hpp"

namespace pts::net {

/// One accepted remote submission: the connection-local request id (the
/// wait/cancel key) plus the server-side identity echoed in the ack.
struct RemoteJob {
  std::uint64_t request_id = 0;
  service::JobId job_id = 0;       ///< server-side id (journal identity)
  std::uint64_t content_hash = 0;  ///< instance content address
  bool deduplicated = false;       ///< attached to an in-flight solve server-side
};

class Client {
 public:
  Client() = default;  ///< disconnected; connect() builds a live one
  ~Client() = default;

  Client(Client&&) = default;
  Client& operator=(Client&&) = default;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Resolves `host` (name or dotted quad), connects with a bounded wait.
  [[nodiscard]] static Expected<Client> connect(const std::string& host,
                                               std::uint16_t port,
                                               double timeout_seconds = 5.0);

  [[nodiscard]] bool connected() const { return socket_.valid(); }

  /// Ships the submission and blocks for the ack. An admission failure
  /// (invalid options, backpressure, draining server) comes back as its
  /// Status; request.instance must be non-null. The client's own copy of
  /// the instance is retained until the result arrives — result frames
  /// decode their solution against it.
  [[nodiscard]] Expected<RemoteJob> submit(const service::SubmitRequest& request);

  /// Blocks until the job's terminal frame arrives (pumping the shared
  /// socket; frames for other requests are filed, not dropped). Returns the
  /// reassembled service::JobResult — including the streamed anytime curve —
  /// or kDeadlineExceeded when `timeout_seconds` passes first (the job stays
  /// waitable), or kUnavailable when the connection died.
  [[nodiscard]] Expected<service::JobResult> wait(
      const RemoteJob& job, std::optional<double> timeout_seconds = {});

  /// Fire-and-forget cancel of one accepted submission. The authoritative
  /// outcome is still the result frame (usually kCancelled).
  [[nodiscard]] Status cancel(const RemoteJob& job);

  /// Non-empty once the server said Goodbye (draining / at capacity):
  /// outstanding work still resolves, new submits will be refused.
  [[nodiscard]] const std::optional<std::string>& goodbye_reason() const {
    return goodbye_;
  }

  void close() { socket_.close(); }

 private:
  explicit Client(parallel::FrameSocket socket) : socket_(std::move(socket)) {}

  /// Reads one frame and files it (ack / event chunk / result / goodbye).
  Status pump_one(std::optional<double> timeout_seconds);

  parallel::FrameSocket socket_;
  std::uint64_t next_request_id_ = 1;
  /// Instances of submissions whose result has not arrived (decode context).
  std::map<std::uint64_t, std::shared_ptr<const mkp::Instance>> outstanding_;
  std::map<std::uint64_t, SubmitAck> acks_;
  /// Anytime chunks accumulated ahead of their terminal frame.
  std::map<std::uint64_t, std::vector<obs::AnytimeSample>> chunks_;
  std::map<std::uint64_t, service::JobResult> results_;
  std::optional<std::string> goodbye_;
};

}  // namespace pts::net
